// Unit tests for util: status, rng, histogram, codec, strings.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/codec.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"

namespace repro {
namespace {

TEST(Status, OkAndErrors) {
  EXPECT_TRUE(OkStatus().ok());
  EXPECT_FALSE(NotFound("x").ok());
  EXPECT_EQ(NotFound("x").code(), Code::kNotFound);
  EXPECT_TRUE(Unavailable("n").retryable());
  EXPECT_TRUE(TimedOut("t").retryable());
  EXPECT_TRUE(Aborted("a").retryable());
  EXPECT_FALSE(InvalidArgument("i").retryable());
  EXPECT_EQ(NotFound("f").ToString(), "NOT_FOUND: f");
}

TEST(Expected, ValueAndStatus) {
  Expected<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  Expected<int> e(NotFound("nope"));
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), Code::kNotFound);
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, NextBelowInRange) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.NextBelow(17), 17u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ZipfSkewsTowardsLowRanks) {
  Rng r(5);
  ZipfGenerator zipf(1000, 0.99);
  int64_t low = 0, total = 20000;
  for (int i = 0; i < total; ++i) {
    if (zipf.Next(r) < 10) ++low;
  }
  // Top-10 of 1000 should get far more than its uniform share (1%).
  EXPECT_GT(low, total / 20);
}

TEST(Rng, DiscreteDistributionRespectsWeights) {
  Rng r(9);
  DiscreteDistribution d({0.0, 1.0, 0.0});
  for (int i = 0; i < 100; ++i) EXPECT_EQ(d.Next(r), 1);
}

TEST(Histogram, PercentilesAndMean) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(Millis(i));
  EXPECT_EQ(h.count(), 1000);
  // ~3% relative bucket error allowed.
  EXPECT_NEAR(ToMillis(h.Percentile(0.5)), 500, 25);
  EXPECT_NEAR(ToMillis(h.Percentile(0.99)), 990, 40);
  EXPECT_NEAR(h.MeanMillis(), 500.5, 1);
  EXPECT_EQ(h.min(), Millis(1));
  EXPECT_EQ(h.max(), Millis(1000));
}

TEST(Histogram, MergeCombinesCounts) {
  Histogram a, b;
  a.Record(Millis(1));
  b.Record(Millis(100));
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.max(), Millis(100));
}

// Nearest-rank oracle over random samples: for every quantile the
// histogram must select the *same rank* as a sorted vector — the bucketed
// answer may exceed the exact value by at most one bucket's width (~3%),
// and must never come in below it. A rank-selection off-by-one would pick
// a neighbouring sample and (for spread-out samples) land outside this
// window.
TEST(Histogram, NearestRankMatchesSortedOracle) {
  Rng rng(42);
  Histogram h;
  std::vector<Nanos> samples;
  for (int i = 0; i < 500; ++i) {
    const Nanos v = static_cast<Nanos>(rng.NextBelow(Millis(200))) + 1;
    samples.push_back(v);
    h.Record(v);
  }
  std::sort(samples.begin(), samples.end());
  const size_t n = samples.size();
  for (double q : {0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0}) {
    const size_t rank = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(q * static_cast<double>(n))));
    const Nanos oracle = samples[std::min(n, rank) - 1];
    const Nanos got = h.Percentile(q);
    EXPECT_GE(got, oracle) << "q=" << q;
    EXPECT_LE(got, oracle + oracle / 32 + 1) << "q=" << q;
  }
}

// Values below 32 ns are bucketed exactly, so every rank must round-trip
// bit-exact — including q=0, which the old code reported as 0 instead of
// the min (ceil(0*n) hit the empty rank-0 prefix).
TEST(Histogram, SmallValueRanksAreExact) {
  Histogram h;
  std::vector<Nanos> samples;
  for (Nanos v = 1; v <= 20; ++v) {
    samples.push_back(v);
    h.Record(v);
  }
  for (double q : {0.0, 0.05, 0.5, 0.95, 1.0}) {
    const size_t rank = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(q * 20.0)));
    EXPECT_EQ(h.Percentile(q), samples[rank - 1]) << "q=" << q;
  }
}

// Values exactly on a power-of-two bucket boundary: the bucket's upper
// bound overshoots the boundary value, so low quantiles must clamp back
// to the observed min (64 here, not 65).
TEST(Histogram, BucketBoundaryValuesClampToObservedRange) {
  Histogram h;
  h.Record(64);
  h.Record(Millis(200));
  EXPECT_EQ(h.Percentile(0.0), 64);
  EXPECT_EQ(h.Percentile(0.5), 64);  // rank 1 of 2 == min, exactly
  EXPECT_EQ(h.Percentile(1.0), Millis(200));
  Histogram one;
  one.Record(4096);
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(one.Percentile(q), 4096) << "q=" << q;
  }
}

// Merge into a default-constructed histogram must adopt the source's min
// rather than keeping the empty-state min_ = 0, and merging an empty
// histogram in must be a no-op.
TEST(Histogram, MergeIntoEmptyPreservesMin) {
  Histogram a, b;
  b.Record(Millis(3));
  b.Record(Millis(9));
  a.Merge(b);
  EXPECT_EQ(a.min(), Millis(3));
  EXPECT_EQ(a.Percentile(0.0), Millis(3));
  EXPECT_EQ(a.max(), Millis(9));
  Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.min(), Millis(3));
}

TEST(Codec, RoundTrip) {
  Encoder e;
  e.PutU8(7);
  e.PutU32(123456);
  e.PutU64(0xDEADBEEFCAFEull);
  e.PutI64(-42);
  e.PutString("hello");
  e.PutBool(true);
  Decoder d(e.view());
  EXPECT_EQ(d.GetU8(), 7);
  EXPECT_EQ(d.GetU32(), 123456u);
  EXPECT_EQ(d.GetU64(), 0xDEADBEEFCAFEull);
  EXPECT_EQ(d.GetI64(), -42);
  EXPECT_EQ(d.GetString(), "hello");
  EXPECT_TRUE(d.GetBool());
  EXPECT_TRUE(d.ok());
  EXPECT_TRUE(d.done());
}

TEST(Codec, TruncatedInputSetsError) {
  Decoder d("ab");
  d.GetU64();
  EXPECT_FALSE(d.ok());
}

TEST(Strings, SplitAndJoinPath) {
  auto parts = SplitPath("/a/b/c");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(JoinPath(parts), "/a/b/c");
  EXPECT_TRUE(SplitPath("/").empty());
  EXPECT_EQ(JoinPath({}), "/");
  auto messy = SplitPath("//x///y/");
  ASSERT_EQ(messy.size(), 2u);
  EXPECT_EQ(messy[1], "y");
}

TEST(Strings, SplitParent) {
  auto [parent, base] = SplitParent("/a/b/c");
  EXPECT_EQ(parent, "/a/b");
  EXPECT_EQ(base, "c");
  auto [rp, rb] = SplitParent("/top");
  EXPECT_EQ(rp, "/");
  EXPECT_EQ(rb, "top");
}

TEST(Strings, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
}

}  // namespace
}  // namespace repro
