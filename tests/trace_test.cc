// Trace-layer tests: span nesting, sim-time monotonicity, sampling
// determinism, critical-path attribution, Chrome export, and the
// chaos+trace flight-recorder integration.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "chaos/harness.h"
#include "chaos/schedule.h"
#include "trace/chrome_trace.h"
#include "trace/critical_path.h"
#include "trace/trace.h"

namespace repro::trace {
namespace {

// A tracer driven by a hand-cranked clock (no Simulation needed).
struct Clocked {
  Nanos now = 0;
  Tracer tracer{[this] { return now; }};
  Clocked() { tracer.set_sample_every(1); }
};

TEST(Trace, NestingRecordsParentChildAndLabels) {
  Clocked c;
  const SpanId root =
      c.tracer.StartTrace("mkdir", Layer::kClient, /*host=*/3, /*az=*/0);
  ASSERT_NE(root, 0u);
  c.now = 100;
  const SpanId rpc = c.tracer.StartSpan(root, "rpc", Layer::kClient,
                                        Cause::kWork, 3, 0);
  c.now = 150;
  const SpanId net = c.tracer.StartSpan(rpc, "net.request", Layer::kClient,
                                        Cause::kNetworkInterAz, 3, 0, 1);
  c.now = 400;
  c.tracer.EndSpan(net);
  c.now = 500;
  c.tracer.EndSpan(rpc);
  c.now = 600;
  c.tracer.EndTrace(root);

  ASSERT_EQ(c.tracer.finished().size(), 1u);
  const Trace& t = c.tracer.finished().front();
  ASSERT_EQ(t.spans.size(), 3u);
  EXPECT_EQ(t.spans[0].name, "mkdir");
  EXPECT_EQ(t.spans[0].parent, 0u);
  EXPECT_EQ(t.spans[1].parent, t.spans[0].id);
  EXPECT_EQ(t.spans[2].parent, t.spans[1].id);
  EXPECT_EQ(t.spans[2].dst_az, 1);
  EXPECT_EQ(t.spans[2].cause, Cause::kNetworkInterAz);
  EXPECT_EQ(t.duration(), 600);
}

TEST(Trace, SimTimeMonotonicityAndClamping) {
  Clocked c;
  const SpanId root = c.tracer.StartTrace("op", Layer::kClient, 0, 0);
  c.now = 10;
  const SpanId a = c.tracer.StartSpan(root, "a", Layer::kNdb, Cause::kCpu,
                                      1, 1);
  c.now = 50;
  c.tracer.EndSpan(a);
  c.now = 60;
  // A hedge that never completes: left open, must clamp to the root end.
  c.tracer.StartSpan(root, "hedge", Layer::kNdb, Cause::kRetry, 1, 1);
  c.now = 90;
  c.tracer.EndTrace(root);

  const Trace& t = c.tracer.finished().front();
  for (const Span& s : t.spans) {
    EXPECT_LE(s.start, s.end) << s.name;
    EXPECT_GE(s.start, t.root().start) << s.name;
    EXPECT_LE(s.end, t.root().end) << s.name;
  }
  EXPECT_EQ(t.spans.back().end, 90);  // clamped open span

  // Late EndSpan on a finalized trace is inert (the losing hedge).
  c.now = 200;
  c.tracer.EndSpan(a);
  EXPECT_EQ(c.tracer.finished().front().spans[1].end, 50);
}

TEST(Trace, SamplingIsDeterministicCounterNotRng) {
  for (int run = 0; run < 2; ++run) {
    Clocked c;
    c.tracer.set_sample_every(3);
    std::vector<bool> sampled;
    for (int i = 0; i < 9; ++i) {
      const SpanId id = c.tracer.StartTrace("op", Layer::kClient, 0, 0);
      sampled.push_back(id != 0);
      if (id != 0) c.tracer.EndTrace(id);
    }
    // Exactly one in three, at fixed positions, identical across runs.
    const std::vector<bool> expect = {true, false, false, true, false,
                                      false, true, false, false};
    EXPECT_EQ(sampled, expect);
    EXPECT_EQ(c.tracer.traces_finished(), 3u);
    EXPECT_EQ(c.tracer.ops_seen(), 9u);
  }
}

TEST(Trace, DisabledTracerIsInert) {
  Clocked c;
  c.tracer.set_sample_every(0);
  const SpanId root = c.tracer.StartTrace("op", Layer::kClient, 0, 0);
  EXPECT_EQ(root, 0u);
  // Every downstream call with a zero handle is a no-op.
  EXPECT_EQ(c.tracer.StartSpan(root, "x", Layer::kNdb, Cause::kCpu, 0, 0),
            0u);
  c.tracer.EndSpan(0);
  c.tracer.EndTrace(0);
  EXPECT_TRUE(c.tracer.finished().empty());
}

TEST(CriticalPath, AttributionSumsToEndToEndLatency) {
  Clocked c;
  const SpanId root = c.tracer.StartTrace("op", Layer::kClient, 0, 0);
  // Overlapping children: [10,60] cpu and [40,120] net overlap in
  // [40,60]; [150,180] disk leaves uncovered gaps either side.
  c.tracer.AddSpanAt(root, "cpu", Layer::kNamenode, Cause::kCpu, 1, 0, 10,
                     60);
  c.tracer.AddSpanAt(root, "net", Layer::kNdb, Cause::kNetworkInterAz, 1, 0,
                     40, 120, 1);
  c.tracer.AddSpanAt(root, "disk", Layer::kNdb, Cause::kDisk, 2, 1, 150,
                     180);
  c.now = 200;
  c.tracer.EndTrace(root);

  const Trace& t = c.tracer.finished().front();
  const auto segs = CriticalPath(t);
  Nanos total = 0;
  std::map<Cause, Nanos> by_cause;
  for (const auto& s : segs) {
    EXPECT_LT(s.start, s.end);
    total += s.duration();
    by_cause[s.span->cause] += s.duration();
  }
  EXPECT_EQ(total, t.duration());
  // Overlap [40,60] goes to the covering child ending last (net).
  EXPECT_EQ(by_cause[Cause::kCpu], 30);              // [10,40]
  EXPECT_EQ(by_cause[Cause::kNetworkInterAz], 80);   // [40,120]
  EXPECT_EQ(by_cause[Cause::kDisk], 30);             // [150,180]
  EXPECT_EQ(by_cause[Cause::kWork], 60);             // [0,10]+[120,150]+[180,200]
}

TEST(CriticalPath, AggregatorAttributionMatchesMeasured) {
  Clocked c;
  BreakdownAggregator agg;
  c.tracer.set_sink([&agg](const Trace& t) { agg.Add(t); });
  for (int i = 0; i < 16; ++i) {
    const Nanos base = c.now;
    const SpanId root = c.tracer.StartTrace(i % 2 ? "stat" : "mkdir",
                                            Layer::kClient, 0, 0);
    c.tracer.AddSpanAt(root, "cpu", Layer::kNamenode, Cause::kCpu, 1, 0,
                       base + 5, base + 20 + i);
    c.now = base + 30 + i;
    c.tracer.EndTrace(root);
  }
  EXPECT_EQ(agg.traces(), 16);
  EXPECT_EQ(agg.attributed_total(), agg.measured_total());
  EXPECT_EQ(agg.per_op().size(), 2u);
}

TEST(ChromeTrace, ExportsCompleteEventsJson) {
  Clocked c;
  const SpanId root = c.tracer.StartTrace("mkdir", Layer::kClient, 7, 2);
  c.now = 1000;
  c.tracer.EndTrace(root);
  const std::string json =
      ChromeTraceJson({c.tracer.finished().begin(),
                       c.tracer.finished().end()});
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("mkdir"), std::string::npos);
}

// Chaos + trace integration: tracing must observe the run without
// perturbing it, and the flight recorder must dump traces when an
// invariant fires.
TEST(ChaosTraceIntegration, TracingDoesNotPerturbTheEpisode) {
  chaos::ChaosOptions opts;
  opts.seed = 11;
  opts.warmup = 500 * kMillisecond;
  opts.fault_window = 1 * kSecond;
  opts.settle = 1 * kSecond;
  opts.workload_clients = 4;
  opts.ns = {/*users=*/16, /*dirs_per_user=*/2, /*files_per_dir=*/2,
             /*zipf_theta=*/0.75};
  chaos::FaultSchedule schedule;  // fault-free: determinism is the point

  const chaos::ChaosReport off = RunChaosSchedule(opts, schedule);
  opts.trace_sample_every = 7;
  const chaos::ChaosReport on = RunChaosSchedule(opts, schedule);

  // Identical event trace and op counts: spans draw no RNG and schedule
  // no events.
  EXPECT_EQ(off.TraceString(), on.TraceString());
  EXPECT_EQ(off.completed, on.completed);
  EXPECT_EQ(off.failed, on.failed);
  EXPECT_EQ(off.acked_writes, on.acked_writes);
  EXPECT_EQ(off.traces_captured, 0);
  EXPECT_GT(on.traces_captured, 0);
  EXPECT_TRUE(on.invariants_ok());
  EXPECT_TRUE(on.trace_dump_path.empty());  // nothing fired, no dump
}

TEST(ChaosTraceIntegration, InvariantFailureDumpsFlightRecorder) {
  chaos::ChaosOptions opts;
  opts.seed = 5;
  opts.warmup = 500 * kMillisecond;
  opts.fault_window = 1 * kSecond;
  opts.settle = 1 * kSecond;
  opts.workload_clients = 4;
  opts.ns = {/*users=*/16, /*dirs_per_user=*/2, /*files_per_dir=*/2,
             /*zipf_theta=*/0.75};
  opts.enable_test_ack_loss_bug = true;  // durability invariant MUST fail
  opts.trace_sample_every = 5;
  opts.trace_dump_path = "trace_test_flight_recorder.json";
  chaos::FaultSchedule schedule;

  const chaos::ChaosReport report = RunChaosSchedule(opts, schedule);
  EXPECT_FALSE(report.invariants_ok());
  EXPECT_EQ(report.trace_dump_path, opts.trace_dump_path);

  FILE* f = std::fopen(opts.trace_dump_path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(opts.trace_dump_path.c_str());
}

}  // namespace
}  // namespace repro::trace
