// Tests for the extended file-system operations: chown, setTimes, append
// (inline growth, threshold crossing, block allocation), content summary,
// and recursive subtree delete.
#include <gtest/gtest.h>

#include "hopsfs_test_util.h"
#include "util/strings.h"

namespace repro::hopsfs {
namespace {

using testing::TestFs;

Status RunOp(TestFs& fs, std::function<void(HopsFsClient::StatusCb)> op) {
  return fs.Run(std::move(op));
}

TEST(HopsFsExtendedOps, ChownChangesOwner) {
  TestFs fs;
  ASSERT_TRUE(fs.Mkdir("/o").ok());
  ASSERT_TRUE(fs.Create("/o/f").ok());
  ASSERT_TRUE(
      RunOp(fs, [&](auto cb) { fs.client->Chown("/o/f", "alice", cb); }).ok());
  const auto r = fs.StatFull("/o/f");
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.inode.owner, "alice");
}

TEST(HopsFsExtendedOps, SetTimesUpdatesMtime) {
  TestFs fs;
  ASSERT_TRUE(fs.Mkdir("/t").ok());
  ASSERT_TRUE(fs.Create("/t/f").ok());
  ASSERT_TRUE(RunOp(fs, [&](auto cb) {
                fs.client->SetTimes("/t/f", Seconds(1234), cb);
              }).ok());
  const auto r = fs.StatFull("/t/f");
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.inode.mtime_ns, Seconds(1234));
}

TEST(HopsFsExtendedOps, SetAttrOnMissingPathFails) {
  TestFs fs;
  EXPECT_EQ(RunOp(fs, [&](auto cb) {
              fs.client->Chown("/missing", "bob", cb);
            }).code(),
            Code::kNotFound);
}

TEST(HopsFsExtendedOps, AppendGrowsInlineFile) {
  TestFs fs;
  ASSERT_TRUE(fs.Mkdir("/a").ok());
  ASSERT_TRUE(fs.Create("/a/f", 1000).ok());
  ASSERT_TRUE(
      RunOp(fs, [&](auto cb) { fs.client->Append("/a/f", 2000, cb); }).ok());
  const auto r = fs.Open("/a/f");
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.inode.size, 3000);
  EXPECT_TRUE(r.inode.has_inline_data);
  EXPECT_EQ(r.inline_bytes, 3000);
}

TEST(HopsFsExtendedOps, AppendCrossesSmallFileThreshold) {
  TestFs fs;
  ASSERT_TRUE(fs.Mkdir("/a").ok());
  ASSERT_TRUE(fs.Create("/a/f", 100 << 10).ok());  // 100 KB inline
  // +40 KB crosses the 128 KB threshold: inline data is dropped and a
  // block is allocated (no datanodes configured -> empty replica list).
  ASSERT_TRUE(RunOp(fs, [&](auto cb) {
                fs.client->Append("/a/f", 40 << 10, cb);
              }).ok());
  const auto r = fs.Open("/a/f");
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.inode.size, 140 << 10);
  EXPECT_FALSE(r.inode.has_inline_data);
  EXPECT_EQ(r.inode.num_blocks, 1);
  ASSERT_EQ(r.blocks.size(), 1u);
  EXPECT_EQ(r.blocks[0].num_bytes, 140 << 10);
  EXPECT_EQ(r.inline_bytes, 0);
}

TEST(HopsFsExtendedOps, AppendToDirectoryFails) {
  TestFs fs;
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  EXPECT_EQ(RunOp(fs, [&](auto cb) { fs.client->Append("/d", 10, cb); })
                .code(),
            Code::kFailedPrecondition);
}

TEST(HopsFsExtendedOps, ContentSummaryCountsSubtree) {
  TestFs fs;
  ASSERT_TRUE(fs.Mkdir("/proj").ok());
  ASSERT_TRUE(fs.Mkdir("/proj/src").ok());
  ASSERT_TRUE(fs.Mkdir("/proj/doc").ok());
  ASSERT_TRUE(fs.Create("/proj/readme", 100).ok());
  ASSERT_TRUE(fs.Create("/proj/src/main", 2000).ok());
  ASSERT_TRUE(fs.Create("/proj/src/util", 3000).ok());

  Status status = Internal("hung");
  int64_t files = 0, dirs = 0, bytes = 0;
  bool done = false;
  fs.client->ContentSummary("/proj", [&](Status s, int64_t f, int64_t d,
                                         int64_t b) {
    status = s;
    files = f;
    dirs = d;
    bytes = b;
    done = true;
  });
  while (!done) fs.sim->RunFor(kMillisecond);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(files, 3);
  EXPECT_EQ(dirs, 3);  // proj, src, doc
  EXPECT_EQ(bytes, 5100);
}

TEST(HopsFsExtendedOps, ContentSummaryOfFile) {
  TestFs fs;
  ASSERT_TRUE(fs.Mkdir("/x").ok());
  ASSERT_TRUE(fs.Create("/x/f", 42).ok());
  int64_t files = 0, dirs = 0, bytes = 0;
  bool done = false;
  fs.client->ContentSummary("/x/f", [&](Status s, int64_t f, int64_t d,
                                        int64_t b) {
    ASSERT_TRUE(s.ok());
    files = f;
    dirs = d;
    bytes = b;
    done = true;
  });
  while (!done) fs.sim->RunFor(kMillisecond);
  EXPECT_EQ(files, 1);
  EXPECT_EQ(dirs, 0);
  EXPECT_EQ(bytes, 42);
}

TEST(HopsFsExtendedOps, DeleteRecursiveRemovesSubtree) {
  TestFs fs;
  ASSERT_TRUE(fs.Mkdir("/rm").ok());
  ASSERT_TRUE(fs.Mkdir("/rm/a").ok());
  ASSERT_TRUE(fs.Mkdir("/rm/a/b").ok());
  ASSERT_TRUE(fs.Create("/rm/a/b/f1", 500).ok());
  ASSERT_TRUE(fs.Create("/rm/top").ok());
  ASSERT_TRUE(RunOp(fs, [&](auto cb) {
                fs.client->DeleteRecursive("/rm/a", cb);
              }).ok());
  EXPECT_EQ(fs.Stat("/rm/a").code(), Code::kNotFound);
  EXPECT_EQ(fs.Stat("/rm/a/b/f1").code(), Code::kNotFound);
  EXPECT_TRUE(fs.Stat("/rm/top").ok()) << "sibling must survive";
  EXPECT_TRUE(fs.Stat("/rm").ok()) << "parent must survive";
}

TEST(HopsFsExtendedOps, DeleteRecursiveOfFileActsLikeDelete) {
  TestFs fs;
  ASSERT_TRUE(fs.Mkdir("/rf").ok());
  ASSERT_TRUE(fs.Create("/rf/f").ok());
  ASSERT_TRUE(RunOp(fs, [&](auto cb) {
                fs.client->DeleteRecursive("/rf/f", cb);
              }).ok());
  EXPECT_EQ(fs.Stat("/rf/f").code(), Code::kNotFound);
}

TEST(HopsFsExtendedOps, DeleteRecursiveRootRejected) {
  TestFs fs;
  EXPECT_EQ(RunOp(fs, [&](auto cb) {
              fs.client->DeleteRecursive("/", cb);
            }).code(),
            Code::kInvalidArgument);
}

}  // namespace
}  // namespace repro::hopsfs
