// Integration "shape" tests: small-scale versions of the paper's headline
// comparisons, run as regression tests so refactors cannot silently lose
// the AZ-awareness effects. Margins are generous — these pin directions,
// not magnitudes (the benchmarks measure magnitudes).
#include <gtest/gtest.h>

#include "util/strings.h"
#include "hopsfs/deployment.h"
#include "workload/driver.h"
#include "workload/fs_interface.h"

namespace repro {
namespace {

struct MiniRun {
  double ops_per_sec = 0;
  double mean_ms = 0;
  int64_t inter_az_bytes = 0;
  int64_t intra_az_bytes = 0;
  std::vector<std::vector<int64_t>> replica_reads;
  std::vector<AzId> node_az;
  std::vector<std::vector<ndb::NodeId>> chains;
};

MiniRun RunMini(hopsfs::PaperSetup setup, int nns = 3, int clients = 24,
                std::function<void(hopsfs::DeploymentOptions&)> tweak = {}) {
  Simulation sim(17);
  auto options = hopsfs::DeploymentOptions::FromPaperSetup(setup, nns);
  if (tweak) tweak(options);
  hopsfs::Deployment fs(sim, options);
  fs.Start();

  workload::NamespaceConfig ns;
  ns.users = 64;
  workload::SpotifyWorkload wl(ns, 17);
  fs.BootstrapNamespace(wl.all_dirs(), wl.all_files());

  std::vector<std::unique_ptr<workload::HopsFsTarget>> targets;
  std::vector<workload::FsTarget*> ptrs;
  for (int i = 0; i < clients; ++i) {
    targets.push_back(
        std::make_unique<workload::HopsFsTarget>(fs.AddClient()));
    ptrs.push_back(targets.back().get());
  }
  sim.RunFor(Seconds(3));

  workload::ClosedLoopDriver driver(
      sim, ptrs, [&wl](Rng& rng, std::vector<std::string>& owned) {
        return wl.Next(rng, owned);
      });
  Nanos w0 = 0;
  auto res = driver.Run(Millis(150), Millis(400), [&] {
    fs.ResetStats();
    w0 = sim.now();
  });

  MiniRun out;
  out.ops_per_sec = res.ops_per_sec();
  out.mean_ms = res.all.MeanMillis();
  out.inter_az_bytes = fs.network().inter_az_bytes();
  out.intra_az_bytes = fs.network().intra_az_bytes();
  out.replica_reads = fs.ndb().reads_per_replica();
  for (int n = 0; n < fs.ndb().num_datanodes(); ++n) {
    out.node_az.push_back(fs.ndb().layout().az_of(n));
  }
  for (ndb::PartitionId p = 0;
       p < static_cast<ndb::PartitionId>(out.replica_reads.size()); ++p) {
    out.chains.push_back(fs.ndb().layout().ReplicaChain(p));
  }
  return out;
}

TEST(IntegrationShapes, ClBeatsVanillaAcrossThreeAzs) {
  const auto vanilla = RunMini(hopsfs::PaperSetup::kHopsFs_3_3);
  const auto cl = RunMini(hopsfs::PaperSetup::kHopsFsCl_3_3);
  // Paper Fig. 5: +36% at 60 NNs; at mini scale we only require a clear win.
  EXPECT_GT(cl.ops_per_sec, vanilla.ops_per_sec * 1.02)
      << "AZ awareness lost its throughput advantage";
  EXPECT_LT(cl.mean_ms, vanilla.mean_ms)
      << "AZ awareness lost its latency advantage";
}

TEST(IntegrationShapes, ClSlashesInterAzTraffic) {
  const auto vanilla = RunMini(hopsfs::PaperSetup::kHopsFs_3_3);
  const auto cl = RunMini(hopsfs::PaperSetup::kHopsFsCl_3_3);
  // §V-E: AZ-local reads; the paper's motivation is inter-AZ cost.
  EXPECT_LT(cl.inter_az_bytes, vanilla.inter_az_bytes / 2)
      << "AZ-local routing should cut inter-AZ bytes by far more than 2x";
}

TEST(IntegrationShapes, SingleAzDeploymentHasNoInterAzFsTraffic) {
  const auto one_az = RunMini(hopsfs::PaperSetup::kHopsFs_2_1);
  // Everything (NDB, NNs, clients) lives in AZ 1; only the management
  // nodes sit elsewhere, and they exchange no steady-state traffic.
  EXPECT_EQ(one_az.inter_az_bytes, 0);
  EXPECT_GT(one_az.intra_az_bytes, 0);
}

TEST(IntegrationShapes, ReadBackupSpreadsReadsAcrossReplicas) {
  const auto cl = RunMini(hopsfs::PaperSetup::kHopsFsCl_3_3);
  int64_t primary = 0, backups = 0;
  for (const auto& row : cl.replica_reads) {
    primary += row[0];
    for (size_t i = 1; i < row.size(); ++i) backups += row[i];
  }
  ASSERT_GT(primary + backups, 0);
  // Fig. 14: ~50/50 between the primary and the two backups together.
  const double primary_share =
      static_cast<double>(primary) / static_cast<double>(primary + backups);
  EXPECT_GT(primary_share, 0.25);
  EXPECT_LT(primary_share, 0.75);
}

TEST(IntegrationShapes, WithoutReadBackupPrimaryServesAllReads) {
  const auto off =
      RunMini(hopsfs::PaperSetup::kHopsFsCl_3_3, 3, 24,
              [](hopsfs::DeploymentOptions& o) {
                o.override_read_backup = 0;
              });
  int64_t backups = 0, primary = 0;
  for (const auto& row : off.replica_reads) {
    primary += row[0];
    for (size_t i = 1; i < row.size(); ++i) backups += row[i];
  }
  ASSERT_GT(primary, 0);
  EXPECT_EQ(backups, 0) << "reads must pin to the primary without "
                           "Read Backup (Fig. 14b)";
}

TEST(IntegrationShapes, ClReadsAreAzLocal) {
  const auto cl = RunMini(hopsfs::PaperSetup::kHopsFsCl_3_3);
  // With RF=3 over 3 AZs every partition has a replica in every AZ, so
  // committed reads never cross an AZ; remaining inter-AZ traffic is the
  // commit protocol. Locked reads (mutations) still go to the primary.
  // Check the per-replica counters: every replica that served reads for
  // a partition must be... served some reads; the AZ distribution of
  // reads matches the share of namenodes per AZ (1 each here).
  int64_t total = 0;
  for (const auto& row : cl.replica_reads) {
    for (int64_t c : row) total += c;
  }
  EXPECT_GT(total, 0);
}

TEST(IntegrationShapes, MetadataReplication3CostsMutations) {
  // Fig. 7: replication 2 -> 3 costs mutation throughput in one AZ.
  auto mutate_source = [](const workload::SpotifyWorkload&) {
    auto counter = std::make_shared<uint64_t>(0);
    return [counter](Rng& rng, std::vector<std::string>& owned)
               -> workload::SpotifyWorkload::Op {
      (void)rng;
      (void)owned;
      workload::SpotifyWorkload::Op op;
      op.op = workload::FsOp::kCreate;
      op.path = StrFormat("/user/u0/d0/x%llu",
                          static_cast<unsigned long long>(++*counter));
      return op;
    };
  };
  auto run_creates = [&](hopsfs::PaperSetup setup) {
    Simulation sim(23);
    auto options = hopsfs::DeploymentOptions::FromPaperSetup(setup, 2);
    hopsfs::Deployment fs(sim, options);
    fs.Start();
    workload::NamespaceConfig ns;
    ns.users = 4;
    workload::SpotifyWorkload wl(ns, 23);
    fs.BootstrapNamespace(wl.all_dirs(), wl.all_files());
    std::vector<std::unique_ptr<workload::HopsFsTarget>> targets;
    std::vector<workload::FsTarget*> ptrs;
    for (int i = 0; i < 8; ++i) {
      targets.push_back(
          std::make_unique<workload::HopsFsTarget>(fs.AddClient()));
      ptrs.push_back(targets.back().get());
    }
    sim.RunFor(Seconds(3));
    workload::ClosedLoopDriver driver(sim, ptrs, mutate_source(wl));
    return driver.Run(Millis(100), Millis(400)).ops_per_sec();
  };
  const double rf2 = run_creates(hopsfs::PaperSetup::kHopsFs_2_1);
  const double rf3 = run_creates(hopsfs::PaperSetup::kHopsFs_3_1);
  EXPECT_GT(rf2, rf3) << "longer commit chains must cost mutations";
}

}  // namespace
}  // namespace repro
