// End-to-end tests of the HopsFS file-system operations over the full
// stack: client -> namenode -> NDB transactions.
#include <gtest/gtest.h>

#include "hopsfs_test_util.h"
#include "util/strings.h"

namespace repro::hopsfs {
namespace {

using testing::TestFs;

TEST(HopsFsOps, MkdirAndStat) {
  TestFs fs;
  EXPECT_TRUE(fs.Mkdir("/user").ok());
  EXPECT_TRUE(fs.Mkdir("/user/alice").ok());
  const auto r = fs.StatFull("/user/alice");
  ASSERT_TRUE(r.status.ok());
  EXPECT_TRUE(r.inode.is_dir);
}

TEST(HopsFsOps, MkdirDuplicateFails) {
  TestFs fs;
  EXPECT_TRUE(fs.Mkdir("/d").ok());
  EXPECT_EQ(fs.Mkdir("/d").code(), Code::kAlreadyExists);
}

TEST(HopsFsOps, MkdirMissingParentFails) {
  TestFs fs;
  EXPECT_EQ(fs.Mkdir("/no/such/parent").code(), Code::kNotFound);
}

TEST(HopsFsOps, CreateAndStatEmptyFile) {
  TestFs fs;
  ASSERT_TRUE(fs.Mkdir("/data").ok());
  EXPECT_TRUE(fs.Create("/data/f1").ok());
  const auto r = fs.StatFull("/data/f1");
  ASSERT_TRUE(r.status.ok());
  EXPECT_FALSE(r.inode.is_dir);
  EXPECT_EQ(r.inode.size, 0);
}

TEST(HopsFsOps, StatMissingFileFails) {
  TestFs fs;
  EXPECT_EQ(fs.Stat("/nope").code(), Code::kNotFound);
}

TEST(HopsFsOps, StatRoot) {
  TestFs fs;
  const auto r = fs.StatFull("/");
  ASSERT_TRUE(r.status.ok());
  EXPECT_TRUE(r.inode.is_dir);
}

TEST(HopsFsOps, SmallFileStoredInline) {
  TestFs fs;
  ASSERT_TRUE(fs.Mkdir("/small").ok());
  ASSERT_TRUE(fs.Create("/small/cfg", 4096).ok());
  const auto r = fs.Open("/small/cfg");
  ASSERT_TRUE(r.status.ok());
  EXPECT_TRUE(r.inode.has_inline_data);
  EXPECT_EQ(r.inline_bytes, 4096);
  EXPECT_TRUE(r.blocks.empty());
}

TEST(HopsFsOps, ListDirReturnsChildrenSorted) {
  TestFs fs;
  ASSERT_TRUE(fs.Mkdir("/ls").ok());
  ASSERT_TRUE(fs.Create("/ls/b").ok());
  ASSERT_TRUE(fs.Create("/ls/a").ok());
  ASSERT_TRUE(fs.Mkdir("/ls/c").ok());
  const auto r = fs.List("/ls");
  ASSERT_TRUE(r.status.ok());
  ASSERT_EQ(r.children.size(), 3u);
  EXPECT_EQ(r.children[0], "a");
  EXPECT_EQ(r.children[1], "b");
  EXPECT_EQ(r.children[2], "c");
}

TEST(HopsFsOps, ListFileReturnsItself) {
  TestFs fs;
  ASSERT_TRUE(fs.Mkdir("/lf").ok());
  ASSERT_TRUE(fs.Create("/lf/only").ok());
  const auto r = fs.List("/lf/only");
  ASSERT_TRUE(r.status.ok());
  ASSERT_EQ(r.children.size(), 1u);
  EXPECT_EQ(r.children[0], "only");
}

TEST(HopsFsOps, DeleteFile) {
  TestFs fs;
  ASSERT_TRUE(fs.Mkdir("/del").ok());
  ASSERT_TRUE(fs.Create("/del/f").ok());
  EXPECT_TRUE(fs.Delete("/del/f").ok());
  EXPECT_EQ(fs.Stat("/del/f").code(), Code::kNotFound);
}

TEST(HopsFsOps, DeleteNonEmptyDirectoryFails) {
  TestFs fs;
  ASSERT_TRUE(fs.Mkdir("/full").ok());
  ASSERT_TRUE(fs.Create("/full/f").ok());
  EXPECT_EQ(fs.Delete("/full").code(), Code::kFailedPrecondition);
  // After emptying it, the delete succeeds.
  ASSERT_TRUE(fs.Delete("/full/f").ok());
  EXPECT_TRUE(fs.Delete("/full").ok());
}

TEST(HopsFsOps, RenameFile) {
  TestFs fs;
  ASSERT_TRUE(fs.Mkdir("/a").ok());
  ASSERT_TRUE(fs.Mkdir("/b").ok());
  ASSERT_TRUE(fs.Create("/a/f").ok());
  EXPECT_TRUE(fs.Rename("/a/f", "/b/g").ok());
  EXPECT_EQ(fs.Stat("/a/f").code(), Code::kNotFound);
  EXPECT_TRUE(fs.Stat("/b/g").ok());
}

TEST(HopsFsOps, RenameToExistingTargetFails) {
  TestFs fs;
  ASSERT_TRUE(fs.Mkdir("/r").ok());
  ASSERT_TRUE(fs.Create("/r/x").ok());
  ASSERT_TRUE(fs.Create("/r/y").ok());
  EXPECT_EQ(fs.Rename("/r/x", "/r/y").code(), Code::kAlreadyExists);
  // Source must be intact after the failed rename (atomicity).
  EXPECT_TRUE(fs.Stat("/r/x").ok());
}

TEST(HopsFsOps, RenameDirectoryMovesSubtree) {
  TestFs fs;
  ASSERT_TRUE(fs.Mkdir("/proj").ok());
  ASSERT_TRUE(fs.Mkdir("/proj/v1").ok());
  ASSERT_TRUE(fs.Create("/proj/v1/data").ok());
  ASSERT_TRUE(fs.Mkdir("/archive").ok());
  // The atomic directory rename object stores lack (§I): one transaction,
  // no data copying, children follow automatically.
  EXPECT_TRUE(fs.Rename("/proj/v1", "/archive/v1").ok());
  EXPECT_TRUE(fs.Stat("/archive/v1/data").ok());
  EXPECT_EQ(fs.Stat("/proj/v1/data").code(), Code::kNotFound);
}

TEST(HopsFsOps, ChmodUpdatesPermissions) {
  TestFs fs;
  ASSERT_TRUE(fs.Mkdir("/perm").ok());
  ASSERT_TRUE(fs.Create("/perm/f").ok());
  ASSERT_TRUE(fs.Chmod("/perm/f", 0600).ok());
  const auto r = fs.StatFull("/perm/f");
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.inode.permissions, 0600u);
}

TEST(HopsFsOps, DeepPathsResolve) {
  TestFs fs;
  std::string path;
  for (int i = 0; i < 8; ++i) {
    path += repro::StrFormat("/d%d", i);
    ASSERT_TRUE(fs.Mkdir(path).ok()) << path;
  }
  ASSERT_TRUE(fs.Create(path + "/leaf").ok());
  EXPECT_TRUE(fs.Stat(path + "/leaf").ok());
}

TEST(HopsFsOps, LeaderElected) {
  TestFs fs;
  Namenode* leader = fs.deployment->leader();
  ASSERT_NE(leader, nullptr);
  EXPECT_TRUE(leader->is_leader());
  // Exactly one leader, and it is the lowest-id alive namenode (§II-A2).
  int leaders = 0;
  for (const auto& nn : fs.deployment->namenodes()) {
    if (nn->is_leader()) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
  EXPECT_EQ(leader->id(), 0);
}

TEST(HopsFsOps, LeaderFailoverElectsNextNn) {
  TestFs fs;
  ASSERT_EQ(fs.deployment->leader()->id(), 0);
  fs.deployment->namenode(0)->Crash();
  fs.sim->RunFor(Seconds(10));  // several election rounds
  Namenode* leader = fs.deployment->leader();
  ASSERT_NE(leader, nullptr);
  EXPECT_EQ(leader->id(), 1);
  EXPECT_TRUE(leader->is_leader());
}

TEST(HopsFsOps, ClientFailsOverWhenNamenodeDies) {
  TestFs fs;
  ASSERT_TRUE(fs.Mkdir("/ha").ok());
  ASSERT_TRUE(fs.Create("/ha/f").ok());
  Namenode* sticky = fs.client->current_nn();
  ASSERT_NE(sticky, nullptr);
  sticky->Crash();
  // The next op times out on the dead NN, re-picks, and succeeds.
  EXPECT_TRUE(fs.Run([&](auto cb) { fs.client->Stat("/ha/f", cb); },
                     Seconds(60))
                  .ok());
  EXPECT_NE(fs.client->current_nn(), sticky);
}

TEST(HopsFsOps, SurvivesNdbDatanodeFailure) {
  TestFs fs;
  ASSERT_TRUE(fs.Mkdir("/ndbha").ok());
  ASSERT_TRUE(fs.Create("/ndbha/f").ok());
  // Kill one NDB datanode; its node-group peers promote their backups.
  fs.deployment->ndb().CrashDatanode(0);
  fs.sim->RunFor(Seconds(2));  // detection + failover
  EXPECT_TRUE(fs.deployment->ndb().cluster_up());
  EXPECT_TRUE(fs.Run([&](auto cb) { fs.client->Stat("/ndbha/f", cb); },
                     Seconds(60))
                  .ok());
  EXPECT_TRUE(fs.Create("/ndbha/g").ok());
}

}  // namespace
}  // namespace repro::hopsfs

namespace repro::hopsfs {
namespace {

TEST(HopsFsDurability, FilesystemSurvivesFullClusterRestart) {
  // Full-stack version of the NDB durability test: after a whole-cluster
  // outage, everything covered by a durable global checkpoint — the
  // namespace included — is still there.
  Simulation sim(31);
  auto options = DeploymentOptions::FromPaperSetup(
      PaperSetup::kHopsFsCl_3_3, /*num_namenodes=*/3);
  options.ndb_datanodes = 6;
  options.ndb_node.enable_durability = true;
  Deployment dep(sim, options);
  dep.Start();
  sim.RunFor(Seconds(3));
  HopsFsClient* client = dep.AddClient(0);

  auto run = [&](auto op) {
    Status out = Internal("hung");
    bool done = false;
    op([&](Status s) {
      out = s;
      done = true;
    });
    while (!done) sim.RunFor(kMillisecond);
    return out;
  };
  ASSERT_TRUE(run([&](auto cb) { client->Mkdir("/crashsafe", cb); }).ok());
  ASSERT_TRUE(
      run([&](auto cb) { client->Create("/crashsafe/f", 2048, cb); }).ok());

  // Let a global checkpoint cover the writes, then lose the cluster.
  sim.RunFor(Seconds(2));
  dep.ndb().RecoverFromCheckpoint();
  sim.RunFor(Seconds(1));

  EXPECT_TRUE(run([&](auto cb) { client->Stat("/crashsafe/f", cb); }).ok())
      << "checkpointed namespace lost across the outage";
  EXPECT_TRUE(
      run([&](auto cb) { client->Create("/crashsafe/post", 0, cb); }).ok())
      << "recovered cluster refuses new transactions";
}

}  // namespace
}  // namespace repro::hopsfs
