// Property-based tests of the NDB substrate, parameterised over cluster
// shapes and feature flags: after an arbitrary mix of concurrent
// transactions (with conflicts, aborts, and optionally a node failure),
// the storage must reach a clean, convergent state:
//   P1. all alive replicas of every row hold identical committed values,
//   P2. no row locks remain held,
//   P3. no pending (uncommitted) versions remain,
//   P4. the final committed value of each key is the value of some
//       acknowledged-committed write to that key (no invented data).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "ndb_test_util.h"
#include "util/strings.h"

namespace repro::ndb {
namespace {

struct PropParam {
  int datanodes;
  int replication;
  bool az_aware;
  bool read_backup;
  bool kill_a_node;
  uint64_t seed;
};

class NdbPropertyTest : public ::testing::TestWithParam<PropParam> {};

TEST_P(NdbPropertyTest, RandomTransactionsConverge) {
  const auto p = GetParam();
  testing::TestCluster tc(p.datanodes, p.replication, p.az_aware,
                          p.read_backup);
  tc.cluster->StartProtocols();
  Rng rng(p.seed);

  constexpr int kKeys = 12;
  constexpr int kClients = 8;
  constexpr int kOpsPerClient = 30;
  auto key_of = [](int k) { return StrFormat("%d/k", k); };

  // Acknowledged committed values per key (what P4 checks against).
  auto acked = std::make_shared<std::map<std::string, std::set<std::string>>>();
  for (int k = 0; k < kKeys; ++k) {
    (*acked)[key_of(k)].insert("");  // "never written" is acceptable
  }
  auto outstanding = std::make_shared<int>(kClients);

  // Each simulated client runs a chain of small transactions.
  for (int c = 0; c < kClients; ++c) {
    auto run = std::make_shared<std::function<void(int)>>();
    std::weak_ptr<std::function<void(int)>> weak = run;
    auto client_rng = std::make_shared<Rng>(rng.Split());
    *run = [&tc, acked, outstanding, weak, client_rng, c,
            key_of](int remaining) {
      auto self = weak.lock();
      if (!self) return;
      if (remaining == 0) {
        --*outstanding;
        return;
      }
      Rng& rng = *client_rng;
      const std::string key = key_of(static_cast<int>(rng.NextBelow(kKeys)));
      const std::string value = StrFormat("c%d-%d", c, remaining);
      const TxnId txn = tc.api->Begin(tc.inode_table, key);
      if (txn == 0) {
        tc.sim->After(Millis(10), [self, remaining] { (*self)(remaining); });
        return;
      }
      const int action = static_cast<int>(rng.NextBelow(4));
      auto next = [&tc, self, remaining](Nanos delay) {
        tc.sim->After(delay, [self, remaining] { (*self)(remaining - 1); });
      };
      switch (action) {
        case 0:  // blind upsert + commit
          tc.api->Write(txn, tc.inode_table, key, value,
                        [&tc, txn, key, value, acked, next](Code code) {
                          if (code != Code::kOk) {
                            tc.api->Abort(txn);
                            next(Millis(5));
                            return;
                          }
                          tc.api->Commit(txn, [key, value, acked,
                                               next](Code c2) {
                            if (c2 == Code::kOk) (*acked)[key].insert(value);
                            next(0);
                          });
                        });
          break;
        case 1:  // locked read-modify-write
          tc.api->Read(
              txn, tc.inode_table, key, LockMode::kExclusive,
              [&tc, txn, key, value, acked, next](Code code, auto) {
                if (code != Code::kOk && code != Code::kNotFound) {
                  tc.api->Abort(txn);
                  next(Millis(5));
                  return;
                }
                tc.api->Write(txn, tc.inode_table, key, value,
                              [&tc, txn, key, value, acked, next](Code c2) {
                                if (c2 != Code::kOk) {
                                  tc.api->Abort(txn);
                                  next(Millis(5));
                                  return;
                                }
                                tc.api->Commit(
                                    txn, [key, value, acked, next](Code c3) {
                                      if (c3 == Code::kOk) {
                                        (*acked)[key].insert(value);
                                      }
                                      next(0);
                                    });
                              });
              });
          break;
        case 2:  // write then abort (must leave no trace)
          tc.api->Write(txn, tc.inode_table, key, value,
                        [&tc, txn, next](Code) {
                          tc.api->Abort(txn);
                          next(0);
                        });
          break;
        default:  // committed read (routing exercise)
          tc.api->Read(txn, tc.inode_table, key, LockMode::kReadCommitted,
                       [&tc, txn, next](Code, auto) {
                         tc.api->Commit(txn, [next](Code) { next(0); });
                       });
          break;
      }
    };
    (*run)(kOpsPerClient);
  }

  if (p.kill_a_node) {
    tc.sim->After(Millis(80), [&tc] { tc.cluster->CrashDatanode(1); });
  }

  // Drive until all clients finished (plus quiesce time for Complete
  // phases, lock releases and failure handling).
  const Nanos deadline = Seconds(120);
  while (*outstanding > 0 && tc.sim->now() < deadline) {
    tc.sim->RunFor(Millis(10));
  }
  ASSERT_EQ(*outstanding, 0) << "clients did not finish";
  tc.sim->RunFor(Seconds(5));

  auto& layout = tc.cluster->layout();
  for (int k = 0; k < kKeys; ++k) {
    const std::string key = key_of(k);
    const PartitionId part = layout.PartitionOf(tc.inode_table, key);

    // P1 + P4: all alive replicas agree, on an acknowledged value.
    std::set<std::string> values;
    for (NodeId n : layout.ReplicaChain(part)) {
      if (!layout.alive(n)) continue;
      auto v = tc.cluster->datanode(n).store().Read(tc.inode_table, key, 0);
      values.insert(v.value_or(""));
    }
    EXPECT_LE(values.size(), 1u)
        << "replicas diverge on " << key << " (" << values.size()
        << " distinct values)";
    if (!values.empty()) {
      EXPECT_TRUE((*acked)[key].count(*values.begin()))
          << "committed value of " << key
          << " was never acknowledged to any client";
    }

    // P2 + P3: no leaked locks or pending versions anywhere.
    for (int n = 0; n < tc.cluster->num_datanodes(); ++n) {
      if (!layout.alive(n)) continue;
      EXPECT_FALSE(tc.cluster->datanode(n).locks().IsLocked(tc.inode_table,
                                                            key))
          << "lock leaked on " << key << " at node " << n;
      EXPECT_FALSE(
          tc.cluster->datanode(n).store().HasPending(tc.inode_table, key))
          << "pending version leaked on " << key << " at node " << n;
    }
  }

  // P2 global: coordinators hold no transaction state.
  for (int n = 0; n < tc.cluster->num_datanodes(); ++n) {
    if (layout.alive(n)) {
      EXPECT_EQ(tc.cluster->datanode(n).active_txns(), 0)
          << "node " << n << " still coordinates transactions";
    }
  }
}

std::vector<PropParam> AllPropParams() {
  std::vector<PropParam> out;
  for (bool cl : {false, true}) {
    for (bool kill : {false, true}) {
      for (uint64_t seed : {101ull, 202ull}) {
        out.push_back(PropParam{6, 3, cl, cl, kill, seed});
        out.push_back(PropParam{6, 2, cl, cl, kill, seed + 1});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, NdbPropertyTest, ::testing::ValuesIn(AllPropParams()),
    [](const ::testing::TestParamInfo<PropParam>& info) {
      const auto& p = info.param;
      return StrFormat("n%d_r%d_%s_%s_s%llu", p.datanodes, p.replication,
                       p.az_aware ? "cl" : "vanilla",
                       p.kill_a_node ? "kill" : "steady",
                       static_cast<unsigned long long>(p.seed));
    });

}  // namespace
}  // namespace repro::ndb
