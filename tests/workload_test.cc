// Tests for the workload generator and closed-loop driver.
#include <gtest/gtest.h>

#include <map>

#include "util/strings.h"
#include "workload/driver.h"
#include "workload/spotify.h"

namespace repro::workload {
namespace {

TEST(SpotifyWorkload, MixSumsToOneHundredPercent) {
  double total = 0;
  for (const auto& e : SpotifyMix()) total += e.weight;
  EXPECT_NEAR(total, 100.0, 0.5);
}

TEST(SpotifyWorkload, MixIsReadDominated) {
  double reads = 0, writes = 0;
  for (const auto& e : SpotifyMix()) {
    switch (e.op) {
      case FsOp::kStat:
      case FsOp::kOpenRead:
      case FsOp::kListDir:
        reads += e.weight;
        break;
      default:
        writes += e.weight;
    }
  }
  // The Spotify trace is ~94% reads.
  EXPECT_GT(reads / (reads + writes), 0.88);
}

TEST(SpotifyWorkload, NamespaceShape) {
  NamespaceConfig cfg;
  cfg.users = 10;
  cfg.dirs_per_user = 2;
  cfg.files_per_dir = 3;
  SpotifyWorkload wl(cfg, 1);
  // 1 "/user" + per user: home + 2 leaf dirs.
  EXPECT_EQ(wl.all_dirs().size(), 1u + 10u * 3u);
  EXPECT_EQ(wl.all_files().size(), 10u * 2u * 3u);
  // Parents come before children (bootstrap requirement).
  EXPECT_EQ(wl.all_dirs().front(), "/user");
}

TEST(SpotifyWorkload, DrawsMatchMixFractions) {
  NamespaceConfig cfg;
  SpotifyWorkload wl(cfg, 2);
  Rng rng(7);
  std::vector<std::string> owned;
  std::map<FsOp, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; ++i) counts[wl.Next(rng, owned).op] += 1;
  // listDir ~57%, stat ~21.6%, read ~11.3% (+-2 points).
  EXPECT_NEAR(100.0 * counts[FsOp::kListDir] / n, 57.0, 2.0);
  EXPECT_NEAR(100.0 * counts[FsOp::kStat] / n, 21.6, 2.0);
  EXPECT_NEAR(100.0 * counts[FsOp::kOpenRead] / n, 11.3, 2.0);
}

TEST(SpotifyWorkload, ReadsAreSkewedMutationsAreNot) {
  NamespaceConfig cfg;
  SpotifyWorkload wl(cfg, 3);
  Rng rng(8);
  std::vector<std::string> owned;
  std::map<std::string, int> stat_targets;
  int stats = 0;
  for (int i = 0; i < 200000 && stats < 20000; ++i) {
    auto op = wl.Next(rng, owned);
    if (op.op == FsOp::kStat) {
      ++stats;
      stat_targets[op.path] += 1;
    }
  }
  // The hottest file should receive far more than a uniform share
  // (uniform over 8192 files would be ~0.012%).
  int hottest = 0;
  for (const auto& [p, c] : stat_targets) hottest = std::max(hottest, c);
  EXPECT_GT(100.0 * hottest / stats, 0.2);
}

TEST(SpotifyWorkload, DeleteTargetsPreviouslyCreatedFiles) {
  NamespaceConfig cfg;
  SpotifyWorkload wl(cfg, 4);
  Rng rng(9);
  std::vector<std::string> owned;
  std::set<std::string> created;
  for (int i = 0; i < 100000; ++i) {
    auto op = wl.Next(rng, owned);
    if (op.op == FsOp::kCreate) {
      created.insert(op.path);
    } else if (op.op == FsOp::kDelete || op.op == FsOp::kRename) {
      EXPECT_TRUE(created.count(op.path))
          << "mutation target was never created: " << op.path;
    }
  }
}

TEST(SpotifyWorkload, FreshNamesNeverCollide) {
  NamespaceConfig cfg;
  SpotifyWorkload wl(cfg, 5);
  Rng rng(10);
  std::vector<std::string> owned;
  std::set<std::string> fresh;
  for (int i = 0; i < 50000; ++i) {
    auto op = wl.Next(rng, owned);
    if (op.op == FsOp::kCreate || op.op == FsOp::kMkdir) {
      EXPECT_TRUE(fresh.insert(op.path).second)
          << "duplicate fresh name " << op.path;
    }
  }
}

TEST(SpotifyWorkload, PopularPathsCoverTopDirectories) {
  NamespaceConfig cfg;
  SpotifyWorkload wl(cfg, 6);
  auto popular = wl.PopularPaths(10);
  // 10 dirs, each contributing itself + its files.
  EXPECT_EQ(popular.size(), 10u * (1 + cfg.files_per_dir));
}

// A trivial in-memory target to exercise the driver in isolation.
class FakeTarget : public FsTarget {
 public:
  FakeTarget(Simulation& sim, Nanos latency) : sim_(sim), latency_(latency) {}

  void Execute(FsOp, const std::string&, const std::string&, int64_t,
               std::function<void(Status)> done) override {
    ++issued_;
    sim_.After(latency_, [done = std::move(done)] { done(OkStatus()); });
  }
  AzId az() const override { return 0; }

  int issued_ = 0;

 private:
  Simulation& sim_;
  Nanos latency_;
};

TEST(ClosedLoopDriver, ThroughputMatchesLittleLaw) {
  Simulation sim(1);
  FakeTarget t1(sim, Millis(10)), t2(sim, Millis(10));
  ClosedLoopDriver driver(
      sim, {&t1, &t2}, [](Rng&, std::vector<std::string>&) {
        return SpotifyWorkload::Op{FsOp::kStat, "/x", "", 0};
      });
  auto res = driver.Run(Millis(100), Seconds(1));
  // 2 clients at 10 ms per op -> 200 ops/s.
  EXPECT_NEAR(res.ops_per_sec(), 200, 5);
  EXPECT_NEAR(res.all.MeanMillis(), 10, 0.5);
  EXPECT_EQ(res.failed, 0);
}

TEST(ClosedLoopDriver, WarmupExcludedFromResults) {
  Simulation sim(2);
  FakeTarget t(sim, Millis(10));
  ClosedLoopDriver driver(
      sim, {&t}, [](Rng&, std::vector<std::string>&) {
        return SpotifyWorkload::Op{FsOp::kStat, "/x", "", 0};
      });
  auto res = driver.Run(Seconds(1), Millis(500));
  // ~150 issued total, but only ~50 in the measure window.
  EXPECT_NEAR(static_cast<double>(res.completed), 50, 3);
  EXPECT_GT(t.issued_, 140);
}

TEST(ClosedLoopDriver, MeasureStartHookFires) {
  Simulation sim(3);
  FakeTarget t(sim, Millis(5));
  ClosedLoopDriver driver(
      sim, {&t}, [](Rng&, std::vector<std::string>&) {
        return SpotifyWorkload::Op{FsOp::kStat, "/x", "", 0};
      });
  Nanos hook_time = -1;
  driver.Run(Millis(100), Millis(100),
             [&] { hook_time = sim.now(); });
  EXPECT_EQ(hook_time, Millis(100));
}

}  // namespace
}  // namespace repro::workload
