// Tests for the windowed time-series metrics, CSV export, and the
// counter/gauge/histogram registry (labels, legacy-name shim, reports).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "metrics/counters.h"
#include "metrics/timeseries.h"

namespace repro::metrics {
namespace {

TEST(TimeSeries, WindowsAccumulateCountsAndSums) {
  TimeSeries ts(Millis(100));
  ts.Record(Millis(10), 5.0);
  ts.Record(Millis(90), 7.0);
  ts.Record(Millis(150), 1.0);
  ASSERT_EQ(ts.windows().size(), 2u);
  EXPECT_EQ(ts.windows()[0].count, 2);
  EXPECT_DOUBLE_EQ(ts.windows()[0].sum, 12.0);
  EXPECT_DOUBLE_EQ(ts.windows()[0].mean(), 6.0);
  EXPECT_EQ(ts.windows()[1].count, 1);
  EXPECT_EQ(ts.windows()[0].start, 0);
  EXPECT_EQ(ts.windows()[1].start, Millis(100));
}

TEST(TimeSeries, RatePerSecondScalesByWindow) {
  TimeSeries ts(Millis(100));
  for (int i = 0; i < 50; ++i) ts.Record(Millis(i));
  const auto rates = ts.RatePerSecond();
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0], 500.0);  // 50 events / 0.1 s
}

TEST(TimeSeries, GapsProduceEmptyWindows) {
  TimeSeries ts(Millis(100));
  ts.Record(Millis(50));
  ts.Record(Millis(450));
  ASSERT_EQ(ts.windows().size(), 5u);
  EXPECT_EQ(ts.windows()[2].count, 0);
  EXPECT_EQ(ts.RatePerSecond()[2], 0.0);
}

TEST(TimeSeries, SparklineTracksLoad) {
  TimeSeries ts(Millis(100));
  for (int i = 0; i < 100; ++i) ts.Record(Millis(10));   // busy window
  ts.Record(Millis(150));                                // quiet window
  const std::string spark = ts.Sparkline();
  ASSERT_EQ(spark.size(), 2u);
  EXPECT_EQ(spark[0], '#');
  EXPECT_NE(spark[1], '#');
}

TEST(TimeSeries, EdgeSampleBelongsToTheWindowItOpens) {
  // Windows are half-open [i*w, (i+1)*w): a sample at exactly t = w
  // lands in window 1, never window 0.
  TimeSeries ts(Millis(100));
  ts.Record(0);
  ts.Record(Millis(100));
  ASSERT_EQ(ts.windows().size(), 2u);
  EXPECT_EQ(ts.windows()[0].count, 1);
  EXPECT_EQ(ts.windows()[1].count, 1);
}

TEST(TimeSeries, EmptyWindowsAreNoDataNotZero) {
  TimeSeries ts(Millis(100));
  ts.Record(Millis(50), 4.0);
  ts.Record(Millis(250), 8.0);
  ASSERT_EQ(ts.windows().size(), 3u);
  EXPECT_TRUE(std::isnan(ts.windows()[1].mean()));
  EXPECT_TRUE(std::isnan(ts.MeanPerWindow()[1]));
  EXPECT_DOUBLE_EQ(ts.RatePerSecond()[1], 0.0);  // rates ARE true zeros
  ASSERT_TRUE(ts.MeanAt(Millis(50)).has_value());
  EXPECT_DOUBLE_EQ(*ts.MeanAt(Millis(50)), 4.0);
  EXPECT_FALSE(ts.MeanAt(Millis(150)).has_value());  // covered but empty
  EXPECT_FALSE(ts.MeanAt(Millis(999)).has_value());  // past coverage
}

TEST(Csv, WritesAlignedColumns) {
  const std::string path = "/tmp/repro_metrics_test.csv";
  ASSERT_TRUE(WriteCsv(path, {{"t", {0, 1, 2}}, {"ops", {10, 20}}}));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "t,ops");
  std::getline(in, line);
  EXPECT_EQ(line, "0,10");
  std::getline(in, line);
  EXPECT_EQ(line, "1,20");
  std::getline(in, line);
  EXPECT_EQ(line, "2,");  // padded
  std::remove(path.c_str());
}

TEST(Registry, LabelsEncodeSortedIntoFullNames) {
  const Labels labels{{"zone", "b"}, {"az", "1"}};
  EXPECT_EQ(labels.Encode(), "{az=1,zone=b}");
  EXPECT_EQ(FullName("host.up", labels), "host.up{az=1,zone=b}");
  EXPECT_EQ(Labels{}.Encode(), "");
}

TEST(Registry, GaugesAndHistograms) {
  Registry reg;
  Gauge* g = reg.GetGauge("ndb.tc.queue_depth");
  g->Set(5);
  g->Add(2);
  EXPECT_DOUBLE_EQ(g->value(), 7);
  EXPECT_EQ(reg.GetGauge("ndb.tc.queue_depth"), g);

  HistogramMetric* h = reg.GetHistogram("op.latency", {10, 100});
  h->Observe(5);
  h->Observe(50);
  h->Observe(500);
  EXPECT_EQ(h->count(), 3);
  EXPECT_DOUBLE_EQ(h->sum(), 555);
  ASSERT_EQ(h->bucket_counts().size(), 2u);
  EXPECT_EQ(h->bucket_counts()[0], 1);  // cumulative: <= 10
  EXPECT_EQ(h->bucket_counts()[1], 2);  // <= 100
}

TEST(Registry, LegacyCounterNamesAliasToCanonical) {
  EXPECT_EQ(CanonicalCounterName("client.retries"), "hopsfs.client.retries");
  EXPECT_EQ(LegacyCounterName("hopsfs.client.retries"), "client.retries");
  EXPECT_EQ(CanonicalCounterName("hopsfs.client.retries"), "");
  EXPECT_EQ(LegacyCounterName("never.renamed"), "");

  // Old call sites and new ones share ONE counter.
  Registry reg;
  Counter* legacy = reg.GetCounter("nn.admission.shed");
  legacy->Add(3);
  Counter* canonical = reg.GetCounter("hopsfs.nn.admission_shed");
  EXPECT_EQ(legacy, canonical);
  EXPECT_EQ(canonical->value(), 3);
}

TEST(Registry, ReportMatchesWholeDottedSegments) {
  EXPECT_TRUE(MatchesSegmentPrefix("ndb.tc.commits", "ndb.tc"));
  EXPECT_TRUE(MatchesSegmentPrefix("ndb.tc", "ndb.tc"));
  EXPECT_TRUE(MatchesSegmentPrefix("ndb.tc{az=1}", "ndb.tc"));
  EXPECT_FALSE(MatchesSegmentPrefix("ndb.tcp_retrans", "ndb.tc"));
  EXPECT_TRUE(MatchesSegmentPrefix("anything.at.all", ""));

  Registry reg;
  reg.GetCounter("ndb.tc.commits")->Add(1);
  reg.GetCounter("ndb.tcp_retrans")->Add(1);
  reg.GetCounter("client.retries")->Add(2);  // legacy spelling
  const std::string tc = reg.Report("ndb.tc");
  EXPECT_NE(tc.find("ndb.tc.commits"), std::string::npos);
  EXPECT_EQ(tc.find("ndb.tcp_retrans"), std::string::npos);
  // A legacy prefix still selects the renamed counter, annotated.
  const std::string client = reg.Report("client");
  EXPECT_NE(client.find("hopsfs.client.retries = 2"), std::string::npos);
  EXPECT_NE(client.find("(was client.retries)"), std::string::npos);
}

}  // namespace
}  // namespace repro::metrics
