// Tests for the windowed time-series metrics and CSV export.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "metrics/timeseries.h"

namespace repro::metrics {
namespace {

TEST(TimeSeries, WindowsAccumulateCountsAndSums) {
  TimeSeries ts(Millis(100));
  ts.Record(Millis(10), 5.0);
  ts.Record(Millis(90), 7.0);
  ts.Record(Millis(150), 1.0);
  ASSERT_EQ(ts.windows().size(), 2u);
  EXPECT_EQ(ts.windows()[0].count, 2);
  EXPECT_DOUBLE_EQ(ts.windows()[0].sum, 12.0);
  EXPECT_DOUBLE_EQ(ts.windows()[0].mean(), 6.0);
  EXPECT_EQ(ts.windows()[1].count, 1);
  EXPECT_EQ(ts.windows()[0].start, 0);
  EXPECT_EQ(ts.windows()[1].start, Millis(100));
}

TEST(TimeSeries, RatePerSecondScalesByWindow) {
  TimeSeries ts(Millis(100));
  for (int i = 0; i < 50; ++i) ts.Record(Millis(i));
  const auto rates = ts.RatePerSecond();
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0], 500.0);  // 50 events / 0.1 s
}

TEST(TimeSeries, GapsProduceEmptyWindows) {
  TimeSeries ts(Millis(100));
  ts.Record(Millis(50));
  ts.Record(Millis(450));
  ASSERT_EQ(ts.windows().size(), 5u);
  EXPECT_EQ(ts.windows()[2].count, 0);
  EXPECT_EQ(ts.RatePerSecond()[2], 0.0);
}

TEST(TimeSeries, SparklineTracksLoad) {
  TimeSeries ts(Millis(100));
  for (int i = 0; i < 100; ++i) ts.Record(Millis(10));   // busy window
  ts.Record(Millis(150));                                // quiet window
  const std::string spark = ts.Sparkline();
  ASSERT_EQ(spark.size(), 2u);
  EXPECT_EQ(spark[0], '#');
  EXPECT_NE(spark[1], '#');
}

TEST(Csv, WritesAlignedColumns) {
  const std::string path = "/tmp/repro_metrics_test.csv";
  ASSERT_TRUE(WriteCsv(path, {{"t", {0, 1, 2}}, {"ops", {10, 20}}}));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "t,ops");
  std::getline(in, line);
  EXPECT_EQ(line, "0,10");
  std::getline(in, line);
  EXPECT_EQ(line, "1,20");
  std::getline(in, line);
  EXPECT_EQ(line, "2,");  // padded
  std::remove(path.c_str());
}

}  // namespace
}  // namespace repro::metrics
