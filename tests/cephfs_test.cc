// Tests for the CephFS baseline: metadata semantics, kernel-cache
// capabilities and invalidation, subtree authority, forwarding, and the
// dynamic balancer.
#include <gtest/gtest.h>

#include <memory>

#include "cephfs/cluster.h"
#include "util/strings.h"

namespace repro::cephfs {
namespace {

struct TestCeph {
  explicit TestCeph(CephVariant variant = CephVariant::kDefault,
                    int num_mds = 3) {
    sim = std::make_unique<Simulation>(11);
    topology = std::make_unique<Topology>(3, AzLatencyTable::UsWest1());
    topology->set_jitter_fraction(0);
    network = std::make_unique<Network>(*sim, *topology);
    CephConfig config;
    config.variant = variant;
    config.num_mds = num_mds;
    cluster = std::make_unique<CephCluster>(*sim, *network, config);
    // Bootstrap a small namespace.
    std::vector<std::string> dirs = {"/user"};
    std::vector<std::string> files;
    for (int u = 0; u < 8; ++u) {
      dirs.push_back(StrFormat("/user/u%d", u));
      dirs.push_back(StrFormat("/user/u%d/d0", u));
      files.push_back(StrFormat("/user/u%d/d0/f0", u));
    }
    cluster->BootstrapNamespace(dirs, files);
    cluster->Start();
    client = cluster->AddClient(0);
  }

  Status Do(FsOp op, const std::string& path, const std::string& path2 = "",
            int64_t size = 0) {
    Status out = Internal("hung");
    bool done = false;
    client->Execute(op, path, path2, size, [&](Status s) {
      out = s;
      done = true;
    });
    const Nanos deadline = sim->now() + 20 * kSecond;
    while (!done && sim->now() < deadline) sim->RunFor(kMillisecond);
    EXPECT_TRUE(done);
    return out;
  }

  std::unique_ptr<Simulation> sim;
  std::unique_ptr<Topology> topology;
  std::unique_ptr<Network> network;
  std::unique_ptr<CephCluster> cluster;
  CephClient* client = nullptr;
};

TEST(CephFs, StatBootstrappedFile) {
  TestCeph fs;
  EXPECT_TRUE(fs.Do(FsOp::kStat, "/user/u1/d0/f0").ok());
  EXPECT_EQ(fs.Do(FsOp::kStat, "/user/u1/d0/nope").code(), Code::kNotFound);
}

TEST(CephFs, CreateDeleteCycle) {
  TestCeph fs;
  EXPECT_TRUE(fs.Do(FsOp::kCreate, "/user/u2/d0/new").ok());
  EXPECT_TRUE(fs.Do(FsOp::kStat, "/user/u2/d0/new").ok());
  EXPECT_TRUE(fs.Do(FsOp::kDelete, "/user/u2/d0/new").ok());
  EXPECT_EQ(fs.Do(FsOp::kStat, "/user/u2/d0/new").code(), Code::kNotFound);
}

TEST(CephFs, MkdirRequiresParent) {
  TestCeph fs;
  EXPECT_EQ(fs.Do(FsOp::kMkdir, "/user/u9missing/x").code(),
            Code::kNotFound);
  EXPECT_TRUE(fs.Do(FsOp::kMkdir, "/user/u3/d1").ok());
  EXPECT_EQ(fs.Do(FsOp::kMkdir, "/user/u3/d1").code(), Code::kAlreadyExists);
}

TEST(CephFs, DeleteNonEmptyDirFails) {
  TestCeph fs;
  EXPECT_EQ(fs.Do(FsOp::kDelete, "/user/u4/d0").code(),
            Code::kFailedPrecondition);
}

TEST(CephFs, RenameWithinSubtree) {
  TestCeph fs;
  EXPECT_TRUE(fs.Do(FsOp::kRename, "/user/u5/d0/f0", "/user/u5/d0/g0").ok());
  EXPECT_EQ(fs.Do(FsOp::kStat, "/user/u5/d0/f0").code(), Code::kNotFound);
  EXPECT_TRUE(fs.Do(FsOp::kStat, "/user/u5/d0/g0").ok());
}

TEST(CephFs, KernelCacheHitsAfterFirstStat) {
  TestCeph fs;
  ASSERT_TRUE(fs.Do(FsOp::kStat, "/user/u1/d0/f0").ok());
  const int64_t misses_before = fs.client->cache_misses();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fs.Do(FsOp::kStat, "/user/u1/d0/f0").ok());
  }
  EXPECT_EQ(fs.client->cache_misses(), misses_before);
  EXPECT_GE(fs.client->cache_hits(), 10);
}

TEST(CephFs, SkipKCacheNeverCaches) {
  TestCeph fs(CephVariant::kSkipKCache);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(fs.Do(FsOp::kStat, "/user/u1/d0/f0").ok());
  }
  EXPECT_EQ(fs.client->cache_hits(), 0);
  EXPECT_EQ(fs.client->cache_misses(), 5);
}

TEST(CephFs, MutationInvalidatesOtherClientsCache) {
  TestCeph fs;
  CephClient* other = fs.cluster->AddClient(1);
  // Other client caches the file's parent listing and the file itself.
  bool done = false;
  other->Execute(FsOp::kStat, "/user/u6/d0/f0", "", 0, [&](Status s) {
    EXPECT_TRUE(s.ok());
    done = true;
  });
  while (!done) fs.sim->RunFor(kMillisecond);
  const int64_t hits_before = other->cache_hits();

  // First client mutates the file: the MDS must recall the cap.
  ASSERT_TRUE(fs.Do(FsOp::kChmod, "/user/u6/d0/f0").ok());
  fs.sim->RunFor(Millis(50));  // recall message delivery

  // Other client's next stat must miss (go back to the MDS).
  done = false;
  other->Execute(FsOp::kStat, "/user/u6/d0/f0", "", 0, [&](Status s) {
    EXPECT_TRUE(s.ok());
    done = true;
  });
  while (!done) fs.sim->RunFor(kMillisecond);
  EXPECT_EQ(other->cache_hits(), hits_before);
}

TEST(CephFs, SubtreeAuthorityIsDeterministic) {
  TestCeph fs(CephVariant::kDirPinned, 4);
  // Pinned: subtree s owned by rank s % 4, stable across calls.
  for (int u = 0; u < 8; ++u) {
    const std::string path = StrFormat("/user/u%d/d0/f0", u);
    const int owner = fs.cluster->OwnerOf(path);
    EXPECT_EQ(owner, (u + 1) % 4);
    EXPECT_EQ(fs.cluster->OwnerOf(path), owner);
  }
}

TEST(CephFs, RequestsReachCorrectOwnerAcrossRanks) {
  TestCeph fs(CephVariant::kDirPinned, 4);
  // Ops on files owned by every rank must all succeed via routing.
  for (int u = 0; u < 8; ++u) {
    EXPECT_TRUE(fs.Do(FsOp::kStat, StrFormat("/user/u%d/d0/f0", u)).ok());
  }
}

TEST(CephFs, DynamicBalancerMovesSubtreesUnderSkew) {
  TestCeph fs(CephVariant::kDefault, 3);
  const std::string hot = "/user/u1/d0/f0";
  const int owner_before = fs.cluster->OwnerOf(hot);
  // Hammer one subtree so the balancer sees skew, across balance rounds.
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(fs.Do(FsOp::kChmod, hot).ok());  // mutations bypass cache
    }
    fs.sim->RunFor(11 * kSecond);  // one balance interval
  }
  // The map version must have advanced (migrations happened) and the
  // namespace must still be fully readable.
  EXPECT_GT(fs.cluster->map_version(), 1);
  EXPECT_TRUE(fs.Do(FsOp::kStat, hot).ok());
  (void)owner_before;
}

TEST(CephFs, JournalReachesOsdDisks) {
  TestCeph fs;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        fs.Do(FsOp::kCreate, StrFormat("/user/u0/d0/j%d", i)).ok());
  }
  fs.sim->RunFor(Seconds(1));  // flush interval
  int64_t disk_bytes = 0;
  for (int i = 0; i < fs.cluster->num_osds(); ++i) {
    disk_bytes += fs.cluster->osd(i).disk().stats().bytes_written;
  }
  EXPECT_GT(disk_bytes, 0) << "journal never flushed to the OSD pool";
}

}  // namespace
}  // namespace repro::cephfs

namespace repro::cephfs {
namespace {

// Parameterised semantic sweep: all three CephFS variants must expose
// identical namespace semantics (they only differ in caching/placement).
class CephVariantTest : public ::testing::TestWithParam<CephVariant> {};

TEST_P(CephVariantTest, NamespaceSemanticsIdenticalAcrossVariants) {
  TestCeph fs(GetParam(), /*num_mds=*/4);
  EXPECT_TRUE(fs.Do(FsOp::kMkdir, "/user/u1/new").ok());
  EXPECT_EQ(fs.Do(FsOp::kMkdir, "/user/u1/new").code(),
            Code::kAlreadyExists);
  EXPECT_TRUE(fs.Do(FsOp::kCreate, "/user/u1/new/f").ok());
  EXPECT_TRUE(fs.Do(FsOp::kStat, "/user/u1/new/f").ok());
  EXPECT_EQ(fs.Do(FsOp::kDelete, "/user/u1/new").code(),
            Code::kFailedPrecondition);
  EXPECT_TRUE(fs.Do(FsOp::kRename, "/user/u1/new/f", "/user/u1/new/g").ok());
  EXPECT_EQ(fs.Do(FsOp::kStat, "/user/u1/new/f").code(), Code::kNotFound);
  EXPECT_TRUE(fs.Do(FsOp::kDelete, "/user/u1/new/g").ok());
  EXPECT_TRUE(fs.Do(FsOp::kDelete, "/user/u1/new").ok());
  EXPECT_TRUE(fs.Do(FsOp::kAppend, "/user/u1/d0/f0", "", 500).ok());
  EXPECT_TRUE(fs.Do(FsOp::kDeleteRecursive, "/user/u1/d0").ok());
  EXPECT_EQ(fs.Do(FsOp::kStat, "/user/u1/d0/f0").code(), Code::kNotFound);
}

TEST_P(CephVariantTest, MutationsVisibleAfterCacheInteraction) {
  TestCeph fs(GetParam(), 3);
  // Read (possibly caching), mutate, read again: the second read must
  // observe the mutation in every variant.
  ASSERT_TRUE(fs.Do(FsOp::kStat, "/user/u2/d0/f0").ok());
  ASSERT_TRUE(fs.Do(FsOp::kRename, "/user/u2/d0/f0", "/user/u2/d0/r").ok());
  EXPECT_EQ(fs.Do(FsOp::kStat, "/user/u2/d0/f0").code(), Code::kNotFound);
  EXPECT_TRUE(fs.Do(FsOp::kStat, "/user/u2/d0/r").ok());
}

INSTANTIATE_TEST_SUITE_P(
    Variants, CephVariantTest,
    ::testing::Values(CephVariant::kDefault, CephVariant::kDirPinned,
                      CephVariant::kSkipKCache),
    [](const ::testing::TestParamInfo<CephVariant>& info) {
      switch (info.param) {
        case CephVariant::kDefault: return "Default";
        case CephVariant::kDirPinned: return "DirPinned";
        case CephVariant::kSkipKCache: return "SkipKCache";
      }
      return "Unknown";
    });

}  // namespace
}  // namespace repro::cephfs
