// Tests for the telemetry pipeline: scraper rings, SLO burn-rate math
// (checked against hand-computed windows), health rollups including
// grey-slow and staleness detection, the Prometheus exporter, and the
// determinism contract (telemetry on vs off is byte-identical) asserted
// end-to-end through the chaos harness.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "chaos/harness.h"
#include "telemetry/export.h"
#include "telemetry/health.h"
#include "telemetry/scraper.h"
#include "telemetry/slo.h"

namespace repro::telemetry {
namespace {

// ---------------------------------------------------------------- rings

TEST(RingSeries, EvictsOldestAndIndexesOldestFirst) {
  RingSeries ring(3);
  for (int i = 0; i < 5; ++i) ring.Push(i * 100, i);
  ASSERT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.at(0).t, 200);  // 0 and 1 evicted
  EXPECT_EQ(ring.at(2).t, 400);
  EXPECT_DOUBLE_EQ(ring.latest().v, 4);
}

TEST(RingSeries, AtOrBeforePicksNewestNotAfter) {
  RingSeries ring(8);
  ring.Push(100, 1);
  ring.Push(200, 2);
  ring.Push(300, 3);
  EXPECT_DOUBLE_EQ(ring.AtOrBefore(250)->v, 2);
  EXPECT_DOUBLE_EQ(ring.AtOrBefore(300)->v, 3);
  EXPECT_FALSE(ring.AtOrBefore(99).has_value());
  EXPECT_FALSE(RingSeries(4).AtOrBefore(1000).has_value());
}

TEST(ParsedName, SplitsBaseAndLabels) {
  const ParsedName p = ParseSeriesName("host.up{az=2,host=nn-5}");
  EXPECT_EQ(p.base, "host.up");
  EXPECT_EQ(p.LabelOr("az"), "2");
  EXPECT_EQ(p.LabelOr("host"), "nn-5");
  EXPECT_EQ(p.LabelOr("missing", "d"), "d");
  EXPECT_EQ(ParseSeriesName("plain.name").base, "plain.name");
  EXPECT_TRUE(ParseSeriesName("plain.name").labels.empty());
}

// -------------------------------------------------------------- scraper

TEST(Scraper, SnapshotsCountersAndCallbacks) {
  metrics::Registry reg;
  metrics::Counter* c = reg.GetCounter("layer.thing.events");
  double polled = 7.5;
  reg.RegisterCallback("layer.thing.depth", {}, metrics::MetricKind::kGauge,
                       [&polled] { return polled; });

  Scraper scraper(&reg);
  c->Add(3);
  scraper.ScrapeOnce(1000);
  c->Add(2);
  polled = 9.0;
  scraper.ScrapeOnce(2000);

  const RingSeries* events = scraper.Find("layer.thing.events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->size(), 2u);
  EXPECT_DOUBLE_EQ(events->at(0).v, 3);
  EXPECT_DOUBLE_EQ(events->at(1).v, 5);
  EXPECT_EQ(scraper.KindOf("layer.thing.events"),
            metrics::MetricKind::kCounter);

  const RingSeries* depth = scraper.Find("layer.thing.depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_DOUBLE_EQ(depth->at(0).v, 7.5);
  EXPECT_DOUBLE_EQ(depth->at(1).v, 9.0);
  EXPECT_EQ(scraper.scrape_count(), 2);
}

// --------------------------------------------------- burn rates and SLOs

// Injects a (total, good) counter pair as scraped points at a fixed
// cadence, so window deltas are exact and hand-computable.
struct SyntheticSli {
  Scraper scraper{nullptr};
  double total = 0, good = 0;

  void Sample(Nanos t, double total_inc, double good_inc) {
    total += total_inc;
    good += good_inc;
    scraper.Inject("sli.total", metrics::MetricKind::kCounter, t, total);
    scraper.Inject("sli.good", metrics::MetricKind::kCounter, t, good);
  }
  const RingSeries* total_ring() const { return scraper.Find("sli.total"); }
  const RingSeries* good_ring() const { return scraper.Find("sli.good"); }
};

TEST(SloEngine, BurnRateMatchesHandComputedWindow) {
  SyntheticSli sli;
  // 100 requests per 100ms tick; ticks 1-5 all good, ticks 6-10 carry
  // 10 errors each.
  for (int i = 1; i <= 10; ++i) {
    sli.Sample(i * Millis(100), 100, i <= 5 ? 100 : 90);
  }
  // Window = last 500ms = ticks 6-10: 500 total, 450 good.
  // error_fraction = 50/500 = 0.10; target 0.999 -> burn = 0.10/0.001.
  const auto burn =
      SloEngine::BurnRate(sli.total_ring(), sli.good_ring(), Millis(500),
                          Millis(1000), 0.999);
  ASSERT_TRUE(burn.has_value());
  EXPECT_NEAR(*burn, 100.0, 1e-9);

  // A window wider than the series falls back to the oldest retained
  // point as baseline: ticks 2-10 = 900 total, 850 good
  // -> (50/900)/0.001.
  const auto burn_all =
      SloEngine::BurnRate(sli.total_ring(), sli.good_ring(), Millis(2000),
                          Millis(1000), 0.999);
  ASSERT_TRUE(burn_all.has_value());
  EXPECT_NEAR(*burn_all, 500.0 / 9.0, 1e-9);
}

TEST(SloEngine, NoTrafficIsNoDataNotZeroBurn) {
  SyntheticSli sli;
  sli.Sample(Millis(100), 100, 100);
  sli.Sample(Millis(200), 0, 0);  // counters frozen: no traffic
  EXPECT_FALSE(SloEngine::BurnRate(sli.total_ring(), sli.good_ring(),
                                   Millis(100), Millis(200), 0.999)
                   .has_value());
  EXPECT_FALSE(SloEngine::BurnRate(nullptr, nullptr, Millis(100), Millis(200),
                                   0.999)
                   .has_value());
}

TEST(SloEngine, FiresWhenBothWindowsBurnAndResolvesOnShortWindow) {
  SyntheticSli sli;
  SloEngine engine;
  BurnRule rule{"fast", /*short=*/Millis(200), /*long=*/Millis(600),
                /*threshold=*/10.0};
  engine.AddObjective({"availability", "sli.total", "sli.good", 0.999,
                       {rule}});

  // Healthy for 1s, then a 5% error rate (burn 50 > 10), then healthy.
  Nanos t = 0;
  auto tick = [&](double good_of_100) {
    t += Millis(100);
    sli.Sample(t, 100, good_of_100);
    engine.Evaluate(sli.scraper, t);
  };
  for (int i = 0; i < 10; ++i) tick(100);
  EXPECT_TRUE(engine.alerts().empty());

  // Errors begin. The long window (600ms) still averages in the healthy
  // ticks; the alert must fire once it too crosses the threshold:
  // after 2 bad ticks the 600ms window holds 10 errors / 600 requests
  // -> fraction 1/60 -> burn 16.7 > 10, so fire on the second bad tick.
  tick(95);
  EXPECT_EQ(engine.active_alert_count(), 0);
  tick(95);
  ASSERT_EQ(engine.alerts().size(), 1u);
  EXPECT_EQ(engine.alerts()[0].objective, "availability");
  EXPECT_EQ(engine.alerts()[0].rule, "fast");
  EXPECT_EQ(engine.alerts()[0].fired_at, t);
  EXPECT_TRUE(engine.alerts()[0].active());

  // Recovery: the short window (200ms) must read clean before resolve.
  tick(100);
  EXPECT_TRUE(engine.alerts()[0].active());  // window still has 1 bad tick
  tick(100);
  EXPECT_FALSE(engine.alerts()[0].active());
  EXPECT_EQ(engine.alerts()[0].resolved_at, t);
  EXPECT_EQ(engine.active_alert_count(), 0);
  // History keeps the resolved alert; a fresh burst appends a new one.
  tick(50);
  tick(50);
  EXPECT_EQ(engine.alerts().size(), 2u);
}

TEST(SloConfig, ScaledDownDividesEveryWindow) {
  const SloConfig prod = SloConfig::Production();
  const SloConfig scaled = prod.ScaledDown(1200);
  ASSERT_EQ(prod.rules.size(), scaled.rules.size());
  for (size_t i = 0; i < prod.rules.size(); ++i) {
    EXPECT_EQ(scaled.rules[i].short_window,
              prod.rules[i].short_window / 1200);
    EXPECT_EQ(scaled.rules[i].long_window, prod.rules[i].long_window / 1200);
    EXPECT_DOUBLE_EQ(scaled.rules[i].threshold, prod.rules[i].threshold);
  }
}

// --------------------------------------------------------------- health

// Builds a scraped history for `hosts` of one role, all in az 0 unless
// the name says otherwise. `fn(host_index, tick)` returns the per-tick
// ops increment; service/queue/error shaping is layered on by tests.
class HealthFixture : public ::testing::Test {
 protected:
  Scraper scraper{nullptr};

  void PushHost(const std::string& host, const std::string& az, Nanos t,
                bool up, double ops, double errors = 0, double queue_ns = 0,
                double busy_ns = -1, double work = -1) {
    const std::string suffix = "{az=" + az + ",host=" + host + "}";
    auto inject = [&](const std::string& base, metrics::MetricKind kind,
                      double v) {
      scraper.Inject(base + suffix, kind, t, v);
    };
    inject("host.up", metrics::MetricKind::kGauge, up ? 1 : 0);
    inject("host.ops", metrics::MetricKind::kCounter, ops);
    inject("host.errors", metrics::MetricKind::kCounter, errors);
    inject("host.queue_ns", metrics::MetricKind::kGauge, queue_ns);
    if (busy_ns >= 0) {
      inject("host.busy_ns", metrics::MetricKind::kCounter, busy_ns);
      inject("host.work", metrics::MetricKind::kCounter, work);
    }
  }

  HealthState StateOf(const HealthSnapshot& snap, const std::string& host) {
    const HostHealth* h = snap.Find(host);
    return h == nullptr ? HealthState::kHealthy : h->state;
  }
};

TEST_F(HealthFixture, DownHostRollsUpUnavailableAndAzDegradesCluster) {
  // Two hosts per AZ over two AZs; one host in az 1 is down.
  for (int tick = 1; tick <= 6; ++tick) {
    const Nanos t = tick * Millis(50);
    PushHost("nn-0", "0", t, true, 100.0 * tick);
    PushHost("nn-1", "0", t, true, 100.0 * tick);
    PushHost("nn-2", "1", t, true, 100.0 * tick);
    PushHost("nn-3", "1", t, tick < 3, 100.0 * 3);
  }
  const HealthSnapshot snap = HealthModel().Evaluate(scraper, Millis(300));
  EXPECT_EQ(StateOf(snap, "nn-3"), HealthState::kUnavailable);
  EXPECT_EQ(snap.Find("nn-3")->reason, "down");
  EXPECT_EQ(snap.az_state.at("1"), HealthState::kUnavailable);  // 1 of 2 down
  EXPECT_EQ(snap.az_state.at("0"), HealthState::kHealthy);
  // One AZ dark out of two is not a majority -> cluster degraded.
  EXPECT_EQ(snap.cluster, HealthState::kDegraded);
  EXPECT_EQ(snap.UnhealthyHosts(), std::vector<std::string>{"nn-3"});
}

TEST_F(HealthFixture, ErrorRateDegradesThenUnavailable) {
  for (int tick = 1; tick <= 6; ++tick) {
    const Nanos t = tick * Millis(50);
    PushHost("nn-0", "0", t, true, 100.0 * tick, 20.0 * tick);  // 20% errors
    PushHost("nn-1", "0", t, true, 100.0 * tick, 60.0 * tick);  // 60% errors
    PushHost("nn-2", "0", t, true, 100.0 * tick);
  }
  const HealthSnapshot snap = HealthModel().Evaluate(scraper, Millis(300));
  EXPECT_EQ(StateOf(snap, "nn-0"), HealthState::kDegraded);
  EXPECT_EQ(StateOf(snap, "nn-1"), HealthState::kUnavailable);
  EXPECT_EQ(StateOf(snap, "nn-2"), HealthState::kHealthy);
}

TEST_F(HealthFixture, ErrorRateNeedsMinimumOpsVolume) {
  // 2 errors on 4 ops is 50%, but the volume floor (20 ops) keeps an
  // idle host from flagging on a handful of failures.
  for (int tick = 1; tick <= 6; ++tick) {
    const Nanos t = tick * Millis(50);
    PushHost("nn-0", "0", t, true, 1.0 * tick, 0.5 * tick);
    PushHost("nn-1", "0", t, true, 1.0 * tick);
  }
  const HealthSnapshot snap = HealthModel().Evaluate(scraper, Millis(300));
  EXPECT_EQ(StateOf(snap, "nn-0"), HealthState::kHealthy);
}

TEST_F(HealthFixture, GreySlowServiceTimeIsPeerRelative) {
  // Four NDB nodes moving the same op volume; node 3 spends 12x the busy
  // time per work item (a CPU-stalled grey host whose queues still drain
  // between scrapes — queue depth stays zero for everyone).
  for (int tick = 1; tick <= 6; ++tick) {
    const Nanos t = tick * Millis(50);
    const double work = 500.0 * tick;
    const double busy = 20e3 * 500.0 * tick;  // 20us per op
    PushHost("ndb-dn-0", "0", t, true, work, 0, 0, busy, work);
    PushHost("ndb-dn-1", "0", t, true, work, 0, 0, busy, work);
    PushHost("ndb-dn-2", "1", t, true, work, 0, 0, busy, work);
    PushHost("ndb-dn-3", "1", t, true, work, 0, 0, 12 * busy, work);
  }
  const HealthSnapshot snap = HealthModel().Evaluate(scraper, Millis(300));
  EXPECT_EQ(StateOf(snap, "ndb-dn-3"), HealthState::kDegraded);
  EXPECT_NE(snap.Find("ndb-dn-3")->reason.find("grey-slow"),
            std::string::npos);
  EXPECT_EQ(StateOf(snap, "ndb-dn-0"), HealthState::kHealthy);
  EXPECT_EQ(StateOf(snap, "ndb-dn-1"), HealthState::kHealthy);
  EXPECT_EQ(StateOf(snap, "ndb-dn-2"), HealthState::kHealthy);
}

TEST_F(HealthFixture, GreySlowIgnoresNearIdlePools) {
  // Same 12x ratio but only a couple of work items per window — below
  // min_work_for_service, so the mean is noise, not a signal.
  for (int tick = 1; tick <= 6; ++tick) {
    const Nanos t = tick * Millis(50);
    const double work = 1.0 * tick;
    PushHost("ndb-dn-0", "0", t, true, work, 0, 0, 20e3 * work, work);
    PushHost("ndb-dn-1", "0", t, true, work, 0, 0, 20e3 * work, work);
    PushHost("ndb-dn-2", "0", t, true, work, 0, 0, 12 * 20e3 * work, work);
  }
  const HealthSnapshot snap = HealthModel().Evaluate(scraper, Millis(300));
  EXPECT_EQ(StateOf(snap, "ndb-dn-2"), HealthState::kHealthy);
}

TEST_F(HealthFixture, StalenessFiresForCounterFrozenAtNonzero) {
  // nn-0 served 600 ops, then froze, while both peers progress fast.
  for (int tick = 1; tick <= 6; ++tick) {
    const Nanos t = tick * Millis(50);
    PushHost("nn-0", "0", t, true, 600);
    PushHost("nn-1", "0", t, true, 600.0 * tick);
    PushHost("nn-2", "1", t, true, 600.0 * tick);
  }
  const HealthSnapshot snap = HealthModel().Evaluate(scraper, Millis(300));
  EXPECT_EQ(StateOf(snap, "nn-0"), HealthState::kDegraded);
  EXPECT_EQ(snap.Find("nn-0")->reason, "stale");
}

TEST_F(HealthFixture, HostFrozenAtZeroIsIdleNotStale) {
  // nn-3 has been at zero all along — AZ-sticky clients never picked it.
  // No prior progress means load imbalance, not a grey failure; and its
  // frozen counter must also keep nn-0-style peers from being the only
  // signal (a second stalled host makes the rollup ambiguous).
  for (int tick = 1; tick <= 6; ++tick) {
    const Nanos t = tick * Millis(50);
    PushHost("nn-1", "0", t, true, 600.0 * tick);
    PushHost("nn-2", "1", t, true, 600.0 * tick);
    PushHost("nn-3", "1", t, true, 0);
  }
  const HealthSnapshot snap = HealthModel().Evaluate(scraper, Millis(300));
  EXPECT_EQ(StateOf(snap, "nn-3"), HealthState::kHealthy);
  EXPECT_TRUE(snap.UnhealthyHosts().empty());
}

TEST_F(HealthFixture, TrickleTrafficPeersDoNotTriggerStaleness) {
  // Peers move, but only by a few ops per window (probe trickle, below
  // min_stale_peer_ops): one frozen host is load imbalance, not grey.
  for (int tick = 1; tick <= 6; ++tick) {
    const Nanos t = tick * Millis(50);
    PushHost("nn-0", "0", t, true, 600);
    PushHost("nn-1", "0", t, true, 600.0 + 5 * tick);
    PushHost("nn-2", "1", t, true, 600.0 + 5 * tick);
  }
  const HealthSnapshot snap = HealthModel().Evaluate(scraper, Millis(300));
  EXPECT_EQ(StateOf(snap, "nn-0"), HealthState::kHealthy);
}

TEST_F(HealthFixture, ClientsWithoutQueueSeriesAreNeverStale) {
  // Clients export no host.queue_ns; a client that legitimately stopped
  // submitting must not be flagged even with busy peers.
  for (int tick = 1; tick <= 6; ++tick) {
    const Nanos t = tick * Millis(50);
    const std::string suffix = "{az=0,host=client-0}";
    scraper.Inject("host.up" + suffix, metrics::MetricKind::kGauge,
                   t, 1);
    scraper.Inject("host.ops" + suffix, metrics::MetricKind::kCounter,
                   t, 500);
    for (int c = 1; c <= 2; ++c) {
      const std::string s =
          "{az=0,host=client-" + std::to_string(c) + "}";
      scraper.Inject("host.up" + s, metrics::MetricKind::kGauge, t, 1);
      scraper.Inject("host.ops" + s, metrics::MetricKind::kCounter, t,
                     500.0 * tick);
    }
  }
  const HealthSnapshot snap = HealthModel().Evaluate(scraper, Millis(300));
  EXPECT_EQ(StateOf(snap, "client-0"), HealthState::kHealthy);
}

// ------------------------------------------------------------ exporters

TEST(Exporters, PrometheusTextExposition) {
  metrics::Registry reg;
  reg.GetCounter("hopsfs.client.retries")->Add(4);
  reg.GetGauge("ndb.tc.active_txns", {{"az", "1"}, {"node", "3"}})->Set(7);
  reg.GetHistogram("slo.latency.seconds", {0.01, 0.1})->Observe(0.05);

  const std::string text = PrometheusText(reg);
  EXPECT_NE(text.find("# TYPE hopsfs_client_retries counter"),
            std::string::npos);
  EXPECT_NE(text.find("hopsfs_client_retries 4"), std::string::npos);
  EXPECT_NE(text.find("ndb_tc_active_txns{az=\"1\",node=\"3\"} 7"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE slo_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("slo_latency_seconds_bucket{le=\"0.01\"} 0"),
            std::string::npos);
  EXPECT_NE(text.find("slo_latency_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("slo_latency_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  // The flattened .count/.sum samples Collect() emits for histograms
  // must not double-export: exactly one _count line.
  const size_t first = text.find("slo_latency_seconds_count 1");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("slo_latency_seconds_count", first + 1),
            std::string::npos);
}

// ------------------------------------------- end-to-end chaos determinism

chaos::ChaosOptions SmallChaosOptions() {
  chaos::ChaosOptions opts;
  opts.seed = 42;
  opts.workload_clients = 6;
  opts.warmup = 1 * kSecond;
  opts.fault_window = 2 * kSecond;
  opts.settle = 2 * kSecond;
  opts.client_rpc_timeout = 250 * kMillisecond;
  opts.client_op_deadline = 1 * kSecond;
  return opts;
}

TEST(TelemetryDeterminism, ChaosRunIsByteIdenticalWithTelemetryOnOrOff) {
  chaos::FaultSchedule schedule;
  schedule.Add({600 * kMillisecond, chaos::FaultType::kCrashNdbNode, 1});
  schedule.Add({Millis(1200), chaos::FaultType::kRestartNdbNode, 1});

  chaos::ChaosOptions on = SmallChaosOptions();
  on.telemetry = true;
  chaos::ChaosOptions off = SmallChaosOptions();
  off.telemetry = false;

  const chaos::ChaosReport run_on = chaos::RunChaosSchedule(on, schedule);
  const chaos::ChaosReport run_off = chaos::RunChaosSchedule(off, schedule);

  // Telemetry observes; it must not perturb: the full event trace and
  // the workload outcome are byte-identical, and only the observed run
  // carries scrapes.
  EXPECT_EQ(run_on.TraceString(), run_off.TraceString());
  EXPECT_EQ(run_on.completed, run_off.completed);
  EXPECT_EQ(run_on.failed, run_off.failed);
  EXPECT_EQ(run_on.acked_writes, run_off.acked_writes);
  EXPECT_GT(run_on.scrapes, 0);
  EXPECT_EQ(run_off.scrapes, 0);
}

TEST(TelemetryDeterminism, FaultFreeRunRaisesNoAlertsAndRollsUpHealthy) {
  chaos::ChaosOptions opts = SmallChaosOptions();
  opts.telemetry = true;
  const chaos::ChaosReport r =
      chaos::RunChaosSchedule(opts, chaos::FaultSchedule{});
  EXPECT_TRUE(r.invariants_ok());  // includes slo-silence
  EXPECT_TRUE(r.alerts.empty());
  EXPECT_EQ(r.final_health.cluster, HealthState::kHealthy);
  EXPECT_TRUE(r.final_health.UnhealthyHosts().empty());
}

}  // namespace
}  // namespace repro::telemetry
