// Unit tests for the discrete-event engine, topology, network, resources.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "sim/engine.h"
#include "sim/legacy_engine.h"
#include "sim/network.h"
#include "sim/resources.h"
#include "sim/topology.h"

namespace repro {
namespace {

TEST(Engine, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.After(Millis(3), [&] { order.push_back(3); });
  sim.After(Millis(1), [&] { order.push_back(1); });
  sim.After(Millis(2), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), Millis(3));
}

TEST(Engine, EqualTimestampsRunInInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.After(Millis(1), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, RunUntilAdvancesClock) {
  Simulation sim;
  int fired = 0;
  sim.After(Millis(10), [&] { ++fired; });
  sim.RunUntil(Millis(5));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.now(), Millis(5));
  sim.RunUntil(Millis(20));
  EXPECT_EQ(fired, 1);
}

TEST(Engine, PeriodicFiresUntilCancelled) {
  Simulation sim;
  int ticks = 0;
  auto handle = sim.Every(Millis(10), [&] { ++ticks; });
  sim.RunUntil(Millis(55));
  EXPECT_EQ(ticks, 5);
  handle.Cancel();
  sim.RunUntil(Millis(200));
  EXPECT_EQ(ticks, 5);
}

TEST(Topology, UsWest1LatenciesMatchTableI) {
  auto t = AzLatencyTable::UsWest1();
  // One-way = RTT/2; intra-AZ b = 0.251/2 ms.
  EXPECT_EQ(t.one_way[1][1], static_cast<Nanos>(0.251 / 2 * 1e6));
  EXPECT_EQ(t.one_way[1][2], static_cast<Nanos>(0.399 / 2 * 1e6));
}

TEST(Topology, ReachabilityRespectsPartitionsAndHostState) {
  Topology topo(3, AzLatencyTable::UsWest1());
  const HostId a = topo.AddHost(0, "a");
  const HostId b = topo.AddHost(1, "b");
  EXPECT_TRUE(topo.Reachable(a, b));
  topo.PartitionAzs(0, 1);
  EXPECT_FALSE(topo.Reachable(a, b));
  topo.HealPartition(0, 1);
  EXPECT_TRUE(topo.Reachable(a, b));
  topo.SetHostUp(b, false);
  EXPECT_FALSE(topo.Reachable(a, b));
}

TEST(Topology, SelfPartitionIsIgnored) {
  Topology topo(3, AzLatencyTable::UsWest1());
  const HostId a = topo.AddHost(0, "a");
  const HostId b = topo.AddHost(0, "b");
  topo.PartitionAzs(0, 0);
  EXPECT_TRUE(topo.Reachable(a, b))
      << "intra-AZ connectivity must survive a nonsensical self-partition";
}

TEST(Engine, RunOneExecutesExactlyOneEvent) {
  Simulation sim;
  int fired = 0;
  sim.After(Millis(1), [&] { ++fired; });
  sim.After(Millis(2), [&] { ++fired; });
  EXPECT_TRUE(sim.RunOne());
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), Millis(1));
  EXPECT_TRUE(sim.RunOne());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.RunOne()) << "empty queue must report no work";
}

TEST(Topology, PartialHealLeavesOtherPartitionsCut) {
  Topology topo(3, AzLatencyTable::UsWest1());
  const HostId a = topo.AddHost(0, "a");
  const HostId b = topo.AddHost(1, "b");
  const HostId c = topo.AddHost(2, "c");
  topo.PartitionAzs(0, 1);
  topo.PartitionAzs(0, 2);
  topo.HealPartition(0, 1);
  EXPECT_TRUE(topo.Reachable(a, b)) << "healed pair must reconnect";
  EXPECT_FALSE(topo.Reachable(a, c)) << "unhealed pair must stay cut";
  EXPECT_TRUE(topo.Reachable(b, c));
  topo.HealAllPartitions();
  EXPECT_TRUE(topo.Reachable(a, c));
}

TEST(Topology, OneWayPartitionIsAsymmetric) {
  Topology topo(3, AzLatencyTable::UsWest1());
  const HostId a = topo.AddHost(0, "a");
  const HostId b = topo.AddHost(1, "b");
  topo.PartitionAzsOneWay(0, 1);
  EXPECT_FALSE(topo.Reachable(a, b)) << "cut direction";
  EXPECT_TRUE(topo.Reachable(b, a)) << "reverse direction stays up";
  topo.HealPartition(0, 1);
  EXPECT_TRUE(topo.Reachable(a, b));
}

TEST(Topology, LatencyFactorInflatesOnePair) {
  Topology topo(3, AzLatencyTable::Uniform(3, Micros(100), Micros(200)));
  topo.set_jitter_fraction(0);
  const HostId a = topo.AddHost(0, "a");
  const HostId b = topo.AddHost(1, "b");
  const HostId c = topo.AddHost(2, "c");
  Rng rng(1);
  const Nanos base_ab = topo.Latency(a, b, rng);
  const Nanos base_ac = topo.Latency(a, c, rng);
  topo.SetLatencyFactor(0, 1, 4.0);
  EXPECT_EQ(topo.Latency(a, b, rng), 4 * base_ab);
  EXPECT_EQ(topo.Latency(a, c, rng), base_ac) << "other pairs unaffected";
  topo.ClearLatencyFactors();
  EXPECT_EQ(topo.Latency(a, b, rng), base_ab);
}

TEST(Topology, AzFailureTakesHostsDown) {
  Topology topo(3, AzLatencyTable::UsWest1());
  const HostId a = topo.AddHost(0, "a");
  const HostId b = topo.AddHost(0, "b");
  topo.SetAzUp(0, false);
  EXPECT_FALSE(topo.HostUp(a));
  EXPECT_FALSE(topo.HostUp(b));
}

TEST(Network, DeliversWithLatency) {
  Simulation sim;
  Topology topo(3, AzLatencyTable::Uniform(3, Micros(100), Micros(200)));
  topo.set_jitter_fraction(0);
  const HostId a = topo.AddHost(0, "a");
  const HostId b = topo.AddHost(1, "b");
  Network net(sim, topo);
  Nanos delivered_at = -1;
  net.Send(a, b, 100, [&] { delivered_at = sim.now(); });
  sim.Run();
  EXPECT_GE(delivered_at, Micros(200));
  EXPECT_LT(delivered_at, Micros(210));  // + transmission time
}

TEST(Network, DropsToUnreachableDestination) {
  Simulation sim;
  Topology topo(3, AzLatencyTable::UsWest1());
  const HostId a = topo.AddHost(0, "a");
  const HostId b = topo.AddHost(1, "b");
  Network net(sim, topo);
  topo.PartitionAzs(0, 1);
  bool delivered = false;
  net.Send(a, b, 10, [&] { delivered = true; });
  sim.Run();
  EXPECT_FALSE(delivered);
}

TEST(Network, DropsWhenPartitionHappensMidFlight) {
  Simulation sim;
  Topology topo(3, AzLatencyTable::UsWest1());
  const HostId a = topo.AddHost(0, "a");
  const HostId b = topo.AddHost(1, "b");
  Network net(sim, topo);
  bool delivered = false;
  net.Send(a, b, 10, [&] { delivered = true; });
  sim.After(Micros(1), [&] { topo.PartitionAzs(0, 1); });
  sim.Run();
  EXPECT_FALSE(delivered);
}

TEST(Network, LossyLinkDelaysViaRetransmission) {
  Simulation sim(3);
  Topology topo(2, AzLatencyTable::Uniform(2, Micros(10), Micros(100)));
  topo.set_jitter_fraction(0);
  const HostId a = topo.AddHost(0, "a");
  const HostId b = topo.AddHost(1, "b");
  Network net(sim, topo);
  net.SetDropProbability(0, 1, 0.5);
  // TCP semantics: loss between reachable hosts is retried, so every
  // message still arrives — late, by one retransmit timeout per loss.
  int delivered = 0;
  for (int i = 0; i < 50; ++i) {
    net.Send(a, b, 10, [&] { ++delivered; });
  }
  sim.Run();
  EXPECT_EQ(delivered, 50) << "drops below the retry cap must not lose data";
  EXPECT_GT(net.messages_dropped(), 0) << "p=0.5 must have dropped some";
  net.ClearDropProbabilities();
  const int64_t dropped_before = net.messages_dropped();
  net.Send(a, b, 10, [] {});
  sim.Run();
  EXPECT_EQ(net.messages_dropped(), dropped_before);
}

TEST(Network, TotalLossResetsAfterMaxRetransmits) {
  Simulation sim(4);
  Topology topo(2, AzLatencyTable::Uniform(2, Micros(10), Micros(100)));
  const HostId a = topo.AddHost(0, "a");
  const HostId b = topo.AddHost(1, "b");
  Network net(sim, topo);
  net.SetDropProbability(0, 1, 1.0);
  bool delivered = false;
  net.Send(a, b, 10, [&] { delivered = true; });
  sim.Run();
  EXPECT_FALSE(delivered) << "a fully lossy link must eventually give up";
  EXPECT_EQ(net.messages_dropped(), net.config().max_retransmits);
}

TEST(Network, AccountsIntraVsInterAzBytes) {
  Simulation sim;
  Topology topo(3, AzLatencyTable::UsWest1());
  const HostId a = topo.AddHost(0, "a");
  const HostId b = topo.AddHost(0, "b");
  const HostId c = topo.AddHost(1, "c");
  Network net(sim, topo);
  net.Send(a, b, 1000, [] {});
  net.Send(a, c, 1000, [] {});
  sim.Run();
  const int64_t framed = 1000 + net.config().per_message_overhead_bytes;
  EXPECT_EQ(net.intra_az_bytes(), framed);
  EXPECT_EQ(net.inter_az_bytes(), framed);
  EXPECT_EQ(net.az_pair_bytes(0, 1), framed);
  EXPECT_EQ(net.host_stats(a).bytes_sent, 2 * framed);
  EXPECT_EQ(net.host_stats(a).messages_sent, 2);
}

TEST(Network, BandwidthQueuesTransfers) {
  Simulation sim;
  Topology topo(2, AzLatencyTable::Uniform(2, Micros(10), Micros(100)));
  topo.set_jitter_fraction(0);
  const HostId a = topo.AddHost(0, "a");
  const HostId b = topo.AddHost(1, "b");
  NetworkConfig cfg;
  cfg.inter_az_bytes_per_sec = 1e6;  // 1 MB/s: 1 ms per KB
  cfg.nic_bytes_per_sec = 1e9;
  cfg.per_message_overhead_bytes = 0;
  Network net(sim, topo, cfg);
  std::vector<Nanos> arrivals;
  for (int i = 0; i < 3; ++i) {
    net.Send(a, b, 1000, [&] { arrivals.push_back(sim.now()); });
  }
  sim.Run();
  ASSERT_EQ(arrivals.size(), 3u);
  // Serialized on the link: ~1ms apart.
  EXPECT_GT(arrivals[1] - arrivals[0], Micros(900));
  EXPECT_GT(arrivals[2] - arrivals[1], Micros(900));
}

TEST(ThreadPool, ParallelismMatchesThreadCount) {
  Simulation sim;
  ThreadPool pool(sim, "p", 2);
  std::vector<Nanos> done;
  for (int i = 0; i < 4; ++i) {
    pool.Submit(Millis(10), [&] { done.push_back(sim.now()); });
  }
  sim.Run();
  ASSERT_EQ(done.size(), 4u);
  EXPECT_EQ(done[0], Millis(10));
  EXPECT_EQ(done[1], Millis(10));
  EXPECT_EQ(done[2], Millis(20));
  EXPECT_EQ(done[3], Millis(20));
  EXPECT_EQ(pool.busy_ns(), 4 * Millis(10));
}

TEST(ThreadPool, AffinitySerialisesOneThread) {
  Simulation sim;
  ThreadPool pool(sim, "p", 4);
  std::vector<Nanos> done;
  for (int i = 0; i < 3; ++i) {
    pool.SubmitTo(2, Millis(5), [&] { done.push_back(sim.now()); });
  }
  sim.Run();
  EXPECT_EQ(done.back(), Millis(15));
}

TEST(ThreadPool, UtilizationWindow) {
  Simulation sim;
  ThreadPool pool(sim, "p", 1);
  pool.Submit(Millis(30), nullptr);
  sim.RunUntil(Millis(60));
  EXPECT_NEAR(pool.Utilization(0), 0.5, 0.01);
  pool.ResetStats();
  EXPECT_EQ(pool.busy_ns(), 0);
}

TEST(ThreadPool, GreySlowdownStretchesServiceTime) {
  Simulation sim;
  ThreadPool pool(sim, "p", 1);
  pool.set_slowdown(3.0);
  Nanos done_at = 0;
  pool.Submit(Millis(10), [&] { done_at = sim.now(); });
  sim.Run();
  EXPECT_EQ(done_at, Millis(30));
  pool.set_slowdown(1.0);
  const Nanos t0 = sim.now();
  pool.Submit(Millis(10), [&] { done_at = sim.now(); });
  sim.Run();
  EXPECT_EQ(done_at - t0, Millis(10)) << "restore must clear the stretch";
}

TEST(Disk, GreySlowdownStretchesServiceTime) {
  Simulation sim;
  Disk disk(sim, "d", Micros(50), 1e9, 1e9);
  disk.set_slowdown(4.0);
  Nanos done_at = 0;
  disk.Write(1'000'000, [&] { done_at = sim.now(); });  // 1 MB, x4
  sim.Run();
  EXPECT_GE(done_at, 4 * Micros(1050));
}

TEST(Disk, ServiceTimeIncludesAccessAndTransfer) {
  Simulation sim;
  Disk disk(sim, "d", Micros(50), 1e9, 1e9);  // 1 GB/s
  Nanos done_at = 0;
  disk.Write(1'000'000, [&] { done_at = sim.now(); });  // 1 MB -> 1 ms
  sim.Run();
  EXPECT_GE(done_at, Micros(1050));
  EXPECT_EQ(disk.stats().bytes_written, 1'000'000);
}

// ---------------------------------------------------------------------------
// Scheduler equivalence: the timer-wheel engine must dispatch in exactly the
// order the frozen pre-wheel binary-heap engine (sim/legacy_engine.h) did.
// ---------------------------------------------------------------------------

// Drives one engine through a randomized At/After/Every interleaving and
// records every firing as (id, time). All random draws come from an engine-
// local Rng: if dispatch orders ever diverge, the streams diverge too and
// the recorded sequences differ loudly.
template <typename Sim>
class RandomScheduleDriver {
 public:
  explicit RandomScheduleDriver(uint64_t seed) : rng_(seed) {}

  std::vector<std::pair<int, long long>> Run() {
    // Heartbeat-scale periodics. Coarse interval quantization forces
    // equal-timestamp ties between independent timers every revolution.
    for (int i = 0; i < 12; ++i) {
      const Nanos interval =
          Millis(static_cast<int64_t>(1 + rng_.NextBelow(20))) +
          Micros(static_cast<int64_t>(rng_.NextBelow(3)) * 500);
      AddPeriodic(1000 + i, interval);
    }
    // One-shot churn: roots that fan out into children with delays from
    // "same instant" ties up to several seconds (crossing wheel levels).
    for (int r = 0; r < 40; ++r) Spawn(3);
    // Cancel a third of the periodics at random times mid-run.
    for (size_t k = 0; k < handles_.size(); k += 3) {
      sim_.After(Millis(static_cast<int64_t>(100 + rng_.NextBelow(1800))),
                 [this, k] { handles_[k].Cancel(); });
    }
    // A periodic created mid-run (Every at now > 0), plus a far-future
    // straggler that must not disturb anything before it.
    sim_.After(Millis(500), [this] { AddPeriodic(2000, Millis(7)); });
    sim_.After(Seconds(30), [this] { Record(3000); });

    sim_.RunUntil(Seconds(1));
    sim_.RunFor(Seconds(1));
    sim_.RunFor(Seconds(40));
    return std::move(fired_);
  }

 private:
  void Record(int id) {
    fired_.push_back({id, static_cast<long long>(sim_.now())});
  }

  void AddPeriodic(int id, Nanos interval) {
    handles_.push_back(sim_.Every(interval, [this, id] { Record(id); }));
  }

  void Spawn(int depth) {
    const int id = next_id_++;
    // Delay mix: ties at the same instant, sub-slot, slot-scale, and
    // beyond the level-0 horizon.
    Nanos delay = 0;
    switch (rng_.NextBelow(4)) {
      case 0: delay = 0; break;
      case 1: delay = Micros(static_cast<int64_t>(rng_.NextBelow(2000))); break;
      case 2: delay = Millis(static_cast<int64_t>(rng_.NextBelow(300))); break;
      default: delay = Millis(static_cast<int64_t>(rng_.NextBelow(5000))); break;
    }
    sim_.After(delay, [this, id, depth] {
      Record(id);
      if (depth > 0) {
        const int fanout = static_cast<int>(rng_.NextBelow(3));
        for (int c = 0; c < fanout; ++c) Spawn(depth - 1);
      }
    });
  }

  Sim sim_;
  Rng rng_;
  int next_id_ = 0;
  std::vector<std::pair<int, long long>> fired_;
  std::vector<typename Sim::PeriodicHandle> handles_;
};

TEST(SchedulerEquivalence, RandomizedInterleavingsMatchLegacyEngine) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    auto wheel = RandomScheduleDriver<Simulation>(seed).Run();
    auto heap = RandomScheduleDriver<LegacySimulation>(seed).Run();
    ASSERT_EQ(wheel.size(), heap.size()) << "seed " << seed;
    for (size_t i = 0; i < wheel.size(); ++i) {
      ASSERT_EQ(wheel[i], heap[i])
          << "seed " << seed << " diverged at firing " << i << ": wheel=("
          << wheel[i].first << "," << wheel[i].second << ") legacy=("
          << heap[i].first << "," << heap[i].second << ")";
    }
    ASSERT_GT(wheel.size(), 1000u)
        << "seed " << seed << " produced too little work to be a real test";
  }
}

TEST(SchedulerEquivalence, FifoAtEqualTimestampAcrossWheelHeapBoundary) {
  Simulation sim;
  std::vector<int> order;
  const Nanos T = Millis(50);
  // Scheduled long before T: parked in the wheel.
  sim.At(T, [&] {
    order.push_back(0);
    // Scheduled while dispatching at T: the wheel cursor has already
    // passed T, so these land in the imminent heap — yet must still run
    // after every earlier-seq event at T.
    sim.At(T, [&] { order.push_back(2); });
    sim.After(0, [&] { order.push_back(3); });
  });
  // Scheduled from an event just before T.
  sim.At(T - Micros(100), [&] {
    sim.At(T, [&] { order.push_back(1); });
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sim.now(), T);
}

TEST(SchedulerEquivalence, CancelAtTickTimestampHonoursFifo) {
  Simulation sim;
  int ticks = 0;
  auto h = sim.Every(Millis(10), [&] { ++ticks; });
  // Each tick reschedules itself with a fresh insertion seq, so a cancel
  // scheduled *after* the 20 ms tick ran carries a later seq than the
  // pending 30 ms tick: at the 30 ms tie the tick dispatches first, then
  // the cancel lands; nothing fires afterwards.
  sim.At(Millis(25), [&] {
    sim.At(Millis(30), [&] { h.Cancel(); });
  });
  sim.RunUntil(Millis(200));
  EXPECT_EQ(ticks, 3);
  EXPECT_TRUE(sim.Empty());
}

TEST(SchedulerEquivalence, CancelBeforePendingTickSuppressesIt) {
  Simulation sim;
  int ticks = 0;
  Simulation::PeriodicHandle h;
  // Earlier insertion seq than every tick: at the 30 ms tie the cancel
  // runs first and the in-flight tick must no-op.
  sim.At(Millis(30), [&] { h.Cancel(); });
  h = sim.Every(Millis(10), [&] { ++ticks; });
  sim.RunUntil(Millis(200));
  EXPECT_EQ(ticks, 2);
}

TEST(SchedulerEquivalence, DroppingLastHandleStopsPeriodicAfterOneFiring) {
  Simulation sim;
  int ticks = 0;
  { auto h = sim.Every(Millis(10), [&] { ++ticks; }); }
  sim.RunUntil(Millis(200));
  // The legacy engine's weak-tick closure fired exactly once more after
  // the last handle copy died; the wheel must match.
  EXPECT_EQ(ticks, 1);
  EXPECT_TRUE(sim.Empty());
}

TEST(Engine, PeriodicTickNeverCopiesItsCallback) {
  struct Payload {
    int* copies;
    explicit Payload(int* c) : copies(c) {}
    Payload(const Payload& o) : copies(o.copies) { ++*copies; }
    Payload(Payload&& o) noexcept : copies(o.copies) {}
  };
  Simulation sim;
  int copies = 0;
  int ticks = 0;
  Payload p(&copies);
  auto h = sim.Every(Millis(1), [p = std::move(p), &ticks] { ++ticks; });
  sim.RunUntil(Seconds(1));
  EXPECT_EQ(ticks, 1000);
  EXPECT_EQ(copies, 0) << "Every() must reschedule by handle, not copy "
                          "its closure per tick";
  h.Cancel();
}

TEST(Engine, FarFutureEventsBeyondWheelHorizonFire) {
  Simulation sim;
  std::vector<long long> fired;
  // ~25 h: beyond the level-3 horizon, parked in the far-future heap.
  sim.At(Seconds(90000), [&] { fired.push_back(sim.now()); });
  sim.At(Seconds(30), [&] { fired.push_back(sim.now()); });
  sim.Run();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], Seconds(30));
  EXPECT_EQ(fired[1], Seconds(90000));
  EXPECT_EQ(sim.now(), Seconds(90000));
}

// ---------------------------------------------------------------------------
// Hard failures: scheduling into the past aborts in every build type.
// ---------------------------------------------------------------------------

TEST(EngineDeathTest, PastTimeScheduleAborts) {
  Simulation sim;
  sim.After(Millis(5), [] {});
  sim.RunUntil(Millis(10));
  EXPECT_DEATH(sim.At(Millis(1), [] {}), "scheduling into the past");
}

TEST(EngineDeathTest, NegativeDelayAborts) {
  Simulation sim;
  EXPECT_DEATH(sim.After(-1, [] {}), "scheduling into the past");
}

TEST(EngineDeathTest, NonPositiveEveryIntervalAborts) {
  Simulation sim;
  EXPECT_DEATH(sim.Every(0, [] {}), "scheduling into the past");
}

// ---------------------------------------------------------------------------
// Resource accounting: backlog clamps, zero windows, accrued busy time.
// ---------------------------------------------------------------------------

TEST(ThreadPool, BacklogClampsToZeroOnceFreeAtPasses) {
  Simulation sim;
  ThreadPool pool(sim, "p", 2);
  pool.Submit(Millis(5), nullptr);
  EXPECT_EQ(pool.Backlog(), 0) << "second thread is free immediately";
  EXPECT_EQ(pool.BacklogOf(0), Millis(5));
  sim.RunUntil(Millis(50));
  // free_at_ is now far in the past; a raw subtraction would go negative
  // and poison AIMD admission / NDB overflow decisions.
  EXPECT_EQ(pool.Backlog(), 0);
  EXPECT_EQ(pool.BacklogOf(0), 0);
}

TEST(Disk, BacklogClampsToZeroOnceFreeAtPasses) {
  Simulation sim;
  Disk disk(sim, "d", Micros(50), 1e9, 1e9);
  disk.Write(1'000'000, nullptr);
  EXPECT_GT(disk.Backlog(), 0);
  sim.RunUntil(Seconds(1));
  EXPECT_EQ(disk.Backlog(), 0);
}

TEST(ThreadPool, UtilizationZeroWindowIsZeroNotNan) {
  Simulation sim;
  ThreadPool pool(sim, "p", 1);
  pool.Submit(Millis(5), nullptr);
  sim.RunUntil(Millis(10));
  // window_start == now(): the telemetry scraper hits this on scrape
  // boundaries; NaN/inf here would poison the grey-slow detector.
  EXPECT_EQ(pool.Utilization(sim.now()), 0.0);
}

TEST(Disk, UtilizationZeroWindowIsZeroNotNan) {
  Simulation sim;
  Disk disk(sim, "d", Micros(50), 1e9, 1e9);
  disk.Write(1000, nullptr);
  sim.RunUntil(Millis(10));
  EXPECT_EQ(disk.Utilization(sim.now()), 0.0);
}

TEST(ThreadPool, BusyNsIsClippedToElapsedWork) {
  Simulation sim;
  ThreadPool pool(sim, "p", 1);
  pool.Submit(Millis(10), nullptr);
  pool.Submit(Millis(10), nullptr);  // queued behind the first
  // Nothing has elapsed yet: charging whole bookings at submit time (the
  // old behaviour) would report 20 ms of "busy" on an idle pool.
  EXPECT_EQ(pool.busy_ns(), 0);
  EXPECT_EQ(pool.completed(), 0);
  sim.RunUntil(Millis(5));
  EXPECT_EQ(pool.busy_ns(), Millis(5));
  EXPECT_EQ(pool.completed(), 0) << "first item is still in service";
  sim.RunUntil(Millis(15));
  EXPECT_EQ(pool.busy_ns(), Millis(15));
  EXPECT_EQ(pool.completed(), 1);
  sim.RunUntil(Millis(60));
  EXPECT_EQ(pool.busy_ns(), Millis(20)) << "busy stops accruing when idle";
  EXPECT_EQ(pool.completed(), 2);
}

TEST(ThreadPool, ResetStatsCarriesInFlightWorkIntoNewWindow) {
  Simulation sim;
  ThreadPool pool(sim, "p", 1);
  pool.Submit(Millis(10), nullptr);
  sim.RunUntil(Millis(4));
  pool.ResetStats();
  EXPECT_EQ(pool.busy_ns(), 0);
  EXPECT_EQ(pool.completed(), 0);
  sim.RunUntil(Millis(20));
  // The 6 ms of service remaining at reset accrued inside the new window,
  // and its completion landed there too.
  EXPECT_EQ(pool.busy_ns(), Millis(6));
  EXPECT_EQ(pool.completed(), 1);
}

TEST(Disk, BusyNsIsClippedToElapsedWork) {
  Simulation sim;
  Disk disk(sim, "d", 0, 1e9, 1e9);  // no access time: 1 MB == 1 ms
  disk.Write(1'000'000, nullptr);
  EXPECT_EQ(disk.stats().busy_ns, 0);
  sim.RunUntil(Micros(400));
  EXPECT_EQ(disk.stats().busy_ns, Micros(400));
  sim.RunUntil(Millis(10));
  EXPECT_EQ(disk.stats().busy_ns, Millis(1));
  EXPECT_EQ(disk.stats().ops, 1);
}

}  // namespace
}  // namespace repro
