// Unit tests for the discrete-event engine, topology, network, resources.
#include <gtest/gtest.h>

#include "sim/engine.h"
#include "sim/network.h"
#include "sim/resources.h"
#include "sim/topology.h"

namespace repro {
namespace {

TEST(Engine, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.After(Millis(3), [&] { order.push_back(3); });
  sim.After(Millis(1), [&] { order.push_back(1); });
  sim.After(Millis(2), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), Millis(3));
}

TEST(Engine, EqualTimestampsRunInInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.After(Millis(1), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, RunUntilAdvancesClock) {
  Simulation sim;
  int fired = 0;
  sim.After(Millis(10), [&] { ++fired; });
  sim.RunUntil(Millis(5));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.now(), Millis(5));
  sim.RunUntil(Millis(20));
  EXPECT_EQ(fired, 1);
}

TEST(Engine, PeriodicFiresUntilCancelled) {
  Simulation sim;
  int ticks = 0;
  auto handle = sim.Every(Millis(10), [&] { ++ticks; });
  sim.RunUntil(Millis(55));
  EXPECT_EQ(ticks, 5);
  handle.Cancel();
  sim.RunUntil(Millis(200));
  EXPECT_EQ(ticks, 5);
}

TEST(Topology, UsWest1LatenciesMatchTableI) {
  auto t = AzLatencyTable::UsWest1();
  // One-way = RTT/2; intra-AZ b = 0.251/2 ms.
  EXPECT_EQ(t.one_way[1][1], static_cast<Nanos>(0.251 / 2 * 1e6));
  EXPECT_EQ(t.one_way[1][2], static_cast<Nanos>(0.399 / 2 * 1e6));
}

TEST(Topology, ReachabilityRespectsPartitionsAndHostState) {
  Topology topo(3, AzLatencyTable::UsWest1());
  const HostId a = topo.AddHost(0, "a");
  const HostId b = topo.AddHost(1, "b");
  EXPECT_TRUE(topo.Reachable(a, b));
  topo.PartitionAzs(0, 1);
  EXPECT_FALSE(topo.Reachable(a, b));
  topo.HealPartition(0, 1);
  EXPECT_TRUE(topo.Reachable(a, b));
  topo.SetHostUp(b, false);
  EXPECT_FALSE(topo.Reachable(a, b));
}

TEST(Topology, SelfPartitionIsIgnored) {
  Topology topo(3, AzLatencyTable::UsWest1());
  const HostId a = topo.AddHost(0, "a");
  const HostId b = topo.AddHost(0, "b");
  topo.PartitionAzs(0, 0);
  EXPECT_TRUE(topo.Reachable(a, b))
      << "intra-AZ connectivity must survive a nonsensical self-partition";
}

TEST(Engine, RunOneExecutesExactlyOneEvent) {
  Simulation sim;
  int fired = 0;
  sim.After(Millis(1), [&] { ++fired; });
  sim.After(Millis(2), [&] { ++fired; });
  EXPECT_TRUE(sim.RunOne());
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), Millis(1));
  EXPECT_TRUE(sim.RunOne());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.RunOne()) << "empty queue must report no work";
}

TEST(Topology, PartialHealLeavesOtherPartitionsCut) {
  Topology topo(3, AzLatencyTable::UsWest1());
  const HostId a = topo.AddHost(0, "a");
  const HostId b = topo.AddHost(1, "b");
  const HostId c = topo.AddHost(2, "c");
  topo.PartitionAzs(0, 1);
  topo.PartitionAzs(0, 2);
  topo.HealPartition(0, 1);
  EXPECT_TRUE(topo.Reachable(a, b)) << "healed pair must reconnect";
  EXPECT_FALSE(topo.Reachable(a, c)) << "unhealed pair must stay cut";
  EXPECT_TRUE(topo.Reachable(b, c));
  topo.HealAllPartitions();
  EXPECT_TRUE(topo.Reachable(a, c));
}

TEST(Topology, OneWayPartitionIsAsymmetric) {
  Topology topo(3, AzLatencyTable::UsWest1());
  const HostId a = topo.AddHost(0, "a");
  const HostId b = topo.AddHost(1, "b");
  topo.PartitionAzsOneWay(0, 1);
  EXPECT_FALSE(topo.Reachable(a, b)) << "cut direction";
  EXPECT_TRUE(topo.Reachable(b, a)) << "reverse direction stays up";
  topo.HealPartition(0, 1);
  EXPECT_TRUE(topo.Reachable(a, b));
}

TEST(Topology, LatencyFactorInflatesOnePair) {
  Topology topo(3, AzLatencyTable::Uniform(3, Micros(100), Micros(200)));
  topo.set_jitter_fraction(0);
  const HostId a = topo.AddHost(0, "a");
  const HostId b = topo.AddHost(1, "b");
  const HostId c = topo.AddHost(2, "c");
  Rng rng(1);
  const Nanos base_ab = topo.Latency(a, b, rng);
  const Nanos base_ac = topo.Latency(a, c, rng);
  topo.SetLatencyFactor(0, 1, 4.0);
  EXPECT_EQ(topo.Latency(a, b, rng), 4 * base_ab);
  EXPECT_EQ(topo.Latency(a, c, rng), base_ac) << "other pairs unaffected";
  topo.ClearLatencyFactors();
  EXPECT_EQ(topo.Latency(a, b, rng), base_ab);
}

TEST(Topology, AzFailureTakesHostsDown) {
  Topology topo(3, AzLatencyTable::UsWest1());
  const HostId a = topo.AddHost(0, "a");
  const HostId b = topo.AddHost(0, "b");
  topo.SetAzUp(0, false);
  EXPECT_FALSE(topo.HostUp(a));
  EXPECT_FALSE(topo.HostUp(b));
}

TEST(Network, DeliversWithLatency) {
  Simulation sim;
  Topology topo(3, AzLatencyTable::Uniform(3, Micros(100), Micros(200)));
  topo.set_jitter_fraction(0);
  const HostId a = topo.AddHost(0, "a");
  const HostId b = topo.AddHost(1, "b");
  Network net(sim, topo);
  Nanos delivered_at = -1;
  net.Send(a, b, 100, [&] { delivered_at = sim.now(); });
  sim.Run();
  EXPECT_GE(delivered_at, Micros(200));
  EXPECT_LT(delivered_at, Micros(210));  // + transmission time
}

TEST(Network, DropsToUnreachableDestination) {
  Simulation sim;
  Topology topo(3, AzLatencyTable::UsWest1());
  const HostId a = topo.AddHost(0, "a");
  const HostId b = topo.AddHost(1, "b");
  Network net(sim, topo);
  topo.PartitionAzs(0, 1);
  bool delivered = false;
  net.Send(a, b, 10, [&] { delivered = true; });
  sim.Run();
  EXPECT_FALSE(delivered);
}

TEST(Network, DropsWhenPartitionHappensMidFlight) {
  Simulation sim;
  Topology topo(3, AzLatencyTable::UsWest1());
  const HostId a = topo.AddHost(0, "a");
  const HostId b = topo.AddHost(1, "b");
  Network net(sim, topo);
  bool delivered = false;
  net.Send(a, b, 10, [&] { delivered = true; });
  sim.After(Micros(1), [&] { topo.PartitionAzs(0, 1); });
  sim.Run();
  EXPECT_FALSE(delivered);
}

TEST(Network, LossyLinkDelaysViaRetransmission) {
  Simulation sim(3);
  Topology topo(2, AzLatencyTable::Uniform(2, Micros(10), Micros(100)));
  topo.set_jitter_fraction(0);
  const HostId a = topo.AddHost(0, "a");
  const HostId b = topo.AddHost(1, "b");
  Network net(sim, topo);
  net.SetDropProbability(0, 1, 0.5);
  // TCP semantics: loss between reachable hosts is retried, so every
  // message still arrives — late, by one retransmit timeout per loss.
  int delivered = 0;
  for (int i = 0; i < 50; ++i) {
    net.Send(a, b, 10, [&] { ++delivered; });
  }
  sim.Run();
  EXPECT_EQ(delivered, 50) << "drops below the retry cap must not lose data";
  EXPECT_GT(net.messages_dropped(), 0) << "p=0.5 must have dropped some";
  net.ClearDropProbabilities();
  const int64_t dropped_before = net.messages_dropped();
  net.Send(a, b, 10, [] {});
  sim.Run();
  EXPECT_EQ(net.messages_dropped(), dropped_before);
}

TEST(Network, TotalLossResetsAfterMaxRetransmits) {
  Simulation sim(4);
  Topology topo(2, AzLatencyTable::Uniform(2, Micros(10), Micros(100)));
  const HostId a = topo.AddHost(0, "a");
  const HostId b = topo.AddHost(1, "b");
  Network net(sim, topo);
  net.SetDropProbability(0, 1, 1.0);
  bool delivered = false;
  net.Send(a, b, 10, [&] { delivered = true; });
  sim.Run();
  EXPECT_FALSE(delivered) << "a fully lossy link must eventually give up";
  EXPECT_EQ(net.messages_dropped(), net.config().max_retransmits);
}

TEST(Network, AccountsIntraVsInterAzBytes) {
  Simulation sim;
  Topology topo(3, AzLatencyTable::UsWest1());
  const HostId a = topo.AddHost(0, "a");
  const HostId b = topo.AddHost(0, "b");
  const HostId c = topo.AddHost(1, "c");
  Network net(sim, topo);
  net.Send(a, b, 1000, [] {});
  net.Send(a, c, 1000, [] {});
  sim.Run();
  const int64_t framed = 1000 + net.config().per_message_overhead_bytes;
  EXPECT_EQ(net.intra_az_bytes(), framed);
  EXPECT_EQ(net.inter_az_bytes(), framed);
  EXPECT_EQ(net.az_pair_bytes(0, 1), framed);
  EXPECT_EQ(net.host_stats(a).bytes_sent, 2 * framed);
  EXPECT_EQ(net.host_stats(a).messages_sent, 2);
}

TEST(Network, BandwidthQueuesTransfers) {
  Simulation sim;
  Topology topo(2, AzLatencyTable::Uniform(2, Micros(10), Micros(100)));
  topo.set_jitter_fraction(0);
  const HostId a = topo.AddHost(0, "a");
  const HostId b = topo.AddHost(1, "b");
  NetworkConfig cfg;
  cfg.inter_az_bytes_per_sec = 1e6;  // 1 MB/s: 1 ms per KB
  cfg.nic_bytes_per_sec = 1e9;
  cfg.per_message_overhead_bytes = 0;
  Network net(sim, topo, cfg);
  std::vector<Nanos> arrivals;
  for (int i = 0; i < 3; ++i) {
    net.Send(a, b, 1000, [&] { arrivals.push_back(sim.now()); });
  }
  sim.Run();
  ASSERT_EQ(arrivals.size(), 3u);
  // Serialized on the link: ~1ms apart.
  EXPECT_GT(arrivals[1] - arrivals[0], Micros(900));
  EXPECT_GT(arrivals[2] - arrivals[1], Micros(900));
}

TEST(ThreadPool, ParallelismMatchesThreadCount) {
  Simulation sim;
  ThreadPool pool(sim, "p", 2);
  std::vector<Nanos> done;
  for (int i = 0; i < 4; ++i) {
    pool.Submit(Millis(10), [&] { done.push_back(sim.now()); });
  }
  sim.Run();
  ASSERT_EQ(done.size(), 4u);
  EXPECT_EQ(done[0], Millis(10));
  EXPECT_EQ(done[1], Millis(10));
  EXPECT_EQ(done[2], Millis(20));
  EXPECT_EQ(done[3], Millis(20));
  EXPECT_EQ(pool.busy_ns(), 4 * Millis(10));
}

TEST(ThreadPool, AffinitySerialisesOneThread) {
  Simulation sim;
  ThreadPool pool(sim, "p", 4);
  std::vector<Nanos> done;
  for (int i = 0; i < 3; ++i) {
    pool.SubmitTo(2, Millis(5), [&] { done.push_back(sim.now()); });
  }
  sim.Run();
  EXPECT_EQ(done.back(), Millis(15));
}

TEST(ThreadPool, UtilizationWindow) {
  Simulation sim;
  ThreadPool pool(sim, "p", 1);
  pool.Submit(Millis(30), nullptr);
  sim.RunUntil(Millis(60));
  EXPECT_NEAR(pool.Utilization(0), 0.5, 0.01);
  pool.ResetStats();
  EXPECT_EQ(pool.busy_ns(), 0);
}

TEST(ThreadPool, GreySlowdownStretchesServiceTime) {
  Simulation sim;
  ThreadPool pool(sim, "p", 1);
  pool.set_slowdown(3.0);
  Nanos done_at = 0;
  pool.Submit(Millis(10), [&] { done_at = sim.now(); });
  sim.Run();
  EXPECT_EQ(done_at, Millis(30));
  pool.set_slowdown(1.0);
  const Nanos t0 = sim.now();
  pool.Submit(Millis(10), [&] { done_at = sim.now(); });
  sim.Run();
  EXPECT_EQ(done_at - t0, Millis(10)) << "restore must clear the stretch";
}

TEST(Disk, GreySlowdownStretchesServiceTime) {
  Simulation sim;
  Disk disk(sim, "d", Micros(50), 1e9, 1e9);
  disk.set_slowdown(4.0);
  Nanos done_at = 0;
  disk.Write(1'000'000, [&] { done_at = sim.now(); });  // 1 MB, x4
  sim.Run();
  EXPECT_GE(done_at, 4 * Micros(1050));
}

TEST(Disk, ServiceTimeIncludesAccessAndTransfer) {
  Simulation sim;
  Disk disk(sim, "d", Micros(50), 1e9, 1e9);  // 1 GB/s
  Nanos done_at = 0;
  disk.Write(1'000'000, [&] { done_at = sim.now(); });  // 1 MB -> 1 ms
  sim.Run();
  EXPECT_GE(done_at, Micros(1050));
  EXPECT_EQ(disk.stats().bytes_written, 1'000'000);
}

}  // namespace
}  // namespace repro
