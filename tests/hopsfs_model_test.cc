// Model-checking test: random file-system operation sequences executed
// against the full HopsFS-CL stack are compared, operation by operation,
// with a simple in-memory reference model of POSIX-like namespace
// semantics. Parameterised over every paper deployment setup and several
// RNG seeds (property-based coverage of the transaction bodies).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "hopsfs_test_util.h"
#include "util/rng.h"
#include "util/strings.h"

namespace repro::hopsfs {
namespace {

// ---- reference model ----

class ModelFs {
 public:
  ModelFs() { nodes_["/"] = Node{true, 0755}; }

  Code Mkdir(const std::string& p) {
    if (p == "/") return Code::kAlreadyExists;
    const Code parent = CheckParentDir(p);
    if (parent != Code::kOk) return parent;
    if (nodes_.count(p)) return Code::kAlreadyExists;
    nodes_[p] = Node{true, 0755};
    return Code::kOk;
  }

  Code Create(const std::string& p) {
    const Code parent = CheckParentDir(p);
    if (parent != Code::kOk) return parent;
    if (nodes_.count(p)) return Code::kAlreadyExists;
    nodes_[p] = Node{false, 0644};
    return Code::kOk;
  }

  Code Stat(const std::string& p, bool* is_dir = nullptr,
            uint32_t* perms = nullptr) {
    const Code walk = CheckWalk(p);
    if (walk != Code::kOk) return walk;
    auto it = nodes_.find(p);
    if (it == nodes_.end()) return Code::kNotFound;
    if (is_dir) *is_dir = it->second.is_dir;
    if (perms) *perms = it->second.permissions;
    return Code::kOk;
  }

  Code Read(const std::string& p) {
    const Code s = Stat(p);
    if (s != Code::kOk) return s;
    return nodes_[p].is_dir ? Code::kFailedPrecondition : Code::kOk;
  }

  Code Delete(const std::string& p) {
    if (p == "/") return Code::kNotFound;  // root has no parent entry
    const Code s = Stat(p);
    if (s != Code::kOk) return s;
    if (nodes_[p].is_dir && !Children(p).empty()) {
      return Code::kFailedPrecondition;
    }
    nodes_.erase(p);
    return Code::kOk;
  }

  Code List(const std::string& p, std::vector<std::string>* out = nullptr) {
    const Code s = Stat(p);
    if (s != Code::kOk) return s;
    if (out) {
      if (!nodes_[p].is_dir) {
        out->push_back(SplitParent(p).second);
      } else {
        *out = Children(p);
      }
    }
    return Code::kOk;
  }

  Code Rename(const std::string& a, const std::string& b) {
    if (a == "/") return Code::kInvalidArgument;
    // Mirror the implementation's order: the source parent is resolved by
    // the request dispatcher before the rename body runs its argument
    // checks and destination-parent resolution.
    const Code src_parent = CheckParentDir(a);
    if (src_parent != Code::kOk) return src_parent;
    if (b == "/" || b.empty() || StartsWith(b, a + "/")) {
      return Code::kInvalidArgument;
    }
    const Code dst_parent = CheckParentDir(b);
    if (dst_parent != Code::kOk) return dst_parent;
    auto it = nodes_.find(a);
    if (it == nodes_.end()) return Code::kNotFound;
    if (nodes_.count(b)) return Code::kAlreadyExists;
    // Move the node and (for directories) its whole subtree.
    Node moved = it->second;
    nodes_.erase(it);
    std::vector<std::pair<std::string, Node>> sub;
    for (auto n = nodes_.begin(); n != nodes_.end();) {
      if (StartsWith(n->first, a + "/")) {
        sub.emplace_back(b + n->first.substr(a.size()), n->second);
        n = nodes_.erase(n);
      } else {
        ++n;
      }
    }
    nodes_[b] = moved;
    for (auto& [np, node] : sub) nodes_[np] = node;
    return Code::kOk;
  }

  Code Chmod(const std::string& p, uint32_t perms) {
    const Code s = Stat(p);
    if (s != Code::kOk) return s;
    nodes_[p].permissions = perms;
    return Code::kOk;
  }

 private:
  struct Node {
    bool is_dir;
    uint32_t permissions;
  };

  // Mirrors the namenode's path resolution: first missing component ->
  // NotFound; component that exists but is a file -> FailedPrecondition.
  Code CheckWalk(const std::string& p) {
    if (p == "/") return Code::kOk;
    auto parts = SplitPath(p);
    std::string cur;
    for (size_t i = 0; i + 1 < parts.size(); ++i) {
      cur += '/';
      cur += parts[i];
      auto it = nodes_.find(cur);
      if (it == nodes_.end()) return Code::kNotFound;
      if (!it->second.is_dir) return Code::kFailedPrecondition;
    }
    return Code::kOk;
  }

  Code CheckParentDir(const std::string& p) {
    const Code walk = CheckWalk(p);
    if (walk != Code::kOk) return walk;
    const std::string parent = SplitParent(p).first;
    if (parent == "/") return Code::kOk;
    auto it = nodes_.find(parent);
    if (it == nodes_.end()) return Code::kNotFound;
    if (!it->second.is_dir) return Code::kFailedPrecondition;
    return Code::kOk;
  }

  std::vector<std::string> Children(const std::string& p) {
    std::vector<std::string> out;
    const std::string prefix = p == "/" ? "/" : p + "/";
    for (const auto& [path, node] : nodes_) {
      if (path != "/" && StartsWith(path, prefix) &&
          path.find('/', prefix.size()) == std::string::npos) {
        out.push_back(path.substr(prefix.size()));
      }
    }
    return out;  // std::map keeps them sorted
  }

  std::map<std::string, Node> nodes_;
};

// ---- random op generation ----

struct ModelParam {
  PaperSetup setup;
  uint64_t seed;
};

class HopsFsModelTest : public ::testing::TestWithParam<ModelParam> {};

std::string RandomPath(Rng& rng, int max_depth = 3) {
  static const char* kNames[] = {"a", "b", "c", "d"};
  const int depth = 1 + static_cast<int>(rng.NextBelow(max_depth));
  std::string p;
  for (int i = 0; i < depth; ++i) {
    p += '/';
    p += kNames[rng.NextBelow(4)];
  }
  return p;
}

TEST_P(HopsFsModelTest, RandomOpsMatchReferenceModel) {
  const auto param = GetParam();
  testing::TestFs fs(param.setup, /*num_nns=*/3);
  ModelFs model;
  Rng rng(param.seed);

  const int kOps = 160;
  for (int i = 0; i < kOps; ++i) {
    const int op = static_cast<int>(rng.NextBelow(7));
    const std::string p = RandomPath(rng);
    std::string what;
    Code got = Code::kOk, want = Code::kOk;
    switch (op) {
      case 0:
        what = "mkdir " + p;
        got = fs.Mkdir(p).code();
        want = model.Mkdir(p);
        break;
      case 1:
        what = "create " + p;
        got = fs.Create(p).code();
        want = model.Create(p);
        break;
      case 2: {
        what = "stat " + p;
        const auto r = fs.StatFull(p);
        got = r.status.code();
        bool is_dir = false;
        uint32_t perms = 0;
        want = model.Stat(p, &is_dir, &perms);
        if (got == Code::kOk && want == Code::kOk) {
          EXPECT_EQ(r.inode.is_dir, is_dir) << what;
          EXPECT_EQ(r.inode.permissions, perms) << what;
        }
        break;
      }
      case 3:
        what = "read " + p;
        got = fs.ReadFile(p).code();
        want = model.Read(p);
        break;
      case 4:
        what = "delete " + p;
        got = fs.Delete(p).code();
        want = model.Delete(p);
        break;
      case 5: {
        what = "ls " + p;
        const auto r = fs.List(p);
        got = r.status.code();
        std::vector<std::string> expect;
        want = model.List(p, &expect);
        if (got == Code::kOk && want == Code::kOk) {
          EXPECT_EQ(r.children, expect) << what;
        }
        break;
      }
      case 6: {
        const std::string q = RandomPath(rng);
        what = "rename " + p + " -> " + q;
        got = fs.Rename(p, q).code();
        want = model.Rename(p, q);
        break;
      }
    }
    ASSERT_STREQ(CodeName(got), CodeName(want))
        << "op " << i << ": " << what;
  }
}

std::vector<ModelParam> AllModelParams() {
  std::vector<ModelParam> out;
  for (auto setup :
       {PaperSetup::kHopsFs_2_1, PaperSetup::kHopsFs_3_3,
        PaperSetup::kHopsFsCl_2_3, PaperSetup::kHopsFsCl_3_3}) {
    for (uint64_t seed : {11ull, 22ull, 33ull}) {
      out.push_back(ModelParam{setup, seed});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Setups, HopsFsModelTest, ::testing::ValuesIn(AllModelParams()),
    [](const ::testing::TestParamInfo<ModelParam>& info) {
      std::string name = PaperSetupName(info.param.setup);
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name + "_seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace repro::hopsfs
