// Chaos harness tests: schedule determinism, end-to-end replay
// determinism, invariant checking, and injector behaviour.
//
// The full-episode tests run a deliberately small configuration (short
// windows, few clients) so the suite stays fast; the soak benchmark
// covers the paper-scale runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "chaos/harness.h"
#include "chaos/invariants.h"
#include "chaos/schedule.h"
#include "hopsfs/deployment.h"

namespace repro::chaos {
namespace {

RandomFaultOptions SmallTopology() {
  RandomFaultOptions opts;
  opts.start = 2 * kSecond;
  opts.window = 4 * kSecond;
  opts.num_azs = 3;
  opts.num_ndb_nodes = 12;
  return opts;
}

TEST(FaultSchedule, SameSeedSameSchedule) {
  const auto opts = SmallTopology();
  const FaultSchedule a = FaultSchedule::Random(99, opts);
  const FaultSchedule b = FaultSchedule::Random(99, opts);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].ToString(), b.events()[i].ToString());
  }
}

TEST(FaultSchedule, DistinctSeedsDiffer) {
  const auto opts = SmallTopology();
  const FaultSchedule a = FaultSchedule::Random(1, opts);
  const FaultSchedule b = FaultSchedule::Random(2, opts);
  EXPECT_NE(a.Summary(), b.Summary())
      << "different seeds must randomise differently";
}

TEST(FaultSchedule, EveryFaultIsHealedInsideTheWindow) {
  const auto opts = SmallTopology();
  for (uint64_t seed = 50; seed < 60; ++seed) {
    const FaultSchedule s = FaultSchedule::Random(seed, opts);
    ASSERT_FALSE(s.empty());
    EXPECT_GE(s.events().front().time, opts.start);
    EXPECT_LE(s.end_time(), opts.start + opts.window)
        << "schedules must hand every resource back by end of window";
    // Any degradation class present must come with its heal/restore.
    const auto types = s.FaultTypes();
    auto has = [&](FaultType t) {
      return std::find(types.begin(), types.end(), t) != types.end();
    };
    if (has(FaultType::kAzOutage)) {
      EXPECT_TRUE(has(FaultType::kAzRestore));
    }
    if (has(FaultType::kCrashNdbNode)) {
      EXPECT_TRUE(has(FaultType::kRestartNdbNode));
    }
    if (has(FaultType::kLatencyInflate)) {
      EXPECT_TRUE(has(FaultType::kLatencyRestore));
    }
    if (has(FaultType::kMessageDrop)) {
      EXPECT_TRUE(has(FaultType::kMessageDropClear));
    }
    if (has(FaultType::kGreySlowNode)) {
      EXPECT_TRUE(has(FaultType::kGreyRestoreNode));
    }
    if (has(FaultType::kPartitionAzs) || has(FaultType::kPartitionOneWay)) {
      EXPECT_TRUE(has(FaultType::kHealPartition) ||
                  has(FaultType::kHealAllPartitions));
    }
  }
}

ChaosOptions SmallEpisode(uint64_t seed) {
  ChaosOptions opts;
  opts.seed = seed;
  opts.workload_clients = 4;
  opts.warmup = 1 * kSecond;
  opts.fault_window = 3 * kSecond;
  opts.settle = 2 * kSecond;
  return opts;
}

TEST(ChaosHarness, SameSeedReplaysByteIdentically) {
  const ChaosOptions opts = SmallEpisode(7);
  const ChaosReport a = RunChaosSchedule(opts);
  const ChaosReport b = RunChaosSchedule(opts);
  EXPECT_EQ(a.TraceString(), b.TraceString())
      << "a failing seed must be a complete reproduction recipe";
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.acked_writes, b.acked_writes);

  ChaosOptions other = opts;
  other.seed = 8;
  const ChaosReport c = RunChaosSchedule(other);
  EXPECT_NE(a.TraceString(), c.TraceString());
}

TEST(ChaosHarness, InvariantsHoldUnderRandomFaults) {
  const ChaosReport report = RunChaosSchedule(SmallEpisode(7));
  for (const auto& r : report.invariants) {
    EXPECT_TRUE(r.ok) << r.name << ": " << r.detail;
  }
  EXPECT_GT(report.acked_writes, 0) << "tracked writer made no progress";
  EXPECT_GT(report.completed, 0);
}

TEST(ChaosHarness, PlantedAckLossBugIsCaught) {
  ChaosOptions opts = SmallEpisode(4242);
  opts.enable_test_ack_loss_bug = true;
  // No other faults: the planted bug must be caught on its own.
  const ChaosReport report = RunChaosSchedule(opts, FaultSchedule{});
  bool durability_failed = false;
  for (const auto& r : report.invariants) {
    if (r.name == "durability") durability_failed = !r.ok;
  }
  EXPECT_TRUE(durability_failed)
      << "the checker must detect deliberately lost acked writes";
}

TEST(FaultInjector, GreySlowNodeStaysAliveAndRecovers) {
  Simulation sim(11);
  auto dopts = hopsfs::DeploymentOptions::FromPaperSetup(
      hopsfs::PaperSetup::kHopsFsCl_3_3, /*num_namenodes=*/3);
  hopsfs::Deployment dep(sim, dopts);
  dep.Start();
  sim.RunFor(2 * kSecond);

  FaultInjector injector(dep);
  FaultSchedule schedule;
  schedule.Add(FaultEvent{0, FaultType::kGreySlowNode, /*a=*/5, /*b=*/-1,
                          /*factor=*/10.0});
  schedule.Add(FaultEvent{2 * kSecond, FaultType::kGreyRestoreNode,
                          /*a=*/5});
  injector.Arm(schedule, sim.now());
  sim.RunFor(3 * kSecond);

  // Grey failure degrades without killing: heartbeats keep flowing, so
  // the failure detector must NOT have declared the node dead.
  EXPECT_TRUE(dep.ndb().layout().alive(5))
      << "grey-slow node must stay a cluster member";
  EXPECT_EQ(injector.trace().size(), 2u);
}

}  // namespace
}  // namespace repro::chaos
