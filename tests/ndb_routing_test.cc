// Tests for AZ-aware routing: TC selection (§IV-A5), proximity ordering
// (§IV-A4), read-backup replica reads (Fig. 14), and layout placement.
#include <gtest/gtest.h>

#include <set>

#include "ndb_test_util.h"
#include "util/strings.h"

namespace repro::ndb {
namespace {

using testing::TestCluster;

TEST(NdbLayout, NodeGroupsSpanAzs) {
  auto azs = AssignNodeAzs(12, 3, {0, 1, 2});
  // 4 groups of 3; group g = {g, g+4, g+8} must cover all three AZs.
  for (int g = 0; g < 4; ++g) {
    std::set<AzId> seen{azs[g], azs[g + 4], azs[g + 8]};
    EXPECT_EQ(seen.size(), 3u) << "group " << g;
  }
}

TEST(NdbLayout, TwoReplicaLayoutMatchesFig3) {
  // Fig. 3: RF=2 across zones {1,2}: first slot in zone 1, second in 2.
  auto azs = AssignNodeAzs(12, 2, {1, 2});
  for (int n = 0; n < 6; ++n) EXPECT_EQ(azs[n], 1);
  for (int n = 6; n < 12; ++n) EXPECT_EQ(azs[n], 2);
}

TEST(NdbLayout, ReplicaChainsStayWithinNodeGroup) {
  TestCluster tc;
  const auto& layout = tc.cluster->layout();
  for (PartitionId p = 0; p < layout.num_partitions(); ++p) {
    const auto& chain = layout.ReplicaChain(p);
    ASSERT_EQ(static_cast<int>(chain.size()), layout.replication());
    const int g = layout.group_of(chain[0]);
    for (NodeId n : chain) EXPECT_EQ(layout.group_of(n), g);
  }
}

TEST(NdbLayout, PrimaryPromotionOnFailure) {
  TestCluster tc;
  auto& layout = tc.cluster->layout();
  const PartitionId p = 0;
  const auto chain = layout.ReplicaChain(p);
  const NodeId old_primary = layout.PrimaryOf(p);
  ASSERT_EQ(old_primary, chain[0]);
  layout.set_alive(chain[0], false);
  EXPECT_EQ(layout.PrimaryOf(p), chain[1]);
  layout.set_alive(chain[0], true);
}

TEST(NdbLayout, ProximityPrefersSameAz) {
  TestCluster tc;
  const auto& layout = tc.cluster->layout();
  // Build a candidate list with one node per AZ.
  std::vector<NodeId> candidates;
  for (AzId az = 0; az < 3; ++az) {
    for (NodeId n = 0; n < layout.num_nodes(); ++n) {
      if (layout.az_of(n) == az) {
        candidates.push_back(n);
        break;
      }
    }
  }
  for (AzId az = 0; az < 3; ++az) {
    const NodeId picked = layout.PickByProximity(az, candidates, true, 0);
    EXPECT_EQ(layout.az_of(picked), az);
  }
}

TEST(NdbRouting, ReadBackupServesAzLocalReplicas) {
  TestCluster tc(/*datanodes=*/6, /*replication=*/3, /*az_aware=*/true,
                 /*read_backup=*/true);
  ASSERT_EQ(tc.InsertCommit(tc.inode_table, "2/f", "v"), Code::kOk);
  tc.cluster->ResetStats();
  tc.network->ResetStats();

  for (int i = 0; i < 50; ++i) {
    auto [code, value] = tc.ReadCommitted(tc.inode_table, "2/f");
    ASSERT_TRUE(value.has_value());
  }
  // The API node is in AZ 0 and RF=3 spans all AZs, so with read backup
  // every committed read lands on the AZ-0 replica: zero inter-AZ read
  // traffic beyond the commit protocol (already reset above).
  const PartitionId part =
      tc.cluster->layout().PartitionOf(tc.inode_table, "2/f");
  const auto& counts = tc.cluster->reads_per_replica()[part];
  const auto& chain = tc.cluster->layout().ReplicaChain(part);
  int64_t local = 0, remote = 0;
  for (size_t i = 0; i < chain.size(); ++i) {
    if (tc.cluster->layout().az_of(chain[i]) == 0) {
      local += counts[i];
    } else {
      remote += counts[i];
    }
  }
  EXPECT_EQ(remote, 0);
  EXPECT_EQ(local, 50);
}

TEST(NdbRouting, WithoutReadBackupAllReadsHitPrimary) {
  TestCluster tc(/*datanodes=*/6, /*replication=*/3, /*az_aware=*/false,
                 /*read_backup=*/false);
  ASSERT_EQ(tc.InsertCommit(tc.inode_table, "2/f", "v"), Code::kOk);
  tc.cluster->ResetStats();
  for (int i = 0; i < 30; ++i) {
    auto [code, value] = tc.ReadCommitted(tc.inode_table, "2/f");
    ASSERT_TRUE(value.has_value());
  }
  const PartitionId part =
      tc.cluster->layout().PartitionOf(tc.inode_table, "2/f");
  const auto& counts = tc.cluster->reads_per_replica()[part];
  EXPECT_EQ(counts[0], 30);  // configured primary
  for (size_t i = 1; i < counts.size(); ++i) EXPECT_EQ(counts[i], 0);
}

TEST(NdbRouting, LockedReadsAlwaysHitPrimaryEvenWithReadBackup) {
  TestCluster tc;
  ASSERT_EQ(tc.InsertCommit(tc.inode_table, "6/f", "v"), Code::kOk);
  tc.cluster->ResetStats();
  for (int i = 0; i < 10; ++i) {
    const TxnId txn = tc.api->Begin(tc.inode_table, "6/f");
    bool done = false;
    tc.api->Read(txn, tc.inode_table, "6/f", LockMode::kShared,
                 [&](Code c, auto) {
                   EXPECT_EQ(c, Code::kOk);
                   tc.api->Commit(txn, [&](Code) { done = true; });
                 });
    tc.RunUntil(done);
  }
  const PartitionId part =
      tc.cluster->layout().PartitionOf(tc.inode_table, "6/f");
  const auto& counts = tc.cluster->reads_per_replica()[part];
  EXPECT_EQ(counts[0], 10);
  for (size_t i = 1; i < counts.size(); ++i) EXPECT_EQ(counts[i], 0);
}

TEST(NdbRouting, TcSelectionCase1PicksAzLocalReplica) {
  TestCluster tc;  // read-backup table, az-aware
  // With RF=3 over 3 AZs, the replica chain of any partition has exactly
  // one AZ-0 member; the API node (AZ 0) must select it as TC.
  const Key key = "12/file";
  const TxnId txn = tc.api->Begin(tc.inode_table, key);
  ASSERT_NE(txn, 0u);
  // Peek at the TC by running one op and checking no inter-AZ traffic is
  // needed for a local committed read.
  tc.network->ResetStats();
  bool done = false;
  tc.api->Read(txn, tc.inode_table, key, LockMode::kReadCommitted,
               [&](Code, auto) {
                 tc.api->Commit(txn, [&](Code) { done = true; });
               });
  tc.RunUntil(done);
  EXPECT_EQ(tc.network->inter_az_bytes(), 0)
      << "AZ-local read crossed an AZ boundary";
}

TEST(NdbRouting, NonAzAwareReadsCrossAzs) {
  TestCluster tc(/*datanodes=*/6, /*replication=*/3, /*az_aware=*/false,
                 /*read_backup=*/false);
  // Find a key whose primary is not in AZ 0 so the read must cross.
  Key key;
  for (int i = 0; i < 100; ++i) {
    key = repro::StrFormat("%d/f", i);
    const PartitionId p = tc.cluster->layout().PartitionOf(tc.inode_table, key);
    const NodeId primary = tc.cluster->layout().PrimaryOf(p);
    if (tc.cluster->layout().az_of(primary) != 0) break;
  }
  ASSERT_EQ(tc.InsertCommit(tc.inode_table, key, "v"), Code::kOk);
  tc.network->ResetStats();
  auto [code, value] = tc.ReadCommitted(tc.inode_table, key);
  ASSERT_TRUE(value.has_value());
  EXPECT_GT(tc.network->inter_az_bytes(), 0);
}

}  // namespace
}  // namespace repro::ndb

namespace repro::ndb {
namespace {

using testing::TestCluster;

// ---- §IV-A5: the four transaction-coordinator selection cases ----
// The TC choice is observable through which datanode's TC pool does the
// routing work for a transaction's first operation.

NodeId BusiestTc(TestCluster& tc) {
  NodeId best = -1;
  int64_t best_busy = -1;
  for (int n = 0; n < tc.cluster->num_datanodes(); ++n) {
    const int64_t busy = tc.cluster->datanode(n).tc_pool().busy_ns();
    if (busy > best_busy) {
      best_busy = busy;
      best = n;
    }
  }
  return best;
}

TEST(NdbTcSelection, Case1ReadBackupPicksAzLocalReplica) {
  TestCluster tc;  // az-aware, read-backup tables, API in AZ 0
  const Key key = "42/file";
  tc.cluster->ResetStats();
  auto [code, value] = tc.ReadCommitted(tc.inode_table, key);
  const NodeId used = BusiestTc(tc);
  ASSERT_NE(used, -1);
  EXPECT_EQ(tc.cluster->layout().az_of(used), 0)
      << "case 1 must select a TC in the caller's AZ";
  // And the TC must be a replica of the hint partition.
  const PartitionId p = tc.cluster->layout().PartitionOf(tc.inode_table, key);
  bool in_chain = false;
  for (NodeId n : tc.cluster->layout().ReplicaChain(p)) in_chain |= n == used;
  EXPECT_TRUE(in_chain);
}

TEST(NdbTcSelection, Case2FullyReplicatedPicksAzLocalNode) {
  TestCluster tc;
  tc.cluster->ResetStats();
  auto [code, value] = tc.ReadCommitted(tc.dict_table, "any-key");
  const NodeId used = BusiestTc(tc);
  ASSERT_NE(used, -1);
  EXPECT_EQ(tc.cluster->layout().az_of(used), 0)
      << "case 2: every node holds the data; pick by proximity";
}

TEST(NdbTcSelection, Case3ClassicDatPicksPrimary) {
  TestCluster tc(6, 3, /*az_aware=*/false, /*read_backup=*/false);
  const Key key = "77/file";
  tc.cluster->ResetStats();
  auto [code, value] = tc.ReadCommitted(tc.inode_table, key);
  const NodeId used = BusiestTc(tc);
  const PartitionId p = tc.cluster->layout().PartitionOf(tc.inode_table, key);
  EXPECT_EQ(used, tc.cluster->layout().PrimaryOf(p))
      << "classic distribution-aware selection = the primary replica";
}

TEST(NdbTcSelection, Case1SpreadsTiesRoundRobin) {
  // With several same-AZ candidates (RF=3 over ONE az list entry makes
  // all replicas AZ-local), repeated Begins must not pin one TC.
  TestCluster tc;
  std::set<NodeId> used;
  for (int i = 0; i < 12; ++i) {
    tc.cluster->ResetStats();
    auto [code, value] =
        tc.ReadCommitted(tc.dict_table, StrFormat("k%d", i));
    used.insert(BusiestTc(tc));
  }
  // dict is fully replicated: both AZ-0 nodes are equal candidates.
  EXPECT_GE(used.size(), 2u) << "ties must rotate for load balancing";
}

}  // namespace
}  // namespace repro::ndb
