// Durability and cluster-recovery tests: NDB's global checkpoints are the
// durability boundary (§II-B2) — a committed transaction survives a full
// cluster outage only once a global checkpoint covering it has reached
// disk on every node.
#include <gtest/gtest.h>

#include "ndb_test_util.h"
#include "util/strings.h"

namespace repro::ndb {
namespace {

class NdbDurabilityTest : public ::testing::Test {
 protected:
  NdbDurabilityTest() {
    sim = std::make_unique<Simulation>(77);
    topology = std::make_unique<Topology>(3, AzLatencyTable::UsWest1());
    topology->set_jitter_fraction(0);
    network = std::make_unique<Network>(*sim, *topology);
    TableDef inodes;
    inodes.name = "inodes";
    inodes.part_key = PartKeyRule::kPrefixBeforeSlash;
    inodes.read_backup = true;
    table = catalog.AddTable(inodes);
    NdbClusterConfig config;
    config.layout.num_datanodes = 6;
    config.layout.replication_factor = 3;
    config.layout.node_az = AssignNodeAzs(6, 3, {0, 1, 2});
    config.layout.num_ldm_threads = 4;
    config.flags.az_aware = true;
    config.node.enable_durability = true;
    cluster = std::make_unique<NdbCluster>(*sim, *network, &catalog, config);
    cluster->StartProtocols();
    const HostId host = topology->AddHost(0, "api");
    api = std::make_unique<NdbApiNode>(*cluster, host, 0);
  }

  Code InsertCommit(const Key& key, const std::string& value) {
    const TxnId txn = api->Begin(table, key);
    Code result = Code::kInternal;
    bool done = false;
    api->Insert(txn, table, key, value, [&](Code c) {
      if (c != Code::kOk) {
        api->Abort(txn);
        result = c;
        done = true;
        return;
      }
      api->Commit(txn, [&](Code c2) {
        result = c2;
        done = true;
      });
    });
    while (!done) sim->RunFor(kMillisecond);
    return result;
  }

  bool VisibleEverywhere(const Key& key) {
    const PartitionId p = cluster->layout().PartitionOf(table, key);
    for (NodeId n : cluster->layout().ReplicaChain(p)) {
      if (!cluster->datanode(n)
               .store()
               .Read(table, key, 0)
               .has_value()) {
        return false;
      }
    }
    return true;
  }

  Catalog catalog;
  TableId table = 0;
  std::unique_ptr<Simulation> sim;
  std::unique_ptr<Topology> topology;
  std::unique_ptr<Network> network;
  std::unique_ptr<NdbCluster> cluster;
  std::unique_ptr<NdbApiNode> api;
};

TEST_F(NdbDurabilityTest, CheckpointedWritesSurviveClusterRestart) {
  ASSERT_EQ(InsertCommit("1/a", "va"), Code::kOk);
  // Let at least one GCP (500 ms interval) become durable everywhere.
  sim->RunFor(2 * kSecond);
  ASSERT_GT(cluster->gcp_epoch(), 0);

  cluster->RecoverFromCheckpoint();
  EXPECT_TRUE(cluster->cluster_up());
  EXPECT_TRUE(VisibleEverywhere("1/a"))
      << "a checkpointed commit must survive the outage";
  // The recovered cluster serves new transactions.
  EXPECT_EQ(InsertCommit("1/b", "vb"), Code::kOk);
}

TEST_F(NdbDurabilityTest, PostCheckpointCommitsAreLostOnRecovery) {
  ASSERT_EQ(InsertCommit("2/old", "v"), Code::kOk);
  sim->RunFor(2 * kSecond);  // "2/old" covered by a durable GCP

  // Freeze checkpointing progress by recovering right after a commit
  // that no GCP has covered yet.
  ASSERT_EQ(InsertCommit("2/new", "v"), Code::kOk);
  cluster->RecoverFromCheckpoint();

  EXPECT_TRUE(VisibleEverywhere("2/old"));
  const PartitionId p = cluster->layout().PartitionOf(table, "2/new");
  const NodeId primary = cluster->layout().PrimaryOf(p);
  EXPECT_FALSE(cluster->datanode(primary)
                   .store()
                   .Read(table, "2/new", 0)
                   .has_value())
      << "a commit after the last durable GCP must be lost on recovery "
         "(NDB's durability boundary)";
}

TEST_F(NdbDurabilityTest, DeletesReplayCorrectly) {
  ASSERT_EQ(InsertCommit("3/x", "v"), Code::kOk);
  // Delete it, then checkpoint, then recover: the row must stay gone.
  const TxnId txn = api->Begin(table, "3/x");
  bool done = false;
  api->Delete(txn, table, "3/x", [&](Code c) {
    ASSERT_EQ(c, Code::kOk);
    api->Commit(txn, [&](Code c2) {
      ASSERT_EQ(c2, Code::kOk);
      done = true;
    });
  });
  while (!done) sim->RunFor(kMillisecond);
  sim->RunFor(2 * kSecond);

  cluster->RecoverFromCheckpoint();
  const PartitionId p = cluster->layout().PartitionOf(table, "3/x");
  for (NodeId n : cluster->layout().ReplicaChain(p)) {
    EXPECT_FALSE(
        cluster->datanode(n).store().Read(table, "3/x", 0).has_value())
        << "deleted row resurrected at node " << n;
  }
}

TEST_F(NdbDurabilityTest, BootstrapDataIsAlwaysDurable) {
  cluster->BootstrapPut(table, "9/boot", "img");
  cluster->RecoverFromCheckpoint();  // even with no GCP yet
  EXPECT_TRUE(VisibleEverywhere("9/boot"));
}

TEST_F(NdbDurabilityTest, GcpEpochAdvances) {
  const int64_t e0 = cluster->gcp_epoch();
  sim->RunFor(3 * kSecond);
  EXPECT_GE(cluster->gcp_epoch(), e0 + 5);  // 500 ms interval
  for (int n = 0; n < cluster->num_datanodes(); ++n) {
    EXPECT_GT(cluster->datanode(n).durable_gcp_epoch(), 0);
  }
}

}  // namespace
}  // namespace repro::ndb
