// Redo-journal and timed node-recovery tests: group-commit flush
// boundaries, LCP truncation, replay-to-exact-row-state equality, and
// recovery time scaling linearly with the replay work (log entries +
// bytes since the last local checkpoint).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "ndb/client.h"
#include "ndb/cluster.h"
#include "sim/engine.h"
#include "sim/network.h"
#include "sim/topology.h"
#include "util/strings.h"

namespace repro::ndb {
namespace {

// Like tests/ndb_test_util.h's TestCluster, but with the node config
// (flush cadence, LCP interval, segment size) under test control.
struct RecoveryCluster {
  explicit RecoveryCluster(NdbNodeConfig node_config = {}) {
    sim = std::make_unique<Simulation>(42);
    topology = std::make_unique<Topology>(3, AzLatencyTable::UsWest1());
    topology->set_jitter_fraction(0);
    network = std::make_unique<Network>(*sim, *topology);

    TableDef inodes;
    inodes.name = "inodes";
    inodes.part_key = PartKeyRule::kPrefixBeforeSlash;
    inodes.read_backup = true;
    table = catalog.AddTable(inodes);

    NdbClusterConfig config;
    config.layout.num_datanodes = 6;
    config.layout.replication_factor = 3;
    config.layout.node_az = AssignNodeAzs(6, 3, {0, 1, 2});
    config.layout.num_ldm_threads = 4;
    config.flags.az_aware = true;
    config.node = node_config;
    cluster = std::make_unique<NdbCluster>(*sim, *network, &catalog, config);
    cluster->StartProtocols();

    const HostId api_host = topology->AddHost(0, "api-0");
    api = std::make_unique<NdbApiNode>(*cluster, api_host, /*az=*/0);
  }

  Code InsertCommit(const Key& key, const std::string& value) {
    const TxnId txn = api->Begin(table, key);
    Code result = Code::kInternal;
    bool done = false;
    // Write (upsert) so re-running a key overwrites instead of failing.
    api->Write(txn, table, key, value, [&](Code c) {
      if (c != Code::kOk) {
        api->Abort(txn);
        result = c;
        done = true;
        return;
      }
      api->Commit(txn, [&](Code c2) {
        result = c2;
        done = true;
      });
    });
    RunUntil(done);
    return result;
  }

  void RunUntil(bool& flag, Nanos limit = 60 * kSecond) {
    const Nanos deadline = sim->now() + limit;
    while (!flag && sim->now() < deadline && !sim->Empty()) {
      sim->RunUntil(sim->now() + kMillisecond);
    }
    ASSERT_TRUE(flag) << "operation did not finish within the time limit";
  }

  // Drives the sim until the failure detector declares node n dead, so
  // follow-up transactions route around it instead of stalling on a
  // crashed-but-undetected replica.
  void WaitUntilDetectedDead(NodeId n, Nanos limit = 60 * kSecond) {
    const Nanos deadline = sim->now() + limit;
    while (cluster->layout().alive(n) && sim->now() < deadline &&
           !sim->Empty()) {
      sim->RunUntil(sim->now() + 10 * kMillisecond);
    }
    ASSERT_FALSE(cluster->layout().alive(n)) << "node " << n
                                             << " never detected dead";
  }

  // Crashes node n, restarts it, and drives the sim until it serves.
  void CrashAndRecover(NodeId n) {
    cluster->CrashDatanode(n);
    sim->RunFor(kMillisecond);
    bool served = false;
    cluster->RestartDatanode(n, [&] { served = true; });
    RunUntil(served);
  }

  Catalog catalog;
  TableId table = 0;
  std::unique_ptr<Simulation> sim;
  std::unique_ptr<Topology> topology;
  std::unique_ptr<Network> network;
  std::unique_ptr<NdbCluster> cluster;
  std::unique_ptr<NdbApiNode> api;
};

TEST(NdbRecoveryTest, GroupCommitFlushBoundaries) {
  RecoveryCluster tc;
  ASSERT_EQ(tc.InsertCommit("1/a", "va"), Code::kOk);

  // Right after the commit the record sits in the group-commit window of
  // at least one replica: appended, not yet on disk.
  int64_t backlog = 0;
  for (NodeId n = 0; n < tc.cluster->num_datanodes(); ++n) {
    backlog += tc.cluster->datanode(n).journal().backlog_bytes();
  }
  EXPECT_GT(backlog, 0) << "commit should be in the un-flushed window";

  // One flush interval (plus the disk write) later the whole log is
  // durable on every node — the group commit landed.
  tc.sim->RunFor(tc.cluster->node_config().redo_flush_interval +
                 50 * kMillisecond);
  for (NodeId n = 0; n < tc.cluster->num_datanodes(); ++n) {
    const RedoJournal& j = tc.cluster->datanode(n).journal();
    EXPECT_EQ(j.durable_seqno(), j.last_seqno()) << "node " << n;
    EXPECT_EQ(j.backlog_bytes(), 0) << "node " << n;
  }
}

TEST(NdbRecoveryTest, LcpTruncatesRedoLog) {
  NdbNodeConfig node;
  node.redo_segment_bytes = 4 << 10;  // small segments so truncation bites
  RecoveryCluster tc(node);
  for (int i = 0; i < 60; ++i) {
    ASSERT_EQ(tc.InsertCommit(StrFormat("%d/f", i), std::string(200, 'x')),
              Code::kOk);
  }
  // Run past two LCP intervals so every node checkpoints at least once.
  tc.sim->RunFor(2 * tc.cluster->node_config().lcp_interval + kSecond);

  for (NodeId n = 0; n < tc.cluster->num_datanodes(); ++n) {
    const RedoJournal& j = tc.cluster->datanode(n).journal();
    EXPECT_GT(j.base_seqno(), 0) << "node " << n << " never checkpointed";
    EXPECT_GT(j.base_rows(), 0) << "node " << n;
    // Truncation: the log retains at most ~one segment of overhang past
    // the checkpoint cut, not the whole history.
    EXPECT_LT(j.live_records(), j.last_seqno()) << "node " << n;
    EXPECT_LE(j.lag_bytes(),
              j.config().segment_bytes + 2 * j.config().flush_overhead_bytes)
        << "node " << n << " log not truncated at the LCP";
  }
}

TEST(NdbRecoveryTest, ReplayRestoresExactRowState) {
  RecoveryCluster tc;
  for (int i = 0; i < 25; ++i) {
    ASSERT_EQ(tc.InsertCommit(StrFormat("%d/f", i), StrFormat("v%d", i)),
              Code::kOk);
  }
  // Quiesce: flush and checkpoint whatever the cadence produced, then
  // snapshot the committed image of node 0.
  tc.sim->RunFor(kSecond);
  const uint64_t before = tc.cluster->datanode(0).DigestStore();

  tc.CrashAndRecover(0);

  // The rejoined node's committed row image is byte-identical to the
  // pre-crash one (replay of checkpoint+log, then delta resync).
  EXPECT_EQ(tc.cluster->datanode(0).DigestStore(), before);
  ASSERT_FALSE(tc.cluster->recovery_log().empty());
  const auto& rec = tc.cluster->recovery_log().back();
  EXPECT_EQ(rec.node, 0);
  EXPECT_FALSE(rec.aborted);
  EXPECT_GT(rec.replay_entries, 0) << "recovery should replay its own log";
  EXPECT_TRUE(rec.replay_deterministic)
      << "two replays of the same journal must produce identical images";
  EXPECT_TRUE(rec.replay_covered)
      << "replay must cover exactly the durable prefix (every acked commit "
         "is in a flushed segment or a checkpoint)";
}

TEST(NdbRecoveryTest, RejoinedNodeConvergesWithLiveReplicas) {
  RecoveryCluster tc;
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(tc.InsertCommit(StrFormat("%d/f", i), "v1"), Code::kOk);
  }
  tc.sim->RunFor(kSecond);
  tc.cluster->CrashDatanode(0);
  tc.WaitUntilDetectedDead(0);
  // Overwrites land while the node is down: its replayed log is stale
  // for these keys and resync must supply the newer versions.
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(tc.InsertCommit(StrFormat("%d/f", i), "v2"), Code::kOk);
  }
  bool served = false;
  tc.cluster->RestartDatanode(0, [&] { served = true; });
  tc.RunUntil(served);

  auto& layout = tc.cluster->layout();
  for (int i = 0; i < 10; ++i) {
    const std::string key = StrFormat("%d/f", i);
    const PartitionId p = layout.PartitionOf(tc.table, key);
    bool mine = false;
    for (NodeId r : layout.ReplicaChain(p)) mine |= (r == 0);
    if (!mine) continue;
    auto v = tc.cluster->datanode(0).store().Read(tc.table, key, 0);
    ASSERT_TRUE(v.has_value()) << key << " missing on the rejoined node";
    EXPECT_EQ(*v, "v2") << key << " stale on the rejoined node";
  }
}

TEST(NdbRecoveryTest, RecoveryPhasesAreVisible) {
  RecoveryCluster tc;
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(tc.InsertCommit(StrFormat("%d/f", i), "v"), Code::kOk);
  }
  tc.sim->RunFor(kSecond);
  tc.cluster->CrashDatanode(0);
  tc.sim->RunFor(kMillisecond);
  EXPECT_EQ(tc.cluster->datanode(0).recovery_phase(),
            NdbDatanode::RecoveryPhase::kDown);

  bool served = false;
  tc.cluster->RestartDatanode(0, [&] { served = true; });
  EXPECT_EQ(tc.cluster->datanode(0).recovery_phase(),
            NdbDatanode::RecoveryPhase::kReplaying);
  EXPECT_TRUE(tc.cluster->datanode(0).recovering());
  EXPECT_FALSE(tc.cluster->datanode(0).alive())
      << "a recovering node must not serve transactions yet";
  tc.RunUntil(served);
  EXPECT_EQ(tc.cluster->datanode(0).recovery_phase(),
            NdbDatanode::RecoveryPhase::kServing);
  EXPECT_TRUE(tc.cluster->datanode(0).alive());
}

TEST(NdbRecoveryTest, RecoveryTimeLinearInLogSize) {
  // No LCPs: the whole log must be replayed, so replay work scales with
  // the number of commits. Three log sizes must land on a line.
  double entries[3] = {0, 0, 0};
  double replay_s[3] = {0, 0, 0};
  const int kCommits[3] = {60, 120, 240};
  for (int run = 0; run < 3; ++run) {
    NdbNodeConfig node;
    node.lcp_interval = 1000 * kSecond;  // never checkpoint
    RecoveryCluster tc(node);
    for (int i = 0; i < kCommits[run]; ++i) {
      ASSERT_EQ(tc.InsertCommit(StrFormat("%d/f", i), std::string(120, 'y')),
                Code::kOk);
    }
    tc.sim->RunFor(kSecond);  // flush everything
    tc.CrashAndRecover(0);
    ASSERT_FALSE(tc.cluster->recovery_log().empty());
    const auto& rec = tc.cluster->recovery_log().back();
    ASSERT_FALSE(rec.aborted);
    ASSERT_GT(rec.replay_done, rec.started);
    entries[run] = static_cast<double>(rec.replay_entries);
    replay_s[run] = ToSeconds(rec.replay_done - rec.started);
  }
  ASSERT_GT(entries[1], entries[0]);
  ASSERT_GT(entries[2], entries[1]);
  EXPECT_GT(replay_s[1], replay_s[0]);
  EXPECT_GT(replay_s[2], replay_s[1]);
  // Collinearity: predict the middle point from the line through the
  // endpoints; replay cost is per-entry CPU + per-byte disk, both linear.
  const double slope =
      (replay_s[2] - replay_s[0]) / (entries[2] - entries[0]);
  const double predicted =
      replay_s[0] + slope * (entries[1] - entries[0]);
  EXPECT_NEAR(replay_s[1], predicted, 0.2 * replay_s[1])
      << "recovery time must be linear in replay work";
}

TEST(NdbRecoveryTest, ClusterRecoveryReportsBoundedLoss) {
  // Micro-GCP config: epochs close as fast as the log flushes, so the
  // documented loss window shrinks to the group-commit cadence.
  NdbNodeConfig node;
  node.gcp_interval = 100 * kMillisecond;
  node.redo_flush_interval = 100 * kMillisecond;
  RecoveryCluster tc(node);

  ASSERT_EQ(tc.InsertCommit("7/old", "v"), Code::kOk);
  tc.sim->RunFor(2 * kSecond);  // "7/old" durable everywhere

  // Commit and recover immediately: the fresh commit cannot be durable
  // yet and must be reported as dropped, with a loss window bounded by
  // the group-commit interval (plus epoch-close skew).
  ASSERT_EQ(tc.InsertCommit("7/new", "v"), Code::kOk);
  const auto report = tc.cluster->RecoverFromCheckpoint();

  EXPECT_GE(report.dropped_commits, 1);
  EXPECT_EQ(report.dropped_commits,
            static_cast<int64_t>(report.dropped_txns.size()));
  EXPECT_GT(report.dropped_entries, 0);
  EXPECT_TRUE(report.replay_deterministic);
  EXPECT_LE(report.loss_window,
            2 * tc.cluster->node_config().redo_flush_interval +
                50 * kMillisecond)
      << "with group commit, acked-commit loss is bounded by roughly one "
         "flush interval";

  // The durable row survived; the dropped row is gone everywhere.
  auto& layout = tc.cluster->layout();
  const PartitionId p_old = layout.PartitionOf(tc.table, "7/old");
  for (NodeId n : layout.ReplicaChain(p_old)) {
    EXPECT_TRUE(
        tc.cluster->datanode(n).store().Read(tc.table, "7/old", 0).has_value())
        << "durable commit lost at node " << n;
  }
  const PartitionId p_new = layout.PartitionOf(tc.table, "7/new");
  for (NodeId n : layout.ReplicaChain(p_new)) {
    EXPECT_FALSE(
        tc.cluster->datanode(n).store().Read(tc.table, "7/new", 0).has_value())
        << "dropped commit resurrected at node " << n;
  }

  // The recovered cluster serves new writes.
  EXPECT_EQ(tc.InsertCommit("7/after", "v"), Code::kOk);
}

TEST(NdbRecoveryTest, CrashDuringRecoveryAbandonsAndRetries) {
  RecoveryCluster tc;
  for (int i = 0; i < 20; ++i) {
    ASSERT_EQ(tc.InsertCommit(StrFormat("%d/f", i), "v"), Code::kOk);
  }
  tc.sim->RunFor(kSecond);
  tc.cluster->CrashDatanode(0);
  tc.sim->RunFor(kMillisecond);

  // First restart: crash the node again while it is still replaying.
  bool first_done = false;
  tc.cluster->RestartDatanode(0, [&] { first_done = true; });
  ASSERT_TRUE(tc.cluster->datanode(0).recovering());
  tc.cluster->CrashDatanode(0);
  tc.RunUntil(first_done);  // the abandoned recovery still fires `done`
  ASSERT_FALSE(tc.cluster->recovery_log().empty());
  EXPECT_TRUE(tc.cluster->recovery_log().back().aborted);
  EXPECT_FALSE(tc.cluster->datanode(0).alive());
  EXPECT_FALSE(tc.cluster->datanode(0).recovering());

  // Second restart completes normally.
  bool served = false;
  tc.cluster->RestartDatanode(0, [&] { served = true; });
  tc.RunUntil(served);
  EXPECT_TRUE(tc.cluster->layout().alive(0));
  const auto& rec = tc.cluster->recovery_log().back();
  EXPECT_FALSE(rec.aborted);
  EXPECT_TRUE(rec.replay_deterministic);
}

}  // namespace
}  // namespace repro::ndb
