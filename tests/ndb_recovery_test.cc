// Redo-journal and timed node-recovery tests: group-commit flush
// boundaries, LCP truncation, replay-to-exact-row-state equality, and
// recovery time scaling linearly with the replay work (log entries +
// bytes since the last local checkpoint).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>

#include "ndb/client.h"
#include "ndb/cluster.h"
#include "sim/engine.h"
#include "sim/network.h"
#include "sim/topology.h"
#include "util/strings.h"

namespace repro::ndb {
namespace {

// Like tests/ndb_test_util.h's TestCluster, but with the node config
// (flush cadence, LCP interval, segment size) under test control.
struct RecoveryCluster {
  explicit RecoveryCluster(NdbNodeConfig node_config = {}) {
    sim = std::make_unique<Simulation>(42);
    topology = std::make_unique<Topology>(3, AzLatencyTable::UsWest1());
    topology->set_jitter_fraction(0);
    network = std::make_unique<Network>(*sim, *topology);

    TableDef inodes;
    inodes.name = "inodes";
    inodes.part_key = PartKeyRule::kPrefixBeforeSlash;
    inodes.read_backup = true;
    table = catalog.AddTable(inodes);

    NdbClusterConfig config;
    config.layout.num_datanodes = 6;
    config.layout.replication_factor = 3;
    config.layout.node_az = AssignNodeAzs(6, 3, {0, 1, 2});
    config.layout.num_ldm_threads = 4;
    config.flags.az_aware = true;
    config.node = node_config;
    cluster = std::make_unique<NdbCluster>(*sim, *network, &catalog, config);
    cluster->StartProtocols();

    const HostId api_host = topology->AddHost(0, "api-0");
    api = std::make_unique<NdbApiNode>(*cluster, api_host, /*az=*/0);
  }

  Code InsertCommit(const Key& key, const std::string& value) {
    const TxnId txn = api->Begin(table, key);
    Code result = Code::kInternal;
    bool done = false;
    // Write (upsert) so re-running a key overwrites instead of failing.
    api->Write(txn, table, key, value, [&](Code c) {
      if (c != Code::kOk) {
        api->Abort(txn);
        result = c;
        done = true;
        return;
      }
      api->Commit(txn, [&](Code c2) {
        result = c2;
        done = true;
      });
    });
    RunUntil(done);
    return result;
  }

  void RunUntil(bool& flag, Nanos limit = 60 * kSecond) {
    const Nanos deadline = sim->now() + limit;
    while (!flag && sim->now() < deadline && !sim->Empty()) {
      sim->RunUntil(sim->now() + kMillisecond);
    }
    ASSERT_TRUE(flag) << "operation did not finish within the time limit";
  }

  // Drives the sim until the failure detector declares node n dead, so
  // follow-up transactions route around it instead of stalling on a
  // crashed-but-undetected replica.
  void WaitUntilDetectedDead(NodeId n, Nanos limit = 60 * kSecond) {
    const Nanos deadline = sim->now() + limit;
    while (cluster->layout().alive(n) && sim->now() < deadline &&
           !sim->Empty()) {
      sim->RunUntil(sim->now() + 10 * kMillisecond);
    }
    ASSERT_FALSE(cluster->layout().alive(n)) << "node " << n
                                             << " never detected dead";
  }

  // Crashes node n, restarts it, and drives the sim until it serves.
  void CrashAndRecover(NodeId n) {
    cluster->CrashDatanode(n);
    sim->RunFor(kMillisecond);
    bool served = false;
    cluster->RestartDatanode(n, [&] { served = true; });
    RunUntil(served);
  }

  Catalog catalog;
  TableId table = 0;
  std::unique_ptr<Simulation> sim;
  std::unique_ptr<Topology> topology;
  std::unique_ptr<Network> network;
  std::unique_ptr<NdbCluster> cluster;
  std::unique_ptr<NdbApiNode> api;
};

TEST(NdbRecoveryTest, GroupCommitFlushBoundaries) {
  RecoveryCluster tc;
  ASSERT_EQ(tc.InsertCommit("1/a", "va"), Code::kOk);

  // Right after the commit the record sits in the group-commit window of
  // at least one replica: appended, not yet on disk.
  int64_t backlog = 0;
  for (NodeId n = 0; n < tc.cluster->num_datanodes(); ++n) {
    backlog += tc.cluster->datanode(n).journal().backlog_bytes();
  }
  EXPECT_GT(backlog, 0) << "commit should be in the un-flushed window";

  // One flush interval (plus the disk write) later the whole log is
  // durable on every node — the group commit landed.
  tc.sim->RunFor(tc.cluster->node_config().redo_flush_interval +
                 50 * kMillisecond);
  for (NodeId n = 0; n < tc.cluster->num_datanodes(); ++n) {
    const RedoJournal& j = tc.cluster->datanode(n).journal();
    EXPECT_EQ(j.durable_seqno(), j.last_seqno()) << "node " << n;
    EXPECT_EQ(j.backlog_bytes(), 0) << "node " << n;
  }
}

TEST(NdbRecoveryTest, LcpTruncatesRedoLog) {
  NdbNodeConfig node;
  node.redo_segment_bytes = 4 << 10;  // small segments so truncation bites
  RecoveryCluster tc(node);
  for (int i = 0; i < 60; ++i) {
    ASSERT_EQ(tc.InsertCommit(StrFormat("%d/f", i), std::string(200, 'x')),
              Code::kOk);
  }
  // Run past two LCP intervals so every node checkpoints at least once.
  tc.sim->RunFor(2 * tc.cluster->node_config().lcp_interval + kSecond);

  for (NodeId n = 0; n < tc.cluster->num_datanodes(); ++n) {
    const RedoJournal& j = tc.cluster->datanode(n).journal();
    EXPECT_GT(j.base_seqno(), 0) << "node " << n << " never checkpointed";
    EXPECT_GT(j.base_rows(), 0) << "node " << n;
    // Truncation: the log retains at most ~one segment of overhang past
    // the checkpoint cut, not the whole history.
    EXPECT_LT(j.live_records(), j.last_seqno()) << "node " << n;
    EXPECT_LE(j.lag_bytes(),
              j.config().segment_bytes + 2 * j.config().flush_overhead_bytes)
        << "node " << n << " log not truncated at the LCP";
  }
}

TEST(NdbRecoveryTest, ReplayRestoresExactRowState) {
  RecoveryCluster tc;
  for (int i = 0; i < 25; ++i) {
    ASSERT_EQ(tc.InsertCommit(StrFormat("%d/f", i), StrFormat("v%d", i)),
              Code::kOk);
  }
  // Quiesce: flush and checkpoint whatever the cadence produced, then
  // snapshot the committed image of node 0.
  tc.sim->RunFor(kSecond);
  const uint64_t before = tc.cluster->datanode(0).DigestStore();

  tc.CrashAndRecover(0);

  // The rejoined node's committed row image is byte-identical to the
  // pre-crash one (replay of checkpoint+log, then delta resync).
  EXPECT_EQ(tc.cluster->datanode(0).DigestStore(), before);
  ASSERT_FALSE(tc.cluster->recovery_log().empty());
  const auto& rec = tc.cluster->recovery_log().back();
  EXPECT_EQ(rec.node, 0);
  EXPECT_FALSE(rec.aborted);
  EXPECT_GT(rec.replay_entries, 0) << "recovery should replay its own log";
  EXPECT_TRUE(rec.replay_deterministic)
      << "two replays of the same journal must produce identical images";
  EXPECT_TRUE(rec.replay_covered)
      << "replay must cover exactly the durable prefix (every acked commit "
         "is in a flushed segment or a checkpoint)";
}

TEST(NdbRecoveryTest, RejoinedNodeConvergesWithLiveReplicas) {
  RecoveryCluster tc;
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(tc.InsertCommit(StrFormat("%d/f", i), "v1"), Code::kOk);
  }
  tc.sim->RunFor(kSecond);
  tc.cluster->CrashDatanode(0);
  tc.WaitUntilDetectedDead(0);
  // Overwrites land while the node is down: its replayed log is stale
  // for these keys and resync must supply the newer versions.
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(tc.InsertCommit(StrFormat("%d/f", i), "v2"), Code::kOk);
  }
  bool served = false;
  tc.cluster->RestartDatanode(0, [&] { served = true; });
  tc.RunUntil(served);

  auto& layout = tc.cluster->layout();
  for (int i = 0; i < 10; ++i) {
    const std::string key = StrFormat("%d/f", i);
    const PartitionId p = layout.PartitionOf(tc.table, key);
    bool mine = false;
    for (NodeId r : layout.ReplicaChain(p)) mine |= (r == 0);
    if (!mine) continue;
    auto v = tc.cluster->datanode(0).store().Read(tc.table, key, 0);
    ASSERT_TRUE(v.has_value()) << key << " missing on the rejoined node";
    EXPECT_EQ(*v, "v2") << key << " stale on the rejoined node";
  }
}

TEST(NdbRecoveryTest, RecoveryPhasesAreVisible) {
  RecoveryCluster tc;
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(tc.InsertCommit(StrFormat("%d/f", i), "v"), Code::kOk);
  }
  tc.sim->RunFor(kSecond);
  tc.cluster->CrashDatanode(0);
  tc.sim->RunFor(kMillisecond);
  EXPECT_EQ(tc.cluster->datanode(0).recovery_phase(),
            NdbDatanode::RecoveryPhase::kDown);

  bool served = false;
  tc.cluster->RestartDatanode(0, [&] { served = true; });
  EXPECT_EQ(tc.cluster->datanode(0).recovery_phase(),
            NdbDatanode::RecoveryPhase::kReplaying);
  EXPECT_TRUE(tc.cluster->datanode(0).recovering());
  EXPECT_FALSE(tc.cluster->datanode(0).alive())
      << "a recovering node must not serve transactions yet";
  tc.RunUntil(served);
  EXPECT_EQ(tc.cluster->datanode(0).recovery_phase(),
            NdbDatanode::RecoveryPhase::kServing);
  EXPECT_TRUE(tc.cluster->datanode(0).alive());
}

TEST(NdbRecoveryTest, RecoveryTimeLinearInLogSize) {
  // No LCPs: the whole log must be replayed, so replay work scales with
  // the number of commits. Three log sizes must land on a line.
  double entries[3] = {0, 0, 0};
  double replay_s[3] = {0, 0, 0};
  const int kCommits[3] = {60, 120, 240};
  for (int run = 0; run < 3; ++run) {
    NdbNodeConfig node;
    node.lcp_interval = 1000 * kSecond;  // never checkpoint
    RecoveryCluster tc(node);
    for (int i = 0; i < kCommits[run]; ++i) {
      ASSERT_EQ(tc.InsertCommit(StrFormat("%d/f", i), std::string(120, 'y')),
                Code::kOk);
    }
    tc.sim->RunFor(kSecond);  // flush everything
    tc.CrashAndRecover(0);
    ASSERT_FALSE(tc.cluster->recovery_log().empty());
    const auto& rec = tc.cluster->recovery_log().back();
    ASSERT_FALSE(rec.aborted);
    ASSERT_GT(rec.replay_done, rec.started);
    entries[run] = static_cast<double>(rec.replay_entries);
    replay_s[run] = ToSeconds(rec.replay_done - rec.started);
  }
  ASSERT_GT(entries[1], entries[0]);
  ASSERT_GT(entries[2], entries[1]);
  EXPECT_GT(replay_s[1], replay_s[0]);
  EXPECT_GT(replay_s[2], replay_s[1]);
  // Collinearity: predict the middle point from the line through the
  // endpoints; replay cost is per-entry CPU + per-byte disk, both linear.
  const double slope =
      (replay_s[2] - replay_s[0]) / (entries[2] - entries[0]);
  const double predicted =
      replay_s[0] + slope * (entries[1] - entries[0]);
  EXPECT_NEAR(replay_s[1], predicted, 0.2 * replay_s[1])
      << "recovery time must be linear in replay work";
}

TEST(NdbRecoveryTest, ClusterRecoveryReportsBoundedLoss) {
  // Micro-GCP config: epochs close as fast as the log flushes, so the
  // documented loss window shrinks to the group-commit cadence.
  NdbNodeConfig node;
  node.gcp_interval = 100 * kMillisecond;
  node.redo_flush_interval = 100 * kMillisecond;
  RecoveryCluster tc(node);

  ASSERT_EQ(tc.InsertCommit("7/old", "v"), Code::kOk);
  tc.sim->RunFor(2 * kSecond);  // "7/old" durable everywhere

  // Commit and recover immediately: the fresh commit cannot be durable
  // yet and must be reported as dropped, with a loss window bounded by
  // the group-commit interval (plus epoch-close skew).
  ASSERT_EQ(tc.InsertCommit("7/new", "v"), Code::kOk);
  const auto report = tc.cluster->RecoverFromCheckpoint();

  EXPECT_GE(report.dropped_commits, 1);
  EXPECT_EQ(report.dropped_commits,
            static_cast<int64_t>(report.dropped_txns.size()));
  EXPECT_GT(report.dropped_entries, 0);
  EXPECT_TRUE(report.replay_deterministic);
  EXPECT_LE(report.loss_window,
            2 * tc.cluster->node_config().redo_flush_interval +
                50 * kMillisecond)
      << "with group commit, acked-commit loss is bounded by roughly one "
         "flush interval";

  // The durable row survived; the dropped row is gone everywhere.
  auto& layout = tc.cluster->layout();
  const PartitionId p_old = layout.PartitionOf(tc.table, "7/old");
  for (NodeId n : layout.ReplicaChain(p_old)) {
    EXPECT_TRUE(
        tc.cluster->datanode(n).store().Read(tc.table, "7/old", 0).has_value())
        << "durable commit lost at node " << n;
  }
  const PartitionId p_new = layout.PartitionOf(tc.table, "7/new");
  for (NodeId n : layout.ReplicaChain(p_new)) {
    EXPECT_FALSE(
        tc.cluster->datanode(n).store().Read(tc.table, "7/new", 0).has_value())
        << "dropped commit resurrected at node " << n;
  }

  // The recovered cluster serves new writes.
  EXPECT_EQ(tc.InsertCommit("7/after", "v"), Code::kOk);
}

// Regression for the epoch-straddling window: a commit's redo records
// used to be stamped with each replica's CURRENT epoch at append time, so
// a GCP tick landing mid commit-chain split one transaction across two
// epochs — the recovery cut could then keep some replicas' records and
// drop others'. Epochs are now assigned once per transaction at the
// commit decision, and an epoch only closes after all its commits
// finished, so the cut is transaction-exact.
TEST(NdbRecoveryTest, CommitEpochsAreTransactionAtomic) {
  NdbNodeConfig node;
  node.gcp_interval = kMillisecond;   // ticks land inside commit chains
  node.redo_flush_interval = 10 * kMillisecond;
  node.lcp_interval = 1000 * kSecond;  // keep every record in the log
  RecoveryCluster tc(node);

  std::map<TxnId, Key> keys;
  for (int i = 0; i < 50; ++i) {
    const Key key = StrFormat("%d/f", i);
    const TxnId txn = tc.api->Begin(tc.table, key);
    Code result = Code::kInternal;
    bool done = false;
    tc.api->Write(txn, tc.table, key, StrFormat("v%d", i), [&](Code c) {
      if (c != Code::kOk) {
        tc.api->Abort(txn);
        result = c;
        done = true;
        return;
      }
      tc.api->Commit(txn, [&](Code c2) {
        result = c2;
        done = true;
      });
    });
    tc.RunUntil(done);
    ASSERT_EQ(result, Code::kOk);
    keys[txn] = key;
  }

  // Every record of a transaction — across all replicas and chain
  // positions — must carry the single epoch assigned at commit time.
  std::map<TxnId, std::set<int64_t>> epochs;
  for (NodeId n = 0; n < tc.cluster->num_datanodes(); ++n) {
    for (const auto& seg : tc.cluster->datanode(n).journal().segments()) {
      for (const auto& r : seg.records) {
        if (keys.count(r.txn)) epochs[r.txn].insert(r.epoch);
      }
    }
  }
  ASSERT_EQ(epochs.size(), keys.size());
  for (const auto& [txn, eps] : epochs) {
    EXPECT_EQ(eps.size(), 1u)
        << "txn " << txn << " straddles " << eps.size() << " epochs";
  }

  // Exact cut: recover immediately (the freshest commits cannot be
  // durable). Every transaction is either fully replayed on all its
  // replicas or fully dropped — never half-kept.
  const auto report = tc.cluster->RecoverFromCheckpoint();
  ASSERT_GE(report.dropped_commits, 1)
      << "recovery right after a commit must drop the undurable tail";
  const std::set<TxnId> dropped(report.dropped_txns.begin(),
                                report.dropped_txns.end());
  auto& layout = tc.cluster->layout();
  for (const auto& [txn, key] : keys) {
    const PartitionId p = layout.PartitionOf(tc.table, key);
    for (NodeId n : layout.ReplicaChain(p)) {
      const auto v = tc.cluster->datanode(n).store().Read(tc.table, key, 0);
      if (dropped.count(txn)) {
        EXPECT_FALSE(v.has_value())
            << "dropped txn " << txn << " resurrected on node " << n;
      } else {
        EXPECT_TRUE(v.has_value())
            << "durable txn " << txn << " lost on node " << n;
      }
    }
  }
}

// Regression for the over-fresh-adoption window: a rejoining node used to
// checkpoint the source's CURRENT image — including commits newer than
// the cluster-durable epoch — so a whole-cluster recovery immediately
// after the rejoin replayed those post-durable commits from its base
// image while every other replica dropped them. Adoption is now filtered
// to the durable cut; post-durable rows ride along as ordinary log
// records and fall to the same side of the cut everywhere.
TEST(NdbRecoveryTest, RejoinAdoptionCannotResurrectPostDurableCommits) {
  NdbNodeConfig node;
  node.redo_flush_interval = 200 * kMillisecond;
  node.gcp_interval = 500 * kMillisecond;
  node.lcp_interval = 1000 * kSecond;
  RecoveryCluster tc(node);

  // A key node 0 replicates, so the rejoin adoption covers it.
  auto& layout = tc.cluster->layout();
  std::string fresh_key;
  for (int i = 0; i < 64 && fresh_key.empty(); ++i) {
    const std::string key = StrFormat("%d/fresh", i);
    for (NodeId r : layout.ReplicaChain(layout.PartitionOf(tc.table, key))) {
      if (r == 0) {
        fresh_key = key;
        break;
      }
    }
  }
  ASSERT_FALSE(fresh_key.empty());

  ASSERT_EQ(tc.InsertCommit("3/old", "v1"), Code::kOk);
  tc.sim->RunFor(2 * kSecond);  // "3/old" durable everywhere

  tc.cluster->CrashDatanode(0);
  tc.WaitUntilDetectedDead(0);

  // Acked while node 0 is down; with the slow flush/GCP cadence it is
  // still NOT durable when the rejoin below completes.
  TxnId fresh_txn = 0;
  {
    const TxnId txn = tc.api->Begin(tc.table, fresh_key);
    Code result = Code::kInternal;
    bool done = false;
    tc.api->Write(txn, tc.table, fresh_key, "v2", [&](Code c) {
      if (c != Code::kOk) {
        tc.api->Abort(txn);
        result = c;
        done = true;
        return;
      }
      tc.api->Commit(txn, [&](Code c2) {
        result = c2;
        done = true;
      });
    });
    tc.RunUntil(done);
    ASSERT_EQ(result, Code::kOk);
    fresh_txn = txn;
  }

  // Rejoin immediately, then crash the whole cluster the moment the node
  // serves again.
  bool served = false;
  tc.cluster->RestartDatanode(0, [&] { served = true; });
  tc.RunUntil(served);
  const auto report = tc.cluster->RecoverFromCheckpoint();

  // Guard: the scenario only exercises the window if the fresh commit
  // was really beyond the recovery cut.
  const std::set<TxnId> dropped(report.dropped_txns.begin(),
                                report.dropped_txns.end());
  ASSERT_TRUE(dropped.count(fresh_txn))
      << "fresh commit became durable before the rejoin finished; "
         "the test no longer exercises the adoption window";

  // The dropped commit must be gone EVERYWHERE — in particular on the
  // freshly rejoined node 0, whose adopted checkpoint must not have
  // smuggled it past the cut.
  const PartitionId p = layout.PartitionOf(tc.table, fresh_key);
  for (NodeId n : layout.ReplicaChain(p)) {
    EXPECT_FALSE(tc.cluster->datanode(n)
                     .store()
                     .Read(tc.table, fresh_key, 0)
                     .has_value())
        << "post-durable commit resurrected on node " << n;
  }
  // The durable row survived on its replicas.
  const PartitionId p_old = layout.PartitionOf(tc.table, "3/old");
  for (NodeId n : layout.ReplicaChain(p_old)) {
    EXPECT_TRUE(
        tc.cluster->datanode(n).store().Read(tc.table, "3/old", 0).has_value())
        << "durable commit lost at node " << n;
  }
}

// Streaming catch-up: a rejoining node serves committed reads for
// partitions whose resync already completed, before it is fully alive.
TEST(NdbRecoveryTest, RejoiningNodeServesReadsMidResync) {
  NdbNodeConfig node;
  node.lcp_interval = 1000 * kSecond;  // big replay + big adopted image
  RecoveryCluster tc(node);

  // Enough data that the rejoin checkpoint write gives a real window in
  // which the node is catch-up-ready but not yet alive.
  std::vector<std::string> mine;  // keys node 0 replicates
  auto& layout = tc.cluster->layout();
  for (int i = 0; i < 400; ++i) {
    const std::string key = StrFormat("%d/f", i);
    ASSERT_EQ(tc.InsertCommit(key, std::string(2048, 'd')), Code::kOk);
    for (NodeId r : layout.ReplicaChain(layout.PartitionOf(tc.table, key))) {
      if (r == 0) {
        mine.push_back(key);
        break;
      }
    }
  }
  ASSERT_FALSE(mine.empty());
  tc.sim->RunFor(kSecond);

  tc.cluster->CrashDatanode(0);
  tc.WaitUntilDetectedDead(0);
  // Writes while the node is down give the resync real work per
  // partition (and in-flight writers make the per-partition fences wait).
  for (size_t i = 0; i < mine.size(); i += 3) {
    ASSERT_EQ(tc.InsertCommit(mine[i], std::string(2048, 'e')), Code::kOk);
  }

  bool served = false;
  tc.cluster->RestartDatanode(0, [&] { served = true; });

  // Hammer committed reads of node-0 keys while it recovers. The API
  // node sits in AZ 0, and node 0 is the only AZ-0 replica of its
  // partitions, so AZ-aware routing prefers it as soon as a partition
  // turns catch-up-ready.
  int64_t reads_ok = 0;
  size_t rr = 0;
  auto read_timer = tc.sim->Every(200 * kMicrosecond, [&] {
    if (served) return;
    const std::string& key = mine[rr++ % mine.size()];
    // BeginNoHint lands the TC on the closest alive node (node 1, AZ 0);
    // its committed-read routing then prefers the AZ-0 replica — node 0 —
    // as soon as the key's partition turns catch-up-ready.
    const TxnId txn = tc.api->BeginNoHint();
    if (txn == 0) return;
    tc.api->Read(txn, tc.table, key, LockMode::kReadCommitted,
                 [&, txn](Code c, std::optional<std::string>) {
                   if (c == Code::kOk) ++reads_ok;
                   tc.api->Abort(txn);
                 });
  });
  tc.RunUntil(served);
  read_timer.Cancel();
  EXPECT_GT(reads_ok, 0);

  ASSERT_FALSE(tc.cluster->recovery_log().empty());
  const auto& rec = tc.cluster->recovery_log().back();
  EXPECT_FALSE(rec.aborted);
  EXPECT_GT(rec.streamed_parts, 0)
      << "resync must stream per partition, not adopt in one gulp";
  EXPECT_GT(rec.catchup_reads, 0)
      << "the rejoining node must serve reads for resynced partitions "
         "before it is fully alive";
  // And the node converged: fully serving, consistent with its peers.
  EXPECT_TRUE(tc.cluster->datanode(0).alive());
  for (const auto& key : mine) {
    const auto v = tc.cluster->datanode(0).store().Read(tc.table, key, 0);
    ASSERT_TRUE(v.has_value()) << key << " missing on the rejoined node";
  }
}

// A saturated (grey-slow) redo-log disk must engage commit backpressure:
// the unflushed backlog stays bounded, some commits shed with
// kResourceExhausted instead of piling up, and the stall clock runs.
TEST(NdbRecoveryTest, LogDiskSaturationBoundsRedoBacklog) {
  NdbNodeConfig node;
  node.redo_stall_backlog_bytes = 32 << 10;  // low threshold, engages fast
  RecoveryCluster tc(node);
  tc.cluster->datanode(0).SetLogDiskSlowdown(5000.0);

  const int64_t bound = 2 * node.redo_stall_backlog_bytes;
  int ok = 0, shed = 0;
  int64_t max_backlog = 0;
  for (int i = 0; i < 400; ++i) {
    const Code c = tc.InsertCommit(StrFormat("%d/f", i), std::string(512, 'z'));
    if (c == Code::kOk) {
      ++ok;
    } else {
      ++shed;
    }
    max_backlog = std::max(max_backlog,
                           tc.cluster->datanode(0).journal().backlog_bytes());
  }
  EXPECT_GT(ok, 0) << "keys avoiding the slow node must still commit";
  EXPECT_GT(shed, 0) << "backpressure must shed commits, not queue forever";
  EXPECT_LE(max_backlog, bound)
      << "unflushed redo must stay bounded under log-disk saturation";
  EXPECT_GT(tc.cluster->datanode(0).redo_stall_ns(), 0)
      << "the stall clock must account the backpressure time";

  // Heal the disk: the backlog drains and commits on the node's
  // partitions succeed again.
  tc.cluster->datanode(0).SetLogDiskSlowdown(1.0);
  tc.sim->RunFor(2 * kSecond);
  EXPECT_EQ(tc.cluster->datanode(0).journal().backlog_bytes(), 0);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(tc.InsertCommit(StrFormat("%d/f", i), "post-heal"), Code::kOk);
  }
}

TEST(NdbRecoveryTest, CrashDuringRecoveryAbandonsAndRetries) {
  RecoveryCluster tc;
  for (int i = 0; i < 20; ++i) {
    ASSERT_EQ(tc.InsertCommit(StrFormat("%d/f", i), "v"), Code::kOk);
  }
  tc.sim->RunFor(kSecond);
  tc.cluster->CrashDatanode(0);
  tc.sim->RunFor(kMillisecond);

  // First restart: crash the node again while it is still replaying.
  bool first_done = false;
  tc.cluster->RestartDatanode(0, [&] { first_done = true; });
  ASSERT_TRUE(tc.cluster->datanode(0).recovering());
  tc.cluster->CrashDatanode(0);
  tc.RunUntil(first_done);  // the abandoned recovery still fires `done`
  ASSERT_FALSE(tc.cluster->recovery_log().empty());
  EXPECT_TRUE(tc.cluster->recovery_log().back().aborted);
  EXPECT_FALSE(tc.cluster->datanode(0).alive());
  EXPECT_FALSE(tc.cluster->datanode(0).recovering());

  // Second restart completes normally.
  bool served = false;
  tc.cluster->RestartDatanode(0, [&] { served = true; });
  tc.RunUntil(served);
  EXPECT_TRUE(tc.cluster->layout().alive(0));
  const auto& rec = tc.cluster->recovery_log().back();
  EXPECT_FALSE(rec.aborted);
  EXPECT_TRUE(rec.replay_deterministic);
}

// Catch-up backups sit in write chains but outside the failure detector's
// purview (it only watches layout-alive nodes), so losing a commit-chain
// or Complete hop to one — e.g. to a partition — must not wedge the
// transaction forever: the inactivity sweep re-drives the stalled phase.
// Without that, the primary's row lock and every backup pending slot stay
// held until the node fully revives — or forever, if it never does.
TEST(NdbRecoveryTest, PartitionedCatchupBackupCannotWedgeCommit) {
  NdbNodeConfig node;
  node.lcp_interval = 1000 * kSecond;  // long replay = long catch-up window
  RecoveryCluster tc(node);

  auto& layout = tc.cluster->layout();
  std::vector<std::string> mine;  // keys node 0 replicates
  for (int i = 0; i < 400; ++i) {
    const std::string key = StrFormat("%d/f", i);
    ASSERT_EQ(tc.InsertCommit(key, std::string(2048, 'd')), Code::kOk);
    for (NodeId r : layout.ReplicaChain(layout.PartitionOf(tc.table, key))) {
      if (r == 0) {
        mine.push_back(key);
        break;
      }
    }
  }
  ASSERT_FALSE(mine.empty());
  tc.sim->RunFor(kSecond);
  tc.cluster->CrashDatanode(0);
  tc.WaitUntilDetectedDead(0);
  for (size_t i = 0; i < mine.size(); i += 3) {
    ASSERT_EQ(tc.InsertCommit(mine[i], std::string(2048, 'e')), Code::kOk);
  }

  bool served = false;
  tc.cluster->RestartDatanode(0, [&] { served = true; });

  // Wait for a partition of node 0 to turn catch-up ready and pick a key
  // in it: that key's write chain now ends at catch-up node 0.
  std::string key;
  const Nanos deadline = tc.sim->now() + 60 * kSecond;
  while (key.empty() && tc.sim->now() < deadline && !served) {
    for (const auto& k : mine) {
      if (layout.catchup_ready(0, layout.PartitionOf(tc.table, k))) {
        key = k;
        break;
      }
    }
    if (key.empty()) tc.sim->RunFor(200 * kMicrosecond);
  }
  ASSERT_FALSE(key.empty()) << "no partition turned catch-up ready";

  // Commit through the catch-up backup, cutting traffic into AZ 0 at the
  // commit point. The commit chain runs backups-first, so its first hop —
  // to node 0, the chain's appended tail — is dropped.
  const TxnId txn = tc.api->Begin(tc.table, key);
  ASSERT_NE(txn, 0u);
  bool prepared = false;
  bool commit_done = false;
  tc.api->Write(txn, tc.table, key, "wedge-me", [&](Code c) {
    ASSERT_EQ(c, Code::kOk) << "all replicas, node 0 included, must prepare";
    prepared = true;
    tc.topology->PartitionAzsOneWay(1, 0);
    tc.topology->PartitionAzsOneWay(2, 0);
    tc.api->Commit(txn, [&](Code) { commit_done = true; });
    // Heal well under the failure detector's threshold (4 x 50 ms): this
    // exercises the re-drive, not node eviction. The lost hop is already
    // lost — nothing re-sends it on heal.
    tc.sim->After(60 * kMillisecond,
                  [&] { tc.topology->HealAllPartitions(); });
  });
  tc.RunUntil(commit_done);
  ASSERT_TRUE(prepared);

  // One inactivity timeout later the sweep re-drives the stalled commit
  // chain; the primary applies and unlocks. A fresh write to the same row
  // must then succeed — wedged, it would time out on the primary's lock.
  tc.sim->RunFor(4 * kSecond);
  EXPECT_EQ(tc.InsertCommit(key, "after-heal"), Code::kOk)
      << "commit through a partitioned catch-up backup wedged the row";

  tc.RunUntil(served);
  const auto v = tc.cluster->datanode(0).store().Read(tc.table, key, 0);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "after-heal");
}

}  // namespace
}  // namespace repro::ndb
