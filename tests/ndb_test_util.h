// Shared fixture pieces for NDB-layer tests: a 3-AZ cluster with a small
// catalog, plus helpers to run async operations to completion.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>

#include "ndb/client.h"
#include "ndb/cluster.h"
#include "sim/engine.h"
#include "sim/network.h"
#include "sim/topology.h"

namespace repro::ndb::testing {

struct TestCluster {
  explicit TestCluster(int num_datanodes = 6, int replication = 3,
                       bool az_aware = true, bool read_backup = true) {
    sim = std::make_unique<Simulation>(42);
    topology = std::make_unique<Topology>(3, AzLatencyTable::UsWest1());
    topology->set_jitter_fraction(0);  // exact determinism for tests
    network = std::make_unique<Network>(*sim, *topology);

    TableDef inodes;
    inodes.name = "inodes";
    inodes.part_key = PartKeyRule::kPrefixBeforeSlash;
    inodes.read_backup = read_backup;
    inode_table = catalog.AddTable(inodes);

    TableDef dict;
    dict.name = "dict";
    dict.read_backup = read_backup;
    dict.fully_replicated = true;
    dict_table = catalog.AddTable(dict);

    NdbClusterConfig config;
    config.layout.num_datanodes = num_datanodes;
    config.layout.replication_factor = replication;
    config.layout.node_az =
        AssignNodeAzs(num_datanodes, replication, {0, 1, 2});
    config.layout.num_ldm_threads = 4;
    config.flags.az_aware = az_aware;
    cluster =
        std::make_unique<NdbCluster>(*sim, *network, &catalog, config);

    const HostId api_host = topology->AddHost(0, "api-0");
    api = std::make_unique<NdbApiNode>(*cluster, api_host, /*az=*/0);
  }

  // Convenience synchronous wrappers (drive the simulation until done).
  Code InsertCommit(TableId table, const Key& key, const std::string& value) {
    const TxnId txn = api->Begin(table, key);
    Code result = Code::kInternal;
    bool done = false;
    api->Insert(txn, table, key, value, [&](Code c) {
      if (c != Code::kOk) {
        api->Abort(txn);
        result = c;
        done = true;
        return;
      }
      api->Commit(txn, [&](Code c2) {
        result = c2;
        done = true;
      });
    });
    RunUntil(done);
    return result;
  }

  std::pair<Code, std::optional<std::string>> ReadCommitted(
      TableId table, const Key& key) {
    const TxnId txn = api->Begin(table, key);
    std::pair<Code, std::optional<std::string>> out{Code::kInternal, {}};
    bool done = false;
    api->Read(txn, table, key, LockMode::kReadCommitted,
              [&](Code c, std::optional<std::string> v) {
                out = {c, std::move(v)};
                api->Commit(txn, [&](Code) { done = true; });
              });
    RunUntil(done);
    return out;
  }

  void RunUntil(bool& flag, Nanos limit = 30 * kSecond) {
    const Nanos deadline = sim->now() + limit;
    while (!flag && sim->now() < deadline && !sim->Empty()) {
      sim->RunUntil(sim->now() + kMillisecond);
    }
    ASSERT_TRUE(flag) << "operation did not finish within the time limit";
  }

  Catalog catalog;
  TableId inode_table = 0;
  TableId dict_table = 0;
  std::unique_ptr<Simulation> sim;
  std::unique_ptr<Topology> topology;
  std::unique_ptr<Network> network;
  std::unique_ptr<NdbCluster> cluster;
  std::unique_ptr<NdbApiNode> api;
};

}  // namespace repro::ndb::testing
