// Direct unit tests for the strict-2PL row lock manager.
#include <gtest/gtest.h>

#include "ndb/lock_manager.h"

namespace repro::ndb {
namespace {

struct LockRig {
  LockRig() : sim(1), locks(sim, /*wait_timeout=*/Millis(100)) {}

  // Convenience: acquire and record the outcome.
  void Acquire(TxnId txn, const Key& key, LockMode mode, Code* out) {
    *out = Code::kInternal;
    locks.Acquire(txn, 0, key, mode, [out](Status s) { *out = s.code(); });
  }

  Simulation sim;
  LockManager locks;
};

TEST(LockManager, ExclusiveExcludesEverything) {
  LockRig rig;
  Code a, b, c;
  rig.Acquire(1, "k", LockMode::kExclusive, &a);
  EXPECT_EQ(a, Code::kOk);
  rig.Acquire(2, "k", LockMode::kExclusive, &b);
  rig.Acquire(3, "k", LockMode::kShared, &c);
  EXPECT_EQ(b, Code::kInternal);  // still waiting
  EXPECT_EQ(c, Code::kInternal);
  rig.locks.Release(1, 0, "k");
  EXPECT_EQ(b, Code::kOk) << "FIFO: the exclusive waiter goes first";
  EXPECT_EQ(c, Code::kInternal);
  rig.locks.Release(2, 0, "k");
  EXPECT_EQ(c, Code::kOk);
}

TEST(LockManager, SharedHoldersCoexistAndBlockExclusive) {
  LockRig rig;
  Code a, b, x;
  rig.Acquire(1, "k", LockMode::kShared, &a);
  rig.Acquire(2, "k", LockMode::kShared, &b);
  EXPECT_EQ(a, Code::kOk);
  EXPECT_EQ(b, Code::kOk);
  rig.Acquire(3, "k", LockMode::kExclusive, &x);
  EXPECT_EQ(x, Code::kInternal);
  rig.locks.Release(1, 0, "k");
  EXPECT_EQ(x, Code::kInternal) << "one shared holder remains";
  rig.locks.Release(2, 0, "k");
  EXPECT_EQ(x, Code::kOk);
}

TEST(LockManager, SoleSharedHolderUpgradesInPlace) {
  LockRig rig;
  Code s, x;
  rig.Acquire(1, "k", LockMode::kShared, &s);
  rig.Acquire(1, "k", LockMode::kExclusive, &x);
  EXPECT_EQ(x, Code::kOk) << "sole holder may upgrade S -> X";
  // A second shared request must now wait.
  Code other;
  rig.Acquire(2, "k", LockMode::kShared, &other);
  EXPECT_EQ(other, Code::kInternal);
}

TEST(LockManager, ReentrantAcquireSucceeds) {
  LockRig rig;
  Code a, again;
  rig.Acquire(1, "k", LockMode::kExclusive, &a);
  rig.Acquire(1, "k", LockMode::kExclusive, &again);
  EXPECT_EQ(again, Code::kOk);
  // One release is enough in this model (no hold counting).
  rig.locks.Release(1, 0, "k");
  EXPECT_FALSE(rig.locks.IsLocked(0, "k"));
}

TEST(LockManager, WaiterTimesOut) {
  LockRig rig;
  Code a, b;
  rig.Acquire(1, "k", LockMode::kExclusive, &a);
  rig.Acquire(2, "k", LockMode::kExclusive, &b);
  rig.sim.RunFor(Millis(200));
  EXPECT_EQ(b, Code::kTimedOut);
  EXPECT_EQ(rig.locks.total_timeouts(), 1);
  // The holder is unaffected.
  EXPECT_TRUE(rig.locks.IsLocked(0, "k"));
}

TEST(LockManager, ReleaseAllFreesEveryRowAndCancelsWaits) {
  LockRig rig;
  Code a, b, w;
  rig.Acquire(1, "x", LockMode::kExclusive, &a);
  rig.Acquire(1, "y", LockMode::kShared, &b);
  rig.Acquire(7, "z", LockMode::kExclusive, &w);
  Code waiting;
  rig.Acquire(1, "z", LockMode::kExclusive, &waiting);  // queued behind 7
  rig.locks.ReleaseAll(1);
  EXPECT_FALSE(rig.locks.IsLocked(0, "x"));
  EXPECT_FALSE(rig.locks.IsLocked(0, "y"));
  // txn 1's queued wait on "z" is cancelled: releasing 7 must not grant it.
  rig.locks.Release(7, 0, "z");
  rig.sim.RunFor(Millis(300));
  EXPECT_EQ(waiting, Code::kInternal) << "cancelled waiter must never fire";
  EXPECT_FALSE(rig.locks.IsLocked(0, "z"));
}

TEST(LockManager, DistinctKeysAreIndependent) {
  LockRig rig;
  Code a, b;
  rig.Acquire(1, "k1", LockMode::kExclusive, &a);
  rig.Acquire(2, "k2", LockMode::kExclusive, &b);
  EXPECT_EQ(a, Code::kOk);
  EXPECT_EQ(b, Code::kOk);
}

TEST(LockManager, FifoOrderAmongWaiters) {
  LockRig rig;
  Code a, w1, w2;
  rig.Acquire(1, "k", LockMode::kExclusive, &a);
  rig.Acquire(2, "k", LockMode::kExclusive, &w1);
  rig.Acquire(3, "k", LockMode::kExclusive, &w2);
  rig.locks.Release(1, 0, "k");
  EXPECT_EQ(w1, Code::kOk);
  EXPECT_EQ(w2, Code::kInternal);
  rig.locks.Release(2, 0, "k");
  EXPECT_EQ(w2, Code::kOk);
}

}  // namespace
}  // namespace repro::ndb
