// Zone profiler tests: nesting/unwind, allocation-hook attribution
// (hand-counted allocations in synthetic zones), folded-stack golden
// output, registry bridging with detach-freeze, the scrape-path
// zero-allocation regression, and the determinism contract (a pinned
// chaos run is byte-identical with the profiler installed or not).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "chaos/harness.h"
#include "hopsfs_test_util.h"
#include "metrics/counters.h"
#include "prof/profiler.h"
#include "prof/report.h"
#include "telemetry/scraper.h"
#include "util/strings.h"
#include "util/time.h"

namespace repro {
namespace {

using prof::Profiler;
using prof::ProfilerOptions;
using prof::ProfZone;
using prof::ZoneStats;

// The default build is -O2, where GCC elides paired new/delete
// (allocation elision, [expr.new]/10). Escaping the pointer through an
// opaque sink forces the allocation to really happen so hand-counted
// expectations hold at any optimisation level.
void* g_escape_sink = nullptr;
__attribute__((noinline)) void Escape(void* p) {
  g_escape_sink = p;
  asm volatile("" ::: "memory");
}

// ---- zone nesting and unwind ----------------------------------------------

void LeafWork() { PROF_ZONE("leaf"); }

void MidWork(bool bail) {
  PROF_ZONE("mid");
  if (bail) return;  // early return must still charge "mid"
  LeafWork();
}

TEST(ProfZones, NestingBuildsPathTreeAndUnwindsOnEarlyReturn) {
  Profiler p;
  p.Install();
  {
    PROF_ZONE("outer");
    MidWork(false);
    MidWork(true);
  }
  LeafWork();  // same name, different path -> distinct node
  p.Uninstall();

  // Expected paths: outer; outer;mid; outer;mid;leaf; leaf.
  std::vector<std::string> paths;
  for (size_t i = 1; i < p.nodes().size(); ++i) {
    paths.push_back(p.PathOf(static_cast<int32_t>(i)));
  }
  ASSERT_EQ(paths.size(), 4u);
  EXPECT_EQ(paths[0], "outer");
  EXPECT_EQ(paths[1], "outer;mid");
  EXPECT_EQ(paths[2], "outer;mid;leaf");
  EXPECT_EQ(paths[3], "leaf");

  EXPECT_EQ(p.nodes()[1].total.calls, 1u);  // outer
  EXPECT_EQ(p.nodes()[2].total.calls, 2u);  // mid: once deep, once bailed
  EXPECT_EQ(p.nodes()[3].total.calls, 1u);  // leaf under mid
  EXPECT_EQ(p.nodes()[4].total.calls, 1u);  // top-level leaf

  // ByName aggregates the two "leaf" paths.
  for (const auto& [name, stats] : p.ByName()) {
    if (name == "leaf") {
      EXPECT_EQ(stats.calls, 2u);
    }
    if (name == "mid") {
      EXPECT_EQ(stats.calls, 2u);
    }
  }
}

TEST(ProfZones, ZonesAreFreeWhenNoProfilerInstalled) {
  ASSERT_EQ(Profiler::Current(), nullptr);
  LeafWork();  // must not crash or record anywhere
  Profiler p;
  p.Install();
  LeafWork();
  p.Uninstall();
  LeafWork();  // after uninstall: not recorded
  ASSERT_EQ(p.nodes().size(), 2u);
  EXPECT_EQ(p.nodes()[1].total.calls, 1u);
}

TEST(ProfZones, InstallIsExclusiveAndDestructorUninstalls) {
  auto a = std::make_unique<Profiler>();
  a->Install();
  EXPECT_TRUE(a->installed());
  Profiler b;
  b.Install();  // displaces a
  EXPECT_FALSE(a->installed());
  EXPECT_TRUE(b.installed());
  a.reset();  // destroying a non-current profiler must not uninstall b
  EXPECT_EQ(Profiler::Current(), &b);
}

// Regression: Uninstall() with zones still open used to leave each open
// ProfZone's cached profiler pointer live — the pending RAII exits then
// charged the uninstalled profiler and restored the thread-local cursor
// to node indices inside *its* tree, corrupting whatever profiler was
// installed next. Uninstall must drain (poison) the open scopes instead.
TEST(ProfZones, UninstallMidZoneDoesNotChargeOrCorruptSuccessor) {
  Profiler p;
  Profiler q;
  p.Install();
  {
    PROF_ZONE("outer");
    {
      PROF_ZONE("mid");
      q.Install();  // displaces p while two of p's zones are still open
      LeafWork();
    }  // mid's drained exit must neither charge p nor move q's cursor
    LeafWork();
  }
  q.Uninstall();

  // p recorded nothing after being displaced mid-zone.
  for (size_t i = 1; i < p.nodes().size(); ++i) {
    EXPECT_EQ(p.nodes()[i].total.calls, 0u)
        << "uninstalled profiler charged at " << p.PathOf(static_cast<int32_t>(i));
  }
  // q saw two root-level leaf calls; a corrupted cursor would have nested
  // the second one under a stale node index from p's tree.
  ASSERT_EQ(q.nodes().size(), 2u);
  EXPECT_EQ(q.PathOf(1), "leaf");
  EXPECT_EQ(q.nodes()[1].total.calls, 2u);
}

// Regression: destroying the installed profiler while a zone is open was
// a use-after-free — the zone's exit called into the freed profiler.
// Runs clean under ASan now that ~Profiler's Uninstall drains the scope.
TEST(ProfZones, DeleteMidZoneIsSafe) {
  auto* p = new Profiler();
  p->Install();
  {
    PROF_ZONE("doomed");
    delete p;  // uninstalls and drains the still-open scope
  }  // this exit must be a no-op, not a call into freed memory
  EXPECT_EQ(Profiler::Current(), nullptr);
}

// ---- allocation-hook attribution ------------------------------------------

TEST(ProfAllocs, HandCountedAllocationsChargeTheActiveZone) {
  Profiler p;
  p.Install();
  // Warm the tree so node creation is done before the measured pass.
  { PROF_ZONE("alloc_zone"); }
  { PROF_ZONE("quiet_zone"); }
  p.ResetStats();

  {
    PROF_ZONE("alloc_zone");
    char* a = new char[100];
    Escape(a);
    int* b = new int(7);
    Escape(b);
    delete[] a;
    delete b;
  }
  { PROF_ZONE("quiet_zone"); }
  p.Uninstall();

  ZoneStats alloc_zone, quiet_zone;
  for (const auto& [name, stats] : p.ByName()) {
    if (name == "alloc_zone") alloc_zone = stats;
    if (name == "quiet_zone") quiet_zone = stats;
  }
  EXPECT_EQ(alloc_zone.calls, 1u);
  EXPECT_EQ(alloc_zone.allocs, 2u);
  EXPECT_EQ(alloc_zone.alloc_bytes, 100u + sizeof(int));
  EXPECT_EQ(quiet_zone.allocs, 0u);
  EXPECT_EQ(quiet_zone.alloc_bytes, 0u);
}

TEST(ProfAllocs, TrackAllocationsOffLeavesHeapColumnsZero) {
  ProfilerOptions opts;
  opts.track_allocations = false;
  Profiler p(opts);
  p.Install();
  {
    PROF_ZONE("no_heap_tracking");
    char* a = new char[64];
    Escape(a);
    delete[] a;
  }
  p.Uninstall();
  EXPECT_EQ(p.nodes()[1].total.calls, 1u);
  EXPECT_EQ(p.nodes()[1].total.allocs, 0u);
}

// ---- folded-stack golden ---------------------------------------------------

TEST(ProfReport, FoldedStackGoldenOnHandBuiltAllocTree) {
  Profiler p;
  p.Install();
  // Warm paths a, a;b so the measured pass allocates only what we count.
  {
    PROF_ZONE("a");
    { PROF_ZONE("b"); }
  }
  p.ResetStats();
  {
    PROF_ZONE("a");
    char* own = new char[10];  // self of a: 1 alloc, 10 bytes
    Escape(own);
    {
      PROF_ZONE("b");
      char* inner = new char[20];  // b: 2 allocs, 50 bytes
      Escape(inner);
      char* inner2 = new char[30];
      Escape(inner2);
      delete[] inner;
      delete[] inner2;
    }
    delete[] own;
  }
  p.Uninstall();

  EXPECT_EQ(prof::FoldedStacks(p, prof::Metric::kAllocs), "a 1\na;b 2\n");
  EXPECT_EQ(prof::FoldedStacks(p, prof::Metric::kAllocBytes),
            "a 10\na;b 50\n");
  // Calls-free metrics skip zero-valued lines entirely.
  EXPECT_EQ(prof::FoldedStacks(p, prof::Metric::kSimDiskBytes), "");
}

// ---- registry bridging -----------------------------------------------------

double SampleValue(const metrics::Registry& reg, const std::string& name) {
  for (const auto& s : reg.Collect()) {
    if (s.name == name) return s.value;
  }
  return -1;
}

TEST(ProfReport, ZoneMetricsRegisterLiveAndFreezeOnDetach) {
  metrics::Registry reg;
  auto p = std::make_unique<Profiler>();
  prof::RegisterZoneMetrics(p.get(), &reg);
  p->Install();
  { PROF_ZONE("bridge_zone"); }
  { PROF_ZONE("bridge_zone"); }
  // Live: the callback reads the profiler's tree.
  EXPECT_EQ(SampleValue(reg, "prof.zone.calls{zone=bridge_zone}"), 2.0);
  { PROF_ZONE("bridge_zone"); }
  EXPECT_EQ(SampleValue(reg, "prof.zone.calls{zone=bridge_zone}"), 3.0);

  p->Uninstall();  // detach hook freezes the callbacks
  p.reset();       // registry must survive the profiler
  EXPECT_EQ(SampleValue(reg, "prof.zone.calls{zone=bridge_zone}"), 3.0);
}

// ---- scrape-path allocation regression (Registry::CollectInto) ------------

TEST(ProfRegression, SteadyStateScrapeAllocatesNothing) {
  metrics::Registry reg;
  reg.GetCounter("test.ops")->Add(3);
  reg.GetCounter("test.labelled", {{"az", "1"}, {"node", "2"}})->Add(1);
  reg.GetGauge("test.depth")->Set(4.5);
  reg.GetHistogram("test.lat", {0.01, 0.1, 1.0})->Observe(0.05);
  double polled = 7;
  reg.RegisterCallback("test.cb", {}, metrics::MetricKind::kGauge,
                       [&polled] { return polled; });

  telemetry::ScraperOptions opts;
  opts.ring_capacity = 4;
  telemetry::Scraper scraper(&reg, opts);
  // Warm-up: fill every ring to capacity and size the scratch buffer.
  for (int i = 0; i < 6; ++i) scraper.ScrapeOnce(i * kMillisecond);

  prof::SetAllocCounting(true);
  const prof::AllocTotals before = prof::TotalAllocs();
  for (int i = 6; i < 12; ++i) scraper.ScrapeOnce(i * kMillisecond);
  const prof::AllocTotals after = prof::TotalAllocs();
  prof::SetAllocCounting(false);

  EXPECT_EQ(after.count - before.count, 0u)
      << "scrape path allocated " << (after.count - before.count)
      << " times over 6 steady-state scrapes";

  // The reuse must not change what a scrape observes.
  const telemetry::RingSeries* ops = scraper.Find("test.ops");
  ASSERT_NE(ops, nullptr);
  EXPECT_EQ(ops->latest().v, 3.0);
  EXPECT_EQ(scraper.KindOf("test.lat.count"), metrics::MetricKind::kCounter);
  const telemetry::RingSeries* cb = scraper.Find("test.cb");
  ASSERT_NE(cb, nullptr);
  EXPECT_EQ(cb->latest().v, 7.0);
}

TEST(ProfRegression, CollectStaysNameSortedAfterCollectIntoRewrite) {
  metrics::Registry reg;
  reg.GetGauge("zz.last")->Set(1);
  reg.GetCounter("aa.first")->Add(1);
  reg.GetHistogram("mm.mid", {1.0})->Observe(0.5);
  const auto samples = reg.Collect();
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LT(samples[i - 1].name, samples[i].name);
  }
}

// ---- chrome ring -----------------------------------------------------------

TEST(ProfReport, ChromeRingRecordsExitsAndWrapsOldestFirst) {
  ProfilerOptions opts;
  opts.chrome_ring_capacity = 2;
  Profiler p(opts);
  int64_t fake_now = 0;
  p.SetSimTimeSource([&fake_now] { return fake_now; });
  p.Install();
  fake_now = 1000;
  { PROF_ZONE("ring_a"); }
  fake_now = 2000;
  { PROF_ZONE("ring_b"); }
  fake_now = 3000;
  { PROF_ZONE("ring_c"); }  // evicts ring_a
  p.Uninstall();

  ASSERT_EQ(p.chrome_ring().size(), 2u);
  EXPECT_EQ(p.chrome_dropped(), 1u);
  const std::string events = prof::ZoneChromeEvents(p);
  // Oldest-first after wrap: ring_b before ring_c; ring_a evicted.
  const size_t pos_b = events.find("\"ring_b\"");
  const size_t pos_c = events.find("\"ring_c\"");
  EXPECT_EQ(events.find("\"ring_a\""), std::string::npos);
  ASSERT_NE(pos_b, std::string::npos);
  ASSERT_NE(pos_c, std::string::npos);
  EXPECT_LT(pos_b, pos_c);
  EXPECT_NE(events.find("\"ts\":2.000"), std::string::npos);  // sim µs
}

// ---- allocation budgets on the flattened hot path --------------------------

// Pins the protocol-flattening work: steady-state NN dispatch runs on the
// per-op arena + inline callables (≤ 5 allocations per op, down from
// 10.6 at the seed), and a TC key-op costs at most the one wire-key
// string it forwards. A regression that reintroduces per-op std::string
// or std::function churn trips these before it reaches the bench gate.
TEST(ProfBudgets, FlattenedDispatchAndTcKeyopStayWithinBudget) {
  hopsfs::testing::TestFs fs;
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(fs.Create(StrFormat("/d/f%d", i), 1024).ok());
  }

  Profiler p;
  p.Install();
  // Warm-up inside the install window: first touches build the zone tree
  // and fill the NN path cache; the measured window is steady state.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(fs.Stat(StrFormat("/d/f%d", i)).ok());
  }
  p.ResetStats();
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(fs.Stat(StrFormat("/d/f%d", i)).ok());
    }
  }
  p.Uninstall();

  double dispatch_per_call = -1.0;
  double keyop_per_call = -1.0;
  for (const auto& [name, stats] : p.ByName()) {
    if (stats.calls == 0) continue;
    const double per_call =
        static_cast<double>(stats.allocs) / static_cast<double>(stats.calls);
    if (name == "nn.op.dispatch") dispatch_per_call = per_call;
    if (name == "ndb.tc.keyop") keyop_per_call = per_call;
  }
  ASSERT_GE(dispatch_per_call, 0.0) << "nn.op.dispatch zone never ran";
  ASSERT_GE(keyop_per_call, 0.0) << "ndb.tc.keyop zone never ran";
  EXPECT_LE(dispatch_per_call, 5.0);
  EXPECT_LE(keyop_per_call, 1.1);
}

// ---- determinism: profiler on/off byte-identity ----------------------------

chaos::ChaosOptions SmallChaosOptions() {
  chaos::ChaosOptions opts;
  opts.seed = 42;
  opts.workload_clients = 6;
  opts.warmup = 1 * kSecond;
  opts.fault_window = 2 * kSecond;
  opts.settle = 2 * kSecond;
  opts.client_rpc_timeout = 250 * kMillisecond;
  opts.client_op_deadline = 1 * kSecond;
  return opts;
}

TEST(ProfDeterminism, ChaosRunIsByteIdenticalWithProfilerOnOrOff) {
  chaos::FaultSchedule schedule;
  schedule.Add({600 * kMillisecond, chaos::FaultType::kCrashNdbNode, 1});
  schedule.Add({Millis(1200), chaos::FaultType::kRestartNdbNode, 1});

  const chaos::ChaosOptions opts = SmallChaosOptions();

  ProfilerOptions popts;
  popts.chrome_ring_capacity = 1024;
  Profiler profiler(popts);
  profiler.Install();
  const chaos::ChaosReport run_on = chaos::RunChaosSchedule(opts, schedule);
  profiler.Uninstall();

  const chaos::ChaosReport run_off = chaos::RunChaosSchedule(opts, schedule);

  // The profiler observes host cost; it must not perturb the sim: full
  // event trace and workload outcome byte-identical, while the profiled
  // run actually recorded the protocol zones.
  EXPECT_EQ(run_on.TraceString(), run_off.TraceString());
  EXPECT_EQ(run_on.completed, run_off.completed);
  EXPECT_EQ(run_on.failed, run_off.failed);
  EXPECT_EQ(run_on.acked_writes, run_off.acked_writes);

  bool saw_dispatch = false, saw_commit = false, saw_recovery = false;
  for (const auto& [name, stats] : profiler.ByName()) {
    if (name == "nn.op.dispatch" && stats.calls > 0) saw_dispatch = true;
    if (name == "ndb.tc.commit" && stats.calls > 0) saw_commit = true;
    if (name == "ndb.recovery.restart" && stats.calls > 0) {
      saw_recovery = true;
    }
  }
  EXPECT_TRUE(saw_dispatch);
  EXPECT_TRUE(saw_commit);
  EXPECT_TRUE(saw_recovery);
}

}  // namespace
}  // namespace repro
