// Protocol-fidelity tests: the message complexity of the linear 2PC
// commit protocol must match Figure 2 of the paper exactly.
//
// For a transaction writing W rows with replication factor R:
//   * Prepare visits every replica of every row:            W * R
//   * Commit traverses each chain in reverse:               W * R
//   * Complete reaches every replica:                       W * R
// and with Read Backup the client ack is delayed until after the last
// Completed message (ack #14 instead of #10 in Fig. 2's numbering).
#include <gtest/gtest.h>

#include "ndb_test_util.h"

namespace repro::ndb {
namespace {

using testing::TestCluster;

NdbDatanode::ProtocolStats TotalStats(TestCluster& tc) {
  NdbDatanode::ProtocolStats total;
  for (int n = 0; n < tc.cluster->num_datanodes(); ++n) {
    const auto& s = tc.cluster->datanode(n).protocol_stats();
    total.prepares += s.prepares;
    total.commit_hops += s.commit_hops;
    total.completes += s.completes;
    total.committed_reads += s.committed_reads;
    total.locked_reads += s.locked_reads;
    total.scans += s.scans;
  }
  return total;
}

TEST(NdbProtocolFidelity, TwoRowTransactionMessageCounts) {
  // Fig. 2: a transaction writing two rows (r1, r2) to two different
  // partitions with R = 3 replicas each.
  TestCluster tc(6, 3);
  tc.cluster->ResetStats();

  const TxnId txn = tc.api->Begin(tc.inode_table, "100/r1");
  bool done = false;
  tc.api->Write(txn, tc.inode_table, "100/r1", "v1", [&](Code c1) {
    ASSERT_EQ(c1, Code::kOk);
    tc.api->Write(txn, tc.inode_table, "200/r2", "v2", [&](Code c2) {
      ASSERT_EQ(c2, Code::kOk);
      tc.api->Commit(txn, [&](Code c3) {
        ASSERT_EQ(c3, Code::kOk);
        done = true;
      });
    });
  });
  tc.RunUntil(done);
  tc.sim->RunFor(Seconds(1));  // drain the Complete phase

  const auto total = TotalStats(tc);
  EXPECT_EQ(total.prepares, 2 * 3) << "Prepare must visit every replica";
  EXPECT_EQ(total.commit_hops, 2 * 3) << "Commit chain must be linear";
  EXPECT_EQ(total.completes, 2 * 3) << "Complete must reach every replica";
  EXPECT_EQ(total.committed_reads, 0);
  EXPECT_EQ(total.locked_reads, 0);
}

TEST(NdbProtocolFidelity, ReplicationTwoShortensChains) {
  TestCluster tc(6, 2);
  tc.cluster->ResetStats();
  ASSERT_EQ(tc.InsertCommit(tc.inode_table, "7/row", "v"), Code::kOk);
  tc.sim->RunFor(Seconds(1));
  const auto total = TotalStats(tc);
  EXPECT_EQ(total.prepares, 2);
  EXPECT_EQ(total.commit_hops, 2);
  EXPECT_EQ(total.completes, 2);
}

TEST(NdbProtocolFidelity, CommittedReadIsSingleReplicaVisit) {
  TestCluster tc;
  ASSERT_EQ(tc.InsertCommit(tc.inode_table, "9/row", "v"), Code::kOk);
  tc.sim->RunFor(Seconds(1));
  tc.cluster->ResetStats();
  auto [code, value] = tc.ReadCommitted(tc.inode_table, "9/row");
  ASSERT_TRUE(value.has_value());
  const auto total = TotalStats(tc);
  EXPECT_EQ(total.committed_reads, 1)
      << "a committed read must touch exactly one replica";
  EXPECT_EQ(total.prepares + total.commit_hops + total.completes, 0);
}

TEST(NdbProtocolFidelity, ReadBackupDelaysAckUntilCompletePhase) {
  // With Read Backup the ack (message 14) follows every Completed; in
  // classic mode the ack (message 10) only follows the Committed from
  // the primary. Observable difference: at client-ack time, all backups
  // are already durable under Read Backup.
  for (bool read_backup : {true, false}) {
    TestCluster tc(6, 3, /*az_aware=*/read_backup, read_backup);
    const TxnId txn = tc.api->Begin(tc.inode_table, "55/x");
    bool acked = false;
    int replicas_current_at_ack = -1;
    tc.api->Insert(txn, tc.inode_table, "55/x", "val", [&](Code c) {
      ASSERT_EQ(c, Code::kOk);
      tc.api->Commit(txn, [&](Code c2) {
        ASSERT_EQ(c2, Code::kOk);
        acked = true;
        // Snapshot replica state at the exact ack instant.
        auto& layout = tc.cluster->layout();
        const PartitionId p = layout.PartitionOf(tc.inode_table, "55/x");
        replicas_current_at_ack = 0;
        for (NodeId n : layout.ReplicaChain(p)) {
          auto v =
              tc.cluster->datanode(n).store().Read(tc.inode_table, "55/x", 0);
          if (v.has_value() && *v == "val") ++replicas_current_at_ack;
        }
      });
    });
    tc.RunUntil(acked);
    if (read_backup) {
      EXPECT_EQ(replicas_current_at_ack, 3)
          << "Read Backup ack must imply every replica is current";
    } else {
      // Classic: only the primary is guaranteed at ack time.
      EXPECT_GE(replicas_current_at_ack, 1);
      EXPECT_LT(replicas_current_at_ack, 3)
          << "classic ack should precede the Complete phase (else the "
             "Read Backup option would be pointless)";
    }
  }
}

TEST(NdbProtocolFidelity, LockedReadGoesToPrimaryOnly) {
  TestCluster tc;
  ASSERT_EQ(tc.InsertCommit(tc.inode_table, "77/row", "v"), Code::kOk);
  tc.sim->RunFor(Seconds(1));
  tc.cluster->ResetStats();
  const TxnId txn = tc.api->Begin(tc.inode_table, "77/row");
  bool done = false;
  tc.api->Read(txn, tc.inode_table, "77/row", LockMode::kShared,
               [&](Code c, auto) {
                 ASSERT_EQ(c, Code::kOk);
                 tc.api->Commit(txn, [&](Code) { done = true; });
               });
  tc.RunUntil(done);
  const auto& layout = tc.cluster->layout();
  const PartitionId p = layout.PartitionOf(tc.inode_table, "77/row");
  const NodeId primary = tc.cluster->layout().PrimaryOf(p);
  EXPECT_EQ(tc.cluster->datanode(primary).protocol_stats().locked_reads, 1);
  EXPECT_EQ(TotalStats(tc).locked_reads, 1);
}

}  // namespace
}  // namespace repro::ndb
