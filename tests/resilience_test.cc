// Tests for the overload-protection primitives (src/resilience/) and
// their end-to-end integration: retry budget accounting, circuit-breaker
// state machine (incl. the half-open probe slot), AIMD admission limiter,
// per-hop deadline arithmetic, and deployment-level behaviour — sheds
// under overload, zero successes delivered past a deadline, and the chaos
// surge episode's invariants.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "chaos/harness.h"
#include "hopsfs/deployment.h"
#include "resilience/admission.h"
#include "resilience/circuit_breaker.h"
#include "resilience/deadline.h"
#include "resilience/latency_tracker.h"
#include "resilience/retry_budget.h"
#include "workload/driver.h"
#include "workload/fs_interface.h"
#include "workload/spotify.h"

namespace repro::resilience {
namespace {

// ---------------------------------------------------------------- budget

TEST(RetryBudget, AccruesFractionPerRequestAndCaps) {
  RetryBudgetConfig cfg;
  cfg.token_ratio = 0.25;  // exactly representable: 4 requests = 1 token
  cfg.max_tokens = 2.0;
  cfg.initial_tokens = 0.0;
  RetryBudget budget(cfg);
  EXPECT_FALSE(budget.Withdraw()) << "empty bucket must deny";
  EXPECT_EQ(budget.denied(), 1);

  for (int i = 0; i < 4; ++i) budget.OnRequest();
  EXPECT_DOUBLE_EQ(budget.tokens(), 1.0);
  EXPECT_TRUE(budget.Withdraw());
  EXPECT_EQ(budget.withdrawn(), 1);
  EXPECT_FALSE(budget.Withdraw()) << "only one token was earned";

  for (int i = 0; i < 1000; ++i) budget.OnRequest();
  EXPECT_DOUBLE_EQ(budget.tokens(), cfg.max_tokens) << "bucket must cap";
}

TEST(RetryBudget, InitialFillRidesOutEarlyBlip) {
  RetryBudgetConfig cfg;
  cfg.initial_tokens = 3.0;
  RetryBudget budget(cfg);
  EXPECT_TRUE(budget.Withdraw());
  EXPECT_TRUE(budget.Withdraw());
  EXPECT_TRUE(budget.Withdraw());
  EXPECT_FALSE(budget.Withdraw());
}

// --------------------------------------------------------------- breaker

TEST(CircuitBreaker, TripsOpenAfterConsecutiveFailures) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 3;
  cfg.open_interval = Millis(100);
  CircuitBreaker b(cfg);

  EXPECT_TRUE(b.CanAttempt(0));
  b.OnFailure(0);
  b.OnFailure(0);
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed)
      << "below threshold stays closed";
  b.OnFailure(0);
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(b.CanAttempt(Millis(50))) << "open inside the interval";
  EXPECT_TRUE(b.CanAttempt(Millis(100))) << "probe allowed after interval";
}

TEST(CircuitBreaker, SuccessResetsConsecutiveFailureCount) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 3;
  CircuitBreaker b(cfg);
  b.OnFailure(0);
  b.OnFailure(0);
  b.OnSuccess();
  b.OnFailure(0);
  b.OnFailure(0);
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed)
      << "threshold counts *consecutive* failures";
}

TEST(CircuitBreaker, HalfOpenProbeSlotSemantics) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.open_interval = Millis(100);
  CircuitBreaker b(cfg);
  b.OnFailure(0);
  ASSERT_EQ(b.state(), CircuitBreaker::State::kOpen);

  // Filtering candidates must not consume the probe slot.
  EXPECT_TRUE(b.CanAttempt(Millis(150)));
  EXPECT_TRUE(b.CanAttempt(Millis(150)));
  ASSERT_EQ(b.state(), CircuitBreaker::State::kOpen);

  // Committing does: exactly one probe is admitted.
  b.OnPicked(Millis(150));
  EXPECT_EQ(b.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(b.CanAttempt(Millis(151))) << "probe already in flight";

  // Probe success closes the breaker.
  b.OnSuccess();
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(b.CanAttempt(Millis(152)));
}

TEST(CircuitBreaker, FailedProbeReopensWithIntervalRearmed) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.open_interval = Millis(100);
  CircuitBreaker b(cfg);
  b.OnFailure(0);
  b.OnPicked(Millis(100));
  ASSERT_EQ(b.state(), CircuitBreaker::State::kHalfOpen);
  b.OnFailure(Millis(120));
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(b.CanAttempt(Millis(219))) << "interval restarts at re-open";
  EXPECT_TRUE(b.CanAttempt(Millis(220)));
  EXPECT_GE(b.transitions(), 3) << "closed->open->half-open->open";
}

// -------------------------------------------------------------- admission

TEST(AimdLimiter, ShedsAtTheLimitAndReleasesSlots) {
  AimdLimiterConfig cfg;
  cfg.min_limit = 1;
  cfg.initial_limit = 2;
  cfg.max_limit = 4;
  AimdLimiter limiter(cfg);
  EXPECT_TRUE(limiter.TryAcquire());
  EXPECT_TRUE(limiter.TryAcquire());
  EXPECT_FALSE(limiter.TryAcquire()) << "third op exceeds limit 2";
  EXPECT_EQ(limiter.shed(), 1);
  limiter.Release(/*latency=*/0, /*now=*/0);
  EXPECT_TRUE(limiter.TryAcquire()) << "released slot is reusable";
}

TEST(AimdLimiter, FastCompletionsGrowAdditively) {
  AimdLimiterConfig cfg;
  cfg.min_limit = 1;
  cfg.initial_limit = 2;
  cfg.max_limit = 8;
  cfg.latency_target = Millis(10);
  cfg.increase_per_ok = 0.5;
  AimdLimiter limiter(cfg);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(limiter.TryAcquire());
    limiter.Release(Millis(1), /*now=*/i);
  }
  EXPECT_EQ(limiter.limit(), 4) << "2 + 4 * 0.5";
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(limiter.TryAcquire());
    limiter.Release(Millis(1), /*now=*/i);
  }
  EXPECT_EQ(limiter.limit(), cfg.max_limit) << "growth is bounded";
}

TEST(AimdLimiter, SlowCompletionsShrinkMultiplicativelyWithCooldown) {
  AimdLimiterConfig cfg;
  cfg.min_limit = 2;
  cfg.initial_limit = 100;
  cfg.max_limit = 200;
  cfg.latency_target = Millis(10);
  cfg.backoff_ratio = 0.5;
  cfg.decrease_cooldown = Millis(100);
  AimdLimiter limiter(cfg);

  ASSERT_TRUE(limiter.TryAcquire());
  limiter.Release(Millis(50), /*now=*/0);
  EXPECT_EQ(limiter.limit(), 50);

  // Inside the cooldown a second slow completion must not decrease again.
  ASSERT_TRUE(limiter.TryAcquire());
  limiter.Release(Millis(50), Millis(50));
  EXPECT_EQ(limiter.limit(), 50);

  // Past the cooldown it does, and the floor holds.
  for (Nanos t = Millis(100); t < Millis(2000); t += Millis(100)) {
    ASSERT_TRUE(limiter.TryAcquire());
    limiter.Release(Millis(50), t);
  }
  EXPECT_EQ(limiter.limit(), cfg.min_limit);
}

TEST(AimdLimiter, DisabledControllerKeepsStaticLimit) {
  AimdLimiterConfig cfg;
  cfg.min_limit = 1;
  cfg.initial_limit = 3;
  cfg.max_limit = 10;
  cfg.latency_target = 0;  // controller off: pure static limit
  AimdLimiter limiter(cfg);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(limiter.TryAcquire());
    limiter.Release(kSecond, /*now=*/i);
  }
  EXPECT_EQ(limiter.limit(), 3);
}

// --------------------------------------------------------------- deadline

TEST(Deadline, RemainingAndClampArithmetic) {
  EXPECT_FALSE(HasDeadline(kNoDeadline));
  EXPECT_FALSE(DeadlineExpired(kNoDeadline, kSecond));
  EXPECT_TRUE(DeadlineExpired(Millis(10), Millis(10)))
      << "deadline instant counts as expired";
  EXPECT_EQ(DeadlineRemaining(kNoDeadline, 123), INT64_MAX);
  EXPECT_EQ(DeadlineRemaining(Millis(10), Millis(4)), Millis(6));
  EXPECT_EQ(DeadlineRemaining(Millis(10), Millis(40)), 0);
  EXPECT_EQ(ClampToDeadline(kSecond, Millis(10), Millis(4)), Millis(6));
  EXPECT_EQ(ClampToDeadline(Millis(2), Millis(10), Millis(4)), Millis(2));
  EXPECT_EQ(ClampToDeadline(kSecond, kNoDeadline, 0), kSecond);
}

TEST(Deadline, RetryBackoffCapsAndClamps) {
  const Nanos base = Millis(10);
  // Exponent grows with attempt then saturates at exp_cap.
  EXPECT_EQ(RetryBackoff(base, 1, 4, 0, 0, kNoDeadline, 0), base);
  EXPECT_EQ(RetryBackoff(base, 3, 4, 0, 0, kNoDeadline, 0), 4 * base);
  EXPECT_EQ(RetryBackoff(base, 10, 4, 0, 0, kNoDeadline, 0), 16 * base);
  EXPECT_EQ(RetryBackoff(base, 20, 6, 0, 0, kNoDeadline, 0), 64 * base);
  // Absolute ceiling.
  EXPECT_EQ(RetryBackoff(base, 10, 4, Millis(25), 0, kNoDeadline, 0),
            Millis(25));
  // Jitter adds before the caps apply.
  EXPECT_EQ(RetryBackoff(base, 1, 4, 0, Millis(3), kNoDeadline, 0),
            Millis(13));
  // Remaining deadline clamps everything; exhausted budget returns 0.
  EXPECT_EQ(RetryBackoff(base, 10, 4, 0, 0, Millis(100), Millis(95)),
            Millis(5));
  EXPECT_EQ(RetryBackoff(base, 1, 4, 0, 0, Millis(100), Millis(100)), 0);
}

TEST(LatencyTracker, FallbackUntilWarmThenTracksWindow) {
  LatencyTracker tracker(/*window=*/8);
  EXPECT_EQ(tracker.Percentile(0.5, Millis(7), /*min_samples=*/4), Millis(7));
  for (int i = 1; i <= 4; ++i) tracker.Record(Millis(i));
  EXPECT_EQ(tracker.Percentile(0.99, 0, 4), Millis(4));
  // The ring evicts old samples: flood with large values.
  for (int i = 0; i < 8; ++i) tracker.Record(Millis(100));
  EXPECT_EQ(tracker.Percentile(0.5, 0, 4), Millis(100));
}

// Nearest-rank oracle pin: with a full window of n=100 distinct samples,
// p95 must be the 95th smallest (rank ceil(0.95*100) = 95). The old
// idx = q*n truncation indexed sorted[95] — rank 96, one rank high —
// whenever q*n was integral, which is exactly the full-window hedge
// case.
TEST(LatencyTracker, NearestRankMatchesSortedOracle) {
  LatencyTracker tracker(/*window=*/100);
  for (int i = 100; i >= 1; --i) tracker.Record(Millis(i));
  EXPECT_EQ(tracker.Percentile(0.95, 0, 1), Millis(95));
  EXPECT_EQ(tracker.Percentile(0.50, 0, 1), Millis(50));
  EXPECT_EQ(tracker.Percentile(0.99, 0, 1), Millis(99));
  EXPECT_EQ(tracker.Percentile(1.0, 0, 1), Millis(100));
  EXPECT_EQ(tracker.Percentile(0.0, 0, 1), Millis(1));
}

// window == 0 disables the tracker: Record must not crash on the ring
// modulo, and Percentile must keep returning the fallback.
TEST(LatencyTracker, ZeroWindowDropsSamplesAndFallsBack) {
  LatencyTracker tracker(/*window=*/0);
  tracker.Record(Millis(5));
  EXPECT_EQ(tracker.size(), 0u);
  EXPECT_EQ(tracker.Percentile(0.95, Millis(9), /*min_samples=*/0),
            Millis(9));
}

// ------------------------------------------------------------ integration

// Overload a tiny deployment through the open-loop driver: admission must
// shed (OVERLOADED reaches the driver), tight deadlines must produce
// DEADLINE_EXCEEDED failures, and no client may ever deliver a success
// past its deadline.
TEST(ResilienceIntegration, OverloadShedsAndNeverCompletesPastDeadline) {
  Simulation sim(7);
  auto dopts = hopsfs::DeploymentOptions::FromPaperSetup(
      hopsfs::PaperSetup::kHopsFsCl_3_3, /*num_namenodes=*/2);
  // Force admission to bite at tiny concurrency and deadlines to bite at
  // millisecond scale.
  dopts.nn.admission_min_limit = 2;
  dopts.nn.admission_initial_limit = 2;
  dopts.nn.admission_max_limit = 2;
  dopts.client.op_deadline = 40 * kMillisecond;
  dopts.client.retry_budget.initial_tokens = 2.0;
  hopsfs::Deployment dep(sim, dopts);
  dep.Start();

  workload::NamespaceConfig ns{/*users=*/8, /*dirs_per_user=*/2,
                               /*files_per_dir=*/2, /*zipf_theta=*/0.75};
  workload::SpotifyWorkload wl(ns, 7);
  dep.BootstrapNamespace(wl.all_dirs(), wl.all_files());
  std::vector<std::unique_ptr<workload::HopsFsTarget>> targets;
  std::vector<workload::FsTarget*> ptrs;
  for (int i = 0; i < 8; ++i) {
    targets.push_back(
        std::make_unique<workload::HopsFsTarget>(dep.AddClient()));
    ptrs.push_back(targets.back().get());
  }
  sim.RunFor(1 * kSecond);

  workload::OpenLoopDriver driver(
      sim, ptrs, [&wl](Rng& rng, std::vector<std::string>& owned) {
        return wl.Next(rng, owned);
      });
  auto res = driver.Run(/*ops_per_sec=*/4000, /*warmup=*/500 * kMillisecond,
                        /*measure=*/2 * kSecond);

  EXPECT_GT(res.issued, 0);
  EXPECT_GT(res.completed, 0) << "overload must not starve everyone";
  EXPECT_GT(res.sheds(), 0) << "a 2-slot limit at 4k ops/s must shed";
  for (const auto& client : dep.clients()) {
    EXPECT_EQ(client->post_deadline_successes(), 0)
        << "no success may be delivered after its deadline passed";
  }
  const auto snapshot = dep.metrics().Snapshot();
  int64_t nn_sheds = 0;
  for (const auto& [name, value] : snapshot) {
    if (name == "hopsfs.nn.admission_shed") nn_sheds = value;
  }
  EXPECT_GT(nn_sheds, 0) << "shed counter must be wired through metrics";
  // The legacy name keeps resolving to the same counter (rename shim).
  EXPECT_EQ(dep.metrics().GetCounter("nn.admission.shed")->value(), nn_sheds);
}

// Chaos episode with an open-loop surge: the harness must emit the
// surge-goodput and deadlines invariants and both must hold on a healthy
// build.
TEST(ResilienceIntegration, ChaosSurgeEpisodeInvariantsHold) {
  chaos::ChaosOptions opts;
  opts.seed = 321;
  opts.num_namenodes = 3;
  opts.block_datanodes = 0;
  opts.workload_clients = 4;
  opts.ns = workload::NamespaceConfig{/*users=*/16, /*dirs_per_user=*/2,
                                      /*files_per_dir=*/2,
                                      /*zipf_theta=*/0.75};
  opts.warmup = 1 * kSecond;
  opts.fault_window = 3 * kSecond;
  opts.settle = 2 * kSecond;

  chaos::FaultSchedule schedule;
  schedule.Add({opts.warmup + 200 * kMillisecond,
                chaos::FaultType::kOpenLoopSurge, 3000, -1, 1.0});
  schedule.Add({opts.warmup + 2500 * kMillisecond,
                chaos::FaultType::kOpenLoopSurgeStop, -1, -1, 1.0});

  chaos::ChaosReport report = chaos::RunChaosSchedule(opts, schedule);
  bool saw_deadlines = false;
  bool saw_surge = false;
  for (const auto& inv : report.invariants) {
    if (inv.name == "deadlines") saw_deadlines = true;
    if (inv.name == "surge-goodput") saw_surge = true;
    EXPECT_TRUE(inv.ok) << inv.name << ": " << inv.detail;
  }
  EXPECT_TRUE(saw_deadlines);
  EXPECT_TRUE(saw_surge);
}

}  // namespace
}  // namespace repro::resilience
