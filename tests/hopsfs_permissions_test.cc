// Permission enforcement tests (HDFS-style owner/other access checks).
#include <gtest/gtest.h>

#include "hopsfs_test_util.h"

namespace repro::hopsfs {
namespace {

using testing::TestFs;

struct PermFs : TestFs {
  PermFs() {
    // Superuser scaffolding: a world-writable playground plus a private
    // home for alice.
    EXPECT_TRUE(Mkdir("/pub").ok());
    EXPECT_TRUE(Chmod("/pub", 0777).ok());
    client->set_user("alice");
    EXPECT_TRUE(Mkdir("/pub/alice").ok());
    EXPECT_TRUE(Chmod("/pub/alice", 0700).ok());
    EXPECT_TRUE(Create("/pub/alice/secret", 0).ok());
    EXPECT_TRUE(Chmod("/pub/alice/secret", 0600).ok());
    EXPECT_TRUE(Create("/pub/shared", 0).ok());
    EXPECT_TRUE(Chmod("/pub/shared", 0644).ok());
  }

  void As(const std::string& user) { client->set_user(user); }
};

TEST(HopsFsPermissions, OwnerReadsOwnPrivateFile) {
  PermFs fs;
  fs.As("alice");
  EXPECT_TRUE(fs.Stat("/pub/alice/secret").ok());
  EXPECT_TRUE(fs.ReadFile("/pub/alice/secret").ok());
}

TEST(HopsFsPermissions, StrangerDeniedOnPrivateFile) {
  PermFs fs;
  fs.As("bob");
  EXPECT_EQ(fs.Stat("/pub/alice/secret").code(), Code::kPermissionDenied);
  EXPECT_EQ(fs.ReadFile("/pub/alice/secret").code(),
            Code::kPermissionDenied);
}

TEST(HopsFsPermissions, WorldReadableFileOpenToAll) {
  PermFs fs;
  fs.As("bob");
  EXPECT_TRUE(fs.Stat("/pub/shared").ok());
  EXPECT_TRUE(fs.ReadFile("/pub/shared").ok());
}

TEST(HopsFsPermissions, CreateRequiresParentWriteAccess) {
  PermFs fs;
  fs.As("bob");
  // /pub is 0777: anyone may create there.
  EXPECT_TRUE(fs.Create("/pub/bobfile").ok());
  // /pub/alice is 0700: bob may not.
  EXPECT_EQ(fs.Create("/pub/alice/intruder").code(),
            Code::kPermissionDenied);
  EXPECT_EQ(fs.Mkdir("/pub/alice/dir").code(), Code::kPermissionDenied);
}

TEST(HopsFsPermissions, DeleteRequiresParentWriteAccess) {
  PermFs fs;
  fs.As("bob");
  EXPECT_EQ(fs.Delete("/pub/alice/secret").code(),
            Code::kPermissionDenied);
  fs.As("alice");
  EXPECT_TRUE(fs.Delete("/pub/alice/secret").ok());
}

TEST(HopsFsPermissions, ChmodRequiresOwnership) {
  PermFs fs;
  fs.As("bob");
  EXPECT_EQ(fs.Chmod("/pub/shared", 0777).code(), Code::kPermissionDenied);
  fs.As("alice");
  EXPECT_TRUE(fs.Chmod("/pub/shared", 0664).ok());
}

TEST(HopsFsPermissions, SuperuserBypassesEverything) {
  PermFs fs;
  fs.As("");  // superuser
  EXPECT_TRUE(fs.Stat("/pub/alice/secret").ok());
  EXPECT_TRUE(fs.Create("/pub/alice/admin-file").ok());
  EXPECT_TRUE(fs.Chmod("/pub/alice/secret", 0644).ok());
}

TEST(HopsFsPermissions, RenameNeedsWriteOnBothParents) {
  PermFs fs;
  fs.As("bob");
  // Source parent /pub is writable, destination parent /pub/alice is not.
  ASSERT_TRUE(fs.Create("/pub/movable").ok());
  EXPECT_EQ(fs.Rename("/pub/movable", "/pub/alice/stolen").code(),
            Code::kPermissionDenied);
  // Both ends writable: fine.
  EXPECT_TRUE(fs.Rename("/pub/movable", "/pub/moved").ok());
}

TEST(HopsFsPermissions, CreatedFilesCarryTheCreatorAsOwner) {
  PermFs fs;
  fs.As("carol");
  ASSERT_TRUE(fs.Create("/pub/carols").ok());
  fs.As("");  // inspect as superuser
  const auto r = fs.StatFull("/pub/carols");
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.inode.owner, "carol");
}

TEST(HopsFsPermissions, DeniedOpsDoNotRetry) {
  // PERMISSION_DENIED is terminal: it must come back quickly, not after
  // exhausting the transaction retry budget.
  PermFs fs;
  fs.As("bob");
  const Nanos before = fs.sim->now();
  EXPECT_EQ(fs.Stat("/pub/alice/secret").code(), Code::kPermissionDenied);
  EXPECT_LT(fs.sim->now() - before, Millis(100));
}

}  // namespace
}  // namespace repro::hopsfs
