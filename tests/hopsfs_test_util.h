// Fixture helpers for HopsFS-layer tests: a small HopsFS-CL deployment
// plus synchronous wrappers that drive the simulation.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "hopsfs/deployment.h"

namespace repro::hopsfs::testing {

struct TestFs {
  explicit TestFs(PaperSetup setup = PaperSetup::kHopsFsCl_3_3,
                  int num_nns = 3, int block_dns = 0) {
    sim = std::make_unique<Simulation>(7);
    auto options = DeploymentOptions::FromPaperSetup(setup, num_nns);
    options.ndb_datanodes = 6;
    options.block_datanodes = block_dns;
    deployment = std::make_unique<Deployment>(*sim, options);
    deployment->topology().set_jitter_fraction(0);
    deployment->Start();
    // Let the leader election settle (first round ran at Start).
    sim->RunFor(Seconds(3));
    client = deployment->AddClient(0);
  }

  Status Run(std::function<void(HopsFsClient::StatusCb)> op,
             Nanos limit = 30 * kSecond) {
    Status out = Internal("never completed");
    bool done = false;
    op([&](Status s) {
      out = s;
      done = true;
    });
    const Nanos deadline = sim->now() + limit;
    while (!done && sim->now() < deadline) {
      sim->RunUntil(sim->now() + kMillisecond);
    }
    EXPECT_TRUE(done) << "fs operation hung";
    return out;
  }

  Status Mkdir(const std::string& p) {
    return Run([&](auto cb) { client->Mkdir(p, cb); });
  }
  Status Create(const std::string& p, int64_t size = 0) {
    return Run([&](auto cb) { client->Create(p, size, cb); });
  }
  Status Stat(const std::string& p) {
    return Run([&](auto cb) { client->Stat(p, cb); });
  }
  Status ReadFile(const std::string& p) {
    return Run([&](auto cb) { client->ReadFile(p, cb); });
  }
  Status Delete(const std::string& p) {
    return Run([&](auto cb) { client->Delete(p, cb); });
  }
  Status Rename(const std::string& a, const std::string& b) {
    return Run([&](auto cb) { client->Rename(a, b, cb); });
  }
  Status Chmod(const std::string& p, uint32_t perm) {
    return Run([&](auto cb) { client->Chmod(p, perm, cb); });
  }

  FsResult Submit(FsRequest req, Nanos limit = 30 * kSecond) {
    FsResult out;
    out.status = Internal("never completed");
    bool done = false;
    client->Submit(std::move(req), [&](FsResult r) {
      out = std::move(r);
      done = true;
    });
    const Nanos deadline = sim->now() + limit;
    while (!done && sim->now() < deadline) {
      sim->RunUntil(sim->now() + kMillisecond);
    }
    EXPECT_TRUE(done) << "fs operation hung";
    return out;
  }

  FsResult List(const std::string& p) {
    FsRequest r;
    r.op = FsOp::kListDir;
    r.path = p;
    return Submit(std::move(r));
  }
  FsResult Open(const std::string& p) {
    FsRequest r;
    r.op = FsOp::kOpenRead;
    r.path = p;
    return Submit(std::move(r));
  }
  FsResult StatFull(const std::string& p) {
    FsRequest r;
    r.op = FsOp::kStat;
    r.path = p;
    return Submit(std::move(r));
  }

  std::unique_ptr<Simulation> sim;
  std::unique_ptr<Deployment> deployment;
  HopsFsClient* client = nullptr;
};

}  // namespace repro::hopsfs::testing
