// Tests for the block storage layer: placement policies, pipeline
// replication, reads, deletion, and replacement choice.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "blocks/datanode.h"
#include "blocks/placement.h"
#include "util/strings.h"

namespace repro::blocks {
namespace {

struct BlockRig {
  explicit BlockRig(int dns_per_az = 3) {
    sim = std::make_unique<Simulation>(3);
    topology = std::make_unique<Topology>(3, AzLatencyTable::UsWest1());
    topology->set_jitter_fraction(0);
    network = std::make_unique<Network>(*sim, *topology);
    registry = std::make_unique<DnRegistry>(10 * kSecond);
    for (int az = 0; az < 3; ++az) {
      for (int i = 0; i < dns_per_az; ++i) {
        const DnId id = static_cast<DnId>(dns.size());
        const HostId host = topology->AddHost(az, StrFormat("dn%d", id));
        dns.push_back(std::make_unique<BlockDatanode>(*sim, *network, id,
                                                      host, az));
        registry->Register(dns.back().get());
        registry->MarkHeartbeat(id, 0);
      }
    }
    client_host = topology->AddHost(0, "client");
  }

  std::unique_ptr<Simulation> sim;
  std::unique_ptr<Topology> topology;
  std::unique_ptr<Network> network;
  std::unique_ptr<DnRegistry> registry;
  std::vector<std::unique_ptr<BlockDatanode>> dns;
  HostId client_host = 0;
};

TEST(Placement, AzAwareCoversEveryAz) {
  BlockRig rig;
  AzAwarePlacement policy(3);
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    auto targets = policy.ChooseTargets(3, trial % 3, *rig.registry, 0, rng);
    ASSERT_EQ(targets.size(), 3u);
    std::set<AzId> azs;
    std::set<DnId> distinct;
    for (DnId d : targets) {
      azs.insert(rig.registry->az_of(d));
      distinct.insert(d);
    }
    EXPECT_EQ(azs.size(), 3u) << "replicas must span all three AZs";
    EXPECT_EQ(distinct.size(), 3u) << "replicas must be distinct DNs";
    // First replica is writer-local (§IV-C / HDFS local-write rule).
    EXPECT_EQ(rig.registry->az_of(targets[0]), trial % 3);
  }
}

TEST(Placement, DefaultPlacementDistinctButNotAzGuaranteed) {
  BlockRig rig;
  DefaultPlacement policy;
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    auto targets = policy.ChooseTargets(3, 1, *rig.registry, 0, rng);
    ASSERT_EQ(targets.size(), 3u);
    std::set<DnId> distinct(targets.begin(), targets.end());
    EXPECT_EQ(distinct.size(), 3u);
  }
}

TEST(Placement, SkipsDeadDatanodes) {
  BlockRig rig;
  AzAwarePlacement policy(3);
  Rng rng(3);
  // Kill all of AZ 2's datanodes.
  for (auto& dn : rig.dns) {
    if (dn->az() == 2) dn->Crash();
  }
  auto targets = policy.ChooseTargets(3, 0, *rig.registry, 0, rng);
  ASSERT_EQ(targets.size(), 3u);
  for (DnId d : targets) EXPECT_NE(rig.registry->az_of(d), 2);
}

TEST(Placement, ReplacementRestoresAzCoverage) {
  BlockRig rig;
  AzAwarePlacement policy(3);
  Rng rng(4);
  // Existing replicas cover AZ 0 and AZ 1 only.
  std::vector<DnId> existing;
  for (DnId d = 0; d < rig.registry->size(); ++d) {
    if (rig.registry->az_of(d) == 0 && existing.empty()) existing.push_back(d);
    if (rig.registry->az_of(d) == 1 && existing.size() == 1) {
      existing.push_back(d);
    }
  }
  const DnId repl = policy.ChooseReplacement(existing, *rig.registry, 0, rng);
  ASSERT_GE(repl, 0);
  EXPECT_EQ(rig.registry->az_of(repl), 2) << "must restore AZ coverage";
}

TEST(Placement, ReplacementIgnoresDeadReplicasForAzCoverage) {
  BlockRig rig;
  AzAwarePlacement policy(3);
  // AZ 2 lost a datanode (dn 6) that is still listed in the block's
  // replica set — its own repair runs later in the round. AZ 1 has no
  // alive capacity at all.
  rig.dns[6]->Crash();
  for (DnId d = 3; d <= 5; ++d) rig.dns[d]->Crash();
  const std::vector<DnId> existing = {0, 6};  // alive in AZ 0, dead in AZ 2
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    Rng rng(seed);
    const DnId repl = policy.ChooseReplacement(existing, *rig.registry, 0, rng);
    ASSERT_GE(repl, 0);
    // The dead replica must not count as AZ-2 coverage: only AZ 0 has a
    // live copy, so the replacement has to restore AZ 2 rather than fall
    // back to doubling up AZ 0.
    EXPECT_EQ(rig.registry->az_of(repl), 2) << "seed " << seed;
  }
}

TEST(BlockDatanode, PipelineReplicatesToAllReplicas) {
  BlockRig rig;
  bool done = false;
  rig.dns[0]->WriteBlock(
      42, 1 << 20, {rig.dns[3].get(), rig.dns[6].get()},
      [&](Status s) {
        EXPECT_TRUE(s.ok());
        done = true;
      });
  rig.sim->Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(rig.dns[0]->HasBlock(42));
  EXPECT_TRUE(rig.dns[3]->HasBlock(42));
  EXPECT_TRUE(rig.dns[6]->HasBlock(42));
  // Disk accounting: every replica wrote the bytes.
  EXPECT_EQ(rig.dns[3]->disk().stats().bytes_written, 1 << 20);
}

TEST(BlockDatanode, ReadStreamsBytesBack) {
  BlockRig rig;
  bool written = false;
  rig.dns[1]->WriteBlock(7, 256 << 10, {}, [&](Status) { written = true; });
  rig.sim->Run();
  ASSERT_TRUE(written);
  bool read_done = false;
  rig.dns[1]->ReadBlock(7, rig.client_host, [&](Expected<int64_t> r) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, 256 << 10);
    read_done = true;
  });
  rig.sim->Run();
  EXPECT_TRUE(read_done);
}

TEST(BlockDatanode, ReadMissingBlockFails) {
  BlockRig rig;
  bool done = false;
  rig.dns[2]->ReadBlock(999, rig.client_host, [&](Expected<int64_t> r) {
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), Code::kNotFound);
    done = true;
  });
  rig.sim->Run();
  EXPECT_TRUE(done);
}

TEST(BlockDatanode, CopyBlockToRepairsReplica) {
  BlockRig rig;
  rig.dns[0]->WriteBlock(5, 1 << 20, {}, nullptr);
  rig.sim->Run();
  bool done = false;
  rig.dns[0]->CopyBlockTo(*rig.dns[4], 5, [&](Status s) {
    EXPECT_TRUE(s.ok());
    done = true;
  });
  rig.sim->Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(rig.dns[4]->HasBlock(5));
}

TEST(BlockDatanode, DeleteBlockRemovesReplica) {
  BlockRig rig;
  rig.dns[0]->WriteBlock(9, 4096, {}, nullptr);
  rig.sim->Run();
  ASSERT_TRUE(rig.dns[0]->HasBlock(9));
  rig.dns[0]->DeleteBlock(9);
  rig.sim->Run();
  EXPECT_FALSE(rig.dns[0]->HasBlock(9));
}

TEST(DnRegistry, LivenessFollowsHeartbeats) {
  BlockRig rig;
  EXPECT_TRUE(rig.registry->AliveAt(0, Seconds(5)));
  EXPECT_FALSE(rig.registry->AliveAt(0, Seconds(15)))
      << "stale heartbeat must mark the DN dead";
  rig.registry->MarkHeartbeat(0, Seconds(14));
  EXPECT_TRUE(rig.registry->AliveAt(0, Seconds(15)));
  rig.dns[0]->Crash();
  EXPECT_FALSE(rig.registry->AliveAt(0, Seconds(15)));
}

}  // namespace
}  // namespace repro::blocks
