// Failure-handling tests for the NDB substrate: heartbeat-driven failure
// detection, arbitration, split-brain resolution, cluster viability, and
// node recovery (restart + data resync + rejoin).
#include <gtest/gtest.h>

#include "ndb_test_util.h"
#include "util/strings.h"

namespace repro::ndb {
namespace {

using testing::TestCluster;

TEST(NdbFailure, HeartbeatsDetectCrashedNode) {
  TestCluster tc;
  tc.cluster->StartProtocols();
  tc.sim->RunFor(Seconds(1));
  ASSERT_TRUE(tc.cluster->layout().alive(2));
  // Crash the host without telling the cluster; heartbeats must notice.
  tc.topology->SetHostUp(tc.cluster->datanode(2).host(), false);
  tc.cluster->datanode(2).Shutdown();
  tc.sim->RunFor(Seconds(2));
  EXPECT_FALSE(tc.cluster->layout().alive(2));
  EXPECT_TRUE(tc.cluster->cluster_up());
}

TEST(NdbFailure, WritesContinueAfterNodeFailure) {
  TestCluster tc;
  tc.cluster->StartProtocols();
  ASSERT_EQ(tc.InsertCommit(tc.inode_table, "1/pre", "v"), Code::kOk);
  tc.cluster->CrashDatanode(0);
  tc.sim->RunFor(Seconds(2));
  // All partitions still usable: survivors promoted their backups.
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(tc.InsertCommit(tc.inode_table, StrFormat("%d/post", i), "v"),
              Code::kOk)
        << "write " << i << " failed after node crash";
  }
}

TEST(NdbFailure, LosingWholeNodeGroupStopsTheCluster) {
  // 6 nodes, RF 3 -> 2 groups; group 0 = nodes {0, 2, 4}.
  TestCluster tc;
  tc.cluster->StartProtocols();
  tc.cluster->CrashDatanode(0);
  tc.sim->RunFor(Seconds(2));
  EXPECT_TRUE(tc.cluster->cluster_up());
  tc.cluster->CrashDatanode(2);
  tc.sim->RunFor(Seconds(2));
  EXPECT_TRUE(tc.cluster->cluster_up()) << "group still has node 4";
  tc.cluster->CrashDatanode(4);
  tc.sim->RunFor(Seconds(2));
  EXPECT_FALSE(tc.cluster->cluster_up())
      << "a whole node group is gone: no copy of its partitions remains";
}

TEST(NdbFailure, PartitionMinorityShutsDownMajorityServes) {
  TestCluster tc;  // RF=3 across AZ 0,1,2; arbitrator mgmt in AZ 0
  tc.cluster->StartProtocols();
  ASSERT_EQ(tc.InsertCommit(tc.inode_table, "1/x", "v"), Code::kOk);

  tc.topology->PartitionAzs(2, 0);
  tc.topology->PartitionAzs(2, 1);
  tc.sim->RunFor(Seconds(2));

  auto& layout = tc.cluster->layout();
  for (int n = 0; n < tc.cluster->num_datanodes(); ++n) {
    if (layout.az_of(n) == 2) {
      EXPECT_FALSE(layout.alive(n)) << "AZ-2 node " << n << " survived";
    } else {
      EXPECT_TRUE(layout.alive(n)) << "majority node " << n << " died";
    }
  }
  EXPECT_TRUE(tc.cluster->cluster_up());
  // The majority side keeps serving (the API node is in AZ 0).
  EXPECT_EQ(tc.InsertCommit(tc.inode_table, "1/y", "w"), Code::kOk);
}

TEST(NdbFailure, RestartResyncsDataAndRejoins) {
  TestCluster tc;
  tc.cluster->StartProtocols();
  ASSERT_EQ(tc.InsertCommit(tc.inode_table, "5/before", "old"), Code::kOk);

  tc.cluster->CrashDatanode(0);
  tc.sim->RunFor(Seconds(2));
  ASSERT_FALSE(tc.cluster->layout().alive(0));

  // Writes land while the node is down; it must learn them on rejoin.
  ASSERT_EQ(tc.InsertCommit(tc.inode_table, "5/during", "missed"), Code::kOk);
  bool rejoined = false;
  tc.cluster->RestartDatanode(0, [&] { rejoined = true; });
  tc.RunUntil(rejoined, Seconds(60));
  EXPECT_TRUE(tc.cluster->layout().alive(0));

  // The rejoined node holds every row of its partitions, including those
  // written while it was down.
  auto& layout = tc.cluster->layout();
  for (const char* key : {"5/before", "5/during"}) {
    const PartitionId p = layout.PartitionOf(tc.inode_table, key);
    bool replica_of_key = false;
    for (NodeId r : layout.ReplicaChain(p)) replica_of_key |= (r == 0);
    if (!replica_of_key) continue;
    auto v = tc.cluster->datanode(0).store().Read(tc.inode_table, key, 0);
    EXPECT_TRUE(v.has_value()) << "rejoined node missing " << key;
  }

  // And the cluster keeps working with it back in rotation.
  tc.sim->RunFor(Seconds(1));
  EXPECT_EQ(tc.InsertCommit(tc.inode_table, "5/after", "new"), Code::kOk);
}

TEST(NdbFailure, RestartedNodeConvergesWithPeers) {
  TestCluster tc;
  tc.cluster->StartProtocols();
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(tc.InsertCommit(tc.inode_table, StrFormat("%d/f", i), "v1"),
              Code::kOk);
  }
  tc.cluster->CrashDatanode(2);
  tc.sim->RunFor(Seconds(2));
  for (int i = 0; i < 10; ++i) {
    const TxnId txn = tc.api->Begin(tc.inode_table, StrFormat("%d/f", i));
    bool done = false;
    tc.api->Update(txn, tc.inode_table, StrFormat("%d/f", i), "v2",
                   [&](Code c) {
                     ASSERT_EQ(c, Code::kOk);
                     tc.api->Commit(txn, [&](Code c2) {
                       ASSERT_EQ(c2, Code::kOk);
                       done = true;
                     });
                   });
    tc.RunUntil(done);
  }
  bool rejoined = false;
  tc.cluster->RestartDatanode(2, [&] { rejoined = true; });
  tc.RunUntil(rejoined, Seconds(60));
  tc.sim->RunFor(Seconds(1));

  // Every replica (including the rejoined node) agrees on v2.
  auto& layout = tc.cluster->layout();
  for (int i = 0; i < 10; ++i) {
    const std::string key = StrFormat("%d/f", i);
    const PartitionId p = layout.PartitionOf(tc.inode_table, key);
    for (NodeId n : layout.ReplicaChain(p)) {
      ASSERT_TRUE(layout.alive(n));
      auto v = tc.cluster->datanode(n).store().Read(tc.inode_table, key, 0);
      ASSERT_TRUE(v.has_value()) << key << " missing at node " << n;
      EXPECT_EQ(*v, "v2") << key << " stale at node " << n;
    }
  }
}

TEST(NdbFailure, ApiTimeoutsSurfaceAsRetryableErrors) {
  TestCluster tc;
  tc.api->set_op_timeout(200 * kMillisecond);
  // The AZ-aware API (AZ 0) selects an AZ-0 TC. Crash both AZ-0 nodes
  // right after Begin, before any failure detection runs: the request is
  // dropped on the floor and only the client-side timeout can finish it.
  const TxnId txn = tc.api->Begin(tc.inode_table, "3/z");
  ASSERT_NE(txn, 0u);
  for (int n = 0; n < tc.cluster->num_datanodes(); ++n) {
    if (tc.cluster->layout().az_of(n) == 0) tc.cluster->CrashDatanode(n);
  }
  bool done = false;
  Code got = Code::kOk;
  tc.api->Read(txn, tc.inode_table, "3/z", LockMode::kReadCommitted,
               [&](Code c, auto) {
                 got = c;
                 done = true;
               });
  tc.RunUntil(done, Seconds(10));
  EXPECT_EQ(got, Code::kTimedOut);
  EXPECT_GE(tc.api->timeouts(), 1);
  Status s = TimedOut("x");
  EXPECT_TRUE(s.retryable());
}

// Regression: replies, hedge timers, and op-timeout timers used to hold a
// raw pointer to the API node; destroying the client with operations in
// flight made each of them a use-after-free when it later fired. They now
// re-resolve the node by id through the cluster (slots are nulled on
// unregister and never reused), so a torn-down client's callbacks never
// run. Pre-fence this test crashes under ASan.
TEST(NdbFailure, ApiNodeTeardownWithInFlightOpsIsSafe) {
  TestCluster tc;
  tc.cluster->StartProtocols();
  tc.sim->RunFor(Seconds(1));
  ASSERT_EQ(tc.InsertCommit(tc.inode_table, "1/seed", "v"), Code::kOk);

  // Start a read and a scan, then destroy the client while their replies
  // and timeout timers are still in flight.
  const TxnId txn = tc.api->Begin(tc.inode_table, "1/seed");
  ASSERT_NE(txn, 0u);
  int fired = 0;
  tc.api->Read(txn, tc.inode_table, "1/seed", LockMode::kReadCommitted,
               [&](Code, std::optional<std::string>) { ++fired; });
  tc.api->ScanPrefix(txn, tc.inode_table, "1/",
                     [&](Code, std::vector<std::pair<Key, std::string>>) {
                       ++fired;
                     });
  tc.api.reset();
  tc.sim->RunFor(Seconds(5));  // deliver late replies, fire op timers
  EXPECT_EQ(fired, 0) << "callback ran after its client was destroyed";
}

}  // namespace
}  // namespace repro::ndb
