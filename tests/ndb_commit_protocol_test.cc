// Tests for the NDB linear-2PC commit protocol, read routing, table
// options, and transaction semantics (§II-B2, §IV-A).
#include <gtest/gtest.h>

#include "ndb_test_util.h"

namespace repro::ndb {
namespace {

using testing::TestCluster;

TEST(NdbCommit, InsertThenReadCommitted) {
  TestCluster tc;
  ASSERT_EQ(tc.InsertCommit(tc.inode_table, "1/foo", "hello"), Code::kOk);
  auto [code, value] = tc.ReadCommitted(tc.inode_table, "1/foo");
  EXPECT_EQ(code, Code::kOk);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, "hello");
}

TEST(NdbCommit, ReadMissingRowReturnsNoValue) {
  TestCluster tc;
  auto [code, value] = tc.ReadCommitted(tc.inode_table, "1/missing");
  EXPECT_EQ(code, Code::kOk);
  EXPECT_FALSE(value.has_value());
}

TEST(NdbCommit, InsertDuplicateFails) {
  TestCluster tc;
  ASSERT_EQ(tc.InsertCommit(tc.inode_table, "1/foo", "a"), Code::kOk);
  EXPECT_EQ(tc.InsertCommit(tc.inode_table, "1/foo", "b"),
            Code::kAlreadyExists);
  // The original value survives the failed insert.
  auto [code, value] = tc.ReadCommitted(tc.inode_table, "1/foo");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, "a");
}

TEST(NdbCommit, UpdateRequiresExistingRow) {
  TestCluster tc;
  const TxnId txn = tc.api->Begin(tc.inode_table, "1/none");
  Code got = Code::kOk;
  bool done = false;
  tc.api->Update(txn, tc.inode_table, "1/none", "x", [&](Code c) {
    got = c;
    done = true;
  });
  tc.RunUntil(done);
  EXPECT_EQ(got, Code::kNotFound);
}

TEST(NdbCommit, DeleteRemovesRow) {
  TestCluster tc;
  ASSERT_EQ(tc.InsertCommit(tc.inode_table, "1/foo", "v"), Code::kOk);
  const TxnId txn = tc.api->Begin(tc.inode_table, "1/foo");
  bool done = false;
  Code commit_code = Code::kInternal;
  tc.api->Delete(txn, tc.inode_table, "1/foo", [&](Code c) {
    ASSERT_EQ(c, Code::kOk);
    tc.api->Commit(txn, [&](Code c2) {
      commit_code = c2;
      done = true;
    });
  });
  tc.RunUntil(done);
  EXPECT_EQ(commit_code, Code::kOk);
  auto [code, value] = tc.ReadCommitted(tc.inode_table, "1/foo");
  EXPECT_FALSE(value.has_value());
}

TEST(NdbCommit, AbortDiscardsWrites) {
  TestCluster tc;
  const TxnId txn = tc.api->Begin(tc.inode_table, "1/foo");
  bool inserted = false;
  tc.api->Insert(txn, tc.inode_table, "1/foo", "v",
                 [&](Code c) {
                   ASSERT_EQ(c, Code::kOk);
                   inserted = true;
                 });
  tc.RunUntil(inserted);
  tc.api->Abort(txn);
  tc.sim->RunFor(Seconds(1));
  auto [code, value] = tc.ReadCommitted(tc.inode_table, "1/foo");
  EXPECT_FALSE(value.has_value());
  // No lock leaked on the aborted row.
  for (int n = 0; n < tc.cluster->num_datanodes(); ++n) {
    EXPECT_FALSE(tc.cluster->datanode(n).locks().IsLocked(tc.inode_table,
                                                          "1/foo"));
  }
}

TEST(NdbCommit, ReadYourOwnUncommittedWrite) {
  TestCluster tc;
  const TxnId txn = tc.api->Begin(tc.inode_table, "1/foo");
  bool done = false;
  std::optional<std::string> seen;
  tc.api->Insert(txn, tc.inode_table, "1/foo", "mine", [&](Code c) {
    ASSERT_EQ(c, Code::kOk);
    // Locked read within the same transaction sees the pending write.
    tc.api->Read(txn, tc.inode_table, "1/foo", LockMode::kShared,
                 [&](Code c2, std::optional<std::string> v) {
                   EXPECT_EQ(c2, Code::kOk);
                   seen = std::move(v);
                   tc.api->Commit(txn, [&](Code) { done = true; });
                 });
  });
  tc.RunUntil(done);
  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(*seen, "mine");
}

// The core Read Backup guarantee (§IV-A3): after the commit ack, *every*
// replica — not just the primary — serves the new value, because the ack
// is delayed until all Completed messages arrive.
TEST(NdbCommit, ReadBackupReadYourWritesFromEveryReplica) {
  TestCluster tc;
  ASSERT_EQ(tc.InsertCommit(tc.inode_table, "7/f", "v2"), Code::kOk);
  const PartitionId part =
      tc.cluster->layout().PartitionOf(tc.inode_table, "7/f");
  for (NodeId n : tc.cluster->layout().ReplicaChain(part)) {
    auto v = tc.cluster->datanode(n).store().Read(tc.inode_table, "7/f", 0);
    ASSERT_TRUE(v.has_value()) << "replica " << n << " missing the row";
    EXPECT_EQ(*v, "v2") << "replica " << n << " is stale after commit ack";
  }
}

// Without Read Backup the ack is sent at Committed: the primary is
// guaranteed current, and committed reads are routed to it.
TEST(NdbCommit, ClassicCommitPrimaryCurrentAfterAck) {
  TestCluster tc(6, 3, /*az_aware=*/false, /*read_backup=*/false);
  ASSERT_EQ(tc.InsertCommit(tc.inode_table, "9/f", "val"), Code::kOk);
  const PartitionId part =
      tc.cluster->layout().PartitionOf(tc.inode_table, "9/f");
  const NodeId primary = tc.cluster->layout().PrimaryOf(part);
  auto v = tc.cluster->datanode(primary).store().Read(tc.inode_table, "9/f", 0);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "val");
}

TEST(NdbCommit, ScanPrefixReturnsChildrenInOrder) {
  TestCluster tc;
  ASSERT_EQ(tc.InsertCommit(tc.inode_table, "5/a", "1"), Code::kOk);
  ASSERT_EQ(tc.InsertCommit(tc.inode_table, "5/b", "2"), Code::kOk);
  ASSERT_EQ(tc.InsertCommit(tc.inode_table, "5/c", "3"), Code::kOk);
  ASSERT_EQ(tc.InsertCommit(tc.inode_table, "51/x", "other"), Code::kOk);

  const TxnId txn = tc.api->Begin(tc.inode_table, "5/");
  bool done = false;
  std::vector<std::pair<Key, std::string>> rows;
  tc.api->ScanPrefix(txn, tc.inode_table, "5/",
                     [&](Code c, std::vector<std::pair<Key, std::string>> r) {
                       EXPECT_EQ(c, Code::kOk);
                       rows = std::move(r);
                       tc.api->Commit(txn, [&](Code) { done = true; });
                     });
  tc.RunUntil(done);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].first, "5/a");
  EXPECT_EQ(rows[1].first, "5/b");
  EXPECT_EQ(rows[2].first, "5/c");
}

TEST(NdbCommit, ExclusiveLockSerialisesConflictingWriters) {
  TestCluster tc;
  ASSERT_EQ(tc.InsertCommit(tc.inode_table, "3/f", "v0"), Code::kOk);

  // Txn A takes an exclusive read lock and holds it.
  const TxnId a = tc.api->Begin(tc.inode_table, "3/f");
  bool a_locked = false;
  tc.api->Read(a, tc.inode_table, "3/f", LockMode::kExclusive,
               [&](Code c, std::optional<std::string>) {
                 ASSERT_EQ(c, Code::kOk);
                 a_locked = true;
               });
  tc.RunUntil(a_locked);

  // Txn B's update must not complete while A holds the lock.
  const TxnId b = tc.api->Begin(tc.inode_table, "3/f");
  bool b_done = false;
  Code b_code = Code::kInternal;
  tc.api->Update(b, tc.inode_table, "3/f", "v1", [&](Code c) {
    b_code = c;
    b_done = true;
  });
  tc.sim->RunFor(Millis(50));
  EXPECT_FALSE(b_done) << "writer bypassed an exclusive lock";

  // Commit A; B's prepare should now be granted.
  bool a_done = false;
  tc.api->Commit(a, [&](Code c) {
    EXPECT_EQ(c, Code::kOk);
    a_done = true;
  });
  tc.RunUntil(a_done);
  tc.RunUntil(b_done);
  EXPECT_EQ(b_code, Code::kOk);
}

TEST(NdbCommit, SharedLocksCoexist) {
  TestCluster tc;
  ASSERT_EQ(tc.InsertCommit(tc.inode_table, "4/f", "v"), Code::kOk);
  const TxnId a = tc.api->Begin(tc.inode_table, "4/f");
  const TxnId b = tc.api->Begin(tc.inode_table, "4/f");
  int granted = 0;
  bool done_a = false, done_b = false;
  tc.api->Read(a, tc.inode_table, "4/f", LockMode::kShared,
               [&](Code c, std::optional<std::string>) {
                 EXPECT_EQ(c, Code::kOk);
                 ++granted;
                 done_a = true;
               });
  tc.api->Read(b, tc.inode_table, "4/f", LockMode::kShared,
               [&](Code c, std::optional<std::string>) {
                 EXPECT_EQ(c, Code::kOk);
                 ++granted;
                 done_b = true;
               });
  tc.RunUntil(done_a);
  tc.RunUntil(done_b);
  EXPECT_EQ(granted, 2);
  tc.api->Abort(a);
  tc.api->Abort(b);
}

TEST(NdbCommit, LockWaitTimeoutBreaksDeadlock) {
  TestCluster tc;
  ASSERT_EQ(tc.InsertCommit(tc.inode_table, "8/x", "x"), Code::kOk);
  ASSERT_EQ(tc.InsertCommit(tc.inode_table, "8/y", "y"), Code::kOk);

  // A locks x, B locks y, then each requests the other's row: deadlock.
  const TxnId a = tc.api->Begin(tc.inode_table, "8/x");
  const TxnId b = tc.api->Begin(tc.inode_table, "8/y");
  bool a_first = false, b_first = false;
  tc.api->Read(a, tc.inode_table, "8/x", LockMode::kExclusive,
               [&](Code c, auto) { a_first = c == Code::kOk; });
  tc.api->Read(b, tc.inode_table, "8/y", LockMode::kExclusive,
               [&](Code c, auto) { b_first = c == Code::kOk; });
  tc.RunUntil(a_first);
  tc.RunUntil(b_first);

  int failures = 0, successes = 0;
  bool a_second = false, b_second = false;
  tc.api->Read(a, tc.inode_table, "8/y", LockMode::kExclusive,
               [&](Code c, auto) {
                 (c == Code::kOk ? successes : failures) += 1;
                 a_second = true;
               });
  tc.api->Read(b, tc.inode_table, "8/x", LockMode::kExclusive,
               [&](Code c, auto) {
                 (c == Code::kOk ? successes : failures) += 1;
                 b_second = true;
               });
  tc.RunUntil(a_second, Seconds(10));
  tc.RunUntil(b_second, Seconds(10));
  // The deadlock-detection timeout must have broken at least one of them.
  EXPECT_GE(failures, 1);
  tc.api->Abort(a);
  tc.api->Abort(b);
}

TEST(NdbCommit, FullyReplicatedTableVisibleOnAllNodes) {
  TestCluster tc;
  ASSERT_EQ(tc.InsertCommit(tc.dict_table, "leader", "nn4"), Code::kOk);
  for (int n = 0; n < tc.cluster->num_datanodes(); ++n) {
    auto v = tc.cluster->datanode(n).store().Read(tc.dict_table, "leader", 0);
    ASSERT_TRUE(v.has_value()) << "node " << n;
    EXPECT_EQ(*v, "nn4");
  }
}

}  // namespace
}  // namespace repro::ndb
