// Figure 13: average network and disk utilisation per metadata server
// (namenode / MDS), sweeping the number of metadata servers.
//
// Shape targets (paper): HopsFS namenodes push an order of magnitude more
// network traffic than Ceph MDSs (whose clients are served by the kernel
// cache); neither uses meaningful disk at the serving layer.
#include <cstdio>

#include "bench_common.h"
#include "cephfs_bench_common.h"

namespace repro::bench {
namespace {

void Main() {
  PrintHeader("Per-metadata-server network utilisation", "Figure 13");

  const auto counts = ResourceSweepCounts();
  std::printf("\n%-22s", "setup");
  for (int n : counts) std::printf("%16d", n);
  std::printf("\n%-22s", "");
  for (size_t i = 0; i < counts.size(); ++i) std::printf("%9s%7s", "rd", "wr");
  std::printf("   (MB/s)\n");

  for (auto setup : AllHopsFsSetups()) {
    std::printf("%-22s", hopsfs::PaperSetupName(setup));
    std::fflush(stdout);
    for (int n : counts) {
      RunConfig cfg;
      cfg.setup = setup;
      cfg.num_namenodes = n;
      const auto out = RunHopsFsWorkload(cfg);
      std::printf("%9.2f%7.2f", out.resources.nn_net_read_mbps,
                  out.resources.nn_net_write_mbps);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  for (auto variant : AllCephVariants()) {
    std::printf("%-22s", CephVariantName(variant));
    std::fflush(stdout);
    for (int n : counts) {
      CephRunConfig cfg;
      cfg.variant = variant;
      cfg.num_mds = n;
      const auto out = RunCephWorkload(cfg);
      std::printf("%9.2f%7.2f", out.mds_net_read_mbps,
                  out.mds_net_write_mbps);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf(
      "\nPaper shape: HopsFS/CL namenodes move ~an order of magnitude more\n"
      "bytes than Ceph MDSs (client kernel caches absorb Ceph's reads);\n"
      "metadata servers use no disk in either system (all state is in NDB\n"
      "or the OSDs).\n");
}

}  // namespace
}  // namespace repro::bench

int main() {
  repro::bench::Main();
  return 0;
}
