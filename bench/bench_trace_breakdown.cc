// Critical-path latency breakdown: a Fig. 8/9-style HopsFS-CL run with
// full-rate tracing, decomposed by the span-tree analyzer.
//
// Every operation is sampled (sample_every=1), streamed through the
// BreakdownAggregator, and the report prints the top critical-path
// contributors per op type plus the per-AZ-pair network-hop table — the
// "where did the p99 go?" instrument the perf PRs build on.
//
// Invariants checked (exit status is non-zero on failure):
//   * attribution: critical-path segment durations sum to the measured
//     end-to-end latency within 1% (they are exact by construction; the
//     1% bound guards aggregation bugs);
//   * Table I consistency: every inter-AZ hop takes at least the
//     topology's one-way inter-AZ latency, and inter-AZ hops are slower
//     than intra-AZ hops on average.
//
// `--quick` shrinks the run for the CI trace-smoke job. Artifact: a
// sampled Chrome-trace (chrome://tracing / Perfetto) JSON at
// $REPRO_CSV_DIR/trace_breakdown.json.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "metrics/timeseries.h"
#include "trace/chrome_trace.h"
#include "trace/critical_path.h"

namespace repro::bench {
namespace {

int Main(bool quick) {
  PrintHeader("Critical-path latency breakdown (HopsFS-CL, 3 AZs)",
              "Fig. 8/9 decomposition");

  trace::BreakdownAggregator agg;
  std::vector<trace::Trace> kept;  // first traces, exported as Chrome JSON
  const size_t keep = quick ? 32 : 64;

  RunConfig cfg;
  cfg.setup = hopsfs::PaperSetup::kHopsFsCl_3_3;
  cfg.num_namenodes = quick ? 3 : 6;
  cfg.seed = 42;  // pinned: the acceptance numbers reference this run
  if (quick) {
    cfg.clients_per_nn = 16;
    cfg.warmup = 100 * kMillisecond;
    cfg.measure = 400 * kMillisecond;
  }
  cfg.sim_setup = [&](Simulation& sim) {
    sim.tracer().set_sample_every(1);
    sim.tracer().set_keep_last(0);  // the sink below does the retention
    sim.tracer().set_sink([&agg, &kept, keep](const trace::Trace& t) {
      agg.Add(t);
      if (kept.size() < keep) kept.push_back(t);
    });
  };

  const auto out = RunHopsFsWorkload(cfg);
  std::printf("\nworkload: %.0f ops/s, mean %.2f ms, %lld traces\n",
              out.results.ops_per_sec(), out.results.all.MeanMillis(),
              static_cast<long long>(agg.traces()));

  std::printf("\n%s\n", agg.Report().c_str());

  int failures = 0;

  // Attribution invariant: per-trace critical-path segments partition the
  // root interval, so the totals must match (1% tolerance).
  const double measured = static_cast<double>(agg.measured_total());
  const double attributed = static_cast<double>(agg.attributed_total());
  const double rel_err =
      measured > 0 ? std::abs(attributed - measured) / measured : 1.0;
  std::printf("attribution: %.3f ms attributed vs %.3f ms measured "
              "(rel err %.4f%%) -> %s\n",
              attributed / 1e6, measured / 1e6, 100.0 * rel_err,
              rel_err <= 0.01 ? "OK" : "FAIL");
  if (agg.traces() == 0 || rel_err > 0.01) ++failures;

  // Table I consistency: inter-AZ hops are bounded below by the one-way
  // inter-AZ latency and sit above intra-AZ hops.
  const AzLatencyTable table = AzLatencyTable::UsWest1();
  double intra_mean_sum = 0, inter_mean_sum = 0;
  int intra_pairs = 0, inter_pairs = 0;
  std::printf("\nAZ-pair network hops (mean ms; Table I one-way floor):\n");
  for (const auto& [pair, hist] : agg.az_pair_net()) {
    const auto [src, dst] = pair;
    if (src < 0 || dst < 0 || hist.count() == 0) continue;
    const double mean_ns =
        static_cast<double>(hist.sum()) / static_cast<double>(hist.count());
    const double mean_ms = mean_ns / 1e6;
    const double floor_ms =
        static_cast<double>(table.one_way[src][dst]) / 1e6;
    const bool inter = src != dst;
    const bool ok = mean_ns >= static_cast<double>(table.one_way[src][dst]);
    std::printf("  az%d -> az%d: %8.3f ms over %7lld hops (floor %.3f) %s\n",
                src, dst, mean_ms, static_cast<long long>(hist.count()),
                floor_ms, ok ? "" : "BELOW FLOOR");
    if (inter && !ok) ++failures;
    if (inter) {
      inter_mean_sum += mean_ms;
      ++inter_pairs;
    } else {
      intra_mean_sum += mean_ms;
      ++intra_pairs;
    }
  }
  if (inter_pairs == 0) {
    std::printf("  no inter-AZ hops observed -> FAIL\n");
    ++failures;
  } else if (intra_pairs > 0 &&
             inter_mean_sum / inter_pairs <= intra_mean_sum / intra_pairs) {
    std::printf("  inter-AZ hops not slower than intra-AZ -> FAIL\n");
    ++failures;
  }

  const std::string json_path =
      metrics::CsvDir() + "/trace_breakdown.json";
  if (trace::WriteChromeTrace(json_path, kept)) {
    std::printf("\nwrote %zu sampled traces to %s\n", kept.size(),
                json_path.c_str());
  } else {
    std::printf("\nFAILED to write %s\n", json_path.c_str());
    ++failures;
  }

  std::printf("\n%s\n", failures == 0 ? "ALL TRACE INVARIANTS HOLD"
                                      : "TRACE INVARIANT FAILURES");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace repro::bench

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  return repro::bench::Main(quick);
}
