// Hot-path profile of the protocol layers + allocation-budget gate.
//
// Three parts, all seed-pinned:
//
//   1. Profile run: a HopsFS-CL deployment under the closed-loop Spotify
//      workload with the zone profiler installed. Artifacts (REPRO_CSV_DIR,
//      default bench_out/): prof_cpu.folded + prof_allocs.folded
//      (flamegraph folded stacks of host CPU and allocation counts),
//      prof_budget.txt (top-K CPU/allocs-per-op table), prof_zones.json
//      (per-zone totals), prof_trace.json (Chrome trace with the profiler
//      track overlaying the sampled sim-time span trees), and
//      prof_registry.prom (the prof.zone.* series as exported through the
//      metrics registry — proof the telemetry stack sees profiles for
//      free).
//
//   2. Determinism check: a pinned chaos episode (NDB crash + restart)
//      run with the profiler installed and again without; the full event
//      trace and workload outcome must be byte-identical. Exit non-zero
//      on divergence.
//
//   3. Budget gate: allocs-per-op and CPU-per-op for the tracked hot
//      zones (NN op dispatch, TC key-op/commit, LDM prepare/commit
//      chain, redo flush) land in BENCH_prof.json (REPRO_BENCH_JSON
//      overrides the path). With REPRO_PROF_BASELINE set to the committed
//      baseline, the run FAILS if any tracked zone's allocs-per-op
//      regresses >20% (allocation counts are deterministic for the
//      pinned seed, so the gate is machine-independent; CPU-per-op is
//      recorded for trend reading but not gated — wall CPU is
//      runner-dependent).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_host.h"
#include "chaos/harness.h"
#include "hopsfs/deployment.h"
#include "metrics/timeseries.h"
#include "prof/profiler.h"
#include "prof/report.h"
#include "telemetry/export.h"
#include "trace/trace.h"
#include "util/strings.h"
#include "workload/driver.h"
#include "workload/spotify.h"

namespace repro::bench {
namespace {

// The zones the follow-on protocol-flattening work is measured against.
const char* const kTrackedZones[] = {
    "nn.op.dispatch",      "ndb.tc.keyop",  "ndb.tc.commit",
    "ndb.ldm.prepare",     "ndb.ldm.commit_chain", "ndb.redo.flush",
};

struct TrackedStats {
  std::string zone;
  prof::ZoneStats stats;
};

// ---- part 1: profile run ---------------------------------------------------

struct ProfileRun {
  std::vector<TrackedStats> tracked;
  uint64_t ops_completed = 0;
};

ProfileRun RunProfiledWorkload(const std::string& out_dir) {
  const uint64_t seed = 42;
  Simulation sim(seed);
  // Sample some traces so the Chrome export overlays zones on span trees.
  sim.tracer().set_sample_every(64);
  sim.tracer().set_keep_last(64);

  auto dopts = hopsfs::DeploymentOptions::FromPaperSetup(
      hopsfs::PaperSetup::kHopsFsCl_3_3, /*num_namenodes=*/3);
  hopsfs::Deployment dep(sim, dopts);
  dep.Start();

  workload::NamespaceConfig ns{/*users=*/64, /*dirs_per_user=*/4,
                               /*files_per_dir=*/4, /*zipf_theta=*/0.75};
  workload::SpotifyWorkload wl(ns, seed);
  dep.BootstrapNamespace(wl.all_dirs(), wl.all_files());
  std::vector<std::unique_ptr<workload::HopsFsTarget>> targets;
  std::vector<workload::FsTarget*> ptrs;
  for (int i = 0; i < 24; ++i) {
    targets.push_back(
        std::make_unique<workload::HopsFsTarget>(dep.AddClient()));
    ptrs.push_back(targets.back().get());
  }
  sim.RunFor(1 * kSecond);  // leader + bindings settle

  prof::ProfilerOptions popts;
  popts.chrome_ring_capacity = 4096;
  prof::Profiler profiler(popts);
  profiler.SetSimTimeSource([&sim] { return sim.now(); });
  // Bridge zones into the deployment's registry: the prof.zone.* series
  // below prove the telemetry stack exports profiles with zero glue.
  prof::RegisterZoneMetrics(&profiler, &dep.metrics());
  profiler.Install();

  workload::ClosedLoopDriver driver(sim, ptrs, [&wl](auto& rng, auto& owned) {
    return wl.Next(rng, owned);
  });
  // Reset at the warm-up/measure boundary: the budget numbers cover the
  // steady-state window only (node creation, cold maps, intern tables
  // are all warm by then).
  auto results = driver.Run(1 * kSecond, 4 * kSecond,
                            [&profiler] { profiler.ResetStats(); });

  profiler.Uninstall();

  // Artifacts.
  prof::WriteFoldedStacks(out_dir + "/prof_cpu.folded", profiler,
                          prof::Metric::kCpuNs);
  prof::WriteFoldedStacks(out_dir + "/prof_allocs.folded", profiler,
                          prof::Metric::kAllocs);
  const std::string budget = prof::BudgetTable(profiler, 20);
  FILE* bf = std::fopen((out_dir + "/prof_budget.txt").c_str(), "w");
  if (bf != nullptr) {
    std::fputs(budget.c_str(), bf);
    std::fclose(bf);
  }
  FILE* zf = std::fopen((out_dir + "/prof_zones.json").c_str(), "w");
  if (zf != nullptr) {
    std::fputs(prof::ZonesJson(profiler).c_str(), zf);
    std::fclose(zf);
  }
  prof::WriteChromeTraceWithZones(out_dir + "/prof_trace.json",
                                  sim.tracer().TakeFinished(), profiler);
  // prof.zone.* rides the normal exporters (frozen at detach).
  const std::string prom = telemetry::PrometheusText(dep.metrics());
  FILE* pf = std::fopen((out_dir + "/prof_registry.prom").c_str(), "w");
  if (pf != nullptr) {
    std::fputs(prom.c_str(), pf);
    std::fclose(pf);
  }

  std::printf("profiled %lld completed ops; budget table (top 20 by CPU):\n\n%s\n",
              static_cast<long long>(results.completed), budget.c_str());

  ProfileRun out;
  out.ops_completed = static_cast<uint64_t>(results.completed);
  for (const auto& [name, stats] : profiler.ByName()) {
    for (const char* tracked : kTrackedZones) {
      if (name == tracked) out.tracked.push_back({name, stats});
    }
  }
  return out;
}

// ---- part 2: profiler on/off byte-identity --------------------------------

int CheckDeterminism() {
  chaos::ChaosOptions opts;
  opts.seed = 4242;
  opts.workload_clients = 8;
  opts.warmup = 1 * kSecond;
  opts.fault_window = 2 * kSecond;
  opts.settle = 2 * kSecond;
  opts.client_rpc_timeout = 250 * kMillisecond;
  opts.client_op_deadline = 1 * kSecond;

  chaos::FaultSchedule schedule;
  schedule.Add({600 * kMillisecond, chaos::FaultType::kCrashNdbNode, 1});
  schedule.Add({Millis(1400), chaos::FaultType::kRestartNdbNode, 1});

  prof::Profiler profiler;
  profiler.Install();
  const chaos::ChaosReport on = chaos::RunChaosSchedule(opts, schedule);
  profiler.Uninstall();
  const chaos::ChaosReport off = chaos::RunChaosSchedule(opts, schedule);

  const bool identical = on.TraceString() == off.TraceString() &&
                         on.completed == off.completed &&
                         on.failed == off.failed &&
                         on.acked_writes == off.acked_writes;
  std::printf("determinism: pinned chaos episode (crash+restart, seed %llu) "
              "with profiler on vs off: %s\n",
              static_cast<unsigned long long>(opts.seed),
              identical ? "byte-identical" : "DIVERGED");
  uint64_t zone_calls = 0;
  for (const auto& [name, stats] : profiler.ByName()) {
    (void)name;
    zone_calls += stats.calls;
  }
  std::printf("  (profiled run recorded %llu zone entries across %zu paths)\n",
              static_cast<unsigned long long>(zone_calls),
              profiler.nodes().size() - 1);
  return identical ? 0 : 1;
}

// ---- part 3: BENCH_prof.json + budget gate --------------------------------

int WriteBenchJson(const ProfileRun& run, std::string* json_out) {
  std::string path = "BENCH_prof.json";
  if (const char* env = std::getenv("REPRO_BENCH_JSON")) path = env;
  // A tracked zone absent from the profile is a hard failure even with no
  // baseline to gate against: it means the instrumentation was removed or
  // the hot path stopped running, and silently writing a JSON without the
  // zone would let the next baseline regenerate around the hole.
  int missing = 0;
  for (const char* zone : kTrackedZones) {
    bool ran = false;
    for (const auto& t : run.tracked) {
      if (t.zone == zone && t.stats.calls > 0) ran = true;
    }
    if (!ran) {
      std::printf("FAIL: tracked zone %s missing from bench output\n", zone);
      ++missing;
    }
  }
  std::string body;
  for (const auto& t : run.tracked) {
    const double calls = static_cast<double>(t.stats.calls);
    if (!body.empty()) body += ",\n";
    body += StrFormat(
        "    \"%s\": {\"calls\": %llu, \"allocs_per_call\": %.3f, "
        "\"bytes_per_call\": %.1f, \"cpu_us_per_call\": %.3f}",
        t.zone.c_str(), static_cast<unsigned long long>(t.stats.calls),
        calls > 0 ? static_cast<double>(t.stats.allocs) / calls : 0.0,
        calls > 0 ? static_cast<double>(t.stats.alloc_bytes) / calls : 0.0,
        calls > 0 ? static_cast<double>(t.stats.cpu_ns) / calls / 1e3 : 0.0);
  }
  // Zone calls and allocation counts are sim-deterministic for the pinned
  // seed; cpu_us_per_call is host-dependent and informational.
  const std::string json = StrFormat(
      "{\n  \"bench\": \"prof\",\n  \"ops_completed\": %llu,\n"
      "  \"zones\": {\n%s\n  }\n}\n",
      static_cast<unsigned long long>(run.ops_completed), body.c_str());
  *json_out = json;
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("FAIL: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("budget numbers -> %s\n", path.c_str());
  return missing == 0 ? 0 : 1;
}

// Finds `"key": ` after `"zone": {` in the baseline text.
bool FindZoneNumber(const std::string& text, const std::string& zone,
                    const char* key, double* out) {
  const size_t zpos = text.find("\"" + zone + "\": {");
  if (zpos == std::string::npos) return false;
  const std::string needle = std::string("\"") + key + "\": ";
  const size_t pos = text.find(needle, zpos);
  if (pos == std::string::npos) return false;
  *out = std::strtod(text.c_str() + pos + needle.size(), nullptr);
  return true;
}

int CheckBudgets(const ProfileRun& run) {
  const char* path = std::getenv("REPRO_PROF_BASELINE");
  if (path == nullptr || path[0] == '\0') {
    std::printf("budget gate: REPRO_PROF_BASELINE unset, skipping\n");
    return 0;
  }
  FILE* f = std::fopen(path, "r");
  if (f == nullptr) {
    std::printf("FAIL: cannot read baseline %s\n", path);
    return 1;
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);

  int violations = 0;
  for (const char* zone : kTrackedZones) {
    const TrackedStats* cur = nullptr;
    for (const auto& t : run.tracked) {
      if (t.zone == zone) cur = &t;
    }
    if (cur == nullptr || cur->stats.calls == 0) {
      std::printf("FAIL: tracked zone %s never ran in the profile window\n",
                  zone);
      ++violations;
      continue;
    }
    double base_allocs = 0;
    if (!FindZoneNumber(text, zone, "allocs_per_call", &base_allocs)) {
      std::printf("FAIL: baseline %s missing zone %s\n", path, zone);
      ++violations;
      continue;
    }
    const double now_allocs = static_cast<double>(cur->stats.allocs) /
                              static_cast<double>(cur->stats.calls);
    // >10% regression fails. A small absolute slack (+0.25 alloc/op)
    // keeps near-zero baselines from tripping on quantisation. Tightened
    // from 1.2x+0.5 once the flattening work drove the tracked budgets
    // to ~1 alloc/op: at these floors a whole extra allocation per op is
    // a real regression, not noise.
    const double ceiling = base_allocs * 1.1 + 0.25;
    const bool ok = now_allocs <= ceiling;
    std::printf("  %-22s allocs/op %8.3f vs baseline %8.3f (ceiling %8.3f) %s\n",
                zone, now_allocs, base_allocs, ceiling,
                ok ? "ok" : "REGRESSED");
    if (!ok) ++violations;
  }
  if (violations == 0) {
    std::printf("budget gate: all tracked zones within 10%% of baseline\n");
  }
  return violations == 0 ? 0 : 1;
}

int Main() {
  PrintHeader("Hot-path profiler: zone CPU + allocation budgets",
              "observability tooling; no single paper figure");
  const std::string out_dir = metrics::CsvDir();
  int rc = 0;
  const ProfileRun run = RunProfiledWorkload(out_dir);
  rc |= CheckDeterminism();
  std::string json;
  rc |= WriteBenchJson(run, &json);
  rc |= CheckBudgets(run);
  std::printf("\nRESULT: %s\n",
              rc == 0 ? "profiler holds every expectation"
                      : "EXPECTATION VIOLATED");
  return rc;
}

}  // namespace
}  // namespace repro::bench

int main() { return repro::bench::Main(); }
