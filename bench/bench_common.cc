#include "bench_common.h"

#include <cstdio>
#include <cstdlib>

#include "util/strings.h"
#include "workload/fs_interface.h"

namespace repro::bench {

bool FullScale() {
  const char* env = std::getenv("REPRO_FULL");
  return env != nullptr && env[0] == '1';
}

std::vector<int> PaperNnCounts() {
  if (FullScale()) return {1, 6, 12, 18, 24, 36, 48, 60};
  return {1, 6, 12, 24, 36, 60};
}

std::vector<int> ResourceSweepCounts() {
  if (FullScale()) return {1, 6, 12, 18, 24, 36, 48, 60};
  return {6, 24, 60};
}

int FixedServerCount() { return FullScale() ? 60 : 24; }

std::function<workload::OpSource(const workload::SpotifyWorkload&)>
MicroOpSourceFactory(workload::FsOp op) {
  using workload::SpotifyWorkload;
  return [op](const SpotifyWorkload& wl) -> workload::OpSource {
    auto counter = std::make_shared<uint64_t>(0);
    // Copy what we need: dir and file path lists.
    auto dirs = std::make_shared<std::vector<std::string>>(wl.all_dirs());
    auto files = std::make_shared<std::vector<std::string>>(wl.all_files());
    return [op, counter, dirs, files](
               Rng& rng, std::vector<std::string>& owned) {
      SpotifyWorkload::Op out;
      out.op = op;
      switch (op) {
        case workload::FsOp::kMkdir:
          out.path = StrFormat(
              "%s/mk%llu", (*dirs)[rng.NextBelow(dirs->size())].c_str(),
              static_cast<unsigned long long>(++*counter));
          break;
        case workload::FsOp::kCreate:
          out.path = StrFormat(
              "%s/cr%llu", (*dirs)[rng.NextBelow(dirs->size())].c_str(),
              static_cast<unsigned long long>(++*counter));
          break;
        case workload::FsOp::kDelete:
          if (owned.empty()) {
            out.op = workload::FsOp::kCreate;
            out.path = StrFormat(
                "%s/dl%llu", (*dirs)[rng.NextBelow(dirs->size())].c_str(),
                static_cast<unsigned long long>(++*counter));
            owned.push_back(out.path);
          } else {
            out.path = owned.back();
            owned.pop_back();
          }
          break;
        case workload::FsOp::kOpenRead:
        default:
          out.op = workload::FsOp::kOpenRead;
          out.path = (*files)[rng.NextBelow(files->size())];
          break;
      }
      return out;
    };
  };
}

std::vector<hopsfs::PaperSetup> AllHopsFsSetups() {
  return {hopsfs::PaperSetup::kHopsFs_2_1, hopsfs::PaperSetup::kHopsFs_3_1,
          hopsfs::PaperSetup::kHopsFs_2_3, hopsfs::PaperSetup::kHopsFs_3_3,
          hopsfs::PaperSetup::kHopsFsCl_2_3,
          hopsfs::PaperSetup::kHopsFsCl_3_3};
}

RunOutput RunHopsFsWorkload(const RunConfig& config) {
  const int clients_per_nn =
      config.clients_per_nn > 0 ? config.clients_per_nn
                                : (FullScale() ? 64 : 32);
  const Nanos warmup =
      config.warmup > 0 ? config.warmup
                        : (FullScale() ? 400 * kMillisecond
                                       : 200 * kMillisecond);
  const Nanos measure =
      config.measure > 0 ? config.measure
                         : (FullScale() ? 1 * kSecond : 500 * kMillisecond);

  Simulation sim(config.seed);
  if (config.sim_setup) config.sim_setup(sim);
  auto options = hopsfs::DeploymentOptions::FromPaperSetup(
      config.setup, config.num_namenodes);
  if (config.tweak) config.tweak(options);
  hopsfs::Deployment deployment(sim, options);
  deployment.Start();

  workload::SpotifyWorkload workload(config.ns, config.seed);
  deployment.BootstrapNamespace(workload.all_dirs(), workload.all_files());

  std::vector<std::unique_ptr<workload::HopsFsTarget>> targets;
  std::vector<workload::FsTarget*> target_ptrs;
  const int total_clients = clients_per_nn * config.num_namenodes;
  for (int i = 0; i < total_clients; ++i) {
    targets.push_back(
        std::make_unique<workload::HopsFsTarget>(deployment.AddClient()));
    target_ptrs.push_back(targets.back().get());
  }

  // Let leader election + client NN selection settle.
  sim.RunFor(3 * kSecond);

  workload::OpSource source;
  if (config.op_source_factory) {
    source = config.op_source_factory(workload);
  } else {
    source = [&workload](Rng& rng, std::vector<std::string>& owned) {
      return workload.Next(rng, owned);
    };
  }
  workload::ClosedLoopDriver driver(sim, target_ptrs, std::move(source));

  // Warm up outside the stats window, then reset and measure.
  Nanos window_start = 0;
  auto results = driver.Run(warmup, measure, [&] {
    deployment.ResetStats();
    window_start = sim.now();
  });

  RunOutput out;
  out.setup_name = options.name;
  out.num_namenodes = config.num_namenodes;
  out.results = std::move(results);

  // ---- resource statistics over the measurement window ----
  auto& ndb = deployment.ndb();
  auto& net = deployment.network();
  const double secs = ToSeconds(sim.now() - window_start);
  const double mb = 1e6;

  ResourceStats& r = out.resources;
  r.ndb_threads = ndb.AverageThreadUtilization(window_start);
  r.ndb_cpu_util = r.ndb_threads.average();

  int alive_ndb = 0;
  for (int n = 0; n < ndb.num_datanodes(); ++n) {
    auto& dn = ndb.datanode(n);
    if (!dn.alive()) continue;
    ++alive_ndb;
    const auto& hs = net.host_stats(dn.host());
    r.ndb_net_read_mbps += static_cast<double>(hs.bytes_received);
    r.ndb_net_write_mbps += static_cast<double>(hs.bytes_sent);
    r.ndb_disk_read_mbps += static_cast<double>(dn.disk().stats().bytes_read);
    r.ndb_disk_write_mbps +=
        static_cast<double>(dn.disk().stats().bytes_written);
  }
  if (alive_ndb > 0 && secs > 0) {
    const double d = alive_ndb * secs * mb;
    r.ndb_net_read_mbps /= d;
    r.ndb_net_write_mbps /= d;
    r.ndb_disk_read_mbps /= d;
    r.ndb_disk_write_mbps /= d;
  }

  int alive_nn = 0;
  for (const auto& nn : deployment.namenodes()) {
    if (!nn->alive()) continue;
    ++alive_nn;
    r.nn_cpu_util += nn->cpu_pool().Utilization(window_start);
    const auto& hs = net.host_stats(nn->host());
    r.nn_net_read_mbps += static_cast<double>(hs.bytes_received);
    r.nn_net_write_mbps += static_cast<double>(hs.bytes_sent);
    out.txn_retries += nn->txn_retries();
  }
  if (alive_nn > 0) {
    r.nn_cpu_util /= alive_nn;
    if (secs > 0) {
      r.nn_net_read_mbps /= alive_nn * secs * mb;
      r.nn_net_write_mbps /= alive_nn * secs * mb;
    }
  }
  if (secs > 0) {
    r.inter_az_mbps = static_cast<double>(net.inter_az_bytes()) / (secs * mb);
    r.intra_az_mbps = static_cast<double>(net.intra_az_bytes()) / (secs * mb);
  }

  Nanos wait_ns = 0;
  for (int n = 0; n < ndb.num_datanodes(); ++n) {
    auto& locks = ndb.datanode(n).locks();
    out.lock_grants += locks.total_grants();
    out.lock_waits += locks.total_waits();
    out.lock_timeouts += locks.total_timeouts();
    wait_ns += locks.total_wait_ns();
  }
  if (out.lock_waits > 0) {
    out.avg_lock_wait_ms = ToMillis(wait_ns) / static_cast<double>(out.lock_waits);
  }

  out.replica_reads = ndb.reads_per_replica();
  out.replica_chains.reserve(out.replica_reads.size());
  for (ndb::PartitionId p = 0;
       p < static_cast<ndb::PartitionId>(out.replica_reads.size()); ++p) {
    out.replica_chains.push_back(ndb.layout().ReplicaChain(p));
  }
  for (int n = 0; n < ndb.num_datanodes(); ++n) {
    out.ndb_node_az.push_back(ndb.layout().az_of(n));
  }
  return out;
}

void PrintHeader(const std::string& title, const std::string& figure) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", figure.c_str());
  std::printf("Scale: %s (set REPRO_FULL=1 for the full sweep)\n",
              FullScale() ? "FULL" : "quick");
  std::printf("================================================================\n");
}

std::string Mops(double ops_per_sec) {
  if (ops_per_sec >= 1e6) return StrFormat("%.2fM", ops_per_sec / 1e6);
  if (ops_per_sec >= 1e3) return StrFormat("%.0fK", ops_per_sec / 1e3);
  return StrFormat("%.0f", ops_per_sec);
}

}  // namespace repro::bench
