// Figure 7: throughput of the most popular file-system operations
// (mkdir, createFile, deleteFile, readFile) with 60 metadata servers.
//
// Shape targets (paper): raising metadata replication 2->3 costs
// mutation throughput (up to 45% in one AZ, ~23% across three) but reads
// gain slightly (+6%); HopsFS-CL beats CephFS by up to 11.8x on
// mutations; CephFS wins reads by 1.9x thanks to the kernel cache, and
// loses by 81x once the cache is skipped.
#include <cstdio>

#include "bench_common.h"
#include "util/strings.h"
#include "cephfs_bench_common.h"

namespace repro::bench {
namespace {

using workload::FsOp;

double OpsPerSec(const workload::DriverResults& r, FsOp op) {
  auto it = r.per_op.find(op);
  if (it == r.per_op.end()) return 0;
  return static_cast<double>(it->second.count()) / ToSeconds(r.window);
}

void Main() {
  const int servers = FixedServerCount();
  PrintHeader(StrFormat("Micro-benchmark throughput, %d metadata servers",
                        servers),
              "Figure 7");

  const FsOp ops[] = {FsOp::kMkdir, FsOp::kCreate, FsOp::kDelete,
                      FsOp::kOpenRead};
  const char* op_names[] = {"mkdir", "createFile", "deleteFile", "readFile"};

  std::printf("\n%-22s%12s%12s%12s%12s\n", "setup", op_names[0], op_names[1],
              op_names[2], op_names[3]);

  for (auto setup : AllHopsFsSetups()) {
    std::printf("%-22s", hopsfs::PaperSetupName(setup));
    std::fflush(stdout);
    for (FsOp op : ops) {
      RunConfig cfg;
      cfg.setup = setup;
      cfg.num_namenodes = servers;
      cfg.op_source_factory = MicroOpSourceFactory(op);
      const auto out = RunHopsFsWorkload(cfg);
      std::printf("%12s", Mops(OpsPerSec(out.results, op)).c_str());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  for (auto variant : AllCephVariants()) {
    std::printf("%-22s", CephVariantName(variant));
    std::fflush(stdout);
    for (FsOp op : ops) {
      CephRunConfig cfg;
      cfg.variant = variant;
      cfg.num_mds = servers;
      cfg.op_source_factory = MicroOpSourceFactory(op);
      const auto out = RunCephWorkload(cfg);
      std::printf("%12s", Mops(OpsPerSec(out.results, op)).c_str());
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf(
      "\nPaper shapes: replication 3 costs mutations up to 45%% (1 AZ) /\n"
      "23%% (3 AZs) but gains ~6%% on reads; HopsFS-CL up to 11.8x CephFS\n"
      "on mutations; CephFS reads 1.9x faster via kernel cache (81x slower\n"
      "with SkipKCache).\n");
}

}  // namespace
}  // namespace repro::bench

int main() {
  repro::bench::Main();
  return 0;
}
