// Figure 14: reads served by each replica of the first 24 partitions,
// with the Read Backup table option enabled vs disabled (§V-E).
//
// Shape targets (paper): with Read Backup disabled every read goes to the
// primary replica (which may not be AZ-local); enabled, reads split
// roughly 50% primary / 25% / 25% across the three replicas — i.e. the
// committed reads became AZ-local while locked reads still pin to the
// primary.
#include <cstdio>

#include "bench_common.h"

namespace repro::bench {
namespace {

void RunCase(bool read_backup) {
  RunConfig cfg;
  cfg.setup = hopsfs::PaperSetup::kHopsFsCl_3_3;
  cfg.num_namenodes = FullScale() ? 24 : 12;
  cfg.tweak = [read_backup](hopsfs::DeploymentOptions& o) {
    o.override_read_backup = read_backup ? 1 : 0;
  };
  const auto out = RunHopsFsWorkload(cfg);

  std::printf("\n--- Read Backup %s ---\n", read_backup ? "ENABLED"
                                                        : "DISABLED");
  std::printf("%-10s%12s%12s%12s%12s\n", "partition", "primary", "backup1",
              "backup2", "reads");
  double sum_primary = 0, sum_b1 = 0, sum_b2 = 0;
  int used = 0;
  for (int p = 0; p < 24 && p < static_cast<int>(out.replica_reads.size());
       ++p) {
    const auto& counts = out.replica_reads[p];
    const int64_t total = counts[0] + counts[1] + counts[2];
    if (total == 0) {
      std::printf("%-10d%12s%12s%12s%12d\n", p, "-", "-", "-", 0);
      continue;
    }
    const double f0 = 100.0 * counts[0] / total;
    const double f1 = 100.0 * counts[1] / total;
    const double f2 = 100.0 * counts[2] / total;
    std::printf("%-10d%11.1f%%%11.1f%%%11.1f%%%12lld\n", p, f0, f1, f2,
                static_cast<long long>(total));
    sum_primary += f0;
    sum_b1 += f1;
    sum_b2 += f2;
    ++used;
  }
  if (used > 0) {
    std::printf("%-10s%11.1f%%%11.1f%%%11.1f%%\n", "average",
                sum_primary / used, sum_b1 / used, sum_b2 / used);
  }
}

void Main() {
  PrintHeader("Reads per partition replica with/without Read Backup",
              "Figure 14");
  RunCase(/*read_backup=*/true);
  RunCase(/*read_backup=*/false);
  std::printf(
      "\nPaper: disabled -> 100%% of reads on the primary; enabled -> the\n"
      "expected ~50%% primary / 25%% / 25%% split (locked reads pin to the\n"
      "primary, committed reads go AZ-local).\n");
}

}  // namespace
}  // namespace repro::bench

int main() {
  repro::bench::Main();
  return 0;
}
