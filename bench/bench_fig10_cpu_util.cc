// Figure 10: average CPU utilisation (a) per metadata storage node (NDB
// datanode / Ceph OSD) and (b) per metadata server (NN / MDS), sweeping
// the number of metadata servers.
//
// Shape targets (paper): NDB CPU rises then plateaus after ~12 NNs; OSD
// CPU stays flat; HopsFS namenodes drive all their cores while the
// single-threaded Ceph MDS cannot.
#include <cstdio>

#include "bench_common.h"
#include "cephfs_bench_common.h"

namespace repro::bench {
namespace {

void Main() {
  PrintHeader("CPU utilisation per storage node / metadata server (%)",
              "Figure 10");

  const auto counts = ResourceSweepCounts();

  std::printf("\n(a) per metadata storage node\n%-22s", "setup");
  for (int n : counts) std::printf("%10d", n);
  std::printf("\n");
  std::vector<std::vector<double>> nn_cpu;
  std::vector<std::string> names;
  for (auto setup : AllHopsFsSetups()) {
    std::printf("%-22s", hopsfs::PaperSetupName(setup));
    std::fflush(stdout);
    names.push_back(hopsfs::PaperSetupName(setup));
    nn_cpu.emplace_back();
    for (int n : counts) {
      RunConfig cfg;
      cfg.setup = setup;
      cfg.num_namenodes = n;
      const auto out = RunHopsFsWorkload(cfg);
      std::printf("%10.1f", 100 * out.resources.ndb_cpu_util);
      nn_cpu.back().push_back(100 * out.resources.nn_cpu_util);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  for (auto variant : AllCephVariants()) {
    std::printf("%-22s", CephVariantName(variant));
    std::fflush(stdout);
    names.push_back(CephVariantName(variant));
    nn_cpu.emplace_back();
    for (int n : counts) {
      CephRunConfig cfg;
      cfg.variant = variant;
      cfg.num_mds = n;
      const auto out = RunCephWorkload(cfg);
      std::printf("%10.1f", 100 * out.osd_cpu_util);
      nn_cpu.back().push_back(100 * out.mds_cpu_util);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("\n(b) per metadata server\n%-22s", "setup");
  for (int n : counts) std::printf("%10d", n);
  std::printf("\n");
  for (size_t i = 0; i < names.size(); ++i) {
    std::printf("%-22s", names[i].c_str());
    for (double v : nn_cpu[i]) std::printf("%10.1f", v);
    std::printf("\n");
  }

  std::printf(
      "\nPaper shapes: NDB CPU plateaus after ~12 NNs; OSD CPU ~constant;\n"
      "multi-threaded NNs use their cores, the single-threaded MDS with a\n"
      "global lock cannot.\n");
}

}  // namespace
}  // namespace repro::bench

int main() {
  repro::bench::Main();
  return 0;
}
