// Scheduler core benchmark: timer-wheel engine vs the frozen pre-wheel
// binary-heap engine (sim/legacy_engine.h), on the workloads that dominate
// every figure in this reproduction.
//
// Scenarios:
//   * heartbeat_10k  — 10,000 hosts each heartbeating on a staggered
//     ~1 s timer plus per-tick one-shot churn, 60 simulated seconds. Run
//     on BOTH engines; the committed speedup in BENCH_sim_engine.json is
//     asserted to stay >= 5x (the ISSUE-8 acceptance bar).
//   * million_client — 1,000,000 open-loop clients issuing ops with
//     exponential think time while 10,000 hosts heartbeat at 100 ms, 10
//     simulated seconds (~7M events). Wheel engine only; reports
//     events/sec, wall time and peak RSS. This is the planet-scale
//     headline ROADMAP item 1 gates on.
//
// Regression gate (CI `sim-perf-smoke`): with REPRO_BENCH_BASELINE set to
// the committed BENCH_sim_engine.json, the bench fails if the measured
// wheel events/sec drop more than 20% below the baseline after
// normalising for machine speed by the legacy engine's ratio
// (measured_legacy / baseline_legacy) — so a slow CI runner doesn't
// false-positive and a real scheduler regression can't hide behind one.
//
// REPRO_BENCH_JSON overrides the output path (default working directory).
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_host.h"
#include "sim/engine.h"
#include "sim/legacy_engine.h"
#include "util/rng.h"
#include "util/time.h"

namespace repro::bench {
namespace {

double WallSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Engine rates are computed from CPU seconds (bench_host.h), not wall
// seconds: shared CI runners steal the single vCPU for whole scheduling
// quanta, and wall-clock rates swing 2x run-to-run under that noise while
// CPU-second rates hold steady. For a single-threaded bench the two agree
// on an idle machine.

// ---- Scenario 1: heartbeat-heavy 10k hosts --------------------------------

struct HeartbeatResult {
  uint64_t events = 0;
  double cpu_sec = 0;
  double eps = 0;
};

// Every host carries the timer complement a real fleet node does: a
// 100 ms heartbeat (staggered so ticks spread over the interval), a
// 250 ms gossip round, a 500 ms lease renewal, a 1 s redo flush, a 10 s
// telemetry scrape, and a 60 s checkpoint tick; every 8th heartbeat
// schedules a short-lived one-shot (an ack/timeout pattern) so the run
// also exercises the one-shot path. Six timers per host keep a 60k-event
// standing population pending at all times — the O(hosts) load that
// churns a comparison-based queue (every sift walks random lines of a
// multi-megabyte heap) but costs a wheel nothing. Identical code drives
// both engines.
template <typename Sim>
HeartbeatResult RunHeartbeats(int hosts, Nanos sim_horizon) {
  Sim sim(7);
  uint64_t ticks = 0;
  uint64_t acks = 0;
  std::vector<typename Sim::PeriodicHandle> handles;
  handles.reserve(6 * hosts);
  Rng stagger(42);
  for (int h = 0; h < hosts; ++h) {
    const Nanos interval =
        Millis(100) + Micros(static_cast<int64_t>(stagger.NextBelow(10000)));
    handles.push_back(sim.Every(interval, [&sim, &ticks, &acks] {
      if (++ticks % 8 == 0) {
        sim.After(Millis(5), [&acks] { ++acks; });
      }
    }));
    handles.push_back(sim.Every(
        Millis(250) + Micros(static_cast<int64_t>(stagger.NextBelow(25000))),
        [&ticks] { ++ticks; }));
    handles.push_back(sim.Every(
        Millis(500) + Micros(static_cast<int64_t>(stagger.NextBelow(50000))),
        [&ticks] { ++ticks; }));
    handles.push_back(sim.Every(
        Seconds(1) + Micros(static_cast<int64_t>(stagger.NextBelow(100000))),
        [&ticks] { ++ticks; }));
    handles.push_back(sim.Every(
        Seconds(10) + Micros(static_cast<int64_t>(stagger.NextBelow(100000))),
        [&ticks] { ++ticks; }));
    handles.push_back(sim.Every(
        Seconds(60) + Micros(static_cast<int64_t>(stagger.NextBelow(100000))),
        [&ticks] { ++ticks; }));
  }
  const double c0 = CpuSeconds();
  sim.RunUntil(sim_horizon);
  const double c1 = CpuSeconds();
  HeartbeatResult r;
  r.events = sim.events_processed();
  r.cpu_sec = c1 - c0;
  r.eps = static_cast<double>(r.events) / r.cpu_sec;
  return r;
}

// ---- Scenario 2: million-client open-loop ---------------------------------

struct MillionResult {
  uint64_t events = 0;
  double wall_sec = 0;
  double eps = 0;
  double peak_rss_mb = 0;
};

// Each client is an open-loop arrival chain: issue an op (which completes
// via a 1 ms one-shot), then re-arm after exponential think time —
// arrivals never wait for completions. 10k hosts heartbeat at 100 ms
// underneath, like a serving fleet under the paper's Spotify workload.
MillionResult RunMillionClients(int clients, int hosts, Nanos sim_horizon) {
  Simulation sim(11);
  uint64_t ops = 0;
  uint64_t beats = 0;
  const double think_mean_ns = 2e9;  // ~5 ops per client over 10 s

  std::vector<Simulation::PeriodicHandle> handles;
  handles.reserve(hosts);
  for (int h = 0; h < hosts; ++h) {
    const Nanos interval = Millis(100) + Micros(h % 1000);
    handles.push_back(sim.Every(interval, [&beats] { ++beats; }));
  }

  struct Client {
    Simulation* sim;
    uint64_t* ops;
    Nanos horizon;
    double think_mean_ns;
    void Arm(Nanos delay) {
      sim->After(delay, [this] {
        ++*ops;
        sim->After(Millis(1), [] {});  // op completion
        const Nanos think =
            static_cast<Nanos>(sim->rng().NextExp(think_mean_ns));
        if (sim->now() + think < horizon) Arm(think);
      });
    }
  };
  Client client{&sim, &ops, sim_horizon, think_mean_ns};
  Rng arrivals(1234);
  for (int c = 0; c < clients; ++c) {
    // First arrivals spread uniformly over one think time.
    client.Arm(static_cast<Nanos>(arrivals.NextBelow(
        static_cast<uint64_t>(think_mean_ns))));
  }

  const double t0 = WallSeconds();
  sim.RunUntil(sim_horizon);
  const double t1 = WallSeconds();
  MillionResult r;
  r.events = sim.events_processed();
  r.wall_sec = t1 - t0;
  r.eps = static_cast<double>(r.events) / r.wall_sec;
  r.peak_rss_mb = PeakRssMb();
  std::printf("  (ops=%llu heartbeats=%llu)\n",
              static_cast<unsigned long long>(ops),
              static_cast<unsigned long long>(beats));
  return r;
}

// ---- Baseline comparison ---------------------------------------------------

// Minimal extraction of "key": <number> from a JSON file we wrote
// ourselves; no general parser needed.
bool FindJsonNumber(const std::string& text, const char* key, double* out) {
  const std::string needle = std::string("\"") + key + "\": ";
  const size_t pos = text.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(text.c_str() + pos + needle.size(), nullptr);
  return true;
}

int CheckBaseline(double wheel_eps, double legacy_eps) {
  const char* path = std::getenv("REPRO_BENCH_BASELINE");
  if (path == nullptr || path[0] == '\0') {
    std::printf("baseline gate: REPRO_BENCH_BASELINE unset, skipping\n");
    return 0;
  }
  FILE* f = std::fopen(path, "r");
  if (f == nullptr) {
    std::printf("FAIL: cannot read baseline %s\n", path);
    return 1;
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);

  double base_wheel = 0, base_legacy = 0;
  if (!FindJsonNumber(text, "wheel_eps", &base_wheel) ||
      !FindJsonNumber(text, "legacy_eps", &base_legacy)) {
    std::printf("FAIL: baseline %s missing wheel_eps/legacy_eps\n", path);
    return 1;
  }
  // Normalise for machine speed: this runner is (legacy_eps/base_legacy)x
  // as fast as the one that produced the baseline, so expect the wheel to
  // scale the same way. >20% below that is a genuine scheduler regression.
  const double machine = legacy_eps / base_legacy;
  const double expected = base_wheel * machine;
  const double floor = 0.8 * expected;
  std::printf(
      "baseline gate: wheel %.2fM eps vs floor %.2fM eps "
      "(baseline %.2fM, machine factor %.2fx)\n",
      wheel_eps / 1e6, floor / 1e6, base_wheel / 1e6, machine);
  if (wheel_eps < floor) {
    std::printf("FAIL: events/sec regressed >20%% vs committed baseline\n");
    return 1;
  }
  std::printf("  [pass] within 20%% of committed baseline\n");
  return 0;
}

int WriteBenchJson(int hosts, const HeartbeatResult& wheel,
                   const HeartbeatResult& legacy, double speedup, int clients,
                   const MillionResult& million) {
  std::string path = "BENCH_sim_engine.json";
  if (const char* env = std::getenv("REPRO_BENCH_JSON")) path = env;
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("FAIL: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"bench\": \"sim_engine\",\n"
      "  \"heartbeat_10k\": {\"hosts\": %d, \"sim_seconds\": 60, "
      "\"events\": %llu, \"wheel_eps\": %.0f, \"legacy_eps\": %.0f, "
      "\"speedup\": %.2f},\n"
      "  \"million_client\": {\"clients\": %d, \"hosts\": 10000, "
      "\"sim_seconds\": 10, \"events\": %llu, \"eps\": %.0f, "
      "\"wall_sec\": %.2f, \"peak_rss_mb\": %.1f}\n"
      "}\n",
      hosts, static_cast<unsigned long long>(wheel.events), wheel.eps,
      legacy.eps, speedup, clients,
      static_cast<unsigned long long>(million.events), million.eps,
      million.wall_sec, million.peak_rss_mb);
  std::fclose(f);
  std::printf("headline numbers -> %s\n", path.c_str());
  return 0;
}

int Main() {
  std::printf(
      "==============================================================\n"
      " DES core: timer wheel + event pool vs pre-wheel binary heap\n"
      " (ROADMAP item 1 / ISSUE 8 acceptance)\n"
      "==============================================================\n\n");
  int rc = 0;

  const int kHosts = 10000;
  const Nanos kHorizon = Seconds(60);
  const int kReps = 3;
  std::printf("heartbeat_10k: %d hosts, 60 simulated seconds, best of %d\n",
              kHosts, kReps);
  // Run the million-client scenario last so peak RSS is attributed to it;
  // the heartbeat runs are small (10k timers). Interleave the engines and
  // keep each one's best repetition: the minimum wall time is the least
  // noise-contaminated estimate of what the machine can do, which keeps
  // the speedup ratio stable on shared CI runners.
  HeartbeatResult legacy, wheel;
  for (int rep = 0; rep < kReps; ++rep) {
    const HeartbeatResult l = RunHeartbeats<LegacySimulation>(kHosts, kHorizon);
    if (rep == 0 || l.eps > legacy.eps) legacy = l;
    const HeartbeatResult w = RunHeartbeats<Simulation>(kHosts, kHorizon);
    if (rep == 0 || w.eps > wheel.eps) wheel = w;
  }
  std::printf(
      "  legacy heap : %8llu events in %6.2f cpu-s = %6.2fM events/sec\n",
      static_cast<unsigned long long>(legacy.events), legacy.cpu_sec,
      legacy.eps / 1e6);
  std::printf(
      "  timer wheel : %8llu events in %6.2f cpu-s = %6.2fM events/sec\n",
      static_cast<unsigned long long>(wheel.events), wheel.cpu_sec,
      wheel.eps / 1e6);
  if (wheel.events != legacy.events) {
    std::printf("FAIL: engines disagree on event count (%llu vs %llu)\n",
                static_cast<unsigned long long>(wheel.events),
                static_cast<unsigned long long>(legacy.events));
    rc = 1;
  }
  const double speedup = wheel.eps / legacy.eps;
  std::printf("  speedup     : %.2fx\n", speedup);
  if (speedup < 5.0) {
    std::printf("FAIL: acceptance requires >= 5x over the pre-wheel engine\n");
    rc = 1;
  } else {
    std::printf("  [pass] >= 5x events/sec over the pre-wheel engine\n");
  }

  const int kClients = 1000000;
  std::printf("\nmillion_client: %d open-loop clients + 10000 hosts "
              "heartbeating, 10 simulated seconds\n", kClients);
  const MillionResult million =
      RunMillionClients(kClients, 10000, Seconds(10));
  std::printf(
      "  timer wheel : %8llu events in %6.2fs = %6.2fM events/sec, "
      "peak RSS %.0f MB\n",
      static_cast<unsigned long long>(million.events), million.wall_sec,
      million.eps / 1e6, million.peak_rss_mb);

  rc |= CheckBaseline(wheel.eps, legacy.eps);
  rc |= WriteBenchJson(kHosts, wheel, legacy, speedup, kClients, million);
  std::printf("\nRESULT: %s\n", rc == 0 ? "scheduler core holds every bar"
                                        : "EXPECTATION VIOLATED");
  return rc;
}

}  // namespace
}  // namespace repro::bench

int main() { return repro::bench::Main(); }
