// Table I: measured round-trip latencies between VMs in different AZs of
// the us-west1 region. We "ping" between simulated hosts and report the
// measured RTT matrix next to the paper's numbers.
#include <cstdio>

#include "bench_common.h"
#include "sim/engine.h"
#include "util/strings.h"
#include "sim/network.h"
#include "sim/topology.h"

namespace repro::bench {
namespace {

void Main() {
  PrintHeader("Inter-AZ round-trip latency matrix (us-west1)", "Table I");

  Simulation sim(1);
  Topology topo(3, AzLatencyTable::UsWest1());
  Network net(sim, topo);

  // One VM per AZ plus a second VM in each AZ for the intra-AZ pings.
  HostId a[3], b[3];
  for (AzId az = 0; az < 3; ++az) {
    a[az] = topo.AddHost(az, StrFormat("vm-a-%d", az));
    b[az] = topo.AddHost(az, StrFormat("vm-b-%d", az));
  }

  const char* names[3] = {"us-west1-a", "us-west1-b", "us-west1-c"};
  const double paper[3][3] = {{0.247, 0.360, 0.372},
                              {0.360, 0.251, 0.399},
                              {0.372, 0.399, 0.249}};

  double measured[3][3] = {};
  constexpr int kPings = 200;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      const HostId src = a[i];
      const HostId dst = i == j ? b[j] : a[j];
      auto total = std::make_shared<Nanos>(0);
      // Sequential pings, like the ping tool: one in flight at a time.
      auto ping = std::make_shared<std::function<void(int)>>();
      *ping = [&net, &sim, src, dst, total, ping](int remaining) {
        if (remaining == 0) {
          *ping = nullptr;
          return;
        }
        const Nanos start = sim.now();
        net.Send(src, dst, 64,
                 [&net, &sim, src, dst, start, total, ping, remaining] {
                   net.Send(dst, src, 64, [&sim, start, total, ping,
                                           remaining] {
                     *total += sim.now() - start;
                     (*ping)(remaining - 1);
                   });
                 });
      };
      (*ping)(kPings);
      sim.Run();
      measured[i][j] = ToMillis(*total / kPings);
    }
  }

  std::printf("\n%-12s %28s        %28s\n", "", "measured RTT (ms)",
              "paper RTT (ms)");
  std::printf("%-12s %9s%9s%9s   %9s%9s%9s\n", "", "a", "b", "c", "a", "b",
              "c");
  for (int i = 0; i < 3; ++i) {
    std::printf("%-12s ", names[i]);
    for (int j = 0; j < 3; ++j) std::printf("%9.3f", measured[i][j]);
    std::printf("   ");
    for (int j = 0; j < 3; ++j) std::printf("%9.3f", paper[i][j]);
    std::printf("\n");
  }
  std::printf(
      "\nIntra-AZ RTTs ~0.25 ms, inter-AZ 0.36-0.40 ms; the simulator's\n"
      "latency model is seeded from the paper's table (+-5%% jitter).\n");
}

}  // namespace
}  // namespace repro::bench

int main() {
  repro::bench::Main();
  return 0;
}
