#include "bench_host.h"

#include <sys/resource.h>

#include "prof/profiler.h"

namespace repro::bench {

double PeakRssMb() {
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux: KiB
}

double CpuSeconds() {
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_utime.tv_sec + ru.ru_stime.tv_sec) +
         static_cast<double>(ru.ru_utime.tv_usec + ru.ru_stime.tv_usec) / 1e6;
}

AllocSnapshot AllocsNow() {
  const prof::AllocTotals t = prof::TotalAllocs();
  return AllocSnapshot{t.count, t.bytes};
}

}  // namespace repro::bench
