// Ablation: which of HopsFS-CL's AZ-awareness mechanisms (§IV) buys what?
// Starting from the full HopsFS-CL (3,3) deployment, each row disables
// exactly one mechanism:
//   * Read Backup tables + delayed commit ack (§IV-A3),
//   * AZ-aware TC selection & read routing (§IV-A4/5),
//   * AZ-local namenode selection by clients (§IV-B3),
// and the last row disables all three (= vanilla HopsFS (3,3)).
#include <cstdio>

#include "bench_common.h"

namespace repro::bench {
namespace {

struct Variant {
  const char* name;
  int read_backup;   // -1 keep, 0 off
  int az_tc;
  int az_nn;
};

void Main() {
  PrintHeader("AZ-awareness feature ablation on HopsFS-CL (3,3)",
              "design-choice ablation (DESIGN.md §6)");

  const int nns = FixedServerCount();
  const Variant variants[] = {
      {"full HopsFS-CL", -1, -1, -1},
      {"- read backup", 0, -1, -1},
      {"- AZ-aware TC/read routing", -1, 0, -1},
      {"- AZ-local NN selection", -1, -1, 0},
      {"none (= HopsFS 3,3)", 0, 0, 0},
  };

  std::printf("\n%-30s%12s%12s%14s\n", "variant", "ops/s", "mean ms",
              "interAZ MB/s");
  double baseline = 0;
  for (const auto& v : variants) {
    RunConfig cfg;
    cfg.setup = hopsfs::PaperSetup::kHopsFsCl_3_3;
    cfg.num_namenodes = nns;
    cfg.tweak = [&v](hopsfs::DeploymentOptions& o) {
      o.override_read_backup = v.read_backup;
      o.override_az_tc_selection = v.az_tc;
      o.override_az_nn_selection = v.az_nn;
    };
    const auto out = RunHopsFsWorkload(cfg);
    const double tput = out.results.ops_per_sec();
    if (baseline == 0) baseline = tput;
    std::printf("%-30s%12s%12.2f%14.1f   (%+.1f%%)\n", v.name,
                Mops(tput).c_str(), out.results.all.MeanMillis(),
                out.resources.inter_az_mbps,
                100.0 * (tput - baseline) / baseline);
    std::fflush(stdout);
  }

  std::printf(
      "\nReading: read backup + AZ-aware routing carry most of the gain\n"
      "(they keep committed reads AZ-local); NN selection mostly trims\n"
      "client-to-NN latency and inter-AZ bytes.\n");
}

}  // namespace
}  // namespace repro::bench

int main() {
  repro::bench::Main();
  return 0;
}
