// Figure 9: 50th/90th/99th percentile latency of createFile, readFile and
// deleteFile in an unloaded cluster (~50% of peak load) with 60 metadata
// servers. Paper shape: CephFS delivers significantly lower unloaded
// latency than HopsFS/HopsFS-CL because most operations are served from
// the kernel cache or MDS memory.
#include <cstdio>

#include "bench_common.h"
#include "util/strings.h"
#include "cephfs_bench_common.h"

namespace repro::bench {
namespace {

using workload::FsOp;

struct Pcts {
  double p50, p90, p99;
};

Pcts PctOf(const workload::DriverResults& r, FsOp op) {
  auto it = r.per_op.find(op);
  if (it == r.per_op.end() || it->second.count() == 0) return {0, 0, 0};
  const auto& h = it->second;
  return {ToMillis(h.Percentile(0.50)), ToMillis(h.Percentile(0.90)),
          ToMillis(h.Percentile(0.99))};
}

void Main() {
  const int servers = FixedServerCount();
  PrintHeader(
      StrFormat("Latency percentiles at ~50%% load, %d metadata servers",
                servers),
      "Figure 9");

  const FsOp ops[] = {FsOp::kCreate, FsOp::kOpenRead, FsOp::kDelete};
  const char* op_names[] = {"createFile", "readFile", "deleteFile"};
  // Half the default closed-loop population = ~50% load.
  const int half_clients = (FullScale() ? 64 : 32) / 2;

  for (int o = 0; o < 3; ++o) {
    std::printf("\n--- %s (ms) ---\n%-22s%10s%10s%10s\n", op_names[o],
                "setup", "p50", "p90", "p99");
    for (auto setup : AllHopsFsSetups()) {
      RunConfig cfg;
      cfg.setup = setup;
      cfg.num_namenodes = servers;
      cfg.clients_per_nn = half_clients;
      cfg.op_source_factory = MicroOpSourceFactory(ops[o]);
      const auto out = RunHopsFsWorkload(cfg);
      const Pcts p = PctOf(out.results, ops[o]);
      std::printf("%-22s%10.2f%10.2f%10.2f\n",
                  hopsfs::PaperSetupName(setup), p.p50, p.p90, p.p99);
      std::fflush(stdout);
    }
    for (auto variant : AllCephVariants()) {
      CephRunConfig cfg;
      cfg.variant = variant;
      cfg.num_mds = servers;
      cfg.clients_per_mds = half_clients;
      cfg.op_source_factory = MicroOpSourceFactory(ops[o]);
      const auto out = RunCephWorkload(cfg);
      const Pcts p = PctOf(out.results, ops[o]);
      std::printf("%-22s%10.2f%10.2f%10.2f\n", CephVariantName(variant),
                  p.p50, p.p90, p.p99);
      std::fflush(stdout);
    }
  }

  std::printf(
      "\nPaper shape: unloaded CephFS percentiles sit well below HopsFS /\n"
      "HopsFS-CL (kernel cache + in-memory MDS); the gap inverts under\n"
      "full load (Fig. 8).\n");
}

}  // namespace
}  // namespace repro::bench

int main() {
  repro::bench::Main();
  return 0;
}
