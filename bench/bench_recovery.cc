// Crash-recovery bench: redo-journal replay cost, recovery-time scaling,
// and restart-fault soaks.
//
// Three parts, all deterministic:
//
//   1. A pinned crash -> replay -> resync -> verify episode on a bare NDB
//      cluster, printing the phase-by-phase recovery timeline and the
//      replay-determinism audit (two replays of the same journal must
//      produce byte-identical row images).
//
//   2. Recovery-time scaling: the same crash against growing redo logs
//      (no LCP, so the whole log replays). Recovery time must be linear
//      in the replay work — the points land on a line (max residual
//      printed, CSV recovery_scaling.csv).
//
//   3. The durability loss window: a whole-cluster crash right after a
//      commit burst. The recovery cut is epoch-exact, so everything lost
//      is younger than flush-interval + GCP-interval (plus epoch-close
//      slack) — the age of the oldest dropped record is printed and
//      bounded.
//
//   4. Streaming catch-up availability: a rejoining node under a real
//      resync backlog must serve committed reads for already-resynced
//      partitions BEFORE it is fully alive (mid-resync reads > 0).
//
//   5. A restart-fault chaos soak: seeded schedules restricted to node
//      crash/restart, recovery storms (re-crashing nodes that are still
//      replaying) and grey-slow redo-log disks, full invariant check per
//      seed — including the bounded-redo-backlog invariant. Zero
//      acked-commit loss expected with group commit at the default flush
//      interval. The per-recovery timeline goes to recovery_timeline.csv
//      — the CI recovery-smoke artifact.
//
// The headline numbers land in BENCH_recovery.json (REPRO_BENCH_JSON
// overrides the path) — sim-time quantities only, byte-identical across
// runs, except the "host" section (peak RSS + allocation totals from
// bench_host.h) which is machine-dependent and informational. REPRO_RECOVERY_SEEDS=n overrides the soak seed count;
// REPRO_FULL=1 runs the 40-seed version. Non-zero exit on any violated
// expectation.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "bench_host.h"
#include "prof/profiler.h"
#include "chaos/harness.h"
#include "metrics/timeseries.h"
#include "ndb/client.h"
#include "ndb/cluster.h"
#include "util/strings.h"

namespace repro::bench {
namespace {

int SoakSeeds() {
  if (const char* env = std::getenv("REPRO_RECOVERY_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return FullScale() ? 40 : 12;
}

// JSON fragments assembled by the parts and written by Main. Every value
// is sim-time-derived, so the file is byte-identical across runs.
struct BenchJsonBits {
  std::string scaling;  // array body
  std::string loss;     // object body
  std::string catchup;  // object body
  std::string soak;     // object body
};
BenchJsonBits g_json;

// Bare NDB cluster + API node for the journal-level parts.
struct MicroCluster {
  explicit MicroCluster(ndb::NdbNodeConfig node_config = {}) {
    sim = std::make_unique<Simulation>(7);
    topology = std::make_unique<Topology>(3, AzLatencyTable::UsWest1());
    topology->set_jitter_fraction(0);
    network = std::make_unique<Network>(*sim, *topology);
    ndb::TableDef inodes;
    inodes.name = "inodes";
    inodes.part_key = ndb::PartKeyRule::kPrefixBeforeSlash;
    inodes.read_backup = true;
    table = catalog.AddTable(inodes);
    ndb::NdbClusterConfig config;
    config.layout.num_datanodes = 6;
    config.layout.replication_factor = 3;
    config.layout.node_az = ndb::AssignNodeAzs(6, 3, {0, 1, 2});
    config.layout.num_ldm_threads = 4;
    config.flags.az_aware = true;
    config.node = node_config;
    cluster = std::make_unique<ndb::NdbCluster>(*sim, *network, &catalog,
                                                config);
    cluster->StartProtocols();
    api = std::make_unique<ndb::NdbApiNode>(
        *cluster, topology->AddHost(0, "api-0"), 0);
  }

  bool InsertCommit(const ndb::Key& key, const std::string& value) {
    const ndb::TxnId txn = api->Begin(table, key);
    bool ok = false, done = false;
    api->Insert(txn, table, key, value, [&](Code c) {
      if (c != Code::kOk) {
        api->Abort(txn);
        done = true;
        return;
      }
      api->Commit(txn, [&](Code c2) {
        ok = (c2 == Code::kOk);
        done = true;
      });
    });
    Drive(done);
    return ok;
  }

  // Upsert variant (overwrites an existing key); returns the txn id via
  // *out_txn so callers can correlate with recovery drop reports.
  bool UpsertCommit(const ndb::Key& key, const std::string& value,
                    ndb::TxnId* out_txn = nullptr) {
    const ndb::TxnId txn = api->Begin(table, key);
    if (out_txn != nullptr) *out_txn = txn;
    bool ok = false, done = false;
    api->Write(txn, table, key, value, [&](Code c) {
      if (c != Code::kOk) {
        api->Abort(txn);
        done = true;
        return;
      }
      api->Commit(txn, [&](Code c2) {
        ok = (c2 == Code::kOk);
        done = true;
      });
    });
    Drive(done);
    return ok;
  }

  void Drive(bool& flag, Nanos limit = 60 * kSecond) {
    const Nanos deadline = sim->now() + limit;
    while (!flag && sim->now() < deadline && !sim->Empty()) {
      sim->RunUntil(sim->now() + kMillisecond);
    }
  }

  ndb::Catalog catalog;
  ndb::TableId table = 0;
  std::unique_ptr<Simulation> sim;
  std::unique_ptr<Topology> topology;
  std::unique_ptr<Network> network;
  std::unique_ptr<ndb::NdbCluster> cluster;
  std::unique_ptr<ndb::NdbApiNode> api;
};

// Crash node 0, restart it, drive to completion; returns the stats.
const ndb::NdbCluster::RecoveryStats* CrashAndRecover(MicroCluster& mc) {
  mc.cluster->CrashDatanode(0);
  mc.sim->RunFor(kMillisecond);
  bool served = false;
  mc.cluster->RestartDatanode(0, [&] { served = true; });
  mc.Drive(served);
  if (!served || mc.cluster->recovery_log().empty()) return nullptr;
  return &mc.cluster->recovery_log().back();
}

int PinnedEpisode() {
  std::printf("--- pinned crash -> replay -> verify episode ---\n");
  MicroCluster mc;
  for (int i = 0; i < 120; ++i) {
    if (!mc.InsertCommit(StrFormat("%d/f", i), std::string(160, 'a'))) {
      std::printf("FAIL: commit %d rejected\n", i);
      return 1;
    }
  }
  mc.sim->RunFor(kSecond);  // flush + checkpoint at the default cadence
  const uint64_t before = mc.cluster->datanode(0).DigestStore();
  const auto* rec = CrashAndRecover(mc);
  if (rec == nullptr || rec->aborted) {
    std::printf("FAIL: recovery did not complete\n");
    return 1;
  }
  const uint64_t after = mc.cluster->datanode(0).DigestStore();
  std::printf(
      "  crash at %.3fs\n"
      "  replay:  %lld entries, %lld log + %lld image bytes -> done %.3fs "
      "(%.1f ms)\n"
      "  resync:  %lld rows, %lld bytes, %lld deletes from a group peer\n"
      "  serving: %.3fs (total %.1f ms, %d attempt(s))\n",
      ToSeconds(rec->started), static_cast<long long>(rec->replay_entries),
      static_cast<long long>(rec->replay_log_bytes),
      static_cast<long long>(rec->replay_image_bytes),
      ToSeconds(rec->replay_done),
      (rec->replay_done - rec->started) / 1e6,
      static_cast<long long>(rec->resync_rows),
      static_cast<long long>(rec->resync_bytes),
      static_cast<long long>(rec->resync_deletes), ToSeconds(rec->serving_at),
      (rec->serving_at - rec->started) / 1e6, rec->attempts);
  std::printf("  replay determinism: %s; durable-prefix coverage: %s; "
              "row image %s\n",
              rec->replay_deterministic ? "ok" : "VIOLATED",
              rec->replay_covered ? "ok" : "VIOLATED",
              after == before ? "byte-identical" : "DIVERGED");
  return (rec->replay_deterministic && rec->replay_covered &&
          after == before)
             ? 0
             : 1;
}

int ScalingCurve() {
  std::printf("\n--- recovery time vs log size (no LCP) ---\n");
  const int kCommits[] = {50, 100, 200, 400};
  std::vector<double> col_commits, col_entries, col_log_bytes, col_replay_ms,
      col_total_ms;
  for (const int commits : kCommits) {
    ndb::NdbNodeConfig node;
    node.lcp_interval = 1000 * kSecond;  // whole log must replay
    MicroCluster mc(node);
    for (int i = 0; i < commits; ++i) {
      if (!mc.InsertCommit(StrFormat("%d/f", i), std::string(160, 'b'))) {
        std::printf("FAIL: commit rejected\n");
        return 1;
      }
    }
    mc.sim->RunFor(kSecond);
    const auto* rec = CrashAndRecover(mc);
    if (rec == nullptr || rec->aborted) {
      std::printf("FAIL: recovery did not complete at %d commits\n", commits);
      return 1;
    }
    const double replay_ms = (rec->replay_done - rec->started) / 1e6;
    const double total_ms = (rec->serving_at - rec->started) / 1e6;
    std::printf("  %4d commits: %5lld entries %8lld log bytes -> replay "
                "%7.2f ms, serving %7.2f ms\n",
                commits, static_cast<long long>(rec->replay_entries),
                static_cast<long long>(rec->replay_log_bytes), replay_ms,
                total_ms);
    col_commits.push_back(commits);
    col_entries.push_back(static_cast<double>(rec->replay_entries));
    col_log_bytes.push_back(static_cast<double>(rec->replay_log_bytes));
    col_replay_ms.push_back(replay_ms);
    col_total_ms.push_back(total_ms);
    if (!g_json.scaling.empty()) g_json.scaling += ", ";
    g_json.scaling += StrFormat(
        "{\"commits\": %d, \"replay_entries\": %lld, \"replay_ms\": %.3f, "
        "\"total_ms\": %.3f}",
        commits, static_cast<long long>(rec->replay_entries), replay_ms,
        total_ms);
  }
  metrics::WriteCsv(metrics::CsvDir() + "/recovery_scaling.csv",
                    {{"commits", col_commits},
                     {"replay_entries", col_entries},
                     {"replay_log_bytes", col_log_bytes},
                     {"replay_ms", col_replay_ms},
                     {"total_ms", col_total_ms}});

  // Linearity: predict every interior point from the line through the
  // endpoints; replay cost is per-entry CPU + per-byte disk.
  const size_t last = col_entries.size() - 1;
  const double slope = (col_replay_ms[last] - col_replay_ms[0]) /
                       (col_entries[last] - col_entries[0]);
  double worst = 0;
  for (size_t i = 1; i < last; ++i) {
    const double predicted =
        col_replay_ms[0] + slope * (col_entries[i] - col_entries[0]);
    worst = std::max(worst, std::fabs(predicted - col_replay_ms[i]) /
                                col_replay_ms[i]);
  }
  std::printf("  linear fit through endpoints: max interior residual %.1f%% "
              "(must be < 20%%)\n",
              100 * worst);
  return worst < 0.2 ? 0 : 1;
}

int LossWindow() {
  std::printf("\n--- durability loss window (cluster crash after a commit "
              "burst) ---\n");
  MicroCluster mc;
  std::vector<std::pair<ndb::TxnId, Nanos>> acked;  // txn -> ack time
  for (int i = 0; i < 200; ++i) {
    ndb::TxnId txn = 0;
    if (!mc.UpsertCommit(StrFormat("%d/f", i), std::string(160, 'c'), &txn)) {
      std::printf("FAIL: commit %d rejected\n", i);
      return 1;
    }
    acked.emplace_back(txn, mc.sim->now());
    // Pace the burst across several GCP epochs so the head of it is
    // durable by the crash and only the tail falls past the cut.
    mc.sim->RunFor(20 * kMillisecond);
  }
  // Crash the whole cluster immediately: the freshest commits cannot be
  // durable yet, but the cut is transaction-exact and the loss is bounded
  // by the flush + GCP cadence (plus epoch-close slack).
  const Nanos crash_at = mc.sim->now();
  const auto report = mc.cluster->RecoverFromCheckpoint();
  const double loss_ms = report.loss_window / 1e6;
  const ndb::NdbNodeConfig defaults;
  const double bound_ms =
      (defaults.redo_flush_interval + 2 * defaults.gcp_interval) / 1e6 + 500;
  // Cross-check: every acked commit older than the loss window survived.
  int64_t old_lost = 0;
  for (const auto& [txn, at] : acked) {
    for (const ndb::TxnId dropped : report.dropped_txns) {
      if (txn == dropped && crash_at - at > report.loss_window) ++old_lost;
    }
  }
  std::printf(
      "  cut epoch %lld: %lld of %zu acked commits dropped, oldest loss "
      "%.1f ms before the crash (bound %.0f ms)\n"
      "  commits older than the window lost: %lld (must be 0); replay "
      "determinism: %s\n",
      static_cast<long long>(report.epoch),
      static_cast<long long>(report.dropped_commits), acked.size(), loss_ms,
      bound_ms, static_cast<long long>(old_lost),
      report.replay_deterministic ? "ok" : "VIOLATED");
  g_json.loss = StrFormat(
      "{\"acked_commits\": %zu, \"dropped_commits\": %lld, "
      "\"loss_window_ms\": %.3f, \"bound_ms\": %.0f}",
      acked.size(), static_cast<long long>(report.dropped_commits), loss_ms,
      bound_ms);
  return (loss_ms <= bound_ms && old_lost == 0 && report.replay_deterministic)
             ? 0
             : 1;
}

int CatchupAvailability() {
  std::printf("\n--- streaming catch-up: reads served mid-resync ---\n");
  ndb::NdbNodeConfig node;
  node.lcp_interval = 1000 * kSecond;  // big replay + big adopted image
  MicroCluster mc(node);
  auto& layout = mc.cluster->layout();
  std::vector<std::string> mine;  // keys node 0 replicates
  for (int i = 0; i < 400; ++i) {
    const std::string key = StrFormat("%d/f", i);
    if (!mc.InsertCommit(key, std::string(2048, 'd'))) {
      std::printf("FAIL: load commit rejected\n");
      return 1;
    }
    for (ndb::NodeId r :
         layout.ReplicaChain(layout.PartitionOf(mc.table, key))) {
      if (r == 0) {
        mine.push_back(key);
        break;
      }
    }
  }
  mc.sim->RunFor(kSecond);
  mc.cluster->CrashDatanode(0);
  while (layout.alive(0) && !mc.sim->Empty()) {
    mc.sim->RunFor(10 * kMillisecond);
  }
  // Writes while the node is down give every partition real resync work.
  for (size_t i = 0; i < mine.size(); i += 3) {
    if (!mc.UpsertCommit(mine[i], std::string(2048, 'e'))) {
      std::printf("FAIL: delta commit rejected\n");
      return 1;
    }
  }
  bool served = false;
  mc.cluster->RestartDatanode(0, [&] { served = true; });
  // Hammer committed reads of node-0 keys while it recovers; AZ-aware
  // routing prefers the rejoining AZ-0 replica as soon as a partition
  // turns catch-up-ready.
  int64_t reads_ok = 0;
  size_t rr = 0;
  auto timer = mc.sim->Every(200 * kMicrosecond, [&] {
    if (served) return;
    const std::string& key = mine[rr++ % mine.size()];
    const ndb::TxnId txn = mc.api->BeginNoHint();
    if (txn == 0) return;
    mc.api->Read(txn, mc.table, key, ndb::LockMode::kReadCommitted,
                 [&, txn](Code c, std::optional<std::string>) {
                   if (c == Code::kOk) ++reads_ok;
                   mc.api->Abort(txn);
                 });
  });
  mc.Drive(served);
  timer.Cancel();
  if (!served || mc.cluster->recovery_log().empty()) {
    std::printf("FAIL: rejoin did not complete\n");
    return 1;
  }
  const auto& rec = mc.cluster->recovery_log().back();
  const double recovery_ms = (rec.serving_at - rec.started) / 1e6;
  std::printf(
      "  rejoin: %d partitions streamed, serving after %.1f ms\n"
      "  reads completed during the rejoin: %lld; served BY the rejoining "
      "node mid-resync: %lld (must be > 0)\n",
      rec.streamed_parts, recovery_ms, static_cast<long long>(reads_ok),
      static_cast<long long>(rec.catchup_reads));
  g_json.catchup = StrFormat(
      "{\"streamed_parts\": %d, \"reads_during_rejoin\": %lld, "
      "\"catchup_reads\": %lld, \"rejoin_ms\": %.3f}",
      rec.streamed_parts, static_cast<long long>(reads_ok),
      static_cast<long long>(rec.catchup_reads), recovery_ms);
  return (!rec.aborted && rec.streamed_parts > 0 && rec.catchup_reads > 0)
             ? 0
             : 1;
}

int RestartSoak() {
  const int seeds = SoakSeeds();
  std::printf("\n--- restart-fault soak: %d seeds, crash/restart + "
              "recovery storms ---\n\n",
              seeds);
  int violations = 0;
  int64_t total_recoveries = 0, total_served = 0, total_evicted = 0;
  std::vector<double> col_seed, col_node, col_started, col_replay_done,
      col_serving, col_entries, col_resync_bytes, col_attempts, col_aborted,
      col_streamed, col_catchup;
  for (int i = 0; i < seeds; ++i) {
    chaos::ChaosOptions opts;
    opts.seed = 9000 + i;
    // Restart-focused schedules: node crashes (heal = restart) and
    // recovery storms only, so every episode exercises the recovery
    // state machine rather than partitions or grey failures.
    opts.faults.enable_az_outage = false;
    opts.faults.enable_partition = false;
    opts.faults.enable_latency_inflation = false;
    opts.faults.enable_message_drop = false;
    opts.faults.enable_grey_node = false;
    opts.faults.enable_recovery_storm = true;
    // Grey-slow redo-log disks: the flush path saturates, commit
    // backpressure must keep the unflushed backlog bounded (checked by
    // the redo-backlog invariant) while restarts storm around it.
    opts.faults.enable_log_disk_slow = true;
    chaos::ChaosReport report = chaos::RunChaosSchedule(opts);
    if (!report.invariants_ok()) {
      ++violations;
      std::printf("%s\n", report.Scorecard().c_str());
    } else {
      int64_t served = 0;
      for (const auto& rec : report.recoveries) {
        if (rec.serving_at >= 0) ++served;
      }
      std::printf("seed %llu: ok — %zu recover(ies), %lld served, "
                  "%lld acked writes, zero lost\n",
                  static_cast<unsigned long long>(opts.seed),
                  report.recoveries.size(), static_cast<long long>(served),
                  static_cast<long long>(report.acked_writes));
    }
    for (const auto& rec : report.recoveries) {
      col_seed.push_back(static_cast<double>(opts.seed));
      col_node.push_back(rec.node);
      col_started.push_back(ToSeconds(rec.started));
      col_replay_done.push_back(
          rec.replay_done >= 0 ? ToSeconds(rec.replay_done) : -1);
      col_serving.push_back(
          rec.serving_at >= 0 ? ToSeconds(rec.serving_at) : -1);
      col_entries.push_back(static_cast<double>(rec.replay_entries));
      col_resync_bytes.push_back(static_cast<double>(rec.resync_bytes));
      col_attempts.push_back(rec.attempts);
      col_aborted.push_back(rec.aborted ? 1 : 0);
      col_streamed.push_back(rec.streamed_parts);
      col_catchup.push_back(static_cast<double>(rec.catchup_reads));
    }
    total_recoveries += static_cast<int64_t>(report.recoveries.size());
    for (const auto& rec : report.recoveries) {
      if (rec.serving_at >= 0) ++total_served;
    }
    total_evicted += report.recoveries_dropped;
  }
  metrics::WriteCsv(metrics::CsvDir() + "/recovery_timeline.csv",
                    {{"seed", col_seed},
                     {"node", col_node},
                     {"started_s", col_started},
                     {"replay_done_s", col_replay_done},
                     {"serving_s", col_serving},
                     {"replay_entries", col_entries},
                     {"resync_bytes", col_resync_bytes},
                     {"attempts", col_attempts},
                     {"aborted", col_aborted},
                     {"streamed_parts", col_streamed},
                     {"catchup_reads", col_catchup}});
  std::printf("\nrecovery timeline: %zu recoveries -> %s/recovery_timeline"
              ".csv\n",
              col_seed.size(), metrics::CsvDir().c_str());
  g_json.soak = StrFormat(
      "{\"seeds\": %d, \"recoveries\": %lld, \"served\": %lld, "
      "\"ring_evictions\": %lld, \"invariant_violations\": %d}",
      seeds, static_cast<long long>(total_recoveries),
      static_cast<long long>(total_served),
      static_cast<long long>(total_evicted), violations);
  return violations == 0 ? 0 : 1;
}

// BENCH_recovery.json: the headline recovery numbers for the CI artifact
// and the committed repo-root copy. Path from REPRO_BENCH_JSON, default
// the working directory.
int WriteBenchJson() {
  std::string path = "BENCH_recovery.json";
  if (const char* env = std::getenv("REPRO_BENCH_JSON")) path = env;
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("FAIL: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"recovery\",\n"
               "  \"recovery_time_vs_entries\": [%s],\n"
               "  \"loss_window\": %s,\n"
               "  \"catchup_availability\": %s,\n"
               "  \"restart_soak\": %s,\n"
               "  \"host\": {\"peak_rss_mb\": %.1f, \"total_allocs\": %llu,\n"
               "           \"total_alloc_mb\": %.1f}\n"
               "}\n",
               g_json.scaling.c_str(), g_json.loss.c_str(),
               g_json.catchup.c_str(), g_json.soak.c_str(), PeakRssMb(),
               static_cast<unsigned long long>(AllocsNow().count),
               static_cast<double>(AllocsNow().bytes) / (1024.0 * 1024.0));
  std::fclose(f);
  std::printf("headline numbers -> %s\n", path.c_str());
  return 0;
}

int Main() {
  PrintHeader("NDB crash recovery: redo replay, checkpoints, restart soak",
              "robustness harness; no single paper figure");
  // Count heap traffic for the "host" JSON section. Host-side only: the
  // sim-time numbers stay byte-identical with counting on or off.
  prof::SetAllocCounting(true);
  int rc = 0;
  rc |= PinnedEpisode();
  rc |= ScalingCurve();
  rc |= LossWindow();
  rc |= CatchupAvailability();
  rc |= RestartSoak();
  rc |= WriteBenchJson();
  std::printf("\nRESULT: %s\n",
              rc == 0 ? "recovery pipeline holds every expectation"
                      : "EXPECTATION VIOLATED");
  return rc;
}

}  // namespace
}  // namespace repro::bench

int main() { return repro::bench::Main(); }
