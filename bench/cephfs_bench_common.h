// CephFS side of the benchmark harness (§V-A: 12 OSD nodes, HA across 3
// AZs, metadata replication 3, three setups: default / DirPinned /
// SkipKCache).
#pragma once

#include <string>
#include <vector>

#include "cephfs/cluster.h"
#include "workload/driver.h"
#include "workload/spotify.h"

namespace repro::bench {

struct CephRunConfig {
  cephfs::CephVariant variant = cephfs::CephVariant::kDefault;
  int num_mds = 6;
  int clients_per_mds = 0;  // 0 = scale default (same as HopsFS harness)
  Nanos warmup = 0;
  Nanos measure = 0;
  workload::NamespaceConfig ns;
  uint64_t seed = 1;
  std::function<workload::OpSource(const workload::SpotifyWorkload&)>
      op_source_factory;
};

struct CephRunOutput {
  std::string setup_name;
  int num_mds = 0;
  workload::DriverResults results;
  // Actual requests handled at the MDS layer (Fig. 6 counts these, not
  // the client-side ops absorbed by the kernel cache).
  int64_t mds_handled_ops = 0;
  double mds_cpu_util = 0;        // Fig. 10b analogue
  double osd_cpu_util = 0;        // Fig. 10a
  double osd_disk_write_mbps = 0; // Fig. 12d
  double osd_disk_read_mbps = 0;
  double osd_net_read_mbps = 0;
  double osd_net_write_mbps = 0;
  double mds_net_read_mbps = 0;   // Fig. 13
  double mds_net_write_mbps = 0;
  double client_cache_hit_rate = 0;
};

CephRunOutput RunCephWorkload(const CephRunConfig& config);

std::vector<cephfs::CephVariant> AllCephVariants();
const char* CephVariantName(cephfs::CephVariant variant);

}  // namespace repro::bench
