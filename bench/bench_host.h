// Host-side process measurements shared by benches: peak RSS and
// process-CPU readings (getrusage) plus total-allocation deltas from the
// profiler's operator-new hook. These measure the *host* running the
// simulation — they never touch sim state, so adding them to a bench
// cannot perturb its (byte-identical) sim-side output.
#pragma once

#include <cstdint>

namespace repro::bench {

// Peak resident set size of this process in MiB (Linux ru_maxrss is KiB).
double PeakRssMb();

// Process CPU seconds (user + system).
double CpuSeconds();

// Cumulative allocation totals observed by the profiler's operator-new
// hook while counting was enabled (prof::SetAllocCounting /
// an installed Profiler). Subtract two readings for a phase delta.
struct AllocSnapshot {
  uint64_t count = 0;
  uint64_t bytes = 0;
};
AllocSnapshot AllocsNow();

}  // namespace repro::bench
