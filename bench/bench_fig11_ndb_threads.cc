// Figure 11 + Table II: the NDB datanode thread configuration (27 CPUs)
// and the average CPU utilisation per thread type for HopsFS-CL (3,3)
// while sweeping the number of namenodes.
//
// Shape targets (paper): LDM/TC/RECV/SEND grow with load and level off
// after ~24 NNs; the nominally idle singles (REP in particular) run hot
// because idle threads assist overloaded RECV/SEND threads.
#include <cstdio>

#include "bench_common.h"

namespace repro::bench {
namespace {

void Main() {
  PrintHeader("NDB thread-type utilisation, HopsFS-CL (3,3)",
              "Figure 11 (and Table II)");

  std::printf(
      "\nTable II - NDB CPU configuration (27 locked CPUs per datanode):\n"
      "  LDM  12  tables' data shards\n"
      "  TC    7  ongoing transactions\n"
      "  RECV  3  inbound network traffic\n"
      "  SEND  2  outbound network traffic\n"
      "  REP   1  replication across clusters (idle helper)\n"
      "  IO    1  I/O operations\n"
      "  MAIN  1  schema management (idle helper)\n");

  const auto counts = ResourceSweepCounts();
  std::printf("\n%-8s", "NNs");
  for (const char* t : {"LDM", "TC", "RECV", "SEND", "REP", "IO", "MAIN"}) {
    std::printf("%9s", t);
  }
  std::printf("\n");

  for (int n : counts) {
    RunConfig cfg;
    cfg.setup = hopsfs::PaperSetup::kHopsFsCl_3_3;
    cfg.num_namenodes = n;
    const auto out = RunHopsFsWorkload(cfg);
    const auto& u = out.resources.ndb_threads;
    std::printf("%-8d%8.1f%%%8.1f%%%8.1f%%%8.1f%%%8.1f%%%8.1f%%%8.1f%%\n",
                n, 100 * u.ldm, 100 * u.tc, 100 * u.recv, 100 * u.send,
                100 * u.rep, 100 * u.io, 100 * u.main);
    std::fflush(stdout);
  }

  std::printf(
      "\nPaper shapes: utilisation peaks after ~24 NNs; REP saturates\n"
      "(~90%%) because idle threads help busy RECV/SEND threads.\n");
}

}  // namespace
}  // namespace repro::bench

int main() {
  repro::bench::Main();
  return 0;
}
