// §V-F: failure matrix. Injects the failures the paper's HA design is
// built around and reports whether the file system keeps serving:
//   * one NDB datanode crash (node-group failover),
//   * leader namenode crash (leader election),
//   * a full AZ outage under HopsFS-CL (3,3),
//   * an AZ network partition resolved by the arbitrator,
//   * a block-storage datanode loss (re-replication).
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "chaos/schedule.h"
#include "util/strings.h"
#include "hopsfs/deployment.h"
#include "metrics/timeseries.h"
#include "workload/driver.h"
#include "workload/fs_interface.h"

namespace repro::bench {
namespace {

using chaos::FaultEvent;
using chaos::FaultInjector;
using chaos::FaultSchedule;
using chaos::FaultType;
using hopsfs::Deployment;
using hopsfs::DeploymentOptions;
using hopsfs::PaperSetup;

struct ProbeStats {
  int ok = 0;
  int failed = 0;
};

// Issues `n` stat+create probes through a client and counts outcomes.
// Each probe's 30 s deadline is a simulator-scheduled timeout event, and
// the loop advances exactly the work that is queued (RunOne) — no
// fixed-step polling, so completion and timeout land at event precision.
ProbeStats Probe(Simulation& sim, hopsfs::HopsFsClient* client, int n,
                 const char* tag) {
  struct ProbeState {
    bool done = false;
    bool timed_out = false;
    Status status;
  };
  ProbeStats stats;
  for (int i = 0; i < n; ++i) {
    // Shared state: the reply or the timeout event may fire long after
    // this iteration finishes (a late reply during a later probe's loop).
    auto st = std::make_shared<ProbeState>();
    client->Create(StrFormat("/probe/%s-%d", tag, i), 0, [st](Status s) {
      st->status = s;
      st->done = true;
    });
    sim.After(30 * kSecond, [st] {
      if (!st->done) st->timed_out = true;
    });
    while (!st->done && !st->timed_out) {
      if (!sim.RunOne()) break;
    }
    if (st->done && st->status.ok()) {
      ++stats.ok;
    } else {
      ++stats.failed;
    }
  }
  return stats;
}

void Report(const char* scenario, const ProbeStats& before,
            const ProbeStats& after, const char* expectation) {
  std::printf("%-34s before: %2d/%2d ok   after: %2d/%2d ok   %s\n",
              scenario, before.ok, before.ok + before.failed, after.ok,
              after.ok + after.failed, expectation);
}

std::unique_ptr<Deployment> MakeCluster(Simulation& sim, int block_dns = 0) {
  auto options = DeploymentOptions::FromPaperSetup(
      PaperSetup::kHopsFsCl_3_3, /*num_namenodes=*/6);
  options.block_datanodes = block_dns;
  auto dep = std::make_unique<Deployment>(sim, options);
  dep->Start();
  sim.RunFor(3 * kSecond);
  return dep;
}

// Arms a one-event schedule "now" and runs the settle period. All
// scenarios inject through FaultSchedule/FaultInjector — the same path
// the chaos harness uses — so their traces are comparable with soak runs.
void InjectAndSettle(Simulation& sim, FaultInjector& injector,
                     FaultEvent event, Nanos settle) {
  FaultSchedule schedule;
  schedule.Add(event);
  injector.Arm(schedule, sim.now());
  sim.RunFor(settle);
}

void Scenario_NdbNodeCrash() {
  Simulation sim(21);
  auto dep = MakeCluster(sim);
  FaultInjector injector(*dep);
  auto* client = dep->AddClient(0);
  bool ok = true;
  client->Mkdir("/probe", [&](Status s) { ok = s.ok(); });
  sim.RunFor(Seconds(1));
  const auto before = Probe(sim, client, 10, "ndb-pre");
  // 2 s settle: heartbeat detection + take-over.
  InjectAndSettle(sim, injector,
                  FaultEvent{0, FaultType::kCrashNdbNode, /*a=*/0},
                  Seconds(2));
  const auto after = Probe(sim, client, 10, "ndb-post");
  Report("NDB datanode crash", before, after,
         "expect: survivors promote backups, all ops succeed");
}

void Scenario_LeaderNnCrash() {
  Simulation sim(22);
  auto dep = MakeCluster(sim);
  auto* client = dep->AddClient(1);
  client->Mkdir("/probe", [](Status) {});
  sim.RunFor(Seconds(1));
  const auto before = Probe(sim, client, 10, "nn-pre");
  dep->leader()->Crash();
  sim.RunFor(Seconds(8));  // election rounds
  const auto after = Probe(sim, client, 10, "nn-post");
  const bool new_leader = dep->leader() != nullptr &&
                          dep->leader()->is_leader();
  Report("leader namenode crash", before, after,
         new_leader ? "expect: new leader elected (ok)"
                    : "ERROR: no leader re-elected");
}

void Scenario_AzOutage() {
  Simulation sim(23);
  auto dep = MakeCluster(sim);
  FaultInjector injector(*dep);
  auto* client = dep->AddClient(1);  // client in a surviving AZ
  client->Mkdir("/probe", [](Status) {});
  sim.RunFor(Seconds(1));
  const auto before = Probe(sim, client, 10, "az-pre");
  // AZ 0 goes dark: NDB replicas, namenodes and clients in it die.
  for (const auto& nn : dep->namenodes()) {
    if (nn->az() == 0) nn->Crash();
  }
  InjectAndSettle(sim, injector, FaultEvent{0, FaultType::kAzOutage, /*a=*/0},
                  Seconds(3));
  const auto after = Probe(sim, client, 10, "az-post");
  Report("full AZ outage (CL 3,3)", before, after,
         "expect: RF=3 keeps a replica in every surviving AZ");
}

void Scenario_AzPartition() {
  Simulation sim(24);
  auto dep = MakeCluster(sim);
  FaultInjector injector(*dep);
  auto* client = dep->AddClient(1);
  client->Mkdir("/probe", [](Status) {});
  sim.RunFor(Seconds(1));
  const auto before = Probe(sim, client, 10, "part-pre");
  // AZ 2 is cut off from AZs 0 and 1; the arbitrator (mgmt node in AZ 0)
  // blesses the majority side and AZ 2's NDB nodes shut down.
  FaultSchedule schedule;
  schedule.Add(FaultEvent{0, FaultType::kPartitionAzs, /*a=*/2, /*b=*/0});
  schedule.Add(FaultEvent{0, FaultType::kPartitionAzs, /*a=*/2, /*b=*/1});
  injector.Arm(schedule, sim.now());
  sim.RunFor(Seconds(2));
  int az2_alive = 0;
  auto& layout = dep->ndb().layout();
  for (int n = 0; n < dep->ndb().num_datanodes(); ++n) {
    if (layout.az_of(n) == 2 && layout.alive(n)) ++az2_alive;
  }
  const auto after = Probe(sim, client, 10, "part-post");
  Report("AZ network partition (split brain)", before, after,
         az2_alive == 0
             ? "expect: minority side shut down by arbitrator (ok)"
             : "ERROR: partitioned nodes still alive (split brain)");
  dep->topology().HealAllPartitions();
}

void Scenario_BlockDnLoss() {
  Simulation sim(25);
  auto dep = MakeCluster(sim, /*block_dns=*/9);
  auto* client = dep->AddClient(0);
  client->Mkdir("/probe", [](Status) {});
  client->Mkdir("/data", [](Status) {});
  sim.RunFor(Seconds(4));  // DN heartbeats register

  // Write a large (2-block) file, then kill one of its replicas.
  bool done = false;
  client->Create("/data/big", 2LL * (128 << 20), [&](Status s) {
    done = s.ok();
  });
  while (!done && sim.now() < Seconds(120)) sim.RunFor(Millis(10));
  const auto before = Probe(sim, client, 5, "dn-pre");

  blocks::DnId victim = -1;
  for (int d = 0; d < dep->dn_registry()->size(); ++d) {
    if (dep->dn_registry()->dn(d)->block_count() > 0) {
      victim = d;
      break;
    }
  }
  int64_t lost_blocks = 0;
  FaultInjector injector(*dep);
  if (victim >= 0) {
    lost_blocks = dep->dn_registry()->dn(victim)->block_count();
    // 20 s settle: heartbeat timeout + re-replication + copy.
    InjectAndSettle(sim, injector,
                    FaultEvent{0, FaultType::kCrashBlockDn, victim},
                    Seconds(20));
  } else {
    sim.RunFor(Seconds(20));
  }

  // Count replicas of the lost blocks that now live elsewhere.
  int64_t recovered = 0;
  for (int d = 0; d < dep->dn_registry()->size(); ++d) {
    if (d == victim) continue;
    recovered += dep->dn_registry()->dn(d)->block_count();
  }
  const auto after = Probe(sim, client, 5, "dn-post");
  Report("block datanode loss", before, after,
         recovered >= lost_blocks
             ? "expect: leader re-replicated the lost replicas (ok)"
             : "ERROR: replication level not restored");
}

// Continuous-load view: run the Spotify workload, crash an NDB datanode
// mid-measurement, and show the throughput timeline (dip + recovery).
void Scenario_ThroughputTimelineAcrossFailure() {
  Simulation sim(26);
  auto options = DeploymentOptions::FromPaperSetup(
      PaperSetup::kHopsFsCl_3_3, /*num_namenodes=*/6);
  Deployment dep(sim, options);
  dep.Start();
  workload::NamespaceConfig ns;
  workload::SpotifyWorkload wl(ns, 26);
  dep.BootstrapNamespace(wl.all_dirs(), wl.all_files());
  std::vector<std::unique_ptr<workload::HopsFsTarget>> targets;
  std::vector<workload::FsTarget*> ptrs;
  for (int i = 0; i < 96; ++i) {
    targets.push_back(
        std::make_unique<workload::HopsFsTarget>(dep.AddClient()));
    ptrs.push_back(targets.back().get());
  }
  sim.RunFor(3 * kSecond);
  workload::ClosedLoopDriver driver(
      sim, ptrs, [&wl](Rng& rng, std::vector<std::string>& owned) {
        return wl.Next(rng, owned);
      });
  // Crash one NDB datanode 1 s into the 3 s measurement window.
  FaultInjector injector(dep);
  FaultSchedule schedule;
  schedule.Add(
      FaultEvent{1500 * kMillisecond, FaultType::kCrashNdbNode, /*a=*/3});
  injector.Arm(schedule, sim.now());
  auto res = driver.Run(500 * kMillisecond, 3 * kSecond);

  std::printf("\nthroughput timeline (100 ms windows, # = peak):\n  [%s]\n",
              res.timeline.Sparkline().c_str());
  std::printf("  NDB datanode 3 crashes mid-run: the dip lasts roughly the "
              "API operation\n  timeout (1.5 s) while in-flight requests "
              "toward the dead node expire; the\n  retry path then lands on "
              "promoted backups and throughput recovers.\n  ops=%lld "
              "failed=%lld\n",
              static_cast<long long>(res.completed),
              static_cast<long long>(res.failed));
  metrics::WriteCsv(
      metrics::CsvDir() + "/failure_timeline.csv",
      {{"ops_per_sec", res.timeline.RatePerSecond()},
       {"mean_latency_ms", res.timeline.MeanPerWindow()}});
}

void Main() {
  PrintHeader("Failure matrix (§V-F)", "Section V-F failure discussion");
  std::printf("\n");
  Scenario_NdbNodeCrash();
  Scenario_LeaderNnCrash();
  Scenario_AzOutage();
  Scenario_AzPartition();
  Scenario_BlockDnLoss();
  Scenario_ThroughputTimelineAcrossFailure();
}

}  // namespace
}  // namespace repro::bench

int main() {
  repro::bench::Main();
  return 0;
}
