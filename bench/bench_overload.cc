// Overload protection bench: offered-load sweep past saturation.
//
// No single paper figure — this exercises the resilience subsystem
// (src/resilience/): deadline propagation, retry budgets, per-NN circuit
// breakers and AIMD admission control. Phase 1 measures saturation
// throughput with a closed loop. Phase 2 offers multiples of that rate
// open-loop against (a) the full overload-protection stack and (b) a
// baseline with it disabled, and prints goodput / latency / shed-rate
// curves: the resilient config sheds excess arrivals and keeps goodput
// near capacity with bounded p99, while the baseline's queues grow until
// timeouts and retry amplification collapse goodput. Phase 3 replays a
// pinned-seed chaos episode (open-loop surge + single-AZ outage) and
// checks the safety invariants, including the deadline and surge-goodput
// invariants.
//
// `--quick` trims the sweep and turns the expected shapes into hard
// assertions (CI smoke); exit status is non-zero if they fail. CSV
// artifact: $REPRO_CSV_DIR/overload.csv.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_host.h"
#include "chaos/harness.h"
#include "prof/profiler.h"
#include "metrics/timeseries.h"

namespace repro::bench {
namespace {

struct Scale {
  int num_namenodes = 3;
  // Quick mode shrinks the NN CPUs so saturation sits at a rate the sweep
  // can afford to triple; REPRO_FULL=1 uses the paper's 32-vCPU NNs.
  int nn_threads = 8;
  int clients = 24;
  Nanos warmup = 1 * kSecond;
  Nanos measure = 4 * kSecond;
  workload::NamespaceConfig ns{/*users=*/64, /*dirs_per_user=*/4,
                               /*files_per_dir=*/4, /*zipf_theta=*/0.75};
};

// A full deployment plus workload clients, rebuilt per data point so the
// sweep's points are independent.
struct Rig {
  std::unique_ptr<Simulation> sim;
  std::unique_ptr<hopsfs::Deployment> dep;
  std::unique_ptr<workload::SpotifyWorkload> wl;
  std::vector<std::unique_ptr<workload::HopsFsTarget>> targets;
  std::vector<workload::FsTarget*> ptrs;

  workload::OpSource Source() {
    workload::SpotifyWorkload* w = wl.get();
    return [w](Rng& rng, std::vector<std::string>& owned) {
      return w->Next(rng, owned);
    };
  }
};

Rig BuildRig(bool resilient, uint64_t seed, const Scale& sc) {
  Rig rig;
  rig.sim = std::make_unique<Simulation>(seed);
  auto dopts = hopsfs::DeploymentOptions::FromPaperSetup(
      hopsfs::PaperSetup::kHopsFsCl_3_3, sc.num_namenodes);
  dopts.nn.cpu_threads = sc.nn_threads;
  dopts.resilience = resilient;
  rig.dep = std::make_unique<hopsfs::Deployment>(*rig.sim, dopts);
  rig.dep->Start();
  rig.wl = std::make_unique<workload::SpotifyWorkload>(sc.ns, seed);
  rig.dep->BootstrapNamespace(rig.wl->all_dirs(), rig.wl->all_files());
  for (int i = 0; i < sc.clients; ++i) {
    rig.targets.push_back(
        std::make_unique<workload::HopsFsTarget>(rig.dep->AddClient()));
    rig.ptrs.push_back(rig.targets.back().get());
  }
  rig.sim->RunFor(1 * kSecond);  // leader + bindings settle
  return rig;
}

// Saturation capacity, found by geometric open-loop probing: double the
// offered rate until goodput stops tracking it; the goodput plateau is
// the cluster's capacity and the sweep's "1x" reference. (A closed loop
// cannot find this point — it self-throttles at clients/latency.)
double MeasureCapacity(uint64_t seed, const Scale& sc) {
  double rate = 4000;
  double capacity = 0;
  for (int probe = 0; probe < 10; ++probe) {
    Rig rig = BuildRig(/*resilient=*/true, seed, sc);
    workload::OpenLoopDriver driver(*rig.sim, rig.ptrs, rig.Source());
    auto res = driver.Run(rate, 500 * kMillisecond, 1 * kSecond);
    capacity = std::max(capacity, res.goodput_ops_per_sec());
    if (res.goodput_ops_per_sec() < 0.85 * res.offered_ops_per_sec()) break;
    rate *= 2;
  }
  return capacity;
}

struct Point {
  double offered = 0;
  double goodput = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double shed_rate = 0;  // sheds / issued
  int64_t deadline_exceeded = 0;
  int64_t late_ok = 0;
  int64_t failed = 0;
};

Point RunPoint(bool resilient, double rate, uint64_t seed, const Scale& sc,
               bool print_counters) {
  Rig rig = BuildRig(resilient, seed, sc);
  workload::OpenLoopDriver driver(*rig.sim, rig.ptrs, rig.Source());
  auto res = driver.Run(rate, sc.warmup, sc.measure);
  Point p;
  p.offered = res.offered_ops_per_sec();
  p.goodput = res.goodput_ops_per_sec();
  p.p50_ms = ToMillis(res.ok_latency.Percentile(0.5));
  p.p99_ms = ToMillis(res.ok_latency.Percentile(0.99));
  p.shed_rate = res.issued > 0
                    ? static_cast<double>(res.sheds()) / res.issued
                    : 0;
  p.deadline_exceeded = res.deadline_exceeded();
  p.late_ok = res.late_ok;
  p.failed = res.failed;
  if (print_counters) {
    std::printf("\nresilience counters at this point:\n%s",
                rig.dep->metrics().Report().c_str());
  }
  return p;
}

void PrintRow(const char* config, double mult, const Point& p) {
  std::printf(
      "  %-9s %4.1fx  offered %8.0f  goodput %8.0f  p50 %8.1fms  "
      "p99 %9.1fms  shed %5.1f%%  deadline %6lld  late-ok %6lld  "
      "failed %6lld\n",
      config, mult, p.offered, p.goodput, p.p50_ms, p.p99_ms,
      100.0 * p.shed_rate, static_cast<long long>(p.deadline_exceeded),
      static_cast<long long>(p.late_ok), static_cast<long long>(p.failed));
}

int Main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  PrintHeader("Overload protection (open-loop sweep past saturation)",
              "resilience subsystem; no single paper figure");

  Scale sc;
  if (FullScale()) {
    sc.num_namenodes = 6;
    sc.nn_threads = 32;
    sc.clients = 48;
    sc.measure = 8 * kSecond;
  }
  const uint64_t seed = 42;

  const double peak = MeasureCapacity(seed, sc);
  std::printf("\nmeasured saturation capacity (%d NNs x %d threads): "
              "%.0f ops/s\n\n",
              sc.num_namenodes, sc.nn_threads, peak);

  const std::vector<double> mults =
      quick ? std::vector<double>{1.0, 2.0, 3.0}
            : std::vector<double>{0.5, 0.8, 1.0, 1.5, 2.0, 3.0};

  std::vector<double> col_mult, col_offered, col_res_goodput, col_res_p99,
      col_res_shed, col_base_goodput, col_base_p99, col_peak_rss_mb,
      col_alloc_mb;
  std::vector<Point> res_points, base_points;
  std::printf("offered-load sweep (open loop, %0.1fs window):\n",
              ToSeconds(sc.measure));
  prof::SetAllocCounting(true);  // host-side only; sim output unchanged
  AllocSnapshot allocs_before = AllocsNow();
  for (double m : mults) {
    const double rate = m * peak;
    // Print the resilience counter report at the deepest overload point.
    const bool print_ctrs = m == mults.back();
    Point pr = RunPoint(/*resilient=*/true, rate, seed, sc, false);
    Point pb = RunPoint(/*resilient=*/false, rate, seed, sc, false);
    PrintRow("resilient", m, pr);
    PrintRow("baseline", m, pb);
    res_points.push_back(pr);
    base_points.push_back(pb);
    col_mult.push_back(m);
    col_offered.push_back(pr.offered);
    col_res_goodput.push_back(pr.goodput);
    col_res_p99.push_back(pr.p99_ms);
    col_res_shed.push_back(pr.shed_rate);
    col_base_goodput.push_back(pb.goodput);
    col_base_p99.push_back(pb.p99_ms);
    // Host memory columns (machine-dependent, informational): peak RSS so
    // far and heap bytes allocated across this multiplier's two runs.
    col_peak_rss_mb.push_back(PeakRssMb());
    col_alloc_mb.push_back(
        static_cast<double>(AllocsNow().bytes - allocs_before.bytes) /
        (1024.0 * 1024.0));
    allocs_before = AllocsNow();
    if (print_ctrs) {
      RunPoint(/*resilient=*/true, rate, seed, sc, /*print_counters=*/true);
    }
  }

  metrics::WriteCsv(metrics::CsvDir() + "/overload.csv",
                    {{"multiplier", col_mult},
                     {"offered_ops_per_sec", col_offered},
                     {"resilient_goodput", col_res_goodput},
                     {"resilient_p99_ms", col_res_p99},
                     {"resilient_shed_rate", col_res_shed},
                     {"baseline_goodput", col_base_goodput},
                     {"baseline_p99_ms", col_base_p99},
                     {"peak_rss_mb", col_peak_rss_mb},
                     {"alloc_mb", col_alloc_mb}});

  // ---- chaos episode: open-loop surge + single-AZ outage --------------
  // Pinned seed; the surge-goodput, deadline and availability invariants
  // must hold, and the AZ outage must not stall the service longer than
  // the failover detection window (the client RPC timeout).
  chaos::ChaosOptions copts;
  copts.seed = 777;
  // 3 NNs x 32 threads / 1.1ms op cost ~= 87k ops/s capacity; the surge
  // offers ~1.7x that, so admission control must shed to protect the
  // measured closed-loop workload.
  copts.num_namenodes = 3;
  chaos::FaultSchedule schedule;
  schedule.Add({copts.warmup + 500 * kMillisecond,
                chaos::FaultType::kOpenLoopSurge, 150000, -1, 1.0});
  schedule.Add({copts.warmup + 4 * kSecond,
                chaos::FaultType::kOpenLoopSurgeStop, -1, -1, 1.0});
  schedule.Add({copts.warmup + 5 * kSecond, chaos::FaultType::kAzOutage, 2,
                -1, 1.0});
  schedule.Add({copts.warmup + 7 * kSecond, chaos::FaultType::kAzRestore, 2,
                -1, 1.0});
  chaos::ChaosReport report = chaos::RunChaosSchedule(copts, schedule);
  std::printf("\nchaos episode (surge + AZ outage):\n%s",
              report.Scorecard().c_str());

  int failures = 0;
  auto expect = [&failures](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "pass" : "FAIL", what);
    if (!ok) ++failures;
  };

  std::printf("\nchecks:\n");
  expect(report.invariants_ok(),
         "chaos invariants hold (incl. deadlines + surge-goodput)");
  const Nanos detection_window = 5 * kSecond;  // client rpc_timeout
  expect(report.longest_stall <= detection_window,
         "AZ outage: no stall longer than the failover detection window");

  if (quick) {
    // Graceful-degradation assertions on the sweep itself.
    double res_best = 0;
    for (const Point& p : res_points) res_best = std::max(res_best, p.goodput);
    const Point& res2x = res_points[res_points.size() - 2];   // 2x
    const Point& res3x = res_points.back();                   // 3x
    const Point& base3x = base_points.back();
    expect(res2x.goodput >= 0.8 * res_best,
           "resilient: goodput at 2x within 20% of peak goodput");
    expect(res3x.goodput >= 0.7 * res_best,
           "resilient: goodput at 3x within 30% of peak goodput");
    expect(res3x.p99_ms < 2000.0, "resilient: p99 at 3x stays bounded");
    expect(res3x.shed_rate > 0.05,
           "resilient: overload is actually shedding (not just absorbing)");
    expect(base3x.goodput < 0.6 * res3x.goodput,
           "baseline: goodput collapses at 3x vs resilient");
  }

  if (failures > 0) {
    std::printf("\nRESULT: %d check(s) failed\n", failures);
    return 1;
  }
  std::printf("\nRESULT: graceful degradation verified\n");
  return 0;
}

}  // namespace
}  // namespace repro::bench

int main(int argc, char** argv) { return repro::bench::Main(argc, argv); }
