// Figure 12: average network and disk utilisation of the metadata storage
// layer (per NDB datanode / Ceph OSD), sweeping metadata servers.
//
// Shape targets (paper): NDB network I/O grows linearly with namenodes
// (in-memory database: network-heavy, disk-light — only REDO log and
// checkpoints hit disk); the OSD is the reverse: network-light but disk-
// bound on journal writes, plateauing after ~24 MDSs.
#include <cstdio>

#include "bench_common.h"
#include "cephfs_bench_common.h"

namespace repro::bench {
namespace {

struct Row {
  std::string name;
  std::vector<double> net_rd, net_wr, disk_rd, disk_wr;
};

void Print(const char* title, const std::vector<Row>& rows,
           const std::vector<int>& counts,
           std::vector<double> Row::* member) {
  std::printf("\n(%s) MB/s per storage node\n%-22s", title, "setup");
  for (int n : counts) std::printf("%10d", n);
  std::printf("\n");
  for (const auto& r : rows) {
    std::printf("%-22s", r.name.c_str());
    for (double v : r.*member) std::printf("%10.2f", v);
    std::printf("\n");
  }
}

void Main() {
  PrintHeader("Metadata storage layer network & disk utilisation",
              "Figure 12");

  const auto counts = ResourceSweepCounts();
  std::vector<Row> rows;

  for (auto setup : AllHopsFsSetups()) {
    Row row;
    row.name = hopsfs::PaperSetupName(setup);
    for (int n : counts) {
      RunConfig cfg;
      cfg.setup = setup;
      cfg.num_namenodes = n;
      const auto out = RunHopsFsWorkload(cfg);
      row.net_rd.push_back(out.resources.ndb_net_read_mbps);
      row.net_wr.push_back(out.resources.ndb_net_write_mbps);
      row.disk_rd.push_back(out.resources.ndb_disk_read_mbps);
      row.disk_wr.push_back(out.resources.ndb_disk_write_mbps);
    }
    rows.push_back(std::move(row));
    std::printf(".");
    std::fflush(stdout);
  }
  for (auto variant : AllCephVariants()) {
    Row row;
    row.name = CephVariantName(variant);
    for (int n : counts) {
      CephRunConfig cfg;
      cfg.variant = variant;
      cfg.num_mds = n;
      const auto out = RunCephWorkload(cfg);
      row.net_rd.push_back(out.osd_net_read_mbps);
      row.net_wr.push_back(out.osd_net_write_mbps);
      row.disk_rd.push_back(out.osd_disk_read_mbps);
      row.disk_wr.push_back(out.osd_disk_write_mbps);
    }
    rows.push_back(std::move(row));
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");

  Print("a: network read", rows, counts, &Row::net_rd);
  Print("b: network write", rows, counts, &Row::net_wr);
  Print("c: disk read", rows, counts, &Row::disk_rd);
  Print("d: disk write", rows, counts, &Row::disk_wr);

  std::printf(
      "\nPaper shapes: NDB network grows ~linearly with NNs, NDB disk only\n"
      "carries REDO/checkpoints; OSD network stays low while OSD disk\n"
      "(journal) climbs and plateaus after ~24 MDSs.\n");
}

}  // namespace
}  // namespace repro::bench

int main() {
  repro::bench::Main();
  return 0;
}
