// Figure 8: average end-to-end operation latency on the Spotify workload
// while sweeping the number of metadata servers.
//
// Shape targets (paper): HopsFS/HopsFS-CL roughly flat at ~8-14 ms under
// load; HopsFS-CL up to 35% below the AZ-oblivious 3-AZ deployments;
// CephFS default up to 9x above HopsFS-CL (16x with SkipKCache), while
// CephFS-DirPinned dips below HopsFS-CL thanks to the kernel cache.
#include <cstdio>

#include "bench_common.h"
#include "cephfs_bench_common.h"

namespace repro::bench {
namespace {

void Main() {
  PrintHeader("Average end-to-end latency (ms) vs metadata servers",
              "Figure 8");

  const auto counts = ResourceSweepCounts();
  std::printf("\n%-22s", "setup");
  for (int n : counts) std::printf("%10d", n);
  std::printf("\n");

  for (auto setup : AllHopsFsSetups()) {
    std::printf("%-22s", hopsfs::PaperSetupName(setup));
    std::fflush(stdout);
    for (int n : counts) {
      RunConfig cfg;
      cfg.setup = setup;
      cfg.num_namenodes = n;
      const auto out = RunHopsFsWorkload(cfg);
      std::printf("%10.2f", out.results.all.MeanMillis());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  for (auto variant : AllCephVariants()) {
    std::printf("%-22s", CephVariantName(variant));
    std::fflush(stdout);
    for (int n : counts) {
      CephRunConfig cfg;
      cfg.variant = variant;
      cfg.num_mds = n;
      const auto out = RunCephWorkload(cfg);
      std::printf("%10.2f", out.results.all.MeanMillis());
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf(
      "\nPaper shapes: HopsFS/CL ~flat; CL up to 35%% below AZ-oblivious\n"
      "3-AZ HopsFS; CephFS default up to 9x above CL; DirPinned below CL\n"
      "(kernel cache); SkipKCache up to 16x above CL.\n");
}

}  // namespace
}  // namespace repro::bench

int main() {
  repro::bench::Main();
  return 0;
}
