// Telemetry pipeline bench: a pinned surge + AZ-outage + grey-slow
// episode against HopsFS-CL (3,3) with the full telemetry stack on.
//
// The episode is a regression harness for the alerting path, with hard
// assertions:
//   - the SLO availability burn-rate alert fires within one fast
//     long-window of the injected AZ outage and resolves after restore;
//   - the per-AZ health rollup marks the outaged AZ unavailable while it
//     is dark and healthy again at the end;
//   - the grey-slow NDB node is flagged degraded by its per-op service
//     time (peer-relative) while its slowdown is active, and recovers;
//   - a fault-free soak (40 seeds; --quick trims it) raises ZERO alerts
//     and rolls every host up healthy — the false-positive budget is 0;
//   - the simulation is byte-identical with telemetry on vs off, and the
//     alert timeline is byte-identical across same-seed replays.
//
// Artifacts (CI uploads these): bench_out/telemetry_episode.{json,prom,csv}
// — the pinned episode's scrape archive, Prometheus exposition and
// per-scrape CSV grid.
#include <cstdio>
#include <cstring>

#include "bench_common.h"
#include "chaos/harness.h"
#include "metrics/timeseries.h"

namespace repro::bench {
namespace {

// Episode times, relative to warm-up start (warmup 2s, window 8s,
// settle 6s — the chaos harness defaults).
constexpr Nanos kOutageStart = 3 * kSecond;   // AZ 2 goes dark
constexpr Nanos kOutageEnd = 5 * kSecond;     // AZ 2 restored
constexpr Nanos kSurgeStart = 6 * kSecond;    // open-loop overload surge
constexpr Nanos kSurgeEnd = Millis(7200);
constexpr Nanos kGreyStart = Millis(7500);    // NDB node 4 goes grey-slow
constexpr Nanos kGreyEnd = Millis(9500);
constexpr int kGreyNode = 4;

chaos::FaultSchedule PinnedEpisode() {
  chaos::FaultSchedule s;
  s.Add({kOutageStart, chaos::FaultType::kAzOutage, 2});
  s.Add({kOutageEnd, chaos::FaultType::kAzRestore, 2});
  s.Add({kSurgeStart, chaos::FaultType::kOpenLoopSurge, 220000});
  s.Add({kSurgeEnd, chaos::FaultType::kOpenLoopSurgeStop});
  s.Add({kGreyStart, chaos::FaultType::kGreySlowNode, kGreyNode, -1, 12.0});
  s.Add({kGreyEnd, chaos::FaultType::kGreyRestoreNode, kGreyNode});
  return s;
}

chaos::ChaosOptions EpisodeOptions() {
  chaos::ChaosOptions opts;
  opts.seed = 7;
  opts.telemetry = true;
  // Episode-scale client failure detection (see ChaosOptions): applied
  // to every run here — including the telemetry-off arm of the
  // determinism check — so telemetry observes but never alters the sim.
  opts.client_rpc_timeout = 250 * kMillisecond;
  opts.client_op_deadline = 1 * kSecond;
  return opts;
}

// Max value of a captured health series inside [from, to] (absolute sim
// times); -1 when the series has no points there.
double MaxIn(const std::vector<telemetry::RingSeries::Point>& pts, Nanos from,
             Nanos to) {
  double best = -1;
  for (const auto& p : pts) {
    if (p.t >= from && p.t <= to) best = std::max(best, p.v);
  }
  return best;
}

const std::vector<telemetry::RingSeries::Point>* FindSeries(
    const chaos::ChaosReport& report, const std::string& needle) {
  for (const auto& [name, pts] : report.health_series) {
    if (name.find(needle) != std::string::npos) return &pts;
  }
  return nullptr;
}

int Main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  PrintHeader("Cluster telemetry pipeline (scrapes, health, SLO burn rate)",
              "observability harness; no single paper figure");

  int violations = 0;
  auto expect = [&violations](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "pass" : "FAIL", what);
    if (!ok) ++violations;
  };

  // ---- Pinned episode ----
  std::printf("\npinned episode: AZ-2 outage 3-5s, surge 6-7.2s, "
              "grey-slow ndb-dn-%d 7.5-9.5s (times after warm-up)\n\n",
              kGreyNode);
  chaos::ChaosOptions opts = EpisodeOptions();
  opts.telemetry_export_prefix = metrics::CsvDir() + "/telemetry_episode";
  opts.telemetry_dump_path = metrics::CsvDir() + "/telemetry_failure.json";
  chaos::ChaosReport report =
      chaos::RunChaosSchedule(opts, PinnedEpisode());
  std::printf("%s\n", report.Scorecard().c_str());

  expect(report.invariants_ok(), "all invariants hold (incl. telemetry)");

  // Locate the outage in absolute sim time via the health series (the
  // schedule is armed at t0 = warm-up start, after ~3s of pre-run
  // settling): the first scrape where az2 reads unavailable is at most
  // one scrape period after the injection.
  const auto* az2 = FindSeries(report, "health.az{az=2}");
  Nanos outage_abs = -1, restore_abs = -1;
  if (az2 != nullptr) {
    for (const auto& p : *az2) {
      if (p.v >= 2 && outage_abs < 0) outage_abs = p.t;
      if (outage_abs >= 0 && p.v < 2) {
        restore_abs = p.t;
        break;
      }
    }
  }
  expect(outage_abs >= 0, "health.az{az=2} reached unavailable");
  expect(restore_abs >= 0, "health.az{az=2} left unavailable after heal");

  // The surge later in the episode legitimately fires its own
  // availability alerts, so match the alert to the outage interval: the
  // earliest one that fired between the outage start and one fast
  // long-window past the restore.
  const Nanos fast_window = opts.telemetry_options.slo.rules[0].long_window;
  const telemetry::SloAlert* outage_alert = nullptr;
  for (const auto& a : report.alerts) {
    if (a.objective == "availability" && outage_abs >= 0 &&
        a.fired_at >= outage_abs - kSecond &&
        a.fired_at <= restore_abs + fast_window &&
        (outage_alert == nullptr || a.fired_at < outage_alert->fired_at)) {
      outage_alert = &a;
    }
  }
  expect(outage_alert != nullptr, "availability alert fired for the outage");
  if (outage_alert != nullptr) {
    expect(outage_alert->fired_at <= outage_abs + fast_window,
           "alert fired within one fast window of the outage");
    expect(!outage_alert->active(), "outage alert resolved");
    if (restore_abs >= 0 && !outage_alert->active()) {
      expect(outage_alert->resolved_at <= restore_abs + fast_window,
             "alert resolved within one fast window of the restore");
    }
    std::printf("\n");
  }

  // Grey-slow detection: the slowed NDB node must be flagged (per-op
  // service time vs its role peers) while degraded and healthy at the
  // end.
  {
    char needle[64];
    std::snprintf(needle, sizeof(needle), "host=ndb-dn-%d", kGreyNode);
    const auto* grey = FindSeries(report, needle);
    expect(grey != nullptr, "health series exists for the grey-slow node");
    if (grey != nullptr && !grey->empty()) {
      expect(MaxIn(*grey, 0, grey->back().t) >= 1,
             "grey-slow node was flagged while degraded");
      expect(grey->back().v == 0, "grey-slow node healthy at end of run");
    }
  }

  // The fault-set match is the telemetry-settle invariant; restate the
  // cluster-level outcome explicitly.
  expect(report.final_health.cluster == telemetry::HealthState::kHealthy,
         "cluster rolls up healthy after settle");
  expect(report.scrapes > 200, "scraper sampled the whole episode");

  // ---- Determinism: telemetry must not perturb the simulation ----
  {
    chaos::ChaosOptions on = EpisodeOptions();
    chaos::ChaosOptions off = EpisodeOptions();
    off.telemetry = false;
    chaos::ChaosReport run_on = chaos::RunChaosSchedule(on, PinnedEpisode());
    chaos::ChaosReport run_off = chaos::RunChaosSchedule(off, PinnedEpisode());
    expect(run_on.TraceString() == run_off.TraceString() &&
               run_on.completed == run_off.completed &&
               run_on.failed == run_off.failed,
           "byte-identical event trace and results with telemetry on vs off");
    chaos::ChaosReport replay = chaos::RunChaosSchedule(on, PinnedEpisode());
    bool alerts_match = replay.alerts.size() == run_on.alerts.size();
    for (size_t i = 0; alerts_match && i < replay.alerts.size(); ++i) {
      alerts_match = replay.alerts[i].fired_at == run_on.alerts[i].fired_at &&
                     replay.alerts[i].resolved_at ==
                         run_on.alerts[i].resolved_at;
    }
    expect(alerts_match, "alert timeline identical across same-seed replays");
  }

  // ---- Fault-free soak: the false-positive budget is zero ----
  const int soak_seeds = quick ? 6 : 40;
  std::printf("\nfault-free soak: %d seeds, telemetry on, empty schedule\n",
              soak_seeds);
  int soak_failures = 0;
  std::vector<double> col_seed, col_alerts, col_healthy;
  for (int i = 0; i < soak_seeds; ++i) {
    chaos::ChaosOptions sopts;
    sopts.seed = 9000 + i;
    sopts.telemetry = true;
    sopts.client_rpc_timeout = 250 * kMillisecond;
    sopts.client_op_deadline = 1 * kSecond;
    sopts.warmup = 2 * kSecond;
    sopts.fault_window = 4 * kSecond;
    sopts.settle = 4 * kSecond;
    chaos::ChaosReport r =
        chaos::RunChaosSchedule(sopts, chaos::FaultSchedule{});
    const bool healthy =
        r.final_health.cluster == telemetry::HealthState::kHealthy &&
        r.final_health.UnhealthyHosts().empty();
    if (!r.alerts.empty() || !r.invariants_ok() || !healthy) {
      ++soak_failures;
      std::printf("  seed %llu: %zu alert(s), %s\n",
                  static_cast<unsigned long long>(sopts.seed),
                  r.alerts.size(), r.final_health.ToString().c_str());
    }
    col_seed.push_back(static_cast<double>(sopts.seed));
    col_alerts.push_back(static_cast<double>(r.alerts.size()));
    col_healthy.push_back(healthy ? 1 : 0);
  }
  expect(soak_failures == 0, "zero alerts and all-healthy rollups across "
                             "the fault-free soak");

  metrics::WriteCsv(metrics::CsvDir() + "/telemetry_soak.csv",
                    {{"seed", col_seed},
                     {"alerts", col_alerts},
                     {"all_healthy", col_healthy}});
  std::printf("\nartifacts: %s.{json,prom,csv}, %s/telemetry_soak.csv\n",
              opts.telemetry_export_prefix.c_str(),
              metrics::CsvDir().c_str());

  if (violations > 0) {
    std::printf("\nRESULT: %d telemetry check(s) failed\n", violations);
    return 1;
  }
  std::printf("\nRESULT: telemetry pipeline checks all passed\n");
  return 0;
}

}  // namespace
}  // namespace repro::bench

int main(int argc, char** argv) { return repro::bench::Main(argc, argv); }
