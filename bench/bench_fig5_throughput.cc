// Figure 5: throughput of HopsFS, HopsFS-CL (and CephFS, see
// bench_fig6_per_mds for the CephFS variants) on the Spotify workload,
// sweeping the number of metadata servers.
//
// Shape targets (paper): HopsFS (2,1) highest among single-AZ vanilla
// setups; 3-AZ vanilla deployments lose 17-22%; HopsFS-CL recovers the
// loss (CL (2,3) ~ +17% over HopsFS (2,3), CL (3,3) ~ +36% over HopsFS
// (3,3)) and the gap grows with the number of namenodes.
#include <cstdio>
#include <ctime>

#include "bench_common.h"
#include "cephfs_bench_common.h"

namespace repro::bench {
namespace {

void Main() {
  PrintHeader("Throughput vs number of metadata servers (Spotify workload)",
              "Figure 5");

  const auto nn_counts = PaperNnCounts();

  std::printf("\n%-18s", "setup");
  for (int n : nn_counts) std::printf("%10d", n);
  std::printf("\n");

  for (auto setup : AllHopsFsSetups()) {
    std::printf("%-18s", hopsfs::PaperSetupName(setup));
    std::fflush(stdout);
    for (int n : nn_counts) {
      RunConfig cfg;
      cfg.setup = setup;
      cfg.num_namenodes = n;
      const auto out = RunHopsFsWorkload(cfg);
      std::printf("%10s", Mops(out.results.ops_per_sec()).c_str());
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  for (auto variant : AllCephVariants()) {
    std::printf("%-18s", CephVariantName(variant));
    std::fflush(stdout);
    for (int n : nn_counts) {
      CephRunConfig cfg;
      cfg.variant = variant;
      cfg.num_mds = n;
      const auto out = RunCephWorkload(cfg);
      std::printf("%10s", Mops(out.results.ops_per_sec()).c_str());
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf(
      "\nPaper peaks @60 NNs: HopsFS(2,1)=1.62M, HopsFS(3,1)=1.56M,\n"
      "HopsFS(2,3)=-17%% vs (2,1), HopsFS(3,3)=-22%%, CL(2,3)=+17%% vs\n"
      "HopsFS(2,3), CL(3,3)=+36%% vs HopsFS(3,3) (peak 1.66M), CephFS\n"
      "default up to 0.77M, CL delivers 2.14x CephFS.\n");
}

}  // namespace
}  // namespace repro::bench

int main() {
  const std::clock_t t0 = std::clock();
  repro::bench::Main();
  std::printf("[wall: %.1fs cpu]\n",
              static_cast<double>(std::clock() - t0) / CLOCKS_PER_SEC);
  return 0;
}
