// Figure 6: actual metadata requests handled per metadata server —
// HopsFS-CL (every client op reaches a namenode) versus the CephFS
// variants (the kernel cache absorbs most requests before the MDS).
// Paper anchors: CephFS-DirPinned 4233 req/s at 1 MDS falling to 1178 at
// 60; HopsFS-CL handles up to 23x more requests per server.
#include <cstdio>

#include "bench_common.h"
#include "cephfs_bench_common.h"

namespace repro::bench {
namespace {

void Main() {
  PrintHeader("Requests handled per metadata server (log2-style series)",
              "Figure 6");

  const auto counts = PaperNnCounts();
  std::printf("\n%-22s", "setup");
  for (int n : counts) std::printf("%10d", n);
  std::printf("\n");

  for (auto setup : {hopsfs::PaperSetup::kHopsFsCl_2_3,
                     hopsfs::PaperSetup::kHopsFsCl_3_3}) {
    std::printf("%-22s", hopsfs::PaperSetupName(setup));
    std::fflush(stdout);
    for (int n : counts) {
      RunConfig cfg;
      cfg.setup = setup;
      cfg.num_namenodes = n;
      const auto out = RunHopsFsWorkload(cfg);
      // Every client op is served by a namenode.
      const double per_nn = out.results.ops_per_sec() / n;
      std::printf("%10.0f", per_nn);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  for (auto variant : AllCephVariants()) {
    std::printf("%-22s", CephVariantName(variant));
    std::fflush(stdout);
    for (int n : counts) {
      CephRunConfig cfg;
      cfg.variant = variant;
      cfg.num_mds = n;
      const auto out = RunCephWorkload(cfg);
      const double per_mds =
          static_cast<double>(out.mds_handled_ops) /
          ToSeconds(out.results.window) / n;
      std::printf("%10.0f", per_mds);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf(
      "\nPaper: DirPinned 4233 req/s @1 MDS -> 1178 @60; HopsFS-CL handles\n"
      "up to 23x more requests per server than CephFS-DirPinned because no\n"
      "client cache absorbs its requests.\n");
}

}  // namespace
}  // namespace repro::bench

int main() {
  repro::bench::Main();
  return 0;
}
