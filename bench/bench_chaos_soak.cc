// Chaos soak: N seeded randomized fault schedules against HopsFS-CL (3,3).
//
// Each seed builds a fresh deployment, runs the Spotify workload through
// warm-up -> fault window -> settle while a randomized schedule injects
// crashes, AZ outages, partitions (symmetric and one-way), latency
// inflation, message drops and grey-slow nodes, then checks the safety
// invariants and prints an availability scorecard. A final run with the
// deliberate lost-acked-write bug enabled demonstrates that the
// durability invariant actually catches violations.
//
// REPRO_CHAOS_SEEDS=n overrides the seed count (CI smoke uses a small
// pinned value); REPRO_FULL=1 doubles it. Exit status is non-zero if any
// clean run violates an invariant or the planted bug goes undetected.
#include <cstdio>
#include <cstdlib>
#include <set>

#include "bench_common.h"
#include "chaos/harness.h"
#include "metrics/timeseries.h"

namespace repro::bench {
namespace {

int SeedCount() {
  if (const char* env = std::getenv("REPRO_CHAOS_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return FullScale() ? 40 : 20;
}

int Main() {
  PrintHeader("Chaos soak (deterministic fault schedules)",
              "robustness harness; no single paper figure");
  const int seeds = SeedCount();
  std::printf("\nrunning %d seeded schedules against HopsFS-CL (3,3)...\n\n",
              seeds);

  int violations = 0;
  std::set<chaos::FaultType> types_seen;
  std::vector<double> col_seed, col_warmup, col_fault, col_settle, col_ok;
  for (int i = 0; i < seeds; ++i) {
    chaos::ChaosOptions opts;
    opts.seed = 1000 + i;
    chaos::ChaosReport report = chaos::RunChaosSchedule(opts);
    for (chaos::FaultType t :
         chaos::FaultSchedule::Random(opts.seed, chaos::RandomFaultOptions{})
             .FaultTypes()) {
      types_seen.insert(t);
    }
    if (!report.invariants_ok()) ++violations;
    std::printf("%s\n", report.Scorecard().c_str());
    col_seed.push_back(static_cast<double>(opts.seed));
    col_warmup.push_back(report.goodput.warmup_ops_per_sec);
    col_fault.push_back(report.goodput.fault_ops_per_sec);
    col_settle.push_back(report.goodput.settle_ops_per_sec);
    col_ok.push_back(report.invariants_ok() ? 1 : 0);
  }
  std::printf("distinct fault types exercised across schedules: %d\n",
              static_cast<int>(types_seen.size()));

  // Replay check: the determinism invariant across full runs. Seed 1000
  // must reproduce its event trace byte-for-byte; a different seed must
  // not.
  {
    chaos::ChaosOptions opts;
    opts.seed = 1000;
    const std::string trace_a = chaos::RunChaosSchedule(opts).TraceString();
    const std::string trace_b = chaos::RunChaosSchedule(opts).TraceString();
    opts.seed = 1001;
    const std::string trace_c = chaos::RunChaosSchedule(opts).TraceString();
    const bool replay_ok = trace_a == trace_b && trace_a != trace_c;
    std::printf("replay determinism: same seed %s, different seed %s\n",
                trace_a == trace_b ? "identical" : "DIVERGED (BUG)",
                trace_a != trace_c ? "differs" : "IDENTICAL (BUG)");
    if (!replay_ok) ++violations;
  }

  // Planted-bug run: the TC-level lost-acked-write hook fires mid-window;
  // the durability invariant MUST flag it.
  {
    chaos::ChaosOptions opts;
    opts.seed = 4242;
    opts.enable_test_ack_loss_bug = true;
    chaos::ChaosReport buggy = chaos::RunChaosSchedule(opts);
    bool durability_failed = false;
    for (const auto& r : buggy.invariants) {
      if (r.name == "durability" && !r.ok) durability_failed = true;
    }
    std::printf("\nplanted lost-acked-write bug: %s\n",
                durability_failed
                    ? "caught by the durability invariant (good)"
                    : "NOT DETECTED (checker is broken)");
    std::printf("%s\n", buggy.Scorecard().c_str());
    if (!durability_failed) ++violations;
  }

  metrics::WriteCsv(metrics::CsvDir() + "/chaos_soak.csv",
                    {{"seed", col_seed},
                     {"warmup_ops_per_sec", col_warmup},
                     {"fault_ops_per_sec", col_fault},
                     {"settle_ops_per_sec", col_settle},
                     {"invariants_ok", col_ok}});

  if (violations > 0) {
    std::printf("\nRESULT: %d run(s) violated expectations\n", violations);
    return 1;
  }
  std::printf("\nRESULT: all %d schedules passed every safety invariant\n",
              seeds);
  return 0;
}

}  // namespace
}  // namespace repro::bench

int main() { return repro::bench::Main(); }
