#include "cephfs_bench_common.h"

#include "bench_common.h"
#include "workload/fs_interface.h"

namespace repro::bench {

std::vector<cephfs::CephVariant> AllCephVariants() {
  return {cephfs::CephVariant::kDefault, cephfs::CephVariant::kDirPinned,
          cephfs::CephVariant::kSkipKCache};
}

const char* CephVariantName(cephfs::CephVariant variant) {
  return cephfs::CephVariantLabel(variant);
}

CephRunOutput RunCephWorkload(const CephRunConfig& config) {
  const int clients_per_mds =
      config.clients_per_mds > 0 ? config.clients_per_mds
                                 : (FullScale() ? 64 : 32);
  const Nanos warmup =
      config.warmup > 0 ? config.warmup
                        : (FullScale() ? 400 * kMillisecond
                                       : 200 * kMillisecond);
  const Nanos measure =
      config.measure > 0 ? config.measure
                         : (FullScale() ? 1 * kSecond : 500 * kMillisecond);

  Simulation sim(config.seed);
  Topology topology(3, AzLatencyTable::UsWest1());
  Network network(sim, topology);

  cephfs::CephConfig ceph_config;
  ceph_config.variant = config.variant;
  ceph_config.num_mds = config.num_mds;
  cephfs::CephCluster cluster(sim, network, ceph_config);

  workload::SpotifyWorkload workload(config.ns, config.seed);
  cluster.BootstrapNamespace(workload.all_dirs(), workload.all_files());
  cluster.Start();

  std::vector<std::unique_ptr<workload::CephFsTarget>> targets;
  std::vector<workload::FsTarget*> target_ptrs;
  const int total_clients = clients_per_mds * config.num_mds;
  for (int i = 0; i < total_clients; ++i) {
    targets.push_back(std::make_unique<workload::CephFsTarget>(
        cluster.AddClient(i % 3)));
    target_ptrs.push_back(targets.back().get());
  }
  // Steady-state kernel caches: prewarm the hot working set.
  cluster.PrewarmClientCaches(workload.PopularPaths(2048));
  sim.RunFor(1 * kSecond);

  workload::OpSource source;
  if (config.op_source_factory) {
    source = config.op_source_factory(workload);
  } else {
    source = [&workload](Rng& rng, std::vector<std::string>& owned) {
      return workload.Next(rng, owned);
    };
  }
  workload::ClosedLoopDriver driver(sim, target_ptrs, std::move(source));

  Nanos window_start = 0;
  int64_t handled_before = 0;
  auto results = driver.Run(warmup, measure, [&] {
    cluster.ResetStats();
    network.ResetStats();
    window_start = sim.now();
    for (int r = 0; r < cluster.num_mds(); ++r) {
      handled_before += cluster.mds(r).handled_ops();
    }
  });

  CephRunOutput out;
  out.setup_name = cephfs::CephVariantLabel(config.variant);
  out.num_mds = config.num_mds;
  out.results = std::move(results);

  const double secs = ToSeconds(sim.now() - window_start);
  const double mb = 1e6;
  for (int r = 0; r < cluster.num_mds(); ++r) {
    auto& m = cluster.mds(r);
    out.mds_handled_ops += m.handled_ops();
    out.mds_cpu_util += m.cpu_pool().Utilization(window_start);
    const auto& hs = network.host_stats(m.host());
    out.mds_net_read_mbps += static_cast<double>(hs.bytes_received);
    out.mds_net_write_mbps += static_cast<double>(hs.bytes_sent);
  }
  out.mds_handled_ops -= handled_before;
  out.mds_cpu_util /= cluster.num_mds();
  if (secs > 0) {
    out.mds_net_read_mbps /= cluster.num_mds() * secs * mb;
    out.mds_net_write_mbps /= cluster.num_mds() * secs * mb;
  }

  for (int i = 0; i < cluster.num_osds(); ++i) {
    auto& o = cluster.osd(i);
    out.osd_cpu_util += o.cpu().Utilization(window_start);
    out.osd_disk_write_mbps +=
        static_cast<double>(o.disk().stats().bytes_written);
    out.osd_disk_read_mbps +=
        static_cast<double>(o.disk().stats().bytes_read);
    const auto& hs = network.host_stats(o.host());
    out.osd_net_read_mbps += static_cast<double>(hs.bytes_received);
    out.osd_net_write_mbps += static_cast<double>(hs.bytes_sent);
  }
  out.osd_cpu_util /= cluster.num_osds();
  if (secs > 0) {
    const double d = cluster.num_osds() * secs * mb;
    out.osd_disk_write_mbps /= d;
    out.osd_disk_read_mbps /= d;
    out.osd_net_read_mbps /= d;
    out.osd_net_write_mbps /= d;
  }

  int64_t hits = 0, misses = 0;
  for (auto& t : targets) {
    (void)t;
  }
  for (int c = 0; c < total_clients; ++c) {
    hits += cluster.client(c)->cache_hits();
    misses += cluster.client(c)->cache_misses();
  }
  if (hits + misses > 0) {
    out.client_cache_hit_rate =
        static_cast<double>(hits) / static_cast<double>(hits + misses);
  }
  return out;
}

}  // namespace repro::bench
