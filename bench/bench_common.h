// Shared harness for the paper-reproduction benchmarks.
//
// Every bench binary builds deployments through RunHopsFsWorkload /
// (CephFS equivalents live in cephfs_bench_common.h), which runs the
// closed-loop Spotify-style workload and captures throughput, latency and
// resource-utilisation metrics for the figure being reproduced.
//
// Scale note: the simulator reproduces *shapes*, not absolute testbed
// numbers (see EXPERIMENTS.md). The default "quick" scale keeps the whole
// bench suite runnable in minutes; set REPRO_FULL=1 for longer windows
// and more closed-loop clients.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "hopsfs/deployment.h"
#include "workload/driver.h"
#include "workload/spotify.h"

namespace repro::bench {

bool FullScale();

struct RunConfig {
  hopsfs::PaperSetup setup = hopsfs::PaperSetup::kHopsFs_2_1;
  int num_namenodes = 6;
  int clients_per_nn = 0;       // 0 = scale default
  Nanos warmup = 0;             // 0 = scale default
  Nanos measure = 0;
  workload::NamespaceConfig ns;
  uint64_t seed = 1;
  // Optional overrides applied to the deployment options.
  std::function<void(hopsfs::DeploymentOptions&)> tweak;
  // Optional hook invoked on the freshly built Simulation before the
  // deployment exists — the place to arm the tracer (sampling knob, sink)
  // for observability benches.
  std::function<void(Simulation&)> sim_setup;
  // Optional replacement op source (micro-benchmarks); default Spotify.
  // The factory receives the run's workload/namespace so single-op
  // sources can pick valid paths.
  std::function<workload::OpSource(const workload::SpotifyWorkload&)>
      op_source_factory;
};

struct ResourceStats {
  // Metadata storage layer (averages per NDB datanode).
  double ndb_cpu_util = 0;                       // Fig. 10a
  ndb::NdbCluster::ThreadUtilization ndb_threads{};  // Fig. 11
  double ndb_net_read_mbps = 0;                  // Fig. 12a (per node)
  double ndb_net_write_mbps = 0;                 // Fig. 12b
  double ndb_disk_read_mbps = 0;                 // Fig. 12c
  double ndb_disk_write_mbps = 0;                // Fig. 12d
  // Metadata serving layer (averages per namenode).
  double nn_cpu_util = 0;                        // Fig. 10b
  double nn_net_read_mbps = 0;                   // Fig. 13a
  double nn_net_write_mbps = 0;                  // Fig. 13b
  // AZ traffic (§V-E).
  double inter_az_mbps = 0;
  double intra_az_mbps = 0;
};

struct RunOutput {
  std::string setup_name;
  int num_namenodes = 0;
  workload::DriverResults results;
  ResourceStats resources;
  int64_t txn_retries = 0;
  int64_t lock_grants = 0;
  int64_t lock_waits = 0;
  int64_t lock_timeouts = 0;
  double avg_lock_wait_ms = 0;
  // Per-partition replica read counts (Fig. 14).
  std::vector<std::vector<int64_t>> replica_reads;
  std::vector<std::vector<ndb::NodeId>> replica_chains;
  std::vector<AzId> ndb_node_az;
};

RunOutput RunHopsFsWorkload(const RunConfig& config);

// The NN counts swept by the paper's figures.
std::vector<int> PaperNnCounts();
// Shorter sweep for the resource-utilisation figures in quick mode.
std::vector<int> ResourceSweepCounts();
// Metadata-server count for the fixed-size experiments (60 in the paper;
// 24 in quick mode).
int FixedServerCount();

// Single-operation workloads for Fig. 7 / Fig. 9 (mkdir, createFile,
// deleteFile, readFile). Delete alternates create/delete; its per-op
// histogram separates the two.
std::function<workload::OpSource(const workload::SpotifyWorkload&)>
MicroOpSourceFactory(workload::FsOp op);

// All six HopsFS/HopsFS-CL setups of Fig. 5.
std::vector<hopsfs::PaperSetup> AllHopsFsSetups();

// Formatting helpers: benches print aligned tables to stdout.
void PrintHeader(const std::string& title, const std::string& figure);
std::string Mops(double ops_per_sec);

}  // namespace repro::bench
