
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ndb/client.cc" "src/ndb/CMakeFiles/repro_ndb.dir/client.cc.o" "gcc" "src/ndb/CMakeFiles/repro_ndb.dir/client.cc.o.d"
  "/root/repo/src/ndb/cluster.cc" "src/ndb/CMakeFiles/repro_ndb.dir/cluster.cc.o" "gcc" "src/ndb/CMakeFiles/repro_ndb.dir/cluster.cc.o.d"
  "/root/repo/src/ndb/datanode.cc" "src/ndb/CMakeFiles/repro_ndb.dir/datanode.cc.o" "gcc" "src/ndb/CMakeFiles/repro_ndb.dir/datanode.cc.o.d"
  "/root/repo/src/ndb/layout.cc" "src/ndb/CMakeFiles/repro_ndb.dir/layout.cc.o" "gcc" "src/ndb/CMakeFiles/repro_ndb.dir/layout.cc.o.d"
  "/root/repo/src/ndb/lock_manager.cc" "src/ndb/CMakeFiles/repro_ndb.dir/lock_manager.cc.o" "gcc" "src/ndb/CMakeFiles/repro_ndb.dir/lock_manager.cc.o.d"
  "/root/repo/src/ndb/row_store.cc" "src/ndb/CMakeFiles/repro_ndb.dir/row_store.cc.o" "gcc" "src/ndb/CMakeFiles/repro_ndb.dir/row_store.cc.o.d"
  "/root/repo/src/ndb/types.cc" "src/ndb/CMakeFiles/repro_ndb.dir/types.cc.o" "gcc" "src/ndb/CMakeFiles/repro_ndb.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/repro_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
