# Empty compiler generated dependencies file for repro_ndb.
# This may be replaced when dependencies are built.
