file(REMOVE_RECURSE
  "CMakeFiles/repro_ndb.dir/client.cc.o"
  "CMakeFiles/repro_ndb.dir/client.cc.o.d"
  "CMakeFiles/repro_ndb.dir/cluster.cc.o"
  "CMakeFiles/repro_ndb.dir/cluster.cc.o.d"
  "CMakeFiles/repro_ndb.dir/datanode.cc.o"
  "CMakeFiles/repro_ndb.dir/datanode.cc.o.d"
  "CMakeFiles/repro_ndb.dir/layout.cc.o"
  "CMakeFiles/repro_ndb.dir/layout.cc.o.d"
  "CMakeFiles/repro_ndb.dir/lock_manager.cc.o"
  "CMakeFiles/repro_ndb.dir/lock_manager.cc.o.d"
  "CMakeFiles/repro_ndb.dir/row_store.cc.o"
  "CMakeFiles/repro_ndb.dir/row_store.cc.o.d"
  "CMakeFiles/repro_ndb.dir/types.cc.o"
  "CMakeFiles/repro_ndb.dir/types.cc.o.d"
  "librepro_ndb.a"
  "librepro_ndb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_ndb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
