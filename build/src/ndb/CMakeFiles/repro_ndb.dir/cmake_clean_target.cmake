file(REMOVE_RECURSE
  "librepro_ndb.a"
)
