file(REMOVE_RECURSE
  "librepro_metrics.a"
)
