file(REMOVE_RECURSE
  "CMakeFiles/repro_metrics.dir/timeseries.cc.o"
  "CMakeFiles/repro_metrics.dir/timeseries.cc.o.d"
  "librepro_metrics.a"
  "librepro_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
