# Empty compiler generated dependencies file for repro_metrics.
# This may be replaced when dependencies are built.
