file(REMOVE_RECURSE
  "CMakeFiles/repro_sim.dir/engine.cc.o"
  "CMakeFiles/repro_sim.dir/engine.cc.o.d"
  "CMakeFiles/repro_sim.dir/network.cc.o"
  "CMakeFiles/repro_sim.dir/network.cc.o.d"
  "CMakeFiles/repro_sim.dir/resources.cc.o"
  "CMakeFiles/repro_sim.dir/resources.cc.o.d"
  "CMakeFiles/repro_sim.dir/topology.cc.o"
  "CMakeFiles/repro_sim.dir/topology.cc.o.d"
  "librepro_sim.a"
  "librepro_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
