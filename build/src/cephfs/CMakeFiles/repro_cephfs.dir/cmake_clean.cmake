file(REMOVE_RECURSE
  "CMakeFiles/repro_cephfs.dir/client.cc.o"
  "CMakeFiles/repro_cephfs.dir/client.cc.o.d"
  "CMakeFiles/repro_cephfs.dir/cluster.cc.o"
  "CMakeFiles/repro_cephfs.dir/cluster.cc.o.d"
  "CMakeFiles/repro_cephfs.dir/mds.cc.o"
  "CMakeFiles/repro_cephfs.dir/mds.cc.o.d"
  "CMakeFiles/repro_cephfs.dir/osd.cc.o"
  "CMakeFiles/repro_cephfs.dir/osd.cc.o.d"
  "librepro_cephfs.a"
  "librepro_cephfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_cephfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
