# Empty compiler generated dependencies file for repro_cephfs.
# This may be replaced when dependencies are built.
