file(REMOVE_RECURSE
  "librepro_cephfs.a"
)
