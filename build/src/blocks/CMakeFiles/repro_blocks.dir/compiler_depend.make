# Empty compiler generated dependencies file for repro_blocks.
# This may be replaced when dependencies are built.
