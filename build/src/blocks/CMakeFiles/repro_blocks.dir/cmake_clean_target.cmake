file(REMOVE_RECURSE
  "librepro_blocks.a"
)
