file(REMOVE_RECURSE
  "CMakeFiles/repro_blocks.dir/datanode.cc.o"
  "CMakeFiles/repro_blocks.dir/datanode.cc.o.d"
  "CMakeFiles/repro_blocks.dir/placement.cc.o"
  "CMakeFiles/repro_blocks.dir/placement.cc.o.d"
  "librepro_blocks.a"
  "librepro_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
