# Empty compiler generated dependencies file for repro_hopsfs.
# This may be replaced when dependencies are built.
