file(REMOVE_RECURSE
  "librepro_hopsfs.a"
)
