file(REMOVE_RECURSE
  "CMakeFiles/repro_hopsfs.dir/client.cc.o"
  "CMakeFiles/repro_hopsfs.dir/client.cc.o.d"
  "CMakeFiles/repro_hopsfs.dir/deployment.cc.o"
  "CMakeFiles/repro_hopsfs.dir/deployment.cc.o.d"
  "CMakeFiles/repro_hopsfs.dir/fsschema.cc.o"
  "CMakeFiles/repro_hopsfs.dir/fsschema.cc.o.d"
  "CMakeFiles/repro_hopsfs.dir/leader.cc.o"
  "CMakeFiles/repro_hopsfs.dir/leader.cc.o.d"
  "CMakeFiles/repro_hopsfs.dir/namenode.cc.o"
  "CMakeFiles/repro_hopsfs.dir/namenode.cc.o.d"
  "CMakeFiles/repro_hopsfs.dir/namenode_ops.cc.o"
  "CMakeFiles/repro_hopsfs.dir/namenode_ops.cc.o.d"
  "librepro_hopsfs.a"
  "librepro_hopsfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_hopsfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
