file(REMOVE_RECURSE
  "CMakeFiles/repro_util.dir/codec.cc.o"
  "CMakeFiles/repro_util.dir/codec.cc.o.d"
  "CMakeFiles/repro_util.dir/histogram.cc.o"
  "CMakeFiles/repro_util.dir/histogram.cc.o.d"
  "CMakeFiles/repro_util.dir/logging.cc.o"
  "CMakeFiles/repro_util.dir/logging.cc.o.d"
  "CMakeFiles/repro_util.dir/rng.cc.o"
  "CMakeFiles/repro_util.dir/rng.cc.o.d"
  "CMakeFiles/repro_util.dir/status.cc.o"
  "CMakeFiles/repro_util.dir/status.cc.o.d"
  "CMakeFiles/repro_util.dir/strings.cc.o"
  "CMakeFiles/repro_util.dir/strings.cc.o.d"
  "librepro_util.a"
  "librepro_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
