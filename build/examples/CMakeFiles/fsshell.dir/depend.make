# Empty dependencies file for fsshell.
# This may be replaced when dependencies are built.
