# Empty compiler generated dependencies file for az_failover.
# This may be replaced when dependencies are built.
