file(REMOVE_RECURSE
  "CMakeFiles/az_failover.dir/az_failover.cpp.o"
  "CMakeFiles/az_failover.dir/az_failover.cpp.o.d"
  "az_failover"
  "az_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/az_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
