# Empty compiler generated dependencies file for block_storage.
# This may be replaced when dependencies are built.
