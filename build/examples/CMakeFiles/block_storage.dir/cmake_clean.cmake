file(REMOVE_RECURSE
  "CMakeFiles/block_storage.dir/block_storage.cpp.o"
  "CMakeFiles/block_storage.dir/block_storage.cpp.o.d"
  "block_storage"
  "block_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
