file(REMOVE_RECURSE
  "CMakeFiles/spotify_workload.dir/spotify_workload.cpp.o"
  "CMakeFiles/spotify_workload.dir/spotify_workload.cpp.o.d"
  "spotify_workload"
  "spotify_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spotify_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
