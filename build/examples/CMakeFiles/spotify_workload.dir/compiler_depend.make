# Empty compiler generated dependencies file for spotify_workload.
# This may be replaced when dependencies are built.
