# Empty compiler generated dependencies file for bench_table1_az_latency.
# This may be replaced when dependencies are built.
