file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_percentiles.dir/bench_fig9_percentiles.cc.o"
  "CMakeFiles/bench_fig9_percentiles.dir/bench_fig9_percentiles.cc.o.d"
  "bench_fig9_percentiles"
  "bench_fig9_percentiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_percentiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
