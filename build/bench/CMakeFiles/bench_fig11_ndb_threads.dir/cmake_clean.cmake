file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_ndb_threads.dir/bench_fig11_ndb_threads.cc.o"
  "CMakeFiles/bench_fig11_ndb_threads.dir/bench_fig11_ndb_threads.cc.o.d"
  "bench_fig11_ndb_threads"
  "bench_fig11_ndb_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_ndb_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
