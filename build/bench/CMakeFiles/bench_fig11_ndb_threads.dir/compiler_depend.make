# Empty compiler generated dependencies file for bench_fig11_ndb_threads.
# This may be replaced when dependencies are built.
