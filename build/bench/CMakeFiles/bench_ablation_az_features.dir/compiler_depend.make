# Empty compiler generated dependencies file for bench_ablation_az_features.
# This may be replaced when dependencies are built.
