# Empty compiler generated dependencies file for bench_fig7_micro_ops.
# This may be replaced when dependencies are built.
