# Empty compiler generated dependencies file for bench_fig12_storage_io.
# This may be replaced when dependencies are built.
