file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_storage_io.dir/bench_fig12_storage_io.cc.o"
  "CMakeFiles/bench_fig12_storage_io.dir/bench_fig12_storage_io.cc.o.d"
  "bench_fig12_storage_io"
  "bench_fig12_storage_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_storage_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
