
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig14_read_backup.cc" "bench/CMakeFiles/bench_fig14_read_backup.dir/bench_fig14_read_backup.cc.o" "gcc" "bench/CMakeFiles/bench_fig14_read_backup.dir/bench_fig14_read_backup.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/repro_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/repro_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cephfs/CMakeFiles/repro_cephfs.dir/DependInfo.cmake"
  "/root/repo/build/src/hopsfs/CMakeFiles/repro_hopsfs.dir/DependInfo.cmake"
  "/root/repo/build/src/ndb/CMakeFiles/repro_ndb.dir/DependInfo.cmake"
  "/root/repo/build/src/blocks/CMakeFiles/repro_blocks.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/repro_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
