file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_read_backup.dir/bench_fig14_read_backup.cc.o"
  "CMakeFiles/bench_fig14_read_backup.dir/bench_fig14_read_backup.cc.o.d"
  "bench_fig14_read_backup"
  "bench_fig14_read_backup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_read_backup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
