file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_per_mds.dir/bench_fig6_per_mds.cc.o"
  "CMakeFiles/bench_fig6_per_mds.dir/bench_fig6_per_mds.cc.o.d"
  "bench_fig6_per_mds"
  "bench_fig6_per_mds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_per_mds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
