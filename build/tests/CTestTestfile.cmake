# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/ndb_commit_protocol_test[1]_include.cmake")
include("/root/repo/build/tests/ndb_routing_test[1]_include.cmake")
include("/root/repo/build/tests/hopsfs_ops_test[1]_include.cmake")
include("/root/repo/build/tests/cephfs_test[1]_include.cmake")
include("/root/repo/build/tests/blocks_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/hopsfs_model_test[1]_include.cmake")
include("/root/repo/build/tests/ndb_property_test[1]_include.cmake")
include("/root/repo/build/tests/ndb_failure_test[1]_include.cmake")
include("/root/repo/build/tests/hopsfs_extended_ops_test[1]_include.cmake")
include("/root/repo/build/tests/integration_shapes_test[1]_include.cmake")
include("/root/repo/build/tests/ndb_protocol_fidelity_test[1]_include.cmake")
include("/root/repo/build/tests/hopsfs_permissions_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/ndb_durability_test[1]_include.cmake")
include("/root/repo/build/tests/ndb_lock_manager_test[1]_include.cmake")
