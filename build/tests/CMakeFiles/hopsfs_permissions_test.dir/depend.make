# Empty dependencies file for hopsfs_permissions_test.
# This may be replaced when dependencies are built.
