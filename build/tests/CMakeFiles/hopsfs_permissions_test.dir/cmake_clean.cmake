file(REMOVE_RECURSE
  "CMakeFiles/hopsfs_permissions_test.dir/hopsfs_permissions_test.cc.o"
  "CMakeFiles/hopsfs_permissions_test.dir/hopsfs_permissions_test.cc.o.d"
  "hopsfs_permissions_test"
  "hopsfs_permissions_test.pdb"
  "hopsfs_permissions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hopsfs_permissions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
