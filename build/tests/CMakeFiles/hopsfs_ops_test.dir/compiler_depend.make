# Empty compiler generated dependencies file for hopsfs_ops_test.
# This may be replaced when dependencies are built.
