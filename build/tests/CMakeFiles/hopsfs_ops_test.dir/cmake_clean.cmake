file(REMOVE_RECURSE
  "CMakeFiles/hopsfs_ops_test.dir/hopsfs_ops_test.cc.o"
  "CMakeFiles/hopsfs_ops_test.dir/hopsfs_ops_test.cc.o.d"
  "hopsfs_ops_test"
  "hopsfs_ops_test.pdb"
  "hopsfs_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hopsfs_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
