file(REMOVE_RECURSE
  "CMakeFiles/hopsfs_model_test.dir/hopsfs_model_test.cc.o"
  "CMakeFiles/hopsfs_model_test.dir/hopsfs_model_test.cc.o.d"
  "hopsfs_model_test"
  "hopsfs_model_test.pdb"
  "hopsfs_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hopsfs_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
