# Empty compiler generated dependencies file for hopsfs_model_test.
# This may be replaced when dependencies are built.
