# Empty dependencies file for ndb_durability_test.
# This may be replaced when dependencies are built.
