file(REMOVE_RECURSE
  "CMakeFiles/ndb_durability_test.dir/ndb_durability_test.cc.o"
  "CMakeFiles/ndb_durability_test.dir/ndb_durability_test.cc.o.d"
  "ndb_durability_test"
  "ndb_durability_test.pdb"
  "ndb_durability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndb_durability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
