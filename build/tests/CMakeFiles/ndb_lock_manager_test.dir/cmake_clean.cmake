file(REMOVE_RECURSE
  "CMakeFiles/ndb_lock_manager_test.dir/ndb_lock_manager_test.cc.o"
  "CMakeFiles/ndb_lock_manager_test.dir/ndb_lock_manager_test.cc.o.d"
  "ndb_lock_manager_test"
  "ndb_lock_manager_test.pdb"
  "ndb_lock_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndb_lock_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
