# Empty dependencies file for ndb_failure_test.
# This may be replaced when dependencies are built.
