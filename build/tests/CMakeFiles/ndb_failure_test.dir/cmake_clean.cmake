file(REMOVE_RECURSE
  "CMakeFiles/ndb_failure_test.dir/ndb_failure_test.cc.o"
  "CMakeFiles/ndb_failure_test.dir/ndb_failure_test.cc.o.d"
  "ndb_failure_test"
  "ndb_failure_test.pdb"
  "ndb_failure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndb_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
