# Empty dependencies file for ndb_commit_protocol_test.
# This may be replaced when dependencies are built.
