file(REMOVE_RECURSE
  "CMakeFiles/ndb_commit_protocol_test.dir/ndb_commit_protocol_test.cc.o"
  "CMakeFiles/ndb_commit_protocol_test.dir/ndb_commit_protocol_test.cc.o.d"
  "ndb_commit_protocol_test"
  "ndb_commit_protocol_test.pdb"
  "ndb_commit_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndb_commit_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
