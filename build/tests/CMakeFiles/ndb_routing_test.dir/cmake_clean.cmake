file(REMOVE_RECURSE
  "CMakeFiles/ndb_routing_test.dir/ndb_routing_test.cc.o"
  "CMakeFiles/ndb_routing_test.dir/ndb_routing_test.cc.o.d"
  "ndb_routing_test"
  "ndb_routing_test.pdb"
  "ndb_routing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndb_routing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
