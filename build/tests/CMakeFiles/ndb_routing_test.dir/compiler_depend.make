# Empty compiler generated dependencies file for ndb_routing_test.
# This may be replaced when dependencies are built.
