file(REMOVE_RECURSE
  "CMakeFiles/ndb_property_test.dir/ndb_property_test.cc.o"
  "CMakeFiles/ndb_property_test.dir/ndb_property_test.cc.o.d"
  "ndb_property_test"
  "ndb_property_test.pdb"
  "ndb_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndb_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
