# Empty compiler generated dependencies file for ndb_property_test.
# This may be replaced when dependencies are built.
