# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for hopsfs_extended_ops_test.
