# Empty dependencies file for hopsfs_extended_ops_test.
# This may be replaced when dependencies are built.
