file(REMOVE_RECURSE
  "CMakeFiles/ndb_protocol_fidelity_test.dir/ndb_protocol_fidelity_test.cc.o"
  "CMakeFiles/ndb_protocol_fidelity_test.dir/ndb_protocol_fidelity_test.cc.o.d"
  "ndb_protocol_fidelity_test"
  "ndb_protocol_fidelity_test.pdb"
  "ndb_protocol_fidelity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndb_protocol_fidelity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
