# Empty dependencies file for ndb_protocol_fidelity_test.
# This may be replaced when dependencies are built.
