file(REMOVE_RECURSE
  "CMakeFiles/cephfs_test.dir/cephfs_test.cc.o"
  "CMakeFiles/cephfs_test.dir/cephfs_test.cc.o.d"
  "cephfs_test"
  "cephfs_test.pdb"
  "cephfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cephfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
