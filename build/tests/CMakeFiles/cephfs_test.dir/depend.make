# Empty dependencies file for cephfs_test.
# This may be replaced when dependencies are built.
