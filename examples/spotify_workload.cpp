// spotify_workload: runs the paper's industrial workload (§V-B1) against
// two deployments of the metadata stack — vanilla HopsFS spread over 3
// AZs versus HopsFS-CL — and prints the side-by-side result the paper's
// evaluation is about: AZ awareness turns the cross-AZ latency tax back
// into throughput.
//
//   ./build/examples/spotify_workload
#include <cstdio>

#include "hopsfs/deployment.h"
#include "workload/driver.h"
#include "workload/fs_interface.h"

using namespace repro;

namespace {

struct Outcome {
  double ops_per_sec;
  double mean_ms;
  double p99_ms;
  double inter_az_mb;
};

Outcome RunOne(hopsfs::PaperSetup setup) {
  Simulation sim(7);
  auto options = hopsfs::DeploymentOptions::FromPaperSetup(setup, 6);
  hopsfs::Deployment fs(sim, options);
  fs.Start();

  workload::NamespaceConfig ns;
  ns.users = 128;
  workload::SpotifyWorkload wl(ns, 7);
  fs.BootstrapNamespace(wl.all_dirs(), wl.all_files());

  std::vector<std::unique_ptr<workload::HopsFsTarget>> targets;
  std::vector<workload::FsTarget*> ptrs;
  for (int i = 0; i < 96; ++i) {
    targets.push_back(
        std::make_unique<workload::HopsFsTarget>(fs.AddClient()));
    ptrs.push_back(targets.back().get());
  }
  sim.RunFor(Seconds(3));

  workload::ClosedLoopDriver driver(
      sim, ptrs, [&wl](Rng& rng, std::vector<std::string>& owned) {
        return wl.Next(rng, owned);
      });
  Nanos w0 = 0;
  auto res = driver.Run(Millis(200), Millis(600), [&] {
    fs.ResetStats();
    w0 = sim.now();
  });

  Outcome out;
  out.ops_per_sec = res.ops_per_sec();
  out.mean_ms = res.all.MeanMillis();
  out.p99_ms = ToMillis(res.all.Percentile(0.99));
  out.inter_az_mb =
      static_cast<double>(fs.network().inter_az_bytes()) / 1e6;
  return out;
}

}  // namespace

int main() {
  std::printf("== Spotify workload: HopsFS (3,3) vs HopsFS-CL (3,3) ==\n");
  std::printf("(6 namenodes, 96 closed-loop clients, ~94%% read mix)\n\n");

  const auto vanilla = RunOne(hopsfs::PaperSetup::kHopsFs_3_3);
  const auto cl = RunOne(hopsfs::PaperSetup::kHopsFsCl_3_3);

  std::printf("%-24s%14s%12s%12s%16s\n", "", "ops/s", "mean ms", "p99 ms",
              "inter-AZ MB");
  std::printf("%-24s%14.0f%12.2f%12.2f%16.1f\n", "HopsFS (3,3)",
              vanilla.ops_per_sec, vanilla.mean_ms, vanilla.p99_ms,
              vanilla.inter_az_mb);
  std::printf("%-24s%14.0f%12.2f%12.2f%16.1f\n", "HopsFS-CL (3,3)",
              cl.ops_per_sec, cl.mean_ms, cl.p99_ms, cl.inter_az_mb);

  std::printf("\nHopsFS-CL: %+.1f%% throughput, %.1fx less inter-AZ "
              "traffic.\n",
              100.0 * (cl.ops_per_sec - vanilla.ops_per_sec) /
                  vanilla.ops_per_sec,
              vanilla.inter_az_mb / cl.inter_az_mb);
  std::printf("Same semantics, same hardware — the difference is purely\n"
              "AZ-aware replica placement, TC selection, Read Backup and\n"
              "AZ-local namenode selection (paper §IV).\n");
  return 0;
}
