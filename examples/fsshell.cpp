// fsshell: an interactive shell over a simulated HopsFS-CL cluster.
//
// Run it and type commands (or pipe a script):
//   ./build/examples/fsshell
//   echo "mkdir /a\nput /a/f 1024\nls /a\ndu /\nexit" | ./build/examples/fsshell
//
// Commands:
//   mkdir <p>         ls <p>            stat <p>        cat <p>
//   put <p> <bytes>   append <p> <b>    rm <p>          rmr <p>
//   mv <a> <b>        chmod <p> <octal> chown <p> <u>   du <p>
//   whoami / su <u>   crash-ndb <n>     restart-ndb <n> crash-nn <n>
//   partition <az> <az>  heal           status          help / exit
//
// Every command is a real distributed transaction against the simulated
// 3-AZ cluster; the simulation advances only while commands execute.
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "hopsfs/deployment.h"
#include "util/strings.h"

using namespace repro;
using namespace repro::hopsfs;

namespace {

class Shell {
 public:
  Shell()
      : sim_(1),
        options_(DeploymentOptions::FromPaperSetup(
            PaperSetup::kHopsFsCl_3_3, 6)) {
    options_.block_datanodes = 6;
    fs_ = std::make_unique<Deployment>(sim_, options_);
    fs_->Start();
    sim_.RunFor(Seconds(4));
    client_ = fs_->AddClient(0);
  }

  int Run() {
    std::printf("HopsFS-CL shell — simulated 3-AZ cluster "
                "(12 NDB nodes RF=3, 6 NNs, 6 DNs). 'help' for commands.\n");
    std::string line;
    while (true) {
      std::printf("hopsfs> ");
      std::fflush(stdout);
      if (!std::getline(std::cin, line)) break;
      if (!Dispatch(line)) break;
    }
    std::printf("bye\n");
    return 0;
  }

 private:
  Status Await(std::function<void(HopsFsClient::StatusCb)> op) {
    Status out = Internal("hung");
    bool done = false;
    op([&](Status s) {
      out = s;
      done = true;
    });
    const Nanos deadline = sim_.now() + 60 * kSecond;
    while (!done && sim_.now() < deadline) sim_.RunFor(kMillisecond);
    return done ? out : TimedOut("no reply (cluster down?)");
  }

  FsResult AwaitFull(FsRequest req) {
    FsResult out;
    out.status = Internal("hung");
    bool done = false;
    client_->Submit(std::move(req), [&](FsResult r) {
      out = std::move(r);
      done = true;
    });
    const Nanos deadline = sim_.now() + 60 * kSecond;
    while (!done && sim_.now() < deadline) sim_.RunFor(kMillisecond);
    return out;
  }

  void Print(const Status& s) {
    std::printf("%s   [t=%.3fs]\n", s.ToString().c_str(),
                ToSeconds(sim_.now()));
  }

  bool Dispatch(const std::string& line) {
    std::istringstream in(line);
    std::string cmd, a, b;
    in >> cmd >> a >> b;
    if (cmd.empty()) return true;

    if (cmd == "exit" || cmd == "quit") return false;
    if (cmd == "help") {
      std::printf(
          "  mkdir ls stat cat put append rm rmr mv chmod chown du\n"
          "  whoami su crash-ndb restart-ndb crash-nn partition heal "
          "status exit\n");
    } else if (cmd == "mkdir") {
      Print(Await([&](auto cb) { client_->Mkdir(a, cb); }));
    } else if (cmd == "ls") {
      FsRequest r;
      r.op = FsOp::kListDir;
      r.path = a.empty() ? "/" : a;
      auto res = AwaitFull(std::move(r));
      if (res.status.ok()) {
        for (const auto& c : res.children) std::printf("  %s\n", c.c_str());
        std::printf("(%zu entries)\n", res.children.size());
      } else {
        Print(res.status);
      }
    } else if (cmd == "stat") {
      FsRequest r;
      r.op = FsOp::kStat;
      r.path = a;
      auto res = AwaitFull(std::move(r));
      if (res.status.ok()) {
        std::printf("  %s %s owner=%s perms=%o size=%lld\n", a.c_str(),
                    res.inode.is_dir ? "dir" : "file",
                    res.inode.owner.empty() ? "hdfs"
                                            : res.inode.owner.c_str(),
                    res.inode.permissions,
                    static_cast<long long>(res.inode.size));
      } else {
        Print(res.status);
      }
    } else if (cmd == "cat") {
      FsRequest r;
      r.op = FsOp::kOpenRead;
      r.path = a;
      auto res = AwaitFull(std::move(r));
      if (res.status.ok()) {
        std::printf("  read %lld inline bytes, %zu blocks\n",
                    static_cast<long long>(res.inline_bytes),
                    res.blocks.size());
      } else {
        Print(res.status);
      }
    } else if (cmd == "put") {
      const int64_t bytes = b.empty() ? 0 : std::stoll(b);
      Print(Await([&](auto cb) { client_->Create(a, bytes, cb); }));
    } else if (cmd == "append") {
      Print(Await([&](auto cb) { client_->Append(a, std::stoll(b), cb); }));
    } else if (cmd == "rm") {
      Print(Await([&](auto cb) { client_->Delete(a, cb); }));
    } else if (cmd == "rmr") {
      Print(Await([&](auto cb) { client_->DeleteRecursive(a, cb); }));
    } else if (cmd == "mv") {
      Print(Await([&](auto cb) { client_->Rename(a, b, cb); }));
    } else if (cmd == "chmod") {
      Print(Await([&](auto cb) {
        client_->Chmod(a, static_cast<uint32_t>(std::stoul(b, nullptr, 8)),
                       cb);
      }));
    } else if (cmd == "chown") {
      Print(Await([&](auto cb) { client_->Chown(a, b, cb); }));
    } else if (cmd == "du") {
      bool done = false;
      client_->ContentSummary(a.empty() ? "/" : a,
                              [&](Status s, int64_t f, int64_t d,
                                  int64_t bytes) {
                                if (s.ok()) {
                                  std::printf("  %lld files, %lld dirs, "
                                              "%lld bytes\n",
                                              static_cast<long long>(f),
                                              static_cast<long long>(d),
                                              static_cast<long long>(bytes));
                                } else {
                                  Print(s);
                                }
                                done = true;
                              });
      while (!done) sim_.RunFor(kMillisecond);
    } else if (cmd == "whoami") {
      std::printf("  %s\n", client_->user().empty() ? "hdfs (superuser)"
                                                    : client_->user().c_str());
    } else if (cmd == "su") {
      client_->set_user(a == "hdfs" ? "" : a);
      std::printf("  now acting as %s\n", a.c_str());
    } else if (cmd == "crash-ndb") {
      const int n = std::stoi(a);
      fs_->ndb().CrashDatanode(n);
      sim_.RunFor(Seconds(2));
      std::printf("  ndb datanode %d crashed (failover done)\n", n);
    } else if (cmd == "restart-ndb") {
      const int n = std::stoi(a);
      bool done = false;
      fs_->ndb().RestartDatanode(n, [&] { done = true; });
      const Nanos deadline = sim_.now() + 120 * kSecond;
      while (!done && sim_.now() < deadline) sim_.RunFor(Millis(10));
      std::printf(done ? "  ndb datanode %d resynced and rejoined\n"
                       : "  ndb datanode %d did not rejoin (timeout)\n",
                  n);
    } else if (cmd == "crash-nn") {
      const int n = std::stoi(a);
      fs_->namenode(n)->Crash();
      sim_.RunFor(Seconds(5));
      std::printf("  namenode %d crashed; leader is now nn%d\n", n,
                  fs_->leader() ? fs_->leader()->id() : -1);
    } else if (cmd == "partition") {
      fs_->topology().PartitionAzs(std::stoi(a), std::stoi(b));
      sim_.RunFor(Seconds(2));
      std::printf("  partitioned az%s <-> az%s (arbitrator resolved)\n",
                  a.c_str(), b.c_str());
    } else if (cmd == "heal") {
      fs_->topology().HealAllPartitions();
      std::printf("  partitions healed\n");
    } else if (cmd == "status") {
      auto& layout = fs_->ndb().layout();
      std::printf("  cluster %s | NDB alive:",
                  fs_->ndb().cluster_up() ? "UP" : "DOWN");
      for (int n = 0; n < fs_->ndb().num_datanodes(); ++n) {
        std::printf(" %d%s", n, layout.alive(n) ? "" : "(dead)");
      }
      std::printf("\n  leader nn%d | inter-AZ bytes %lld\n",
                  fs_->leader() ? fs_->leader()->id() : -1,
                  static_cast<long long>(fs_->network().inter_az_bytes()));
    } else {
      std::printf("  unknown command '%s' (try 'help')\n", cmd.c_str());
    }
    return true;
  }

  Simulation sim_;
  DeploymentOptions options_;
  std::unique_ptr<Deployment> fs_;
  HopsFsClient* client_ = nullptr;
};

}  // namespace

int main() {
  Shell shell;
  return shell.Run();
}
