// Chaos harness walkthrough: one seeded fault schedule, end to end.
//
// Runs a randomized schedule against HopsFS-CL (3,3), prints the injected
// fault trace, the availability scorecard and the invariant verdicts,
// then replays the same seed to show the event trace is byte-identical —
// a failing seed is a complete reproduction recipe.
//
//   ./examples/chaos [seed]
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "chaos/harness.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace repro;

  // REPRO_LOG=debug|info|warn turns up component logging — combined with
  // the deterministic replay this gives a full protocol trace of a
  // failing seed.
  if (const char* lvl = std::getenv("REPRO_LOG")) {
    if (std::strcmp(lvl, "debug") == 0) {
      Logger::Get().set_level(LogLevel::kDebug);
    } else if (std::strcmp(lvl, "info") == 0) {
      Logger::Get().set_level(LogLevel::kInfo);
    }
  }

  chaos::ChaosOptions opts;
  opts.seed = 7;
  if (argc > 1) {
    // A seed names a specific failing run, so a mistyped one must not be
    // silently reinterpreted (strtoull maps garbage to 0 and clamps
    // out-of-range values).
    char* end = nullptr;
    errno = 0;
    opts.seed = std::strtoull(argv[1], &end, 10);
    if (end == argv[1] || *end != '\0' || errno == ERANGE) {
      std::fprintf(stderr, "error: seed '%s' is not a valid uint64\n",
                   argv[1]);
      std::fprintf(stderr, "usage: %s [seed]\n", argv[0]);
      return 2;
    }
  }

  std::printf("=== chaos run, seed %llu ===\n\n",
              static_cast<unsigned long long>(opts.seed));
  chaos::ChaosReport report = chaos::RunChaosSchedule(opts);

  std::printf("event trace (faults as injected, then observations):\n");
  for (const auto& line : report.trace) {
    std::printf("  %s\n", line.c_str());
  }
  std::printf("\nscorecard:\n%s\n", report.Scorecard().c_str());

  std::printf("replaying the same seed...\n");
  chaos::ChaosReport replay = chaos::RunChaosSchedule(opts);
  const bool identical = replay.TraceString() == report.TraceString();
  std::printf("replay trace is %s\n",
              identical ? "byte-identical (deterministic)" : "DIFFERENT (bug!)");
  return identical && report.invariants_ok() ? 0 : 1;
}
