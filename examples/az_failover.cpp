// az_failover: demonstrates the paper's headline HA property (§V-F) —
// a HopsFS-CL (3,3) deployment keeps serving through the failure of an
// entire availability zone, and an AZ network partition is resolved by
// the arbitrator without a split brain.
//
//   ./build/examples/az_failover
#include <cstdio>

#include "hopsfs/deployment.h"
#include "util/strings.h"

using namespace repro;
using namespace repro::hopsfs;

namespace {

int ProbeOk(Simulation& sim, HopsFsClient* client, int n, int round) {
  int ok = 0;
  for (int i = 0; i < n; ++i) {
    bool done = false;
    Status status;
    client->Create(StrFormat("/jobs/out-%d-%d", round, i), 0,
                   [&](Status s) {
                     status = s;
                     done = true;
                   });
    const Nanos deadline = sim.now() + 30 * kSecond;
    while (!done && sim.now() < deadline) sim.RunFor(kMillisecond);
    if (done && status.ok()) ++ok;
  }
  return ok;
}

void PrintNdbState(Deployment& fs) {
  auto& layout = fs.ndb().layout();
  std::printf("  NDB datanodes alive per AZ: ");
  for (AzId az = 0; az < 3; ++az) {
    int alive = 0;
    for (int n = 0; n < fs.ndb().num_datanodes(); ++n) {
      if (layout.az_of(n) == az && layout.alive(n)) ++alive;
    }
    std::printf("az%d=%d ", az, alive);
  }
  std::printf("| cluster %s\n", fs.ndb().cluster_up() ? "UP" : "DOWN");
}

}  // namespace

int main() {
  std::printf("== Availability-zone failover demo (HopsFS-CL (3,3)) ==\n\n");
  Simulation sim(99);
  auto options =
      DeploymentOptions::FromPaperSetup(PaperSetup::kHopsFsCl_3_3, 6);
  Deployment fs(sim, options);
  fs.Start();
  sim.RunFor(Seconds(3));

  HopsFsClient* client = fs.AddClient(/*az=*/1);  // survives both events
  bool made = false;
  client->Mkdir("/jobs", [&](Status) { made = true; });
  while (!made) sim.RunFor(kMillisecond);

  std::printf("[t=%.1fs] steady state\n", ToSeconds(sim.now()));
  PrintNdbState(fs);
  std::printf("  probes: %d/10 ok\n\n", ProbeOk(sim, client, 10, 0));

  // ---- Event 1: AZ 0 goes completely dark. ----
  std::printf("[t=%.1fs] !!! AZ 0 loses power\n", ToSeconds(sim.now()));
  fs.topology().SetAzUp(0, false);
  for (const auto& nn : fs.namenodes()) {
    if (nn->az() == 0) nn->Crash();
  }
  sim.RunFor(Seconds(3));  // heartbeat detection + failover
  PrintNdbState(fs);
  std::printf("  probes: %d/10 ok  (replication 3 keeps one replica per "
              "surviving AZ)\n\n",
              ProbeOk(sim, client, 10, 1));

  // ---- Recovery, then Event 2: a network partition cuts off AZ 2. ----
  fs.topology().SetAzUp(0, true);  // hosts return (NDB nodes stay down:
                                   // rejoining needs recovery, out of scope)
  std::printf("[t=%.1fs] !!! network partition isolates AZ 2\n",
              ToSeconds(sim.now()));
  fs.topology().PartitionAzs(2, 0);
  fs.topology().PartitionAzs(2, 1);
  sim.RunFor(Seconds(3));  // suspicion -> arbitration -> losers shut down
  PrintNdbState(fs);
  std::printf("  the arbitrator blessed the majority side; AZ 2's NDB "
              "nodes shut down\n");
  std::printf("  probes: %d/10 ok\n\n", ProbeOk(sim, client, 10, 2));

  std::printf("Done: the file system served clients through an AZ outage\n"
              "and a split-brain partition, exactly the failure model the\n"
              "paper's AZ-aware replication is built for (§IV, §V-F).\n");
  return 0;
}
