// Quickstart: bring up a 3-AZ HopsFS-CL cluster, run basic file-system
// operations through the public client API, and print what happened.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "hopsfs/deployment.h"

using namespace repro;
using namespace repro::hopsfs;

namespace {

// Small helper: run one client call to completion on the simulator.
Status Await(Simulation& sim, HopsFsClient* client,
             void (HopsFsClient::*op)(const std::string&,
                                      HopsFsClient::StatusCb),
             const std::string& path) {
  Status out = Internal("hung");
  bool done = false;
  (client->*op)(path, [&](Status s) {
    out = s;
    done = true;
  });
  while (!done) sim.RunFor(kMillisecond);
  return out;
}

}  // namespace

int main() {
  std::printf("== HopsFS-CL quickstart ==\n\n");

  // 1. A simulated us-west1 region with the paper's HA setup (Fig. 4):
  //    12 NDB datanodes with replication factor 3 spread over 3 AZs,
  //    6 namenodes (2 per AZ), management/arbitrator nodes in every AZ.
  Simulation sim(/*seed=*/2024);
  auto options =
      DeploymentOptions::FromPaperSetup(PaperSetup::kHopsFsCl_3_3,
                                        /*num_namenodes=*/6);
  Deployment fs(sim, options);
  fs.Start();
  sim.RunFor(Seconds(3));  // leader election settles

  std::printf("cluster up: %d NDB datanodes (RF=%d), %zu namenodes, "
              "leader = nn%d\n\n",
              fs.ndb().num_datanodes(), fs.ndb().layout().replication(),
              fs.namenodes().size(), fs.leader()->id());

  // 2. A client in AZ 0. With AZ awareness on, it discovers and sticks to
  //    an AZ-local namenode.
  HopsFsClient* client = fs.AddClient(/*az=*/0);

  // 3. Everyday metadata operations, each a distributed transaction.
  struct Step {
    const char* what;
    Status status;
  };
  std::vector<Step> steps;
  steps.push_back({"mkdir /warehouse",
                   Await(sim, client, &HopsFsClient::Mkdir, "/warehouse")});
  steps.push_back({"mkdir /warehouse/raw",
                   Await(sim, client, &HopsFsClient::Mkdir,
                         "/warehouse/raw")});

  {
    Status s = Internal("hung");
    bool done = false;
    client->Create("/warehouse/raw/events.parquet", 64 << 10,
                   [&](Status st) {
                     s = st;
                     done = true;
                   });
    while (!done) sim.RunFor(kMillisecond);
    steps.push_back({"create 64 KB file (inlined in NDB)", s});
  }

  steps.push_back({"stat /warehouse/raw/events.parquet",
                   Await(sim, client, &HopsFsClient::Stat,
                         "/warehouse/raw/events.parquet")});
  steps.push_back({"read  /warehouse/raw/events.parquet",
                   Await(sim, client, &HopsFsClient::ReadFile,
                         "/warehouse/raw/events.parquet")});

  // 4. The headline capability object stores lack: atomic rename.
  {
    Status s = Internal("hung");
    bool done = false;
    client->Rename("/warehouse/raw", "/warehouse/bronze", [&](Status st) {
      s = st;
      done = true;
    });
    while (!done) sim.RunFor(kMillisecond);
    steps.push_back({"atomic rename /warehouse/raw -> /warehouse/bronze", s});
  }
  steps.push_back({"stat via the NEW path",
                   Await(sim, client, &HopsFsClient::Stat,
                         "/warehouse/bronze/events.parquet")});
  steps.push_back({"stat via the OLD path (must fail)",
                   Await(sim, client, &HopsFsClient::Stat,
                         "/warehouse/raw/events.parquet")});

  for (const auto& s : steps) {
    std::printf("  %-48s -> %s\n", s.what, s.status.ToString().c_str());
  }

  std::printf("\nAZ-awareness at work: this client's committed reads were "
              "served by the\nNDB replica in its own AZ (Read Backup), and "
              "its namenode is AZ-local.\n");
  std::printf("inter-AZ bytes moved: %lld, intra-AZ: %lld\n",
              static_cast<long long>(fs.network().inter_az_bytes()),
              static_cast<long long>(fs.network().intra_az_bytes()));
  return 0;
}
