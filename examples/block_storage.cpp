// block_storage: large files through the block storage layer (§IV-C).
// Shows AZ-aware block placement (one replica per AZ), AZ-local reads,
// and automatic re-replication after a datanode loss.
//
//   ./build/examples/block_storage
#include <cstdio>

#include "hopsfs/deployment.h"

using namespace repro;
using namespace repro::hopsfs;

int main() {
  std::printf("== Block storage layer: AZ-aware placement & repair ==\n\n");

  Simulation sim(5);
  auto options =
      DeploymentOptions::FromPaperSetup(PaperSetup::kHopsFsCl_3_3, 3);
  options.block_datanodes = 9;  // 3 per AZ
  Deployment fs(sim, options);
  fs.Start();
  sim.RunFor(Seconds(4));  // elections + DN heartbeats

  HopsFsClient* client = fs.AddClient(0);
  bool ok = false;
  client->Mkdir("/video", [&](Status s) { ok = s.ok(); });
  while (!ok) sim.RunFor(kMillisecond);

  // A 300 MB file = 3 blocks (128 MB each), each replicated 3x with at
  // least one replica per AZ.
  std::printf("writing /video/movie.mkv (300 MB -> 3 blocks, RF 3)...\n");
  FsRequest req;
  req.op = FsOp::kCreate;
  req.path = "/video/movie.mkv";
  req.size = 300LL << 20;
  FsResult created;
  bool done = false;
  client->Submit(req, [&](FsResult r) {
    created = std::move(r);
    done = true;
  });
  while (!done) sim.RunFor(Millis(10));
  std::printf("  create: %s (%.1f s simulated, includes pipeline "
              "replication)\n",
              created.status.ToString().c_str(), ToSeconds(sim.now()) - 4);

  auto* registry = fs.dn_registry();
  for (const auto& b : created.new_blocks) {
    std::printf("  block %llu (%lld MB) replicas on AZs: ",
                static_cast<unsigned long long>(b.block_id),
                static_cast<long long>(b.num_bytes >> 20));
    for (auto d : b.replicas) std::printf("az%d(dn%d) ", registry->az_of(d), d);
    std::printf("\n");
  }

  // Read it back: each block streams from the AZ-closest replica.
  std::printf("\nreading it back from AZ 0 (AZ-local replicas preferred)...\n");
  done = false;
  client->ReadFile("/video/movie.mkv", [&](Status s) {
    std::printf("  read: %s\n", s.ToString().c_str());
    done = true;
  });
  while (!done) sim.RunFor(Millis(10));

  // Kill a datanode holding a replica; the leader namenode's replication
  // monitor restores the replication level.
  blocks::DnId victim = created.new_blocks[0].replicas[0];
  std::printf("\ncrashing dn%d (az%d) which holds %lld block(s)...\n",
              victim, registry->az_of(victim),
              static_cast<long long>(registry->dn(victim)->block_count()));
  registry->dn(victim)->Crash();
  sim.RunFor(Seconds(25));  // heartbeat loss -> repair -> copy

  int64_t replicas_elsewhere = 0;
  for (int d = 0; d < registry->size(); ++d) {
    if (d != victim) replicas_elsewhere += registry->dn(d)->block_count();
  }
  std::printf("after repair: %lld block replicas on surviving datanodes "
              "(expected >= 9)\n",
              static_cast<long long>(replicas_elsewhere));
  std::printf("\nre-reading the file after the failure...\n");
  done = false;
  client->ReadFile("/video/movie.mkv", [&](Status s) {
    std::printf("  read: %s\n", s.ToString().c_str());
    done = true;
  });
  while (!done) sim.RunFor(Millis(10));
  return 0;
}
