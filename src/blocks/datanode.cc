#include "blocks/datanode.h"

#include <algorithm>

#include "resilience/deadline.h"
#include "prof/profiler.h"
#include "util/strings.h"

namespace repro::blocks {

BlockDatanode::BlockDatanode(Simulation& sim, Network& network, DnId id,
                             HostId host, AzId az, BlockDnConfig config)
    : sim_(sim), network_(network), id_(id), host_(host), az_(az),
      config_(config),
      cpu_(sim, StrFormat("dn%d.cpu", id), config.cpu_threads),
      disk_(sim, StrFormat("dn%d.disk", id)) {}

void BlockDatanode::Crash() { alive_ = false; }

void BlockDatanode::TraceBooking(trace::SpanId parent, const char* what,
                                 trace::Cause cause, const Booking& b) {
  if (parent == 0) return;
  trace::Tracer& tr = sim_.tracer();
  if (b.queued() > 0) {
    tr.AddSpanAt(parent, StrFormat("%s.queue", what), trace::Layer::kBlocks,
                 trace::Cause::kCpuQueue, host_, az_, b.submit, b.start);
  }
  tr.AddSpanAt(parent, what, trace::Layer::kBlocks, cause, host_, az_,
               b.start, b.finish);
}

void BlockDatanode::StreamBytes(HostId dst, int64_t bytes,
                                std::function<void()> done,
                                trace::SpanId span) {
  // Chunked transfer: each chunk occupies the NIC/link independently; the
  // completion fires when the last chunk lands.
  trace::SpanId net = 0;
  if (span != 0) {
    const AzId dst_az = network_.topology().az_of(dst);
    net = sim_.tracer().StartSpan(span, "net.stream", trace::Layer::kBlocks,
                                  trace::NetCause(az_, dst_az), host_, az_,
                                  dst_az);
  }
  const int64_t chunk = config_.chunk_bytes;
  const int64_t chunks = std::max<int64_t>(1, (bytes + chunk - 1) / chunk);
  auto remaining = std::make_shared<int64_t>(chunks);
  for (int64_t i = 0; i < chunks; ++i) {
    const int64_t this_chunk = std::min(chunk, bytes - i * chunk);
    network_.Send(host_, dst, std::max<int64_t>(this_chunk, 1),
                  [this, remaining, done, net] {
                    if (--*remaining == 0) {
                      sim_.tracer().EndSpan(net);
                      if (done) done();
                    }
                  });
  }
}

void BlockDatanode::WriteBlock(uint64_t block_id, int64_t bytes,
                               std::vector<BlockDatanode*> pipeline,
                               std::function<void(Status)> done,
                               Nanos deadline, trace::SpanId span) {
  PROF_ZONE("blocks.dn.write");
  if (!alive_) return;  // the client's RPC timeout handles dead DNs
  if (resilience::DeadlineExpired(deadline, sim_.now())) {
    if (done) done(DeadlineExceeded("dn: write past deadline"));
    return;
  }
  const Booking b = cpu_.Submit(
      config_.cpu_per_request,
      [this, block_id, bytes, deadline, span,
       pipeline = std::move(pipeline), done = std::move(done)]() mutable {
        if (!alive_) return;
        blocks_[block_id] = bytes;
        const Booking w = disk_.Write(bytes, nullptr);
        TraceBooking(span, "dn.disk_write", trace::Cause::kDisk, w);
        if (pipeline.empty()) {
          if (done) done(OkStatus());
          return;
        }
        BlockDatanode* next = pipeline.front();
        pipeline.erase(pipeline.begin());
        StreamBytes(next->host(), bytes,
                    [next, block_id, bytes, deadline, span,
                     pipeline = std::move(pipeline),
                     done = std::move(done)]() mutable {
                      next->WriteBlock(block_id, bytes, std::move(pipeline),
                                       std::move(done), deadline, span);
                    },
                    span);
      });
  TraceBooking(span, "dn.cpu", trace::Cause::kCpu, b);
}

void BlockDatanode::ReadBlock(uint64_t block_id, HostId reader_host,
                              std::function<void(Expected<int64_t>)> done,
                              Nanos deadline, trace::SpanId span) {
  PROF_ZONE("blocks.dn.read");
  if (!alive_) return;
  if (resilience::DeadlineExpired(deadline, sim_.now())) {
    done(DeadlineExceeded("dn: read past deadline"));
    return;
  }
  const Booking b = cpu_.Submit(
      config_.cpu_per_request,
      [this, block_id, reader_host, span, done = std::move(done)] {
        if (!alive_) return;
        auto it = blocks_.find(block_id);
        if (it == blocks_.end()) {
          done(NotFound(StrFormat("block %llu not on dn %d",
                                  static_cast<unsigned long long>(block_id),
                                  id_)));
          return;
        }
        const int64_t bytes = it->second;
        const Booking r = disk_.Read(bytes, nullptr);
        TraceBooking(span, "dn.disk_read", trace::Cause::kDisk, r);
        StreamBytes(reader_host, bytes, [bytes, done] { done(bytes); },
                    span);
      });
  TraceBooking(span, "dn.cpu", trace::Cause::kCpu, b);
}

void BlockDatanode::DeleteBlock(uint64_t block_id) {
  if (!alive_) return;
  cpu_.Submit(config_.cpu_per_request,
              [this, block_id] { blocks_.erase(block_id); });
}

void BlockDatanode::CopyBlockTo(BlockDatanode& target, uint64_t block_id,
                                std::function<void(Status)> done) {
  PROF_ZONE("blocks.dn.copy");
  if (!alive_) return;
  cpu_.Submit(config_.cpu_per_request, [this, &target, block_id,
                                        done = std::move(done)]() mutable {
    auto it = blocks_.find(block_id);
    if (it == blocks_.end()) {
      if (done) done(NotFound("source replica missing"));
      return;
    }
    const int64_t bytes = it->second;
    disk_.Read(bytes, nullptr);
    StreamBytes(target.host(), bytes,
                [&target, block_id, bytes, done = std::move(done)]() mutable {
                  target.WriteBlock(block_id, bytes, {}, std::move(done));
                });
  });
}

std::vector<DnId> DnRegistry::AliveDns(Nanos now) const {
  std::vector<DnId> out;
  for (DnId i = 0; i < size(); ++i) {
    if (AliveAt(i, now)) out.push_back(i);
  }
  return out;
}

}  // namespace repro::blocks
