#include "blocks/datanode.h"

#include <algorithm>

#include "resilience/deadline.h"
#include "util/strings.h"

namespace repro::blocks {

BlockDatanode::BlockDatanode(Simulation& sim, Network& network, DnId id,
                             HostId host, AzId az, BlockDnConfig config)
    : sim_(sim), network_(network), id_(id), host_(host), az_(az),
      config_(config),
      cpu_(sim, StrFormat("dn%d.cpu", id), config.cpu_threads),
      disk_(sim, StrFormat("dn%d.disk", id)) {}

void BlockDatanode::Crash() { alive_ = false; }

void BlockDatanode::StreamBytes(HostId dst, int64_t bytes,
                                std::function<void()> done) {
  // Chunked transfer: each chunk occupies the NIC/link independently; the
  // completion fires when the last chunk lands.
  const int64_t chunk = config_.chunk_bytes;
  const int64_t chunks = std::max<int64_t>(1, (bytes + chunk - 1) / chunk);
  auto remaining = std::make_shared<int64_t>(chunks);
  for (int64_t i = 0; i < chunks; ++i) {
    const int64_t this_chunk = std::min(chunk, bytes - i * chunk);
    network_.Send(host_, dst, std::max<int64_t>(this_chunk, 1),
                  [remaining, done] {
                    if (--*remaining == 0 && done) done();
                  });
  }
}

void BlockDatanode::WriteBlock(uint64_t block_id, int64_t bytes,
                               std::vector<BlockDatanode*> pipeline,
                               std::function<void(Status)> done,
                               Nanos deadline) {
  if (!alive_) return;  // the client's RPC timeout handles dead DNs
  if (resilience::DeadlineExpired(deadline, sim_.now())) {
    if (done) done(DeadlineExceeded("dn: write past deadline"));
    return;
  }
  cpu_.Submit(config_.cpu_per_request, [this, block_id, bytes, deadline,
                                        pipeline = std::move(pipeline),
                                        done = std::move(done)]() mutable {
    if (!alive_) return;
    blocks_[block_id] = bytes;
    disk_.Write(bytes, nullptr);
    if (pipeline.empty()) {
      if (done) done(OkStatus());
      return;
    }
    BlockDatanode* next = pipeline.front();
    pipeline.erase(pipeline.begin());
    StreamBytes(next->host(), bytes,
                [next, block_id, bytes, deadline,
                 pipeline = std::move(pipeline),
                 done = std::move(done)]() mutable {
                  next->WriteBlock(block_id, bytes, std::move(pipeline),
                                   std::move(done), deadline);
                });
  });
}

void BlockDatanode::ReadBlock(uint64_t block_id, HostId reader_host,
                              std::function<void(Expected<int64_t>)> done,
                              Nanos deadline) {
  if (!alive_) return;
  if (resilience::DeadlineExpired(deadline, sim_.now())) {
    done(DeadlineExceeded("dn: read past deadline"));
    return;
  }
  cpu_.Submit(config_.cpu_per_request,
              [this, block_id, reader_host, done = std::move(done)] {
                if (!alive_) return;
                auto it = blocks_.find(block_id);
                if (it == blocks_.end()) {
                  done(NotFound(StrFormat("block %llu not on dn %d",
                                          static_cast<unsigned long long>(
                                              block_id),
                                          id_)));
                  return;
                }
                const int64_t bytes = it->second;
                disk_.Read(bytes, nullptr);
                StreamBytes(reader_host, bytes,
                            [bytes, done] { done(bytes); });
              });
}

void BlockDatanode::DeleteBlock(uint64_t block_id) {
  if (!alive_) return;
  cpu_.Submit(config_.cpu_per_request,
              [this, block_id] { blocks_.erase(block_id); });
}

void BlockDatanode::CopyBlockTo(BlockDatanode& target, uint64_t block_id,
                                std::function<void(Status)> done) {
  if (!alive_) return;
  cpu_.Submit(config_.cpu_per_request, [this, &target, block_id,
                                        done = std::move(done)]() mutable {
    auto it = blocks_.find(block_id);
    if (it == blocks_.end()) {
      if (done) done(NotFound("source replica missing"));
      return;
    }
    const int64_t bytes = it->second;
    disk_.Read(bytes, nullptr);
    StreamBytes(target.host(), bytes,
                [&target, block_id, bytes, done = std::move(done)]() mutable {
                  target.WriteBlock(block_id, bytes, {}, std::move(done));
                });
  });
}

std::vector<DnId> DnRegistry::AliveDns(Nanos now) const {
  std::vector<DnId> out;
  for (DnId i = 0; i < size(); ++i) {
    if (AliveAt(i, now)) out.push_back(i);
  }
  return out;
}

}  // namespace repro::blocks
