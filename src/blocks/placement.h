// Block placement policies (§IV-C1).
//
// HopsFS ships a rack-aware placement policy for on-premises clusters; the
// paper reuses it for the cloud by configuring the block storage topology
// as if each AZ were a rack. AzAwarePlacement implements exactly that
// "racks = AZs" configuration: every AZ receives at least one replica, so
// the file system survives the loss of R-1 AZs. DefaultPlacement is the
// AZ-oblivious baseline (distinct random datanodes).
#pragma once

#include <memory>
#include <vector>

#include "blocks/datanode.h"
#include "util/rng.h"

namespace repro::blocks {

class BlockPlacementPolicy {
 public:
  virtual ~BlockPlacementPolicy() = default;

  // Chooses `replication` distinct datanodes for a new block written by a
  // client in `writer_az`. Returns fewer if the cluster is too small.
  virtual std::vector<DnId> ChooseTargets(int replication, AzId writer_az,
                                          const DnRegistry& registry,
                                          Nanos now, Rng& rng) const = 0;

  // Chooses one additional replica for re-replication, avoiding `existing`.
  virtual DnId ChooseReplacement(const std::vector<DnId>& existing,
                                 const DnRegistry& registry, Nanos now,
                                 Rng& rng) const;
};

// Distinct random alive datanodes; first replica prefers the writer's AZ
// (HDFS writes the first replica "locally").
class DefaultPlacement : public BlockPlacementPolicy {
 public:
  std::vector<DnId> ChooseTargets(int replication, AzId writer_az,
                                  const DnRegistry& registry, Nanos now,
                                  Rng& rng) const override;
};

// Racks-as-AZs policy: spreads replicas so every AZ holds at least one
// (for replication >= #AZs) or replicas span distinct AZs.
class AzAwarePlacement : public BlockPlacementPolicy {
 public:
  explicit AzAwarePlacement(int num_azs) : num_azs_(num_azs) {}

  std::vector<DnId> ChooseTargets(int replication, AzId writer_az,
                                  const DnRegistry& registry, Nanos now,
                                  Rng& rng) const override;
  DnId ChooseReplacement(const std::vector<DnId>& existing,
                         const DnRegistry& registry, Nanos now,
                         Rng& rng) const override;

 private:
  int num_azs_;
};

}  // namespace repro::blocks
