#include "blocks/placement.h"

#include <algorithm>
#include <cstdint>

namespace repro::blocks {
namespace {

bool Contains(const std::vector<DnId>& v, DnId x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

// Uniform pick over {d : alive(d) && pred(d)} walking the registry's flat
// id-indexed table directly: count the eligible set, draw one index, walk
// again to the drawn slot. No candidate vector is materialised, and the
// single NextBelow(count) draw matches the old vector-based pick exactly,
// so choices (and every seeded benchmark) are bit-identical.
template <typename Pred>
DnId PickRandom(const DnRegistry& registry, Nanos now, Rng& rng, Pred pred) {
  int count = 0;
  for (DnId d = 0; d < registry.size(); ++d) {
    if (registry.AliveAt(d, now) && pred(d)) ++count;
  }
  if (count == 0) return -1;
  uint64_t k = rng.NextBelow(static_cast<uint64_t>(count));
  for (DnId d = 0; d < registry.size(); ++d) {
    if (registry.AliveAt(d, now) && pred(d) && k-- == 0) return d;
  }
  return -1;  // unreachable: count > 0
}

}  // namespace

DnId BlockPlacementPolicy::ChooseReplacement(const std::vector<DnId>& existing,
                                             const DnRegistry& registry,
                                             Nanos now, Rng& rng) const {
  return PickRandom(registry, now, rng,
                    [&](DnId d) { return !Contains(existing, d); });
}

std::vector<DnId> DefaultPlacement::ChooseTargets(int replication,
                                                  AzId writer_az,
                                                  const DnRegistry& registry,
                                                  Nanos now, Rng& rng) const {
  std::vector<DnId> chosen;
  // First replica: prefer the writer's AZ (stands in for HDFS's
  // "local node" rule).
  const DnId local = PickRandom(registry, now, rng, [&](DnId d) {
    return registry.az_of(d) == writer_az;
  });
  if (local >= 0) chosen.push_back(local);
  while (static_cast<int>(chosen.size()) < replication) {
    const DnId next = PickRandom(registry, now, rng,
                                 [&](DnId d) { return !Contains(chosen, d); });
    if (next < 0) break;
    chosen.push_back(next);
  }
  return chosen;
}

std::vector<DnId> AzAwarePlacement::ChooseTargets(int replication,
                                                  AzId writer_az,
                                                  const DnRegistry& registry,
                                                  Nanos now, Rng& rng) const {
  std::vector<DnId> chosen;
  // Cover AZs round-robin starting from the writer's AZ, so replica 1 is
  // AZ-local and every AZ gets one replica before any AZ gets two.
  for (int i = 0; static_cast<int>(chosen.size()) < replication &&
                  i < replication + num_azs_;
       ++i) {
    const AzId az = (writer_az + i) % num_azs_;
    const DnId next = PickRandom(registry, now, rng, [&](DnId d) {
      return registry.az_of(d) == az && !Contains(chosen, d);
    });
    if (next >= 0) chosen.push_back(next);
  }
  // Fallback if some AZ has no capacity: fill with any distinct DN.
  while (static_cast<int>(chosen.size()) < replication) {
    const DnId next = PickRandom(registry, now, rng,
                                 [&](DnId d) { return !Contains(chosen, d); });
    if (next < 0) break;
    chosen.push_back(next);
  }
  return chosen;
}

DnId AzAwarePlacement::ChooseReplacement(const std::vector<DnId>& existing,
                                         const DnRegistry& registry, Nanos now,
                                         Rng& rng) const {
  // Restore AZ coverage first: pick a DN in an AZ that lost its replica.
  // Only replicas that are still alive count as coverage — after a
  // multi-DN failure the surviving list can name other dead DNs (their
  // own repairs run later in the round), and counting those as coverage
  // steered the replacement away from the very AZ that lost its copy.
  uint64_t covered = 0;  // AZ bitmask; deployments have a handful of AZs
  for (DnId d : existing) {
    if (registry.AliveAt(d, now)) {
      covered |= uint64_t{1} << (registry.az_of(d) & 63);
    }
  }
  const DnId fixup = PickRandom(registry, now, rng, [&](DnId d) {
    return ((covered >> (registry.az_of(d) & 63)) & 1) == 0 &&
           !Contains(existing, d);
  });
  if (fixup >= 0) return fixup;
  return BlockPlacementPolicy::ChooseReplacement(existing, registry, now, rng);
}

}  // namespace repro::blocks
