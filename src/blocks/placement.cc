#include "blocks/placement.h"

#include <algorithm>

namespace repro::blocks {
namespace {

bool Contains(const std::vector<DnId>& v, DnId x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

// Picks a random alive DN satisfying `pred`, or -1.
template <typename Pred>
DnId PickRandom(const std::vector<DnId>& alive, Rng& rng, Pred pred) {
  std::vector<DnId> eligible;
  for (DnId d : alive) {
    if (pred(d)) eligible.push_back(d);
  }
  if (eligible.empty()) return -1;
  return eligible[rng.NextBelow(eligible.size())];
}

}  // namespace

DnId BlockPlacementPolicy::ChooseReplacement(const std::vector<DnId>& existing,
                                             const DnRegistry& registry,
                                             Nanos now, Rng& rng) const {
  const auto alive = registry.AliveDns(now);
  return PickRandom(alive, rng,
                    [&](DnId d) { return !Contains(existing, d); });
}

std::vector<DnId> DefaultPlacement::ChooseTargets(int replication,
                                                  AzId writer_az,
                                                  const DnRegistry& registry,
                                                  Nanos now, Rng& rng) const {
  const auto alive = registry.AliveDns(now);
  std::vector<DnId> chosen;
  // First replica: prefer the writer's AZ (stands in for HDFS's
  // "local node" rule).
  const DnId local = PickRandom(alive, rng, [&](DnId d) {
    return registry.az_of(d) == writer_az;
  });
  if (local >= 0) chosen.push_back(local);
  while (static_cast<int>(chosen.size()) < replication) {
    const DnId next =
        PickRandom(alive, rng, [&](DnId d) { return !Contains(chosen, d); });
    if (next < 0) break;
    chosen.push_back(next);
  }
  return chosen;
}

std::vector<DnId> AzAwarePlacement::ChooseTargets(int replication,
                                                  AzId writer_az,
                                                  const DnRegistry& registry,
                                                  Nanos now, Rng& rng) const {
  const auto alive = registry.AliveDns(now);
  std::vector<DnId> chosen;
  // Cover AZs round-robin starting from the writer's AZ, so replica 1 is
  // AZ-local and every AZ gets one replica before any AZ gets two.
  for (int i = 0; static_cast<int>(chosen.size()) < replication &&
                  i < replication + num_azs_;
       ++i) {
    const AzId az = (writer_az + i) % num_azs_;
    const DnId next = PickRandom(alive, rng, [&](DnId d) {
      return registry.az_of(d) == az && !Contains(chosen, d);
    });
    if (next >= 0) chosen.push_back(next);
  }
  // Fallback if some AZ has no capacity: fill with any distinct DN.
  while (static_cast<int>(chosen.size()) < replication) {
    const DnId next =
        PickRandom(alive, rng, [&](DnId d) { return !Contains(chosen, d); });
    if (next < 0) break;
    chosen.push_back(next);
  }
  return chosen;
}

DnId AzAwarePlacement::ChooseReplacement(const std::vector<DnId>& existing,
                                         const DnRegistry& registry,
                                         Nanos now, Rng& rng) const {
  // Restore AZ coverage first: pick a DN in an AZ that lost its replica.
  std::vector<bool> covered(num_azs_, false);
  for (DnId d : existing) covered[registry.az_of(d)] = true;
  const auto alive = registry.AliveDns(now);
  const DnId fixup = PickRandom(alive, rng, [&](DnId d) {
    return !covered[registry.az_of(d)] && !Contains(existing, d);
  });
  if (fixup >= 0) return fixup;
  return BlockPlacementPolicy::ChooseReplacement(existing, registry, now, rng);
}

}  // namespace repro::blocks
