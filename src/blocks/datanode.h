// Block storage datanodes (DNs): store 128 MB blocks of large files.
//
// Writes run through a replication pipeline (client -> DN1 -> DN2 -> DN3)
// like HDFS; reads are served from a single replica, which the client
// picks AZ-locally when AZ awareness is on (§IV-C). Re-replication after
// a failure is driven by the leader namenode (§IV-C2) via CopyBlockTo.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/engine.h"
#include "sim/network.h"
#include "sim/resources.h"
#include "trace/trace.h"
#include "util/status.h"

namespace repro::blocks {

using DnId = int32_t;

struct BlockDnConfig {
  Nanos cpu_per_request = 30 * kMicrosecond;
  int cpu_threads = 8;
  // Network chunking: a block transfer is sent as chunks of this size so
  // the bandwidth model sees a stream, not one giant message.
  int64_t chunk_bytes = 4 << 20;
};

class BlockDatanode {
 public:
  BlockDatanode(Simulation& sim, Network& network, DnId id, HostId host,
                AzId az, BlockDnConfig config = {});

  DnId id() const { return id_; }
  HostId host() const { return host_; }
  AzId az() const { return az_; }
  bool alive() const { return alive_; }
  void Crash();

  // Client-facing: writes `bytes` of data for `block_id`, replicating down
  // the remaining pipeline. `pipeline` holds the replicas after this one.
  // `deadline` is the client op's absolute deadline (0 = none): work whose
  // deadline already passed is refused before it reaches CPU or disk
  // (deadline propagation, final hop). `span` (0 = unsampled) parents the
  // per-DN cpu/disk spans and the pipeline-stream network spans.
  void WriteBlock(uint64_t block_id, int64_t bytes,
                  std::vector<BlockDatanode*> pipeline,
                  std::function<void(Status)> done, Nanos deadline = 0,
                  trace::SpanId span = 0);

  void ReadBlock(uint64_t block_id, HostId reader_host,
                 std::function<void(Expected<int64_t>)> done,
                 Nanos deadline = 0, trace::SpanId span = 0);

  void DeleteBlock(uint64_t block_id);

  // Re-replication: streams a local replica to `target`.
  void CopyBlockTo(BlockDatanode& target, uint64_t block_id,
                   std::function<void(Status)> done);

  bool HasBlock(uint64_t block_id) const {
    return blocks_.find(block_id) != blocks_.end();
  }
  int64_t block_count() const { return static_cast<int64_t>(blocks_.size()); }
  Disk& disk() { return disk_; }
  const Disk& disk() const { return disk_; }
  // Exposed for telemetry (queue-depth gauge callbacks).
  const ThreadPool& cpu_pool() const { return cpu_; }

 private:
  // Streams `bytes` from this DN's host to `dst` host, then runs `done`.
  // `span` != 0 wraps the whole chunked transfer in one network span.
  void StreamBytes(HostId dst, int64_t bytes, std::function<void()> done,
                   trace::SpanId span = 0);
  // Emits queue/service spans for a cpu/disk booking under `parent`.
  void TraceBooking(trace::SpanId parent, const char* what,
                    trace::Cause cause, const Booking& b);

  Simulation& sim_;
  Network& network_;
  DnId id_;
  HostId host_;
  AzId az_;
  BlockDnConfig config_;
  bool alive_ = true;
  ThreadPool cpu_;
  Disk disk_;
  std::unordered_map<uint64_t, int64_t> blocks_;  // id -> bytes
};

// Liveness registry the leader namenode maintains from DN heartbeats.
class DnRegistry {
 public:
  explicit DnRegistry(Nanos heartbeat_timeout) : timeout_(heartbeat_timeout) {}

  void Register(BlockDatanode* dn) {
    dns_.push_back(dn);
    last_heard_.push_back(-1);
  }
  void MarkHeartbeat(DnId dn, Nanos now) { last_heard_[dn] = now; }

  bool AliveAt(DnId dn, Nanos now) const {
    return dns_[dn]->alive() && last_heard_[dn] >= 0 &&
           now - last_heard_[dn] <= timeout_;
  }
  bool EverHeard(DnId dn) const { return last_heard_[dn] >= 0; }
  std::vector<DnId> AliveDns(Nanos now) const;

  int size() const { return static_cast<int>(dns_.size()); }
  BlockDatanode* dn(DnId id) const { return dns_[id]; }
  AzId az_of(DnId id) const { return dns_[id]->az(); }

 private:
  Nanos timeout_;
  std::vector<BlockDatanode*> dns_;
  std::vector<Nanos> last_heard_;
};

}  // namespace repro::blocks
