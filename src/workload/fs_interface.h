// Minimal file-system client interface the workload driver runs against,
// implemented by adapters over the HopsFS client and the CephFS client so
// the same benchmark harness drives both systems (§V-A).
#pragma once

#include <functional>
#include <string>

#include "cephfs/cluster.h"
#include "hopsfs/client.h"
#include "hopsfs/namenode.h"  // FsOp enum and names
#include "util/status.h"

namespace repro::workload {

using hopsfs::FsOp;

class FsTarget {
 public:
  virtual ~FsTarget() = default;

  virtual void Execute(FsOp op, const std::string& path,
                       const std::string& path2, int64_t size,
                       std::function<void(Status)> done) = 0;
  virtual AzId az() const = 0;
};

// Adapter over a HopsFS / HopsFS-CL client.
class HopsFsTarget : public FsTarget {
 public:
  explicit HopsFsTarget(hopsfs::HopsFsClient* client) : client_(client) {}

  void Execute(FsOp op, const std::string& path, const std::string& path2,
               int64_t size, std::function<void(Status)> done) override {
    hopsfs::FsRequest req;
    req.op = op;
    req.path = path;
    req.path2 = path2;
    req.size = size;
    client_->Submit(std::move(req), [done = std::move(done)](
                                        hopsfs::FsResult r) {
      done(r.status);
    });
  }

  AzId az() const override { return client_->az(); }

 private:
  hopsfs::HopsFsClient* client_;
};

// Adapter over a CephFS client (all three variants).
class CephFsTarget : public FsTarget {
 public:
  explicit CephFsTarget(cephfs::CephClient* client) : client_(client) {}

  void Execute(FsOp op, const std::string& path, const std::string& path2,
               int64_t size, std::function<void(Status)> done) override {
    client_->Execute(op, path, path2, size, std::move(done));
  }

  AzId az() const override { return client_->az(); }

 private:
  cephfs::CephClient* client_;
};

}  // namespace repro::workload
