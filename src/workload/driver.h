// Closed-loop benchmark driver (the paper's benchmarking tool, §V-A).
//
// Each simulated client issues one operation at a time against its
// FsTarget, drawn from a workload generator; completion immediately
// triggers the next operation. Latencies are recorded per operation type
// during the measurement window only (after warm-up), matching standard
// closed-loop throughput methodology.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "metrics/timeseries.h"
#include "sim/engine.h"
#include "util/histogram.h"
#include "workload/fs_interface.h"
#include "workload/spotify.h"

namespace repro::workload {

struct DriverResults {
  Histogram all;                       // end-to-end latency, all ops
  std::map<FsOp, Histogram> per_op;
  int64_t completed = 0;
  int64_t failed = 0;
  Nanos window = 0;
  // Failure taxonomy: failed operations by status code, over the whole
  // run (including warm-up) — the chaos scorecard's error breakdown.
  std::map<Code, int64_t> errors_by_code;
  // Completion timeline (100 ms windows over the whole run, including
  // warm-up): throughput-over-time and failure-dip views.
  metrics::TimeSeries timeline;
  // Failed-operation timeline on the same windows (error bursts around
  // injected faults).
  metrics::TimeSeries fail_timeline;

  double ops_per_sec() const {
    return window > 0 ? static_cast<double>(completed) / ToSeconds(window)
                      : 0.0;
  }
};

// Draws the next operation; drivers are generator-agnostic so the same
// harness runs the Spotify mix and the single-op micro-benchmarks.
using OpSource =
    std::function<SpotifyWorkload::Op(Rng&, std::vector<std::string>&)>;

class ClosedLoopDriver {
 public:
  ClosedLoopDriver(Simulation& sim, std::vector<FsTarget*> targets,
                   OpSource source);

  // Runs warm-up then a measurement window; returns aggregated results.
  // `on_measure_start` (optional) fires at the warm-up/measure boundary —
  // used to reset resource-utilisation counters.
  DriverResults Run(Nanos warmup, Nanos measure,
                    std::function<void()> on_measure_start = nullptr);

 private:
  struct ClientState {
    FsTarget* target;
    Rng rng;
    std::vector<std::string> owned;
  };

  void IssueNext(int client, int generation);

  Simulation& sim_;
  OpSource source_;
  std::vector<ClientState> clients_;
  bool measuring_ = false;
  bool stopped_ = false;
  int generation_ = 0;
  DriverResults results_;
};

}  // namespace repro::workload
