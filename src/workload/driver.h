// Benchmark drivers (the paper's benchmarking tool, §V-A).
//
// ClosedLoopDriver: each simulated client issues one operation at a time
// against its FsTarget, drawn from a workload generator; completion
// immediately triggers the next operation. Latencies are recorded per
// operation type during the measurement window only (after warm-up),
// matching standard closed-loop throughput methodology.
//
// OpenLoopDriver: operations arrive at a fixed offered rate regardless of
// completions — the driver for overload experiments, where a closed loop
// would self-throttle and hide congestion collapse. Tracks goodput
// (completions that returned OK), failure taxonomy (sheds, deadline
// misses, timeouts) and the latency distribution of successes.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "metrics/timeseries.h"
#include "sim/engine.h"
#include "util/histogram.h"
#include "workload/fs_interface.h"
#include "workload/spotify.h"

namespace repro::workload {

struct DriverResults {
  Histogram all;                       // end-to-end latency, all ops
  std::map<FsOp, Histogram> per_op;
  int64_t completed = 0;
  int64_t failed = 0;
  Nanos window = 0;
  // Failure taxonomy: failed operations by status code, over the whole
  // run (including warm-up) — the chaos scorecard's error breakdown.
  std::map<Code, int64_t> errors_by_code;
  // Completion timeline (100 ms windows over the whole run, including
  // warm-up): throughput-over-time and failure-dip views.
  metrics::TimeSeries timeline;
  // Failed-operation timeline on the same windows (error bursts around
  // injected faults).
  metrics::TimeSeries fail_timeline;

  double ops_per_sec() const {
    return window > 0 ? static_cast<double>(completed) / ToSeconds(window)
                      : 0.0;
  }
};

// Draws the next operation; drivers are generator-agnostic so the same
// harness runs the Spotify mix and the single-op micro-benchmarks.
using OpSource =
    std::function<SpotifyWorkload::Op(Rng&, std::vector<std::string>&)>;

class ClosedLoopDriver {
 public:
  ClosedLoopDriver(Simulation& sim, std::vector<FsTarget*> targets,
                   OpSource source);

  // Runs warm-up then a measurement window; returns aggregated results.
  // `on_measure_start` (optional) fires at the warm-up/measure boundary —
  // used to reset resource-utilisation counters.
  DriverResults Run(Nanos warmup, Nanos measure,
                    std::function<void()> on_measure_start = nullptr);

 private:
  struct ClientState {
    FsTarget* target;
    Rng rng;
    std::vector<std::string> owned;
  };

  void IssueNext(int client, int generation);

  Simulation& sim_;
  OpSource source_;
  std::vector<ClientState> clients_;
  bool measuring_ = false;
  bool stopped_ = false;
  int generation_ = 0;
  DriverResults results_;
};

struct OpenLoopResults {
  Histogram ok_latency;  // end-to-end latency of successful ops
  int64_t issued = 0;    // arrivals during the measurement window
  int64_t completed = 0; // OK completions inside the window (goodput)
  int64_t late_ok = 0;   // OK completions after the window — too late to
                         // count as goodput, the congestion-collapse tell
  int64_t failed = 0;
  Nanos window = 0;
  std::map<Code, int64_t> errors_by_code;
  metrics::TimeSeries timeline;  // OK completions over time (whole run)

  double offered_ops_per_sec() const {
    return window > 0 ? static_cast<double>(issued) / ToSeconds(window) : 0.0;
  }
  double goodput_ops_per_sec() const {
    return window > 0 ? static_cast<double>(completed) / ToSeconds(window)
                      : 0.0;
  }
  int64_t sheds() const {
    auto it = errors_by_code.find(Code::kResourceExhausted);
    return it == errors_by_code.end() ? 0 : it->second;
  }
  int64_t deadline_exceeded() const {
    auto it = errors_by_code.find(Code::kDeadlineExceeded);
    return it == errors_by_code.end() ? 0 : it->second;
  }
};

class OpenLoopDriver {
 public:
  OpenLoopDriver(Simulation& sim, std::vector<FsTarget*> targets,
                 OpSource source);

  // Offers `ops_per_sec` arrivals (round-robin over the targets) through
  // warm-up + measure; stats cover arrivals inside the measurement window
  // only, but the run keeps draining until those complete or fail.
  OpenLoopResults Run(double ops_per_sec, Nanos warmup, Nanos measure);

 private:
  struct ClientState {
    FsTarget* target;
    Rng rng;
    std::vector<std::string> owned;
  };

  Simulation& sim_;
  OpSource source_;
  std::vector<ClientState> clients_;
};

}  // namespace repro::workload
