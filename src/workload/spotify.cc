#include "workload/spotify.h"

#include <algorithm>
#include <cassert>

#include "util/strings.h"

namespace repro::workload {

const std::vector<SpotifyMixEntry>& SpotifyMix() {
  using T = SpotifyMixEntry::Target;
  static const std::vector<SpotifyMixEntry> kMix = {
      // Listings dominate the Spotify trace.
      {FsOp::kListDir, T::kFile, 38.0},   // ls of a file
      {FsOp::kListDir, T::kDir, 19.0},    // ls of a directory
      {FsOp::kStat, T::kFile, 21.6},      // getFileInfo / exists
      {FsOp::kOpenRead, T::kFile, 11.3},  // open + getBlockLocations
      // Attribute writes accompany job output handling: spread uniformly,
      // not over the hot read set.
      {FsOp::kChmod, T::kFileUniform, 4.0},  // setPermission / setOwner
      {FsOp::kCreate, T::kNewName, 2.7},
      {FsOp::kRename, T::kOwnedFile, 1.3},
      {FsOp::kDelete, T::kOwnedFile, 0.8},
      {FsOp::kMkdir, T::kNewName, 1.3},
  };
  return kMix;
}

namespace {

std::vector<double> MixWeights() {
  std::vector<double> w;
  for (const auto& e : SpotifyMix()) w.push_back(e.weight);
  return w;
}

}  // namespace

SpotifyWorkload::SpotifyWorkload(NamespaceConfig config, uint64_t seed)
    : config_(config),
      dir_zipf_(static_cast<uint64_t>(config.users) * config.dirs_per_user,
                config.zipf_theta),
      mix_(MixWeights()) {
  (void)seed;
  dirs_.push_back("/user");
  files_of_dir_.reserve(static_cast<size_t>(config_.users) *
                        config_.dirs_per_user);
  for (int u = 0; u < config_.users; ++u) {
    const std::string home = StrFormat("/user/u%d", u);
    dirs_.push_back(home);
    for (int d = 0; d < config_.dirs_per_user; ++d) {
      const std::string dir = StrFormat("%s/d%d", home.c_str(), d);
      dirs_.push_back(dir);
      files_of_dir_.emplace_back();
      for (int f = 0; f < config_.files_per_dir; ++f) {
        files_of_dir_.back().push_back(static_cast<int>(files_.size()));
        files_.push_back(StrFormat("%s/f%d", dir.c_str(), f));
      }
    }
  }
}

const std::string& SpotifyWorkload::PickDir(Rng& rng, bool uniform) const {
  // Zipf rank -> leaf directory (skip the /user and home levels, which
  // exist only as parents). "Uniform" picks model job-output placement:
  // spread over the cold tail of the namespace (production jobs write to
  // fresh output directories, not into the hot read set).
  const uint64_t n = dir_zipf_.n();
  const uint64_t leaf = uniform ? n - n / 4 + rng.NextBelow(n / 4)
                                : dir_zipf_.Next(rng);
  const uint64_t u = leaf / config_.dirs_per_user;
  const uint64_t d = leaf % config_.dirs_per_user;
  // dirs_ layout: "/user", then per user: home + dirs_per_user leaves.
  const size_t idx = 1 + u * (1 + config_.dirs_per_user) + 1 + d;
  return dirs_[idx];
}

const std::string& SpotifyWorkload::PickFile(Rng& rng) const {
  const uint64_t leaf = dir_zipf_.Next(rng);
  const auto& files = files_of_dir_[leaf];
  return files_[files[rng.NextBelow(files.size())]];
}

std::vector<std::string> SpotifyWorkload::PopularPaths(int top_dirs) const {
  std::vector<std::string> out;
  const int n = std::min<int>(top_dirs, static_cast<int>(files_of_dir_.size()));
  for (int leaf = 0; leaf < n; ++leaf) {
    const uint64_t u = static_cast<uint64_t>(leaf) / config_.dirs_per_user;
    const uint64_t d = static_cast<uint64_t>(leaf) % config_.dirs_per_user;
    const size_t idx = 1 + u * (1 + config_.dirs_per_user) + 1 + d;
    out.push_back(dirs_[idx]);
    for (int f : files_of_dir_[leaf]) out.push_back(files_[f]);
  }
  return out;
}

SpotifyWorkload::Op SpotifyWorkload::Next(Rng& rng,
                                          std::vector<std::string>& owned) {
  const auto& entry = SpotifyMix()[mix_.Next(rng)];
  Op op;
  op.op = entry.op;
  switch (entry.target) {
    case SpotifyMixEntry::Target::kFile:
      op.path = PickFile(rng);
      break;
    case SpotifyMixEntry::Target::kFileUniform: {
      // Attribute writes follow job output: cold-tail directories.
      const uint64_t n = dir_zipf_.n();
      const auto& tail = files_of_dir_[n - n / 4 + rng.NextBelow(n / 4)];
      op.path = files_[tail[rng.NextBelow(tail.size())]];
      break;
    }
    case SpotifyMixEntry::Target::kDir:
      op.path = PickDir(rng);
      break;
    case SpotifyMixEntry::Target::kNewName:
      op.path = StrFormat("%s/n%llu", PickDir(rng, /*uniform=*/true).c_str(),
                          static_cast<unsigned long long>(++fresh_counter_));
      if (entry.op == FsOp::kCreate) owned.push_back(op.path);
      break;
    case SpotifyMixEntry::Target::kOwnedFile:
      if (owned.empty()) {
        // Nothing of ours to mutate yet: create instead (keeps the
        // write fraction steady from the start).
        op.op = FsOp::kCreate;
        op.path = StrFormat("%s/n%llu",
                            PickDir(rng, /*uniform=*/true).c_str(),
                            static_cast<unsigned long long>(++fresh_counter_));
        owned.push_back(op.path);
        break;
      }
      op.path = owned.back();
      owned.pop_back();
      if (entry.op == FsOp::kRename) {
        op.path2 = op.path + ".r";
      }
      break;
  }
  return op;
}

}  // namespace repro::workload
