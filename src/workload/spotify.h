// Spotify-style industrial metadata workload (§V-B1).
//
// The paper benchmarks with operational traces from Spotify's Hadoop
// cluster, introduced in the HopsFS FAST'17 paper. The raw trace is
// proprietary; this generator reproduces its published summary statistics:
// a read-dominated operation mix (~94% reads: listings and stats dominate,
// mutations are a few percent) over a user-home-directory namespace with
// skewed (Zipf) directory popularity. All files are empty, exactly like
// the paper's throughput experiments (§V end of intro).
#pragma once

#include <string>
#include <vector>

#include "util/rng.h"
#include "workload/fs_interface.h"

namespace repro::workload {

struct SpotifyMixEntry {
  FsOp op;
  // What the path argument should be: an existing file, an existing dir,
  // a fresh name, or a previously created file (delete/rename).
  enum class Target { kFile, kDir, kNewName, kOwnedFile, kFileUniform };
  Target target;
  double weight;  // percent
};

// The operation mix, approximating the published Spotify breakdown
// (HopsFS, FAST'17): listings 57%, stat 21.6%, read 11.3%, mutations 6.1%,
// chmod-style attribute writes 4%.
const std::vector<SpotifyMixEntry>& SpotifyMix();

struct NamespaceConfig {
  int users = 512;
  int dirs_per_user = 4;
  int files_per_dir = 4;
  double zipf_theta = 0.75;  // directory popularity skew (reads)
};

// Generates the static namespace and picks operation arguments.
class SpotifyWorkload {
 public:
  SpotifyWorkload(NamespaceConfig config, uint64_t seed);

  // Paths for Deployment::BootstrapNamespace (parents before children).
  const std::vector<std::string>& all_dirs() const { return dirs_; }
  const std::vector<std::string>& all_files() const { return files_; }

  // The hottest `top_dirs` leaf directories (by Zipf rank) and their
  // files — the steady-state working set for cache prewarming.
  std::vector<std::string> PopularPaths(int top_dirs) const;

  struct Op {
    FsOp op;
    std::string path;
    std::string path2;
    int64_t size = 0;
  };

  // Draws the next operation for one driver client. `owned` is the
  // client's private list of files it created (delete/rename targets),
  // which this call may consume from or add to.
  Op Next(Rng& rng, std::vector<std::string>& owned);

 private:
  // Reads follow the skewed (Zipf) popularity of the trace; namespace
  // mutations land on effectively unique output paths, i.e. spread
  // uniformly — picking them from the hot set would serialise unrelated
  // jobs on a handful of directory locks, which production traces do not.
  const std::string& PickDir(Rng& rng, bool uniform = false) const;
  const std::string& PickFile(Rng& rng) const;

  NamespaceConfig config_;
  std::vector<std::string> dirs_;
  std::vector<std::string> files_;
  // files grouped by dir index for skewed picks
  std::vector<std::vector<int>> files_of_dir_;
  ZipfGenerator dir_zipf_;
  DiscreteDistribution mix_;
  uint64_t fresh_counter_ = 0;
};

}  // namespace repro::workload
