#include "workload/driver.h"

namespace repro::workload {

ClosedLoopDriver::ClosedLoopDriver(Simulation& sim,
                                   std::vector<FsTarget*> targets,
                                   OpSource source)
    : sim_(sim), source_(std::move(source)) {
  clients_.reserve(targets.size());
  for (FsTarget* t : targets) {
    clients_.push_back(ClientState{t, sim_.rng().Split(), {}});
  }
}

void ClosedLoopDriver::IssueNext(int client, int generation) {
  if (stopped_ || generation != generation_) return;
  ClientState& c = clients_[client];
  auto op = source_(c.rng, c.owned);
  const Nanos start = sim_.now();
  const bool counted = measuring_;
  c.target->Execute(
      op.op, op.path, op.path2, op.size,
      [this, client, start, counted, generation, op_type = op.op](Status s) {
        const Nanos latency = sim_.now() - start;
        if (s.ok()) {
          results_.timeline.Record(sim_.now(), ToMillis(latency));
        } else {
          results_.fail_timeline.Record(sim_.now());
          ++results_.errors_by_code[s.code()];
        }
        if (counted && measuring_) {
          if (s.ok()) {
            results_.all.Record(latency);
            results_.per_op[op_type].Record(latency);
            ++results_.completed;
          } else {
            ++results_.failed;
          }
        }
        IssueNext(client, generation);
      });
}

DriverResults ClosedLoopDriver::Run(Nanos warmup, Nanos measure,
                                    std::function<void()> on_measure_start) {
  results_ = DriverResults();
  stopped_ = false;
  measuring_ = false;
  ++generation_;
  for (size_t i = 0; i < clients_.size(); ++i) {
    IssueNext(static_cast<int>(i), generation_);
  }
  sim_.RunFor(warmup);
  if (on_measure_start) on_measure_start();
  measuring_ = true;
  sim_.RunFor(measure);
  measuring_ = false;
  stopped_ = true;
  results_.window = measure;
  return results_;
}

}  // namespace repro::workload
