#include "workload/driver.h"

#include <algorithm>

namespace repro::workload {

ClosedLoopDriver::ClosedLoopDriver(Simulation& sim,
                                   std::vector<FsTarget*> targets,
                                   OpSource source)
    : sim_(sim), source_(std::move(source)) {
  clients_.reserve(targets.size());
  for (FsTarget* t : targets) {
    clients_.push_back(ClientState{t, sim_.rng().Split(), {}});
  }
}

void ClosedLoopDriver::IssueNext(int client, int generation) {
  if (stopped_ || generation != generation_) return;
  ClientState& c = clients_[client];
  auto op = source_(c.rng, c.owned);
  const Nanos start = sim_.now();
  const bool counted = measuring_;
  c.target->Execute(
      op.op, op.path, op.path2, op.size,
      [this, client, start, counted, generation, op_type = op.op](Status s) {
        const Nanos latency = sim_.now() - start;
        if (s.ok()) {
          results_.timeline.Record(sim_.now(), ToMillis(latency));
        } else {
          results_.fail_timeline.Record(sim_.now());
          ++results_.errors_by_code[s.code()];
        }
        if (counted && measuring_) {
          if (s.ok()) {
            results_.all.Record(latency);
            results_.per_op[op_type].Record(latency);
            ++results_.completed;
          } else {
            ++results_.failed;
          }
        }
        IssueNext(client, generation);
      });
}

OpenLoopDriver::OpenLoopDriver(Simulation& sim,
                               std::vector<FsTarget*> targets,
                               OpSource source)
    : sim_(sim), source_(std::move(source)) {
  clients_.reserve(targets.size());
  for (FsTarget* t : targets) {
    clients_.push_back(ClientState{t, sim_.rng().Split(), {}});
  }
}

OpenLoopResults OpenLoopDriver::Run(double ops_per_sec, Nanos warmup,
                                    Nanos measure) {
  // Shared by the completion callbacks, which can straggle past the
  // measurement window (that is the point of an open loop).
  struct Shared {
    OpenLoopResults results;
    bool measuring = false;
    Nanos window_end = 0;
    int64_t pending_measured = 0;
    size_t next_client = 0;
  };
  auto st = std::make_shared<Shared>();

  const Nanos interval =
      std::max<Nanos>(1, static_cast<Nanos>(kSecond / ops_per_sec));
  auto timer = sim_.Every(interval, [this, st] {
    ClientState& c = clients_[st->next_client++ % clients_.size()];
    auto op = source_(c.rng, c.owned);
    const Nanos start = sim_.now();
    const bool counted = st->measuring;
    if (counted) {
      ++st->results.issued;
      ++st->pending_measured;
    }
    c.target->Execute(
        op.op, op.path, op.path2, op.size,
        [this, st, start, counted](Status s) {
          if (s.ok()) {
            st->results.timeline.Record(sim_.now());
          }
          if (!counted) return;
          --st->pending_measured;
          if (s.ok()) {
            // Goodput only counts completions inside the window: an answer
            // that arrives long after the caller stopped waiting is not
            // useful work, it is the signature of congestion collapse.
            if (sim_.now() <= st->window_end) {
              ++st->results.completed;
            } else {
              ++st->results.late_ok;
            }
            st->results.ok_latency.Record(sim_.now() - start);
          } else {
            ++st->results.failed;
            ++st->results.errors_by_code[s.code()];
          }
        });
  });

  sim_.RunFor(warmup);
  st->measuring = true;
  st->window_end = sim_.now() + measure;
  sim_.RunFor(measure);
  st->measuring = false;
  timer.Cancel();

  // Drain stragglers: give late completions a bounded grace window so
  // "slow" and "never" both land in the stats instead of vanishing.
  const Nanos drain_deadline = sim_.now() + 60 * kSecond;
  while (st->pending_measured > 0 && sim_.now() < drain_deadline) {
    if (!sim_.RunOne()) break;
  }
  if (st->pending_measured > 0) {
    st->results.failed += st->pending_measured;
    st->results.errors_by_code[Code::kTimedOut] += st->pending_measured;
    st->pending_measured = 0;
  }
  st->results.window = measure;
  return st->results;
}

DriverResults ClosedLoopDriver::Run(Nanos warmup, Nanos measure,
                                    std::function<void()> on_measure_start) {
  results_ = DriverResults();
  stopped_ = false;
  measuring_ = false;
  ++generation_;
  for (size_t i = 0; i < clients_.size(); ++i) {
    IssueNext(static_cast<int>(i), generation_);
  }
  sim_.RunFor(warmup);
  if (on_measure_start) on_measure_start();
  measuring_ = true;
  sim_.RunFor(measure);
  measuring_ = false;
  stopped_ = true;
  results_.window = measure;
  return results_;
}

}  // namespace repro::workload
