// Deadline arithmetic shared by every hop (client, namenode, NDB TC,
// block datanode).
//
// A deadline is an *absolute* simulated timestamp carried with the request
// (gRPC-style deadline propagation rather than per-hop timeouts). Each hop
// enforces it locally: before queueing or issuing downstream work it checks
// the remaining budget and fails fast with DEADLINE_EXCEEDED instead of
// doing doomed work. The sentinel 0 means "no deadline" so that plain
// structs can default it away and pre-PR call sites stay valid.
#pragma once

#include <algorithm>

#include "util/time.h"

namespace repro::resilience {

constexpr Nanos kNoDeadline = 0;

inline bool HasDeadline(Nanos deadline) { return deadline != kNoDeadline; }

inline bool DeadlineExpired(Nanos deadline, Nanos now) {
  return HasDeadline(deadline) && now >= deadline;
}

// Remaining budget; never negative. Ops without a deadline get "infinite"
// remaining so min() against a configured timeout is a no-op.
inline Nanos DeadlineRemaining(Nanos deadline, Nanos now) {
  if (!HasDeadline(deadline)) return INT64_MAX;
  return std::max<Nanos>(0, deadline - now);
}

// A per-hop timeout clamped so the local timer never outlives the op's
// deadline: the op fails exactly at its deadline with no extra events.
inline Nanos ClampToDeadline(Nanos timeout, Nanos deadline, Nanos now) {
  return std::min(timeout, DeadlineRemaining(deadline, now));
}

// Exponential backoff with a configurable exponent cap and an absolute
// ceiling, clamped to the op's remaining deadline. `jitter` is a raw draw
// in [0, base) supplied by the caller (the RNG lives with the caller so
// replay determinism is preserved). Returns 0 when no budget remains —
// callers treat that as "do not retry".
inline Nanos RetryBackoff(Nanos base, int attempt, int exp_cap,
                          Nanos max_backoff, Nanos jitter, Nanos deadline,
                          Nanos now) {
  const int exponent = std::min(std::max(attempt - 1, 0), exp_cap);
  Nanos backoff = base * (Nanos{1} << exponent) + jitter;
  if (max_backoff > 0) backoff = std::min(backoff, max_backoff);
  return std::min(backoff, DeadlineRemaining(deadline, now));
}

}  // namespace repro::resilience
