// Rolling latency percentile over a fixed window of recent samples,
// used to derive the hedged-read trigger delay ("The Tail at Scale":
// hedge after the 95th-percentile expected latency).
//
// A ring buffer of the last N samples keeps the estimate adaptive — a
// long-lived histogram would freeze the threshold on stale history after
// a load shift.
#pragma once

#include <cstddef>
#include <vector>

#include "util/time.h"

namespace repro::resilience {

class LatencyTracker {
 public:
  explicit LatencyTracker(size_t window = 128) : window_(window) {
    samples_.reserve(window_);
  }

  void Record(Nanos latency);

  // Value at quantile q in [0,1] over the current window, or `fallback`
  // until min_samples have been observed (hedging too eagerly on a cold
  // estimate would double traffic at startup).
  Nanos Percentile(double q, Nanos fallback, size_t min_samples = 16) const;

  size_t size() const { return samples_.size(); }

 private:
  size_t window_;
  size_t next_ = 0;
  std::vector<Nanos> samples_;
};

}  // namespace repro::resilience
