#include "resilience/circuit_breaker.h"

namespace repro::resilience {

bool CircuitBreaker::CanAttempt(Nanos now) const {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      // Eligible for a half-open probe once the interval elapses.
      return now - opened_at_ >= config_.open_interval;
    case State::kHalfOpen:
      // One probe at a time.
      return !probe_inflight_;
  }
  return true;
}

void CircuitBreaker::OnPicked(Nanos now) {
  if (state_ == State::kOpen && now - opened_at_ >= config_.open_interval) {
    MoveTo(State::kHalfOpen);
  }
  if (state_ == State::kHalfOpen) probe_inflight_ = true;
}

void CircuitBreaker::OnSuccess() {
  consecutive_failures_ = 0;
  probe_inflight_ = false;
  if (state_ != State::kClosed) MoveTo(State::kClosed);
}

void CircuitBreaker::OnFailure(Nanos now) {
  probe_inflight_ = false;
  if (state_ == State::kHalfOpen) {
    // Failed probe: back to open, interval re-armed.
    opened_at_ = now;
    MoveTo(State::kOpen);
    return;
  }
  if (state_ == State::kClosed &&
      ++consecutive_failures_ >= config_.failure_threshold) {
    opened_at_ = now;
    MoveTo(State::kOpen);
  }
}

void CircuitBreaker::MoveTo(State next) {
  if (state_ == next) return;
  state_ = next;
  ++transitions_;
  if (next == State::kClosed) consecutive_failures_ = 0;
}

const char* CircuitStateName(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed: return "closed";
    case CircuitBreaker::State::kOpen: return "open";
    case CircuitBreaker::State::kHalfOpen: return "half-open";
  }
  return "?";
}

}  // namespace repro::resilience
