#include "resilience/retry_budget.h"

#include <algorithm>

namespace repro::resilience {

RetryBudget::RetryBudget(const RetryBudgetConfig& config)
    : config_(config),
      tokens_(std::min(config.initial_tokens, config.max_tokens)) {}

void RetryBudget::OnRequest() {
  tokens_ = std::min(tokens_ + config_.token_ratio, config_.max_tokens);
}

bool RetryBudget::Withdraw() {
  if (tokens_ < 1.0) {
    ++denied_;
    return false;
  }
  tokens_ -= 1.0;
  ++withdrawn_;
  return true;
}

}  // namespace repro::resilience
