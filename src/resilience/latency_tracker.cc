#include "resilience/latency_tracker.h"

#include <algorithm>

namespace repro::resilience {

void LatencyTracker::Record(Nanos latency) {
  if (samples_.size() < window_) {
    samples_.push_back(latency);
  } else {
    samples_[next_] = latency;
  }
  next_ = (next_ + 1) % window_;
}

Nanos LatencyTracker::Percentile(double q, Nanos fallback,
                                 size_t min_samples) const {
  if (samples_.size() < min_samples) return fallback;
  std::vector<Nanos> sorted = samples_;
  const size_t idx = std::min(
      sorted.size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted.size())));
  std::nth_element(sorted.begin(), sorted.begin() + idx, sorted.end());
  return sorted[idx];
}

}  // namespace repro::resilience
