#include "resilience/latency_tracker.h"

#include <algorithm>
#include <cmath>

namespace repro::resilience {

void LatencyTracker::Record(Nanos latency) {
  // window_ == 0 means the tracker is disabled: keep no samples (and
  // never divide by zero below) so Percentile always returns the
  // fallback.
  if (window_ == 0) return;
  if (samples_.size() < window_) {
    samples_.push_back(latency);
  } else {
    samples_[next_] = latency;
  }
  next_ = (next_ + 1) % window_;
}

Nanos LatencyTracker::Percentile(double q, Nanos fallback,
                                 size_t min_samples) const {
  if (samples_.empty() || samples_.size() < min_samples) return fallback;
  std::vector<Nanos> sorted = samples_;
  const size_t n = sorted.size();
  // Nearest-rank percentile: 0-based index ceil(q*n) - 1. Truncating
  // q*n instead picks one rank too high whenever q*n is integral (e.g.
  // p95 over a full 100-sample window), inflating the hedge trigger.
  const double rank = std::ceil(std::clamp(q, 0.0, 1.0) *
                                static_cast<double>(n));
  const size_t idx =
      std::min(n - 1, rank <= 1.0 ? 0 : static_cast<size_t>(rank) - 1);
  std::nth_element(sorted.begin(), sorted.begin() + idx, sorted.end());
  return sorted[idx];
}

}  // namespace repro::resilience
