#include "resilience/admission.h"

#include <algorithm>

namespace repro::resilience {

AimdLimiter::AimdLimiter(const AimdLimiterConfig& config)
    : config_(config),
      limit_(std::clamp(config.initial_limit, config.min_limit,
                        config.max_limit)) {}

bool AimdLimiter::TryAcquire() {
  if (inflight_ >= limit()) {
    ++shed_;
    return false;
  }
  ++inflight_;
  return true;
}

void AimdLimiter::Release(Nanos latency, Nanos now) {
  if (inflight_ > 0) --inflight_;
  if (config_.latency_target <= 0) return;  // controller disabled
  if (latency > config_.latency_target) {
    if (last_decrease_ >= 0 && now - last_decrease_ < config_.decrease_cooldown)
      return;
    last_decrease_ = now;
    limit_ = std::max<double>(config_.min_limit,
                              limit_ * config_.backoff_ratio);
  } else {
    limit_ = std::min<double>(config_.max_limit,
                              limit_ + config_.increase_per_ok);
  }
}

}  // namespace repro::resilience
