// AIMD concurrency limiter for namenode admission control.
//
// The namenode tracks in-flight op count against an adaptive limit driven
// by observed completion latency (a simplified gradient/AIMD controller in
// the spirit of Netflix's concurrency-limits): completions faster than the
// latency target grow the limit additively; completions slower than the
// target shrink it multiplicatively (rate-limited by a cooldown so one
// burst of slow ops doesn't collapse the limit to the floor). Excess
// arrivals are shed with a retryable OVERLOADED status that the client's
// retry budget honours.
#pragma once

#include <cstdint>

#include "util/time.h"

namespace repro::resilience {

struct AimdLimiterConfig {
  int min_limit = 128;
  int max_limit = 4096;
  int initial_limit = 512;
  // Completion latency above which the limiter backs off.
  Nanos latency_target = 0;
  double backoff_ratio = 0.9;     // multiplicative decrease factor
  double increase_per_ok = 0.25;  // additive increase per fast completion
  Nanos decrease_cooldown = 0;    // min spacing between decreases
};

class AimdLimiter {
 public:
  AimdLimiter() : AimdLimiter(AimdLimiterConfig{}) {}
  explicit AimdLimiter(const AimdLimiterConfig& config);

  // Admit one op, or refuse (shed) when in-flight would exceed the limit.
  bool TryAcquire();

  // Completion: release the slot and feed the latency sample into the
  // controller. `now` is only used to space decreases.
  void Release(Nanos latency, Nanos now);

  int limit() const { return static_cast<int>(limit_); }
  int inflight() const { return inflight_; }
  int64_t shed() const { return shed_; }

 private:
  AimdLimiterConfig config_;
  double limit_;
  int inflight_ = 0;
  int64_t shed_ = 0;
  Nanos last_decrease_ = -1;
};

}  // namespace repro::resilience
