// Client-side retry token bucket (the "retry budget" from the SRE
// playbook, also adopted by gRPC): retries may consume at most a fixed
// fraction of the request rate, so a struggling backend sees load shed
// instead of a retry storm multiplying its overload.
#pragma once

#include <cstdint>

namespace repro::resilience {

struct RetryBudgetConfig {
  // Fraction of a token earned per first-attempt request. 0.1 means
  // retries may amplify offered load by at most ~10%.
  double token_ratio = 0.1;
  // Bucket capacity: bounds the burst of retries after a quiet period.
  double max_tokens = 50.0;
  // Initial fill so cold clients can ride out an early blip.
  double initial_tokens = 10.0;
};

class RetryBudget {
 public:
  RetryBudget() : RetryBudget(RetryBudgetConfig{}) {}
  explicit RetryBudget(const RetryBudgetConfig& config);

  // Call once per *first* attempt: accrues token_ratio tokens.
  void OnRequest();

  // Attempt to withdraw one token for a retry. Returns false (and leaves
  // the bucket unchanged) when fewer than 1.0 tokens remain — the caller
  // must give up instead of retrying.
  bool Withdraw();

  double tokens() const { return tokens_; }
  int64_t denied() const { return denied_; }
  int64_t withdrawn() const { return withdrawn_; }

 private:
  RetryBudgetConfig config_;
  double tokens_;
  int64_t denied_ = 0;
  int64_t withdrawn_ = 0;
};

}  // namespace repro::resilience
