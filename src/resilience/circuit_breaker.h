// Per-target circuit breaker (closed / open / half-open) used by the
// HopsFS client to evict a grey-slow or dead namenode from rotation and
// probe it before readmission.
//
// The classic state machine: consecutive failures trip the breaker open;
// after open_interval it admits exactly one half-open probe; probe success
// closes it, probe failure re-opens it (with the interval re-armed).
//
// Target selection must not consume probe slots of candidates it merely
// *considers*, so the API splits a const `CanAttempt(now)` (filtering)
// from `OnPicked(now)` (commits the half-open probe slot once a target is
// actually chosen).
#pragma once

#include <cstdint>

#include "util/time.h"

namespace repro::resilience {

struct CircuitBreakerConfig {
  int failure_threshold = 3;           // consecutive failures to trip open
  Nanos open_interval = 0;             // time open before half-open probe
};

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  CircuitBreaker() : CircuitBreaker(CircuitBreakerConfig{}) {}
  explicit CircuitBreaker(const CircuitBreakerConfig& config)
      : config_(config) {}

  // May the caller route a request to this target right now? Const:
  // filtering a candidate list has no side effects.
  bool CanAttempt(Nanos now) const;

  // The caller committed to this target. In the open state past the
  // interval this consumes the single half-open probe slot.
  void OnPicked(Nanos now);

  void OnSuccess();
  void OnFailure(Nanos now);

  State state() const { return state_; }
  int64_t transitions() const { return transitions_; }

 private:
  void MoveTo(State next);

  CircuitBreakerConfig config_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  Nanos opened_at_ = 0;
  bool probe_inflight_ = false;
  int64_t transitions_ = 0;
};

const char* CircuitStateName(CircuitBreaker::State state);

}  // namespace repro::resilience
