// Safety-invariant checking for chaos runs.
//
// The checker watches a deployment while a fault schedule plays out and
// validates, during and after the run, the end-to-end guarantees the
// paper's design promises (§IV, §V-F):
//
//   durability    every write acknowledged to a client is readable after
//                 all faults heal — no lost acked writes;
//   arbitration   within one arbitration episode the management node
//                 blesses at most one surviving view — no NDB split brain;
//   leadership    no two alive, mutually-reachable namenodes claim
//                 leadership at the same instant, and after healing
//                 exactly one leader remains;
//   replication   block replica counts re-converge to the configured
//                 replication factor, every listed replica actually holds
//                 its block, and (AZ-aware placement) every AZ holds a
//                 copy;
//   deadlines     no operation ever delivers a success to its caller
//                 after the op's absolute deadline passed or after
//                 DEADLINE_EXCEEDED was already reported — fail-fast
//                 must be final (src/resilience/ deadline propagation);
//   determinism   two runs from the same seed produce byte-identical
//                 event traces (checked by the caller via trace()).
#pragma once

#include <string>
#include <vector>

#include "hopsfs/client.h"
#include "hopsfs/deployment.h"

namespace repro::chaos {

struct InvariantResult {
  std::string name;
  bool ok = true;
  std::string detail;  // first violation, or a one-line pass summary
};

class InvariantChecker {
 public:
  explicit InvariantChecker(hopsfs::Deployment& deployment);

  // Starts periodic leadership sampling (call before the fault window).
  // Violations observed live are folded into the final CheckLeadership.
  void StartSampling(Nanos interval = 100 * kMillisecond);

  // The tracked writer calls this for every create the cluster ACKED.
  void RecordAckedWrite(const std::string& path);
  int64_t acked_writes() const {
    return static_cast<int64_t>(acked_paths_.size());
  }

  // ---- final checks: run after faults heal and the system settles ----

  // Stats every acked path through `probe`, driving the simulation until
  // all probes complete (or `deadline` passes). Probes run a few at a
  // time so a big backlog cannot time itself out.
  InvariantResult CheckDurability(hopsfs::HopsFsClient& probe,
                                  Nanos deadline);
  InvariantResult CheckArbitration();
  InvariantResult CheckLeadership();
  InvariantResult CheckReplication();
  InvariantResult CheckDeadlines();
  // Every node recovery in the cluster's recovery log must have replayed
  // deterministically (two replays of the same journal → identical row
  // images) and covered exactly the durable prefix — i.e. every
  // acknowledged commit the node's disk attests is in a flushed log
  // segment or a checkpoint, nothing more, nothing less. Abandoned
  // recoveries are allowed only for a recorded reason (re-crash,
  // cluster shutdown, whole group lost).
  InvariantResult CheckRecovery();
  // The redo-journal backlog (appended but not yet flushed bytes) of every
  // alive NDB node must stay bounded — commit backpressure has to engage
  // before a slow or saturated log disk lets unflushed records pile up
  // without limit. Sampled periodically during the run and once at check
  // time; the bound is 2x the configured stall threshold (in-flight
  // commits may overshoot the threshold, never run away from it).
  InvariantResult CheckRedoBacklog();

  // All finals in order; stable ordering keeps scorecards diffable.
  std::vector<InvariantResult> CheckAll(hopsfs::HopsFsClient& probe,
                                        Nanos deadline);

  // Deterministic observation log (leadership samples, probe outcomes);
  // concatenated with the injector trace it forms the run's event trace
  // used by the determinism invariant.
  const std::vector<std::string>& trace() const { return trace_; }

 private:
  void SampleLeadership();
  void SampleRedoBacklog();

  hopsfs::Deployment& deployment_;
  std::vector<std::string> acked_paths_;
  std::vector<std::string> trace_;
  std::vector<std::string> live_leader_violations_;
  std::vector<std::string> live_backlog_violations_;
  std::string last_leader_set_;
  bool have_leader_set_ = false;
  bool sampling_ = false;
  Simulation::PeriodicHandle sample_timer_;
};

}  // namespace repro::chaos
