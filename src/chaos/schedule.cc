#include "chaos/schedule.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace repro::chaos {

const char* FaultTypeName(FaultType type) {
  switch (type) {
    case FaultType::kCrashNdbNode: return "crash-ndb";
    case FaultType::kRestartNdbNode: return "restart-ndb";
    case FaultType::kAzOutage: return "az-outage";
    case FaultType::kAzRestore: return "az-restore";
    case FaultType::kPartitionAzs: return "partition";
    case FaultType::kPartitionOneWay: return "partition-oneway";
    case FaultType::kHealPartition: return "heal";
    case FaultType::kHealAllPartitions: return "heal-all";
    case FaultType::kLatencyInflate: return "latency-inflate";
    case FaultType::kLatencyRestore: return "latency-restore";
    case FaultType::kMessageDrop: return "msg-drop";
    case FaultType::kMessageDropClear: return "msg-drop-clear";
    case FaultType::kGreySlowNode: return "grey-slow";
    case FaultType::kGreyRestoreNode: return "grey-restore";
    case FaultType::kCrashBlockDn: return "crash-blockdn";
    case FaultType::kOpenLoopSurge: return "open-loop-surge";
    case FaultType::kOpenLoopSurgeStop: return "surge-stop";
    case FaultType::kLogDiskSlow: return "logdisk-slow";
    case FaultType::kLogDiskRestore: return "logdisk-restore";
  }
  return "?";
}

std::string FaultEvent::ToString() const {
  char buf[160];
  switch (type) {
    case FaultType::kHealAllPartitions:
    case FaultType::kLatencyRestore:
    case FaultType::kMessageDropClear:
    case FaultType::kOpenLoopSurgeStop:
      std::snprintf(buf, sizeof(buf), "[t=%.3fs] %s", ToSeconds(time),
                    FaultTypeName(type));
      break;
    case FaultType::kCrashNdbNode:
    case FaultType::kRestartNdbNode:
    case FaultType::kCrashBlockDn:
      std::snprintf(buf, sizeof(buf), "[t=%.3fs] %s node=%d", ToSeconds(time),
                    FaultTypeName(type), a);
      break;
    case FaultType::kOpenLoopSurge:
      std::snprintf(buf, sizeof(buf), "[t=%.3fs] %s %d ops/s", ToSeconds(time),
                    FaultTypeName(type), a);
      break;
    case FaultType::kAzOutage:
    case FaultType::kAzRestore:
      std::snprintf(buf, sizeof(buf), "[t=%.3fs] %s az=%d", ToSeconds(time),
                    FaultTypeName(type), a);
      break;
    case FaultType::kPartitionAzs:
    case FaultType::kPartitionOneWay:
    case FaultType::kHealPartition:
      std::snprintf(buf, sizeof(buf), "[t=%.3fs] %s az%d%saz%d",
                    ToSeconds(time), FaultTypeName(type), a,
                    type == FaultType::kPartitionOneWay ? " -| " : " <-> ", b);
      break;
    case FaultType::kLatencyInflate:
    case FaultType::kMessageDrop:
      std::snprintf(buf, sizeof(buf), "[t=%.3fs] %s az%d<->az%d x%.3f",
                    ToSeconds(time), FaultTypeName(type), a, b, factor);
      break;
    case FaultType::kGreySlowNode:
    case FaultType::kGreyRestoreNode:
    case FaultType::kLogDiskSlow:
    case FaultType::kLogDiskRestore:
      std::snprintf(buf, sizeof(buf), "[t=%.3fs] %s node=%d x%.3f",
                    ToSeconds(time), FaultTypeName(type), a, factor);
      break;
  }
  return buf;
}

void FaultSchedule::Add(FaultEvent event) {
  // Keep sorted by time; stable for equal times so injection order matches
  // insertion order.
  auto it = std::upper_bound(
      events_.begin(), events_.end(), event,
      [](const FaultEvent& x, const FaultEvent& y) { return x.time < y.time; });
  events_.insert(it, event);
}

Nanos FaultSchedule::end_time() const {
  return events_.empty() ? 0 : events_.back().time;
}

std::vector<FaultType> FaultSchedule::FaultTypes() const {
  std::vector<FaultType> types;
  for (const FaultEvent& e : events_) {
    if (std::find(types.begin(), types.end(), e.type) == types.end()) {
      types.push_back(e.type);
    }
  }
  return types;
}

std::string FaultSchedule::Summary() const {
  std::vector<std::pair<FaultType, int>> counts;
  for (const FaultEvent& e : events_) {
    auto it = std::find_if(counts.begin(), counts.end(),
                           [&](const auto& p) { return p.first == e.type; });
    if (it == counts.end()) {
      counts.emplace_back(e.type, 1);
    } else {
      ++it->second;
    }
  }
  std::string out;
  for (const auto& [type, n] : counts) {
    if (!out.empty()) out += ' ';
    out += FaultTypeName(type);
    out += '(';
    out += std::to_string(n);
    out += ')';
  }
  return out;
}

FaultSchedule FaultSchedule::Random(uint64_t seed,
                                    const RandomFaultOptions& opts) {
  // The schedule RNG is independent of the simulation RNG: the same seed
  // yields the same schedule no matter what deployment it later runs on.
  Rng rng(seed);
  FaultSchedule schedule;

  enum Kind {
    kKindCrash,
    kKindAzOutage,
    kKindPartition,
    kKindOneWay,
    kKindLatency,
    kKindDrop,
    kKindGrey,
    kKindBlockDn,
    kKindSurge,
    kKindRecoveryStorm,
    kKindLogDisk,
  };
  std::vector<Kind> kinds;
  if (opts.enable_node_crash) kinds.push_back(kKindCrash);
  if (opts.enable_az_outage) kinds.push_back(kKindAzOutage);
  if (opts.enable_partition) {
    kinds.push_back(kKindPartition);
    kinds.push_back(kKindOneWay);
  }
  if (opts.enable_latency_inflation) kinds.push_back(kKindLatency);
  if (opts.enable_message_drop) kinds.push_back(kKindDrop);
  if (opts.enable_grey_node) kinds.push_back(kKindGrey);
  if (opts.enable_block_dn_crash && opts.num_block_dns > 0) {
    kinds.push_back(kKindBlockDn);
  }
  if (opts.enable_surge) kinds.push_back(kKindSurge);
  if (opts.enable_recovery_storm) kinds.push_back(kKindRecoveryStorm);
  if (opts.enable_log_disk_slow) kinds.push_back(kKindLogDisk);
  if (kinds.empty() || opts.episodes <= 0) return schedule;

  // Episodes are strictly sequential: each one injects a fault, holds it,
  // then heals — the next episode starts only after the previous heal.
  // Sequential episodes guarantee the cluster never sees two node groups
  // down at once (which would legitimately shut NDB down and void the
  // availability invariants; that regime has its own directed tests).
  const Nanos slot = opts.window / opts.episodes;
  for (int ep = 0; ep < opts.episodes; ++ep) {
    const Nanos slot_start = opts.start + ep * slot;
    // Inject in the first third of the slot, heal in the last third: every
    // fault is held long enough to bite, and fully healed before the slot
    // ends.
    const Nanos inject =
        slot_start + kMillisecond + rng.NextBelow(std::max<uint64_t>(
                                        1, static_cast<uint64_t>(slot / 3)));
    const Nanos heal =
        slot_start + (2 * slot) / 3 +
        rng.NextBelow(
            std::max<uint64_t>(1, static_cast<uint64_t>(slot / 3 -
                                                        2 * kMillisecond)));

    const Kind kind = kinds[rng.NextBelow(kinds.size())];
    const int az_a = static_cast<int>(rng.NextBelow(opts.num_azs));
    int az_b = static_cast<int>(rng.NextBelow(opts.num_azs));
    if (az_b == az_a) az_b = (az_b + 1) % opts.num_azs;

    switch (kind) {
      case kKindCrash: {
        const int node = static_cast<int>(rng.NextBelow(opts.num_ndb_nodes));
        schedule.Add({inject, FaultType::kCrashNdbNode, node, -1, 1.0});
        schedule.Add({heal, FaultType::kRestartNdbNode, node, -1, 1.0});
        break;
      }
      case kKindAzOutage:
        // The outage must stay well under the block layer's 10 s DN
        // heartbeat timeout: a longer outage would make the leader
        // re-replicate whole AZs of blocks mid-fault, which the
        // replication invariant would then (correctly) have to wait out.
        schedule.Add({inject, FaultType::kAzOutage, az_a, -1, 1.0});
        schedule.Add({heal, FaultType::kAzRestore, az_a, -1, 1.0});
        break;
      case kKindPartition:
        schedule.Add({inject, FaultType::kPartitionAzs, az_a, az_b, 1.0});
        schedule.Add({heal, FaultType::kHealPartition, az_a, az_b, 1.0});
        break;
      case kKindOneWay:
        schedule.Add({inject, FaultType::kPartitionOneWay, az_a, az_b, 1.0});
        schedule.Add({heal, FaultType::kHealPartition, az_a, az_b, 1.0});
        break;
      case kKindLatency: {
        const double f = 2.0 + rng.NextDouble() * (opts.max_latency_factor - 2.0);
        schedule.Add({inject, FaultType::kLatencyInflate, az_a, az_b, f});
        schedule.Add({heal, FaultType::kLatencyRestore, -1, -1, 1.0});
        break;
      }
      case kKindDrop: {
        const double p = 0.01 + rng.NextDouble() * (opts.max_drop_probability -
                                                    0.01);
        schedule.Add({inject, FaultType::kMessageDrop, az_a, az_b, p});
        schedule.Add({heal, FaultType::kMessageDropClear, -1, -1, 1.0});
        break;
      }
      case kKindGrey: {
        const int node = static_cast<int>(rng.NextBelow(opts.num_ndb_nodes));
        const double f = 2.0 + rng.NextDouble() * (opts.max_grey_slowdown - 2.0);
        schedule.Add({inject, FaultType::kGreySlowNode, node, -1, f});
        schedule.Add({heal, FaultType::kGreyRestoreNode, node, -1, 1.0});
        break;
      }
      case kKindBlockDn: {
        // Permanent loss: the heal is the leader's re-replication, not a
        // restart — nothing to schedule at `heal`.
        const int dn = static_cast<int>(rng.NextBelow(opts.num_block_dns));
        schedule.Add({inject, FaultType::kCrashBlockDn, dn, -1, 1.0});
        break;
      }
      case kKindSurge: {
        const int span =
            std::max(1, opts.max_surge_ops_per_sec - opts.min_surge_ops_per_sec);
        const int rate = opts.min_surge_ops_per_sec +
                         static_cast<int>(rng.NextBelow(span));
        schedule.Add({inject, FaultType::kOpenLoopSurge, rate, -1, 1.0});
        schedule.Add({heal, FaultType::kOpenLoopSurgeStop, -1, -1, 1.0});
        break;
      }
      case kKindRecoveryStorm: {
        // 2-3 crash/restart rounds against one node inside the slot; the
        // restart gap is short enough that later crashes can land while
        // the node is still replaying or resyncing (the restart call then
        // re-enters the in-flight recovery and must handle it cleanly).
        const int node = static_cast<int>(rng.NextBelow(opts.num_ndb_nodes));
        const int rounds = 2 + static_cast<int>(rng.NextBelow(2));
        const Nanos span = heal - inject;
        for (int r = 0; r < rounds; ++r) {
          const Nanos crash_at = inject + (span * r) / rounds;
          const Nanos restart_at =
              crash_at + kMillisecond +
              rng.NextBelow(static_cast<uint64_t>(
                  std::max<Nanos>(1, span / (2 * rounds))));
          schedule.Add({crash_at, FaultType::kCrashNdbNode, node, -1, 1.0});
          schedule.Add({restart_at, FaultType::kRestartNdbNode, node, -1, 1.0});
        }
        break;
      }
      case kKindLogDisk: {
        // Saturate well past the write bandwidth the workload needs: the
        // redo backlog must hit the stall threshold and shed commits
        // instead of growing without bound.
        const int node = static_cast<int>(rng.NextBelow(opts.num_ndb_nodes));
        const double f =
            4.0 + rng.NextDouble() * (opts.max_log_disk_slowdown - 4.0);
        schedule.Add({inject, FaultType::kLogDiskSlow, node, -1, f});
        schedule.Add({heal, FaultType::kLogDiskRestore, node, -1, 1.0});
        break;
      }
    }
  }
  return schedule;
}

FaultInjector::FaultInjector(hopsfs::Deployment& deployment)
    : deployment_(deployment) {}

void FaultInjector::Arm(const FaultSchedule& schedule, Nanos base) {
  assert(!armed_ && "FaultInjector::Arm called twice");
  armed_ = true;
  for (const FaultEvent& e : schedule.events()) {
    deployment_.sim().At(base + e.time, [this, e] { Apply(e); });
  }
}

// During a partition the arbitrator shuts down every NDB process on the
// losing side; healing the network does not resurrect them. Model the
// operator (or systemd) restarting them once connectivity is back —
// without this, dead nodes accumulate across episodes until a whole node
// group is gone and the cluster rightfully shuts itself down.
// Every heal/restore event restarts NDB processes the failure detector
// shot during the episode (arbitration losers stay down even after the
// network recovers; drop storms and latency inflation can also trip the
// detector on nodes whose hosts never failed). Models the operator or
// systemd bringing processes back once the fault clears. Hosts that are
// still down — e.g. a scheduled crash that has not been healed yet — are
// left alone.
void FaultInjector::RestartDeadNdbNodes() {
  ndb::NdbCluster& ndb = deployment_.ndb();
  for (ndb::NodeId n = 0; n < ndb.num_datanodes(); ++n) {
    if (!ndb.layout().alive(n) &&
        deployment_.topology().HostUp(ndb.datanode(n).host())) {
      ndb.RestartDatanode(n);
    }
  }
}

void FaultInjector::Apply(const FaultEvent& e) {
  trace_.push_back(e.ToString());
  Topology& topo = deployment_.topology();
  Network& net = deployment_.network();
  ndb::NdbCluster& ndb = deployment_.ndb();
  switch (e.type) {
    case FaultType::kCrashNdbNode:
      ndb.CrashDatanode(e.a);
      break;
    case FaultType::kRestartNdbNode:
      ndb.RestartDatanode(e.a);
      break;
    case FaultType::kAzOutage:
      topo.SetAzUp(e.a, false);
      break;
    case FaultType::kAzRestore:
      topo.SetAzUp(e.a, true);
      RestartDeadNdbNodes();
      break;
    case FaultType::kPartitionAzs:
      topo.PartitionAzs(e.a, e.b);
      break;
    case FaultType::kPartitionOneWay:
      topo.PartitionAzsOneWay(e.a, e.b);
      break;
    case FaultType::kHealPartition:
      topo.HealPartition(e.a, e.b);
      RestartDeadNdbNodes();
      break;
    case FaultType::kHealAllPartitions:
      topo.HealAllPartitions();
      RestartDeadNdbNodes();
      break;
    case FaultType::kLatencyInflate:
      topo.SetLatencyFactor(e.a, e.b, e.factor);
      break;
    case FaultType::kLatencyRestore:
      topo.ClearLatencyFactors();
      RestartDeadNdbNodes();
      break;
    case FaultType::kMessageDrop:
      net.SetDropProbability(e.a, e.b, e.factor);
      net.SetDropProbability(e.b, e.a, e.factor);
      break;
    case FaultType::kMessageDropClear:
      net.ClearDropProbabilities();
      RestartDeadNdbNodes();
      break;
    case FaultType::kGreySlowNode:
      ndb.datanode(e.a).SetGreySlowdown(e.factor, e.factor);
      break;
    case FaultType::kGreyRestoreNode:
      ndb.datanode(e.a).SetGreySlowdown(1.0, 1.0);
      RestartDeadNdbNodes();
      break;
    case FaultType::kCrashBlockDn: {
      auto& dns = deployment_.block_dns();
      if (e.a >= 0 && e.a < static_cast<int>(dns.size())) {
        dns[e.a]->Crash();
      }
      break;
    }
    case FaultType::kOpenLoopSurge:
      StartSurge(e.a);
      break;
    case FaultType::kOpenLoopSurgeStop:
      StopSurge();
      break;
    case FaultType::kLogDiskSlow:
      ndb.datanode(e.a).SetLogDiskSlowdown(e.factor);
      break;
    case FaultType::kLogDiskRestore:
      ndb.datanode(e.a).SetLogDiskSlowdown(1.0);
      RestartDeadNdbNodes();
      break;
  }
}

// An open-loop surge models a demand spike, not a component failure:
// extra clients stat the root at a fixed arrival rate, independent of
// completions. Without admission control this drives namenode queues
// into collapse; with it, excess arrivals are shed and the cluster's
// goodput holds (the surge-goodput invariant).
void FaultInjector::StartSurge(int ops_per_sec) {
  if (surge_active_ || ops_per_sec <= 0) return;
  surge_active_ = true;
  if (surge_clients_.empty()) {
    for (int i = 0; i < 6; ++i) {
      surge_clients_.push_back(deployment_.AddClient());
    }
  }
  const Nanos interval = std::max<Nanos>(1, kSecond / ops_per_sec);
  surge_timer_ = deployment_.sim().Every(interval, [this] {
    hopsfs::HopsFsClient* c = surge_clients_[surge_rr_++ % surge_clients_.size()];
    ++surge_issued_;
    c->Stat("/", [this](Status s) {
      if (s.ok()) ++surge_completed_;
    });
  });
}

void FaultInjector::StopSurge() {
  if (!surge_active_) return;
  surge_active_ = false;
  surge_timer_.Cancel();
}

}  // namespace repro::chaos
