// Declarative, seeded fault schedules for the deterministic simulator.
//
// A FaultSchedule is a list of timed fault events — node crashes and
// restarts, AZ outages, (possibly asymmetric) AZ partitions and heals,
// inter-AZ latency inflation, probabilistic message loss, and grey
// failures that degrade a node without killing its heartbeats. The
// FaultInjector arms a schedule onto a running Deployment: every event is
// applied at its simulated time through the fault hooks of sim/ and ndb/,
// and appended to a textual event trace. Because the simulator is
// deterministic, the same seed always produces the same schedule AND the
// same trace — a failing seed is a complete reproduction recipe
// (FoundationDB-style simulation testing; see DESIGN.md §8).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hopsfs/deployment.h"
#include "util/rng.h"
#include "util/time.h"

namespace repro::chaos {

enum class FaultType {
  kCrashNdbNode,      // a: node id — host dies, heartbeats must detect it
  kRestartNdbNode,    // a: node id — restart + resync + rejoin
  kAzOutage,          // a: AZ id — every host in the AZ goes dark
  kAzRestore,         // a: AZ id — hosts return; dead NDB nodes restart
  kPartitionAzs,      // a,b: AZ pair — symmetric link cut
  kPartitionOneWay,   // a,b: only the a -> b direction is cut (grey link)
  kHealPartition,     // a,b: heal one AZ pair (both directions)
  kHealAllPartitions,
  kLatencyInflate,    // a,b,factor: multiply a->b and b->a latency
  kLatencyRestore,    // restore all latency factors to 1
  kMessageDrop,       // a,b,factor: drop probability on a<->b links
  kMessageDropClear,  // clear all drop probabilities
  kGreySlowNode,      // a: node id, factor: CPU+disk slowdown, node stays up
  kGreyRestoreNode,   // a: node id — clear the grey degradation
  kCrashBlockDn,      // a: block datanode id — permanent loss, triggers
                      // leader-driven re-replication
  kOpenLoopSurge,     // a: ops/sec — open-loop metadata-read surge from
                      // extra clients (overload, not a component failure)
  kOpenLoopSurgeStop, // the surge traffic stops
  kLogDiskSlow,       // a: node id, factor: redo-log disk only slows down
                      // (grey log device; commits stall, node stays up)
  kLogDiskRestore,    // a: node id — clear the log-disk degradation
};
const char* FaultTypeName(FaultType type);

struct FaultEvent {
  Nanos time = 0;          // absolute simulated time
  FaultType type = FaultType::kHealAllPartitions;
  int a = -1;              // node id or (from-)AZ, per FaultType comment
  int b = -1;              // to-AZ for pair events
  double factor = 1.0;     // latency multiplier / drop prob / slowdown

  // Deterministic one-line rendering used in event traces.
  std::string ToString() const;
};

// Knobs for FaultSchedule::Random. The generator emits `episodes`
// non-overlapping fault episodes inside [start, start + window]; each
// episode picks one enabled fault class, randomises its parameters, and
// schedules the matching heal/restore before the episode ends, so by
// start + window the system has been handed back every resource.
struct RandomFaultOptions {
  Nanos start = 0;
  Nanos window = 8 * kSecond;
  int episodes = 4;

  bool enable_node_crash = true;
  bool enable_az_outage = true;
  bool enable_partition = true;        // includes one-way partitions
  bool enable_latency_inflation = true;
  bool enable_message_drop = true;
  bool enable_grey_node = true;
  bool enable_block_dn_crash = false;  // needs block_datanodes > 0
  // Off by default so long-standing pinned seeds keep drawing the same
  // schedules; overload-focused runs opt in.
  bool enable_surge = false;
  // Recovery storms: crash a node and restart it almost immediately,
  // several times per episode (possibly re-crashing a node that is still
  // replaying/resyncing). Exercises the timed-recovery state machine and
  // its abandon/retry paths. Off by default for pinned-seed stability.
  bool enable_recovery_storm = false;
  // Grey-slow REDO-log disks (the data disk keeps full speed): drives the
  // journal backlog up until commit backpressure engages. Off by default
  // for pinned-seed stability.
  bool enable_log_disk_slow = false;

  // Bounds for randomised parameters.
  double max_latency_factor = 12.0;
  double max_drop_probability = 0.25;
  double max_grey_slowdown = 20.0;
  double max_log_disk_slowdown = 40.0;
  // Sized against the default 6-NN deployment (~175k ops/s of NN CPU):
  // surges range from near-saturation to ~1.7x overload.
  int min_surge_ops_per_sec = 120000;
  int max_surge_ops_per_sec = 300000;

  // Topology the schedule targets (validated against the deployment).
  int num_azs = 3;
  int num_ndb_nodes = 12;
  int num_block_dns = 0;
};

class FaultSchedule {
 public:
  FaultSchedule() = default;

  // Generates a randomized schedule from a seed. Distinct seeds give
  // distinct schedules; the same seed always gives the same schedule.
  static FaultSchedule Random(uint64_t seed, const RandomFaultOptions& opts);

  void Add(FaultEvent event);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  // Time of the last event (the schedule is kept sorted by time).
  Nanos end_time() const;

  // Distinct fault types present (heals/restores count as their own type).
  std::vector<FaultType> FaultTypes() const;
  // "crash(3) az-outage(1) ..." summary for scorecards.
  std::string Summary() const;

 private:
  std::vector<FaultEvent> events_;  // sorted by (time, insertion order)
};

// Applies a schedule to a live deployment, event by event, through the
// simulator's fault hooks. Records one trace line per applied event.
class FaultInjector {
 public:
  explicit FaultInjector(hopsfs::Deployment& deployment);

  // Schedules every event of `schedule` onto the simulation at
  // `base + event.time` — schedule times are relative to a phase start
  // (usually "now", when warm-up begins), not to sim time zero. May be
  // called once per injector.
  void Arm(const FaultSchedule& schedule, Nanos base = 0);

  // Trace of applied events ("[t=2.500s] partition az2 -| az0"), in
  // application order. Deterministic for a given seed.
  const std::vector<std::string>& trace() const { return trace_; }

  // Surge arrivals issued / completed OK while a kOpenLoopSurge episode
  // was active (the surge-goodput invariant compares the two).
  int64_t surge_issued() const { return surge_issued_; }
  int64_t surge_completed() const { return surge_completed_; }

 private:
  void Apply(const FaultEvent& event);
  void RestartDeadNdbNodes();
  void StartSurge(int ops_per_sec);
  void StopSurge();

  hopsfs::Deployment& deployment_;
  std::vector<std::string> trace_;
  bool armed_ = false;

  // Open-loop surge state: lazily created clients hammering Stat("/").
  std::vector<hopsfs::HopsFsClient*> surge_clients_;
  Simulation::PeriodicHandle surge_timer_;
  bool surge_active_ = false;
  size_t surge_rr_ = 0;
  int64_t surge_issued_ = 0;
  int64_t surge_completed_ = 0;
};

}  // namespace repro::chaos
