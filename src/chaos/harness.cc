#include "chaos/harness.h"

#include <algorithm>
#include <memory>

#include "telemetry/export.h"
#include "trace/chrome_trace.h"
#include "util/strings.h"
#include "workload/fs_interface.h"

namespace repro::chaos {

telemetry::TelemetryOptions ChaosTelemetryOptions() {
  telemetry::TelemetryOptions t;
  t.enabled = true;
  t.scraper.period = 50 * kMillisecond;
  t.slo = telemetry::SloConfig::Production().ScaledDown(1200);
  // Chaos episodes run a dozen closed-loop clients, so a dark AZ
  // silences a third of them instead of turning their load into errors —
  // the bad-event volume of a real outage is small here. Four nines
  // keeps the burn-rate math meaningful at that sample size; steady
  // state produces zero unavailability errors, so the tighter target
  // costs nothing in false positives (the soak asserts exactly that).
  t.availability_target = 0.9999;
  return t;
}

namespace {

// Completed-ops rate over [from, to) from a 100 ms-windowed timeline.
double PhaseRate(const metrics::TimeSeries& ts, Nanos from, Nanos to) {
  if (to <= from) return 0;
  int64_t count = 0;
  for (const auto& w : ts.windows()) {
    if (w.start >= from && w.start < to) count += w.count;
  }
  return static_cast<double>(count) / ToSeconds(to - from);
}

}  // namespace

std::string ChaosReport::TraceString() const {
  std::string out;
  for (const auto& line : trace) {
    out += line;
    out += '\n';
  }
  return out;
}

std::string ChaosReport::Scorecard() const {
  std::string out = StrFormat(
      "seed %llu: %s\n"
      "  schedule: %s\n"
      "  goodput ops/s: warmup %.0f -> faults %.0f -> settle %.0f\n"
      "  ops: %lld ok, %lld failed; %lld tracked writes acked; "
      "%lld messages dropped\n",
      static_cast<unsigned long long>(seed),
      invariants_ok() ? "ALL INVARIANTS HOLD" : "INVARIANT VIOLATION",
      schedule_summary.c_str(), goodput.warmup_ops_per_sec,
      goodput.fault_ops_per_sec, goodput.settle_ops_per_sec,
      static_cast<long long>(completed), static_cast<long long>(failed),
      static_cast<long long>(acked_writes),
      static_cast<long long>(messages_dropped));
  if (!errors_by_code.empty()) {
    out += "  errors:";
    for (const auto& [code, n] : errors_by_code) {
      out += StrFormat(" %s=%lld", CodeName(code), static_cast<long long>(n));
    }
    out += '\n';
  }
  out += recovery_time >= 0
             ? StrFormat("  recovery: %.2fs after last heal\n",
                         ToSeconds(recovery_time))
             : std::string("  recovery: goodput did not return to 50% of "
                           "baseline\n");
  out += StrFormat("  longest stall: %.2fs\n", ToSeconds(longest_stall));
  if (!recoveries.empty()) {
    int64_t served = 0, abandoned = 0, entries = 0;
    Nanos worst = 0;
    for (const auto& rec : recoveries) {
      if (rec.aborted) ++abandoned;
      if (rec.serving_at >= 0) {
        ++served;
        entries += rec.replay_entries;
        worst = std::max(worst, rec.serving_at - rec.started);
      }
    }
    out += StrFormat(
        "  node recoveries: %lld served (worst %.2fs, %lld entries "
        "replayed), %lld abandoned\n",
        static_cast<long long>(served), ToSeconds(worst),
        static_cast<long long>(entries), static_cast<long long>(abandoned));
    if (recoveries_dropped > 0) {
      out += StrFormat("  recovery log: %lld oldest entr(ies) evicted\n",
                       static_cast<long long>(recoveries_dropped));
    }
  }
  if (scrapes > 0) {
    out += StrFormat("  telemetry: %lld scrapes, %zu alert(s); %s\n",
                     static_cast<long long>(scrapes), alerts.size(),
                     final_health.ToString().c_str());
    for (const auto& a : alerts) {
      out += StrFormat(
          "    alert %s/%s fired %.2fs%s\n", a.objective.c_str(),
          a.rule.c_str(), ToSeconds(a.fired_at),
          a.active() ? " (still firing)"
                     : StrFormat(" resolved %.2fs", ToSeconds(a.resolved_at))
                           .c_str());
    }
  }
  for (const auto& r : invariants) {
    out += StrFormat("  [%s] %-11s %s\n", r.ok ? "pass" : "FAIL",
                     r.name.c_str(), r.detail.c_str());
  }
  return out;
}

ChaosReport RunChaosSchedule(const ChaosOptions& opts) {
  // Build the schedule first so topology bounds match the deployment the
  // options describe (3 AZs for every paper setup).
  RandomFaultOptions fopts = opts.faults;
  fopts.start = opts.warmup;
  fopts.window = opts.fault_window;
  fopts.num_azs = 3;
  fopts.num_ndb_nodes =
      hopsfs::DeploymentOptions::FromPaperSetup(opts.setup, opts.num_namenodes)
          .ndb_datanodes;
  fopts.num_block_dns = opts.block_datanodes;
  return RunChaosSchedule(opts, FaultSchedule::Random(opts.seed, fopts));
}

ChaosReport RunChaosSchedule(const ChaosOptions& opts,
                             const FaultSchedule& schedule) {
  Simulation sim(opts.seed);
  if (opts.trace_sample_every > 0) {
    sim.tracer().set_sample_every(opts.trace_sample_every);
    sim.tracer().set_keep_last(opts.trace_keep_last);
  }
  auto dopts = hopsfs::DeploymentOptions::FromPaperSetup(opts.setup,
                                                         opts.num_namenodes);
  dopts.block_datanodes = opts.block_datanodes;
  if (opts.client_rpc_timeout > 0) {
    dopts.client.rpc_timeout = opts.client_rpc_timeout;
  }
  if (opts.client_op_deadline > 0) {
    dopts.client.op_deadline = opts.client_op_deadline;
  }
  if (opts.telemetry) {
    dopts.telemetry = opts.telemetry_options;
    dopts.telemetry.enabled = true;
  }
  hopsfs::Deployment dep(sim, dopts);
  dep.Start();

  workload::SpotifyWorkload wl(opts.ns, opts.seed);
  std::vector<std::string> dirs = wl.all_dirs();
  dirs.push_back("/chaos");  // tracked-writer directory
  dep.BootstrapNamespace(dirs, wl.all_files());

  std::vector<std::unique_ptr<workload::HopsFsTarget>> targets;
  std::vector<workload::FsTarget*> ptrs;
  for (int i = 0; i < opts.workload_clients; ++i) {
    targets.push_back(
        std::make_unique<workload::HopsFsTarget>(dep.AddClient()));
    ptrs.push_back(targets.back().get());
  }
  hopsfs::HopsFsClient* writer = dep.AddClient();
  hopsfs::HopsFsClient* probe = dep.AddClient();
  sim.RunFor(3 * kSecond);  // DN heartbeats register, leader settles
  const Nanos t0 = sim.now();

  InvariantChecker checker(dep);
  checker.StartSampling();

  // Schedule times are relative to the driver start (warm-up begins now).
  FaultInjector injector(dep);
  injector.Arm(schedule, t0);

  // Tracked writer: a steady trickle of creates whose acks are recorded;
  // CheckDurability later stats exactly these paths. Writes continue
  // through the fault window on purpose — acks won during faults are the
  // interesting ones.
  int64_t write_counter = 0;
  auto writer_timer = sim.Every(100 * kMillisecond, [&] {
    const std::string path =
        StrFormat("/chaos/w-%lld", static_cast<long long>(write_counter++));
    writer->Create(path, 0, [&checker, path](Status s) {
      if (s.ok()) checker.RecordAckedWrite(path);
    });
  });

  if (opts.enable_test_ack_loss_bug) {
    const Nanos burst_start = t0 + opts.warmup + opts.fault_window / 2;
    sim.At(burst_start, [&dep] {
      for (ndb::NodeId n = 0; n < dep.ndb().num_datanodes(); ++n) {
        dep.ndb().datanode(n).set_test_lose_acked_writes(true);
      }
    });
    sim.At(burst_start + opts.ack_loss_burst, [&dep] {
      for (ndb::NodeId n = 0; n < dep.ndb().num_datanodes(); ++n) {
        dep.ndb().datanode(n).set_test_lose_acked_writes(false);
      }
    });
  }

  workload::ClosedLoopDriver driver(
      sim, ptrs, [&wl](Rng& rng, std::vector<std::string>& owned) {
        return wl.Next(rng, owned);
      });
  auto res = driver.Run(opts.warmup, opts.fault_window + opts.settle);
  writer_timer.Cancel();

  ChaosReport report;
  report.seed = opts.seed;
  report.schedule_summary = schedule.Summary();
  report.fault_types = static_cast<int>(schedule.FaultTypes().size());
  report.completed = res.completed;
  report.failed = res.failed;
  report.errors_by_code = res.errors_by_code;
  report.acked_writes = checker.acked_writes();
  report.messages_dropped = dep.network().messages_dropped();
  report.timeline = res.timeline;
  report.fail_timeline = res.fail_timeline;

  const Nanos faults_end = t0 + opts.warmup + opts.fault_window;
  report.goodput.warmup_ops_per_sec =
      PhaseRate(res.timeline, t0, t0 + opts.warmup);
  report.goodput.fault_ops_per_sec =
      PhaseRate(res.timeline, t0 + opts.warmup, faults_end);
  report.goodput.settle_ops_per_sec =
      PhaseRate(res.timeline, faults_end, faults_end + opts.settle);

  // Recovery: first 100 ms window at/after the last scheduled event whose
  // rate is back to half the warm-up baseline.
  const Nanos last_heal =
      schedule.empty() ? faults_end : t0 + schedule.end_time();
  const double baseline = report.goodput.warmup_ops_per_sec;
  for (const auto& w : report.timeline.windows()) {
    if (w.start < last_heal || baseline <= 0) continue;
    const double rate =
        static_cast<double>(w.count) / ToSeconds(report.timeline.window_width());
    if (rate >= 0.5 * baseline) {
      report.recovery_time = w.start - last_heal;
      break;
    }
  }

  // Longest stall: the longest run of empty 100 ms completion windows
  // after warm-up (the timeline materialises empty windows in gaps).
  {
    const Nanos width = report.timeline.window_width();
    Nanos run = 0;
    Nanos end_of_interest = faults_end + opts.settle;
    for (const auto& w : report.timeline.windows()) {
      if (w.start < t0 + opts.warmup || w.start >= end_of_interest) continue;
      run = w.count == 0 ? run + width : 0;
      report.longest_stall = std::max(report.longest_stall, run);
    }
  }

  report.invariants = checker.CheckAll(*probe, sim.now() + opts.probe_budget);

  // Surge-goodput invariant: during every open-loop surge episode the
  // measured workload must keep at least `surge_goodput_floor` of its
  // warm-up goodput — overload sheds excess arrivals instead of
  // collapsing everyone.
  {
    bool has_surge = false;
    double worst_ratio = 1.0;
    Nanos surge_start = -1;
    const double baseline = report.goodput.warmup_ops_per_sec;
    for (const auto& e : schedule.events()) {
      if (e.type == FaultType::kOpenLoopSurge) surge_start = e.time;
      if (e.type == FaultType::kOpenLoopSurgeStop && surge_start >= 0) {
        const double rate =
            PhaseRate(res.timeline, t0 + surge_start, t0 + e.time);
        if (baseline > 0) {
          worst_ratio = std::min(worst_ratio, rate / baseline);
        }
        has_surge = true;
        surge_start = -1;
      }
    }
    if (has_surge) {
      InvariantResult r;
      r.name = "surge-goodput";
      r.ok = worst_ratio >= opts.surge_goodput_floor;
      r.detail = StrFormat(
          "goodput under surge held %.0f%% of baseline (floor %.0f%%); "
          "surge ops issued %lld, completed %lld",
          100.0 * worst_ratio, 100.0 * opts.surge_goodput_floor,
          static_cast<long long>(injector.surge_issued()),
          static_cast<long long>(injector.surge_completed()));
      report.invariants.push_back(r);
    }
  }

  // Telemetry invariants. These read only the scraper/SLO/health state —
  // alerts and health go into dedicated report fields, never the event
  // trace, so TraceString() is byte-identical with telemetry on or off.
  if (telemetry::Telemetry* tel = dep.telemetry(); tel != nullptr) {
    tel->Tick();  // final settled sample after the probes
    report.scrapes = tel->scraper().scrape_count();
    report.alerts = tel->slo().alerts();
    report.final_health = tel->health();
    for (const auto& [name, series] : tel->scraper().series()) {
      if (name.rfind("health.", 0) != 0 && name != "slo.active_alerts") {
        continue;
      }
      auto& points = report.health_series[name];
      points.reserve(series.ring.size());
      for (size_t i = 0; i < series.ring.size(); ++i) {
        points.push_back(series.ring.at(i));
      }
    }
    if (!opts.telemetry_export_prefix.empty()) {
      telemetry::WriteTextFile(opts.telemetry_export_prefix + ".json",
                               telemetry::ScrapeArchiveJson(tel->scraper()));
      telemetry::WriteTextFile(opts.telemetry_export_prefix + ".prom",
                               telemetry::PrometheusText(dep.metrics()));
      telemetry::WriteScrapeCsv(opts.telemetry_export_prefix + ".csv",
                                tel->scraper());
    }

    if (schedule.empty()) {
      // Steady state must be silent: any alert on a fault-free run is a
      // false positive.
      InvariantResult r;
      r.name = "slo-silence";
      r.ok = report.alerts.empty();
      r.detail = r.ok ? "no alerts on a fault-free run"
                      : StrFormat("%zu alert(s) fired with no faults",
                                  report.alerts.size());
      report.invariants.push_back(r);
    }

    // slo-detects: every AZ outage that took real hosts down must be seen
    // by the availability burn-rate alert while the outage (plus one fast
    // short-window of detection lag) is in effect.
    {
      const Nanos grace = opts.telemetry_options.slo.rules.empty()
                              ? 0
                              : opts.telemetry_options.slo.rules[0].short_window;
      int outages = 0, detected = 0;
      Nanos outage_start = -1;
      for (const auto& e : schedule.events()) {
        if (e.type == FaultType::kAzOutage) {
          int hosts_in_az = 0;
          for (HostId h = 0; h < dep.topology().num_hosts(); ++h) {
            if (dep.topology().az_of(h) == e.a) ++hosts_in_az;
          }
          if (hosts_in_az > 0) outage_start = t0 + e.time;
        } else if (e.type == FaultType::kAzRestore && outage_start >= 0) {
          ++outages;
          const Nanos outage_end = t0 + e.time;
          for (const auto& a : report.alerts) {
            if (a.objective == "availability" && a.fired_at >= outage_start &&
                a.fired_at <= outage_end + grace) {
              ++detected;
              break;
            }
          }
          outage_start = -1;
        }
      }
      if (outages > 0) {
        InvariantResult r;
        r.name = "slo-detects";
        r.ok = detected == outages;
        r.detail = StrFormat(
            "availability alert fired for %d of %d AZ outage(s)", detected,
            outages);
        report.invariants.push_back(r);
      }
    }

    // telemetry-settle: after every heal and the settle phase, the health
    // rollup must match the injected fault set — only permanently crashed
    // block DNs may still be unavailable.
    {
      std::vector<std::string> expected_dead;
      for (const auto& e : schedule.events()) {
        if (e.type == FaultType::kCrashBlockDn) {
          expected_dead.push_back(StrFormat("dn-%d", e.a));
        }
      }
      std::vector<std::string> unexpected;
      for (const auto& h : report.final_health.hosts) {
        if (h.state != telemetry::HealthState::kUnavailable) continue;
        if (std::find(expected_dead.begin(), expected_dead.end(), h.host) ==
            expected_dead.end()) {
          unexpected.push_back(h.host + "(" + h.reason + ")");
        }
      }
      InvariantResult r;
      r.name = "telemetry-settle";
      r.ok = unexpected.empty();
      if (r.ok) {
        r.detail = StrFormat(
            "final health matches the fault set (%zu expected-dead block "
            "DN(s)); cluster %s",
            expected_dead.size(),
            telemetry::HealthStateName(report.final_health.cluster));
      } else {
        r.detail = "hosts unexpectedly unavailable after settle:";
        for (const auto& u : unexpected) r.detail += " " + u;
      }
      report.invariants.push_back(r);
    }
  }

  report.trace = injector.trace();
  for (const auto& line : checker.trace()) report.trace.push_back(line);
  report.recoveries.assign(dep.ndb().recovery_log().begin(),
                           dep.ndb().recovery_log().end());
  report.recoveries_dropped = dep.ndb().recoveries_dropped();

  // Flight recorder: when tracing was on and an invariant failed, dump
  // the retained span trees (the ops closest to the violation) as
  // Chrome-trace JSON for offline inspection.
  if (opts.trace_sample_every > 0) {
    report.traces_captured =
        static_cast<int64_t>(sim.tracer().traces_finished());
    if (!report.invariants_ok() && !opts.trace_dump_path.empty()) {
      const std::vector<trace::Trace> kept(sim.tracer().finished().begin(),
                                           sim.tracer().finished().end());
      if (trace::WriteChromeTrace(opts.trace_dump_path, kept)) {
        report.trace_dump_path = opts.trace_dump_path;
        report.trace.push_back(StrFormat(
            "trace: dumped %zu span trees to %s", kept.size(),
            opts.trace_dump_path.c_str()));
      }
    }
  }

  // Telemetry flight recorder: on invariant failure, drop the scrape
  // archive (the last ring_capacity snapshots of every series) next to
  // the trace ring so the violation comes with its metrics context.
  if (dep.telemetry() != nullptr && !report.invariants_ok() &&
      !opts.telemetry_dump_path.empty() &&
      telemetry::WriteTextFile(
          opts.telemetry_dump_path,
          telemetry::ScrapeArchiveJson(dep.telemetry()->scraper()))) {
    report.telemetry_dump_path = opts.telemetry_dump_path;
  }
  return report;
}

}  // namespace repro::chaos
