#include "chaos/harness.h"

#include <algorithm>
#include <memory>

#include "trace/chrome_trace.h"
#include "util/strings.h"
#include "workload/fs_interface.h"

namespace repro::chaos {
namespace {

// Completed-ops rate over [from, to) from a 100 ms-windowed timeline.
double PhaseRate(const metrics::TimeSeries& ts, Nanos from, Nanos to) {
  if (to <= from) return 0;
  int64_t count = 0;
  for (const auto& w : ts.windows()) {
    if (w.start >= from && w.start < to) count += w.count;
  }
  return static_cast<double>(count) / ToSeconds(to - from);
}

}  // namespace

std::string ChaosReport::TraceString() const {
  std::string out;
  for (const auto& line : trace) {
    out += line;
    out += '\n';
  }
  return out;
}

std::string ChaosReport::Scorecard() const {
  std::string out = StrFormat(
      "seed %llu: %s\n"
      "  schedule: %s\n"
      "  goodput ops/s: warmup %.0f -> faults %.0f -> settle %.0f\n"
      "  ops: %lld ok, %lld failed; %lld tracked writes acked; "
      "%lld messages dropped\n",
      static_cast<unsigned long long>(seed),
      invariants_ok() ? "ALL INVARIANTS HOLD" : "INVARIANT VIOLATION",
      schedule_summary.c_str(), goodput.warmup_ops_per_sec,
      goodput.fault_ops_per_sec, goodput.settle_ops_per_sec,
      static_cast<long long>(completed), static_cast<long long>(failed),
      static_cast<long long>(acked_writes),
      static_cast<long long>(messages_dropped));
  if (!errors_by_code.empty()) {
    out += "  errors:";
    for (const auto& [code, n] : errors_by_code) {
      out += StrFormat(" %s=%lld", CodeName(code), static_cast<long long>(n));
    }
    out += '\n';
  }
  out += recovery_time >= 0
             ? StrFormat("  recovery: %.2fs after last heal\n",
                         ToSeconds(recovery_time))
             : std::string("  recovery: goodput did not return to 50% of "
                           "baseline\n");
  out += StrFormat("  longest stall: %.2fs\n", ToSeconds(longest_stall));
  for (const auto& r : invariants) {
    out += StrFormat("  [%s] %-11s %s\n", r.ok ? "pass" : "FAIL",
                     r.name.c_str(), r.detail.c_str());
  }
  return out;
}

ChaosReport RunChaosSchedule(const ChaosOptions& opts) {
  // Build the schedule first so topology bounds match the deployment the
  // options describe (3 AZs for every paper setup).
  RandomFaultOptions fopts = opts.faults;
  fopts.start = opts.warmup;
  fopts.window = opts.fault_window;
  fopts.num_azs = 3;
  fopts.num_ndb_nodes =
      hopsfs::DeploymentOptions::FromPaperSetup(opts.setup, opts.num_namenodes)
          .ndb_datanodes;
  fopts.num_block_dns = opts.block_datanodes;
  return RunChaosSchedule(opts, FaultSchedule::Random(opts.seed, fopts));
}

ChaosReport RunChaosSchedule(const ChaosOptions& opts,
                             const FaultSchedule& schedule) {
  Simulation sim(opts.seed);
  if (opts.trace_sample_every > 0) {
    sim.tracer().set_sample_every(opts.trace_sample_every);
    sim.tracer().set_keep_last(opts.trace_keep_last);
  }
  auto dopts = hopsfs::DeploymentOptions::FromPaperSetup(opts.setup,
                                                         opts.num_namenodes);
  dopts.block_datanodes = opts.block_datanodes;
  hopsfs::Deployment dep(sim, dopts);
  dep.Start();

  workload::SpotifyWorkload wl(opts.ns, opts.seed);
  std::vector<std::string> dirs = wl.all_dirs();
  dirs.push_back("/chaos");  // tracked-writer directory
  dep.BootstrapNamespace(dirs, wl.all_files());

  std::vector<std::unique_ptr<workload::HopsFsTarget>> targets;
  std::vector<workload::FsTarget*> ptrs;
  for (int i = 0; i < opts.workload_clients; ++i) {
    targets.push_back(
        std::make_unique<workload::HopsFsTarget>(dep.AddClient()));
    ptrs.push_back(targets.back().get());
  }
  hopsfs::HopsFsClient* writer = dep.AddClient();
  hopsfs::HopsFsClient* probe = dep.AddClient();
  sim.RunFor(3 * kSecond);  // DN heartbeats register, leader settles
  const Nanos t0 = sim.now();

  InvariantChecker checker(dep);
  checker.StartSampling();

  // Schedule times are relative to the driver start (warm-up begins now).
  FaultInjector injector(dep);
  injector.Arm(schedule, t0);

  // Tracked writer: a steady trickle of creates whose acks are recorded;
  // CheckDurability later stats exactly these paths. Writes continue
  // through the fault window on purpose — acks won during faults are the
  // interesting ones.
  int64_t write_counter = 0;
  auto writer_timer = sim.Every(100 * kMillisecond, [&] {
    const std::string path =
        StrFormat("/chaos/w-%lld", static_cast<long long>(write_counter++));
    writer->Create(path, 0, [&checker, path](Status s) {
      if (s.ok()) checker.RecordAckedWrite(path);
    });
  });

  if (opts.enable_test_ack_loss_bug) {
    const Nanos burst_start = t0 + opts.warmup + opts.fault_window / 2;
    sim.At(burst_start, [&dep] {
      for (ndb::NodeId n = 0; n < dep.ndb().num_datanodes(); ++n) {
        dep.ndb().datanode(n).set_test_lose_acked_writes(true);
      }
    });
    sim.At(burst_start + opts.ack_loss_burst, [&dep] {
      for (ndb::NodeId n = 0; n < dep.ndb().num_datanodes(); ++n) {
        dep.ndb().datanode(n).set_test_lose_acked_writes(false);
      }
    });
  }

  workload::ClosedLoopDriver driver(
      sim, ptrs, [&wl](Rng& rng, std::vector<std::string>& owned) {
        return wl.Next(rng, owned);
      });
  auto res = driver.Run(opts.warmup, opts.fault_window + opts.settle);
  writer_timer.Cancel();

  ChaosReport report;
  report.seed = opts.seed;
  report.schedule_summary = schedule.Summary();
  report.fault_types = static_cast<int>(schedule.FaultTypes().size());
  report.completed = res.completed;
  report.failed = res.failed;
  report.errors_by_code = res.errors_by_code;
  report.acked_writes = checker.acked_writes();
  report.messages_dropped = dep.network().messages_dropped();
  report.timeline = res.timeline;
  report.fail_timeline = res.fail_timeline;

  const Nanos faults_end = t0 + opts.warmup + opts.fault_window;
  report.goodput.warmup_ops_per_sec =
      PhaseRate(res.timeline, t0, t0 + opts.warmup);
  report.goodput.fault_ops_per_sec =
      PhaseRate(res.timeline, t0 + opts.warmup, faults_end);
  report.goodput.settle_ops_per_sec =
      PhaseRate(res.timeline, faults_end, faults_end + opts.settle);

  // Recovery: first 100 ms window at/after the last scheduled event whose
  // rate is back to half the warm-up baseline.
  const Nanos last_heal =
      schedule.empty() ? faults_end : t0 + schedule.end_time();
  const double baseline = report.goodput.warmup_ops_per_sec;
  for (const auto& w : report.timeline.windows()) {
    if (w.start < last_heal || baseline <= 0) continue;
    const double rate =
        static_cast<double>(w.count) / ToSeconds(report.timeline.window_width());
    if (rate >= 0.5 * baseline) {
      report.recovery_time = w.start - last_heal;
      break;
    }
  }

  // Longest stall: the longest run of empty 100 ms completion windows
  // after warm-up (the timeline materialises empty windows in gaps).
  {
    const Nanos width = report.timeline.window_width();
    Nanos run = 0;
    Nanos end_of_interest = faults_end + opts.settle;
    for (const auto& w : report.timeline.windows()) {
      if (w.start < t0 + opts.warmup || w.start >= end_of_interest) continue;
      run = w.count == 0 ? run + width : 0;
      report.longest_stall = std::max(report.longest_stall, run);
    }
  }

  report.invariants = checker.CheckAll(*probe, sim.now() + opts.probe_budget);

  // Surge-goodput invariant: during every open-loop surge episode the
  // measured workload must keep at least `surge_goodput_floor` of its
  // warm-up goodput — overload sheds excess arrivals instead of
  // collapsing everyone.
  {
    bool has_surge = false;
    double worst_ratio = 1.0;
    Nanos surge_start = -1;
    const double baseline = report.goodput.warmup_ops_per_sec;
    for (const auto& e : schedule.events()) {
      if (e.type == FaultType::kOpenLoopSurge) surge_start = e.time;
      if (e.type == FaultType::kOpenLoopSurgeStop && surge_start >= 0) {
        const double rate =
            PhaseRate(res.timeline, t0 + surge_start, t0 + e.time);
        if (baseline > 0) {
          worst_ratio = std::min(worst_ratio, rate / baseline);
        }
        has_surge = true;
        surge_start = -1;
      }
    }
    if (has_surge) {
      InvariantResult r;
      r.name = "surge-goodput";
      r.ok = worst_ratio >= opts.surge_goodput_floor;
      r.detail = StrFormat(
          "goodput under surge held %.0f%% of baseline (floor %.0f%%); "
          "surge ops issued %lld, completed %lld",
          100.0 * worst_ratio, 100.0 * opts.surge_goodput_floor,
          static_cast<long long>(injector.surge_issued()),
          static_cast<long long>(injector.surge_completed()));
      report.invariants.push_back(r);
    }
  }

  report.trace = injector.trace();
  for (const auto& line : checker.trace()) report.trace.push_back(line);

  // Flight recorder: when tracing was on and an invariant failed, dump
  // the retained span trees (the ops closest to the violation) as
  // Chrome-trace JSON for offline inspection.
  if (opts.trace_sample_every > 0) {
    report.traces_captured =
        static_cast<int64_t>(sim.tracer().traces_finished());
    if (!report.invariants_ok() && !opts.trace_dump_path.empty()) {
      const std::vector<trace::Trace> kept(sim.tracer().finished().begin(),
                                           sim.tracer().finished().end());
      if (trace::WriteChromeTrace(opts.trace_dump_path, kept)) {
        report.trace_dump_path = opts.trace_dump_path;
        report.trace.push_back(StrFormat(
            "trace: dumped %zu span trees to %s", kept.size(),
            opts.trace_dump_path.c_str()));
      }
    }
  }
  return report;
}

}  // namespace repro::chaos
