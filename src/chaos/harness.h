// Chaos harness: one seeded end-to-end chaos episode.
//
// RunChaosSchedule builds a full HopsFS-CL deployment, boots the Spotify
// workload, arms a fault schedule (randomised from the seed, or supplied
// by the caller), and runs warm-up -> fault window -> settle while a
// tracked writer records every acknowledged create. After the run the
// safety invariants (durability, arbitration, leadership, replication)
// are checked and an availability scorecard — per-phase goodput, error
// taxonomy by status code, recovery time — is assembled from the
// workload timeline. The whole run is deterministic: the report's event
// trace is byte-identical across runs with the same options.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "chaos/invariants.h"
#include "chaos/schedule.h"
#include "hopsfs/deployment.h"
#include "telemetry/telemetry.h"
#include "workload/driver.h"
#include "workload/spotify.h"

namespace repro::chaos {

// Telemetry defaults for chaos-scale runs: 50 ms scrape period and the
// production SLO burn-rate windows compressed 1200x (fast 250ms/3s, slow
// 1.5s/18s) so multi-window alerting operates inside a ~16 s episode.
telemetry::TelemetryOptions ChaosTelemetryOptions();

struct ChaosOptions {
  uint64_t seed = 1;
  hopsfs::PaperSetup setup = hopsfs::PaperSetup::kHopsFsCl_3_3;
  int num_namenodes = 6;
  int block_datanodes = 9;
  int workload_clients = 12;
  workload::NamespaceConfig ns{/*users=*/128, /*dirs_per_user=*/4,
                               /*files_per_dir=*/4, /*zipf_theta=*/0.75};

  Nanos warmup = 2 * kSecond;        // fault-free baseline
  Nanos fault_window = 8 * kSecond;  // faults inject and heal in here
  Nanos settle = 6 * kSecond;        // fault-free recovery tail
  Nanos probe_budget = 60 * kSecond; // sim-time budget for durability probes

  // Fault mix toggles and bounds (start/window/topology fields are filled
  // in by the harness from the deployment).
  RandomFaultOptions faults;

  // Surge-goodput invariant: while an open-loop surge is active, the
  // measured workload's goodput must stay at or above this fraction of
  // the warm-up baseline. Admission is FCFS, so under an overload surge
  // the foreground workload keeps roughly its arrival-fraction share of
  // capacity — a small number by design. The invariant therefore guards
  // against metastable collapse (goodput pinned near zero by queue
  // backlogs and retry storms, persisting past the surge), not against
  // fair-share dilution. Only checked when the schedule has a surge.
  double surge_goodput_floor = 0.02;

  // Deliberately enables the lost-acked-write bug (see
  // NdbDatanode::set_test_lose_acked_writes) on every NDB datanode for a
  // short burst mid-window. The durability invariant MUST fail — used to
  // prove the checker detects real violations.
  bool enable_test_ack_loss_bug = false;
  Nanos ack_loss_burst = 600 * kMillisecond;

  // Distributed tracing during the chaos run: sample one in N operations
  // (0 = off; tracing never perturbs the schedule — spans draw no RNG and
  // schedule no events, so the report is byte-identical either way). The
  // last `trace_keep_last` sampled traces are retained, and when an
  // invariant fails and `trace_dump_path` is set they are written there
  // as Chrome-trace JSON — the flight recorder for the offending ops.
  uint64_t trace_sample_every = 0;
  size_t trace_keep_last = 64;
  std::string trace_dump_path;

  // Cluster telemetry during the run (scrape -> health -> SLO burn-rate).
  // Like tracing, the telemetry tick is read-only: the event trace and
  // workload results are byte-identical with telemetry on or off. When
  // enabled the harness also checks the telemetry invariants: slo-silence
  // (an empty schedule must raise zero alerts), slo-detects (an AZ outage
  // must fire an availability alert while it is active), and
  // telemetry-settle (after the heals and the settle phase, the only
  // hosts still rolled up as unavailable are permanently crashed block
  // DNs — the health view matches the injected fault set).
  bool telemetry = false;
  telemetry::TelemetryOptions telemetry_options = ChaosTelemetryOptions();
  // Client failure-detection timeout overrides (0 = keep the deployment
  // defaults). The stock 5 s rpc_timeout and 30 s op_deadline are longer
  // than a whole chaos fault window, so ops issued into a dark AZ hang
  // past the episode instead of failing in a client-visible way — and
  // the availability SLI never sees the outage. Telemetry benches set
  // these to episode scale (e.g. 250 ms / 1 s) on BOTH their
  // telemetry-on and telemetry-off runs, so the on/off byte-identity
  // comparison still simulates the same cluster. Deliberately NOT tied
  // to `telemetry`: observing a run must never change it.
  Nanos client_rpc_timeout = 0;
  Nanos client_op_deadline = 0;
  // On invariant failure, dump the scrape archive JSON (the last
  // ring_capacity snapshots of every series) here, next to the trace
  // ring ("" = none).
  std::string telemetry_dump_path;
  // When set, ALWAYS export the run's telemetry as <prefix>.json (scrape
  // archive), <prefix>.prom (Prometheus text exposition) and <prefix>.csv
  // (wide per-scrape grid) — the CI artifacts of bench_telemetry.
  std::string telemetry_export_prefix;
};

struct PhaseStats {
  double warmup_ops_per_sec = 0;
  double fault_ops_per_sec = 0;
  double settle_ops_per_sec = 0;
};

struct ChaosReport {
  uint64_t seed = 0;
  std::string schedule_summary;
  int fault_types = 0;  // distinct FaultType values the schedule used

  std::vector<InvariantResult> invariants;
  bool invariants_ok() const {
    for (const auto& r : invariants) {
      if (!r.ok) return false;
    }
    return true;
  }

  // Availability scorecard.
  PhaseStats goodput;
  std::map<Code, int64_t> errors_by_code;
  int64_t completed = 0;
  int64_t failed = 0;
  int64_t acked_writes = 0;
  int64_t messages_dropped = 0;
  // Time from the schedule's last heal until goodput first returns to at
  // least half the warm-up rate; -1 if it never does.
  Nanos recovery_time = -1;
  // Longest run of 100 ms windows with zero completed ops after warm-up —
  // the availability scorecard's "no stall longer than the failover
  // detection window" number.
  Nanos longest_stall = 0;

  // Deterministic event trace: injected faults in application order, then
  // the checker's observations. Byte-identical across same-seed runs.
  std::vector<std::string> trace;
  std::string TraceString() const;

  // Node-recovery timeline: one entry per RestartDatanode that began
  // recovering (phases, replay/resync volumes, digests). The CI
  // recovery-smoke job uploads this as its recovery-timeline artifact.
  // The cluster keeps a bounded ring; entries evicted during very long
  // soaks are counted in recoveries_dropped.
  std::vector<ndb::NdbCluster::RecoveryStats> recoveries;
  int64_t recoveries_dropped = 0;

  // Distributed-tracing capture (when ChaosOptions::trace_sample_every
  // is set): how many span trees finished, and where the flight-recorder
  // Chrome-trace JSON was written on invariant failure ("" = none).
  int64_t traces_captured = 0;
  std::string trace_dump_path;

  // Telemetry capture (when ChaosOptions::telemetry is set). Alerts and
  // health live OUTSIDE the event trace so TraceString() stays
  // byte-identical with telemetry on or off.
  int64_t scrapes = 0;
  std::vector<telemetry::SloAlert> alerts;
  telemetry::HealthSnapshot final_health;
  // The derived rollup series (health.host/health.az/health.cluster and
  // slo.active_alerts), copied out of the scrape archive so callers can
  // assert on mid-run health without keeping the deployment alive.
  std::map<std::string, std::vector<telemetry::RingSeries::Point>>
      health_series;
  std::string telemetry_dump_path;  // archive written on invariant failure

  // Multi-line human-readable scorecard.
  std::string Scorecard() const;

  metrics::TimeSeries timeline;       // completions over time
  metrics::TimeSeries fail_timeline;  // failures over time
};

// Runs one chaos episode with a schedule randomised from opts.seed.
ChaosReport RunChaosSchedule(const ChaosOptions& opts);

// Same, with a caller-supplied schedule (event times are absolute sim
// times; the fault window normally spans [warmup, warmup+fault_window]).
ChaosReport RunChaosSchedule(const ChaosOptions& opts,
                             const FaultSchedule& schedule);

}  // namespace repro::chaos
