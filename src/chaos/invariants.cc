#include "chaos/invariants.h"

#include <algorithm>
#include <map>
#include <set>

#include "ndb/datanode.h"
#include "util/strings.h"

namespace repro::chaos {

InvariantChecker::InvariantChecker(hopsfs::Deployment& deployment)
    : deployment_(deployment) {}

void InvariantChecker::StartSampling(Nanos interval) {
  if (sampling_) return;
  sampling_ = true;
  sample_timer_ = deployment_.sim().Every(interval, [this] {
    SampleLeadership();
    SampleRedoBacklog();
  });
}

void InvariantChecker::RecordAckedWrite(const std::string& path) {
  acked_paths_.push_back(path);
}

void InvariantChecker::SampleLeadership() {
  Topology& topo = deployment_.topology();
  std::vector<const hopsfs::Namenode*> leaders;
  for (const auto& nn : deployment_.namenodes()) {
    if (nn->alive() && nn->is_leader()) leaders.push_back(nn.get());
  }
  // Two simultaneous claimants are only a split brain if they could talk
  // to each other: a partitioned-away stale leader that has not yet missed
  // enough election rounds is expected behaviour, not a violation.
  for (size_t i = 0; i < leaders.size(); ++i) {
    for (size_t j = i + 1; j < leaders.size(); ++j) {
      if (topo.Reachable(leaders[i]->host(), leaders[j]->host()) &&
          topo.Reachable(leaders[j]->host(), leaders[i]->host())) {
        live_leader_violations_.push_back(StrFormat(
            "[t=%.3fs] NN %d and NN %d both lead while mutually reachable",
            ToSeconds(deployment_.sim().now()), leaders[i]->id(),
            leaders[j]->id()));
      }
    }
  }
  // Trace leadership transitions (not every sample) so traces stay small
  // but still capture the observable election history.
  std::string set;
  for (const auto* nn : leaders) set += StrFormat(" %d", nn->id());
  if (!have_leader_set_ || set != last_leader_set_) {
    have_leader_set_ = true;
    last_leader_set_ = set;
    trace_.push_back(StrFormat("[t=%.3fs] leaders:%s",
                               ToSeconds(deployment_.sim().now()),
                               set.c_str()));
  }
}

InvariantResult InvariantChecker::CheckDurability(hopsfs::HopsFsClient& probe,
                                                 Nanos deadline) {
  InvariantResult result{"durability", true, ""};
  if (acked_paths_.empty()) {
    result.detail = "no acked writes to probe";
    return result;
  }
  Simulation& sim = deployment_.sim();
  // A handful of probes in flight at a time: enough to finish thousands of
  // paths quickly, few enough that queueing cannot push a probe past its
  // own RPC timeout.
  constexpr int kMaxInFlight = 8;
  size_t next = 0;
  int in_flight = 0;
  int64_t missing = 0;
  std::string first_missing;

  std::function<void()> pump = [&] {
    while (in_flight < kMaxInFlight && next < acked_paths_.size()) {
      const std::string path = acked_paths_[next++];
      ++in_flight;
      probe.Stat(path, [&, path](Status s) {
        --in_flight;
        if (!s.ok()) {
          ++missing;
          if (first_missing.empty()) {
            first_missing = StrFormat("%s: %s", path.c_str(),
                                      CodeName(s.code()));
          }
        }
        pump();
      });
    }
  };
  pump();
  while ((in_flight > 0 || next < acked_paths_.size()) &&
         sim.now() < deadline) {
    if (!sim.RunOne()) break;
  }

  const int64_t unprobed =
      static_cast<int64_t>(acked_paths_.size() - next) + in_flight;
  if (missing > 0) {
    result.ok = false;
    result.detail =
        StrFormat("%lld of %lld acked writes unreadable after heal (first: %s)",
                  static_cast<long long>(missing),
                  static_cast<long long>(acked_paths_.size()),
                  first_missing.c_str());
  } else if (unprobed > 0) {
    result.ok = false;
    result.detail = StrFormat("probe deadline hit with %lld paths unverified",
                              static_cast<long long>(unprobed));
  } else {
    result.detail = StrFormat("%lld acked writes all readable",
                              static_cast<long long>(acked_paths_.size()));
  }
  trace_.push_back(StrFormat("[t=%.3fs] durability: %s",
                             ToSeconds(sim.now()), result.detail.c_str()));
  return result;
}

InvariantResult InvariantChecker::CheckArbitration() {
  InvariantResult result{"arbitration", true, ""};
  ndb::NdbCluster& ndb = deployment_.ndb();
  int64_t decisions = 0;
  int64_t episodes = 0;
  for (int m = 0; m < ndb.num_mgmt(); ++m) {
    const auto& log = ndb.mgmt(m).decision_log();
    decisions += static_cast<int64_t>(log.size());
    // Replay the log: each new_episode decision blesses the view for the
    // following kEpisodeWindow; inside that window there must be no second
    // blessing and every grant must go to a member of the blessed view.
    Nanos episode_start = -1;
    std::vector<bool> blessed;
    for (const auto& d : log) {
      if (d.new_episode) {
        ++episodes;
        if (episode_start >= 0 &&
            d.time - episode_start <= ndb::NdbMgmtNode::kEpisodeWindow) {
          result.ok = false;
          if (result.detail.empty()) {
            result.detail = StrFormat(
                "mgmt %d blessed a second view %.3fs into an episode", m,
                ToSeconds(d.time - episode_start));
          }
        }
        episode_start = d.time;
        blessed = d.view;
        continue;
      }
      if (d.granted) {
        const bool member = d.requester >= 0 &&
                            d.requester < static_cast<ndb::NodeId>(blessed.size()) &&
                            blessed[d.requester];
        if (!member) {
          result.ok = false;
          if (result.detail.empty()) {
            result.detail = StrFormat(
                "mgmt %d granted arbitration to node %d outside the blessed "
                "view at t=%.3fs",
                m, d.requester, ToSeconds(d.time));
          }
        }
      }
    }
  }
  if (result.ok) {
    result.detail = StrFormat(
        "%lld decisions, %lld episodes, one blessed view per episode",
        static_cast<long long>(decisions), static_cast<long long>(episodes));
  }
  trace_.push_back(StrFormat("[t=%.3fs] arbitration: %s",
                             ToSeconds(deployment_.sim().now()),
                             result.detail.c_str()));
  return result;
}

InvariantResult InvariantChecker::CheckLeadership() {
  InvariantResult result{"leadership", true, ""};
  if (!live_leader_violations_.empty()) {
    result.ok = false;
    result.detail = StrFormat(
        "%lld split-brain samples during run (first: %s)",
        static_cast<long long>(live_leader_violations_.size()),
        live_leader_violations_.front().c_str());
    return result;
  }
  int leaders = 0;
  int leader_id = -1;
  for (const auto& nn : deployment_.namenodes()) {
    if (nn->alive() && nn->is_leader()) {
      ++leaders;
      leader_id = nn->id();
    }
  }
  if (leaders != 1) {
    result.ok = false;
    result.detail =
        StrFormat("%d leaders after heal + settle (want exactly 1)", leaders);
  } else {
    result.detail =
        StrFormat("single leader NN %d, no split-brain samples", leader_id);
  }
  trace_.push_back(StrFormat("[t=%.3fs] leadership: %s",
                             ToSeconds(deployment_.sim().now()),
                             result.detail.c_str()));
  return result;
}

InvariantResult InvariantChecker::CheckReplication() {
  InvariantResult result{"replication", true, ""};
  const auto& dns = deployment_.block_dns();
  if (dns.empty()) {
    result.detail = "no block layer configured";
    return result;
  }
  ndb::NdbCluster& ndb = deployment_.ndb();
  const ndb::TableId blocks_table = deployment_.tables().blocks;

  // White-box union of the committed blocks table across alive replicas
  // (each datanode stores only its partitions).
  std::map<ndb::Key, std::string> rows;
  for (ndb::NodeId n = 0; n < ndb.num_datanodes(); ++n) {
    if (!ndb.layout().alive(n)) continue;
    ndb.datanode(n).store().ForEachCommitted(
        blocks_table,
        [&](const ndb::Key& key, const std::string& value) {
          rows[key] = value;
        });
  }

  const int want_rf = std::min<int>(deployment_.options().nn.block_replication,
                                    static_cast<int>(dns.size()));
  const bool want_az_coverage = deployment_.options().az_aware_block_placement;
  const int num_azs = deployment_.topology().num_azs();
  int64_t checked = 0;
  for (const auto& [key, value] : rows) {
    hopsfs::BlockRow row;
    if (!hopsfs::BlockRow::Decode(value, &row)) continue;
    ++checked;
    std::set<AzId> azs;
    std::string problem;
    if (static_cast<int>(row.replicas.size()) < want_rf) {
      problem = StrFormat("has %d replicas (want %d)",
                          static_cast<int>(row.replicas.size()), want_rf);
    }
    for (int32_t dn : row.replicas) {
      if (dn < 0 || dn >= static_cast<int32_t>(dns.size())) {
        problem = StrFormat("lists invalid DN %d", dn);
        break;
      }
      if (!dns[dn]->alive()) {
        problem = StrFormat("lists dead DN %d", dn);
        break;
      }
      if (!dns[dn]->HasBlock(row.block_id)) {
        problem = StrFormat("DN %d does not hold the block", dn);
        break;
      }
      azs.insert(dns[dn]->az());
    }
    if (problem.empty() && want_az_coverage &&
        static_cast<int>(azs.size()) < std::min(num_azs, want_rf)) {
      problem = StrFormat("covers %d AZs (want %d)",
                          static_cast<int>(azs.size()),
                          std::min(num_azs, want_rf));
    }
    if (!problem.empty()) {
      result.ok = false;
      if (result.detail.empty()) {
        result.detail =
            StrFormat("block %s %s", key.c_str(), problem.c_str());
      }
    }
  }
  if (result.ok) {
    result.detail = StrFormat(
        "%lld blocks at rf>=%d%s", static_cast<long long>(checked), want_rf,
        want_az_coverage ? ", every AZ covered" : "");
  }
  trace_.push_back(StrFormat("[t=%.3fs] replication: %s",
                             ToSeconds(deployment_.sim().now()),
                             result.detail.c_str()));
  return result;
}

InvariantResult InvariantChecker::CheckDeadlines() {
  InvariantResult result{"deadlines", true, ""};
  int64_t violations = 0;
  int64_t clients = 0;
  for (const auto& c : deployment_.clients()) {
    ++clients;
    violations += c->post_deadline_successes();
  }
  if (violations > 0) {
    result.ok = false;
    result.detail = StrFormat(
        "%lld success(es) delivered after the op's deadline had passed",
        static_cast<long long>(violations));
  } else {
    result.detail = StrFormat(
        "no success delivered past its deadline across %lld clients",
        static_cast<long long>(clients));
  }
  trace_.push_back(StrFormat("[t=%.3fs] deadlines: %s",
                             ToSeconds(deployment_.sim().now()),
                             result.detail.c_str()));
  return result;
}

void InvariantChecker::SampleRedoBacklog() {
  ndb::NdbCluster& ndb = deployment_.ndb();
  const int64_t bound = 2 * ndb.node_config().redo_stall_backlog_bytes;
  for (ndb::NodeId n = 0; n < ndb.num_datanodes(); ++n) {
    const ndb::NdbDatanode& dn = ndb.datanode(n);
    // Catch-up backups log (and must flush) live chain writes too — an
    // unbounded backlog there sheds every write routed through them.
    if (!dn.alive() && !dn.catchup_accepting()) continue;
    const int64_t backlog = dn.journal().backlog_bytes();
    if (backlog > bound) {
      live_backlog_violations_.push_back(StrFormat(
          "[t=%.3fs] node %d redo backlog %lld bytes exceeds bound %lld",
          ToSeconds(deployment_.sim().now()), n,
          static_cast<long long>(backlog), static_cast<long long>(bound)));
    }
  }
}

InvariantResult InvariantChecker::CheckRedoBacklog() {
  SampleRedoBacklog();  // one final sample at check time
  InvariantResult result{"redo-backlog", true, ""};
  if (!live_backlog_violations_.empty()) {
    result.ok = false;
    result.detail = StrFormat(
        "%lld sample(s) over bound; first: %s",
        static_cast<long long>(live_backlog_violations_.size()),
        live_backlog_violations_.front().c_str());
  } else {
    result.detail = StrFormat(
        "unflushed redo stayed under 2x the %lld-byte stall threshold on "
        "every alive or catch-up node",
        static_cast<long long>(
            deployment_.ndb().node_config().redo_stall_backlog_bytes));
  }
  trace_.push_back(StrFormat("[t=%.3fs] redo-backlog: %s",
                             ToSeconds(deployment_.sim().now()),
                             result.detail.c_str()));
  return result;
}

InvariantResult InvariantChecker::CheckRecovery() {
  InvariantResult result{"recovery", true, ""};
  const auto& log = deployment_.ndb().recovery_log();
  int64_t completed = 0;
  int64_t abandoned = 0;
  for (size_t i = 0; i < log.size(); ++i) {
    const auto& rec = log[i];
    // One deterministic timeline line per recovery, in start order —
    // part of the run's event trace and the CI recovery artifact.
    std::string outcome;
    if (rec.aborted) {
      outcome = "abandoned: " + rec.abort_reason;
    } else if (rec.serving_at >= 0) {
      outcome = StrFormat("served at %.3fs", ToSeconds(rec.serving_at));
    } else {
      outcome = "in flight";
    }
    trace_.push_back(StrFormat(
        "[t=%.3fs] recovery node=%d attempts=%d replay=%lld entries "
        "%lld+%lld bytes resync=%lld bytes %s",
        ToSeconds(rec.started), rec.node, rec.attempts,
        static_cast<long long>(rec.replay_entries),
        static_cast<long long>(rec.replay_log_bytes),
        static_cast<long long>(rec.replay_image_bytes),
        static_cast<long long>(rec.resync_bytes), outcome.c_str()));
    if (rec.aborted) {
      ++abandoned;
      if (rec.abort_reason.empty()) {
        result.ok = false;
        if (result.detail.empty()) {
          result.detail =
              StrFormat("recovery #%d of node %d abandoned without a reason",
                        static_cast<int>(i), rec.node);
        }
      }
      continue;
    }
    if (rec.serving_at < 0) continue;  // still in flight at check time
    ++completed;
    if (!rec.replay_deterministic) {
      result.ok = false;
      if (result.detail.empty()) {
        result.detail = StrFormat(
            "node %d replay non-deterministic (digest mismatch, recovery #%d)",
            rec.node, static_cast<int>(i));
      }
    }
    if (!rec.replay_covered) {
      result.ok = false;
      if (result.detail.empty()) {
        result.detail = StrFormat(
            "node %d replay did not cover the durable prefix (recovery #%d)",
            rec.node, static_cast<int>(i));
      }
    }
  }
  if (result.ok) {
    result.detail = StrFormat(
        "%lld recover(ies) replayed deterministically over the durable "
        "prefix, %lld abandoned with reason",
        static_cast<long long>(completed), static_cast<long long>(abandoned));
  }
  trace_.push_back(StrFormat("[t=%.3fs] recovery: %s",
                             ToSeconds(deployment_.sim().now()),
                             result.detail.c_str()));
  return result;
}

std::vector<InvariantResult> InvariantChecker::CheckAll(
    hopsfs::HopsFsClient& probe, Nanos deadline) {
  std::vector<InvariantResult> results;
  results.push_back(CheckDurability(probe, deadline));
  results.push_back(CheckArbitration());
  results.push_back(CheckLeadership());
  results.push_back(CheckReplication());
  results.push_back(CheckDeadlines());
  results.push_back(CheckRecovery());
  results.push_back(CheckRedoBacklog());
  return results;
}

}  // namespace repro::chaos
