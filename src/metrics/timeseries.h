// Windowed time series for simulation metrics.
//
// Records (time, value) observations into fixed-width windows so benches
// can report throughput/latency over time — e.g. the dip and recovery
// around an injected failure — and export the series as CSV artifacts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.h"

namespace repro::metrics {

class TimeSeries {
 public:
  explicit TimeSeries(Nanos window = 100 * kMillisecond)
      : window_(window) {}

  // Adds one observation at simulated time t.
  void Record(Nanos t, double value = 1.0);

  struct Window {
    Nanos start = 0;
    int64_t count = 0;
    double sum = 0;

    double mean() const { return count > 0 ? sum / count : 0; }
  };

  const std::vector<Window>& windows() const { return windows_; }
  Nanos window_width() const { return window_; }

  // Events per second in each window (throughput view).
  std::vector<double> RatePerSecond() const;
  // Mean value in each window (latency view when values are latencies).
  std::vector<double> MeanPerWindow() const;

  // Compact ASCII sparkline of the rate series (for bench stdout).
  std::string Sparkline() const;

  void Clear() { windows_.clear(); }

 private:
  Nanos window_;
  std::vector<Window> windows_;
};

// Writes aligned columns to a CSV file; returns false on I/O failure.
// Columns: name -> series (all series padded to the longest length).
bool WriteCsv(const std::string& path,
              const std::vector<std::pair<std::string, std::vector<double>>>&
                  columns);

// Directory used for benchmark CSV artifacts; created on demand. Controlled
// by the REPRO_CSV_DIR environment variable (default "bench_out").
std::string CsvDir();

}  // namespace repro::metrics
