// Windowed time series for simulation metrics.
//
// Records (time, value) observations into fixed-width windows so benches
// can report throughput/latency over time — e.g. the dip and recovery
// around an injected failure — and export the series as CSV artifacts.
//
// Window convention (pinned by metrics_test): window i covers the
// half-open interval [i*width, (i+1)*width). A sample landing exactly on
// a window edge t == i*width belongs to window i — the window it opens —
// never to the one it closes, so edge samples bucket deterministically.
// Queries against windows that hold no samples report "no data" (NaN /
// nullopt), not zero: an empty latency window means nothing completed,
// which is the opposite of a 0 ns latency.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/time.h"

namespace repro::metrics {

class TimeSeries {
 public:
  explicit TimeSeries(Nanos window = 100 * kMillisecond)
      : window_(window) {}

  // Adds one observation at simulated time t (>= 0).
  void Record(Nanos t, double value = 1.0);

  struct Window {
    Nanos start = 0;
    int64_t count = 0;
    double sum = 0;

    bool has_data() const { return count > 0; }
    // NaN when the window is empty ("no data", not zero).
    double mean() const;
  };

  const std::vector<Window>& windows() const { return windows_; }
  Nanos window_width() const { return window_; }

  // Mean of the window covering time t; nullopt when no window covers t
  // or the covering window holds no samples.
  std::optional<double> MeanAt(Nanos t) const;

  // Events per second in each window (throughput view). Rates are true
  // zeros for empty windows: "nothing happened" is data for a rate.
  std::vector<double> RatePerSecond() const;
  // Mean value in each window (latency view when values are latencies);
  // NaN marks empty windows (rendered as blank cells by WriteCsv).
  std::vector<double> MeanPerWindow() const;

  // Compact ASCII sparkline of the rate series (for bench stdout).
  std::string Sparkline() const;

  void Clear() { windows_.clear(); }

 private:
  Nanos window_;
  std::vector<Window> windows_;
};

// Writes aligned columns to a CSV file; returns false on I/O failure.
// Columns: name -> series (all series padded to the longest length).
bool WriteCsv(const std::string& path,
              const std::vector<std::pair<std::string, std::vector<double>>>&
                  columns);

// Directory used for benchmark CSV artifacts; created on demand. Controlled
// by the REPRO_CSV_DIR environment variable (default "bench_out").
std::string CsvDir();

}  // namespace repro::metrics
