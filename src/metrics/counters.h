// Metric registry: counters, gauges and histograms in a hierarchical
// dotted namespace with label support.
//
// Components (client, namenode, NDB nodes, block datanodes) register
// metrics by dotted `layer.component.event` name — optionally qualified
// by labels, e.g. `ndb.tc.commits{az=1,node=3}` — and benches print one
// sorted report at the end of a run while the telemetry scraper
// (src/telemetry/) snapshots the whole registry periodically. Metric
// pointers are stable for the life of the registry so hot paths pay one
// hash lookup at setup, not per event.
//
// Besides hot-path-updated metrics the registry accepts *callback*
// metrics: a function polled only when Collect() runs (i.e. at scrape
// time), so existing component statistics (queue backlogs, ops served,
// protocol counters) become scrapable series with zero hot-path cost and
// zero extra simulation events.
//
// The registry is optional everywhere: components take a nullable
// `metrics::Registry*` through their config structs and skip accounting
// when absent, so unit tests and existing call sites are untouched.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace repro::metrics {

class Counter {
 public:
  void Add(int64_t n = 1) { value_ += n; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

// A value that can go up and down (queue depth, in-flight ops, up/down).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double d) { value_ += d; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

// Cumulative-bucket histogram (Prometheus-style): Observe() increments
// every bucket whose upper bound is >= the value, plus count and sum.
class HistogramMetric {
 public:
  // `bounds` are the finite bucket upper bounds, ascending; an implicit
  // +Inf bucket (== count()) completes the histogram.
  explicit HistogramMetric(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  // Cumulative count per finite bound (bucket_counts()[i] = observations
  // with value <= bounds()[i]).
  const std::vector<int64_t>& bucket_counts() const { return counts_; }
  int64_t count() const { return count_; }
  double sum() const { return sum_; }

 private:
  std::vector<double> bounds_;
  std::vector<int64_t> counts_;
  int64_t count_ = 0;
  double sum_ = 0;
};

// A small ordered label set. Encoded canonically (sorted by key) as
// "{k1=v1,k2=v2}" and appended to the metric name, so the same labels
// always address the same metric instance.
struct Labels {
  std::vector<std::pair<std::string, std::string>> kv;

  Labels() = default;
  Labels(std::initializer_list<std::pair<std::string, std::string>> init);

  bool empty() const { return kv.empty(); }
  // Canonical "{k=v,...}" encoding ("" when empty).
  std::string Encode() const;
};

// Full metric identifier: dotted name + canonical label suffix.
std::string FullName(const std::string& name, const Labels& labels);

enum class MetricKind { kCounter, kGauge, kHistogram };

class Registry {
 public:
  // Returns the metric registered under `name` (+ labels), creating it on
  // first use. Returned pointers stay valid for the registry's lifetime.
  // Legacy (pre-rename) counter names are transparently aliased to their
  // canonical dotted names — see kLegacyCounterNames in counters.cc.
  Counter* GetCounter(const std::string& name);
  Counter* GetCounter(const std::string& name, const Labels& labels);
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  HistogramMetric* GetHistogram(const std::string& name,
                                std::vector<double> bounds,
                                const Labels& labels = {});

  // Registers a metric whose value is computed by `fn` only when
  // Collect() runs — the hook that turns existing component statistics
  // into scrapable series with zero hot-path cost. `kind` must be
  // kCounter (monotone, e.g. ops served) or kGauge (instantaneous, e.g.
  // queue backlog). Re-registering the same full name replaces the
  // callback (a restarted component re-binds its stats).
  void RegisterCallback(const std::string& name, const Labels& labels,
                        MetricKind kind, std::function<double()> fn);

  // One scraped value. Histograms are flattened to two samples,
  // `<name>.count` and `<name>.sum` (full bucket vectors are exported via
  // CollectHistograms / the Prometheus exporter).
  struct Sample {
    std::string name;  // full name including label suffix
    MetricKind kind;
    double value;
  };
  // Deterministic (name-sorted) snapshot of every metric, callbacks
  // included. Read-only: safe to call from scrape ticks. Allocates a
  // fresh vector per call — periodic scrapers should use CollectInto.
  std::vector<Sample> Collect() const;

  // Snapshot into a caller-owned buffer, reusing its Sample slots (and
  // their string capacity) across calls. Samples are emitted in a
  // deterministic section order — counters, gauges, histogram
  // .count/.sum pairs, callbacks, each section name-sorted (std::map
  // order) — which is stable across scrapes, so once the metric set
  // stops growing every slot re-receives the same name and the
  // steady-state scrape performs ZERO heap allocations (asserted by
  // prof_test with the allocation counters). Not globally name-sorted;
  // use Collect() when sorted output matters.
  void CollectInto(std::vector<Sample>* out) const;

  struct HistogramSample {
    std::string name;
    const HistogramMetric* histogram;
  };
  std::vector<HistogramSample> CollectHistograms() const;

  // (name, value) pairs of plain counters sorted by name; zero-valued
  // counters included so reports have a stable shape across runs.
  std::vector<std::pair<std::string, int64_t>> Snapshot() const;

  // Multi-line "  name = value" counter report for bench stdout. Only
  // counters matching `prefix` (empty = all). Matching is per whole path
  // segment: "ndb.tc" matches "ndb.tc.commits" but not "ndb.tcp_retrans".
  // Legacy (pre-rename) prefixes keep selecting the renamed counters, and
  // renamed counters are annotated with their legacy name so pre-rename
  // bench stdout stays diffable against post-rename output.
  std::string Report(const std::string& prefix = "") const;

 private:
  struct CallbackMetric {
    MetricKind kind;
    std::function<double()> fn;
  };

  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
  std::map<std::string, CallbackMetric> callbacks_;
};

// True when `name` ("a.b.c" or "a.b.c{k=v}") falls under dotted `prefix`
// on whole-segment boundaries. Empty prefix matches everything.
bool MatchesSegmentPrefix(const std::string& name, const std::string& prefix);

// Canonical name for a legacy counter name ("" if `name` is not legacy).
std::string CanonicalCounterName(const std::string& name);
// Legacy alias of a canonical counter name ("" if it never had one).
std::string LegacyCounterName(const std::string& name);

// Null-safe helpers so call sites do not need to branch on registry
// presence.
inline void Bump(Counter* c, int64_t n = 1) {
  if (c != nullptr) c->Add(n);
}
inline Counter* GetCounter(Registry* r, const std::string& name) {
  return r != nullptr ? r->GetCounter(name) : nullptr;
}
inline Counter* GetCounter(Registry* r, const std::string& name,
                           const Labels& labels) {
  return r != nullptr ? r->GetCounter(name, labels) : nullptr;
}

}  // namespace repro::metrics
