// Named counter registry for resilience observability.
//
// Components (client, namenode, NDB nodes, block datanodes) register
// counters by name — sheds, retries vs. budget, breaker transitions,
// hedge wins, deadline-exceeded per layer — and benches print one sorted
// report at the end of a run. Counter pointers are stable for the life of
// the registry so hot paths pay one hash lookup at setup, not per event.
//
// The registry is optional everywhere: components take a nullable
// `metrics::Registry*` through their config structs and skip accounting
// when absent, so unit tests and existing call sites are untouched.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace repro::metrics {

class Counter {
 public:
  void Add(int64_t n = 1) { value_ += n; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

class Registry {
 public:
  // Returns the counter registered under `name`, creating it on first use.
  // The returned pointer stays valid for the registry's lifetime.
  Counter* GetCounter(const std::string& name);

  // (name, value) pairs sorted by name; zero-valued counters included so
  // reports have a stable shape across runs.
  std::vector<std::pair<std::string, int64_t>> Snapshot() const;

  // Multi-line "  name = value" report for bench stdout. Only counters
  // matching `prefix` (empty = all).
  std::string Report(const std::string& prefix = "") const;

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
};

// Null-safe helpers so call sites do not need to branch on registry
// presence.
inline void Bump(Counter* c, int64_t n = 1) {
  if (c != nullptr) c->Add(n);
}
inline Counter* GetCounter(Registry* r, const std::string& name) {
  return r != nullptr ? r->GetCounter(name) : nullptr;
}

}  // namespace repro::metrics
