#include "metrics/timeseries.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sys/stat.h>

namespace repro::metrics {

void TimeSeries::Record(Nanos t, double value) {
  const size_t idx = static_cast<size_t>(t / window_);
  if (idx >= windows_.size()) {
    const size_t old = windows_.size();
    windows_.resize(idx + 1);
    for (size_t i = old; i < windows_.size(); ++i) {
      windows_[i].start = static_cast<Nanos>(i) * window_;
    }
  }
  windows_[idx].count += 1;
  windows_[idx].sum += value;
}

std::vector<double> TimeSeries::RatePerSecond() const {
  std::vector<double> out;
  out.reserve(windows_.size());
  const double secs = ToSeconds(window_);
  for (const auto& w : windows_) {
    out.push_back(static_cast<double>(w.count) / secs);
  }
  return out;
}

std::vector<double> TimeSeries::MeanPerWindow() const {
  std::vector<double> out;
  out.reserve(windows_.size());
  for (const auto& w : windows_) out.push_back(w.mean());
  return out;
}

std::string TimeSeries::Sparkline() const {
  static const char* kBlocks[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  const auto rates = RatePerSecond();
  double peak = 0;
  for (double r : rates) peak = std::max(peak, r);
  std::string out;
  for (double r : rates) {
    const int level =
        peak > 0 ? static_cast<int>(r / peak * 7.0 + 0.5) : 0;
    out += kBlocks[std::clamp(level, 0, 7)];
  }
  return out;
}

bool WriteCsv(const std::string& path,
              const std::vector<std::pair<std::string, std::vector<double>>>&
                  columns) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  size_t rows = 0;
  for (const auto& [name, series] : columns) {
    rows = std::max(rows, series.size());
  }
  for (size_t c = 0; c < columns.size(); ++c) {
    std::fprintf(f, "%s%s", c ? "," : "", columns[c].first.c_str());
  }
  std::fprintf(f, "\n");
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < columns.size(); ++c) {
      if (c) std::fprintf(f, ",");
      const auto& series = columns[c].second;
      if (r < series.size()) std::fprintf(f, "%.6g", series[r]);
    }
    std::fprintf(f, "\n");
  }
  std::fclose(f);
  return true;
}

std::string CsvDir() {
  const char* env = std::getenv("REPRO_CSV_DIR");
  std::string dir = env != nullptr && env[0] != '\0' ? env : "bench_out";
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

}  // namespace repro::metrics
