#include "metrics/timeseries.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sys/stat.h>

namespace repro::metrics {

double TimeSeries::Window::mean() const {
  if (count <= 0) return std::numeric_limits<double>::quiet_NaN();
  return sum / static_cast<double>(count);
}

std::optional<double> TimeSeries::MeanAt(Nanos t) const {
  if (t < 0) return std::nullopt;
  const size_t idx = static_cast<size_t>(t / window_);
  if (idx >= windows_.size() || !windows_[idx].has_data()) return std::nullopt;
  return windows_[idx].mean();
}

void TimeSeries::Record(Nanos t, double value) {
  assert(t >= 0 && "TimeSeries samples must carry non-negative sim time");
  // Half-open bucketing: t == i*window_ lands in window i (see header).
  const size_t idx = static_cast<size_t>(t / window_);
  if (idx >= windows_.size()) {
    const size_t old = windows_.size();
    windows_.resize(idx + 1);
    for (size_t i = old; i < windows_.size(); ++i) {
      windows_[i].start = static_cast<Nanos>(i) * window_;
    }
  }
  windows_[idx].count += 1;
  windows_[idx].sum += value;
}

std::vector<double> TimeSeries::RatePerSecond() const {
  std::vector<double> out;
  out.reserve(windows_.size());
  const double secs = ToSeconds(window_);
  for (const auto& w : windows_) {
    out.push_back(static_cast<double>(w.count) / secs);
  }
  return out;
}

std::vector<double> TimeSeries::MeanPerWindow() const {
  std::vector<double> out;
  out.reserve(windows_.size());
  for (const auto& w : windows_) out.push_back(w.mean());
  return out;
}

std::string TimeSeries::Sparkline() const {
  static const char* kBlocks[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  const auto rates = RatePerSecond();
  double peak = 0;
  for (double r : rates) peak = std::max(peak, r);
  std::string out;
  for (double r : rates) {
    const int level =
        peak > 0 ? static_cast<int>(r / peak * 7.0 + 0.5) : 0;
    out += kBlocks[std::clamp(level, 0, 7)];
  }
  return out;
}

bool WriteCsv(const std::string& path,
              const std::vector<std::pair<std::string, std::vector<double>>>&
                  columns) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  size_t rows = 0;
  for (const auto& [name, series] : columns) {
    rows = std::max(rows, series.size());
  }
  for (size_t c = 0; c < columns.size(); ++c) {
    std::fprintf(f, "%s%s", c ? "," : "", columns[c].first.c_str());
  }
  std::fprintf(f, "\n");
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < columns.size(); ++c) {
      if (c) std::fprintf(f, ",");
      const auto& series = columns[c].second;
      // NaN marks "no data" (e.g. an empty latency window): emit a blank
      // cell so plots show a gap instead of a bogus zero.
      if (r < series.size() && !std::isnan(series[r])) {
        std::fprintf(f, "%.6g", series[r]);
      }
    }
    std::fprintf(f, "\n");
  }
  std::fclose(f);
  return true;
}

std::string CsvDir() {
  const char* env = std::getenv("REPRO_CSV_DIR");
  std::string dir = env != nullptr && env[0] != '\0' ? env : "bench_out";
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

}  // namespace repro::metrics
