#include "metrics/counters.h"

namespace repro::metrics {

Counter* Registry::GetCounter(const std::string& name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

std::vector<std::pair<std::string, int64_t>> Registry::Snapshot() const {
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

std::string Registry::Report(const std::string& prefix) const {
  std::string out;
  for (const auto& [name, counter] : counters_) {
    if (!prefix.empty() && name.rfind(prefix, 0) != 0) continue;
    out += "  " + name + " = " + std::to_string(counter->value()) + "\n";
  }
  return out;
}

}  // namespace repro::metrics
