#include "metrics/counters.h"

#include <algorithm>
#include <array>

namespace repro::metrics {
namespace {

// Pre-rename counter names -> canonical `layer.component.event` names.
// The 2026 naming sweep moved every counter onto the dotted hierarchy the
// telemetry scraper exports; these aliases keep old call sites (and old
// bench invocations of Report("client"), Report("nn"), ...) working.
constexpr std::array<std::pair<const char*, const char*>, 13>
    kLegacyCounterNames{{
        {"client.retries", "hopsfs.client.retries"},
        {"client.retry_budget_denied", "hopsfs.client.retry_budget_denied"},
        {"client.breaker_transitions", "hopsfs.client.breaker_transitions"},
        {"client.hedges_sent", "hopsfs.client.hedges_sent"},
        {"client.hedge_wins", "hopsfs.client.hedge_wins"},
        {"client.deadline_exceeded", "hopsfs.client.deadline_exceeded"},
        {"client.sheds_observed", "hopsfs.client.sheds_observed"},
        {"nn.admission.shed", "hopsfs.nn.admission_shed"},
        {"nn.deadline_exceeded", "hopsfs.nn.deadline_exceeded"},
        {"nn.txn_retries", "hopsfs.nn.txn_retries"},
        {"ndb.hedges_sent", "ndb.api.hedges_sent"},
        {"ndb.hedge_wins", "ndb.api.hedge_wins"},
        {"ndb.deadline_exceeded", "ndb.api.deadline_exceeded"},
    }};

}  // namespace

std::string CanonicalCounterName(const std::string& name) {
  for (const auto& [legacy, canonical] : kLegacyCounterNames) {
    if (name == legacy) return canonical;
  }
  return "";
}

std::string LegacyCounterName(const std::string& name) {
  for (const auto& [legacy, canonical] : kLegacyCounterNames) {
    if (name == canonical) return legacy;
  }
  return "";
}

bool MatchesSegmentPrefix(const std::string& name,
                          const std::string& prefix) {
  if (prefix.empty()) return true;
  if (name.size() < prefix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.size() == prefix.size()) return true;
  // Whole-segment boundary: the next character must end the path segment
  // ('.' continues the hierarchy, '{' starts a label suffix).
  const char next = name[prefix.size()];
  return next == '.' || next == '{';
}

// ---- HistogramMetric ------------------------------------------------------

HistogramMetric::HistogramMetric(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size(), 0) {}

void HistogramMetric::Observe(double value) {
  ++count_;
  sum_ += value;
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) ++counts_[i];
  }
}

// ---- Labels ---------------------------------------------------------------

Labels::Labels(
    std::initializer_list<std::pair<std::string, std::string>> init)
    : kv(init) {
  std::sort(kv.begin(), kv.end());
}

std::string Labels::Encode() const {
  if (kv.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < kv.size(); ++i) {
    if (i > 0) out += ',';
    out += kv[i].first;
    out += '=';
    out += kv[i].second;
  }
  out += '}';
  return out;
}

std::string FullName(const std::string& name, const Labels& labels) {
  return name + labels.Encode();
}

// ---- Registry -------------------------------------------------------------

Counter* Registry::GetCounter(const std::string& name) {
  const std::string canonical = CanonicalCounterName(name);
  const std::string& key = canonical.empty() ? name : canonical;
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    it = counters_.emplace(key, std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Counter* Registry::GetCounter(const std::string& name, const Labels& labels) {
  return GetCounter(FullName(name, labels));
}

Gauge* Registry::GetGauge(const std::string& name, const Labels& labels) {
  const std::string key = FullName(name, labels);
  auto it = gauges_.find(key);
  if (it == gauges_.end()) {
    it = gauges_.emplace(key, std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

HistogramMetric* Registry::GetHistogram(const std::string& name,
                                        std::vector<double> bounds,
                                        const Labels& labels) {
  const std::string key = FullName(name, labels);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(key, std::make_unique<HistogramMetric>(std::move(bounds)))
             .first;
  }
  return it->second.get();
}

void Registry::RegisterCallback(const std::string& name, const Labels& labels,
                                MetricKind kind, std::function<double()> fn) {
  callbacks_[FullName(name, labels)] = CallbackMetric{kind, std::move(fn)};
}

std::vector<Registry::Sample> Registry::Collect() const {
  std::vector<Sample> out;
  CollectInto(&out);
  std::sort(out.begin(), out.end(),
            [](const Sample& a, const Sample& b) { return a.name < b.name; });
  return out;
}

void Registry::CollectInto(std::vector<Sample>* out) const {
  const size_t need = counters_.size() + gauges_.size() +
                      2 * histograms_.size() + callbacks_.size();
  // resize() keeps existing Sample slots (and their strings' capacity);
  // growth only happens when a new metric registers, never steady-state.
  out->resize(need);
  size_t i = 0;
  // Section order (each map already name-sorted) is stable across
  // scrapes, so slot i always re-receives the same name: assign() reuses
  // the string's buffer and the scrape allocates nothing.
  for (const auto& [name, c] : counters_) {
    Sample& s = (*out)[i++];
    s.name.assign(name);
    s.kind = MetricKind::kCounter;
    s.value = static_cast<double>(c->value());
  }
  for (const auto& [name, g] : gauges_) {
    Sample& s = (*out)[i++];
    s.name.assign(name);
    s.kind = MetricKind::kGauge;
    s.value = g->value();
  }
  for (const auto& [name, h] : histograms_) {
    Sample& c = (*out)[i++];
    c.name.assign(name);
    c.name += ".count";
    c.kind = MetricKind::kCounter;
    c.value = static_cast<double>(h->count());
    Sample& m = (*out)[i++];
    m.name.assign(name);
    m.name += ".sum";
    m.kind = MetricKind::kCounter;
    m.value = h->sum();
  }
  for (const auto& [name, cb] : callbacks_) {
    Sample& s = (*out)[i++];
    s.name.assign(name);
    s.kind = cb.kind;
    s.value = cb.fn();
  }
}

std::vector<Registry::HistogramSample> Registry::CollectHistograms() const {
  std::vector<HistogramSample> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.push_back({name, h.get()});
  return out;
}

std::vector<std::pair<std::string, int64_t>> Registry::Snapshot() const {
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

std::string Registry::Report(const std::string& prefix) const {
  std::string out;
  for (const auto& [name, counter] : counters_) {
    const std::string legacy = LegacyCounterName(name);
    // A prefix selects a counter through its canonical name or (compat
    // shim) through the legacy name old bench invocations used.
    if (!MatchesSegmentPrefix(name, prefix) &&
        (legacy.empty() || !MatchesSegmentPrefix(legacy, prefix))) {
      continue;
    }
    out += "  " + name + " = " + std::to_string(counter->value());
    if (!legacy.empty()) out += "  (was " + legacy + ")";
    out += "\n";
  }
  return out;
}

}  // namespace repro::metrics
