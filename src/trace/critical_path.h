// Critical-path analysis over finished span trees.
//
// CriticalPath partitions an operation's wall-clock interval into
// segments, each attributed to the deepest span responsible for that
// slice of time: wherever a span's children cover an instant, the
// covering child that ends last is the one the parent is actually
// blocked on, and the walk recurses into it; uncovered time belongs to
// the span itself (its own cause tag). Because every elementary interval
// of the root window is assigned to exactly one segment, the segment
// durations sum to the end-to-end latency EXACTLY — the invariant the
// trace tests and the trace-smoke CI job assert.
//
// BreakdownAggregator streams finished traces (Tracer sink) into
// per-op-type cause breakdowns and per-AZ-pair network-hop histograms —
// the Fig. 8/9-style decomposition ("where did the p99 go?").
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "trace/trace.h"
#include "util/histogram.h"

namespace repro::trace {

// One attributed slice of an operation's latency. `span` points into the
// Trace passed to CriticalPath and lives only as long as it does.
struct PathSegment {
  const Span* span;
  Nanos start;
  Nanos end;
  Nanos duration() const { return end - start; }
};

std::vector<PathSegment> CriticalPath(const Trace& t);

struct OpBreakdown {
  int64_t ops = 0;
  Nanos total = 0;  // summed end-to-end latency
  std::map<Cause, Nanos> by_cause;   // critical-path time per cause
  std::map<Layer, Nanos> by_layer;   // critical-path time per layer
  Histogram latency;                 // end-to-end per-op histogram
};

class BreakdownAggregator {
 public:
  // Streams one finished trace (suitable as a Tracer sink).
  void Add(const Trace& t);

  const std::map<std::string, OpBreakdown>& per_op() const {
    return per_op_;
  }
  // Network-hop durations keyed by (src AZ, dst AZ); every network span
  // in the trace contributes, critical or not.
  const std::map<std::pair<int, int>, Histogram>& az_pair_net() const {
    return az_pair_net_;
  }

  int64_t traces() const { return traces_; }
  // Sum of critical-path segment durations across every trace seen.
  Nanos attributed_total() const { return attributed_; }
  // Sum of measured end-to-end (root) durations — must equal the above.
  Nanos measured_total() const { return measured_; }

  // Multi-line human-readable report: per-op-type top critical-path
  // contributors plus the per-AZ-pair network table.
  std::string Report(size_t top_causes = 4) const;

 private:
  std::map<std::string, OpBreakdown> per_op_;
  std::map<std::pair<int, int>, Histogram> az_pair_net_;
  int64_t traces_ = 0;
  Nanos attributed_ = 0;
  Nanos measured_ = 0;
};

}  // namespace repro::trace
