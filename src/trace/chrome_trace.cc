#include "trace/chrome_trace.h"

#include <fstream>
#include <map>

#include "util/strings.h"

namespace repro::trace {

std::string ChromeTraceJson(const std::vector<Trace>& traces) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  std::map<int, int> host_az;  // host -> az, for process-name metadata
  for (const Trace& t : traces) {
    for (const Span& s : t.spans) {
      if (s.host >= 0 && !host_az.count(s.host)) host_az[s.host] = s.az;
      if (!first) out += ',';
      first = false;
      // ts/dur in integer-nanosecond-precise microseconds.
      out += StrFormat(
          "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
          "\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d,"
          "\"args\":{\"cause\":\"%s\",\"az\":%d,\"dst_az\":%d,"
          "\"trace_id\":%llu,\"span_id\":%llu}}",
          s.name.c_str(), LayerName(s.layer),
          static_cast<double>(s.start) / 1000.0,
          static_cast<double>(s.duration()) / 1000.0,
          s.host, static_cast<int>(s.layer), CauseName(s.cause), s.az,
          s.dst_az, static_cast<unsigned long long>(t.trace_id),
          static_cast<unsigned long long>(s.id));
    }
  }
  for (const auto& [host, az] : host_az) {
    if (!first) out += ',';
    first = false;
    out += StrFormat(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
        "\"args\":{\"name\":\"host%d az%d\"}}",
        host, host, az);
  }
  out += "]}";
  return out;
}

bool WriteChromeTrace(const std::string& path,
                      const std::vector<Trace>& traces) {
  std::ofstream f(path, std::ios::out | std::ios::trunc);
  if (!f) return false;
  f << ChromeTraceJson(traces);
  return static_cast<bool>(f.good());
}

}  // namespace repro::trace
