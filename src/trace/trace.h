// Deterministic distributed tracing for the simulated deployment.
//
// Every sampled operation carries a span tree from the client through the
// namenode, the NDB transaction-coordinator chain (prepare / commit /
// complete, per-replica hops) down to the block datanodes. Spans are
// recorded in *simulated* time, so a trace is bit-for-bit replayable from
// the run's seed (REPRO_LOG workflows) — there is no wall-clock anywhere.
//
// Sampling is a deterministic 1-in-N counter rather than an RNG draw:
// drawing from the simulation RNG would shift every subsequent random
// number and change the run being observed. An unsampled operation gets
// SpanId 0 and every tracer call with a zero parent is a cheap no-op, so
// full-rate benches pay near-zero cost with sampling off or sparse.
//
// Cause taxonomy (see DESIGN.md §10): each span is tagged with where the
// nanoseconds went — intra/inter-AZ network, CPU queueing vs execution,
// disk, lock wait, or retry/hedge/backoff introduced by the resilience
// stack — which is what the critical-path analyzer aggregates.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/time.h"

namespace repro::trace {

using SpanId = uint64_t;  // 0 = "not sampled" / no span

enum class Layer : uint8_t { kClient, kNamenode, kNdb, kBlocks };

enum class Cause : uint8_t {
  kWork,            // the span's own logic (uncovered residue on the path)
  kCpuQueue,        // waiting for a FIFO thread-pool slot
  kCpu,             // executing on a thread pool
  kDisk,            // disk access + transfer
  kLockWait,        // row-lock manager wait
  kNetworkIntraAz,  // message delay within one availability zone
  kNetworkInterAz,  // message delay across availability zones
  kRetry,           // retry / hedge / backoff from the resilience stack
};

const char* LayerName(Layer layer);
const char* CauseName(Cause cause);

// Cause tag for a message between two availability zones.
inline Cause NetCause(int src_az, int dst_az) {
  return src_az == dst_az ? Cause::kNetworkIntraAz : Cause::kNetworkInterAz;
}

struct Span {
  SpanId id = 0;
  SpanId parent = 0;  // 0 for the root span
  std::string name;
  Layer layer = Layer::kClient;
  Cause cause = Cause::kWork;
  int host = -1;
  int az = -1;
  int dst_az = -1;  // network spans: destination AZ, else -1
  Nanos start = 0;
  Nanos end = -1;  // -1 while open; clamped to the root end at finalize

  Nanos duration() const { return end < start ? 0 : end - start; }
};

struct Trace {
  uint64_t trace_id = 0;
  std::string name;  // root operation name, e.g. "mkdir"
  std::vector<Span> spans;  // spans[0] is the root; creation order after

  const Span& root() const { return spans.front(); }
  Nanos duration() const {
    return spans.empty() ? 0 : spans.front().duration();
  }
};

class Tracer {
 public:
  using Clock = std::function<Nanos()>;
  using Sink = std::function<void(const Trace&)>;

  explicit Tracer(Clock clock) : clock_(std::move(clock)) {}

  // Sampling knob: 0 disables tracing, 1 samples every operation, N
  // samples one in N (deterministic counter, no RNG draws).
  void set_sample_every(uint64_t n) { sample_every_ = n; }
  uint64_t sample_every() const { return sample_every_; }
  bool enabled() const { return sample_every_ > 0; }

  // Streaming consumer invoked on every finalized trace (aggregators,
  // chaos dumpers). May be null.
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  // Bounded ring of finalized traces kept for later export (default 256).
  void set_keep_last(size_t n);
  const std::deque<Trace>& finished() const { return finished_; }
  std::vector<Trace> TakeFinished();

  uint64_t ops_seen() const { return ops_seen_; }
  uint64_t traces_started() const { return traces_started_; }
  uint64_t traces_finished() const { return traces_finished_; }

  // Starts a root span for one operation; returns 0 when the operation is
  // not sampled. All other calls tolerate a zero parent/id and no-op.
  SpanId StartTrace(std::string_view name, Layer layer, int host, int az);

  // Opens a child span at the current sim time.
  SpanId StartSpan(SpanId parent, std::string_view name, Layer layer,
                   Cause cause, int host, int az, int dst_az = -1);

  // Records an already-bounded span (thread-pool queue/service bookings,
  // disk service windows) without open/close bookkeeping.
  SpanId AddSpanAt(SpanId parent, std::string_view name, Layer layer,
                   Cause cause, int host, int az, Nanos start, Nanos end,
                   int dst_az = -1);

  void EndSpan(SpanId id) { EndSpanAt(id, clock_()); }
  // Ends with an explicit timestamp (must be >= the span start).
  void EndSpanAt(SpanId id, Nanos end);

  // Finalizes the trace owning `root`: the root closes at the current sim
  // time, any span still open (a hedge that never completed, a message
  // lost to a fault) is clamped to the root's end, and the completed
  // trace is handed to the sink and the finished ring. Span ids of a
  // finalized trace become inert — late EndSpan calls are no-ops, which
  // is exactly what a losing hedge attempt should see.
  void EndTrace(SpanId root);

 private:
  struct OpenTrace {
    Trace trace;
    std::unordered_map<SpanId, size_t> index;  // span id -> spans[] slot
  };

  Span* Find(SpanId id);

  Clock clock_;
  Sink sink_;
  uint64_t sample_every_ = 0;  // tracing off by default
  uint64_t ops_seen_ = 0;
  uint64_t traces_started_ = 0;
  uint64_t traces_finished_ = 0;
  uint64_t next_id_ = 1;
  size_t keep_last_ = 256;
  std::unordered_map<SpanId, uint64_t> span_to_trace_;  // any span -> trace
  std::unordered_map<uint64_t, OpenTrace> open_;        // trace id -> builder
  std::deque<Trace> finished_;
};

}  // namespace repro::trace
