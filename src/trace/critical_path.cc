#include "trace/critical_path.h"

#include <algorithm>
#include <unordered_map>

#include "util/strings.h"

namespace repro::trace {
namespace {

struct Node {
  const Span* span;
  std::vector<int> children;  // creation order — deterministic
};

struct Clipped {
  int node;
  Nanos s, e;
};

// Attributes [lo, hi) of node `idx`'s time. Children are clipped to the
// window; per elementary interval the covering child that ends last (the
// blocker) wins and is recursed into; uncovered intervals belong to the
// node itself.
void Cover(const std::vector<Node>& nodes, int idx, Nanos lo, Nanos hi,
           std::vector<PathSegment>& out) {
  if (hi <= lo) return;
  const Node& n = nodes[idx];
  std::vector<Clipped> kids;
  kids.reserve(n.children.size());
  for (int c : n.children) {
    const Nanos s = std::max(nodes[c].span->start, lo);
    const Nanos e = std::min(nodes[c].span->end, hi);
    if (e > s) kids.push_back({c, s, e});
  }
  if (kids.empty()) {
    out.push_back({n.span, lo, hi});
    return;
  }
  std::vector<Nanos> cuts;
  cuts.reserve(2 * kids.size() + 2);
  cuts.push_back(lo);
  cuts.push_back(hi);
  for (const Clipped& k : kids) {
    cuts.push_back(k.s);
    cuts.push_back(k.e);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    const Nanos a = cuts[i], b = cuts[i + 1];
    int owner = -1;  // index into kids
    for (size_t k = 0; k < kids.size(); ++k) {
      if (kids[k].s > a || kids[k].e < b) continue;
      if (owner < 0 ||
          nodes[kids[k].node].span->end >
              nodes[kids[owner].node].span->end ||
          (nodes[kids[k].node].span->end ==
               nodes[kids[owner].node].span->end &&
           kids[k].node > kids[owner].node)) {
        owner = static_cast<int>(k);
      }
    }
    if (owner < 0) {
      out.push_back({n.span, a, b});
    } else {
      Cover(nodes, kids[owner].node, a, b, out);
    }
  }
}

}  // namespace

std::vector<PathSegment> CriticalPath(const Trace& t) {
  std::vector<PathSegment> out;
  if (t.spans.empty()) return out;
  std::vector<Node> nodes(t.spans.size());
  std::unordered_map<SpanId, int> slot;
  slot.reserve(t.spans.size());
  for (size_t i = 0; i < t.spans.size(); ++i) {
    nodes[i].span = &t.spans[i];
    slot[t.spans[i].id] = static_cast<int>(i);
  }
  for (size_t i = 1; i < t.spans.size(); ++i) {
    auto it = slot.find(t.spans[i].parent);
    if (it != slot.end()) nodes[it->second].children.push_back(i);
  }
  const Span& root = t.spans.front();
  Cover(nodes, 0, root.start, root.end, out);
  // Merge back-to-back segments owned by the same span (an interval that
  // was split only because a sibling's boundary fell inside it).
  std::vector<PathSegment> merged;
  for (const PathSegment& s : out) {
    if (!merged.empty() && merged.back().span == s.span &&
        merged.back().end == s.start) {
      merged.back().end = s.end;
    } else {
      merged.push_back(s);
    }
  }
  return merged;
}

void BreakdownAggregator::Add(const Trace& t) {
  if (t.spans.empty()) return;
  ++traces_;
  measured_ += t.duration();
  OpBreakdown& op = per_op_[t.name];
  ++op.ops;
  op.total += t.duration();
  op.latency.Record(t.duration());
  for (const PathSegment& seg : CriticalPath(t)) {
    attributed_ += seg.duration();
    op.by_cause[seg.span->cause] += seg.duration();
    op.by_layer[seg.span->layer] += seg.duration();
  }
  for (const Span& s : t.spans) {
    if (s.cause == Cause::kNetworkIntraAz ||
        s.cause == Cause::kNetworkInterAz) {
      az_pair_net_[{s.az, s.dst_az}].Record(s.duration());
    }
  }
}

std::string BreakdownAggregator::Report(size_t top_causes) const {
  std::string out = StrFormat(
      "critical-path breakdown over %lld traces "
      "(attributed %.3f ms, measured %.3f ms)\n",
      static_cast<long long>(traces_), ToMillis(attributed_),
      ToMillis(measured_));
  for (const auto& [name, op] : per_op_) {
    out += StrFormat("  %-12s n=%-6lld mean=%.3fms p99=%.3fms :",
                     name.c_str(), static_cast<long long>(op.ops),
                     ToMillis(op.total) / static_cast<double>(op.ops),
                     ToMillis(op.latency.Percentile(0.99)));
    std::vector<std::pair<Cause, Nanos>> causes(op.by_cause.begin(),
                                                op.by_cause.end());
    std::sort(causes.begin(), causes.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    size_t shown = 0;
    for (const auto& [cause, ns] : causes) {
      if (shown++ >= top_causes) break;
      out += StrFormat(" %s=%.0f%%", CauseName(cause),
                       100.0 * static_cast<double>(ns) /
                           static_cast<double>(std::max<Nanos>(1, op.total)));
    }
    out += '\n';
  }
  if (!az_pair_net_.empty()) {
    out += "  network hops by AZ pair:\n";
    for (const auto& [pair, hist] : az_pair_net_) {
      out += StrFormat("    az%d->az%d  n=%-7lld mean=%.3fms p99=%.3fms\n",
                       pair.first, pair.second,
                       static_cast<long long>(hist.count()),
                       hist.MeanMillis(), ToMillis(hist.Percentile(0.99)));
    }
  }
  return out;
}

}  // namespace repro::trace
