// Chrome-trace (chrome://tracing / Perfetto) JSON exporter.
//
// Each span becomes one "X" (complete) event: ts/dur in microseconds of
// simulated time, pid = simulated host id, tid = layer. Cause, AZ and
// trace id ride along in args, and process-name metadata events label
// hosts with their AZ so the Perfetto track list reads like the
// deployment diagram.
#pragma once

#include <string>
#include <vector>

#include "trace/trace.h"

namespace repro::trace {

std::string ChromeTraceJson(const std::vector<Trace>& traces);

// Writes ChromeTraceJson to `path`; returns false on I/O failure.
bool WriteChromeTrace(const std::string& path,
                      const std::vector<Trace>& traces);

}  // namespace repro::trace
