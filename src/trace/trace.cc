#include "trace/trace.h"

#include <algorithm>
#include <utility>

namespace repro::trace {

const char* LayerName(Layer layer) {
  switch (layer) {
    case Layer::kClient: return "client";
    case Layer::kNamenode: return "namenode";
    case Layer::kNdb: return "ndb";
    case Layer::kBlocks: return "blocks";
  }
  return "?";
}

const char* CauseName(Cause cause) {
  switch (cause) {
    case Cause::kWork: return "work";
    case Cause::kCpuQueue: return "cpu_queue";
    case Cause::kCpu: return "cpu";
    case Cause::kDisk: return "disk";
    case Cause::kLockWait: return "lock_wait";
    case Cause::kNetworkIntraAz: return "net_intra_az";
    case Cause::kNetworkInterAz: return "net_inter_az";
    case Cause::kRetry: return "retry";
  }
  return "?";
}

void Tracer::set_keep_last(size_t n) {
  keep_last_ = n;
  while (finished_.size() > keep_last_) finished_.pop_front();
}

std::vector<Trace> Tracer::TakeFinished() {
  std::vector<Trace> out(std::make_move_iterator(finished_.begin()),
                         std::make_move_iterator(finished_.end()));
  finished_.clear();
  return out;
}

SpanId Tracer::StartTrace(std::string_view name, Layer layer, int host,
                          int az) {
  if (sample_every_ == 0) return 0;
  const uint64_t n = ops_seen_++;
  if (n % sample_every_ != 0) return 0;
  const SpanId id = next_id_++;
  ++traces_started_;
  OpenTrace& ot = open_[id];
  ot.trace.trace_id = id;
  ot.trace.name.assign(name);
  Span root;
  root.id = id;
  root.parent = 0;
  root.name.assign(name);
  root.layer = layer;
  root.cause = Cause::kWork;
  root.host = host;
  root.az = az;
  root.start = clock_();
  ot.index[id] = 0;
  ot.trace.spans.push_back(std::move(root));
  span_to_trace_[id] = id;
  return id;
}

SpanId Tracer::StartSpan(SpanId parent, std::string_view name, Layer layer,
                         Cause cause, int host, int az, int dst_az) {
  const Nanos now = clock_();
  return AddSpanAt(parent, name, layer, cause, host, az, now, -1, dst_az);
}

SpanId Tracer::AddSpanAt(SpanId parent, std::string_view name, Layer layer,
                         Cause cause, int host, int az, Nanos start,
                         Nanos end, int dst_az) {
  if (parent == 0) return 0;
  auto it = span_to_trace_.find(parent);
  if (it == span_to_trace_.end()) return 0;  // trace already finalized
  OpenTrace& ot = open_.at(it->second);
  const SpanId id = next_id_++;
  Span s;
  s.id = id;
  s.parent = parent;
  s.name.assign(name);
  s.layer = layer;
  s.cause = cause;
  s.host = host;
  s.az = az;
  s.dst_az = dst_az;
  s.start = start;
  s.end = end;
  ot.index[id] = ot.trace.spans.size();
  ot.trace.spans.push_back(std::move(s));
  span_to_trace_[id] = it->second;
  return id;
}

Span* Tracer::Find(SpanId id) {
  if (id == 0) return nullptr;
  auto it = span_to_trace_.find(id);
  if (it == span_to_trace_.end()) return nullptr;
  OpenTrace& ot = open_.at(it->second);
  return &ot.trace.spans[ot.index.at(id)];
}

void Tracer::EndSpanAt(SpanId id, Nanos end) {
  Span* s = Find(id);
  if (s == nullptr || s->end >= s->start) return;  // unknown or closed
  s->end = std::max(end, s->start);
}

void Tracer::EndTrace(SpanId root) {
  if (root == 0) return;
  auto it = open_.find(root);
  if (it == open_.end()) return;
  Trace t = std::move(it->second.trace);
  for (const auto& [id, slot] : it->second.index) {
    (void)slot;
    span_to_trace_.erase(id);
  }
  open_.erase(it);

  Span& r = t.spans.front();
  if (r.end < r.start) r.end = clock_();
  // Clamp: children cannot extend past the root (lost replies, losing
  // hedges), nor start before it.
  for (size_t i = 1; i < t.spans.size(); ++i) {
    Span& s = t.spans[i];
    s.start = std::clamp(s.start, r.start, r.end);
    s.end = s.end < s.start ? r.end : std::min(s.end, r.end);
  }
  ++traces_finished_;
  if (sink_) sink_(t);
  if (keep_last_ > 0) {
    finished_.push_back(std::move(t));
    while (finished_.size() > keep_last_) finished_.pop_front();
  }
}

}  // namespace repro::trace
