// Deterministic random number generation.
//
// Every simulation owns a single seeded Rng; all stochastic choices
// (workload op mix, path popularity, jitter) draw from it so a run is
// reproducible from its seed alone. The generator is xoshiro256**, seeded
// via SplitMix64 — fast, high quality, and stable across platforms
// (unlike std::mt19937 + std::uniform_int_distribution whose outputs are
// implementation-defined).
#pragma once

#include <cstdint>
#include <vector>

namespace repro {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t NextU64();

  // Uniform in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n);

  // Uniform in [lo, hi], inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform in [0, 1).
  double NextDouble();

  bool NextBool(double p_true);

  // Exponentially distributed with the given mean (for inter-arrival jitter).
  double NextExp(double mean);

  // Splits off an independent stream (for per-node RNGs that must not
  // perturb each other's sequences when topology changes).
  Rng Split();

 private:
  uint64_t s_[4];
};

// Zipf-distributed ranks in [0, n). Used to model skewed directory/file
// popularity in the Spotify-style workload. Precomputes the CDF once.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  uint64_t Next(Rng& rng) const;
  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  std::vector<double> cdf_;
};

// Picks an index according to a fixed discrete distribution (op mix).
class DiscreteDistribution {
 public:
  explicit DiscreteDistribution(std::vector<double> weights);

  int Next(Rng& rng) const;
  int size() const { return static_cast<int>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

}  // namespace repro
