#include "util/logging.h"

#include <cstdio>

namespace repro {
namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

Logger& Logger::Get() {
  static Logger logger;
  return logger;
}

void Logger::Log(LogLevel level, const std::string& component,
                 const std::string& message) {
  const double t_ms = clock_ ? ToMillis(clock_()) : 0.0;
  std::fprintf(stderr, "[%12.3fms] %-5s %-12s %s\n", t_ms, LevelName(level),
               component.c_str(), message.c_str());
}

}  // namespace repro
