// Small string helpers shared across modules.
#pragma once

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace repro {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

std::vector<std::string_view> SplitPath(std::string_view path);

// Joins with '/', always producing an absolute, normalised path.
std::string JoinPath(const std::vector<std::string_view>& parts);

// Returns {parent_path, basename}; "/" has parent "/" and empty basename.
std::pair<std::string, std::string> SplitParent(std::string_view path);

// Zero-allocation SplitParent: both views alias `path` (or a static "/").
// Matches SplitParent on normalised paths; a parent with redundant
// slashes is returned as-is rather than re-joined.
std::pair<std::string_view, std::string_view> SplitParentView(
    std::string_view path);

bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace repro
