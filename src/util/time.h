// Simulated-time units. The whole code base expresses time as integer
// nanoseconds so that the discrete-event engine is exactly deterministic
// (no floating-point drift in event ordering).
#pragma once

#include <cstdint>

namespace repro {

using Nanos = int64_t;

constexpr Nanos kNanosecond = 1;
constexpr Nanos kMicrosecond = 1000 * kNanosecond;
constexpr Nanos kMillisecond = 1000 * kMicrosecond;
constexpr Nanos kSecond = 1000 * kMillisecond;

constexpr Nanos Micros(int64_t us) { return us * kMicrosecond; }
constexpr Nanos Millis(int64_t ms) { return ms * kMillisecond; }
constexpr Nanos Seconds(int64_t s) { return s * kSecond; }

// Converts a nanosecond duration to fractional milliseconds, the unit the
// paper reports latencies in.
constexpr double ToMillis(Nanos t) { return static_cast<double>(t) / 1e6; }
constexpr double ToSeconds(Nanos t) { return static_cast<double>(t) / 1e9; }

}  // namespace repro
