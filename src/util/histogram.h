// Log-bucketed latency histogram (HDR-style) for percentile reporting.
//
// The paper reports average end-to-end latency (Fig. 8) and the 50th/90th/
// 99th percentiles (Fig. 9); this histogram backs both. Buckets grow
// geometrically so a single structure covers 1 us .. 100 s with ~2% relative
// error, at constant memory.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.h"

namespace repro {

class Histogram {
 public:
  Histogram();

  void Record(Nanos value);
  void Merge(const Histogram& other);
  void Reset();

  int64_t count() const { return count_; }
  Nanos min() const { return count_ ? min_ : 0; }
  Nanos max() const { return max_; }
  Nanos sum() const { return sum_; }
  double MeanMillis() const;

  // Returns the value at quantile q in [0,1], e.g. 0.99 for p99.
  Nanos Percentile(double q) const;

  std::string Summary() const;

 private:
  static int BucketFor(Nanos value);
  static Nanos BucketUpperBound(int bucket);

  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  Nanos sum_ = 0;
  Nanos min_ = 0;
  Nanos max_ = 0;
};

}  // namespace repro
