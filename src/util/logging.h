// Leveled logging with simulated-time stamps.
//
// The logger calls a pluggable clock so log lines carry *simulated* time,
// which is what matters when debugging protocol interleavings. Logging is
// compiled in at all levels but filtered at runtime; the default level is
// kWarn so benchmarks stay quiet.
#pragma once

#include <functional>
#include <string>

#include "util/strings.h"
#include "util/time.h"

namespace repro {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static Logger& Get();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  // Installed by the simulation so lines are stamped with sim time.
  void set_clock(std::function<Nanos()> clock) { clock_ = std::move(clock); }

  void Log(LogLevel level, const std::string& component,
           const std::string& message);

  bool Enabled(LogLevel level) const { return level >= level_; }

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::function<Nanos()> clock_;
};

#define RLOG(level, component, ...)                                       \
  do {                                                                    \
    if (::repro::Logger::Get().Enabled(level)) {                          \
      ::repro::Logger::Get().Log(level, component,                        \
                                 ::repro::StrFormat(__VA_ARGS__));        \
    }                                                                     \
  } while (0)

#define RLOG_DEBUG(component, ...) \
  RLOG(::repro::LogLevel::kDebug, component, __VA_ARGS__)
#define RLOG_INFO(component, ...) \
  RLOG(::repro::LogLevel::kInfo, component, __VA_ARGS__)
#define RLOG_WARN(component, ...) \
  RLOG(::repro::LogLevel::kWarn, component, __VA_ARGS__)
#define RLOG_ERROR(component, ...) \
  RLOG(::repro::LogLevel::kError, component, __VA_ARGS__)

}  // namespace repro
