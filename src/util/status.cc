#include "util/status.h"

namespace repro {

const char* CodeName(Code code) {
  switch (code) {
    case Code::kOk: return "OK";
    case Code::kNotFound: return "NOT_FOUND";
    case Code::kAlreadyExists: return "ALREADY_EXISTS";
    case Code::kAborted: return "ABORTED";
    case Code::kUnavailable: return "UNAVAILABLE";
    case Code::kTimedOut: return "TIMED_OUT";
    case Code::kInvalidArgument: return "INVALID_ARGUMENT";
    case Code::kFailedPrecondition: return "FAILED_PRECONDITION";
    case Code::kPermissionDenied: return "PERMISSION_DENIED";
    case Code::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case Code::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case Code::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace repro
