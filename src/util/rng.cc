#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace repro {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p_true) { return NextDouble() < p_true; }

double Rng::NextExp(double mean) {
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

Rng Rng::Split() { return Rng(NextU64()); }

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n) {
  assert(n > 0);
  cdf_.resize(n);
  double sum = 0;
  for (uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

uint64_t ZipfGenerator::Next(Rng& rng) const {
  const double u = rng.NextDouble();
  // Binary search for the first CDF entry >= u.
  uint64_t lo = 0, hi = n_ - 1;
  while (lo < hi) {
    const uint64_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

DiscreteDistribution::DiscreteDistribution(std::vector<double> weights) {
  double sum = 0;
  for (double w : weights) {
    assert(w >= 0);
    sum += w;
  }
  assert(sum > 0);
  cdf_.reserve(weights.size());
  double acc = 0;
  for (double w : weights) {
    acc += w / sum;
    cdf_.push_back(acc);
  }
  cdf_.back() = 1.0;
}

int DiscreteDistribution::Next(Rng& rng) const {
  const double u = rng.NextDouble();
  for (size_t i = 0; i < cdf_.size(); ++i) {
    if (u < cdf_[i]) return static_cast<int>(i);
  }
  return static_cast<int>(cdf_.size()) - 1;
}

}  // namespace repro
