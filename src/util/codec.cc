#include "util/codec.h"

#include <cstring>

namespace repro {

void Encoder::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void Encoder::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void Encoder::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  out_.append(s.data(), s.size());
}

bool Decoder::Ensure(size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

uint8_t Decoder::GetU8() {
  if (!Ensure(1)) return 0;
  return static_cast<uint8_t>(data_[pos_++]);
}

uint32_t Decoder::GetU32() {
  uint32_t v = 0;
  if (!Ensure(4)) return 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  }
  return v;
}

uint64_t Decoder::GetU64() {
  uint64_t v = 0;
  if (!Ensure(8)) return 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  }
  return v;
}

std::string Decoder::GetString() {
  const uint32_t len = GetU32();
  if (!Ensure(len)) return {};
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

}  // namespace repro
