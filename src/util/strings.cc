#include "util/strings.h"

#include <cstdio>

namespace repro {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(needed > 0 ? static_cast<size_t>(needed) : 0, '\0');
  if (needed > 0) {
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string_view> SplitPath(std::string_view path) {
  std::vector<std::string_view> parts;
  size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') ++i;
    size_t j = i;
    while (j < path.size() && path[j] != '/') ++j;
    if (j > i) parts.push_back(path.substr(i, j - i));
    i = j;
  }
  return parts;
}

std::string JoinPath(const std::vector<std::string_view>& parts) {
  if (parts.empty()) return "/";
  std::string out;
  for (const auto& p : parts) {
    out += '/';
    out += p;
  }
  return out;
}

std::pair<std::string, std::string> SplitParent(std::string_view path) {
  auto parts = SplitPath(path);
  if (parts.empty()) return {"/", ""};
  std::string base(parts.back());
  parts.pop_back();
  return {JoinPath(parts), base};
}

std::pair<std::string_view, std::string_view> SplitParentView(
    std::string_view path) {
  size_t end = path.size();
  while (end > 0 && path[end - 1] == '/') --end;
  if (end == 0) return {std::string_view("/"), std::string_view()};
  const size_t slash = path.rfind('/', end - 1);
  const size_t start = slash == std::string_view::npos ? 0 : slash + 1;
  std::string_view base = path.substr(start, end - start);
  size_t pend = start;
  while (pend > 0 && path[pend - 1] == '/') --pend;
  std::string_view parent =
      pend == 0 ? std::string_view("/") : path.substr(0, pend);
  return {parent, base};
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace repro
