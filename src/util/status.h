// Error handling for asynchronous protocol code.
//
// Exceptions do not propagate across event-loop turns, so every fallible
// asynchronous operation reports a Status (or an Expected<T>) through its
// completion callback instead. Codes mirror the failure classes the paper's
// systems distinguish: retryable coordinator loss / timeouts versus
// permanent application errors such as "file not found".
#pragma once

#include <string>
#include <utility>
#include <variant>

namespace repro {

enum class Code {
  kOk = 0,
  kNotFound,          // row / path component does not exist
  kAlreadyExists,     // insert of duplicate key, mkdir of existing dir
  kAborted,           // transaction aborted (lock timeout, deadlock break)
  kUnavailable,       // node down, network partition, TC take-over: retryable
  kTimedOut,          // TransactionInactiveTimeout and friends: retryable
  kInvalidArgument,   // malformed path, bad config
  kFailedPrecondition,// e.g. delete of non-empty directory
  kPermissionDenied,
  kResourceExhausted, // admission control / queue overflow
  kDeadlineExceeded,  // op's absolute deadline passed: fail fast, never retry
  kInternal,
};

const char* CodeName(Code code);

class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  // True for failures the paper's systems handle by retrying the whole
  // operation with backoff (HopsFS's transaction retry mechanism).
  bool retryable() const {
    return code_ == Code::kUnavailable || code_ == Code::kTimedOut ||
           code_ == Code::kAborted;
  }

  // True for failure classes that count against an availability SLO: the
  // service failed to serve the request (unreachable, overloaded, timed
  // out, gave up). Application outcomes the service *correctly* produced
  // — kNotFound, kAlreadyExists, permission and argument errors — are
  // successful service from the SLO's point of view.
  bool counts_against_availability() const {
    return code_ == Code::kUnavailable || code_ == Code::kTimedOut ||
           code_ == Code::kAborted || code_ == Code::kResourceExhausted ||
           code_ == Code::kDeadlineExceeded || code_ == Code::kInternal;
  }

  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Code code_ = Code::kOk;
  std::string message_;
};

inline Status OkStatus() { return Status(); }
inline Status NotFound(std::string m) { return {Code::kNotFound, std::move(m)}; }
inline Status AlreadyExists(std::string m) {
  return {Code::kAlreadyExists, std::move(m)};
}
inline Status Aborted(std::string m) { return {Code::kAborted, std::move(m)}; }
inline Status Unavailable(std::string m) {
  return {Code::kUnavailable, std::move(m)};
}
inline Status TimedOut(std::string m) { return {Code::kTimedOut, std::move(m)}; }
inline Status InvalidArgument(std::string m) {
  return {Code::kInvalidArgument, std::move(m)};
}
inline Status FailedPrecondition(std::string m) {
  return {Code::kFailedPrecondition, std::move(m)};
}
inline Status ResourceExhausted(std::string m) {
  return {Code::kResourceExhausted, std::move(m)};
}
inline Status DeadlineExceeded(std::string m) {
  return {Code::kDeadlineExceeded, std::move(m)};
}
inline Status Internal(std::string m) { return {Code::kInternal, std::move(m)}; }

// Minimal value-or-error type. We deliberately avoid std::expected (C++23)
// to stay within the C++20 toolchain.
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : state_(std::move(value)) {}       // NOLINT(google-explicit-constructor)
  Expected(Status status) : state_(std::move(status)) { // NOLINT(google-explicit-constructor)
  }

  bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& { return std::get<T>(state_); }
  T& value() & { return std::get<T>(state_); }
  T&& value() && { return std::get<T>(std::move(state_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  Status status() const {
    if (ok()) return OkStatus();
    return std::get<Status>(state_);
  }

 private:
  std::variant<T, Status> state_;
};

}  // namespace repro
