// Binary row encoding.
//
// NDB stores opaque byte strings; the file-system layers serialise their
// row structs (inodes, block records, leases, ...) with this little-endian
// length-prefixed codec. Keeping the storage engine schema-free mirrors the
// pluggable-storage design of HopsFS (§II-A1) and keeps the two layers
// decoupled.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace repro {

class Encoder {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutString(std::string_view s);
  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  std::string Take() { return std::move(out_); }
  const std::string& view() const { return out_; }

 private:
  std::string out_;
};

class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  uint8_t GetU8();
  uint32_t GetU32();
  uint64_t GetU64();
  int64_t GetI64() { return static_cast<int64_t>(GetU64()); }
  std::string GetString();
  bool GetBool() { return GetU8() != 0; }

  bool ok() const { return ok_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  bool Ensure(size_t n);

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace repro
