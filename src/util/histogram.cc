#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/strings.h"

namespace repro {
namespace {

// 32 sub-buckets per power of two gives <= ~3% relative bucket width.
constexpr int kSubBucketBits = 5;
constexpr int kSubBuckets = 1 << kSubBucketBits;
// Values up to 2^40 ns (~18 minutes) are representable exactly enough.
constexpr int kMaxBuckets = (40 - kSubBucketBits) * kSubBuckets + kSubBuckets;

}  // namespace

Histogram::Histogram() : buckets_(kMaxBuckets, 0) {}

int Histogram::BucketFor(Nanos value) {
  if (value < 0) value = 0;
  if (value < kSubBuckets) return static_cast<int>(value);
  const int msb = 63 - __builtin_clzll(static_cast<uint64_t>(value));
  const int shift = msb - kSubBucketBits;
  const int sub = static_cast<int>((value >> shift) - kSubBuckets);
  const int bucket = (msb - kSubBucketBits) * kSubBuckets + kSubBuckets + sub;
  return std::min(bucket, kMaxBuckets - 1);
}

Nanos Histogram::BucketUpperBound(int bucket) {
  if (bucket < kSubBuckets) return bucket;
  const int group = (bucket - kSubBuckets) / kSubBuckets;
  const int sub = (bucket - kSubBuckets) % kSubBuckets;
  const int shift = group;
  return (static_cast<Nanos>(kSubBuckets + sub + 1) << shift) - 1;
}

void Histogram::Record(Nanos value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[BucketFor(value)];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

double Histogram::MeanMillis() const {
  if (count_ == 0) return 0;
  return ToMillis(sum_) / static_cast<double>(count_);
}

Nanos Histogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: smallest recorded value whose cumulative count reaches
  // ceil(q*n), clamped to rank 1 — without the clamp q=0 hits the empty
  // rank-0 prefix and reports bucket 0 (i.e. 0 ns) instead of the min.
  const int64_t target = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(q * static_cast<double>(count_))));
  if (target <= 1) return min_;
  int64_t seen = 0;
  for (int i = 0; i < kMaxBuckets; ++i) {
    seen += buckets_[i];
    // Rank 1 is exactly min_ and rank n exactly max_; interior ranks
    // report the bucket's upper bound, clamped into [min_, max_] so a
    // boundary-straddling bucket never reports a value outside the
    // observed range.
    if (seen >= target) return std::clamp(BucketUpperBound(i), min_, max_);
  }
  return max_;
}

std::string Histogram::Summary() const {
  return StrFormat(
      "n=%lld mean=%.3fms p50=%.3fms p90=%.3fms p99=%.3fms max=%.3fms",
      static_cast<long long>(count_), MeanMillis(),
      ToMillis(Percentile(0.50)), ToMillis(Percentile(0.90)),
      ToMillis(Percentile(0.99)), ToMillis(max_));
}

}  // namespace repro
