// Open-addressing hash map for dense uint64-keyed protocol state.
//
// The NDB client keeps two per-node tables on its hottest path: txn id ->
// transaction state and op id -> pending operation. `std::unordered_map`
// allocates one node per insert, which shows up directly in the per-op
// allocation budgets (`BENCH_prof.json`). This map stores slots in one
// flat power-of-two array with linear probing and tombstone deletion, so
// steady-state insert/erase churn allocates nothing once the table has
// grown to the working-set size.
//
// Constraints (checked where cheap): keys are non-zero and below
// UINT64_MAX (both sentinels); the map is never iterated by protocol
// code, so probe order can never leak into simulation behaviour.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace repro::util {

template <typename V>
class FlatMap64 {
 public:
  FlatMap64() = default;

  V* Find(uint64_t key) {
    if (slots_.empty()) return nullptr;
    const size_t mask = slots_.size() - 1;
    for (size_t i = Hash(key) & mask;; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.key == key) return &s.value;
      if (s.key == kEmpty) return nullptr;
    }
  }

  // Inserts a default-constructed value for `key` (or finds the existing
  // one); the bool is true when the key was newly inserted.
  std::pair<V*, bool> Emplace(uint64_t key) {
    assert(key != kEmpty && key != kTombstone);
    if (NeedsGrow()) Grow();
    const size_t mask = slots_.size() - 1;
    size_t first_tomb = SIZE_MAX;
    for (size_t i = Hash(key) & mask;; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.key == key) return {&s.value, false};
      if (s.key == kTombstone) {
        if (first_tomb == SIZE_MAX) first_tomb = i;
        continue;
      }
      if (s.key == kEmpty) {
        size_t at = first_tomb != SIZE_MAX ? first_tomb : i;
        Slot& dst = slots_[at];
        if (dst.key == kTombstone) tombstones_ -= 1;
        dst.key = key;
        dst.value = V{};
        size_ += 1;
        return {&dst.value, true};
      }
    }
  }

  bool Erase(uint64_t key) {
    if (slots_.empty()) return false;
    const size_t mask = slots_.size() - 1;
    for (size_t i = Hash(key) & mask;; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.key == key) {
        s.key = kTombstone;
        s.value = V{};
        size_ -= 1;
        tombstones_ += 1;
        return true;
      }
      if (s.key == kEmpty) return false;
    }
  }

  void Clear() {
    for (Slot& s : slots_) {
      s.key = kEmpty;
      s.value = V{};
    }
    size_ = 0;
    tombstones_ = 0;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return slots_.size(); }

 private:
  static constexpr uint64_t kEmpty = 0;
  static constexpr uint64_t kTombstone = ~uint64_t{0};

  struct Slot {
    uint64_t key = kEmpty;
    V value{};
  };

  // splitmix64 finaliser: protocol ids are sequential, so identity
  // hashing would probe one dense run.
  static size_t Hash(uint64_t x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }

  bool NeedsGrow() const {
    // Grow at 3/4 occupancy counting tombstones (they lengthen probes).
    return slots_.empty() || (size_ + tombstones_ + 1) * 4 >= slots_.size() * 3;
  }

  void Grow() {
    size_t next = slots_.empty() ? 16 : slots_.size() * 2;
    // Pure tombstone pressure rehashes in place at the same capacity.
    if (!slots_.empty() && (size_ + 1) * 4 < slots_.size() * 3) {
      next = slots_.size();
    }
    std::vector<Slot> old;
    old.swap(slots_);
    slots_.resize(next);
    size_ = 0;
    tombstones_ = 0;
    const size_t mask = slots_.size() - 1;
    for (Slot& s : old) {
      if (s.key == kEmpty || s.key == kTombstone) continue;
      for (size_t i = Hash(s.key) & mask;; i = (i + 1) & mask) {
        Slot& dst = slots_[i];
        if (dst.key == kEmpty) {
          dst.key = s.key;
          dst.value = std::move(s.value);
          size_ += 1;
          break;
        }
      }
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
  size_t tombstones_ = 0;
};

}  // namespace repro::util
