// CPU and disk service resources.
//
// Server CPUs are modelled as pools of FIFO threads: submitting work picks
// the earliest-free thread, or a caller-chosen thread for partition-affine
// work (NDB pins each table partition to one LDM thread — the reason
// Read Backup spreads hot-partition reads across replicas, §IV-A). Pools
// track busy time so benchmarks can report per-thread-type utilisation
// (Fig. 11) and per-node CPU utilisation (Fig. 10).
//
// Disks are single FIFO servers with a seek constant plus a byte rate,
// enough to reproduce CephFS's journal-bound OSD disk curve (Fig. 12d).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/callback.h"
#include "sim/engine.h"
#include "util/time.h"

namespace repro {

// How one piece of submitted work was scheduled: when it started waiting,
// when a server (thread / disk) picked it up, and when it finishes.
// Returned so callers can emit exact queue-vs-service trace spans without
// the resource knowing anything about tracing.
struct Booking {
  Nanos submit = 0;   // submission time (queue-wait start)
  Nanos start = 0;    // service start (queue-wait end)
  Nanos finish = 0;   // service end == completion callback time
  Nanos queued() const { return start - submit; }
  Nanos service() const { return finish - start; }
};

class ThreadPool {
 public:
  ThreadPool(Simulation& sim, std::string name, int num_threads);

  // Runs `cost` of CPU work on the earliest-free thread; `done` fires when
  // the work completes (after queueing). `done` may be null.
  Booking Submit(Nanos cost, SmallFn done);

  // Runs work on a specific thread (partition affinity).
  Booking SubmitTo(int thread, Nanos cost, SmallFn done);

  // How far ahead of `now` the least-loaded thread is booked. Used for
  // overflow decisions (NDB's idle helper threads) and backpressure.
  Nanos Backlog() const;
  // Backlog of one specific thread.
  Nanos BacklogOf(int thread) const;

  int num_threads() const { return static_cast<int>(free_at_.size()); }
  const std::string& name() const { return name_; }

  // Busy nanoseconds accumulated since the last ResetStats, summed over
  // threads, clipped to work that has already been performed: service
  // booked into the future (free_at_ > now) is excluded until simulated
  // time actually passes through it. Telemetry scrapes this mid-run, so
  // charging whole bookings at submit time (the old behaviour) inflated
  // utilisation and the grey-slow detector's Δbusy/Δwork ratio whenever a
  // queue was deep.
  int64_t busy_ns() const;
  // Work items whose service has finished (not merely been submitted).
  int64_t completed() const;

  // Utilisation over a window that started at window_start and ends now.
  double Utilization(Nanos window_start) const;

  void ResetStats();

  // Grey-failure injection: multiplies the service time of every piece of
  // work submitted while the factor is > 1 (a CPU-stalled node that still
  // answers heartbeats, just slowly). Factor 1.0 restores normal speed.
  void set_slowdown(double factor) { slowdown_ = factor; }
  double slowdown() const { return slowdown_; }

 private:
  int EarliestFree() const;
  // Service time booked but not yet elapsed, summed over threads. Each
  // thread's future bookings are contiguous and end at free_at_[t] (gaps
  // only ever form in the past), so the outstanding portion is exactly
  // max(0, free_at_[t] - now).
  int64_t OutstandingNs() const;
  // Counts finish times that have passed into completed_ and drops them.
  void Reap() const;

  Simulation& sim_;
  std::string name_;
  std::vector<Nanos> free_at_;
  // Total service booked since the last ResetStats, including the
  // then-outstanding carryover; busy_ns() = booked_ns_ - OutstandingNs().
  int64_t booked_ns_ = 0;
  // Per-thread finish times of in-flight work, monotone within a thread;
  // reaped lazily on read (mutable: reads are logically const).
  mutable std::vector<std::deque<Nanos>> finishes_;
  mutable int64_t completed_ = 0;
  double slowdown_ = 1.0;
};

struct DiskStats {
  int64_t bytes_read = 0;
  int64_t bytes_written = 0;
  int64_t ops = 0;
  int64_t busy_ns = 0;
};

class Disk {
 public:
  // NVMe-ish defaults: 50 us access, ~1.2 GB/s write, ~2.4 GB/s read.
  Disk(Simulation& sim, std::string name,
       Nanos access_time = 50 * kMicrosecond,
       double read_bytes_per_sec = 2.4e9, double write_bytes_per_sec = 1.2e9);

  Booking Read(int64_t bytes, SmallFn done);
  Booking Write(int64_t bytes, SmallFn done);

  // stats().busy_ns is clipped to service already performed, like
  // ThreadPool::busy_ns(); bytes/ops count at submission.
  const DiskStats& stats() const;
  double Utilization(Nanos window_start) const;
  void ResetStats();
  Nanos Backlog() const;

  // Grey-failure injection: a slow disk (degraded media / noisy
  // neighbour). Multiplies the service time of subsequent I/Os.
  void set_slowdown(double factor) { slowdown_ = factor; }
  double slowdown() const { return slowdown_; }

 private:
  Booking SubmitIo(Nanos service, SmallFn done);
  int64_t AccruedBusyNs() const;

  Simulation& sim_;
  std::string name_;
  Nanos access_time_;
  double read_rate_;
  double write_rate_;
  Nanos free_at_ = 0;
  // Total service booked since the last ResetStats (incl. outstanding
  // carryover); the disk is a single FIFO server, so the un-elapsed part
  // is max(0, free_at_ - now). stats_.busy_ns is refreshed from these on
  // read (mutable: reads are logically const).
  int64_t booked_ns_ = 0;
  mutable DiskStats stats_;
  double slowdown_ = 1.0;
};

}  // namespace repro
