#include "sim/resources.h"

#include <algorithm>
#include <cassert>

#include "prof/profiler.h"

namespace repro {

ThreadPool::ThreadPool(Simulation& sim, std::string name, int num_threads)
    : sim_(sim), name_(std::move(name)) {
  assert(num_threads > 0);
  free_at_.assign(num_threads, 0);
  finishes_.resize(num_threads);
}

int ThreadPool::EarliestFree() const {
  int best = 0;
  for (int i = 1; i < num_threads(); ++i) {
    if (free_at_[i] < free_at_[best]) best = i;
  }
  return best;
}

Booking ThreadPool::Submit(Nanos cost, SmallFn done) {
  return SubmitTo(EarliestFree(), cost, std::move(done));
}

Booking ThreadPool::SubmitTo(int thread, Nanos cost, SmallFn done) {
  assert(thread >= 0 && thread < num_threads());
  assert(cost >= 0);
  if (slowdown_ != 1.0) {
    cost = static_cast<Nanos>(static_cast<double>(cost) * slowdown_);
  }
  prof::ChargeSimCpu(cost);  // attribute booked service to the active zone
  const Nanos start = std::max(free_at_[thread], sim_.now());
  free_at_[thread] = start + cost;
  booked_ns_ += cost;
  finishes_[thread].push_back(free_at_[thread]);
  if (done) {
    sim_.At(free_at_[thread], std::move(done));
  }
  return Booking{sim_.now(), start, start + cost};
}

int64_t ThreadPool::OutstandingNs() const {
  const Nanos now = sim_.now();
  int64_t out = 0;
  for (Nanos f : free_at_) out += std::max<Nanos>(0, f - now);
  return out;
}

void ThreadPool::Reap() const {
  const Nanos now = sim_.now();
  for (auto& q : finishes_) {
    while (!q.empty() && q.front() <= now) {
      q.pop_front();
      ++completed_;
    }
  }
}

int64_t ThreadPool::busy_ns() const { return booked_ns_ - OutstandingNs(); }

int64_t ThreadPool::completed() const {
  Reap();
  return completed_;
}

Nanos ThreadPool::Backlog() const {
  const Nanos now = sim_.now();
  Nanos best = free_at_[0];
  for (Nanos f : free_at_) best = std::min(best, f);
  return std::max<Nanos>(0, best - now);
}

Nanos ThreadPool::BacklogOf(int thread) const {
  return std::max<Nanos>(0, free_at_[thread] - sim_.now());
}

double ThreadPool::Utilization(Nanos window_start) const {
  // A zero-length window (window_start == now) yields 0, never NaN/inf —
  // the telemetry grey-slow detector reads this on scrape boundaries.
  const Nanos window = sim_.now() - window_start;
  if (window <= 0) return 0;
  return std::min(
      1.0, static_cast<double>(busy_ns()) /
               (static_cast<double>(window) * num_threads()));
}

void ThreadPool::ResetStats() {
  // Work still in flight carries over: its not-yet-elapsed service accrues
  // into the new window as simulated time passes through it, and its
  // completion is counted when it lands.
  booked_ns_ = OutstandingNs();
  const Nanos now = sim_.now();
  for (auto& q : finishes_) {
    while (!q.empty() && q.front() <= now) q.pop_front();
  }
  completed_ = 0;
}

Disk::Disk(Simulation& sim, std::string name, Nanos access_time,
           double read_bytes_per_sec, double write_bytes_per_sec)
    : sim_(sim), name_(std::move(name)), access_time_(access_time),
      read_rate_(read_bytes_per_sec), write_rate_(write_bytes_per_sec) {}

Booking Disk::SubmitIo(Nanos service, SmallFn done) {
  if (slowdown_ != 1.0) {
    service = static_cast<Nanos>(static_cast<double>(service) * slowdown_);
  }
  const Nanos start = std::max(free_at_, sim_.now());
  free_at_ = start + service;
  booked_ns_ += service;
  ++stats_.ops;
  if (done) sim_.At(free_at_, std::move(done));
  return Booking{sim_.now(), start, start + service};
}

int64_t Disk::AccruedBusyNs() const {
  return booked_ns_ - std::max<Nanos>(0, free_at_ - sim_.now());
}

const DiskStats& Disk::stats() const {
  stats_.busy_ns = AccruedBusyNs();
  return stats_;
}

void Disk::ResetStats() {
  stats_ = DiskStats{};
  // In-flight service carries into the new window (see ThreadPool).
  booked_ns_ = std::max<Nanos>(0, free_at_ - sim_.now());
}

Booking Disk::Read(int64_t bytes, SmallFn done) {
  prof::ChargeSimDisk(bytes);
  stats_.bytes_read += bytes;
  const Nanos service =
      access_time_ +
      static_cast<Nanos>(static_cast<double>(bytes) / read_rate_ * 1e9);
  return SubmitIo(service, std::move(done));
}

Booking Disk::Write(int64_t bytes, SmallFn done) {
  prof::ChargeSimDisk(bytes);
  stats_.bytes_written += bytes;
  const Nanos service =
      access_time_ +
      static_cast<Nanos>(static_cast<double>(bytes) / write_rate_ * 1e9);
  return SubmitIo(service, std::move(done));
}

double Disk::Utilization(Nanos window_start) const {
  // Zero-length window -> 0, never NaN/inf (see ThreadPool::Utilization).
  const Nanos window = sim_.now() - window_start;
  if (window <= 0) return 0;
  return std::min(1.0,
                  static_cast<double>(AccruedBusyNs()) /
                      static_cast<double>(window));
}

Nanos Disk::Backlog() const {
  return std::max<Nanos>(0, free_at_ - sim_.now());
}

}  // namespace repro
