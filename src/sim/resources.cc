#include "sim/resources.h"

#include <algorithm>
#include <cassert>

namespace repro {

ThreadPool::ThreadPool(Simulation& sim, std::string name, int num_threads)
    : sim_(sim), name_(std::move(name)) {
  assert(num_threads > 0);
  free_at_.assign(num_threads, 0);
}

int ThreadPool::EarliestFree() const {
  int best = 0;
  for (int i = 1; i < num_threads(); ++i) {
    if (free_at_[i] < free_at_[best]) best = i;
  }
  return best;
}

Booking ThreadPool::Submit(Nanos cost, std::function<void()> done) {
  return SubmitTo(EarliestFree(), cost, std::move(done));
}

Booking ThreadPool::SubmitTo(int thread, Nanos cost,
                             std::function<void()> done) {
  assert(thread >= 0 && thread < num_threads());
  assert(cost >= 0);
  if (slowdown_ != 1.0) {
    cost = static_cast<Nanos>(static_cast<double>(cost) * slowdown_);
  }
  const Nanos start = std::max(free_at_[thread], sim_.now());
  free_at_[thread] = start + cost;
  busy_ns_ += cost;
  ++completed_;
  if (done) {
    sim_.At(free_at_[thread], std::move(done));
  }
  return Booking{sim_.now(), start, start + cost};
}

Nanos ThreadPool::Backlog() const {
  const Nanos now = sim_.now();
  Nanos best = free_at_[0];
  for (Nanos f : free_at_) best = std::min(best, f);
  return std::max<Nanos>(0, best - now);
}

Nanos ThreadPool::BacklogOf(int thread) const {
  return std::max<Nanos>(0, free_at_[thread] - sim_.now());
}

double ThreadPool::Utilization(Nanos window_start) const {
  const Nanos window = sim_.now() - window_start;
  if (window <= 0) return 0;
  return std::min(
      1.0, static_cast<double>(busy_ns_) /
               (static_cast<double>(window) * num_threads()));
}

void ThreadPool::ResetStats() {
  busy_ns_ = 0;
  completed_ = 0;
}

Disk::Disk(Simulation& sim, std::string name, Nanos access_time,
           double read_bytes_per_sec, double write_bytes_per_sec)
    : sim_(sim), name_(std::move(name)), access_time_(access_time),
      read_rate_(read_bytes_per_sec), write_rate_(write_bytes_per_sec) {}

Booking Disk::SubmitIo(Nanos service, std::function<void()> done) {
  if (slowdown_ != 1.0) {
    service = static_cast<Nanos>(static_cast<double>(service) * slowdown_);
  }
  const Nanos start = std::max(free_at_, sim_.now());
  free_at_ = start + service;
  stats_.busy_ns += service;
  ++stats_.ops;
  if (done) sim_.At(free_at_, std::move(done));
  return Booking{sim_.now(), start, start + service};
}

Booking Disk::Read(int64_t bytes, std::function<void()> done) {
  stats_.bytes_read += bytes;
  const Nanos service =
      access_time_ +
      static_cast<Nanos>(static_cast<double>(bytes) / read_rate_ * 1e9);
  return SubmitIo(service, std::move(done));
}

Booking Disk::Write(int64_t bytes, std::function<void()> done) {
  stats_.bytes_written += bytes;
  const Nanos service =
      access_time_ +
      static_cast<Nanos>(static_cast<double>(bytes) / write_rate_ * 1e9);
  return SubmitIo(service, std::move(done));
}

double Disk::Utilization(Nanos window_start) const {
  const Nanos window = sim_.now() - window_start;
  if (window <= 0) return 0;
  return std::min(1.0,
                  static_cast<double>(stats_.busy_ns) /
                      static_cast<double>(window));
}

Nanos Disk::Backlog() const {
  return std::max<Nanos>(0, free_at_ - sim_.now());
}

}  // namespace repro
