// Discrete-event simulation engine.
//
// The engine substitutes for the paper's GCP testbed (see DESIGN.md §2):
// every protocol in the repository — the NDB commit protocol, heartbeats,
// leader election, block re-replication, CephFS journaling — runs as real
// message-passing code whose delays come from this engine rather than from
// a datacenter network. Events at equal timestamps are ordered by insertion
// sequence, so runs are bit-for-bit reproducible from the RNG seed.
//
// Scheduler hot path (DESIGN.md §2.1): pending events live in a slab pool
// and are ordered by a 4-level hierarchical timer wheel whose expired
// slots feed a small flat binary heap (the "imminent" heap). Periodic
// timers — the O(hosts) heartbeats, GCP ticks, redo flushes and scrapes
// that dominate large runs — insert in O(1) and reschedule by handle, so
// a tick performs no allocation and never copies its closure. Dispatch
// order is the exact global (time, insertion-seq) order the old binary
// heap produced; tests/sim_test.cc asserts equivalence against the frozen
// pre-wheel engine in sim/legacy_engine.h.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/callback.h"
#include "trace/trace.h"
#include "util/rng.h"
#include "util/time.h"

namespace repro {

class Simulation {
 public:
  explicit Simulation(uint64_t seed = 1);
  ~Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Nanos now() const { return now_; }
  Rng& rng() { return rng_; }
  uint64_t events_processed() const { return events_processed_; }

  // Per-run distributed tracer, clocked by simulated time. Sampling is
  // off by default (sample_every == 0); benches and the chaos harness
  // turn it on. A deterministic counter — never the sim RNG — decides
  // sampling, so enabling traces cannot perturb the run being traced.
  trace::Tracer& tracer() { return tracer_; }
  const trace::Tracer& tracer() const { return tracer_; }

  // Schedules fn at an absolute simulated time. Scheduling into the past
  // is a hard error in every build type: it would silently rewind now()
  // at dispatch and corrupt every Booking downstream, so the engine logs
  // and aborts instead (see SchedulePanic).
  void At(Nanos time, SmallFn fn);

  // Schedules fn after a relative delay (>= 0; negative delays abort).
  void After(Nanos delay, SmallFn fn);

  // Runs fn every `interval`, starting after one interval, until the
  // returned handle is cancelled or the simulation ends. Used for
  // heartbeats, leader-election rounds, and checkpoint ticks.
  // The handle owns the periodic subscription: dropping or cancelling it
  // stops the timer (in-flight firings see the cleared flag and no-op).
  // The callback is moved once into the pooled event, and the event is
  // rescheduled in place by handle — a tick copies nothing.
  class PeriodicHandle {
   public:
    void Cancel() {
      if (alive_) *alive_ = false;
      alive_.reset();
    }

   private:
    friend class Simulation;
    // Shared with the engine's periodic record (which holds exactly one
    // strong reference): *alive_ == false means cancelled, and a
    // use_count of 1 means every handle copy was dropped — in which case
    // the timer fires at most once more and stops, matching the
    // pre-wheel engine's weak-tick semantics exactly.
    std::shared_ptr<bool> alive_;
  };
  PeriodicHandle Every(Nanos interval, SmallFn fn);

  // Drains the event queue completely.
  void Run();

  // Runs events with time <= t, then sets now() = t.
  void RunUntil(Nanos t);
  void RunFor(Nanos d) { RunUntil(now_ + d); }

  // Dispatches exactly one event (the earliest pending). Returns false if
  // the queue was empty. Lets callers run the engine until an external
  // condition holds — e.g. "until this reply arrives or a scheduled
  // deadline event fires" — without polling in fixed time steps.
  bool RunOne();

  bool Empty() const { return pending_ == 0; }
  uint64_t pending() const { return pending_; }

 private:
  static constexpr uint32_t kNil = 0xffffffffu;

  // ---- Timer wheel geometry -------------------------------------------
  // Level 0 has 16384 slots of 2^16 ns (~65.5 us) — one revolution covers
  // ~1.07 s, so every timer up to heartbeat scale (even a full 100 ms-class
  // reschedule from anywhere in the revolution) inserts in O(1) and is
  // touched exactly once more at expiry, and even 10k hosts spread over a
  // 100 ms interval put only a handful of events in each slot (small
  // imminent heap). Levels 1–3 have 64 slots each of 2^30/2^36/2^42 ns;
  // an upper-level slot width equals the full horizon of the level below,
  // so expiring one upper slot redistributes its events exactly one level
  // down. Events beyond level 3's ~78 h horizon wait in a far-future
  // heap. Each level only ever holds events of its *current* revolution
  // (Insert places anything past the revolution end one level up), which
  // keeps "next occupied slot" scans exact and lets the cursor jump over
  // empty regions via per-level occupancy bitmaps.
  static constexpr int kL0Bits = 14;                   // 16384 slots
  static constexpr int kLnBits = 6;                    // 64 slots
  static constexpr int kLevels = 4;
  static constexpr int kShift[kLevels] = {16, 30, 36, 42};
  static constexpr int kSlots[kLevels] = {1 << kL0Bits, 1 << kLnBits,
                                          1 << kLnBits, 1 << kLnBits};
  // Horizon of level l == slot width of level l+1 == 1 << kHorizonShift[l].
  static constexpr int kHorizonShift[kLevels] = {30, 36, 42, 48};

  // 128-byte aligned: exactly two cache lines — the scheduling head in the
  // first, the callback in the second. Periodic state (interval, liveness)
  // lives in the event itself: a tick touches no record besides the event
  // it is already dispatching plus the handle's shared control block.
  struct alignas(128) Event {
    Nanos time = 0;
    uint64_t seq = 0;
    uint32_t next = kNil;         // wheel-slot chain / free-list link
    uint32_t periodic = 0;        // 1 if a periodic tick
    Nanos interval = 0;           // periodic reschedule interval
    std::shared_ptr<bool> alive;  // periodic liveness; see PeriodicHandle
    // Pinned to the second cache line so the dispatch prefetcher can pull
    // it in ahead of the call.
    alignas(64) SmallFn fn;       // the callback, fired in place
  };
  static_assert(sizeof(SmallFn) == 64, "event layout assumes 64B SmallFn");
  static_assert(sizeof(Event) == 128, "Event must stay two cache lines");

  // Flat-heap entry: all ordering decisions compare 16 bytes, never the
  // event body.
  struct HeapEntry {
    Nanos time;
    uint64_t seq;
    uint32_t idx;
    bool operator<(const HeapEntry& o) const {
      return time != o.time ? time < o.time : seq < o.seq;
    }
  };

  [[noreturn]] void SchedulePanic(const char* what, Nanos time) const;

  uint32_t AllocEvent();
  void FreeEvent(uint32_t idx);
  Event& Ev(uint32_t idx) { return slabs_[idx >> kSlabBits][idx & kSlabMask]; }

  void Insert(HeapEntry h);
  // First occupied slot index >= `from` at `level`, or -1 (bitmap scan).
  int FindOccupied(int level, int from) const;
  void ImminentPush(HeapEntry e);
  HeapEntry ImminentPop();

  // Global minimum across the sorted run and the spill heap, or nullptr
  // when both are drained (callers then AdvanceWheel for the next batch).
  const HeapEntry* PeekImminent() const;
  uint32_t PopImminent();

  // Moves the chain of the next occupied wheel slot into the imminent
  // heap, jumping over empty regions. Returns false if wheel + far heap
  // are empty.
  bool AdvanceWheel();
  void MigrateFar();

  void Dispatch(uint32_t idx);
  void FirePeriodic(uint32_t event_idx);

  Nanos now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  uint64_t pending_ = 0;  // imminent + wheel + far

  // ---- Event pool ------------------------------------------------------
  static constexpr int kSlabBits = 12;  // 4096 events per slab
  static constexpr uint32_t kSlabMask = (1u << kSlabBits) - 1;
  std::vector<std::unique_ptr<Event[]>> slabs_;
  uint32_t free_events_ = kNil;

  // ---- Wheel state -----------------------------------------------------
  // All wheel events have time >= wheel_time_ (a multiple of the level-0
  // slot width); everything earlier has been moved to the dispatch run or
  // the spill heap. Slots are intrusive LIFO chains through Event::next:
  // an insert touches only the slot-head word and the event's own head
  // line (still hot from the caller writing time/seq), which beats any
  // out-of-line bucket layout by a full cache line per insert.
  Nanos wheel_time_ = 0;
  uint64_t wheel_count_ = 0;
  std::vector<uint32_t> slot_head_[kLevels];
  uint64_t occupancy_[kLevels][1 << (kL0Bits - 6)];  // bitmap per level

  // Expired events (times < wheel_time_) waiting to dispatch. The common
  // case is the sorted run: one expired level-0 slot, sorted once at drain
  // time and consumed front-to-back — no per-event heap maintenance, and
  // the known next event is prefetched while the current callback runs.
  // Events scheduled *into the already-expired window* (zero/short delays
  // from inside a running callback) spill into a tiny binary heap that is
  // merged entry-by-entry at dispatch; it is empty in steady state.
  std::vector<HeapEntry> run_;       // sorted batch from the last slot drain
  size_t run_pos_ = 0;
  std::vector<HeapEntry> imminent_;  // spill heap, times < wheel_time_
  std::vector<HeapEntry> far_;       // binary min-heap, beyond L3 horizon

  Rng rng_;
  trace::Tracer tracer_{[this] { return now_; }};
};

}  // namespace repro
