// Discrete-event simulation engine.
//
// The engine substitutes for the paper's GCP testbed (see DESIGN.md §2):
// every protocol in the repository — the NDB commit protocol, heartbeats,
// leader election, block re-replication, CephFS journaling — runs as real
// message-passing code whose delays come from this engine rather than from
// a datacenter network. Events at equal timestamps are ordered by insertion
// sequence, so runs are bit-for-bit reproducible from the RNG seed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "trace/trace.h"
#include "util/rng.h"
#include "util/time.h"

namespace repro {

class Simulation {
 public:
  explicit Simulation(uint64_t seed = 1);

  Nanos now() const { return now_; }
  Rng& rng() { return rng_; }
  uint64_t events_processed() const { return events_processed_; }

  // Per-run distributed tracer, clocked by simulated time. Sampling is
  // off by default (sample_every == 0); benches and the chaos harness
  // turn it on. A deterministic counter — never the sim RNG — decides
  // sampling, so enabling traces cannot perturb the run being traced.
  trace::Tracer& tracer() { return tracer_; }
  const trace::Tracer& tracer() const { return tracer_; }

  // Schedules fn at an absolute simulated time (>= now).
  void At(Nanos time, std::function<void()> fn);

  // Schedules fn after a relative delay (>= 0).
  void After(Nanos delay, std::function<void()> fn);

  // Runs fn every `interval`, starting after one interval, until the
  // returned handle is cancelled or the simulation ends. Used for
  // heartbeats, leader-election rounds, and checkpoint ticks.
  // The handle owns the periodic subscription: dropping or cancelling it
  // stops the timer (in-flight firings see the cleared flag and no-op).
  class PeriodicHandle {
   public:
    void Cancel() {
      if (alive_) *alive_ = false;
      tick_.reset();
    }

   private:
    friend class Simulation;
    std::shared_ptr<bool> alive_;
    std::shared_ptr<std::function<void()>> tick_;
  };
  PeriodicHandle Every(Nanos interval, std::function<void()> fn);

  // Drains the event queue completely.
  void Run();

  // Runs events with time <= t, then sets now() = t.
  void RunUntil(Nanos t);
  void RunFor(Nanos d) { RunUntil(now_ + d); }

  // Dispatches exactly one event (the earliest pending). Returns false if
  // the queue was empty. Lets callers run the engine until an external
  // condition holds — e.g. "until this reply arrives or a scheduled
  // deadline event fires" — without polling in fixed time steps.
  bool RunOne();

  bool Empty() const { return queue_.empty(); }

 private:
  struct Event {
    Nanos time;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void Dispatch(Event& e);

  Nanos now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Rng rng_;
  trace::Tracer tracer_{[this] { return now_; }};
};

}  // namespace repro
