// Small-buffer-optimised callable slot for simulation events.
//
// The engine stores every scheduled callback in a `SmallFn`: a move-only,
// type-erased `void()` callable with 56 bytes of inline storage. Closures
// that fit (every heartbeat tick, completion callback, and network-delivery
// wrapper in this repository) are stored in place, so the steady-state
// event loop performs no heap allocation at all — the reason `At`/`After`/
// `Every` can run millions of events per second. Oversized or
// throwing-move callables fall back to a single heap allocation, which is
// exactly what `std::function` would have done for anything beyond its
// (much smaller) internal buffer.
//
// `SmallCall<R(Args...)>` is the general form: the protocol layers use it
// for their completion callbacks (`ReadCb`, `WriteCb`, the TC commit and
// complete chains) so a small capture costs no allocation where a
// `std::function` of the same closure would heap-allocate past its
// 16-byte buffer. `SmallFn` is an alias for `SmallCall<void()>`.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace repro {

template <typename Sig>
class SmallCall;  // undefined; specialised for function signatures

template <typename R, typename... Args>
class SmallCall<R(Args...)> {
 public:
  // Sized so the network layer's per-message delivery wrapper (this + two
  // host ids + byte count + a moved-in callable payload) stays inline.
  static constexpr std::size_t kInlineBytes = 56;

  SmallCall() noexcept = default;
  SmallCall(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, SmallCall> &&
                                        !std::is_same_v<D, std::nullptr_t> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  SmallCall(F&& f) {  // NOLINT(runtime/explicit): intentional implicit wrap
    if constexpr (FitsInline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      *PtrSlot() = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  SmallCall(SmallCall&& other) noexcept { MoveFrom(other); }
  SmallCall& operator=(SmallCall&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  SmallCall(const SmallCall&) = delete;
  SmallCall& operator=(const SmallCall&) = delete;
  ~SmallCall() { Reset(); }

  R operator()(Args... args) {
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }
  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    R (*invoke)(void* storage, Args&&... args);
    // Move-construct the callable into dst's storage from src's storage,
    // then destroy the source (a "relocate": move + destroy in one step).
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename T>
  static constexpr bool FitsInline() {
    // Storage is pointer-aligned (keeping SmallCall at exactly 64 bytes);
    // over-aligned callables fall back to the heap path.
    return sizeof(T) <= kInlineBytes && alignof(T) <= alignof(void*) &&
           std::is_nothrow_move_constructible_v<T>;
  }

  void** PtrSlot() noexcept { return reinterpret_cast<void**>(storage_); }

  template <typename T>
  static constexpr Ops kInlineOps = {
      /*invoke=*/
      [](void* s, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<T*>(s)))(
            std::forward<Args>(args)...);
      },
      /*relocate=*/
      [](void* dst, void* src) noexcept {
        T* from = std::launder(reinterpret_cast<T*>(src));
        ::new (dst) T(std::move(*from));
        from->~T();
      },
      /*destroy=*/
      [](void* s) noexcept { std::launder(reinterpret_cast<T*>(s))->~T(); },
  };

  template <typename T>
  static constexpr Ops kHeapOps = {
      /*invoke=*/
      [](void* s, Args&&... args) -> R {
        return (**reinterpret_cast<T**>(s))(std::forward<Args>(args)...);
      },
      /*relocate=*/
      [](void* dst, void* src) noexcept {
        *reinterpret_cast<T**>(dst) = *reinterpret_cast<T**>(src);
      },
      /*destroy=*/[](void* s) noexcept { delete *reinterpret_cast<T**>(s); },
  };

  void MoveFrom(SmallCall& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(void*) unsigned char storage_[kInlineBytes];
};

using SmallFn = SmallCall<void()>;

}  // namespace repro
