// Small-buffer-optimised callable slot for simulation events.
//
// The engine stores every scheduled callback in a `SmallFn`: a move-only,
// type-erased `void()` callable with 56 bytes of inline storage. Closures
// that fit (every heartbeat tick, completion callback, and network-delivery
// wrapper in this repository) are stored in place, so the steady-state
// event loop performs no heap allocation at all — the reason `At`/`After`/
// `Every` can run millions of events per second. Oversized or
// throwing-move callables fall back to a single heap allocation, which is
// exactly what `std::function` would have done for anything beyond its
// (much smaller) internal buffer.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace repro {

class SmallFn {
 public:
  // Sized so the network layer's per-message delivery wrapper (this + two
  // host ids + byte count + a std::function payload) stays inline.
  static constexpr std::size_t kInlineBytes = 56;

  SmallFn() noexcept = default;
  SmallFn(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, SmallFn> &&
                                        !std::is_same_v<D, std::nullptr_t> &&
                                        std::is_invocable_r_v<void, D&>>>
  SmallFn(F&& f) {  // NOLINT(runtime/explicit): intentional implicit wrap
    if constexpr (FitsInline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      *PtrSlot() = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  SmallFn(SmallFn&& other) noexcept { MoveFrom(other); }
  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { Reset(); }

  void operator()() { ops_->invoke(storage_); }
  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-construct the callable into dst's storage from src's storage,
    // then destroy the source (a "relocate": move + destroy in one step).
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename T>
  static constexpr bool FitsInline() {
    // Storage is pointer-aligned (keeping SmallFn at exactly 64 bytes);
    // over-aligned callables fall back to the heap path.
    return sizeof(T) <= kInlineBytes && alignof(T) <= alignof(void*) &&
           std::is_nothrow_move_constructible_v<T>;
  }

  void** PtrSlot() noexcept { return reinterpret_cast<void**>(storage_); }

  template <typename T>
  static constexpr Ops kInlineOps = {
      /*invoke=*/[](void* s) { (*std::launder(reinterpret_cast<T*>(s)))(); },
      /*relocate=*/
      [](void* dst, void* src) noexcept {
        T* from = std::launder(reinterpret_cast<T*>(src));
        ::new (dst) T(std::move(*from));
        from->~T();
      },
      /*destroy=*/
      [](void* s) noexcept { std::launder(reinterpret_cast<T*>(s))->~T(); },
  };

  template <typename T>
  static constexpr Ops kHeapOps = {
      /*invoke=*/[](void* s) { (**reinterpret_cast<T**>(s))(); },
      /*relocate=*/
      [](void* dst, void* src) noexcept {
        *reinterpret_cast<T**>(dst) = *reinterpret_cast<T**>(src);
      },
      /*destroy=*/[](void* s) noexcept { delete *reinterpret_cast<T**>(s); },
  };

  void MoveFrom(SmallFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(void*) unsigned char storage_[kInlineBytes];
};

}  // namespace repro
