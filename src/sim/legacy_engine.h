// Frozen copy of the pre-timer-wheel event engine.
//
// This is the binary-heap scheduler the repository used before the
// hierarchical timer wheel landed (DESIGN.md §2.1): a
// `std::priority_queue` of heap-allocated `std::function` events, with
// `Every()` re-copying its closure into the queue on every tick. It is
// kept VERBATIM — bugs and all, minus the global logger hookup — for two
// consumers only:
//
//   * tests/sim_test.cc runs randomized At/After/Every interleavings on
//     this engine and on `Simulation` and asserts the dispatch orders are
//     identical (the wheel must be observationally equivalent), and
//   * bench/bench_sim_engine.cc uses it as the baseline the committed
//     events/sec speedup in BENCH_sim_engine.json is measured against.
//
// Do not "fix" or modernise this file; it is the measurement yardstick.
// Production code must use sim/engine.h.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/time.h"

namespace repro {

class LegacySimulation {
 public:
  explicit LegacySimulation(uint64_t seed = 1) { (void)seed; }

  Nanos now() const { return now_; }
  uint64_t events_processed() const { return events_processed_; }

  void At(Nanos time, std::function<void()> fn) {
    assert(time >= now_);
    queue_.push(Event{time, next_seq_++, std::move(fn)});
  }

  void After(Nanos delay, std::function<void()> fn) {
    assert(delay >= 0);
    At(now_ + delay, std::move(fn));
  }

  class PeriodicHandle {
   public:
    void Cancel() {
      if (alive_) *alive_ = false;
      tick_.reset();
    }

   private:
    friend class LegacySimulation;
    std::shared_ptr<bool> alive_;
    std::shared_ptr<std::function<void()>> tick_;
  };

  PeriodicHandle Every(Nanos interval, std::function<void()> fn) {
    auto alive = std::make_shared<bool>(true);
    auto tick = std::make_shared<std::function<void()>>();
    std::weak_ptr<std::function<void()>> weak_tick = tick;
    *tick = [this, interval, alive, weak_tick, fn = std::move(fn)] {
      if (!*alive) return;
      fn();
      auto tick = weak_tick.lock();
      if (*alive && tick) After(interval, *tick);
    };
    After(interval, *tick);
    PeriodicHandle handle;
    handle.alive_ = std::move(alive);
    handle.tick_ = std::move(tick);
    return handle;
  }

  void Run() {
    while (!queue_.empty()) {
      Event e = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      Dispatch(e);
    }
  }

  bool RunOne() {
    if (queue_.empty()) return false;
    Event e = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    Dispatch(e);
    return true;
  }

  void RunUntil(Nanos t) {
    while (!queue_.empty() && queue_.top().time <= t) {
      Event e = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      Dispatch(e);
    }
    if (t > now_) now_ = t;
  }
  void RunFor(Nanos d) { RunUntil(now_ + d); }

  bool Empty() const { return queue_.empty(); }

 private:
  struct Event {
    Nanos time;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void Dispatch(Event& e) {
    now_ = e.time;
    ++events_processed_;
    e.fn();
  }

  Nanos now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace repro
