// Cloud topology: a region of availability zones containing hosts.
//
// Latencies default to the paper's Table I measurements for GCP us-west1
// (0.247–0.251 ms intra-AZ RTT, 0.360–0.399 ms inter-AZ RTT). Hosts can be
// marked down (machine failure) and AZs can be partitioned from each other
// (the split-brain scenarios of §IV-A2 / §V-F).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/time.h"

namespace repro {

using AzId = int;
using HostId = int;

constexpr AzId kNoAz = -1;

struct AzLatencyTable {
  // One-way latencies in nanoseconds, indexed [from_az][to_az]. The
  // diagonal is the intra-AZ latency. Derived from Table I RTTs.
  std::vector<std::vector<Nanos>> one_way;
  Nanos same_host = 25 * kMicrosecond;

  // The paper's measured us-west1 matrix (a=0, b=1, c=2).
  static AzLatencyTable UsWest1();
  // A uniform synthetic table with n AZs.
  static AzLatencyTable Uniform(int num_azs, Nanos intra_one_way,
                                Nanos inter_one_way);
};

class Topology {
 public:
  Topology(int num_azs, AzLatencyTable latency);

  // Adds a host to an AZ and returns its id.
  HostId AddHost(AzId az, std::string name);

  int num_azs() const { return num_azs_; }
  int num_hosts() const { return static_cast<int>(hosts_.size()); }
  AzId az_of(HostId h) const { return hosts_[h].az; }
  const std::string& name_of(HostId h) const { return hosts_[h].name; }

  bool HostUp(HostId h) const { return hosts_[h].up; }
  void SetHostUp(HostId h, bool up) { hosts_[h].up = up; }

  // Fails / restores a whole AZ at once.
  void SetAzUp(AzId az, bool up);
  bool AzUp(AzId az) const;

  // Installs a network partition between two AZs (both directions).
  // Hosts in partitioned AZs stay up but cannot exchange messages.
  void PartitionAzs(AzId a, AzId b);
  // Asymmetric (grey) partition: cuts only the from -> to direction, so
  // `to` can still talk to `from` but never hears back — the classic
  // half-open link failure detectors struggle with.
  void PartitionAzsOneWay(AzId from, AzId to);
  void HealPartition(AzId a, AzId b);
  void HealAllPartitions();
  bool Partitioned(AzId a, AzId b) const { return az_partitioned_[a][b]; }

  // Latency inflation (fault injection): multiplies the one-way latency of
  // the directed a -> b AZ pair. Factor 1.0 restores normal latency.
  void SetLatencyFactor(AzId a, AzId b, double factor);
  void SetAllLatencyFactor(double factor);
  void ClearLatencyFactors() { SetAllLatencyFactor(1.0); }
  double latency_factor(AzId a, AzId b) const {
    return latency_factor_[a][b];
  }

  // True if a message can currently travel from a to b.
  bool Reachable(HostId a, HostId b) const;

  // One-way propagation latency. `rng` adds a small multiplicative jitter
  // when jitter_fraction > 0 (the default models cloud network variance).
  Nanos Latency(HostId a, HostId b, Rng& rng) const;

  void set_jitter_fraction(double f) { jitter_fraction_ = f; }

 private:
  struct Host {
    AzId az;
    std::string name;
    bool up = true;
  };

  int num_azs_;
  AzLatencyTable latency_;
  std::vector<Host> hosts_;
  std::vector<bool> az_up_;
  // az_partitioned_[a][b] = true when the a -> b direction is cut.
  std::vector<std::vector<bool>> az_partitioned_;
  // Multiplicative latency inflation per directed AZ pair (1.0 = normal).
  std::vector<std::vector<double>> latency_factor_;
  double jitter_fraction_ = 0.05;
};

}  // namespace repro
