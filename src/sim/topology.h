// Cloud topology: a region of availability zones containing hosts.
//
// Latencies default to the paper's Table I measurements for GCP us-west1
// (0.247–0.251 ms intra-AZ RTT, 0.360–0.399 ms inter-AZ RTT). Hosts can be
// marked down (machine failure) and AZs can be partitioned from each other
// (the split-brain scenarios of §IV-A2 / §V-F).
//
// Layout: everything on the message path is a flat, index-addressed array —
// per-host columns (az, up) and per-AZ-pair tables stored row-major as
// `a * num_azs + b`. Reachable()/Latency() run once per simulated message,
// so they touch two host columns and one precomputed latency cell; no
// nested vectors, no strings, no pointer hops.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/time.h"

namespace repro {

using AzId = int;
using HostId = int;

constexpr AzId kNoAz = -1;

struct AzLatencyTable {
  // One-way latencies in nanoseconds, indexed [from_az][to_az]. The
  // diagonal is the intra-AZ latency. Derived from Table I RTTs.
  std::vector<std::vector<Nanos>> one_way;
  Nanos same_host = 25 * kMicrosecond;

  // The paper's measured us-west1 matrix (a=0, b=1, c=2).
  static AzLatencyTable UsWest1();
  // A uniform synthetic table with n AZs.
  static AzLatencyTable Uniform(int num_azs, Nanos intra_one_way,
                                Nanos inter_one_way);
};

class Topology {
 public:
  Topology(int num_azs, AzLatencyTable latency);

  // Adds a host to an AZ and returns its id.
  HostId AddHost(AzId az, std::string name);

  int num_azs() const { return num_azs_; }
  int num_hosts() const { return static_cast<int>(host_az_.size()); }
  AzId az_of(HostId h) const { return host_az_[h]; }
  const std::string& name_of(HostId h) const { return host_name_[h]; }

  bool HostUp(HostId h) const { return host_up_[h] != 0; }
  void SetHostUp(HostId h, bool up) { host_up_[h] = up ? 1 : 0; }

  // Fails / restores a whole AZ at once.
  void SetAzUp(AzId az, bool up);
  bool AzUp(AzId az) const;

  // Installs a network partition between two AZs (both directions).
  // Hosts in partitioned AZs stay up but cannot exchange messages.
  void PartitionAzs(AzId a, AzId b);
  // Asymmetric (grey) partition: cuts only the from -> to direction, so
  // `to` can still talk to `from` but never hears back — the classic
  // half-open link failure detectors struggle with.
  void PartitionAzsOneWay(AzId from, AzId to);
  void HealPartition(AzId a, AzId b);
  void HealAllPartitions();
  bool Partitioned(AzId a, AzId b) const {
    return az_partitioned_[Pair(a, b)] != 0;
  }

  // Latency inflation (fault injection): multiplies the one-way latency of
  // the directed a -> b AZ pair. Factor 1.0 restores normal latency.
  void SetLatencyFactor(AzId a, AzId b, double factor);
  void SetAllLatencyFactor(double factor);
  void ClearLatencyFactors() { SetAllLatencyFactor(1.0); }
  double latency_factor(AzId a, AzId b) const {
    return latency_factor_[Pair(a, b)];
  }

  // True if a message can currently travel from a to b.
  bool Reachable(HostId a, HostId b) const {
    if (host_up_[a] == 0 || host_up_[b] == 0) return false;
    return az_partitioned_[Pair(host_az_[a], host_az_[b])] == 0;
  }

  // One-way propagation latency. `rng` adds a small multiplicative jitter
  // when jitter_fraction > 0 (the default models cloud network variance).
  Nanos Latency(HostId a, HostId b, Rng& rng) const;

  void set_jitter_fraction(double f) { jitter_fraction_ = f; }

 private:
  int Pair(AzId a, AzId b) const { return a * num_azs_ + b; }

  int num_azs_;
  Nanos same_host_latency_;
  double jitter_fraction_ = 0.05;

  // ---- Per-host columns (struct-of-arrays, indexed by HostId) ----------
  // The hot columns are 4 + 1 bytes per host; names live in their own
  // (cold) column so a Reachable() check never walks past a std::string.
  std::vector<int32_t> host_az_;
  std::vector<uint8_t> host_up_;
  std::vector<std::string> host_name_;

  // ---- Per-AZ-pair tables (row-major, a * num_azs_ + b) ----------------
  std::vector<Nanos> base_latency_;       // one-way base latency
  std::vector<Nanos> effective_latency_;  // base × latency factor
  std::vector<double> latency_factor_;    // 1.0 = normal
  std::vector<uint8_t> az_partitioned_;   // 1 when a -> b is cut
  std::vector<uint8_t> az_up_;            // per AZ (not per pair)
};

}  // namespace repro
