#include "sim/network.h"

#include <algorithm>
#include <cassert>

namespace repro {

Network::Network(Simulation& sim, Topology& topology, NetworkConfig config)
    : sim_(sim), topology_(topology), config_(config),
      num_azs_(topology.num_azs()) {
  const int hosts = topology_.num_hosts();
  const int pairs = num_azs_ * num_azs_;
  nic_free_at_.assign(hosts, 0);
  link_free_at_.assign(pairs, 0);
  host_stats_.assign(hosts, HostNetStats{});
  az_pair_bytes_.assign(pairs, 0);
  drop_prob_.assign(pairs, 0.0);
}

void Network::SetDropProbability(AzId from, AzId to, double p) {
  assert(p >= 0.0 && p <= 1.0);
  drop_prob_[Pair(from, to)] = p;
  any_drop_prob_ = false;
  for (double q : drop_prob_) any_drop_prob_ |= q > 0.0;
}

void Network::SetAllDropProbability(double p) {
  assert(p >= 0.0 && p <= 1.0);
  drop_prob_.assign(drop_prob_.size(), p);
  any_drop_prob_ = p > 0.0;
}

Nanos Network::Occupy(Nanos& free_at, Nanos now, Nanos tx) {
  const Nanos start = std::max(free_at, now);
  free_at = start + tx;
  return free_at;
}

void Network::EnsureHost(HostId h) {
  if (h >= static_cast<HostId>(nic_free_at_.size())) {
    nic_free_at_.resize(h + 1, 0);
    host_stats_.resize(h + 1, HostNetStats{});
  }
}

Nanos Network::PrepareSend(HostId from, HostId to, int64_t payload_bytes) {
  assert(payload_bytes >= 0);
  if (!topology_.Reachable(from, to)) return -1;
  EnsureHost(std::max(from, to));

  const int64_t bytes = payload_bytes + config_.per_message_overhead_bytes;
  const AzId az_from = topology_.az_of(from);
  const AzId az_to = topology_.az_of(to);

  Nanos retransmit_delay = 0;
  if (any_drop_prob_ && from != to) {
    const double p = drop_prob_[Pair(az_from, az_to)];
    if (p > 0.0) {
      // Each lost copy costs one retransmission timeout; the message
      // itself survives unless the transport exhausts its retries and
      // resets the connection. See SetDropProbability.
      int losses = 0;
      while (sim_.rng().NextDouble() < p) {
        ++messages_dropped_;
        retransmit_delay += config_.retransmit_timeout;
        if (++losses >= config_.max_retransmits) return -1;
      }
    }
  }

  host_stats_[from].bytes_sent += bytes;
  host_stats_[from].messages_sent += 1;
  az_pair_bytes_[Pair(az_from, az_to)] += bytes;
  if (az_from == az_to) {
    intra_az_bytes_ += bytes;
  } else {
    inter_az_bytes_ += bytes;
  }

  const Nanos now = sim_.now();
  Nanos departure = now;
  if (from != to) {
    const double link_rate = az_from == az_to ? config_.intra_az_bytes_per_sec
                                              : config_.inter_az_bytes_per_sec;
    const Nanos nic_tx = static_cast<Nanos>(
        static_cast<double>(bytes) / config_.nic_bytes_per_sec * 1e9);
    const Nanos link_tx =
        static_cast<Nanos>(static_cast<double>(bytes) / link_rate * 1e9);
    // The transfer must clear both the sender NIC and the AZ-pair fabric;
    // occupy them serially (a conservative two-queue approximation).
    departure = Occupy(nic_free_at_[from], now, nic_tx);
    departure = Occupy(link_free_at_[Pair(az_from, az_to)], departure, link_tx);
  }
  return departure + retransmit_delay + topology_.Latency(from, to, sim_.rng());
}

void Network::ResetStats() {
  for (auto& s : host_stats_) s = HostNetStats{};
  std::fill(az_pair_bytes_.begin(), az_pair_bytes_.end(), 0);
  intra_az_bytes_ = 0;
  inter_az_bytes_ = 0;
}

}  // namespace repro
