#include "sim/engine.h"

#include <cassert>

#include "util/logging.h"

namespace repro {

Simulation::Simulation(uint64_t seed) : rng_(seed) {
  Logger::Get().set_clock([this] { return now_; });
}

void Simulation::At(Nanos time, std::function<void()> fn) {
  assert(time >= now_);
  queue_.push(Event{time, next_seq_++, std::move(fn)});
}

void Simulation::After(Nanos delay, std::function<void()> fn) {
  assert(delay >= 0);
  At(now_ + delay, std::move(fn));
}

Simulation::PeriodicHandle Simulation::Every(Nanos interval,
                                             std::function<void()> fn) {
  auto alive = std::make_shared<bool>(true);
  // Self-rescheduling closure; stops silently once cancelled. The closure
  // captures itself weakly so cancelling eventually frees it.
  auto tick = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_tick = tick;
  *tick = [this, interval, alive, weak_tick, fn = std::move(fn)] {
    if (!*alive) return;
    fn();
    auto tick = weak_tick.lock();
    if (*alive && tick) After(interval, *tick);
  };
  After(interval, *tick);
  PeriodicHandle handle;
  handle.alive_ = std::move(alive);
  handle.tick_ = std::move(tick);  // the handle owns the subscription
  return handle;
}

void Simulation::Dispatch(Event& e) {
  now_ = e.time;
  ++events_processed_;
  e.fn();
}

void Simulation::Run() {
  while (!queue_.empty()) {
    Event e = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    Dispatch(e);
  }
}

bool Simulation::RunOne() {
  if (queue_.empty()) return false;
  Event e = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  Dispatch(e);
  return true;
}

void Simulation::RunUntil(Nanos t) {
  while (!queue_.empty() && queue_.top().time <= t) {
    Event e = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    Dispatch(e);
  }
  if (t > now_) now_ = t;
}

}  // namespace repro
