#include "sim/engine.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "util/logging.h"

namespace repro {

// std::push_heap/pop_heap build a max-heap w.r.t. the comparator; with
// "greater" the front is the global (time, seq) minimum.
namespace {
constexpr auto kHeapGreater = [](const auto& a, const auto& b) {
  return b < a;
};
}  // namespace

Simulation::Simulation(uint64_t seed) : rng_(seed) {
  Logger::Get().set_clock([this] { return now_; });
  for (int l = 0; l < kLevels; ++l) {
    slot_head_[l].assign(kSlots[l], kNil);
    for (auto& word : occupancy_[l]) word = 0;
  }
}

Simulation::~Simulation() = default;

void Simulation::SchedulePanic(const char* what, Nanos time) const {
  // A past-time schedule would silently rewind now() at dispatch and
  // corrupt every Booking downstream; fail hard in ALL build types (the
  // old `assert` compiled out in Release).
  std::fprintf(stderr,
               "sim: FATAL: %s (argument=%lld ns, now=%lld ns) — "
               "scheduling into the past is a protocol bug\n",
               what, static_cast<long long>(time),
               static_cast<long long>(now_));
  RLOG_ERROR("sim", "FATAL: %s (argument=%lld ns, now=%lld ns)", what,
             static_cast<long long>(time), static_cast<long long>(now_));
  std::abort();
}

// ---- Event pool ---------------------------------------------------------

uint32_t Simulation::AllocEvent() {
  if (free_events_ == kNil) {
    const uint32_t base = static_cast<uint32_t>(slabs_.size()) << kSlabBits;
    slabs_.push_back(std::make_unique<Event[]>(size_t{1} << kSlabBits));
    Event* slab = slabs_.back().get();
    // Thread the fresh slab onto the free list in ascending-index order.
    for (uint32_t i = 1u << kSlabBits; i-- > 0;) {
      slab[i].next = free_events_;
      free_events_ = base + i;
    }
  }
  const uint32_t idx = free_events_;
  Event& e = Ev(idx);
  free_events_ = e.next;
  e.next = kNil;
  return idx;
}

void Simulation::FreeEvent(uint32_t idx) {
  Event& e = Ev(idx);
  e.fn.Reset();
  e.periodic = 0;
  e.alive.reset();
  e.next = free_events_;
  free_events_ = idx;
}

// ---- Heap helpers -------------------------------------------------------

void Simulation::ImminentPush(HeapEntry e) {
  imminent_.push_back(e);
  std::push_heap(imminent_.begin(), imminent_.end(), kHeapGreater);
}

Simulation::HeapEntry Simulation::ImminentPop() {
  std::pop_heap(imminent_.begin(), imminent_.end(), kHeapGreater);
  HeapEntry e = imminent_.back();
  imminent_.pop_back();
  return e;
}

// ---- Wheel --------------------------------------------------------------

void Simulation::Insert(HeapEntry h) {
  if (h.time < wheel_time_) {
    // The wheel has already expired past this instant (the event was
    // scheduled from inside the currently-draining slot); it competes in
    // the spill heap, where (time, seq) ordering keeps FIFO exact.
    ImminentPush(h);
    return;
  }
  for (int l = 0; l < kLevels; ++l) {
    const Nanos horizon = Nanos{1} << kHorizonShift[l];
    const Nanos rev_end = (wheel_time_ & ~(horizon - 1)) + horizon;
    if (h.time < rev_end) {
      // Within level l's current revolution: the slot is strictly ahead
      // of the cursor (upper-level revolution ends coincide with slot
      // boundaries one level up), so it has not been expired yet.
      const int slot =
          static_cast<int>((h.time >> kShift[l]) & (kSlots[l] - 1));
      Event& e = Ev(h.idx);
      e.next = slot_head_[l][slot];
      slot_head_[l][slot] = h.idx;
      occupancy_[l][slot >> 6] |= uint64_t{1} << (slot & 63);
      ++wheel_count_;
      return;
    }
  }
  far_.push_back(h);
  std::push_heap(far_.begin(), far_.end(), kHeapGreater);
}

int Simulation::FindOccupied(int level, int from) const {
  const int nslots = kSlots[level];
  if (from >= nslots) return -1;
  int word = from >> 6;
  uint64_t bits = occupancy_[level][word] & (~uint64_t{0} << (from & 63));
  while (true) {
    if (bits != 0) return (word << 6) + std::countr_zero(bits);
    if (++word >= (nslots >> 6)) return -1;
    bits = occupancy_[level][word];
  }
}

void Simulation::MigrateFar() {
  const Nanos horizon = Nanos{1} << kHorizonShift[kLevels - 1];
  const Nanos rev_end = (wheel_time_ & ~(horizon - 1)) + horizon;
  while (!far_.empty() && far_.front().time < rev_end) {
    std::pop_heap(far_.begin(), far_.end(), kHeapGreater);
    HeapEntry e = far_.back();
    far_.pop_back();
    Insert(e);
  }
}

bool Simulation::AdvanceWheel() {
  while (true) {
    if (wheel_count_ == 0) {
      if (far_.empty()) return false;
      // Fast-forward an empty wheel straight to the far heap's earliest
      // event (aligned down to a level-0 slot boundary).
      wheel_time_ = far_.front().time & ~((Nanos{1} << kShift[0]) - 1);
      MigrateFar();
      continue;
    }
    MigrateFar();

    // Cascade first: if level-0 expiry carried the cursor exactly onto an
    // upper-level slot boundary (a level's revolution end is the next
    // level's slot boundary), that slot is now current and must be
    // redistributed one level down before level 0 is scanned — its events
    // may be earlier than anything left in level 0. Insert() guarantees
    // every event in the slot has time >= wheel_time_ and lands one level
    // lower, so this terminates.
    {
      bool cascaded = false;
      for (int l = 1; l < kLevels; ++l) {
        const int cur =
            static_cast<int>((wheel_time_ >> kShift[l]) & (kSlots[l] - 1));
        uint32_t n = slot_head_[l][cur];
        if (n == kNil) continue;
        slot_head_[l][cur] = kNil;
        occupancy_[l][cur >> 6] &= ~(uint64_t{1} << (cur & 63));
        while (n != kNil) {
          Event& e = Ev(n);
          const uint32_t next = e.next;
          e.next = kNil;
          --wheel_count_;
          Insert(HeapEntry{e.time, e.seq, n});
          n = next;
        }
        cascaded = true;
      }
      if (cascaded) continue;
    }

    // Level 0: expire the next occupied slot of the current revolution as
    // a sorted run. One sort per slot replaces per-event heap churn, and
    // knowing the dispatch order up front lets PopImminent prefetch each
    // event while its predecessor's callback runs; the loop below pulls
    // in every callback line (the event's second half) for the batch.
    {
      const int cur =
          static_cast<int>((wheel_time_ >> kShift[0]) & (kSlots[0] - 1));
      const int i = FindOccupied(0, cur);
      if (i >= 0) {
        const Nanos horizon = Nanos{1} << kHorizonShift[0];
        const Nanos rev_start = wheel_time_ & ~(horizon - 1);
        const Nanos slot_start = rev_start + (Nanos{i} << kShift[0]);
        uint32_t n = slot_head_[0][i];
        slot_head_[0][i] = kNil;
        occupancy_[0][i >> 6] &= ~(uint64_t{1} << (i & 63));
        run_.clear();
        run_pos_ = 0;
        while (n != kNil) {
          Event& e = Ev(n);
          run_.push_back(HeapEntry{e.time, e.seq, n});
          // The walk already has the head line: start the callback line
          // and the periodic liveness block on their way to the cache now,
          // so dispatch never stalls on either.
          __builtin_prefetch(reinterpret_cast<const char*>(&e) + 64);
          if (e.periodic) __builtin_prefetch(e.alive.get());
          const uint32_t next = e.next;
          e.next = kNil;
          --wheel_count_;
          n = next;
        }
        std::sort(run_.begin(), run_.end());
        // Warm the next occupied slot's first event too: its chain walk
        // otherwise starts with a cold dependent load.
        const int j = FindOccupied(0, i + 1);
        if (j >= 0) __builtin_prefetch(&Ev(slot_head_[0][j]));
        wheel_time_ = slot_start + (Nanos{1} << kShift[0]);
        return true;
      }
    }

    // Upper levels: jump the cursor to the next occupied slot and
    // redistribute its chain one level down (Insert re-buckets by the
    // updated cursor), then retry level 0. Scans start strictly past the
    // cursor slot: the cursor's own slot was drained by the cascade
    // above, and Insert never adds to it (anything that close goes to a
    // lower level).
    bool redistributed = false;
    for (int l = 1; l < kLevels; ++l) {
      const int cur =
          static_cast<int>((wheel_time_ >> kShift[l]) & (kSlots[l] - 1));
      const int i = FindOccupied(l, cur + 1);
      if (i < 0) continue;
      const Nanos horizon = Nanos{1} << kHorizonShift[l];
      const Nanos rev_start = wheel_time_ & ~(horizon - 1);
      wheel_time_ = rev_start + (Nanos{i} << kShift[l]);
      uint32_t n = slot_head_[l][i];
      slot_head_[l][i] = kNil;
      occupancy_[l][i >> 6] &= ~(uint64_t{1} << (i & 63));
      while (n != kNil) {
        Event& e = Ev(n);
        const uint32_t next = e.next;
        e.next = kNil;
        --wheel_count_;
        Insert(HeapEntry{e.time, e.seq, n});
        n = next;
      }
      redistributed = true;
      break;
    }
    assert(redistributed && "wheel_count_ > 0 but no occupied slot found");
    if (!redistributed) return false;
  }
}

// ---- Scheduling API -----------------------------------------------------

void Simulation::At(Nanos time, SmallFn fn) {
  if (time < now_) SchedulePanic("At() scheduled before now()", time);
  if (!fn) SchedulePanic("At() scheduled with an empty callback", time);
  const uint32_t idx = AllocEvent();
  Event& e = Ev(idx);
  e.time = time;
  e.seq = next_seq_++;
  e.periodic = 0;
  e.fn = std::move(fn);
  Insert(HeapEntry{time, e.seq, idx});
  ++pending_;
}

void Simulation::After(Nanos delay, SmallFn fn) {
  if (delay < 0) SchedulePanic("After() scheduled with negative delay", delay);
  At(now_ + delay, std::move(fn));
}

Simulation::PeriodicHandle Simulation::Every(Nanos interval, SmallFn fn) {
  if (interval <= 0) {
    SchedulePanic("Every() scheduled with non-positive interval", interval);
  }
  // The whole subscription lives in the pooled event: the closure fires
  // and reschedules in place, and the interval and liveness pointer ride
  // in the lines a tick already touches.
  const uint32_t idx = AllocEvent();
  Event& e = Ev(idx);
  e.time = now_ + interval;
  e.seq = next_seq_++;
  e.periodic = 1;
  e.interval = interval;
  e.alive = std::make_shared<bool>(true);
  e.fn = std::move(fn);
  Insert(HeapEntry{e.time, e.seq, idx});
  ++pending_;

  PeriodicHandle handle;
  handle.alive_ = e.alive;
  return handle;
}

void Simulation::FirePeriodic(uint32_t idx) {
  Event& e = Ev(idx);
  if (!*e.alive) {  // cancelled while in flight: the firing no-ops
    FreeEvent(idx);
    return;
  }
  e.fn();
  // The tick may have cancelled its own timer, and the last handle copy
  // may have been dropped (only the engine's strong ref remains) — in
  // both cases the subscription ends, exactly like the pre-wheel engine's
  // weak-tick closure. Otherwise reschedule the SAME pooled event by
  // handle: no allocation, no callback copy. The sequence number is taken
  // after the tick body ran, so events the tick scheduled keep their FIFO
  // priority over the next tick (identical to the old After-inside-tick
  // order).
  if (*e.alive && e.alive.use_count() > 1) {
    e.time = now_ + e.interval;
    e.seq = next_seq_++;
    Insert(HeapEntry{e.time, e.seq, idx});
    ++pending_;
  } else {
    FreeEvent(idx);
  }
}

// ---- Dispatch loops -----------------------------------------------------

void Simulation::Dispatch(uint32_t idx) {
  Event& e = Ev(idx);
  now_ = e.time;
  ++events_processed_;
  --pending_;
  if (e.periodic) {
    FirePeriodic(idx);
    return;
  }
  // Invoke in place: slab addresses are stable, so callbacks may freely
  // schedule (and grow the pool) while running.
  e.fn();
  FreeEvent(idx);
}

const Simulation::HeapEntry* Simulation::PeekImminent() const {
  if (run_pos_ >= run_.size()) {
    return imminent_.empty() ? nullptr : &imminent_.front();
  }
  const HeapEntry* r = &run_[run_pos_];
  if (!imminent_.empty() && imminent_.front() < *r) return &imminent_.front();
  return r;
}

uint32_t Simulation::PopImminent() {
  if (run_pos_ < run_.size() &&
      (imminent_.empty() || run_[run_pos_] < imminent_.front())) {
    const uint32_t idx = run_[run_pos_++].idx;
    if (run_pos_ < run_.size()) {
      // Pull the next event's head line while this one's callback runs
      // (its callback line was prefetched at drain time).
      __builtin_prefetch(&Ev(run_[run_pos_].idx));
    }
    return idx;
  }
  return ImminentPop().idx;
}

bool Simulation::RunOne() {
  if (PeekImminent() == nullptr && !AdvanceWheel()) return false;
  Dispatch(PopImminent());
  return true;
}

void Simulation::Run() {
  while (RunOne()) {
  }
}

void Simulation::RunUntil(Nanos t) {
  while (true) {
    const HeapEntry* front = PeekImminent();
    if (front == nullptr) {
      if (!AdvanceWheel()) break;
      front = PeekImminent();
    }
    if (front->time > t) break;
    Dispatch(PopImminent());
  }
  if (t > now_) now_ = t;
}

}  // namespace repro
