#include "sim/topology.h"

#include <cassert>

namespace repro {

AzLatencyTable AzLatencyTable::UsWest1() {
  // Table I of the paper, RTT in ms:
  //          a      b      c
  //   a    0.247  0.360  0.372
  //   b    0.360  0.251  0.399
  //   c    0.372  0.399  0.249
  // Stored as one-way latency = RTT / 2.
  auto us = [](double rtt_ms) {
    return static_cast<Nanos>(rtt_ms / 2.0 * 1e6);
  };
  AzLatencyTable t;
  t.one_way = {
      {us(0.247), us(0.360), us(0.372)},
      {us(0.360), us(0.251), us(0.399)},
      {us(0.372), us(0.399), us(0.249)},
  };
  return t;
}

AzLatencyTable AzLatencyTable::Uniform(int num_azs, Nanos intra_one_way,
                                       Nanos inter_one_way) {
  AzLatencyTable t;
  t.one_way.assign(num_azs, std::vector<Nanos>(num_azs, inter_one_way));
  for (int i = 0; i < num_azs; ++i) t.one_way[i][i] = intra_one_way;
  return t;
}

Topology::Topology(int num_azs, AzLatencyTable latency)
    : num_azs_(num_azs), latency_(std::move(latency)), az_up_(num_azs, true),
      az_partitioned_(num_azs, std::vector<bool>(num_azs, false)),
      latency_factor_(num_azs, std::vector<double>(num_azs, 1.0)) {
  assert(static_cast<int>(latency_.one_way.size()) >= num_azs);
}

HostId Topology::AddHost(AzId az, std::string name) {
  assert(az >= 0 && az < num_azs_);
  hosts_.push_back(Host{az, std::move(name)});
  return static_cast<HostId>(hosts_.size()) - 1;
}

void Topology::SetAzUp(AzId az, bool up) {
  az_up_[az] = up;
  for (auto& h : hosts_) {
    if (h.az == az) h.up = up;
  }
}

bool Topology::AzUp(AzId az) const { return az_up_[az]; }

void Topology::PartitionAzs(AzId a, AzId b) {
  if (a == b) return;  // an AZ cannot be partitioned from itself
  az_partitioned_[a][b] = az_partitioned_[b][a] = true;
}

void Topology::PartitionAzsOneWay(AzId from, AzId to) {
  if (from == to) return;
  az_partitioned_[from][to] = true;
}

void Topology::SetLatencyFactor(AzId a, AzId b, double factor) {
  assert(factor > 0);
  latency_factor_[a][b] = factor;
}

void Topology::SetAllLatencyFactor(double factor) {
  assert(factor > 0);
  for (auto& row : latency_factor_) row.assign(row.size(), factor);
}

void Topology::HealPartition(AzId a, AzId b) {
  az_partitioned_[a][b] = az_partitioned_[b][a] = false;
}

void Topology::HealAllPartitions() {
  for (auto& row : az_partitioned_) row.assign(row.size(), false);
}

bool Topology::Reachable(HostId a, HostId b) const {
  const Host& ha = hosts_[a];
  const Host& hb = hosts_[b];
  if (!ha.up || !hb.up) return false;
  if (az_partitioned_[ha.az][hb.az]) return false;
  return true;
}

Nanos Topology::Latency(HostId a, HostId b, Rng& rng) const {
  Nanos base;
  if (a == b) {
    base = latency_.same_host;
  } else {
    const AzId az_a = hosts_[a].az;
    const AzId az_b = hosts_[b].az;
    base = latency_.one_way[az_a][az_b];
    const double factor = latency_factor_[az_a][az_b];
    if (factor != 1.0) {
      base = static_cast<Nanos>(static_cast<double>(base) * factor);
    }
  }
  if (jitter_fraction_ > 0) {
    const double j = 1.0 + jitter_fraction_ * (2.0 * rng.NextDouble() - 1.0);
    base = static_cast<Nanos>(static_cast<double>(base) * j);
  }
  return base;
}

}  // namespace repro
