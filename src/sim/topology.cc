#include "sim/topology.h"

#include <cassert>

namespace repro {

AzLatencyTable AzLatencyTable::UsWest1() {
  // Table I of the paper, RTT in ms:
  //          a      b      c
  //   a    0.247  0.360  0.372
  //   b    0.360  0.251  0.399
  //   c    0.372  0.399  0.249
  // Stored as one-way latency = RTT / 2.
  auto us = [](double rtt_ms) {
    return static_cast<Nanos>(rtt_ms / 2.0 * 1e6);
  };
  AzLatencyTable t;
  t.one_way = {
      {us(0.247), us(0.360), us(0.372)},
      {us(0.360), us(0.251), us(0.399)},
      {us(0.372), us(0.399), us(0.249)},
  };
  return t;
}

AzLatencyTable AzLatencyTable::Uniform(int num_azs, Nanos intra_one_way,
                                       Nanos inter_one_way) {
  AzLatencyTable t;
  t.one_way.assign(num_azs, std::vector<Nanos>(num_azs, inter_one_way));
  for (int i = 0; i < num_azs; ++i) t.one_way[i][i] = intra_one_way;
  return t;
}

Topology::Topology(int num_azs, AzLatencyTable latency)
    : num_azs_(num_azs), same_host_latency_(latency.same_host) {
  assert(static_cast<int>(latency.one_way.size()) >= num_azs);
  const int pairs = num_azs * num_azs;
  base_latency_.resize(pairs);
  for (int a = 0; a < num_azs; ++a) {
    for (int b = 0; b < num_azs; ++b) {
      base_latency_[Pair(a, b)] = latency.one_way[a][b];
    }
  }
  effective_latency_ = base_latency_;
  latency_factor_.assign(pairs, 1.0);
  az_partitioned_.assign(pairs, 0);
  az_up_.assign(num_azs, 1);
}

HostId Topology::AddHost(AzId az, std::string name) {
  assert(az >= 0 && az < num_azs_);
  host_az_.push_back(az);
  host_up_.push_back(1);
  host_name_.push_back(std::move(name));
  return static_cast<HostId>(host_az_.size()) - 1;
}

void Topology::SetAzUp(AzId az, bool up) {
  az_up_[az] = up ? 1 : 0;
  for (size_t h = 0; h < host_az_.size(); ++h) {
    if (host_az_[h] == az) host_up_[h] = up ? 1 : 0;
  }
}

bool Topology::AzUp(AzId az) const { return az_up_[az] != 0; }

void Topology::PartitionAzs(AzId a, AzId b) {
  if (a == b) return;  // an AZ cannot be partitioned from itself
  az_partitioned_[Pair(a, b)] = az_partitioned_[Pair(b, a)] = 1;
}

void Topology::PartitionAzsOneWay(AzId from, AzId to) {
  if (from == to) return;
  az_partitioned_[Pair(from, to)] = 1;
}

void Topology::SetLatencyFactor(AzId a, AzId b, double factor) {
  assert(factor > 0);
  const int p = Pair(a, b);
  latency_factor_[p] = factor;
  effective_latency_[p] = static_cast<Nanos>(
      static_cast<double>(base_latency_[p]) * factor);
}

void Topology::SetAllLatencyFactor(double factor) {
  assert(factor > 0);
  for (size_t p = 0; p < latency_factor_.size(); ++p) {
    latency_factor_[p] = factor;
    effective_latency_[p] = static_cast<Nanos>(
        static_cast<double>(base_latency_[p]) * factor);
  }
}

void Topology::HealPartition(AzId a, AzId b) {
  az_partitioned_[Pair(a, b)] = az_partitioned_[Pair(b, a)] = 0;
}

void Topology::HealAllPartitions() {
  az_partitioned_.assign(az_partitioned_.size(), 0);
}

Nanos Topology::Latency(HostId a, HostId b, Rng& rng) const {
  // Inflation factors are folded into effective_latency_ at
  // SetLatencyFactor time, so the per-message cost is one table load.
  Nanos base = a == b ? same_host_latency_
                      : effective_latency_[Pair(host_az_[a], host_az_[b])];
  if (jitter_fraction_ > 0) {
    const double j = 1.0 + jitter_fraction_ * (2.0 * rng.NextDouble() - 1.0);
    base = static_cast<Nanos>(static_cast<double>(base) * j);
  }
  return base;
}

}  // namespace repro
