// Message transport with finite bandwidth.
//
// Two resources shape transfers, mirroring what matters in a cloud region
// (§III C2): each host's NIC, and the aggregate capacity of each directed
// AZ-pair link. Inter-AZ links are the scarce, billable resource — the
// paper's motivation for AZ-local reads — so the network tracks intra- vs
// inter-AZ bytes separately; benchmarks report both (Figs. 12–14).
//
// Messages to unreachable destinations are silently dropped; all protocols
// above recover via timeouts, exactly as over a real partitioned network.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/engine.h"
#include "sim/topology.h"

namespace repro {

struct NetworkConfig {
  // Per-host NIC throughput (GCP 32-vCPU VMs get ~16 Gbps).
  double nic_bytes_per_sec = 2.0e9;
  // Effective aggregate budget of each directed inter-AZ link available
  // to one deployment (per-VM egress caps, not fabric capacity). The
  // AZ-oblivious 3-AZ deployments approach this budget at high namenode
  // counts, reproducing the paper's "network I/O becomes a bottleneck"
  // regime past ~24 NNs; AZ-aware deployments stay far below it (§V-E).
  double inter_az_bytes_per_sec = 0.4e9;
  // Aggregate intra-AZ fabric capacity (effectively unconstrained).
  double intra_az_bytes_per_sec = 100.0e9;
  // Fixed per-message framing overhead added to every payload.
  int64_t per_message_overhead_bytes = 120;
  // Transport retransmission timeout: a message lost on the wire between
  // reachable hosts (SetDropProbability) is resent after this long, so
  // loss shows up as added latency — matching TCP, which every protocol
  // here runs over — not as a silently lost protocol message.
  Nanos retransmit_timeout = 50 * kMillisecond;
  // Consecutive losses tolerated before the transport gives up and the
  // message is genuinely lost (a connection reset).
  int max_retransmits = 15;
};

struct HostNetStats {
  int64_t bytes_sent = 0;
  int64_t bytes_received = 0;
  int64_t messages_sent = 0;
  int64_t messages_received = 0;
};

class Network {
 public:
  Network(Simulation& sim, Topology& topology, NetworkConfig config = {});

  // Sends `payload_bytes` from host `from` to host `to`; `deliver` runs at
  // the arrival time. Dropped (deliver never runs) if the destination is
  // unreachable at send or arrival time.
  //
  // Templated on the callable so the scheduled arrival event captures the
  // caller's closure directly: a deliver closure of <= 32 bytes rides in
  // the engine's inline event slot with no heap allocation at all.
  template <typename F>
  void Send(HostId from, HostId to, int64_t payload_bytes, F deliver) {
    const Nanos arrival = PrepareSend(from, to, payload_bytes);
    if (arrival < 0) return;  // unreachable or connection reset
    const int64_t bytes = payload_bytes + config_.per_message_overhead_bytes;
    sim_.At(arrival,
            [this, from, to, bytes, f = std::move(deliver)]() mutable {
              // Re-check: the destination may have died or been partitioned
              // away while the message was in flight.
              if (!topology_.Reachable(from, to)) return;
              host_stats_[to].bytes_received += bytes;
              host_stats_[to].messages_received += 1;
              f();
            });
  }

  // ---- Statistics (since last ResetStats) ----
  int64_t intra_az_bytes() const { return intra_az_bytes_; }
  int64_t inter_az_bytes() const { return inter_az_bytes_; }
  int64_t az_pair_bytes(AzId from, AzId to) const {
    return az_pair_bytes_[Pair(from, to)];
  }
  const HostNetStats& host_stats(HostId h) const {
    static const HostNetStats kEmpty{};
    return h < static_cast<HostId>(host_stats_.size()) ? host_stats_[h]
                                                       : kEmpty;
  }
  void ResetStats();

  // ---- Fault injection: probabilistic message loss ----
  // Loses each wire transmission on the directed from -> to AZ link with
  // the given probability (lossy link, not a clean partition). The
  // transport retransmits after `retransmit_timeout`, so loss between
  // reachable hosts manifests as latency spikes and failure-detector
  // flapping — only after `max_retransmits` consecutive losses is the
  // message genuinely gone (connection reset). Probability 0 restores the
  // link. Draws from the simulation RNG only when a non-zero probability
  // is installed, so fault-free runs keep their exact event sequences.
  void SetDropProbability(AzId from, AzId to, double p);
  void SetAllDropProbability(double p);
  void ClearDropProbabilities() { SetAllDropProbability(0.0); }
  int64_t messages_dropped() const { return messages_dropped_; }

  const NetworkConfig& config() const { return config_; }
  Topology& topology() { return topology_; }
  Simulation& sim() { return sim_; }

 private:
  // Everything Send() does before scheduling the arrival: reachability,
  // loss draws, byte accounting, NIC/link occupancy. Returns the arrival
  // time, or -1 when the message never arrives.
  Nanos PrepareSend(HostId from, HostId to, int64_t payload_bytes);

  // Flat row-major index into the per-directed-AZ-pair tables.
  int Pair(AzId from, AzId to) const { return from * num_azs_ + to; }

  // Earliest time a new transmission can start on the given resource, and
  // the update after occupying it for `tx` nanoseconds.
  static Nanos Occupy(Nanos& free_at, Nanos now, Nanos tx);

  // Hosts may be added to the topology after the network is constructed;
  // grow the per-host bookkeeping on demand.
  void EnsureHost(HostId h);

  Simulation& sim_;
  Topology& topology_;
  NetworkConfig config_;
  int num_azs_;

  // Per-AZ-pair state is flat and row-major (`from * num_azs_ + to`) —
  // one cache line covers the whole 3-AZ table, and Send() does no
  // double-indirection.
  std::vector<Nanos> nic_free_at_;       // per host
  std::vector<Nanos> link_free_at_;      // per directed AZ pair

  std::vector<HostNetStats> host_stats_;
  std::vector<int64_t> az_pair_bytes_;   // per directed AZ pair
  int64_t intra_az_bytes_ = 0;
  int64_t inter_az_bytes_ = 0;

  std::vector<double> drop_prob_;        // per directed AZ pair
  bool any_drop_prob_ = false;
  int64_t messages_dropped_ = 0;
};

}  // namespace repro
