#include "telemetry/export.h"

#include <cmath>
#include <cstdio>
#include <set>

namespace repro::telemetry {
namespace {

// "hopsfs.client.retries" -> "hopsfs_client_retries" (Prometheus metric
// names cannot contain dots).
std::string PromName(const std::string& dotted) {
  std::string out = dotted;
  for (char& c : out) {
    if (c == '.' || c == '-') c = '_';
  }
  return out;
}

// Canonical "{k=v,...}" label suffix -> Prometheus '{k="v",...}'.
std::string PromLabels(const ParsedName& parsed,
                       const std::string& extra_key = "",
                       const std::string& extra_value = "") {
  if (parsed.labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : parsed.labels) {
    if (!first) out += ',';
    out += k + "=\"" + v + "\"";
    first = false;
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key + "=\"" + extra_value + "\"";
  }
  out += '}';
  return out;
}

std::string FormatValue(double v) {
  if (std::isnan(v)) return "NaN";
  char buf[64];
  if (v == static_cast<int64_t>(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<int64_t>(v)));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  return buf;
}

void AppendTypeLine(std::string& out, std::set<std::string>& typed,
                    const std::string& prom_name, const char* type) {
  if (!typed.insert(prom_name).second) return;
  out += "# TYPE " + prom_name + " " + type + "\n";
}

}  // namespace

std::string PrometheusText(const metrics::Registry& registry) {
  std::string out;
  std::set<std::string> typed;

  // Histograms expand to _bucket/_sum/_count; the flattened .count/.sum
  // samples Collect() emits for them are skipped to avoid double export.
  const auto histograms = registry.CollectHistograms();
  std::set<std::string> flattened;
  for (const auto& h : histograms) {
    flattened.insert(h.name + ".count");
    flattened.insert(h.name + ".sum");
  }

  for (const auto& sample : registry.Collect()) {
    if (flattened.count(sample.name) != 0) continue;
    const ParsedName parsed = ParseSeriesName(sample.name);
    const std::string prom = PromName(parsed.base);
    AppendTypeLine(out, typed, prom,
                   sample.kind == metrics::MetricKind::kCounter ? "counter"
                                                                : "gauge");
    out += prom + PromLabels(parsed) + " " + FormatValue(sample.value) + "\n";
  }

  for (const auto& h : histograms) {
    const ParsedName parsed = ParseSeriesName(h.name);
    const std::string prom = PromName(parsed.base);
    AppendTypeLine(out, typed, prom, "histogram");
    const auto& bounds = h.histogram->bounds();
    const auto& counts = h.histogram->bucket_counts();
    for (size_t i = 0; i < bounds.size(); ++i) {
      out += prom + "_bucket" +
             PromLabels(parsed, "le", FormatValue(bounds[i])) + " " +
             FormatValue(static_cast<double>(counts[i])) + "\n";
    }
    out += prom + "_bucket" + PromLabels(parsed, "le", "+Inf") + " " +
           FormatValue(static_cast<double>(h.histogram->count())) + "\n";
    out += prom + "_sum" + PromLabels(parsed) + " " +
           FormatValue(h.histogram->sum()) + "\n";
    out += prom + "_count" + PromLabels(parsed) + " " +
           FormatValue(static_cast<double>(h.histogram->count())) + "\n";
  }
  return out;
}

std::string ScrapeArchiveJson(const Scraper& scraper) {
  std::string out = "{\n  \"scrapes\": " +
                    std::to_string(scraper.scrape_count()) +
                    ",\n  \"period_ns\": " +
                    std::to_string(scraper.options().period) +
                    ",\n  \"series\": [\n";
  bool first_series = true;
  for (const auto& [name, series] : scraper.series()) {
    if (!first_series) out += ",\n";
    first_series = false;
    out += "    {\"name\": \"" + name + "\", \"kind\": \"";
    switch (series.kind) {
      case metrics::MetricKind::kCounter: out += "counter"; break;
      case metrics::MetricKind::kGauge: out += "gauge"; break;
      case metrics::MetricKind::kHistogram: out += "histogram"; break;
    }
    out += "\", \"points\": [";
    for (size_t i = 0; i < series.ring.size(); ++i) {
      const auto& p = series.ring.at(i);
      if (i > 0) out += ", ";
      char buf[64];
      std::snprintf(buf, sizeof(buf), "[%.6f, %s]", ToSeconds(p.t),
                    FormatValue(p.v).c_str());
      out += buf;
    }
    out += "]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

bool WriteScrapeCsv(const std::string& path, const Scraper& scraper) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;

  // Collect the union of scrape timestamps (rings can start late — a
  // series appears on the first tick after its metric is registered).
  std::set<Nanos> times;
  for (const auto& [name, series] : scraper.series()) {
    for (size_t i = 0; i < series.ring.size(); ++i) {
      times.insert(series.ring.at(i).t);
    }
  }

  // Labelled series names carry commas inside the braces
  // ("host.up{az=0,host=nn-0}"), so header cells are RFC 4180-quoted.
  std::fprintf(f, "time_s");
  for (const auto& [name, series] : scraper.series()) {
    if (name.find(',') != std::string::npos) {
      std::fprintf(f, ",\"%s\"", name.c_str());
    } else {
      std::fprintf(f, ",%s", name.c_str());
    }
  }
  std::fprintf(f, "\n");

  // Per-series cursor walk: rings are time-ordered, so one pass emits the
  // whole grid without per-cell searches.
  std::vector<std::pair<const RingSeries*, size_t>> cursors;
  cursors.reserve(scraper.series().size());
  for (const auto& [name, series] : scraper.series()) {
    cursors.emplace_back(&series.ring, 0);
  }
  for (const Nanos t : times) {
    std::fprintf(f, "%.6f", ToSeconds(t));
    for (auto& [ring, idx] : cursors) {
      if (idx < ring->size() && ring->at(idx).t == t) {
        std::fprintf(f, ",%s", FormatValue(ring->at(idx).v).c_str());
        ++idx;
      } else {
        std::fprintf(f, ",");
      }
    }
    std::fprintf(f, "\n");
  }
  std::fclose(f);
  return true;
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return written == content.size();
}

}  // namespace repro::telemetry
