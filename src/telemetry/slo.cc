#include "telemetry/slo.h"

#include <algorithm>
#include <cstdio>

namespace repro::telemetry {

SloConfig SloConfig::Production() {
  SloConfig c;
  c.rules = {
      {"fast", 5 * 60 * kSecond, 60 * 60 * kSecond, 14.4},
      {"slow", 30 * 60 * kSecond, 6 * 60 * 60 * kSecond, 6.0},
  };
  return c;
}

SloConfig SloConfig::ScaledDown(int64_t divisor) const {
  SloConfig c = *this;
  for (auto& r : c.rules) {
    r.short_window = std::max<Nanos>(1, r.short_window / divisor);
    r.long_window = std::max<Nanos>(1, r.long_window / divisor);
  }
  return c;
}

std::optional<double> SloEngine::BurnRate(const RingSeries* total,
                                          const RingSeries* good, Nanos window,
                                          Nanos now, double target) {
  if (total == nullptr || good == nullptr || total->empty() || good->empty()) {
    return std::nullopt;
  }
  const Nanos start = now - window;
  // Baseline = newest sample at or before the window start; when the
  // series is younger than the window, fall back to its oldest retained
  // point (a partial window — better than silence during warm-up).
  const RingSeries::Point t1 = total->latest();
  const RingSeries::Point g1 = good->latest();
  const RingSeries::Point t0 = total->AtOrBefore(start).value_or(total->at(0));
  const RingSeries::Point g0 = good->AtOrBefore(start).value_or(good->at(0));
  const double total_delta = t1.v - t0.v;
  const double good_delta = g1.v - g0.v;
  if (total_delta <= 0 || t1.t <= t0.t) return std::nullopt;  // no traffic
  const double error_fraction =
      std::clamp(1.0 - good_delta / total_delta, 0.0, 1.0);
  const double budget = 1.0 - target;
  if (budget <= 0) return std::nullopt;
  return error_fraction / budget;
}

void SloEngine::Evaluate(const Scraper& scraper, Nanos now) {
  for (const auto& obj : objectives_) {
    const RingSeries* total = scraper.Find(obj.total_series);
    const RingSeries* good = scraper.Find(obj.good_series);
    for (const auto& rule : obj.rules) {
      const auto burn_short =
          BurnRate(total, good, rule.short_window, now, obj.target);
      const auto burn_long =
          BurnRate(total, good, rule.long_window, now, obj.target);

      SloAlert* active = nullptr;
      for (auto& a : alerts_) {
        if (a.active() && a.objective == obj.name && a.rule == rule.name) {
          active = &a;
          break;
        }
      }
      if (active == nullptr) {
        if (burn_short && burn_long && *burn_short >= rule.threshold &&
            *burn_long >= rule.threshold) {
          SloAlert a;
          a.objective = obj.name;
          a.rule = rule.name;
          a.fired_at = now;
          a.burn_short_at_fire = *burn_short;
          a.burn_long_at_fire = *burn_long;
          alerts_.push_back(std::move(a));
        }
      } else if (burn_short && *burn_short < rule.threshold) {
        // Resolve on the short window only: once errors stop, the short
        // window clears within its own width while the long window may
        // stay hot for hours. "No data" does not resolve — a silent
        // cluster is not a recovered one.
        active->resolved_at = now;
      }
    }
  }
}

int SloEngine::active_alert_count() const {
  int n = 0;
  for (const auto& a : alerts_) n += a.active() ? 1 : 0;
  return n;
}

std::string SloEngine::Report() const {
  if (alerts_.empty()) return "slo: no alerts\n";
  std::string out;
  for (const auto& a : alerts_) {
    char line[256];
    if (a.active()) {
      std::snprintf(line, sizeof(line),
                    "slo: %s/%s FIRING since %.3fs (burn %.1f/%.1f)\n",
                    a.objective.c_str(), a.rule.c_str(), ToSeconds(a.fired_at),
                    a.burn_short_at_fire, a.burn_long_at_fire);
    } else {
      std::snprintf(line, sizeof(line),
                    "slo: %s/%s fired %.3fs resolved %.3fs (burn %.1f/%.1f)\n",
                    a.objective.c_str(), a.rule.c_str(), ToSeconds(a.fired_at),
                    ToSeconds(a.resolved_at), a.burn_short_at_fire,
                    a.burn_long_at_fire);
    }
    out += line;
  }
  return out;
}

}  // namespace repro::telemetry
