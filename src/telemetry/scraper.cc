#include "telemetry/scraper.h"

#include <algorithm>

namespace repro::telemetry {

void RingSeries::Push(Nanos t, double v) {
  if (points_.size() < capacity_) {
    points_.push_back({t, v});
    return;
  }
  points_[head_] = {t, v};
  head_ = (head_ + 1) % points_.size();
}

std::optional<RingSeries::Point> RingSeries::AtOrBefore(Nanos t) const {
  // Timestamps are pushed in nondecreasing order, so scan newest-first
  // for the first point at or before t. Rings are small (a few hundred
  // points) and this runs at evaluation time, not on hot paths.
  for (size_t i = size(); i-- > 0;) {
    const Point& p = at(i);
    if (p.t <= t) return p;
  }
  return std::nullopt;
}

void Scraper::ScrapeOnce(Nanos now) {
  if (registry_ == nullptr) return;
  // CollectInto reuses scratch_'s samples (and their string buffers)
  // across scrapes: once the metric set is stable and every ring is
  // warm, a scrape performs zero heap allocations (prof_test pins this
  // with the profiler's allocation counters).
  registry_->CollectInto(&scratch_);
  for (const auto& sample : scratch_) {
    auto it = series_.find(sample.name);
    if (it == series_.end()) {
      it = series_
               .emplace(sample.name,
                        Series{sample.kind, RingSeries(options_.ring_capacity)})
               .first;
    }
    it->second.ring.Push(now, sample.value);
  }
  ++scrape_count_;
  last_scrape_at_ = now;
}

void Scraper::Inject(const std::string& full_name, metrics::MetricKind kind,
                     Nanos now, double value) {
  auto it = series_.find(full_name);
  if (it == series_.end()) {
    it = series_
             .emplace(full_name, Series{kind, RingSeries(options_.ring_capacity)})
             .first;
  }
  it->second.ring.Push(now, value);
}

const RingSeries* Scraper::Find(const std::string& full_name) const {
  auto it = series_.find(full_name);
  return it != series_.end() ? &it->second.ring : nullptr;
}

metrics::MetricKind Scraper::KindOf(const std::string& full_name) const {
  auto it = series_.find(full_name);
  return it != series_.end() ? it->second.kind : metrics::MetricKind::kGauge;
}

std::vector<std::string> Scraper::SeriesNames() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, s] : series_) out.push_back(name);
  return out;
}

std::string ParsedName::LabelOr(const std::string& key,
                                const std::string& fallback) const {
  for (const auto& [k, v] : labels) {
    if (k == key) return v;
  }
  return fallback;
}

ParsedName ParseSeriesName(const std::string& full_name) {
  ParsedName out;
  const size_t brace = full_name.find('{');
  if (brace == std::string::npos) {
    out.base = full_name;
    return out;
  }
  out.base = full_name.substr(0, brace);
  const size_t close = full_name.rfind('}');
  const std::string body =
      close != std::string::npos && close > brace
          ? full_name.substr(brace + 1, close - brace - 1)
          : full_name.substr(brace + 1);
  size_t pos = 0;
  while (pos < body.size()) {
    size_t comma = body.find(',', pos);
    if (comma == std::string::npos) comma = body.size();
    const std::string kv = body.substr(pos, comma - pos);
    const size_t eq = kv.find('=');
    if (eq != std::string::npos) {
      out.labels.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
    }
    pos = comma + 1;
  }
  return out;
}

}  // namespace repro::telemetry
