// Deterministic sim-time metrics scraper.
//
// The scraper snapshots a metrics::Registry — hot-path counters plus the
// callback metrics components register for their internal statistics —
// into per-metric ring-buffer time series. It is *passive*: ScrapeOnce()
// is driven by the Telemetry bundle's periodic tick (one Simulation::Every
// subscription for the whole cluster), reads registry state, draws no RNG
// and sends no messages, so a run executes byte-identically with scraping
// on or off (asserted by telemetry_test / the chaos harness).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "metrics/counters.h"
#include "util/time.h"

namespace repro::telemetry {

// Fixed-capacity ring of (sim time, value) points; Push evicts the
// oldest point once full. Indexing is oldest -> newest.
class RingSeries {
 public:
  struct Point {
    Nanos t = 0;
    double v = 0;
  };

  explicit RingSeries(size_t capacity = 512)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void Push(Nanos t, double v);

  bool empty() const { return points_.empty(); }
  size_t size() const { return points_.size(); }
  size_t capacity() const { return capacity_; }

  // i == 0 is the oldest retained point.
  const Point& at(size_t i) const { return points_[(head_ + i) % points_.size()]; }
  const Point& latest() const { return at(size() - 1); }

  // Newest point with timestamp <= t (nullopt when every retained point
  // is newer than t, or the series is empty).
  std::optional<Point> AtOrBefore(Nanos t) const;

 private:
  size_t capacity_;
  size_t head_ = 0;  // index of oldest point once the ring wraps
  std::vector<Point> points_;
};

struct ScraperOptions {
  // Scrape period in sim time (the Telemetry tick interval).
  Nanos period = 100 * kMillisecond;
  // Points retained per series.
  size_t ring_capacity = 512;
};

class Scraper {
 public:
  struct Series {
    metrics::MetricKind kind = metrics::MetricKind::kGauge;
    RingSeries ring;
  };

  explicit Scraper(metrics::Registry* registry, ScraperOptions options = {})
      : registry_(registry), options_(options) {}

  // Snapshots every registry metric (Collect(): counters, gauges,
  // callbacks, flattened histograms) at sim time `now`. Read-only with
  // respect to the simulation.
  void ScrapeOnce(Nanos now);

  // Records an externally computed sample (health rollups, SLO alert
  // counts) so derived signals live in the same archive as raw metrics.
  void Inject(const std::string& full_name, metrics::MetricKind kind,
              Nanos now, double value);

  const RingSeries* Find(const std::string& full_name) const;
  metrics::MetricKind KindOf(const std::string& full_name) const;

  // Sorted by full name (std::map order) — deterministic for exporters.
  const std::map<std::string, Series>& series() const { return series_; }
  std::vector<std::string> SeriesNames() const;

  int64_t scrape_count() const { return scrape_count_; }
  Nanos last_scrape_at() const { return last_scrape_at_; }
  const ScraperOptions& options() const { return options_; }
  metrics::Registry* registry() const { return registry_; }

 private:
  metrics::Registry* registry_;
  ScraperOptions options_;
  // Per-scrape sample buffer, reused so steady-state scrapes are
  // allocation-free (see Registry::CollectInto).
  std::vector<metrics::Registry::Sample> scratch_;
  std::map<std::string, Series> series_;
  int64_t scrape_count_ = 0;
  Nanos last_scrape_at_ = -1;
};

// Splits a full metric name "base{k=v,...}" into its base name and label
// map (empty map when unlabelled). Shared by the health model and the
// exporters.
struct ParsedName {
  std::string base;
  std::vector<std::pair<std::string, std::string>> labels;

  std::string LabelOr(const std::string& key, const std::string& fallback
                      = "") const;
};
ParsedName ParseSeriesName(const std::string& full_name);

}  // namespace repro::telemetry
