// Health rollups from scraped series.
//
// The HealthModel turns the per-host telemetry convention —
//   host.up{az=A,host=H}        gauge   1 while the host is alive
//   host.queue_ns{az=A,host=H}  gauge   worst internal queue backlog (ns)
//   host.ops{az=A,host=H}       counter requests served / submitted
//   host.errors{az=A,host=H}    counter unavailability-class failures
//   host.busy_ns{az=A,host=H}   counter busy time of the serving pools
//   host.work{az=A,host=H}      counter work items those pools completed
// — into a per-host -> per-AZ -> cluster health snapshot. Signals, in
// precedence order:
//   down        up gauge reads 0 (crashed / partitioned)   -> unavailable
//   error rate  errors/ops delta over the window            -> degraded or
//               (needs min_ops_for_error_rate so a single      unavailable
//               failure on an idle host does not flag it)
//   queue depth mean queue backlog over the window          -> degraded
//   grey-slow   mean service time per work item (busy_ns    -> degraded
//               delta / work delta) at least
//               grey_service_factor x the median of the
//               host's role peers. Queue depth misses a
//               grey host at low utilisation — a 10x-slowed
//               node with short queues drains them between
//               scrapes — but its per-item service time
//               inflates by the slowdown factor directly.
//   staleness   ops counter frozen AT A NONZERO VALUE while -> degraded
//               >= 2 peers of the same role made real
//               progress. Stall means progress *stopped*,
//               so prior progress is required: a host that
//               sticky clients simply never picked sits at
//               zero forever and is idle, not grey.
//
// Evaluation reads only scraped rings — it is deterministic and runs off
// the same telemetry tick as the scraper.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "telemetry/scraper.h"
#include "util/time.h"

namespace repro::telemetry {

enum class HealthState { kHealthy = 0, kDegraded = 1, kUnavailable = 2 };
const char* HealthStateName(HealthState s);

struct HealthConfig {
  // Signals are computed over the last `window_samples` scrape points.
  int window_samples = 5;
  // Mean queue backlog above this flags a host degraded (grey-slow).
  Nanos queue_depth_degraded = 50 * kMillisecond;
  // Error-rate thresholds over the window (errors delta / ops delta).
  double error_rate_degraded = 0.10;
  double error_rate_unavailable = 0.50;
  // Minimum ops delta in the window before the error rate is trusted.
  int64_t min_ops_for_error_rate = 20;
  bool staleness_enabled = true;
  // A staleness peer only counts as "progressing" at or above this ops
  // delta. Trickle traffic (durability probes, a draining queue) moves
  // counters by a handful of ops per window; one host missing its share
  // of that trickle is load imbalance, not grey failure.
  int64_t min_stale_peer_ops = 50;
  // Grey-slow (service-time) detector: flag a host whose mean busy time
  // per completed work item is >= factor x the median of its role peers.
  // The floor and the minimum work delta keep µs-scale jitter on
  // near-idle pools from flagging anyone.
  double grey_service_factor = 4.0;
  Nanos grey_service_floor = 50 * kMicrosecond;
  int64_t min_work_for_service = 20;
};

struct HostHealth {
  std::string host;
  std::string az;
  HealthState state = HealthState::kHealthy;
  std::string reason;  // "down", "error-rate 0.43", "queue 80.1ms", "stale", "ok"
  double error_rate = 0;
  double mean_queue_ns = 0;
  double ops_delta = 0;
  double ops_total = 0;  // latest scraped value of the ops counter
  // Mean busy ns per completed work item over the window; -1 when the
  // host exports no host.busy_ns/host.work pair or moved too little work.
  double service_ns = -1;
  // Host exports host.recovering and it reads 1: the process is back up
  // but replaying its redo log / resyncing from peers — degraded, not
  // dead (crash recovery, not an outage).
  bool recovering = false;
  // Host exports host.queue_ns (servers do, clients don't). Staleness is
  // only judged for such hosts: a client that legitimately stopped
  // submitting (probe / surge traffic) must not be called grey.
  bool has_queue = false;
};

struct HealthSnapshot {
  Nanos at = 0;
  std::vector<HostHealth> hosts;              // sorted by host name
  std::map<std::string, HealthState> az_state;  // az label -> rollup
  HealthState cluster = HealthState::kHealthy;

  const HostHealth* Find(const std::string& host) const;
  // Hosts currently not healthy, sorted — what an invariant checker
  // compares against the injected fault set.
  std::vector<std::string> UnhealthyHosts() const;
  std::string ToString() const;
};

class HealthModel {
 public:
  explicit HealthModel(HealthConfig config = {}) : config_(config) {}

  HealthSnapshot Evaluate(const Scraper& scraper, Nanos now) const;

  const HealthConfig& config() const { return config_; }

 private:
  HealthConfig config_;
};

}  // namespace repro::telemetry
