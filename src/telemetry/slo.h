// SLO burn-rate engine (multi-window, multi-burn-rate alerting).
//
// An objective is a good/total counter pair scraped into the telemetry
// archive — e.g. availability (requests that did not fail with an
// unavailability-class status) or latency (requests under the latency
// threshold) — plus a target fraction. The *burn rate* over a window is
//
//   burn = error_fraction(window) / error_budget,  budget = 1 - target
//
// so burn 1.0 consumes exactly the budget over the SLO period and
// burn 14.4 on a 99.9% target consumes a 30-day budget in ~2 days. Each
// rule pairs a short and a long window (the SRE workbook pattern): the
// long window keeps one transient spike from paging, the short window
// makes the alert *resolve* quickly once the error stops. An alert fires
// when BOTH windows exceed the rule's threshold and resolves when the
// short window drops back below it.
//
// Windows with no traffic yield "no data" (nullopt), never burn 0 — a
// cluster that stopped serving entirely must not look healthy. Alerts
// carry fired/resolved sim timestamps so benches and chaos invariants can
// assert detection latency against the injected fault schedule.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "telemetry/scraper.h"
#include "util/time.h"

namespace repro::telemetry {

struct BurnRule {
  std::string name;  // "fast", "slow"
  Nanos short_window = 5 * 60 * kSecond;
  Nanos long_window = 60 * 60 * kSecond;
  double threshold = 14.4;
};

struct SloConfig {
  std::vector<BurnRule> rules;

  // Google SRE workbook defaults for a 30-day, 99.9%-style objective:
  // fast = 5m/1h @ 14.4x, slow = 30m/6h @ 6x.
  static SloConfig Production();
  // The same rule shape compressed for sub-minute simulation runs (and
  // the chaos harness): every window divided by `divisor`.
  SloConfig ScaledDown(int64_t divisor) const;
};

struct SloObjective {
  std::string name;          // "availability", "latency"
  std::string total_series;  // full scraped name of the total counter
  std::string good_series;   // full scraped name of the good counter
  double target = 0.999;     // required good fraction
  std::vector<BurnRule> rules;
};

struct SloAlert {
  std::string objective;
  std::string rule;
  Nanos fired_at = -1;
  Nanos resolved_at = -1;  // -1 while still firing
  double burn_short_at_fire = 0;
  double burn_long_at_fire = 0;

  bool active() const { return resolved_at < 0; }
};

class SloEngine {
 public:
  void AddObjective(SloObjective objective) {
    objectives_.push_back(std::move(objective));
  }

  // Re-evaluates every (objective, rule) pair against the scraped series
  // at sim time `now`, firing and resolving alerts. Deterministic; call
  // from the telemetry tick after ScrapeOnce().
  void Evaluate(const Scraper& scraper, Nanos now);

  // All alerts ever fired, in firing order (resolved ones keep their
  // timestamps — this is the run's alert history).
  const std::vector<SloAlert>& alerts() const { return alerts_; }
  int active_alert_count() const;
  const std::vector<SloObjective>& objectives() const { return objectives_; }

  // Human-readable alert history for bench stdout / chaos reports.
  std::string Report() const;

  // Burn rate of the good/total pair over [now - window, now]; nullopt
  // when the series do not yet cover any of the window or no requests
  // landed in it (no data != zero burn).
  static std::optional<double> BurnRate(const RingSeries* total,
                                        const RingSeries* good, Nanos window,
                                        Nanos now, double target);

 private:
  std::vector<SloObjective> objectives_;
  std::vector<SloAlert> alerts_;
};

}  // namespace repro::telemetry
