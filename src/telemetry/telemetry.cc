#include "telemetry/telemetry.h"

namespace repro::telemetry {

Telemetry::Telemetry(Simulation& sim, metrics::Registry& registry,
                     TelemetryOptions options)
    : sim_(sim),
      options_(options),
      scraper_(&registry, options.scraper),
      health_model_(options.health) {
  if (options_.slo_enabled) {
    slo_.AddObjective({"availability", "slo.requests.total",
                       "slo.requests.good", options_.availability_target,
                       options_.slo.rules});
    slo_.AddObjective({"latency", "slo.latency.total", "slo.latency.good",
                       options_.latency_target, options_.slo.rules});
  }
}

void Telemetry::Start() {
  if (started_) return;
  started_ = true;
  tick_ = sim_.Every(options_.scraper.period, [this] { Tick(); });
}

void Telemetry::Stop() {
  if (!started_) return;
  started_ = false;
  tick_.Cancel();
}

void Telemetry::Tick() {
  const Nanos now = sim_.now();
  scraper_.ScrapeOnce(now);
  if (options_.slo_enabled) slo_.Evaluate(scraper_, now);
  last_health_ = health_model_.Evaluate(scraper_, now);
  ++ticks_;

  if (!options_.record_health_series) return;
  for (const auto& h : last_health_.hosts) {
    scraper_.Inject(
        "health.host" +
            metrics::Labels{{"az", h.az}, {"host", h.host}}.Encode(),
        metrics::MetricKind::kGauge, now,
        static_cast<double>(static_cast<int>(h.state)));
  }
  for (const auto& [az, state] : last_health_.az_state) {
    scraper_.Inject("health.az" + metrics::Labels{{"az", az}}.Encode(),
                    metrics::MetricKind::kGauge, now,
                    static_cast<double>(static_cast<int>(state)));
  }
  scraper_.Inject("health.cluster", metrics::MetricKind::kGauge, now,
                  static_cast<double>(static_cast<int>(last_health_.cluster)));
  scraper_.Inject("slo.active_alerts", metrics::MetricKind::kGauge, now,
                  static_cast<double>(slo_.active_alert_count()));
}

}  // namespace repro::telemetry
