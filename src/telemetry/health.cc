#include "telemetry/health.h"

#include <algorithm>
#include <cstdio>

namespace repro::telemetry {
namespace {

HealthState Worse(HealthState a, HealthState b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

// Role prefix of a host name: "nn-3" -> "nn", "ndb-dn-1" -> "ndb-dn".
// Hosts sharing a role are staleness peers for each other.
std::string RoleOf(const std::string& host) {
  const size_t dash = host.find_last_of('-');
  return dash == std::string::npos ? host : host.substr(0, dash);
}

// Change in a (counter) series over the last `window_samples` scrape
// points; negative means "not enough points to tell".
double DeltaOver(const RingSeries* ring, int window_samples) {
  if (ring == nullptr || ring->size() < 2) return -1;
  const size_t last = ring->size() - 1;
  const size_t base =
      last > static_cast<size_t>(window_samples) ? last - window_samples : 0;
  return ring->latest().v - ring->at(base).v;
}

double MeanOver(const RingSeries* ring, int window_samples) {
  if (ring == nullptr || ring->empty()) return 0;
  const size_t n = std::min(ring->size(), static_cast<size_t>(window_samples));
  double sum = 0;
  for (size_t i = ring->size() - n; i < ring->size(); ++i) sum += ring->at(i).v;
  return sum / static_cast<double>(n);
}

std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

}  // namespace

const char* HealthStateName(HealthState s) {
  switch (s) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kUnavailable: return "unavailable";
  }
  return "?";
}

const HostHealth* HealthSnapshot::Find(const std::string& host) const {
  for (const auto& h : hosts) {
    if (h.host == host) return &h;
  }
  return nullptr;
}

std::vector<std::string> HealthSnapshot::UnhealthyHosts() const {
  std::vector<std::string> out;
  for (const auto& h : hosts) {
    if (h.state != HealthState::kHealthy) out.push_back(h.host);
  }
  return out;
}

std::string HealthSnapshot::ToString() const {
  std::string out = "cluster=";
  out += HealthStateName(cluster);
  for (const auto& [az, state] : az_state) {
    out += " az" + az + "=" + HealthStateName(state);
  }
  bool any = false;
  for (const auto& h : hosts) {
    if (h.state == HealthState::kHealthy) continue;
    out += any ? ", " : " | ";
    out += h.host + "=" + HealthStateName(h.state) + "(" + h.reason + ")";
    any = true;
  }
  return out;
}

HealthSnapshot HealthModel::Evaluate(const Scraper& scraper, Nanos now) const {
  HealthSnapshot snap;
  snap.at = now;

  // Pass 1: find every host via its host.up series and compute the
  // per-host signal values.
  for (const auto& [name, series] : scraper.series()) {
    const ParsedName parsed = ParseSeriesName(name);
    if (parsed.base != "host.up" || series.ring.empty()) continue;
    const std::string suffix = name.substr(parsed.base.size());

    HostHealth h;
    h.host = parsed.LabelOr("host", "?");
    h.az = parsed.LabelOr("az", "?");
    const bool up = series.ring.latest().v > 0.5;

    const RingSeries* ops = scraper.Find("host.ops" + suffix);
    const RingSeries* errors = scraper.Find("host.errors" + suffix);
    const RingSeries* queue = scraper.Find("host.queue_ns" + suffix);
    const RingSeries* recovering = scraper.Find("host.recovering" + suffix);
    h.recovering = recovering != nullptr && !recovering->empty() &&
                   recovering->latest().v > 0.5;
    h.has_queue = queue != nullptr;
    h.ops_delta = DeltaOver(ops, config_.window_samples);
    if (ops != nullptr && !ops->empty()) h.ops_total = ops->latest().v;
    h.mean_queue_ns = MeanOver(queue, config_.window_samples);
    const double err_delta = DeltaOver(errors, config_.window_samples);
    if (h.ops_delta >= config_.min_ops_for_error_rate && err_delta > 0) {
      h.error_rate = err_delta / h.ops_delta;
    }
    const double busy_delta =
        DeltaOver(scraper.Find("host.busy_ns" + suffix),
                  config_.window_samples);
    const double work_delta =
        DeltaOver(scraper.Find("host.work" + suffix), config_.window_samples);
    if (busy_delta >= 0 &&
        work_delta >= static_cast<double>(config_.min_work_for_service)) {
      h.service_ns = busy_delta / work_delta;
    }

    if (!up) {
      h.state = HealthState::kUnavailable;
      h.reason = "down";
    } else if (h.recovering) {
      h.state = HealthState::kDegraded;
      h.reason = "recovering";
    } else if (h.error_rate >= config_.error_rate_unavailable) {
      h.state = HealthState::kUnavailable;
      h.reason = "error-rate " + Fmt("%.2f", h.error_rate);
    } else if (h.error_rate >= config_.error_rate_degraded) {
      h.state = HealthState::kDegraded;
      h.reason = "error-rate " + Fmt("%.2f", h.error_rate);
    } else if (h.mean_queue_ns >= static_cast<double>(config_.queue_depth_degraded)) {
      h.state = HealthState::kDegraded;
      h.reason = "queue " + Fmt("%.1fms", h.mean_queue_ns / 1e6);
    } else {
      h.reason = "ok";
    }
    snap.hosts.push_back(std::move(h));
  }
  std::sort(snap.hosts.begin(), snap.hosts.end(),
            [](const HostHealth& a, const HostHealth& b) {
              return a.host < b.host;
            });

  // Pass 2: peer-relative grey-slow. A host whose mean service time per
  // work item is a multiple of its role peers' median is CPU/disk
  // degraded even if its queues drain between scrapes (low utilisation
  // hides a grey host from the queue-depth signal entirely).
  for (auto& h : snap.hosts) {
    if (h.state != HealthState::kHealthy || h.service_ns < 0) continue;
    std::vector<double> peers;
    for (const auto& peer : snap.hosts) {
      if (peer.host == h.host || RoleOf(peer.host) != RoleOf(h.host) ||
          peer.service_ns < 0 ||
          peer.state == HealthState::kUnavailable) {
        continue;
      }
      peers.push_back(peer.service_ns);
    }
    if (peers.size() < 2) continue;
    std::nth_element(peers.begin(), peers.begin() + peers.size() / 2,
                     peers.end());
    const double median = peers[peers.size() / 2];
    if (h.service_ns >= config_.grey_service_factor * median &&
        h.service_ns >= static_cast<double>(config_.grey_service_floor)) {
      h.state = HealthState::kDegraded;
      h.reason = "grey-slow " + Fmt("%.2f", h.service_ns / 1e3) + "us/op";
    }
  }

  // Pass 3: peer-relative staleness. A host whose ops counter froze — at
  // a nonzero value, so it demonstrably served before — while >= 2 peers
  // of the same role made real progress is grey-failed even though it
  // still heartbeats. Peer-relative, so a uniformly idle role never
  // flags; the prior-progress gate spares hosts that sticky clients
  // simply never picked (load imbalance, not grey failure); the per-peer
  // ops floor keeps trickle traffic (probes) from electing
  // "progressing" peers.
  if (config_.staleness_enabled) {
    for (auto& h : snap.hosts) {
      if (h.state != HealthState::kHealthy || h.ops_delta != 0 ||
          h.ops_total <= 0 || !h.has_queue) {
        continue;
      }
      int progressing_peers = 0;
      bool stalled_peer = false;
      for (const auto& peer : snap.hosts) {
        if (peer.host == h.host || RoleOf(peer.host) != RoleOf(h.host) ||
            peer.state == HealthState::kUnavailable) {
          continue;
        }
        if (peer.ops_delta >= static_cast<double>(config_.min_stale_peer_ops)) {
          ++progressing_peers;
        } else if (peer.ops_delta == 0) {
          stalled_peer = true;
        }
      }
      if (progressing_peers >= 2 && !stalled_peer) {
        h.state = HealthState::kDegraded;
        h.reason = "stale";
      }
    }
  }

  // Pass 4: rollups. An AZ is unavailable when at least half its hosts
  // are, degraded when any host is unhealthy; the cluster is unavailable
  // when a majority of AZs are, degraded when any AZ is unhealthy.
  std::map<std::string, std::pair<int, int>> az_counts;  // az -> (total, unavailable)
  std::map<std::string, HealthState> az_worst;
  for (const auto& h : snap.hosts) {
    auto& [total, unavail] = az_counts[h.az];
    ++total;
    if (h.state == HealthState::kUnavailable) ++unavail;
    auto [it, fresh] = az_worst.emplace(h.az, h.state);
    if (!fresh) it->second = Worse(it->second, h.state);
  }
  int azs_unavailable = 0;
  for (const auto& [az, counts] : az_counts) {
    HealthState s = az_worst[az] == HealthState::kHealthy
                        ? HealthState::kHealthy
                        : HealthState::kDegraded;
    if (counts.second * 2 >= counts.first && counts.second > 0) {
      s = HealthState::kUnavailable;
      ++azs_unavailable;
    }
    snap.az_state[az] = s;
    snap.cluster = Worse(snap.cluster, s == HealthState::kUnavailable
                                           ? HealthState::kDegraded
                                           : s);
  }
  if (azs_unavailable * 2 > static_cast<int>(snap.az_state.size())) {
    snap.cluster = HealthState::kUnavailable;
  }
  return snap;
}

}  // namespace repro::telemetry
