// Telemetry bundle: one periodic sim-time tick driving scrape ->
// SLO evaluation -> health rollup for a whole deployment.
//
// Determinism contract: the tick draws no RNG and sends no simulated
// messages — it only reads registry state (hot-path counters plus the
// callback metrics components registered) and appends to telemetry-local
// rings. Extra tick events shift engine sequence numbers monotonically,
// never the relative order of protocol events, so a run produces
// byte-identical results with telemetry enabled or disabled
// (telemetry_test pins this with a chaos-harness trace comparison).
#pragma once

#include "sim/engine.h"
#include "telemetry/health.h"
#include "telemetry/scraper.h"
#include "telemetry/slo.h"

namespace repro::telemetry {

struct TelemetryOptions {
  bool enabled = false;
  ScraperOptions scraper;
  HealthConfig health;

  // SLO objectives are auto-registered against the client-side counters
  // (slo.requests.* / slo.latency.*) using these targets.
  bool slo_enabled = true;
  double availability_target = 0.999;
  double latency_target = 0.99;
  SloConfig slo = SloConfig::Production();

  // Also inject derived health/alert series into the scrape archive
  // (health.host{...}, health.az{...}, health.cluster, slo.active_alerts)
  // so exported artifacts carry the rollups alongside raw metrics.
  bool record_health_series = true;
};

class Telemetry {
 public:
  Telemetry(Simulation& sim, metrics::Registry& registry,
            TelemetryOptions options);

  // Starts the periodic scrape/evaluate tick (no-op when already started).
  void Start();
  void Stop();

  // One scrape + SLO + health evaluation at sim.now(). Start() drives
  // this; benches may call it directly for a final end-of-run sample.
  void Tick();

  Scraper& scraper() { return scraper_; }
  const Scraper& scraper() const { return scraper_; }
  SloEngine& slo() { return slo_; }
  const SloEngine& slo() const { return slo_; }
  const HealthModel& health_model() const { return health_model_; }
  // Rollup from the most recent tick.
  const HealthSnapshot& health() const { return last_health_; }
  const TelemetryOptions& options() const { return options_; }
  int64_t ticks() const { return ticks_; }

 private:
  Simulation& sim_;
  TelemetryOptions options_;
  Scraper scraper_;
  HealthModel health_model_;
  SloEngine slo_;
  HealthSnapshot last_health_;
  Simulation::PeriodicHandle tick_;
  bool started_ = false;
  int64_t ticks_ = 0;
};

}  // namespace repro::telemetry
