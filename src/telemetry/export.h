// Telemetry exporters: Prometheus text exposition, JSON scrape archive,
// and per-run CSV artifacts under bench_out/.
#pragma once

#include <string>

#include "metrics/counters.h"
#include "telemetry/scraper.h"

namespace repro::telemetry {

// Prometheus text exposition format (version 0.0.4) of the registry's
// current state: dotted names become underscore-separated, labels are
// rendered as {k="v"}, histograms expand to _bucket/_sum/_count with an
// le="+Inf" terminal bucket, and each family gets a # TYPE line.
std::string PrometheusText(const metrics::Registry& registry);

// Full scrape archive as JSON: every series with its kind and
// [time_seconds, value] points, sorted by name (deterministic).
std::string ScrapeArchiveJson(const Scraper& scraper);

// Scrape archive as a wide CSV: one row per scrape tick, one column per
// series (blank cells before a series first appeared). Returns false on
// I/O failure.
bool WriteScrapeCsv(const std::string& path, const Scraper& scraper);

// Small helper for dropping exposition/JSON artifacts next to the CSVs.
bool WriteTextFile(const std::string& path, const std::string& content);

}  // namespace repro::telemetry
