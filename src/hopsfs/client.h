// HopsFS client library.
//
// Clients pick one metadata server and stick to it until it fails
// (§II-A2). With AZ awareness (§IV-B3) the client fetches the active-NN
// list — which carries each NN's locationDomainId via the extended leader
// election — from a seed namenode and prefers a namenode in its own AZ,
// falling back to a random one. Large-file data flows through the block
// layer: writes run a replication pipeline, reads pick the AZ-closest
// replica (§IV-C).
//
// Overload protection (src/resilience/): every op carries an absolute
// deadline; retries draw from a token-bucket retry budget instead of
// retrying unboundedly; a per-NN circuit breaker evicts grey-slow
// namenodes from rotation (AZ-local first, cross-AZ fallback); server
// sheds (OVERLOADED) are retried against a different NN under the same
// budget; and read-only ops can hedge to a second NN past a latency
// percentile threshold, first response wins.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "blocks/datanode.h"
#include "hopsfs/namenode.h"
#include "metrics/counters.h"
#include "resilience/circuit_breaker.h"
#include "resilience/latency_tracker.h"
#include "resilience/retry_budget.h"
#include "sim/network.h"
#include "util/rng.h"

namespace repro::hopsfs {

struct ClientConfig {
  bool az_aware = true;
  Nanos rpc_timeout = 5 * kSecond;
  int max_rpc_attempts = 4;
  int64_t request_bytes = 280;
  int64_t reply_base_bytes = 220;

  // Default absolute deadline stamped on each op at Submit (0 = none).
  // Far above healthy latencies: it only binds when the system is in
  // real trouble, converting doomed work into fast failures.
  Nanos op_deadline = 30 * kSecond;

  // Token-bucket retry budget (≈10% of request rate by default).
  bool retry_budget_enabled = true;
  resilience::RetryBudgetConfig retry_budget;

  // Per-NN circuit breaker.
  bool breaker_enabled = true;
  int breaker_failure_threshold = 3;
  Nanos breaker_open_interval = 2 * kSecond;

  // Failover re-pick jitter: spreads the stampede when a popular NN dies
  // (all its clients would otherwise re-pick at the same instant).
  Nanos failover_jitter = 50 * kMillisecond;

  // Hedged reads to a second namenode (off by default: hedging perturbs
  // traffic-shape experiments; benches opt in).
  bool hedged_reads = false;
  double hedge_percentile = 0.95;
  Nanos hedge_min_delay = 1 * kMillisecond;

  // Latency-SLO threshold: a completed op slower than this counts against
  // the latency objective (recorded into the shared slo.latency.*
  // counters the telemetry SLO engine consumes).
  Nanos slo_latency_threshold = 100 * kMillisecond;

  // Optional resilience counter registry (shared per deployment).
  metrics::Registry* metrics = nullptr;
};

class HopsFsClient {
 public:
  HopsFsClient(Simulation& sim, Network& network,
               std::vector<Namenode*> namenodes, HostId host, AzId az,
               blocks::DnRegistry* dn_registry = nullptr,
               ClientConfig config = {});

  HostId host() const { return host_; }
  AzId az() const { return az_; }
  Namenode* current_nn() const { return nn_; }

  // Identity attached to every request (empty = superuser).
  void set_user(std::string user) { user_ = std::move(user); }
  const std::string& user() const { return user_; }

  // Full-result entry point (includes RPC retry / failover).
  void Submit(FsRequest req, FsResultCb cb);

  // Deadline-safety audit: number of times a *successful* completion
  // arrived after this op had already reported DEADLINE_EXCEEDED to the
  // caller. Must stay zero — the chaos harness asserts it as an
  // invariant.
  int64_t post_deadline_successes() const { return post_deadline_successes_; }

  // Ops submitted through Submit() — the telemetry scraper polls this as
  // the client host's progress counter.
  int64_t ops_submitted() const { return ops_submitted_; }

  const resilience::RetryBudget& retry_budget() const { return budget_; }

  // Convenience wrappers. Data movement for large files (block pipeline
  // writes / AZ-local replica reads) is included in the callback time.
  using StatusCb = std::function<void(Status)>;
  void Mkdir(const std::string& path, StatusCb cb);
  void Create(const std::string& path, int64_t size, StatusCb cb);
  void ReadFile(const std::string& path, StatusCb cb);
  void Stat(const std::string& path, StatusCb cb);
  void Delete(const std::string& path, StatusCb cb);
  void ListDir(const std::string& path, StatusCb cb);
  void Rename(const std::string& from, const std::string& to, StatusCb cb);
  void Chmod(const std::string& path, uint32_t permissions, StatusCb cb);
  void Chown(const std::string& path, const std::string& owner, StatusCb cb);
  void SetTimes(const std::string& path, Nanos mtime, StatusCb cb);
  void Append(const std::string& path, int64_t bytes, StatusCb cb);
  void DeleteRecursive(const std::string& path, StatusCb cb);
  // cb(status, files, dirs, bytes)
  using SummaryCb =
      std::function<void(Status, int64_t, int64_t, int64_t)>;
  void ContentSummary(const std::string& path, SummaryCb cb);

 private:
  // One client operation across all its attempts and hedges.
  struct OpState {
    FsRequest req;
    FsResultCb cb;
    int attempt = 1;
    Nanos start = 0;
    bool done = false;    // first completion wins; later ones are dropped
    bool hedge_sent = false;
    bool reported_deadline_exceeded = false;
    trace::SpanId span = 0;  // root span of the op's trace (0 = unsampled)
  };
  using OpPtr = std::shared_ptr<OpState>;

  void StartAttempt(OpPtr op);
  void SendToNn(OpPtr op, Namenode* nn, bool is_hedge);
  void MaybeHedge(OpPtr op, Namenode* primary_nn);
  void RetryAfterFailure(OpPtr op, Status give_up_status);
  void Deliver(OpPtr op, FsResult result, bool is_hedge);
  void HandleLargeFileIo(OpPtr op, FsResult result);
  void PickNamenode(trace::SpanId span, std::function<void()> then);
  resilience::CircuitBreaker* breaker(const Namenode* nn);
  void NoteBreaker(resilience::CircuitBreaker* b,
                   const std::function<void()>& update);

  Simulation& sim_;
  Network& network_;
  std::vector<Namenode*> namenodes_;  // indexed by nn id
  HostId host_;
  AzId az_;
  blocks::DnRegistry* dn_registry_;
  ClientConfig config_;
  Rng rng_;

  Namenode* nn_ = nullptr;
  std::string user_;
  uint64_t next_rpc_id_ = 1;
  std::unordered_map<uint64_t, bool> rpc_done_;  // id -> answered

  // Resilience state.
  resilience::RetryBudget budget_;
  std::vector<resilience::CircuitBreaker> breakers_;  // indexed by nn id
  resilience::LatencyTracker latency_;
  int32_t last_failed_nn_ = -1;  // excluded from the immediate re-pick
  int64_t post_deadline_successes_ = 0;
  int64_t ops_submitted_ = 0;

  metrics::Counter* ctr_retries_ = nullptr;
  metrics::Counter* ctr_budget_denied_ = nullptr;
  metrics::Counter* ctr_breaker_transitions_ = nullptr;
  metrics::Counter* ctr_hedges_ = nullptr;
  metrics::Counter* ctr_hedge_wins_ = nullptr;
  metrics::Counter* ctr_deadline_ = nullptr;
  metrics::Counter* ctr_shed_seen_ = nullptr;
  // Cluster-wide SLO counters (shared across clients; the SLO engine
  // evaluates burn rates over their scraped series).
  metrics::Counter* ctr_slo_total_ = nullptr;
  metrics::Counter* ctr_slo_good_ = nullptr;
  metrics::Counter* ctr_slo_latency_total_ = nullptr;
  metrics::Counter* ctr_slo_latency_good_ = nullptr;
  metrics::HistogramMetric* hist_latency_ = nullptr;
};

}  // namespace repro::hopsfs
