// HopsFS client library.
//
// Clients pick one metadata server and stick to it until it fails
// (§II-A2). With AZ awareness (§IV-B3) the client fetches the active-NN
// list — which carries each NN's locationDomainId via the extended leader
// election — from a seed namenode and prefers a namenode in its own AZ,
// falling back to a random one. Large-file data flows through the block
// layer: writes run a replication pipeline, reads pick the AZ-closest
// replica (§IV-C).
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "blocks/datanode.h"
#include "hopsfs/namenode.h"
#include "sim/network.h"
#include "util/rng.h"

namespace repro::hopsfs {

struct ClientConfig {
  bool az_aware = true;
  Nanos rpc_timeout = 5 * kSecond;
  int max_rpc_attempts = 4;
  int64_t request_bytes = 280;
  int64_t reply_base_bytes = 220;
};

class HopsFsClient {
 public:
  HopsFsClient(Simulation& sim, Network& network,
               std::vector<Namenode*> namenodes, HostId host, AzId az,
               blocks::DnRegistry* dn_registry = nullptr,
               ClientConfig config = {});

  HostId host() const { return host_; }
  AzId az() const { return az_; }
  Namenode* current_nn() const { return nn_; }

  // Identity attached to every request (empty = superuser).
  void set_user(std::string user) { user_ = std::move(user); }
  const std::string& user() const { return user_; }

  // Full-result entry point (includes RPC retry / failover).
  void Submit(FsRequest req, FsResultCb cb);

  // Convenience wrappers. Data movement for large files (block pipeline
  // writes / AZ-local replica reads) is included in the callback time.
  using StatusCb = std::function<void(Status)>;
  void Mkdir(const std::string& path, StatusCb cb);
  void Create(const std::string& path, int64_t size, StatusCb cb);
  void ReadFile(const std::string& path, StatusCb cb);
  void Stat(const std::string& path, StatusCb cb);
  void Delete(const std::string& path, StatusCb cb);
  void ListDir(const std::string& path, StatusCb cb);
  void Rename(const std::string& from, const std::string& to, StatusCb cb);
  void Chmod(const std::string& path, uint32_t permissions, StatusCb cb);
  void Chown(const std::string& path, const std::string& owner, StatusCb cb);
  void SetTimes(const std::string& path, Nanos mtime, StatusCb cb);
  void Append(const std::string& path, int64_t bytes, StatusCb cb);
  void DeleteRecursive(const std::string& path, StatusCb cb);
  // cb(status, files, dirs, bytes)
  using SummaryCb =
      std::function<void(Status, int64_t, int64_t, int64_t)>;
  void ContentSummary(const std::string& path, SummaryCb cb);

 private:
  void PickNamenode(std::function<void()> then);
  void SendRpc(FsRequest req, FsResultCb cb, int attempt);
  void HandleLargeFileIo(FsResult result, FsResultCb cb);

  Simulation& sim_;
  Network& network_;
  std::vector<Namenode*> namenodes_;  // indexed by nn id
  HostId host_;
  AzId az_;
  blocks::DnRegistry* dn_registry_;
  ClientConfig config_;
  Rng rng_;

  Namenode* nn_ = nullptr;
  std::string user_;
  uint64_t next_rpc_id_ = 1;
  std::unordered_map<uint64_t, bool> rpc_done_;  // id -> answered
};

}  // namespace repro::hopsfs
