// Per-operation context shared by the namenode's transaction state
// machines (namenode.cc / namenode_ops.cc).
#pragma once

#include <memory>
#include <string>

#include "hopsfs/namenode.h"

namespace repro::hopsfs {

// HDFS-style access check, reduced to owner/other classes (no groups).
// An empty user is the superuser. `want` is a POSIX permission bit mask
// evaluated against the owner triplet when the user owns the inode, the
// "other" triplet otherwise.
inline bool HasAccess(const InodeRow& inode, const std::string& user,
                      uint32_t want) {
  if (user.empty()) return true;  // superuser
  const uint32_t perms = inode.permissions;
  const uint32_t bits = user == inode.owner ? (perms >> 6) : perms;
  return (bits & want) == want;
}

constexpr uint32_t kRead = 04;
constexpr uint32_t kWrite = 02;

struct Namenode::OpCtx {
  FsRequest req;
  FsResultCb done;
  int attempt = 0;
  ndb::TxnId txn = 0;
  bool used_cache = false;      // this attempt relied on the path cache
  bool cache_retry_done = false;
  bool admitted = false;        // holds an admission-limiter slot
  Nanos admit_time = 0;         // when the slot was acquired
  trace::SpanId txn_span = 0;   // current transaction attempt's span

  // Filled by path resolution (parent directory of the target).
  InodeId dir = 0;
  std::string dir_row_key;      // row key of the parent directory inode
  std::string base;             // final path component

  // Rename: destination parent.
  InodeId dst_dir = 0;
  std::string dst_dir_row_key;
  std::string dst_base;
};

}  // namespace repro::hopsfs
