// Per-operation context shared by the namenode's transaction state
// machines (namenode.cc / namenode_ops.cc).
#pragma once

#include <charconv>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "hopsfs/namenode.h"

namespace repro::hopsfs {

// HDFS-style access check, reduced to owner/other classes (no groups).
// An empty user is the superuser. `want` is a POSIX permission bit mask
// evaluated against the owner triplet when the user owns the inode, the
// "other" triplet otherwise.
inline bool HasAccess(const InodeRow& inode, const std::string& user,
                      uint32_t want) {
  if (user.empty()) return true;  // superuser
  const uint32_t perms = inode.permissions;
  const uint32_t bits = user == inode.owner ? (perms >> 6) : perms;
  return (bits & want) == want;
}

constexpr uint32_t kRead = 04;
constexpr uint32_t kWrite = 02;

// Bump arena backing OpCtx's string_view fields: row keys and path
// slices live here instead of in per-field std::strings, so the dispatch
// hot path stops paying one heap allocation per component. The inline
// block covers every key of a typical operation; oversized interns spill
// to exact-size heap chunks freed on Reset. Reset runs at the top of
// each attempt — safe because every NDB op of attempt N resolves (reply
// or timeout) before MaybeRetry schedules attempt N+1, so no stale
// callback can read a recycled view.
class OpArena {
 public:
  char* Alloc(size_t n) {
    if (kInline - used_ >= n) {
      char* p = buf_ + used_;
      used_ += n;
      return p;
    }
    overflow_.push_back(std::make_unique<char[]>(n));
    return overflow_.back().get();
  }

  std::string_view Intern(std::string_view s) {
    if (s.empty()) return {};
    char* p = Alloc(s.size());
    std::memcpy(p, s.data(), s.size());
    return {p, s.size()};
  }

  // "parent/name" inode row key (fsschema InodeKey) built in the arena.
  std::string_view InodeKeyIn(InodeId parent, std::string_view name) {
    char digits[24];
    auto [dend, ec] = std::to_chars(digits, digits + sizeof(digits), parent);
    (void)ec;
    const size_t id_len = static_cast<size_t>(dend - digits);
    char* p = Alloc(id_len + 1 + name.size());
    std::memcpy(p, digits, id_len);
    p[id_len] = '/';
    if (!name.empty()) std::memcpy(p + id_len + 1, name.data(), name.size());
    return {p, id_len + 1 + name.size()};
  }

  void Reset() {
    used_ = 0;
    overflow_.clear();
  }

 private:
  static constexpr size_t kInline = 512;
  size_t used_ = 0;
  char buf_[kInline];
  std::vector<std::unique_ptr<char[]>> overflow_;
};

struct Namenode::OpCtx {
  FsRequest req;
  FsResultCb done;
  int attempt = 0;
  ndb::TxnId txn = 0;
  bool used_cache = false;      // this attempt relied on the path cache
  bool cache_retry_done = false;
  bool admitted = false;        // holds an admission-limiter slot
  Nanos admit_time = 0;         // when the slot was acquired
  trace::SpanId txn_span = 0;   // current transaction attempt's span

  // Backing store for the views below; reset per attempt.
  OpArena arena;

  // Filled by path resolution (parent directory of the target). The
  // views point into `req` or `arena`, both of which outlive every
  // callback of the attempt that wrote them.
  InodeId dir = 0;
  std::string_view dir_row_key;  // row key of the parent directory inode
  std::string_view base;         // final path component

  // Rename: destination parent.
  InodeId dst_dir = 0;
  std::string_view dst_dir_row_key;
  std::string_view dst_base;
};

}  // namespace repro::hopsfs
