// Deployment builder: wires a full HopsFS / HopsFS-CL cluster.
//
// Encodes the evaluation's setup naming: "System (metadata-replication,
// #AZs)" — e.g. HopsFS (2,1) is vanilla HopsFS in one AZ with NDB
// replication 2; HopsFS-CL (3,3) is the AZ-aware system over three AZs
// with replication 3 (Figs. 3 & 4). The AZ placements follow the paper:
// 1-AZ setups live in us-west1-b (AZ 1); the (2,3) layouts put NDB and
// NNs in AZs 1,2 with the arbitrator in AZ 0; the (3,3) layouts use all
// three AZs. Clients always span all three AZs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "blocks/datanode.h"
#include "blocks/placement.h"
#include "hopsfs/client.h"
#include "hopsfs/fsschema.h"
#include "hopsfs/namenode.h"
#include "metrics/counters.h"
#include "ndb/cluster.h"
#include "sim/network.h"
#include "sim/topology.h"
#include "telemetry/telemetry.h"

namespace repro::hopsfs {

enum class PaperSetup {
  kHopsFs_2_1,
  kHopsFs_3_1,
  kHopsFs_2_3,
  kHopsFs_3_3,
  kHopsFsCl_2_3,
  kHopsFsCl_3_3,
};
const char* PaperSetupName(PaperSetup setup);

struct DeploymentOptions {
  std::string name = "HopsFS";
  int num_namenodes = 6;
  int ndb_datanodes = 12;
  int metadata_replication = 2;
  std::vector<AzId> ndb_azs = {1};
  std::vector<AzId> nn_azs = {1};
  std::vector<AzId> client_azs = {0, 1, 2};
  bool az_aware = false;  // the full HopsFS-CL feature set
  // Ablation overrides (-1 = follow az_aware): each corresponds to one
  // AZ-awareness mechanism of §IV.
  int override_read_backup = -1;        // Read Backup tables + delayed ack
  int override_az_tc_selection = -1;    // AZ-aware TC choice & read routing
  int override_az_nn_selection = -1;    // clients prefer AZ-local NNs
  int block_datanodes = 0;
  bool az_aware_block_placement = false;
  NamenodeConfig nn;
  ndb::NdbNodeConfig ndb_node;
  ndb::CostModel ndb_cost;
  NetworkConfig net;
  int ndb_partitions_per_ldm = 2;

  // Overload-protection stack (bench_overload's "pre-PR" baseline turns
  // this off to demonstrate congestion collapse). Individual knobs live
  // in `nn` / `client`; this master switch disables deadlines, retry
  // budgets, breakers and admission control together.
  bool resilience = true;
  // Base ClientConfig applied by AddClient (az_aware is still derived
  // from the setup's override flags).
  ClientConfig client;

  // Cluster telemetry: scraped time-series, health rollups and SLO
  // burn-rate alerting (off by default; the scrape tick is read-only, so
  // enabling it cannot change simulation results).
  telemetry::TelemetryOptions telemetry;

  static DeploymentOptions FromPaperSetup(PaperSetup setup,
                                          int num_namenodes);
};

class Deployment {
 public:
  Deployment(Simulation& sim, DeploymentOptions options);
  ~Deployment();

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  // Starts NDB protocols, namenode leader election and DN heartbeats,
  // then runs the simulation briefly so a leader exists.
  void Start();

  // Creates a client host in `az` (kNoAz: round-robin over client_azs).
  HopsFsClient* AddClient(AzId az = kNoAz);

  // Bulk-loads a namespace (directories first, then empty files) directly
  // into NDB, bypassing the protocol. For experiment setup only.
  void BootstrapNamespace(const std::vector<std::string>& dirs,
                          const std::vector<std::string>& files);

  Simulation& sim() { return sim_; }
  Topology& topology() { return *topology_; }
  Network& network() { return *network_; }
  ndb::NdbCluster& ndb() { return *ndb_; }
  const FsTables& tables() const { return tables_; }
  blocks::DnRegistry* dn_registry() { return dn_registry_.get(); }

  const std::vector<std::unique_ptr<Namenode>>& namenodes() const {
    return namenodes_;
  }
  Namenode* namenode(int i) { return namenodes_[i].get(); }
  Namenode* leader();
  const std::vector<std::unique_ptr<blocks::BlockDatanode>>& block_dns()
      const {
    return block_dns_;
  }
  const std::vector<std::unique_ptr<HopsFsClient>>& clients() const {
    return clients_;
  }
  const DeploymentOptions& options() const { return options_; }

  // Shared resilience counter registry (sheds, retries, breaker
  // transitions, hedges, deadline-exceeded per layer).
  metrics::Registry& metrics() { return metrics_; }

  // Telemetry pipeline (nullptr unless options.telemetry.enabled).
  telemetry::Telemetry* telemetry() { return telemetry_.get(); }

  void ResetStats();

 private:
  // Registers the per-host callback metrics (host.up / host.queue_ns /
  // host.ops and the NDB protocol series) that the scraper snapshots.
  void RegisterHostTelemetry();
  void RegisterClientTelemetry(HopsFsClient* client);
  Simulation& sim_;
  DeploymentOptions options_;
  metrics::Registry metrics_;
  std::unique_ptr<Topology> topology_;
  std::unique_ptr<Network> network_;
  ndb::Catalog catalog_;
  FsTables tables_;
  std::unique_ptr<ndb::NdbCluster> ndb_;
  std::unique_ptr<blocks::DnRegistry> dn_registry_;
  std::unique_ptr<blocks::BlockPlacementPolicy> placement_;
  std::vector<std::unique_ptr<blocks::BlockDatanode>> block_dns_;
  std::vector<std::unique_ptr<Namenode>> namenodes_;
  std::vector<std::unique_ptr<HopsFsClient>> clients_;
  std::unique_ptr<telemetry::Telemetry> telemetry_;
  std::vector<Simulation::PeriodicHandle> timers_;
  int next_client_az_ = 0;
  uint64_t next_inode_id_ = 1000;
};

}  // namespace repro::hopsfs
