#include "hopsfs/namenode.h"

#include <algorithm>
#include <cassert>

#include "hopsfs/op_context.h"
#include "prof/profiler.h"
#include "resilience/deadline.h"
#include "util/logging.h"
#include "util/strings.h"

namespace repro::hopsfs {

namespace {
constexpr const char* kLog = "hopsfs.nn";
}

const char* FsOpName(FsOp op) {
  switch (op) {
    case FsOp::kMkdir: return "mkdir";
    case FsOp::kCreate: return "createFile";
    case FsOp::kOpenRead: return "readFile";
    case FsOp::kStat: return "stat";
    case FsOp::kDelete: return "deleteFile";
    case FsOp::kListDir: return "listDir";
    case FsOp::kRename: return "rename";
    case FsOp::kChmod: return "chmod";
    case FsOp::kChown: return "chown";
    case FsOp::kSetTimes: return "setTimes";
    case FsOp::kAppend: return "append";
    case FsOp::kContentSummary: return "contentSummary";
    case FsOp::kDeleteRecursive: return "deleteSubtree";
  }
  return "?";
}

Namenode::Namenode(Simulation& sim, Network& network, ndb::NdbCluster& ndb,
                   const FsTables& tables, int32_t nn_id, HostId host,
                   AzId az, blocks::DnRegistry* dn_registry,
                   blocks::BlockPlacementPolicy* placement,
                   NamenodeConfig config)
    : sim_(sim), network_(network), ndb_(ndb), tables_(tables),
      nn_id_(nn_id), host_(host), az_(az), dn_registry_(dn_registry),
      placement_(placement), config_(config),
      rng_(sim.rng().Split()),
      limiter_(resilience::AimdLimiterConfig{
          config.admission_min_limit, config.admission_max_limit,
          config.admission_initial_limit, config.admission_latency_target,
          /*backoff_ratio=*/0.9, /*increase_per_ok=*/0.25,
          config.admission_decrease_cooldown}) {
  cpu_ = std::make_unique<ThreadPool>(sim, StrFormat("nn%d.cpu", nn_id),
                                      config_.cpu_threads);
  api_ = std::make_unique<ndb::NdbApiNode>(ndb, host, az);
  if (config_.ndb_hedge_delay > 0) {
    api_->set_hedge_read_delay(config_.ndb_hedge_delay);
  }
  if (config_.metrics != nullptr) {
    ctr_shed_ = config_.metrics->GetCounter("hopsfs.nn.admission_shed");
    ctr_deadline_ = config_.metrics->GetCounter("hopsfs.nn.deadline_exceeded");
    ctr_txn_retries_ = config_.metrics->GetCounter("hopsfs.nn.txn_retries");
    api_->set_counters(
        config_.metrics->GetCounter("ndb.api.hedges_sent"),
        config_.metrics->GetCounter("ndb.api.hedge_wins"),
        config_.metrics->GetCounter("ndb.api.deadline_exceeded"));
    // Per-host unavailability-error counter: the health model's
    // error-rate signal (scraped alongside the host.up / host.queue_ns /
    // host.ops callbacks the deployment registers).
    ctr_host_errors_ = config_.metrics->GetCounter(
        "host.errors",
        metrics::Labels{{"az", std::to_string(az)},
                        {"host", network.topology().name_of(host)}});
  }
  if (dn_registry_ != nullptr) {
    dn_known_dead_.assign(dn_registry_->size(), false);
  }
}

void Namenode::Crash() {
  alive_ = false;
  network_.topology().SetHostUp(host_, false);
  Stop();
}

void Namenode::Start() {
  // Stagger the election rounds across namenodes: synchronised rounds
  // would race every scan against every heartbeat write and make the
  // membership view flap.
  const Nanos phase =
      static_cast<Nanos>(rng_.NextBelow(
          static_cast<uint64_t>(config_.leader_interval)));
  LeaderElectionRound();  // have a leader quickly after start-up
  sim_.After(phase, [this] {
    if (!alive_) return;
    LeaderElectionRound();
    le_timer_ = sim_.Every(config_.leader_interval, [this] {
      if (alive_) LeaderElectionRound();
    });
  });
}

void Namenode::Stop() {
  le_timer_.Cancel();
  rep_timer_.Cancel();
  is_leader_ = false;
}

void Namenode::OnDnHeartbeat(blocks::DnId dn) {
  if (dn_registry_ != nullptr) dn_registry_->MarkHeartbeat(dn, sim_.now());
}

void Namenode::PrimePathCache(const std::string& path, InodeId id,
                              const std::string& row_key) {
  path_cache_[path] = CachedPath{id, row_key};
}

// ---------------------------------------------------------------------------
// Request plumbing
// ---------------------------------------------------------------------------

void Namenode::HandleRequest(FsRequest req, FsResultCb done) {
  if (!alive_) return;  // the client's RPC timeout covers dead servers
  const Nanos now = sim_.now();
  // Deadline check *before* queueing: an op whose remaining budget cannot
  // even cover the CPU queue is doomed — fail fast instead of wasting a
  // thread slot on it (deadline propagation, hop 2).
  if (resilience::HasDeadline(req.deadline) &&
      now + cpu_->Backlog() + config_.op_cpu_cost >= req.deadline) {
    metrics::Bump(ctr_deadline_);
    FsResult r;
    r.status = DeadlineExceeded("nn: queue would overrun deadline");
    done(std::move(r));
    return;
  }
  auto ctx = std::make_shared<OpCtx>();
  ctx->req = std::move(req);
  ctx->done = std::move(done);
  // Admission control: shed excess load with a retryable OVERLOADED
  // status honoured by the client's retry budget, instead of queueing
  // unboundedly and collapsing.
  if (config_.admission_enabled) {
    if (!limiter_.TryAcquire()) {
      metrics::Bump(ctr_shed_);
      FsResult r;
      r.status = ResourceExhausted("nn: overloaded, shedding");
      ctx->done(std::move(r));
      return;
    }
    ctx->admitted = true;
    ctx->admit_time = now;
  }
  const Booking b = cpu_->Submit(config_.op_cpu_cost, [this, ctx] {
    if (alive_) RunAttempt(ctx);
  });
  if (ctx->req.span != 0) {
    trace::Tracer& tr = sim_.tracer();
    if (b.queued() > 0) {
      tr.AddSpanAt(ctx->req.span, "nn.queue", trace::Layer::kNamenode,
                   trace::Cause::kCpuQueue, host_, az_, b.submit, b.start);
    }
    tr.AddSpanAt(ctx->req.span, "nn.cpu", trace::Layer::kNamenode,
                 trace::Cause::kCpu, host_, az_, b.start, b.finish);
  }
}

void Namenode::Finish(std::shared_ptr<OpCtx> ctx, FsResult result) {
  sim_.tracer().EndSpan(ctx->txn_span);
  ctx->txn_span = 0;
  if (ctx->admitted) {
    ctx->admitted = false;
    limiter_.Release(sim_.now() - ctx->admit_time, sim_.now());
  }
  if (result.status.code() == Code::kDeadlineExceeded) {
    metrics::Bump(ctr_deadline_);
  }
  // Health signal: final unavailability-class failures served by this
  // host (admission sheds are flow control, not host sickness, and are
  // counted separately above).
  if (result.status.counts_against_availability()) {
    metrics::Bump(ctr_host_errors_);
  }
  ++ops_served_;
  ctx->done(std::move(result));
}

void Namenode::MaybeRetry(std::shared_ptr<OpCtx> ctx, const Status& failure) {
  sim_.tracer().EndSpan(ctx->txn_span);
  ctx->txn_span = 0;
  if (ctx->txn != 0) {
    api_->Abort(ctx->txn);
    ctx->txn = 0;
  }
  // A NotFound under a cached path hint may only mean the hint was stale
  // (rename/delete elsewhere): drop the cache and re-resolve once.
  if (failure.code() == Code::kNotFound && ctx->used_cache &&
      !ctx->cache_retry_done) {
    ctx->cache_retry_done = true;
    path_cache_.clear();
    RunAttempt(ctx);
    return;
  }
  const Nanos now = sim_.now();
  if (resilience::DeadlineExpired(ctx->req.deadline, now)) {
    FsResult r;
    r.status = DeadlineExceeded("nn: deadline passed during txn");
    Finish(ctx, std::move(r));
    return;
  }
  if (!failure.retryable() || ctx->attempt >= config_.max_txn_retries) {
    FsResult r;
    r.status = failure;
    Finish(ctx, std::move(r));
    return;
  }
  // Retry with exponential backoff + jitter: HopsFS's backpressure to
  // NDB. Cap and ceiling are configurable, and the wait never exceeds
  // the op's remaining deadline (a retry scheduled past the deadline
  // would burn a slot on work nobody is waiting for).
  ++txn_retries_;
  metrics::Bump(ctr_txn_retries_);
  const Nanos backoff = resilience::RetryBackoff(
      config_.retry_backoff, ctx->attempt, config_.retry_backoff_exp_cap,
      config_.max_retry_backoff,
      static_cast<Nanos>(rng_.NextBelow(config_.retry_backoff)),
      ctx->req.deadline, now);
  sim_.tracer().AddSpanAt(ctx->req.span, "nn.retry_backoff",
                          trace::Layer::kNamenode, trace::Cause::kRetry,
                          host_, az_, now, now + backoff);
  sim_.After(backoff, [this, ctx] {
    if (alive_) RunAttempt(ctx);
  });
}

void Namenode::ResolveDir(std::shared_ptr<OpCtx> ctx, std::string_view path,
                          ResolveCb cb) {
  if (path == "/") {
    cb(kRootInode, InodeKey(0, ""));
    return;
  }
  // Fast path: HopsFS resolves cached path prefixes from the NN-side
  // inode hint cache without re-reading the upper directories — re-reading
  // "/user"-style top components on every operation would funnel the whole
  // cluster's load onto one partition's LDM thread. The hint is validated
  // implicitly: the operation's own locked read on the target/parent row
  // (keyed "parentId/name") misses if the hint went stale, which flows
  // through MaybeRetry's cache-flush-and-re-resolve path.
  auto hit = path_cache_.find(path);
  if (hit != path_cache_.end()) {
    ctx->used_cache = true;
    cb(hit->second.id, hit->second.row_key);
    return;
  }

  auto parts_sv = SplitPath(path);
  auto parts = std::make_shared<std::vector<std::string>>();
  for (auto p : parts_sv) parts->emplace_back(p);

  // The walk state holds the self-referencing step closure; the step
  // captures only a weak reference to the state, so the cycle resolves
  // itself once the last in-flight read callback (which holds a strong
  // reference) returns. Never reset `step` from inside itself: that
  // destroys the executing closure's captures.
  struct WalkState {
    std::function<void(size_t, InodeId, std::string)> step;
    Namenode::ResolveCb cb;
  };
  auto ws = std::make_shared<WalkState>();
  ws->cb = std::move(cb);
  std::weak_ptr<WalkState> weak = ws;
  ws->step = [this, ctx, parts, weak](size_t i, InodeId cur,
                                      std::string cur_row_key) {
    auto ws = weak.lock();
    if (!ws) return;
    if (i == parts->size()) {
      ws->cb(cur, cur_row_key);
      return;
    }
    const std::string key = InodeKey(cur, (*parts)[i]);
    api_->Read(
        ctx->txn, tables_.inodes, key, ndb::LockMode::kReadCommitted,
        [this, ctx, parts, ws, i, key](Code code,
                                       std::optional<std::string> value) {
          if (code != Code::kOk) {
            MaybeRetry(ctx, Status(code, "path read failed"));
            return;
          }
          if (!value) {
            if (ctx->used_cache) {
              MaybeRetry(ctx, NotFound("path component missing"));
            } else {
              api_->Abort(ctx->txn);
              ctx->txn = 0;
              FsResult r;
              r.status = NotFound("path component missing");
              Finish(ctx, std::move(r));
            }
            return;
          }
          InodeRow row;
          if (!InodeRow::Decode(*value, &row) || !row.is_dir) {
            api_->Abort(ctx->txn);
            ctx->txn = 0;
            FsResult r;
            r.status =
                FailedPrecondition("path component is not a directory");
            Finish(ctx, std::move(r));
            return;
          }
          // Cache this prefix: "/p0/.../pi" -> row.id.
          std::string prefix;
          for (size_t k = 0; k <= i; ++k) {
            prefix += '/';
            prefix += (*parts)[k];
          }
          path_cache_[prefix] = CachedPath{row.id, key};
          ws->step(i + 1, row.id, key);
        });
  };
  ws->step(0, kRootInode, InodeKey(0, ""));
}

// ---------------------------------------------------------------------------
// Operation dispatch
// ---------------------------------------------------------------------------

void Namenode::RunAttempt(std::shared_ptr<OpCtx> ctx) {
  PROF_ZONE("nn.op.dispatch");
  if (resilience::DeadlineExpired(ctx->req.deadline, sim_.now())) {
    FsResult r;
    r.status = DeadlineExceeded("nn: deadline passed before attempt");
    Finish(ctx, std::move(r));
    return;
  }
  ++ctx->attempt;
  ctx->used_cache = false;
  ctx->arena.Reset();
  // One span per transaction attempt; NDB op spans hang under it via
  // SetTxnTrace below.
  ctx->txn_span = sim_.tracer().StartSpan(
      ctx->req.span, "nn.txn", trace::Layer::kNamenode, trace::Cause::kWork,
      host_, az_);

  const std::string_view path = ctx->req.path;
  std::string_view parent;
  if (path == "/") {
    parent = {};
    ctx->base = {};
  } else {
    // Both views alias req.path, which is stable for the op's lifetime.
    auto [p, b] = SplitParentView(path);
    parent = p;
    ctx->base = b;
  }

  // Start the transaction with the best partition-key hint available.
  // Built in the arena: the hint is only hashed by Begin, never stored.
  std::string_view hint;
  if (path == "/") {
    hint = ctx->arena.InodeKeyIn(0, "");
  } else {
    auto it = path_cache_.find(parent);
    hint = ctx->arena.InodeKeyIn(
        it != path_cache_.end() ? it->second.id : kRootInode, ctx->base);
  }
  ctx->txn = api_->Begin(tables_.inodes, hint);
  if (ctx->txn == 0) {
    MaybeRetry(ctx, Unavailable("no NDB datanode reachable"));
    return;
  }
  // Deadline propagation, hop 3: every NDB op of this transaction carries
  // the deadline and clamps its timeout to the remaining budget.
  api_->SetTxnDeadline(ctx->txn, ctx->req.deadline);
  api_->SetTxnTrace(ctx->txn, ctx->txn_span);

  auto dispatch = [this, ctx] {
    switch (ctx->req.op) {
      case FsOp::kMkdir: DoMkdir(ctx); return;
      case FsOp::kCreate: DoCreate(ctx); return;
      case FsOp::kOpenRead: DoOpenRead(ctx); return;
      case FsOp::kStat: DoStat(ctx); return;
      case FsOp::kDelete: DoDelete(ctx); return;
      case FsOp::kListDir: DoListDir(ctx); return;
      case FsOp::kRename: DoRename(ctx); return;
      case FsOp::kChmod:
      case FsOp::kChown:
      case FsOp::kSetTimes: DoSetAttr(ctx); return;
      case FsOp::kAppend: DoAppend(ctx); return;
      case FsOp::kContentSummary: DoContentSummary(ctx); return;
      case FsOp::kDeleteRecursive: DoDeleteRecursive(ctx); return;
    }
  };

  if (path == "/") {
    // Target is the root itself.
    ctx->dir = 0;
    ctx->dir_row_key = {};
    dispatch();
    return;
  }
  ResolveDir(ctx, parent,
             [ctx, dispatch](InodeId dir, std::string_view row_key) {
               ctx->dir = dir;
               // The view may alias the path cache or a walk-local key;
               // pin a copy the deferred transaction callbacks can use.
               ctx->dir_row_key = ctx->arena.Intern(row_key);
               dispatch();
             });
}

// The per-operation transaction bodies live in namenode_ops.cc; the
// leadership protocols in leader.cc.

}  // namespace repro::hopsfs
