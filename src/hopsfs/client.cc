#include "hopsfs/client.h"

#include <algorithm>

#include "util/logging.h"

namespace repro::hopsfs {

HopsFsClient::HopsFsClient(Simulation& sim, Network& network,
                           std::vector<Namenode*> namenodes, HostId host,
                           AzId az, blocks::DnRegistry* dn_registry,
                           ClientConfig config)
    : sim_(sim), network_(network), namenodes_(std::move(namenodes)),
      host_(host), az_(az), dn_registry_(dn_registry), config_(config),
      rng_(sim.rng().Split()) {}

void HopsFsClient::PickNamenode(std::function<void()> then) {
  // Ask a random alive seed namenode for the active list (the leader
  // election gossips each NN's AZ), then prefer an AZ-local namenode.
  std::vector<Namenode*> alive;
  for (Namenode* nn : namenodes_) {
    if (nn->alive()) alive.push_back(nn);
  }
  if (alive.empty()) {
    nn_ = nullptr;
    then();
    return;
  }
  Namenode* seed = alive[rng_.NextBelow(alive.size())];
  network_.Send(host_, seed->host(), config_.request_bytes,
                [this, seed, then = std::move(then)] {
                  const auto& active = seed->active_nns();
                  std::vector<Namenode*> candidates;
                  std::vector<Namenode*> local;
                  for (const auto& a : active) {
                    if (a.nn_id < 0 ||
                        a.nn_id >= static_cast<int32_t>(namenodes_.size())) {
                      continue;
                    }
                    Namenode* nn = namenodes_[a.nn_id];
                    if (!nn->alive()) continue;
                    candidates.push_back(nn);
                    if (a.az == az_) local.push_back(nn);
                  }
                  if (candidates.empty()) candidates.push_back(seed);
                  // §IV-B3: AZ-local if possible (and AZ-awareness is on
                  // and the client has a locationDomainId), else random.
                  if (config_.az_aware && az_ != kNoAz && !local.empty()) {
                    nn_ = local[rng_.NextBelow(local.size())];
                  } else {
                    nn_ = candidates[rng_.NextBelow(candidates.size())];
                  }
                  // Reply hop back to the client.
                  network_.Send(seed->host(), host_, config_.reply_base_bytes,
                                [then] { then(); });
                });
}

void HopsFsClient::Submit(FsRequest req, FsResultCb cb) {
  req.client_az = az_;
  if (req.user.empty()) req.user = user_;
  SendRpc(std::move(req), std::move(cb), 1);
}

void HopsFsClient::SendRpc(FsRequest req, FsResultCb cb, int attempt) {
  if (attempt > config_.max_rpc_attempts) {
    FsResult r;
    r.status = Unavailable("all namenode RPC attempts failed");
    cb(std::move(r));
    return;
  }
  if (nn_ == nullptr || !nn_->alive()) {
    PickNamenode([this, req = std::move(req), cb = std::move(cb),
                  attempt]() mutable {
      if (nn_ == nullptr) {
        FsResult r;
        r.status = Unavailable("no namenode available");
        cb(std::move(r));
        return;
      }
      SendRpc(std::move(req), std::move(cb), attempt);
    });
    return;
  }

  const uint64_t rpc_id = next_rpc_id_++;
  rpc_done_[rpc_id] = false;
  Namenode* nn = nn_;

  sim_.After(config_.rpc_timeout, [this, rpc_id, req, cb, attempt] {
    auto it = rpc_done_.find(rpc_id);
    if (it == rpc_done_.end() || it->second) return;
    rpc_done_.erase(it);
    nn_ = nullptr;  // failover: the sticky namenode is gone
    SendRpc(req, cb, attempt + 1);
  });

  network_.Send(
      host_, nn->host(),
      config_.request_bytes + static_cast<int64_t>(req.path.size()),
      [this, nn, req, cb, rpc_id]() mutable {
        nn->HandleRequest(
            std::move(req), [this, nn, cb, rpc_id](FsResult result) {
              // Reply hop: size grows with listing / block payloads.
              int64_t bytes = config_.reply_base_bytes;
              for (const auto& c : result.children) {
                bytes += static_cast<int64_t>(c.size()) + 16;
              }
              bytes += 48 * static_cast<int64_t>(result.blocks.size() +
                                                 result.new_blocks.size());
              network_.Send(
                  nn->host(), host_, bytes,
                  [this, cb, rpc_id, result = std::move(result)]() mutable {
                    auto it = rpc_done_.find(rpc_id);
                    if (it == rpc_done_.end()) return;  // timed out already
                    rpc_done_.erase(it);
                    HandleLargeFileIo(std::move(result), cb);
                  });
            });
      });
}

void HopsFsClient::HandleLargeFileIo(FsResult result, FsResultCb cb) {
  if (dn_registry_ == nullptr || !result.status.ok()) {
    cb(std::move(result));
    return;
  }
  // Writes: push each new block through its replication pipeline.
  // Reads: fetch each block from the AZ-closest replica.
  const std::vector<BlockRow>* to_write =
      result.new_blocks.empty() ? nullptr : &result.new_blocks;
  const std::vector<BlockRow>* to_read =
      result.blocks.empty() ? nullptr : &result.blocks;
  if (to_write == nullptr && to_read == nullptr) {
    cb(std::move(result));
    return;
  }

  auto res = std::make_shared<FsResult>(std::move(result));
  auto next = std::make_shared<std::function<void(size_t)>>();
  std::weak_ptr<std::function<void(size_t)>> weak_next = next;
  const bool writing = to_write != nullptr;
  *next = [this, res, weak_next, cb, writing](size_t i) {
    auto next = weak_next.lock();
    if (!next) return;
    const auto& blocks = writing ? res->new_blocks : res->blocks;
    if (i >= blocks.size()) {
      cb(std::move(*res));
      return;
    }
    const BlockRow& b = blocks[i];
    if (b.replicas.empty()) {
      (*next)(i + 1);
      return;
    }
    if (writing) {
      std::vector<blocks::BlockDatanode*> pipeline;
      for (blocks::DnId d : b.replicas) {
        pipeline.push_back(dn_registry_->dn(d));
      }
      blocks::BlockDatanode* first = pipeline.front();
      pipeline.erase(pipeline.begin());
      // Stream the data to the first replica, which forwards downstream.
      const int64_t bytes = b.num_bytes;
      network_.Send(host_, first->host(), std::max<int64_t>(bytes, 1),
                    [first, id = b.block_id, bytes, pipeline, next, i] {
                      first->WriteBlock(id, bytes, pipeline,
                                        [next, i](Status) { (*next)(i + 1); });
                    });
    } else {
      // AZ-closest replica (§IV-C): replicas in our AZ first.
      blocks::DnId chosen = b.replicas.front();
      if (config_.az_aware && az_ != kNoAz) {
        for (blocks::DnId d : b.replicas) {
          if (dn_registry_->az_of(d) == az_) {
            chosen = d;
            break;
          }
        }
      }
      blocks::BlockDatanode* dn = dn_registry_->dn(chosen);
      network_.Send(host_, dn->host(), 128,
                    [this, dn, id = b.block_id, next, i] {
                      dn->ReadBlock(id, host_,
                                    [next, i](Expected<int64_t>) {
                                      (*next)(i + 1);
                                    });
                    });
    }
  };
  (*next)(0);
}

// ---- convenience wrappers ----

namespace {
HopsFsClient::StatusCb Wrap(HopsFsClient::StatusCb cb) { return cb; }
}  // namespace

void HopsFsClient::Mkdir(const std::string& path, StatusCb cb) {
  FsRequest r;
  r.op = FsOp::kMkdir;
  r.path = path;
  r.permissions = 0755;
  Submit(std::move(r),
         [cb = Wrap(std::move(cb))](FsResult res) { cb(res.status); });
}

void HopsFsClient::Create(const std::string& path, int64_t size,
                          StatusCb cb) {
  FsRequest r;
  r.op = FsOp::kCreate;
  r.path = path;
  r.size = size;
  Submit(std::move(r),
         [cb = Wrap(std::move(cb))](FsResult res) { cb(res.status); });
}

void HopsFsClient::ReadFile(const std::string& path, StatusCb cb) {
  FsRequest r;
  r.op = FsOp::kOpenRead;
  r.path = path;
  Submit(std::move(r),
         [cb = Wrap(std::move(cb))](FsResult res) { cb(res.status); });
}

void HopsFsClient::Stat(const std::string& path, StatusCb cb) {
  FsRequest r;
  r.op = FsOp::kStat;
  r.path = path;
  Submit(std::move(r),
         [cb = Wrap(std::move(cb))](FsResult res) { cb(res.status); });
}

void HopsFsClient::Delete(const std::string& path, StatusCb cb) {
  FsRequest r;
  r.op = FsOp::kDelete;
  r.path = path;
  Submit(std::move(r),
         [cb = Wrap(std::move(cb))](FsResult res) { cb(res.status); });
}

void HopsFsClient::ListDir(const std::string& path, StatusCb cb) {
  FsRequest r;
  r.op = FsOp::kListDir;
  r.path = path;
  Submit(std::move(r),
         [cb = Wrap(std::move(cb))](FsResult res) { cb(res.status); });
}

void HopsFsClient::Rename(const std::string& from, const std::string& to,
                          StatusCb cb) {
  FsRequest r;
  r.op = FsOp::kRename;
  r.path = from;
  r.path2 = to;
  Submit(std::move(r),
         [cb = Wrap(std::move(cb))](FsResult res) { cb(res.status); });
}

void HopsFsClient::Chmod(const std::string& path, uint32_t permissions,
                         StatusCb cb) {
  FsRequest r;
  r.op = FsOp::kChmod;
  r.path = path;
  r.permissions = permissions;
  Submit(std::move(r),
         [cb = Wrap(std::move(cb))](FsResult res) { cb(res.status); });
}

void HopsFsClient::Chown(const std::string& path, const std::string& owner,
                         StatusCb cb) {
  FsRequest r;
  r.op = FsOp::kChown;
  r.path = path;
  r.owner = owner;
  Submit(std::move(r),
         [cb = Wrap(std::move(cb))](FsResult res) { cb(res.status); });
}

void HopsFsClient::SetTimes(const std::string& path, Nanos mtime,
                            StatusCb cb) {
  FsRequest r;
  r.op = FsOp::kSetTimes;
  r.path = path;
  r.mtime_ns = mtime;
  Submit(std::move(r),
         [cb = Wrap(std::move(cb))](FsResult res) { cb(res.status); });
}

void HopsFsClient::Append(const std::string& path, int64_t bytes,
                          StatusCb cb) {
  FsRequest r;
  r.op = FsOp::kAppend;
  r.path = path;
  r.size = bytes;
  Submit(std::move(r),
         [cb = Wrap(std::move(cb))](FsResult res) { cb(res.status); });
}

void HopsFsClient::DeleteRecursive(const std::string& path, StatusCb cb) {
  FsRequest r;
  r.op = FsOp::kDeleteRecursive;
  r.path = path;
  Submit(std::move(r),
         [cb = Wrap(std::move(cb))](FsResult res) { cb(res.status); });
}

void HopsFsClient::ContentSummary(const std::string& path, SummaryCb cb) {
  FsRequest r;
  r.op = FsOp::kContentSummary;
  r.path = path;
  Submit(std::move(r), [cb = std::move(cb)](FsResult res) {
    cb(res.status, res.cs_files, res.cs_dirs, res.cs_bytes);
  });
}

}  // namespace repro::hopsfs
