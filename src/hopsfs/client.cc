#include "hopsfs/client.h"

#include <algorithm>

#include "resilience/deadline.h"
#include "util/logging.h"

namespace repro::hopsfs {

HopsFsClient::HopsFsClient(Simulation& sim, Network& network,
                           std::vector<Namenode*> namenodes, HostId host,
                           AzId az, blocks::DnRegistry* dn_registry,
                           ClientConfig config)
    : sim_(sim), network_(network), namenodes_(std::move(namenodes)),
      host_(host), az_(az), dn_registry_(dn_registry), config_(config),
      rng_(sim.rng().Split()),
      budget_(config.retry_budget) {
  const resilience::CircuitBreakerConfig bc{
      config_.breaker_failure_threshold, config_.breaker_open_interval};
  breakers_.assign(namenodes_.size(), resilience::CircuitBreaker(bc));
  if (config_.metrics != nullptr) {
    ctr_retries_ = config_.metrics->GetCounter("hopsfs.client.retries");
    ctr_budget_denied_ =
        config_.metrics->GetCounter("hopsfs.client.retry_budget_denied");
    ctr_breaker_transitions_ =
        config_.metrics->GetCounter("hopsfs.client.breaker_transitions");
    ctr_hedges_ = config_.metrics->GetCounter("hopsfs.client.hedges_sent");
    ctr_hedge_wins_ = config_.metrics->GetCounter("hopsfs.client.hedge_wins");
    ctr_deadline_ =
        config_.metrics->GetCounter("hopsfs.client.deadline_exceeded");
    ctr_shed_seen_ =
        config_.metrics->GetCounter("hopsfs.client.sheds_observed");
    ctr_slo_total_ = config_.metrics->GetCounter("slo.requests.total");
    ctr_slo_good_ = config_.metrics->GetCounter("slo.requests.good");
    ctr_slo_latency_total_ = config_.metrics->GetCounter("slo.latency.total");
    ctr_slo_latency_good_ = config_.metrics->GetCounter("slo.latency.good");
    hist_latency_ = config_.metrics->GetHistogram(
        "hopsfs.client.op_latency_seconds",
        {0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
         5.0, 10.0});
  }
}

resilience::CircuitBreaker* HopsFsClient::breaker(const Namenode* nn) {
  if (!config_.breaker_enabled || nn == nullptr) return nullptr;
  const size_t id = static_cast<size_t>(nn->id());
  return id < breakers_.size() ? &breakers_[id] : nullptr;
}

// Runs a breaker mutation and counts the state transition if one happened.
void HopsFsClient::NoteBreaker(resilience::CircuitBreaker* b,
                               const std::function<void()>& update) {
  if (b == nullptr) return;
  const int64_t before = b->transitions();
  update();
  if (b->transitions() != before) metrics::Bump(ctr_breaker_transitions_);
}

void HopsFsClient::PickNamenode(trace::SpanId span,
                                std::function<void()> then) {
  // Ask a random alive seed namenode for the active list (the leader
  // election gossips each NN's AZ), then prefer an AZ-local namenode.
  std::vector<Namenode*> alive;
  for (Namenode* nn : namenodes_) {
    if (nn->alive()) alive.push_back(nn);
  }
  if (alive.empty()) {
    nn_ = nullptr;
    then();
    return;
  }
  Namenode* seed = alive[rng_.NextBelow(alive.size())];
  const trace::SpanId req_hop = sim_.tracer().StartSpan(
      span, "net.nn_list_req", trace::Layer::kClient,
      trace::NetCause(az_, seed->az()), host_, az_, seed->az());
  network_.Send(host_, seed->host(), config_.request_bytes,
                [this, seed, span, req_hop, then = std::move(then)] {
                  sim_.tracer().EndSpan(req_hop);
                  const auto& active = seed->active_nns();
                  const Nanos now = sim_.now();
                  std::vector<Namenode*> candidates;
                  std::vector<Namenode*> local;
                  for (const auto& a : active) {
                    if (a.nn_id < 0 ||
                        a.nn_id >= static_cast<int32_t>(namenodes_.size())) {
                      continue;
                    }
                    Namenode* nn = namenodes_[a.nn_id];
                    if (!nn->alive()) continue;
                    // The NN we just timed out on is excluded from the
                    // immediate re-pick (it is usually still in the
                    // active list — detection lags the failure).
                    if (a.nn_id == last_failed_nn_) continue;
                    // Circuit breaker: grey-slow NNs are out of rotation
                    // until their half-open probe readmits them.
                    resilience::CircuitBreaker* b = breaker(nn);
                    if (b != nullptr && !b->CanAttempt(now)) continue;
                    candidates.push_back(nn);
                    if (a.az == az_) local.push_back(nn);
                  }
                  if (candidates.empty()) {
                    // Everything filtered (all breakers open / only the
                    // failed NN left): degrade to any alive NN rather
                    // than refusing service.
                    for (const auto& a : active) {
                      if (a.nn_id < 0 ||
                          a.nn_id >=
                              static_cast<int32_t>(namenodes_.size())) {
                        continue;
                      }
                      Namenode* nn = namenodes_[a.nn_id];
                      if (nn->alive()) candidates.push_back(nn);
                    }
                  }
                  if (candidates.empty()) candidates.push_back(seed);
                  // §IV-B3: AZ-local if possible (and AZ-awareness is on
                  // and the client has a locationDomainId), else random.
                  if (config_.az_aware && az_ != kNoAz && !local.empty()) {
                    nn_ = local[rng_.NextBelow(local.size())];
                  } else {
                    nn_ = candidates[rng_.NextBelow(candidates.size())];
                  }
                  NoteBreaker(breaker(nn_), [this] {
                    breaker(nn_)->OnPicked(sim_.now());
                  });
                  last_failed_nn_ = -1;
                  // Reply hop back to the client.
                  const trace::SpanId reply_hop = sim_.tracer().StartSpan(
                      span, "net.nn_list_reply", trace::Layer::kClient,
                      trace::NetCause(seed->az(), az_), seed->host(),
                      seed->az(), az_);
                  network_.Send(seed->host(), host_, config_.reply_base_bytes,
                                [this, reply_hop, then] {
                                  sim_.tracer().EndSpan(reply_hop);
                                  then();
                                });
                });
}

void HopsFsClient::Submit(FsRequest req, FsResultCb cb) {
  req.client_az = az_;
  if (req.user.empty()) req.user = user_;
  if (req.deadline == 0 && config_.op_deadline > 0) {
    req.deadline = sim_.now() + config_.op_deadline;
  }
  budget_.OnRequest();  // first attempts accrue retry tokens
  ++ops_submitted_;
  auto op = std::make_shared<OpState>();
  op->req = std::move(req);
  op->cb = std::move(cb);
  op->start = sim_.now();
  // Deterministic 1-in-N sampling decides here; 0 makes every tracer
  // call below a no-op.
  op->span = sim_.tracer().StartTrace(FsOpName(op->req.op),
                                      trace::Layer::kClient, host_, az_);
  StartAttempt(std::move(op));
}

void HopsFsClient::StartAttempt(OpPtr op) {
  if (op->done) return;
  const Nanos now = sim_.now();
  if (resilience::DeadlineExpired(op->req.deadline, now)) {
    FsResult r;
    r.status = DeadlineExceeded("client: deadline passed before attempt");
    Deliver(std::move(op), std::move(r), false);
    return;
  }
  if (op->attempt > config_.max_rpc_attempts) {
    FsResult r;
    r.status = Unavailable("all namenode RPC attempts failed");
    Deliver(std::move(op), std::move(r), false);
    return;
  }
  // The sticky NN is abandoned when dead or when its breaker is open.
  if (nn_ != nullptr) {
    resilience::CircuitBreaker* b = breaker(nn_);
    if (!nn_->alive() || (b != nullptr && !b->CanAttempt(now))) {
      nn_ = nullptr;
    }
  }
  if (nn_ == nullptr) {
    const trace::SpanId pick = sim_.tracer().StartSpan(
        op->span, "pick_nn", trace::Layer::kClient, trace::Cause::kWork,
        host_, az_);
    PickNamenode(pick, [this, pick, op = std::move(op)]() mutable {
      sim_.tracer().EndSpan(pick);
      if (nn_ == nullptr) {
        FsResult r;
        r.status = Unavailable("no namenode available");
        Deliver(std::move(op), std::move(r), false);
        return;
      }
      Namenode* nn = nn_;
      SendToNn(std::move(op), nn, /*is_hedge=*/false);
    });
    return;
  }
  NoteBreaker(breaker(nn_), [this, now] { breaker(nn_)->OnPicked(now); });
  SendToNn(std::move(op), nn_, /*is_hedge=*/false);
}

void HopsFsClient::SendToNn(OpPtr op, Namenode* nn, bool is_hedge) {
  if (op->done) return;
  const Nanos now = sim_.now();
  const uint64_t rpc_id = next_rpc_id_++;
  rpc_done_[rpc_id] = false;

  // One span per RPC attempt; a hedge attempt is blamed on the resilience
  // stack (kRetry), so hedge-won ops attribute the duplicated work.
  const trace::SpanId attempt = sim_.tracer().StartSpan(
      op->span, is_hedge ? "rpc.hedge" : "rpc", trace::Layer::kClient,
      is_hedge ? trace::Cause::kRetry : trace::Cause::kWork, host_, az_);

  // The attempt timer never outlives the deadline: at equal timestamps
  // the earlier-scheduled timeout wins the event-order tie-break, so a
  // success can never race past an expired deadline through this path.
  const Nanos timeout = resilience::ClampToDeadline(
      config_.rpc_timeout, op->req.deadline, now);
  sim_.After(timeout, [this, rpc_id, op, nn, is_hedge, attempt] {
    auto it = rpc_done_.find(rpc_id);
    if (it == rpc_done_.end() || it->second) return;
    rpc_done_.erase(it);
    sim_.tracer().EndSpan(attempt);
    NoteBreaker(breaker(nn), [this, nn] {
      breaker(nn)->OnFailure(sim_.now());
    });
    if (op->done || is_hedge) return;  // a hedge timeout retries nothing
    // A timed-out attempt is a request the client observed to fail, even
    // though the op will be retried: it burns availability error budget
    // (total without good) exactly like a load balancer counting each
    // 5xx/timeout per try. Without this, requests stuck against a dark
    // AZ are invisible to the SLI until their final deadline.
    metrics::Bump(ctr_slo_total_);
    // Failover: drop the sticky NN, exclude it from the re-pick, and
    // retry under the budget after a jittered delay (herd control).
    if (nn_ == nn) nn_ = nullptr;
    last_failed_nn_ = nn->id();
    RetryAfterFailure(op, Unavailable("namenode RPC timed out"));
  });

  if (!is_hedge) MaybeHedge(op, nn);

  const trace::SpanId net_req = sim_.tracer().StartSpan(
      attempt, "net.request", trace::Layer::kClient,
      trace::NetCause(az_, nn->az()), host_, az_, nn->az());
  network_.Send(
      host_, nn->host(),
      config_.request_bytes + static_cast<int64_t>(op->req.path.size()),
      [this, nn, op, rpc_id, is_hedge, attempt, net_req]() mutable {
        sim_.tracer().EndSpan(net_req);
        FsRequest req = op->req;  // each attempt sends its own copy
        req.span = attempt;  // the NN parents its spans under the attempt
        nn->HandleRequest(
            std::move(req),
            [this, nn, op, rpc_id, is_hedge, attempt](FsResult result) {
              // Reply hop: size grows with listing / block payloads.
              int64_t bytes = config_.reply_base_bytes;
              for (const auto& c : result.children) {
                bytes += static_cast<int64_t>(c.size()) + 16;
              }
              bytes += 48 * static_cast<int64_t>(result.blocks.size() +
                                                 result.new_blocks.size());
              const trace::SpanId net_reply = sim_.tracer().StartSpan(
                  attempt, "net.reply", trace::Layer::kClient,
                  trace::NetCause(nn->az(), az_), nn->host(), nn->az(), az_);
              network_.Send(
                  nn->host(), host_, bytes,
                  [this, nn, op, rpc_id, is_hedge, attempt, net_reply,
                   result = std::move(result)]() mutable {
                    sim_.tracer().EndSpan(net_reply);
                    sim_.tracer().EndSpan(attempt);
                    auto it = rpc_done_.find(rpc_id);
                    if (it == rpc_done_.end()) {
                      // Timed out already: drop, but keep the
                      // deadline-safety audit (Deliver's done-guard
                      // counts a success after DEADLINE_EXCEEDED).
                      Deliver(std::move(op), std::move(result), is_hedge);
                      return;
                    }
                    rpc_done_.erase(it);
                    if (result.status.code() == Code::kResourceExhausted) {
                      // Server shed us (OVERLOADED). The NN is healthy —
                      // no breaker strike — but spread the retry to a
                      // different NN under the budget.
                      metrics::Bump(ctr_shed_seen_);
                      if (op->done || is_hedge) return;
                      if (nn_ == nn) nn_ = nullptr;
                      last_failed_nn_ = nn->id();
                      RetryAfterFailure(op, std::move(result.status));
                      return;
                    }
                    NoteBreaker(breaker(nn), [this, nn] {
                      breaker(nn)->OnSuccess();
                    });
                    HandleLargeFileIo(std::move(op), std::move(result));
                  });
            });
      });
}

// Shared failure path for timeouts and server sheds: consult the retry
// budget, then re-attempt after a jittered backoff.
void HopsFsClient::RetryAfterFailure(OpPtr op, Status give_up_status) {
  if (config_.retry_budget_enabled && !budget_.Withdraw()) {
    metrics::Bump(ctr_budget_denied_);
    FsResult r;
    r.status = std::move(give_up_status);
    Deliver(std::move(op), std::move(r), false);
    return;
  }
  metrics::Bump(ctr_retries_);
  op->attempt += 1;
  const Nanos jitter =
      config_.failover_jitter > 0
          ? static_cast<Nanos>(rng_.NextBelow(
                static_cast<uint64_t>(config_.failover_jitter)))
          : 0;
  if (jitter > 0) {
    const Nanos now = sim_.now();
    sim_.tracer().AddSpanAt(op->span, "retry.backoff", trace::Layer::kClient,
                            trace::Cause::kRetry, host_, az_, now,
                            now + jitter);
  }
  sim_.After(jitter, [this, op = std::move(op)]() mutable {
    StartAttempt(std::move(op));
  });
}

void HopsFsClient::MaybeHedge(OpPtr op, Namenode* primary_nn) {
  if (!config_.hedged_reads || op->hedge_sent) return;
  const FsOp fsop = op->req.op;
  const bool read_only = fsop == FsOp::kOpenRead || fsop == FsOp::kStat ||
                         fsop == FsOp::kListDir ||
                         fsop == FsOp::kContentSummary;
  if (!read_only) return;
  // Hedge once the primary is slower than the recent p95 ("The Tail at
  // Scale"). Until enough samples exist the tracker returns 0 → no hedge
  // (cold hedging would double traffic at startup).
  Nanos delay = latency_.Percentile(config_.hedge_percentile, 0);
  if (delay <= 0) return;
  delay = std::max(delay, config_.hedge_min_delay);
  op->hedge_sent = true;
  sim_.After(delay, [this, op, primary_nn] {
    if (op->done) return;
    if (resilience::DeadlineExpired(op->req.deadline, sim_.now())) return;
    // Pick a different, breaker-admitted NN for the hedge.
    const Nanos now = sim_.now();
    std::vector<Namenode*> others;
    for (Namenode* nn : namenodes_) {
      if (nn == primary_nn || !nn->alive()) continue;
      resilience::CircuitBreaker* b = breaker(nn);
      if (b != nullptr && !b->CanAttempt(now)) continue;
      others.push_back(nn);
    }
    if (others.empty()) return;
    Namenode* alt = others[rng_.NextBelow(others.size())];
    NoteBreaker(breaker(alt), [this, alt, now] {
      breaker(alt)->OnPicked(now);
    });
    metrics::Bump(ctr_hedges_);
    SendToNn(op, alt, /*is_hedge=*/true);
  });
}

// Single completion choke point: enforces first-response-wins, converts
// successes that slipped past the deadline, and audits the invariant
// that nothing completes successfully after DEADLINE_EXCEEDED was
// reported.
void HopsFsClient::Deliver(OpPtr op, FsResult result, bool is_hedge) {
  if (op->done) return;  // first response won; later ones are dropped
  const Nanos now = sim_.now();
  if (result.status.ok() &&
      resilience::DeadlineExpired(op->req.deadline, now)) {
    // Block-IO continuations can finish past the deadline; the caller
    // must still see DEADLINE_EXCEEDED, never a late success.
    result.status = DeadlineExceeded("client: completed past deadline");
  }
  op->done = true;
  if (result.status.code() == Code::kDeadlineExceeded) {
    op->reported_deadline_exceeded = true;
    metrics::Bump(ctr_deadline_);
  }
  if (result.status.ok()) {
    // Tripwire for the chaos invariant: by this point any success past
    // the deadline (or after a DEADLINE_EXCEEDED report) must have been
    // converted or dropped; a non-zero count means a delivery path
    // bypassed the enforcement above.
    if (resilience::DeadlineExpired(op->req.deadline, now) ||
        op->reported_deadline_exceeded) {
      ++post_deadline_successes_;
    }
    latency_.Record(now - op->start);
    if (is_hedge) metrics::Bump(ctr_hedge_wins_);
  }
  // SLO accounting: availability counts every completion; application
  // outcomes (NotFound, AlreadyExists, ...) are correct service and stay
  // "good" — only unavailability-class failures burn error budget. The
  // latency objective is judged on successful ops only.
  metrics::Bump(ctr_slo_total_);
  if (!result.status.counts_against_availability()) {
    metrics::Bump(ctr_slo_good_);
  }
  if (result.status.ok()) {
    const Nanos lat = now - op->start;
    metrics::Bump(ctr_slo_latency_total_);
    if (lat <= config_.slo_latency_threshold) {
      metrics::Bump(ctr_slo_latency_good_);
    }
    if (hist_latency_ != nullptr) hist_latency_->Observe(ToSeconds(lat));
  }
  // Finalize the trace at the moment the caller observes completion; any
  // still-open span (losing hedge, in-flight reply) is clamped to now.
  sim_.tracer().EndTrace(op->span);
  op->cb(std::move(result));
}

void HopsFsClient::HandleLargeFileIo(OpPtr op, FsResult result) {
  if (dn_registry_ == nullptr || !result.status.ok()) {
    Deliver(std::move(op), std::move(result), false);
    return;
  }
  // Writes: push each new block through its replication pipeline.
  // Reads: fetch each block from the AZ-closest replica.
  const std::vector<BlockRow>* to_write =
      result.new_blocks.empty() ? nullptr : &result.new_blocks;
  const std::vector<BlockRow>* to_read =
      result.blocks.empty() ? nullptr : &result.blocks;
  if (to_write == nullptr && to_read == nullptr) {
    Deliver(std::move(op), std::move(result), false);
    return;
  }

  const Nanos deadline = op->req.deadline;
  auto res = std::make_shared<FsResult>(std::move(result));
  auto next = std::make_shared<std::function<void(size_t)>>();
  std::weak_ptr<std::function<void(size_t)>> weak_next = next;
  const bool writing = to_write != nullptr;
  *next = [this, res, weak_next, op, writing, deadline](size_t i) {
    auto next = weak_next.lock();
    if (!next) return;
    if (op->done) return;  // a hedge already answered this op
    const auto& blocks = writing ? res->new_blocks : res->blocks;
    if (i >= blocks.size()) {
      Deliver(op, std::move(*res), false);
      return;
    }
    // Deadline check between blocks: a multi-block transfer must not
    // keep streaming for an op nobody is waiting on anymore.
    if (resilience::DeadlineExpired(deadline, sim_.now())) {
      res->status = DeadlineExceeded("client: block io past deadline");
      Deliver(op, std::move(*res), false);
      return;
    }
    const BlockRow& b = blocks[i];
    if (b.replicas.empty()) {
      (*next)(i + 1);
      return;
    }
    if (writing) {
      std::vector<blocks::BlockDatanode*> pipeline;
      for (blocks::DnId d : b.replicas) {
        pipeline.push_back(dn_registry_->dn(d));
      }
      blocks::BlockDatanode* first = pipeline.front();
      pipeline.erase(pipeline.begin());
      // Stream the data to the first replica, which forwards downstream.
      const int64_t bytes = b.num_bytes;
      const trace::SpanId bspan = sim_.tracer().StartSpan(
          op->span, "block.write", trace::Layer::kBlocks,
          trace::Cause::kWork, host_, az_);
      const trace::SpanId xfer = sim_.tracer().StartSpan(
          bspan, "net.block_data", trace::Layer::kBlocks,
          trace::NetCause(az_, first->az()), host_, az_, first->az());
      network_.Send(host_, first->host(), std::max<int64_t>(bytes, 1),
                    [this, first, id = b.block_id, bytes, pipeline, next, i,
                     deadline, bspan, xfer] {
                      sim_.tracer().EndSpan(xfer);
                      first->WriteBlock(id, bytes, pipeline,
                                        [this, next, i, bspan](Status) {
                                          sim_.tracer().EndSpan(bspan);
                                          (*next)(i + 1);
                                        },
                                        deadline, bspan);
                    });
    } else {
      // AZ-closest replica (§IV-C): replicas in our AZ first.
      blocks::DnId chosen = b.replicas.front();
      if (config_.az_aware && az_ != kNoAz) {
        for (blocks::DnId d : b.replicas) {
          if (dn_registry_->az_of(d) == az_) {
            chosen = d;
            break;
          }
        }
      }
      blocks::BlockDatanode* dn = dn_registry_->dn(chosen);
      const trace::SpanId bspan = sim_.tracer().StartSpan(
          op->span, "block.read", trace::Layer::kBlocks, trace::Cause::kWork,
          host_, az_);
      const trace::SpanId rreq = sim_.tracer().StartSpan(
          bspan, "net.read_req", trace::Layer::kBlocks,
          trace::NetCause(az_, dn->az()), host_, az_, dn->az());
      network_.Send(host_, dn->host(), 128,
                    [this, dn, id = b.block_id, next, i, deadline, bspan,
                     rreq] {
                      sim_.tracer().EndSpan(rreq);
                      dn->ReadBlock(id, host_,
                                    [this, next, i, bspan](Expected<int64_t>) {
                                      sim_.tracer().EndSpan(bspan);
                                      (*next)(i + 1);
                                    },
                                    deadline, bspan);
                    });
    }
  };
  (*next)(0);
}

// ---- convenience wrappers ----

namespace {
HopsFsClient::StatusCb Wrap(HopsFsClient::StatusCb cb) { return cb; }
}  // namespace

void HopsFsClient::Mkdir(const std::string& path, StatusCb cb) {
  FsRequest r;
  r.op = FsOp::kMkdir;
  r.path = path;
  r.permissions = 0755;
  Submit(std::move(r),
         [cb = Wrap(std::move(cb))](FsResult res) { cb(res.status); });
}

void HopsFsClient::Create(const std::string& path, int64_t size,
                          StatusCb cb) {
  FsRequest r;
  r.op = FsOp::kCreate;
  r.path = path;
  r.size = size;
  Submit(std::move(r),
         [cb = Wrap(std::move(cb))](FsResult res) { cb(res.status); });
}

void HopsFsClient::ReadFile(const std::string& path, StatusCb cb) {
  FsRequest r;
  r.op = FsOp::kOpenRead;
  r.path = path;
  Submit(std::move(r),
         [cb = Wrap(std::move(cb))](FsResult res) { cb(res.status); });
}

void HopsFsClient::Stat(const std::string& path, StatusCb cb) {
  FsRequest r;
  r.op = FsOp::kStat;
  r.path = path;
  Submit(std::move(r),
         [cb = Wrap(std::move(cb))](FsResult res) { cb(res.status); });
}

void HopsFsClient::Delete(const std::string& path, StatusCb cb) {
  FsRequest r;
  r.op = FsOp::kDelete;
  r.path = path;
  Submit(std::move(r),
         [cb = Wrap(std::move(cb))](FsResult res) { cb(res.status); });
}

void HopsFsClient::ListDir(const std::string& path, StatusCb cb) {
  FsRequest r;
  r.op = FsOp::kListDir;
  r.path = path;
  Submit(std::move(r),
         [cb = Wrap(std::move(cb))](FsResult res) { cb(res.status); });
}

void HopsFsClient::Rename(const std::string& from, const std::string& to,
                          StatusCb cb) {
  FsRequest r;
  r.op = FsOp::kRename;
  r.path = from;
  r.path2 = to;
  Submit(std::move(r),
         [cb = Wrap(std::move(cb))](FsResult res) { cb(res.status); });
}

void HopsFsClient::Chmod(const std::string& path, uint32_t permissions,
                         StatusCb cb) {
  FsRequest r;
  r.op = FsOp::kChmod;
  r.path = path;
  r.permissions = permissions;
  Submit(std::move(r),
         [cb = Wrap(std::move(cb))](FsResult res) { cb(res.status); });
}

void HopsFsClient::Chown(const std::string& path, const std::string& owner,
                         StatusCb cb) {
  FsRequest r;
  r.op = FsOp::kChown;
  r.path = path;
  r.owner = owner;
  Submit(std::move(r),
         [cb = Wrap(std::move(cb))](FsResult res) { cb(res.status); });
}

void HopsFsClient::SetTimes(const std::string& path, Nanos mtime,
                            StatusCb cb) {
  FsRequest r;
  r.op = FsOp::kSetTimes;
  r.path = path;
  r.mtime_ns = mtime;
  Submit(std::move(r),
         [cb = Wrap(std::move(cb))](FsResult res) { cb(res.status); });
}

void HopsFsClient::Append(const std::string& path, int64_t bytes,
                          StatusCb cb) {
  FsRequest r;
  r.op = FsOp::kAppend;
  r.path = path;
  r.size = bytes;
  Submit(std::move(r),
         [cb = Wrap(std::move(cb))](FsResult res) { cb(res.status); });
}

void HopsFsClient::DeleteRecursive(const std::string& path, StatusCb cb) {
  FsRequest r;
  r.op = FsOp::kDeleteRecursive;
  r.path = path;
  Submit(std::move(r),
         [cb = Wrap(std::move(cb))](FsResult res) { cb(res.status); });
}

void HopsFsClient::ContentSummary(const std::string& path, SummaryCb cb) {
  FsRequest r;
  r.op = FsOp::kContentSummary;
  r.path = path;
  Submit(std::move(r), [cb = std::move(cb)](FsResult res) {
    cb(res.status, res.cs_files, res.cs_dirs, res.cs_bytes);
  });
}

}  // namespace repro::hopsfs
