// HopsFS metadata schema: fully-normalised file-system metadata in NDB.
//
// Inodes are keyed "parentId/name" and partitioned by the parent inode id
// (application-defined partitioning), so a directory's children live in
// one partition: listings are a single partition-pruned scan, and the
// partition-key hint makes every operation on a directory's entries a
// distribution-aware transaction (§II-B1).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "ndb/schema.h"
#include "ndb/types.h"
#include "util/codec.h"

namespace repro::hopsfs {

using InodeId = uint64_t;
constexpr InodeId kRootInode = 1;

// Files up to this size are stored inline in NDB with their metadata
// (§II-A3); larger files go to the block storage layer.
constexpr int64_t kSmallFileThreshold = 128 << 10;  // 128 KB
constexpr int64_t kDefaultBlockSize = 128 << 20;    // 128 MB

struct InodeRow {
  InodeId id = 0;
  bool is_dir = false;
  int64_t size = 0;
  int64_t mtime_ns = 0;
  uint32_t permissions = 0755;
  std::string owner;
  // Small files keep their data in the inline-data table.
  bool has_inline_data = false;
  int32_t num_blocks = 0;

  std::string Encode() const;
  static bool Decode(std::string_view data, InodeRow* out);
};

struct BlockRow {
  uint64_t block_id = 0;
  int64_t num_bytes = 0;
  // Datanode ids of the replicas (the replica table of real HopsFS is
  // folded into the block row; see DESIGN.md).
  std::vector<int32_t> replicas;

  std::string Encode() const;
  static bool Decode(std::string_view data, BlockRow* out);
};

// Leader-election heartbeat row, one per namenode (§IV-B3).
struct NnHeartbeatRow {
  int32_t nn_id = 0;
  int64_t counter = 0;
  int32_t location_domain_id = -1;
  int32_t host = -1;

  std::string Encode() const;
  static bool Decode(std::string_view data, NnHeartbeatRow* out);
};

// Table handles for one deployment.
struct FsTables {
  ndb::TableId inodes = -1;
  ndb::TableId blocks = -1;
  ndb::TableId dn_blocks = -1;   // index: "dnId/blockId" -> blockId row key
  ndb::TableId inline_data = -1; // small-file payloads, keyed by inode id
  ndb::TableId vars = -1;        // leader election + housekeeping, tiny+hot

  // Registers the schema. With `read_backup` (HopsFS-CL) every table gets
  // the Read Backup option so reads can stay AZ-local; `vars` is
  // additionally fully replicated (small, hot, read-mostly).
  static FsTables Register(ndb::Catalog& catalog, bool read_backup);
};

// ---- key construction ----
inline std::string InodeKey(InodeId parent, std::string_view name) {
  return std::to_string(parent) + "/" + std::string(name);
}
inline std::string InodeChildrenPrefix(InodeId dir) {
  return std::to_string(dir) + "/";
}
inline std::string BlockKey(InodeId inode, int32_t index) {
  return std::to_string(inode) + "/" + std::to_string(index);
}
inline std::string BlocksOfInodePrefix(InodeId inode) {
  return std::to_string(inode) + "/";
}
inline std::string DnBlockKey(int32_t dn, uint64_t block_id) {
  return std::to_string(dn) + "/" + std::to_string(block_id);
}
inline std::string DnBlocksPrefix(int32_t dn) {
  return std::to_string(dn) + "/";
}
inline std::string InlineDataKey(InodeId inode) {
  return std::to_string(inode);
}
inline std::string NnHeartbeatKey(int32_t nn_id) {
  return "hb/" + std::to_string(nn_id);
}
inline constexpr std::string_view kNnHeartbeatPrefix = "hb/";

}  // namespace repro::hopsfs
