#include "hopsfs/fsschema.h"

namespace repro::hopsfs {

std::string InodeRow::Encode() const {
  Encoder e;
  e.PutU64(id);
  e.PutBool(is_dir);
  e.PutI64(size);
  e.PutI64(mtime_ns);
  e.PutU32(permissions);
  e.PutString(owner);
  e.PutBool(has_inline_data);
  e.PutU32(static_cast<uint32_t>(num_blocks));
  return e.Take();
}

bool InodeRow::Decode(std::string_view data, InodeRow* out) {
  Decoder d(data);
  out->id = d.GetU64();
  out->is_dir = d.GetBool();
  out->size = d.GetI64();
  out->mtime_ns = d.GetI64();
  out->permissions = d.GetU32();
  out->owner = d.GetString();
  out->has_inline_data = d.GetBool();
  out->num_blocks = static_cast<int32_t>(d.GetU32());
  return d.ok();
}

std::string BlockRow::Encode() const {
  Encoder e;
  e.PutU64(block_id);
  e.PutI64(num_bytes);
  e.PutU32(static_cast<uint32_t>(replicas.size()));
  for (int32_t r : replicas) e.PutU32(static_cast<uint32_t>(r));
  return e.Take();
}

bool BlockRow::Decode(std::string_view data, BlockRow* out) {
  Decoder d(data);
  out->block_id = d.GetU64();
  out->num_bytes = d.GetI64();
  const uint32_t n = d.GetU32();
  out->replicas.clear();
  for (uint32_t i = 0; i < n && d.ok(); ++i) {
    out->replicas.push_back(static_cast<int32_t>(d.GetU32()));
  }
  return d.ok();
}

std::string NnHeartbeatRow::Encode() const {
  Encoder e;
  e.PutU32(static_cast<uint32_t>(nn_id));
  e.PutI64(counter);
  e.PutU32(static_cast<uint32_t>(location_domain_id));
  e.PutU32(static_cast<uint32_t>(host));
  return e.Take();
}

bool NnHeartbeatRow::Decode(std::string_view data, NnHeartbeatRow* out) {
  Decoder d(data);
  out->nn_id = static_cast<int32_t>(d.GetU32());
  out->counter = d.GetI64();
  out->location_domain_id = static_cast<int32_t>(d.GetU32());
  out->host = static_cast<int32_t>(d.GetU32());
  return d.ok();
}

FsTables FsTables::Register(ndb::Catalog& catalog, bool read_backup) {
  FsTables t;
  {
    ndb::TableDef def;
    def.name = "hdfs_inodes";
    def.part_key = ndb::PartKeyRule::kPrefixBeforeSlash;
    def.read_backup = read_backup;
    t.inodes = catalog.AddTable(def);
  }
  {
    ndb::TableDef def;
    def.name = "hdfs_blocks";
    def.part_key = ndb::PartKeyRule::kPrefixBeforeSlash;
    def.read_backup = read_backup;
    t.blocks = catalog.AddTable(def);
  }
  {
    ndb::TableDef def;
    def.name = "hdfs_dn_blocks";
    def.part_key = ndb::PartKeyRule::kPrefixBeforeSlash;
    def.read_backup = read_backup;
    t.dn_blocks = catalog.AddTable(def);
  }
  {
    ndb::TableDef def;
    def.name = "hdfs_inline_data";
    def.read_backup = read_backup;
    t.inline_data = catalog.AddTable(def);
  }
  {
    ndb::TableDef def;
    def.name = "hdfs_vars";
    // "hb/<nn>" rows share the "hb" partition key so the leader-election
    // scan is a single partition-pruned range read.
    def.part_key = ndb::PartKeyRule::kPrefixBeforeSlash;
    def.read_backup = read_backup;
    def.fully_replicated = read_backup;  // tiny, hot, read-mostly
    t.vars = catalog.AddTable(def);
  }
  return t;
}

}  // namespace repro::hopsfs
