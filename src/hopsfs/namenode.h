// HopsFS metadata server (namenode, NN).
//
// Namenodes are stateless: every file-system operation is a transaction
// against the NDB-stored metadata, using hierarchical (implicit) locking —
// row locks are taken only on the operation's target inode (and its
// parent for mutations); everything else is read with read committed
// (§II-A2). Retryable failures (lock timeouts, coordinator loss) are
// retried with exponential backoff, providing backpressure to NDB.
//
// Each namenode carries a locationDomainId (its AZ, §IV-B) which it
// reports through the leader-election heartbeat so clients can find
// AZ-local namenodes.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "blocks/datanode.h"
#include "blocks/placement.h"
#include "hopsfs/fsschema.h"
#include "metrics/counters.h"
#include "ndb/client.h"
#include "resilience/admission.h"
#include "sim/callback.h"
#include "sim/resources.h"
#include "util/histogram.h"
#include "util/status.h"

namespace repro::hopsfs {

enum class FsOp {
  kMkdir,
  kCreate,
  kOpenRead,        // stat + block locations / inline data
  kStat,
  kDelete,
  kListDir,
  kRename,
  kChmod,
  kChown,
  kSetTimes,
  kAppend,          // extend a file (inline growth or new blocks)
  kContentSummary,  // recursive file/dir/byte counts (du)
  kDeleteRecursive, // subtree delete in one transaction
};
const char* FsOpName(FsOp op);

struct FsRequest {
  FsOp op = FsOp::kStat;
  std::string path;
  std::string path2;     // rename destination
  int64_t size = 0;      // create size / append delta
  uint32_t permissions = 0644;
  std::string owner;     // chown
  int64_t mtime_ns = 0;  // setTimes
  // Calling identity for permission checks; empty = superuser (the
  // default, so infrastructure paths and benchmarks are unaffected).
  std::string user;
  AzId client_az = kNoAz;
  // Absolute deadline stamped by the client (0 = none); propagated down
  // through NDB and the block layer, checked before each queueing point.
  Nanos deadline = 0;
  // Trace span of the client RPC attempt carrying this request (0 = the
  // operation is not sampled). The namenode parents its spans under it.
  trace::SpanId span = 0;
};

struct FsResult {
  Status status;
  InodeRow inode;                        // stat / open
  std::vector<std::string> children;     // listdir
  std::vector<BlockRow> blocks;          // open (large files)
  int64_t inline_bytes = 0;              // open (small files)
  // create/append (large files): pipeline targets per new block
  std::vector<BlockRow> new_blocks;
  // content summary (du)
  int64_t cs_files = 0;
  int64_t cs_dirs = 0;
  int64_t cs_bytes = 0;
};

using FsResultCb = std::function<void(FsResult)>;

struct NamenodeConfig {
  int cpu_threads = 32;                  // the evaluation's 32-vCPU VMs
  // Calibrated so one 32-vCPU namenode tops out around the paper's
  // ~27K ops/s per NN (1.62M ops/s over 60 NNs, Fig. 5).
  Nanos op_cpu_cost = 1100 * kMicrosecond;
  int max_txn_retries = 10;
  Nanos retry_backoff = 15 * kMillisecond;
  // Exponent cap and absolute ceiling for the txn retry backoff (was a
  // hard-coded `1 << min(attempt-1, 4)`); total backoff is additionally
  // clamped to the op's remaining deadline.
  int retry_backoff_exp_cap = 4;
  Nanos max_retry_backoff = 2 * kSecond;
  Nanos leader_interval = 2 * kSecond;   // leader election round (§IV-B3)
  int block_replication = 3;

  // Admission control: in-flight ops are bounded by an AIMD limit on
  // observed completion latency; excess arrivals are shed with a
  // retryable OVERLOADED (kResourceExhausted) status. The floor is kept
  // above any closed-loop bench's per-NN concurrency so admission only
  // engages under genuine overload.
  bool admission_enabled = true;
  int admission_min_limit = 128;
  int admission_max_limit = 4096;
  int admission_initial_limit = 512;
  Nanos admission_latency_target = 40 * kMillisecond;
  Nanos admission_decrease_cooldown = 100 * kMillisecond;

  // NDB committed-read hedging delay for this NN's API node (0 = off).
  Nanos ndb_hedge_delay = 0;

  // Optional resilience counter registry (shared per deployment).
  metrics::Registry* metrics = nullptr;
};

// Cross-namenode view of the active-NN set, rebuilt from the heartbeat
// rows each election round.
struct ActiveNn {
  int32_t nn_id;
  AzId az;
  HostId host;
};

class Namenode {
 public:
  Namenode(Simulation& sim, Network& network, ndb::NdbCluster& ndb,
           const FsTables& tables, int32_t nn_id, HostId host, AzId az,
           blocks::DnRegistry* dn_registry,
           blocks::BlockPlacementPolicy* placement,
           NamenodeConfig config = {});

  int32_t id() const { return nn_id_; }
  HostId host() const { return host_; }
  AzId az() const { return az_; }
  bool alive() const { return alive_; }
  void Crash();

  // Starts leader-election heartbeats (and, when leader, the block
  // re-replication monitor).
  void Start();
  void Stop();

  bool is_leader() const { return is_leader_; }
  const std::vector<ActiveNn>& active_nns() const { return active_nns_; }

  // Client RPC entry point: runs the op and calls `done` on this host
  // (the client stub handles the network hop back).
  void HandleRequest(FsRequest req, FsResultCb done);

  // Datanode heartbeat sink (routed to the leader by the deployment).
  void OnDnHeartbeat(blocks::DnId dn);

  // Pre-warms the inode hint cache (experiment bootstrap only): models a
  // long-running namenode whose cache has reached steady state, which a
  // sub-second simulation window cannot organically warm.
  void PrimePathCache(const std::string& path, InodeId id,
                      const std::string& row_key);

  const ThreadPool& cpu_pool() const { return *cpu_; }
  void ResetStats() { cpu_->ResetStats(); }
  int64_t ops_served() const { return ops_served_; }
  int64_t txn_retries() const { return txn_retries_; }
  const resilience::AimdLimiter& limiter() const { return limiter_; }

 private:
  struct OpCtx;

  // -- operation state machines --
  void RunAttempt(std::shared_ptr<OpCtx> ctx);
  void Finish(std::shared_ptr<OpCtx> ctx, FsResult result);
  void MaybeRetry(std::shared_ptr<OpCtx> ctx, const Status& failure);

  // Resolves the inode id of directory `path` ("/a/b") with committed
  // reads. `cb(dir_id, dir_row_key)` runs only on success; failures are
  // finished/retried internally. Uses the NN-side path cache. The row-key
  // view is only valid for the duration of the call — callees must intern
  // it (OpCtx arena) before deferring.
  using ResolveCb = SmallCall<void(InodeId, std::string_view)>;
  void ResolveDir(std::shared_ptr<OpCtx> ctx, std::string_view path,
                  ResolveCb cb);

  void DoMkdir(std::shared_ptr<OpCtx> ctx);
  void DoCreate(std::shared_ptr<OpCtx> ctx);
  void DoOpenRead(std::shared_ptr<OpCtx> ctx);
  void DoStat(std::shared_ptr<OpCtx> ctx);
  void DoDelete(std::shared_ptr<OpCtx> ctx);
  void DoListDir(std::shared_ptr<OpCtx> ctx);
  void DoRename(std::shared_ptr<OpCtx> ctx);
  // chmod / chown / setTimes share one read-modify-write body.
  void DoSetAttr(std::shared_ptr<OpCtx> ctx);
  void DoAppend(std::shared_ptr<OpCtx> ctx);
  void DoContentSummary(std::shared_ptr<OpCtx> ctx);
  void DoDeleteRecursive(std::shared_ptr<OpCtx> ctx);

  // -- leadership --
  void LeaderElectionRound();
  void ReplicationMonitorRound();
  // One dead datanode's scanned block-index rows, walked in place by
  // index — the repair loop advances a cursor over the flat scan result
  // instead of threading a self-referencing closure chain.
  struct RepairQueue;
  void RepairNext(std::shared_ptr<RepairQueue> q);
  // Restores the replication level of one block after a DN loss: rewrites
  // the block row and index rows in a transaction, then streams a copy
  // from a surviving replica to the chosen replacement.
  void RepairBlock(blocks::DnId dead_dn, const std::string& dn_block_key,
                   const std::string& block_row_key,
                   std::function<void()> done);

  InodeId NextInodeId() {
    return (static_cast<InodeId>(nn_id_ + 2) << 40) | ++inode_counter_;
  }
  uint64_t NextBlockId() {
    return (static_cast<uint64_t>(nn_id_ + 2) << 40) | ++block_counter_;
  }

  Simulation& sim_;
  Network& network_;
  ndb::NdbCluster& ndb_;
  FsTables tables_;
  int32_t nn_id_;
  HostId host_;
  AzId az_;
  blocks::DnRegistry* dn_registry_;
  blocks::BlockPlacementPolicy* placement_;
  NamenodeConfig config_;

  std::unique_ptr<ThreadPool> cpu_;
  std::unique_ptr<ndb::NdbApiNode> api_;
  bool alive_ = true;
  bool is_leader_ = false;
  Rng rng_;

  // Admission control + resilience accounting.
  resilience::AimdLimiter limiter_;
  metrics::Counter* ctr_shed_ = nullptr;
  metrics::Counter* ctr_deadline_ = nullptr;
  metrics::Counter* ctr_txn_retries_ = nullptr;
  metrics::Counter* ctr_host_errors_ = nullptr;

  // Path -> inode hint cache; entries are validated by the locked read
  // each operation performs, so staleness only costs a retry.
  struct CachedPath {
    InodeId id;
    std::string row_key;  // "parentId/name" row key of the directory
  };
  // Transparent hash/eq: the dispatch path probes with string_view
  // slices of the request path, so find() must not build a std::string.
  struct PathHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct PathEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const noexcept {
      return a == b;
    }
  };
  std::unordered_map<std::string, CachedPath, PathHash, PathEq> path_cache_;

  // Leader election state.
  int64_t le_counter_ = 0;
  // When this namenode last committed its own heartbeat row. Leadership
  // is held under a lease bounded by this: a namenode whose counter
  // writes stop landing will be declared dead by its peers, so it must
  // stop leading on the same clock or two leaders coexist.
  Nanos le_publish_ok_at_ = -1;
  // True when we were the would-be leader last round but deferred the
  // claim so a displaced incumbent could observe us and step down first.
  bool le_claim_pending_ = false;
  std::unordered_map<int32_t, std::pair<int64_t, int>> le_seen_;  // id -> (counter, misses)
  std::vector<ActiveNn> active_nns_;
  Simulation::PeriodicHandle le_timer_;
  Simulation::PeriodicHandle rep_timer_;
  std::vector<bool> dn_known_dead_;

  uint64_t inode_counter_ = 0;
  uint64_t block_counter_ = 0;
  int64_t ops_served_ = 0;
  int64_t txn_retries_ = 0;
};

}  // namespace repro::hopsfs
