#include "hopsfs/deployment.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "util/logging.h"
#include "util/strings.h"

namespace repro::hopsfs {

const char* PaperSetupName(PaperSetup setup) {
  switch (setup) {
    case PaperSetup::kHopsFs_2_1: return "HopsFS (2,1)";
    case PaperSetup::kHopsFs_3_1: return "HopsFS (3,1)";
    case PaperSetup::kHopsFs_2_3: return "HopsFS (2,3)";
    case PaperSetup::kHopsFs_3_3: return "HopsFS (3,3)";
    case PaperSetup::kHopsFsCl_2_3: return "HopsFS-CL (2,3)";
    case PaperSetup::kHopsFsCl_3_3: return "HopsFS-CL (3,3)";
  }
  return "?";
}

DeploymentOptions DeploymentOptions::FromPaperSetup(PaperSetup setup,
                                                    int num_namenodes) {
  DeploymentOptions o;
  o.name = PaperSetupName(setup);
  o.num_namenodes = num_namenodes;
  switch (setup) {
    case PaperSetup::kHopsFs_2_1:
      o.metadata_replication = 2;
      o.ndb_azs = {1};
      o.nn_azs = {1};
      o.client_azs = {1};
      break;
    case PaperSetup::kHopsFs_3_1:
      o.metadata_replication = 3;
      o.ndb_azs = {1};
      o.nn_azs = {1};
      o.client_azs = {1};
      break;
    case PaperSetup::kHopsFs_2_3:
    case PaperSetup::kHopsFsCl_2_3:
      // Fig. 3: metadata replicas in AZ 1 and AZ 2, arbitrator in AZ 0.
      o.metadata_replication = 2;
      o.ndb_azs = {1, 2};
      o.nn_azs = {1, 2};
      o.client_azs = {0, 1, 2};
      o.az_aware = setup == PaperSetup::kHopsFsCl_2_3;
      break;
    case PaperSetup::kHopsFs_3_3:
    case PaperSetup::kHopsFsCl_3_3:
      // Fig. 4: one full replica per AZ.
      o.metadata_replication = 3;
      o.ndb_azs = {0, 1, 2};
      o.nn_azs = {0, 1, 2};
      o.client_azs = {0, 1, 2};
      o.az_aware = setup == PaperSetup::kHopsFsCl_3_3;
      break;
  }
  o.az_aware_block_placement = o.az_aware;
  return o;
}

Deployment::Deployment(Simulation& sim, DeploymentOptions options)
    : sim_(sim), options_(std::move(options)) {
  // Resilience wiring: all layers share one counter registry, and the
  // master switch turns the whole overload-protection stack off for
  // baseline ("pre-PR") comparisons.
  if (options_.nn.metrics == nullptr) options_.nn.metrics = &metrics_;
  if (!options_.resilience) {
    options_.nn.admission_enabled = false;
    options_.nn.ndb_hedge_delay = 0;
    options_.client.op_deadline = 0;
    options_.client.retry_budget_enabled = false;
    options_.client.breaker_enabled = false;
    options_.client.hedged_reads = false;
  }

  topology_ = std::make_unique<Topology>(3, AzLatencyTable::UsWest1());
  network_ = std::make_unique<Network>(sim_, *topology_, options_.net);

  // HopsFS-CL enables Read Backup on every table (§IV-A5).
  const bool read_backup = options_.override_read_backup >= 0
                               ? options_.override_read_backup != 0
                               : options_.az_aware;
  tables_ = FsTables::Register(catalog_, read_backup);

  ndb::NdbClusterConfig ndb_cfg;
  ndb_cfg.layout.num_datanodes = options_.ndb_datanodes;
  ndb_cfg.layout.replication_factor = options_.metadata_replication;
  ndb_cfg.layout.node_az = ndb::AssignNodeAzs(
      options_.ndb_datanodes, options_.metadata_replication, options_.ndb_azs);
  ndb_cfg.layout.num_ldm_threads = options_.ndb_node.ldm_threads;
  ndb_cfg.layout.partitions_per_ldm = options_.ndb_partitions_per_ldm;
  ndb_cfg.node = options_.ndb_node;
  ndb_cfg.cost = options_.ndb_cost;
  ndb_cfg.flags.az_aware = options_.override_az_tc_selection >= 0
                               ? options_.override_az_tc_selection != 0
                               : options_.az_aware;
  ndb_cfg.mgmt_az = {0, 1, 2};
  ndb_ = std::make_unique<ndb::NdbCluster>(sim_, *network_, &catalog_,
                                           std::move(ndb_cfg));

  if (options_.block_datanodes > 0) {
    dn_registry_ = std::make_unique<blocks::DnRegistry>(
        /*heartbeat_timeout=*/10 * kSecond);
    if (options_.az_aware_block_placement) {
      placement_ = std::make_unique<blocks::AzAwarePlacement>(3);
    } else {
      placement_ = std::make_unique<blocks::DefaultPlacement>();
    }
    for (int i = 0; i < options_.block_datanodes; ++i) {
      const AzId az = options_.client_azs[i % options_.client_azs.size()];
      const HostId host = topology_->AddHost(az, StrFormat("dn-%d", i));
      block_dns_.push_back(std::make_unique<blocks::BlockDatanode>(
          sim_, *network_, i, host, az));
      dn_registry_->Register(block_dns_.back().get());
    }
  }

  for (int i = 0; i < options_.num_namenodes; ++i) {
    const AzId az = options_.nn_azs[i % options_.nn_azs.size()];
    const HostId host = topology_->AddHost(az, StrFormat("nn-%d", i));
    namenodes_.push_back(std::make_unique<Namenode>(
        sim_, *network_, *ndb_, tables_, i, host, az, dn_registry_.get(),
        placement_.get(), options_.nn));
  }

  if (options_.telemetry.enabled) {
    telemetry_ = std::make_unique<telemetry::Telemetry>(sim_, metrics_,
                                                        options_.telemetry);
    RegisterHostTelemetry();
  }
}

void Deployment::RegisterHostTelemetry() {
  using metrics::MetricKind;
  const Topology* topo = topology_.get();
  auto host_labels = [&](AzId az, HostId host) {
    return metrics::Labels{{"az", std::to_string(az)},
                           {"host", topo->name_of(host)}};
  };

  for (auto& nn_ptr : namenodes_) {
    Namenode* nn = nn_ptr.get();
    const metrics::Labels labels = host_labels(nn->az(), nn->host());
    metrics_.RegisterCallback("host.up", labels, MetricKind::kGauge,
                              [nn, topo] {
                                return nn->alive() && topo->HostUp(nn->host())
                                           ? 1.0
                                           : 0.0;
                              });
    metrics_.RegisterCallback(
        "host.queue_ns", labels, MetricKind::kGauge,
        [nn] { return static_cast<double>(nn->cpu_pool().Backlog()); });
    metrics_.RegisterCallback(
        "host.ops", labels, MetricKind::kCounter,
        [nn] { return static_cast<double>(nn->ops_served()); });
    // Service-time pair for the grey-slow detector: busy ns and items
    // completed by the serving pool, scraped as counters so the health
    // model can form a per-window mean service time.
    metrics_.RegisterCallback(
        "host.busy_ns", labels, MetricKind::kCounter,
        [nn] { return static_cast<double>(nn->cpu_pool().busy_ns()); });
    metrics_.RegisterCallback(
        "host.work", labels, MetricKind::kCounter,
        [nn] { return static_cast<double>(nn->cpu_pool().completed()); });
  }

  for (ndb::NodeId n = 0; n < ndb_->num_datanodes(); ++n) {
    ndb::NdbDatanode* node = &ndb_->datanode(n);
    const metrics::Labels labels = host_labels(node->az(), node->host());
    // A recovering node reads as up: its host is reachable and it will
    // serve again — the health model should see it as degraded (via
    // host.recovering), not dead.
    metrics_.RegisterCallback("host.up", labels, MetricKind::kGauge,
                              [node, topo] {
                                return (node->alive() || node->recovering()) &&
                                               topo->HostUp(node->host())
                                           ? 1.0
                                           : 0.0;
                              });
    metrics_.RegisterCallback(
        "host.recovering", labels, MetricKind::kGauge,
        [node] { return node->recovering() ? 1.0 : 0.0; });
    metrics_.RegisterCallback(
        "host.queue_ns", labels, MetricKind::kGauge, [node] {
          return static_cast<double>(std::max(node->tc_pool().Backlog(),
                                              node->ldm_pool().Backlog()));
        });
    metrics_.RegisterCallback("host.ops", labels, MetricKind::kCounter,
                              [node] {
                                const auto& s = node->protocol_stats();
                                return static_cast<double>(
                                    s.prepares + s.commit_hops + s.completes +
                                    s.committed_reads + s.locked_reads +
                                    s.scans);
                              });
    metrics_.RegisterCallback(
        "host.busy_ns", labels, MetricKind::kCounter, [node] {
          return static_cast<double>(node->tc_pool().busy_ns() +
                                     node->ldm_pool().busy_ns());
        });
    metrics_.RegisterCallback(
        "host.work", labels, MetricKind::kCounter, [node] {
          return static_cast<double>(node->tc_pool().completed() +
                                     node->ldm_pool().completed());
        });
    // NDB protocol series, labelled per node so per-AZ commit/prepare
    // traffic is visible in the archive (ndb.tc.commits{az=..,node=..}).
    const metrics::Labels node_labels{{"az", std::to_string(node->az())},
                                      {"node", std::to_string(n)}};
    metrics_.RegisterCallback(
        "ndb.tc.commits", node_labels, MetricKind::kCounter, [node] {
          return static_cast<double>(node->protocol_stats().commit_hops);
        });
    metrics_.RegisterCallback(
        "ndb.ldm.prepares", node_labels, MetricKind::kCounter, [node] {
          return static_cast<double>(node->protocol_stats().prepares);
        });
    metrics_.RegisterCallback(
        "ndb.tc.active_txns", node_labels, MetricKind::kGauge,
        [node] { return static_cast<double>(node->active_txns()); });
    // Durability pipeline: group-commit backlog (appended, not yet on
    // disk) and checkpoint lag (durable log not yet folded into an LCP —
    // the replay debt a crash right now would incur).
    metrics_.RegisterCallback(
        "ndb.redo.backlog_bytes", node_labels, MetricKind::kGauge, [node] {
          return static_cast<double>(node->journal().backlog_bytes());
        });
    metrics_.RegisterCallback(
        "ndb.lcp.lag", node_labels, MetricKind::kGauge, [node] {
          return static_cast<double>(node->journal().lag_bytes());
        });
    metrics_.RegisterCallback(
        "ndb.recovery.phase", node_labels, MetricKind::kGauge, [node] {
          return static_cast<double>(static_cast<int>(node->recovery_phase()));
        });
    // Cumulative time commits spent stalled behind redo backpressure
    // (log-disk saturation); rises while the unflushed backlog sits over
    // the stall threshold.
    metrics_.RegisterCallback(
        "ndb.redo.stall_ns", node_labels, MetricKind::kCounter, [node] {
          return static_cast<double>(node->redo_stall_ns());
        });
  }

  for (auto& dn_ptr : block_dns_) {
    blocks::BlockDatanode* dn = dn_ptr.get();
    const metrics::Labels labels = host_labels(dn->az(), dn->host());
    metrics_.RegisterCallback("host.up", labels, MetricKind::kGauge,
                              [dn, topo] {
                                return dn->alive() && topo->HostUp(dn->host())
                                           ? 1.0
                                           : 0.0;
                              });
    metrics_.RegisterCallback(
        "host.queue_ns", labels, MetricKind::kGauge, [dn] {
          return static_cast<double>(
              std::max(dn->cpu_pool().Backlog(), dn->disk().Backlog()));
        });
    metrics_.RegisterCallback(
        "host.ops", labels, MetricKind::kCounter,
        [dn] { return static_cast<double>(dn->disk().stats().ops); });
  }
}

void Deployment::RegisterClientTelemetry(HopsFsClient* client) {
  using metrics::MetricKind;
  const Topology* topo = topology_.get();
  const metrics::Labels labels{{"az", std::to_string(client->az())},
                               {"host", topo->name_of(client->host())}};
  metrics_.RegisterCallback(
      "host.up", labels, MetricKind::kGauge,
      [client, topo] { return topo->HostUp(client->host()) ? 1.0 : 0.0; });
  metrics_.RegisterCallback(
      "host.ops", labels, MetricKind::kCounter,
      [client] { return static_cast<double>(client->ops_submitted()); });
}

Deployment::~Deployment() {
  for (auto& t : timers_) t.Cancel();
  for (auto& nn : namenodes_) nn->Stop();
}

void Deployment::Start() {
  ndb_->StartProtocols();

  // Root inode so path resolution has an anchor.
  InodeRow root;
  root.id = kRootInode;
  root.is_dir = true;
  ndb_->BootstrapPut(tables_.inodes, InodeKey(0, ""), root.Encode());

  for (auto& nn : namenodes_) nn->Start();
  if (telemetry_ != nullptr) telemetry_->Start();

  // Datanode heartbeats: routed to the current leader namenode.
  for (auto& dn : block_dns_) {
    blocks::BlockDatanode* d = dn.get();
    timers_.push_back(sim_.Every(3 * kSecond, [this, d] {
      if (!d->alive()) return;
      Namenode* target = leader();
      if (target == nullptr) return;
      network_->Send(d->host(), target->host(), 160,
                     [target, id = d->id()] {
                       if (target->alive()) target->OnDnHeartbeat(id);
                     });
    }));
  }

  // Let a leader-election round and first heartbeats complete.
  sim_.RunFor(100 * kMillisecond);
}

Namenode* Deployment::leader() {
  for (auto& nn : namenodes_) {
    if (nn->alive() && nn->is_leader()) return nn.get();
  }
  for (auto& nn : namenodes_) {
    if (nn->alive()) return nn.get();
  }
  return nullptr;
}

HopsFsClient* Deployment::AddClient(AzId az) {
  if (az == kNoAz) {
    az = options_.client_azs[next_client_az_++ % options_.client_azs.size()];
  }
  const HostId host = topology_->AddHost(
      az, StrFormat("client-%zu", clients_.size()));
  std::vector<Namenode*> nns;
  nns.reserve(namenodes_.size());
  for (auto& nn : namenodes_) nns.push_back(nn.get());
  ClientConfig cfg = options_.client;
  cfg.az_aware = options_.override_az_nn_selection >= 0
                     ? options_.override_az_nn_selection != 0
                     : options_.az_aware;
  if (cfg.metrics == nullptr) cfg.metrics = &metrics_;
  clients_.push_back(std::make_unique<HopsFsClient>(
      sim_, *network_, std::move(nns), host, az, dn_registry_.get(), cfg));
  if (telemetry_ != nullptr) RegisterClientTelemetry(clients_.back().get());
  return clients_.back().get();
}

void Deployment::BootstrapNamespace(const std::vector<std::string>& dirs,
                                    const std::vector<std::string>& files) {
  std::map<std::string, InodeId> ids;
  ids["/"] = kRootInode;

  auto put = [this, &ids](const std::string& path, bool is_dir) {
    const auto [parent, base] = SplitParent(path);
    auto it = ids.find(parent);
    assert(it != ids.end() && "bootstrap parents must come first");
    InodeRow row;
    row.id = ++next_inode_id_;
    row.is_dir = is_dir;
    row.mtime_ns = sim_.now();
    const std::string row_key = InodeKey(it->second, base);
    if (is_dir) {
      ids[path] = row.id;
      // Steady-state hint caches (see Namenode::PrimePathCache).
      for (auto& nn : namenodes_) {
        nn->PrimePathCache(path, row.id, row_key);
      }
    }
    ndb_->BootstrapPut(tables_.inodes, row_key, row.Encode());
  };

  // Parents before children: sort by path depth.
  std::vector<std::string> sorted_dirs = dirs;
  std::sort(sorted_dirs.begin(), sorted_dirs.end(),
            [](const std::string& a, const std::string& b) {
              const auto da = std::count(a.begin(), a.end(), '/');
              const auto db = std::count(b.begin(), b.end(), '/');
              return da != db ? da < db : a < b;
            });
  for (const auto& d : sorted_dirs) put(d, /*is_dir=*/true);
  for (const auto& f : files) put(f, /*is_dir=*/false);
}

void Deployment::ResetStats() {
  ndb_->ResetStats();
  network_->ResetStats();
  for (auto& nn : namenodes_) nn->ResetStats();
}

}  // namespace repro::hopsfs
