#include "hopsfs/deployment.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "util/logging.h"
#include "util/strings.h"

namespace repro::hopsfs {

const char* PaperSetupName(PaperSetup setup) {
  switch (setup) {
    case PaperSetup::kHopsFs_2_1: return "HopsFS (2,1)";
    case PaperSetup::kHopsFs_3_1: return "HopsFS (3,1)";
    case PaperSetup::kHopsFs_2_3: return "HopsFS (2,3)";
    case PaperSetup::kHopsFs_3_3: return "HopsFS (3,3)";
    case PaperSetup::kHopsFsCl_2_3: return "HopsFS-CL (2,3)";
    case PaperSetup::kHopsFsCl_3_3: return "HopsFS-CL (3,3)";
  }
  return "?";
}

DeploymentOptions DeploymentOptions::FromPaperSetup(PaperSetup setup,
                                                    int num_namenodes) {
  DeploymentOptions o;
  o.name = PaperSetupName(setup);
  o.num_namenodes = num_namenodes;
  switch (setup) {
    case PaperSetup::kHopsFs_2_1:
      o.metadata_replication = 2;
      o.ndb_azs = {1};
      o.nn_azs = {1};
      o.client_azs = {1};
      break;
    case PaperSetup::kHopsFs_3_1:
      o.metadata_replication = 3;
      o.ndb_azs = {1};
      o.nn_azs = {1};
      o.client_azs = {1};
      break;
    case PaperSetup::kHopsFs_2_3:
    case PaperSetup::kHopsFsCl_2_3:
      // Fig. 3: metadata replicas in AZ 1 and AZ 2, arbitrator in AZ 0.
      o.metadata_replication = 2;
      o.ndb_azs = {1, 2};
      o.nn_azs = {1, 2};
      o.client_azs = {0, 1, 2};
      o.az_aware = setup == PaperSetup::kHopsFsCl_2_3;
      break;
    case PaperSetup::kHopsFs_3_3:
    case PaperSetup::kHopsFsCl_3_3:
      // Fig. 4: one full replica per AZ.
      o.metadata_replication = 3;
      o.ndb_azs = {0, 1, 2};
      o.nn_azs = {0, 1, 2};
      o.client_azs = {0, 1, 2};
      o.az_aware = setup == PaperSetup::kHopsFsCl_3_3;
      break;
  }
  o.az_aware_block_placement = o.az_aware;
  return o;
}

Deployment::Deployment(Simulation& sim, DeploymentOptions options)
    : sim_(sim), options_(std::move(options)) {
  // Resilience wiring: all layers share one counter registry, and the
  // master switch turns the whole overload-protection stack off for
  // baseline ("pre-PR") comparisons.
  if (options_.nn.metrics == nullptr) options_.nn.metrics = &metrics_;
  if (!options_.resilience) {
    options_.nn.admission_enabled = false;
    options_.nn.ndb_hedge_delay = 0;
    options_.client.op_deadline = 0;
    options_.client.retry_budget_enabled = false;
    options_.client.breaker_enabled = false;
    options_.client.hedged_reads = false;
  }

  topology_ = std::make_unique<Topology>(3, AzLatencyTable::UsWest1());
  network_ = std::make_unique<Network>(sim_, *topology_, options_.net);

  // HopsFS-CL enables Read Backup on every table (§IV-A5).
  const bool read_backup = options_.override_read_backup >= 0
                               ? options_.override_read_backup != 0
                               : options_.az_aware;
  tables_ = FsTables::Register(catalog_, read_backup);

  ndb::NdbClusterConfig ndb_cfg;
  ndb_cfg.layout.num_datanodes = options_.ndb_datanodes;
  ndb_cfg.layout.replication_factor = options_.metadata_replication;
  ndb_cfg.layout.node_az = ndb::AssignNodeAzs(
      options_.ndb_datanodes, options_.metadata_replication, options_.ndb_azs);
  ndb_cfg.layout.num_ldm_threads = options_.ndb_node.ldm_threads;
  ndb_cfg.layout.partitions_per_ldm = options_.ndb_partitions_per_ldm;
  ndb_cfg.node = options_.ndb_node;
  ndb_cfg.cost = options_.ndb_cost;
  ndb_cfg.flags.az_aware = options_.override_az_tc_selection >= 0
                               ? options_.override_az_tc_selection != 0
                               : options_.az_aware;
  ndb_cfg.mgmt_az = {0, 1, 2};
  ndb_ = std::make_unique<ndb::NdbCluster>(sim_, *network_, &catalog_,
                                           std::move(ndb_cfg));

  if (options_.block_datanodes > 0) {
    dn_registry_ = std::make_unique<blocks::DnRegistry>(
        /*heartbeat_timeout=*/10 * kSecond);
    if (options_.az_aware_block_placement) {
      placement_ = std::make_unique<blocks::AzAwarePlacement>(3);
    } else {
      placement_ = std::make_unique<blocks::DefaultPlacement>();
    }
    for (int i = 0; i < options_.block_datanodes; ++i) {
      const AzId az = options_.client_azs[i % options_.client_azs.size()];
      const HostId host = topology_->AddHost(az, StrFormat("dn-%d", i));
      block_dns_.push_back(std::make_unique<blocks::BlockDatanode>(
          sim_, *network_, i, host, az));
      dn_registry_->Register(block_dns_.back().get());
    }
  }

  for (int i = 0; i < options_.num_namenodes; ++i) {
    const AzId az = options_.nn_azs[i % options_.nn_azs.size()];
    const HostId host = topology_->AddHost(az, StrFormat("nn-%d", i));
    namenodes_.push_back(std::make_unique<Namenode>(
        sim_, *network_, *ndb_, tables_, i, host, az, dn_registry_.get(),
        placement_.get(), options_.nn));
  }
}

Deployment::~Deployment() {
  for (auto& t : timers_) t.Cancel();
  for (auto& nn : namenodes_) nn->Stop();
}

void Deployment::Start() {
  ndb_->StartProtocols();

  // Root inode so path resolution has an anchor.
  InodeRow root;
  root.id = kRootInode;
  root.is_dir = true;
  ndb_->BootstrapPut(tables_.inodes, InodeKey(0, ""), root.Encode());

  for (auto& nn : namenodes_) nn->Start();

  // Datanode heartbeats: routed to the current leader namenode.
  for (auto& dn : block_dns_) {
    blocks::BlockDatanode* d = dn.get();
    timers_.push_back(sim_.Every(3 * kSecond, [this, d] {
      if (!d->alive()) return;
      Namenode* target = leader();
      if (target == nullptr) return;
      network_->Send(d->host(), target->host(), 160,
                     [target, id = d->id()] {
                       if (target->alive()) target->OnDnHeartbeat(id);
                     });
    }));
  }

  // Let a leader-election round and first heartbeats complete.
  sim_.RunFor(100 * kMillisecond);
}

Namenode* Deployment::leader() {
  for (auto& nn : namenodes_) {
    if (nn->alive() && nn->is_leader()) return nn.get();
  }
  for (auto& nn : namenodes_) {
    if (nn->alive()) return nn.get();
  }
  return nullptr;
}

HopsFsClient* Deployment::AddClient(AzId az) {
  if (az == kNoAz) {
    az = options_.client_azs[next_client_az_++ % options_.client_azs.size()];
  }
  const HostId host = topology_->AddHost(
      az, StrFormat("client-%zu", clients_.size()));
  std::vector<Namenode*> nns;
  nns.reserve(namenodes_.size());
  for (auto& nn : namenodes_) nns.push_back(nn.get());
  ClientConfig cfg = options_.client;
  cfg.az_aware = options_.override_az_nn_selection >= 0
                     ? options_.override_az_nn_selection != 0
                     : options_.az_aware;
  if (cfg.metrics == nullptr) cfg.metrics = &metrics_;
  clients_.push_back(std::make_unique<HopsFsClient>(
      sim_, *network_, std::move(nns), host, az, dn_registry_.get(), cfg));
  return clients_.back().get();
}

void Deployment::BootstrapNamespace(const std::vector<std::string>& dirs,
                                    const std::vector<std::string>& files) {
  std::map<std::string, InodeId> ids;
  ids["/"] = kRootInode;

  auto put = [this, &ids](const std::string& path, bool is_dir) {
    const auto [parent, base] = SplitParent(path);
    auto it = ids.find(parent);
    assert(it != ids.end() && "bootstrap parents must come first");
    InodeRow row;
    row.id = ++next_inode_id_;
    row.is_dir = is_dir;
    row.mtime_ns = sim_.now();
    const std::string row_key = InodeKey(it->second, base);
    if (is_dir) {
      ids[path] = row.id;
      // Steady-state hint caches (see Namenode::PrimePathCache).
      for (auto& nn : namenodes_) {
        nn->PrimePathCache(path, row.id, row_key);
      }
    }
    ndb_->BootstrapPut(tables_.inodes, row_key, row.Encode());
  };

  // Parents before children: sort by path depth.
  std::vector<std::string> sorted_dirs = dirs;
  std::sort(sorted_dirs.begin(), sorted_dirs.end(),
            [](const std::string& a, const std::string& b) {
              const auto da = std::count(a.begin(), a.end(), '/');
              const auto db = std::count(b.begin(), b.end(), '/');
              return da != db ? da < db : a < b;
            });
  for (const auto& d : sorted_dirs) put(d, /*is_dir=*/true);
  for (const auto& f : files) put(f, /*is_dir=*/false);
}

void Deployment::ResetStats() {
  ndb_->ResetStats();
  network_->ResetStats();
  for (auto& nn : namenodes_) nn->ResetStats();
}

}  // namespace repro::hopsfs
