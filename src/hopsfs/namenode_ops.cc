// Transaction bodies of the file-system operations (§II-A2).
//
// Every operation follows HopsFS's hierarchical (implicit) locking
// discipline: resolve the path with committed reads, take a row lock only
// on the target inode (exclusive for mutations, shared for reads) and on
// the parent directory for namespace mutations, read associated metadata
// with read committed, then commit. Rename is a single transaction over
// both directory entries — the atomic-rename capability object stores
// lack (§I).
#include <algorithm>
#include <memory>

#include "hopsfs/namenode.h"
#include "hopsfs/op_context.h"
#include "prof/profiler.h"
#include "resilience/deadline.h"
#include "util/strings.h"

namespace repro::hopsfs {

namespace {

// Decodes an inode row delivered by a locked read; nullopt on any failure.
std::optional<InodeRow> DecodeInode(const std::optional<std::string>& value) {
  if (!value) return std::nullopt;
  InodeRow row;
  if (!InodeRow::Decode(*value, &row)) return std::nullopt;
  return row;
}

// Finishes the operation with PERMISSION_DENIED (non-retryable).
#define REPRO_DENY(ctx, what)                                 \
  do {                                                        \
    api_->Abort((ctx)->txn);                                  \
    (ctx)->txn = 0;                                           \
    FsResult r;                                               \
    r.status = Status(Code::kPermissionDenied, what);         \
    Finish((ctx), std::move(r));                              \
  } while (0)

}  // namespace

// ---------------------------------------------------------------------------
// mkdir
// ---------------------------------------------------------------------------

void Namenode::DoMkdir(std::shared_ptr<OpCtx> ctx) {
  PROF_ZONE("nn.op.mkdir");
  if (ctx->req.path == "/") {
    FsResult r;
    r.status = AlreadyExists("/");
    Finish(ctx, std::move(r));
    return;
  }
  // Exclusive lock on the parent directory serialises same-directory
  // namespace mutations (the implicit lock of the subtree entry).
  api_->Read(ctx->txn, tables_.inodes, std::string(ctx->dir_row_key),
             ndb::LockMode::kExclusive,
             [this, ctx](Code code, std::optional<std::string> value) {
               if (code != Code::kOk) {
                 MaybeRetry(ctx, Status(code, "mkdir: parent lock"));
                 return;
               }
               auto parent = DecodeInode(value);
               if (!parent || !parent->is_dir) {
                 MaybeRetry(ctx, NotFound("mkdir: parent missing"));
                 return;
               }
               if (!HasAccess(*parent, ctx->req.user, kWrite)) {
                 REPRO_DENY(ctx, "mkdir: no write access to parent");
                 return;
               }
               InodeRow child;
               child.id = NextInodeId();
               child.is_dir = true;
               child.permissions = ctx->req.permissions;
               child.owner = ctx->req.user;
               child.mtime_ns = sim_.now();
               api_->Insert(
                   ctx->txn, tables_.inodes, InodeKey(ctx->dir, ctx->base),
                   child.Encode(), [this, ctx, parent](Code c2) {
                     if (c2 != Code::kOk) {
                       MaybeRetry(ctx, Status(c2, "mkdir: insert"));
                       return;
                     }
                     InodeRow p = *parent;
                     p.mtime_ns = sim_.now();
                     api_->Update(ctx->txn, tables_.inodes,
                                  std::string(ctx->dir_row_key),
                                  p.Encode(), [this, ctx](Code c3) {
                                    if (c3 != Code::kOk) {
                                      MaybeRetry(ctx,
                                                 Status(c3, "mkdir: touch"));
                                      return;
                                    }
                                    api_->Commit(ctx->txn, [this,
                                                            ctx](Code c4) {
                                      ctx->txn = 0;
                                      if (c4 != Code::kOk) {
                                        MaybeRetry(ctx,
                                                   Status(c4, "mkdir: commit"));
                                        return;
                                      }
                                      Finish(ctx, FsResult{});
                                    });
                                  });
                   });
             });
}

// ---------------------------------------------------------------------------
// create
// ---------------------------------------------------------------------------

void Namenode::DoCreate(std::shared_ptr<OpCtx> ctx) {
  PROF_ZONE("nn.op.create");
  api_->Read(ctx->txn, tables_.inodes, std::string(ctx->dir_row_key),
             ndb::LockMode::kExclusive,
             [this, ctx](Code code, std::optional<std::string> value) {
               if (code != Code::kOk) {
                 MaybeRetry(ctx, Status(code, "create: parent lock"));
                 return;
               }
               auto parent = DecodeInode(value);
               if (!parent || !parent->is_dir) {
                 MaybeRetry(ctx, NotFound("create: parent missing"));
                 return;
               }
               if (!HasAccess(*parent, ctx->req.user, kWrite)) {
                 REPRO_DENY(ctx, "create: no write access to parent");
                 return;
               }

               const int64_t size = ctx->req.size;
               InodeRow file;
               file.id = NextInodeId();
               file.is_dir = false;
               file.size = size;
               file.permissions = ctx->req.permissions;
               file.owner = ctx->req.user;
               file.mtime_ns = sim_.now();
               file.has_inline_data = size > 0 && size < kSmallFileThreshold;
               file.num_blocks =
                   size >= kSmallFileThreshold
                       ? static_cast<int32_t>((size + kDefaultBlockSize - 1) /
                                              kDefaultBlockSize)
                       : 0;

               // Collect all row writes of this transaction, then commit
               // once every prepare has been acknowledged.
               auto pending = std::make_shared<int>(0);
               auto failed = std::make_shared<Code>(Code::kOk);
               auto result = std::make_shared<FsResult>();
               auto one_done = [this, ctx, pending, failed,
                                result](Code c) mutable {
                 if (c != Code::kOk && *failed == Code::kOk) *failed = c;
                 if (--*pending > 0) return;
                 if (*failed != Code::kOk) {
                   MaybeRetry(ctx, Status(*failed, "create: write"));
                   return;
                 }
                 api_->Commit(ctx->txn, [this, ctx, result](Code c2) {
                   ctx->txn = 0;
                   if (c2 != Code::kOk) {
                     MaybeRetry(ctx, Status(c2, "create: commit"));
                     return;
                   }
                   Finish(ctx, std::move(*result));
                 });
               };

               // Reserve every completion slot before issuing any
               // operation: a synchronously-failing op must not drive the
               // counter to zero while later ops are still unissued.
               *pending += 1;  // the inode insert
               if (file.has_inline_data) *pending += 1;
               *pending += 1;  // the parent mtime touch
               std::vector<BlockRow> blocks;
               if (file.num_blocks > 0) {
                 int64_t remaining = size;
                 for (int32_t i = 0; i < file.num_blocks; ++i) {
                   BlockRow b;
                   b.block_id = NextBlockId();
                   b.num_bytes = std::min<int64_t>(remaining,
                                                   kDefaultBlockSize);
                   remaining -= b.num_bytes;
                   if (dn_registry_ != nullptr && placement_ != nullptr) {
                     const AzId writer = ctx->req.client_az != kNoAz
                                             ? ctx->req.client_az
                                             : az_;
                     for (blocks::DnId d : placement_->ChooseTargets(
                              config_.block_replication, writer,
                              *dn_registry_, sim_.now(), rng_)) {
                       b.replicas.push_back(d);
                     }
                   }
                   *pending += 1;                                  // block row
                   *pending += static_cast<int>(b.replicas.size());  // index
                   blocks.push_back(std::move(b));
                 }
               }
               result->new_blocks = blocks;
               result->inode = file;

               api_->Insert(ctx->txn, tables_.inodes,
                            InodeKey(ctx->dir, ctx->base), file.Encode(),
                            one_done);
               if (file.has_inline_data) {
                 api_->Write(ctx->txn, tables_.inline_data,
                             InlineDataKey(file.id),
                             std::string(static_cast<size_t>(size), 'd'),
                             one_done);
               }
               for (size_t i = 0; i < blocks.size(); ++i) {
                 const std::string bkey =
                     BlockKey(file.id, static_cast<int32_t>(i));
                 api_->Insert(ctx->txn, tables_.blocks, bkey,
                              blocks[i].Encode(), one_done);
                 for (blocks::DnId d : blocks[i].replicas) {
                   api_->Insert(ctx->txn, tables_.dn_blocks,
                                DnBlockKey(d, blocks[i].block_id), bkey,
                                one_done);
                 }
               }
               InodeRow p = *parent;
               p.mtime_ns = sim_.now();
               api_->Update(ctx->txn, tables_.inodes,
                            std::string(ctx->dir_row_key), p.Encode(),
                            one_done);
             });
}

// ---------------------------------------------------------------------------
// stat
// ---------------------------------------------------------------------------

// Read-only operations (stat, listing, open) read the target inode with
// read committed instead of a shared lock (§I: "read and fstat ... prefer
// reading replicas local to the client's AZ - enabled by synchronous
// replication"): with Read Backup the commit ack guarantees every replica
// is current, so the lock-free read is consistent and AZ-local.
void Namenode::DoStat(std::shared_ptr<OpCtx> ctx) {
  PROF_ZONE("nn.op.stat");
  // The wire key is built directly in the call: one string materialised,
  // no named copy (this runs synchronously inside nn.op.dispatch).
  api_->Read(ctx->txn, tables_.inodes,
             ctx->req.path == "/" ? InodeKey(0, "")
                                  : InodeKey(ctx->dir, ctx->base),
             ndb::LockMode::kReadCommitted,
             [this, ctx](Code code, std::optional<std::string> value) {
               if (code != Code::kOk) {
                 MaybeRetry(ctx, Status(code, "stat: read"));
                 return;
               }
               auto row = DecodeInode(value);
               if (!row) {
                 MaybeRetry(ctx, NotFound("stat: no such path"));
                 return;
               }
               if (!HasAccess(*row, ctx->req.user, kRead)) {
                 REPRO_DENY(ctx, "stat: no read access");
                 return;
               }
               FsResult r;
               r.inode = *row;
               api_->Commit(ctx->txn, [this, ctx, r](Code c2) mutable {
                 ctx->txn = 0;
                 if (c2 != Code::kOk) {
                   MaybeRetry(ctx, Status(c2, "stat: commit"));
                   return;
                 }
                 Finish(ctx, std::move(r));
               });
             });
}

// ---------------------------------------------------------------------------
// open / read file
// ---------------------------------------------------------------------------

void Namenode::DoOpenRead(std::shared_ptr<OpCtx> ctx) {
  PROF_ZONE("nn.op.open_read");
  api_->Read(
      ctx->txn, tables_.inodes,
      ctx->req.path == "/" ? InodeKey(0, "") : InodeKey(ctx->dir, ctx->base),
      ndb::LockMode::kReadCommitted,
      [this, ctx](Code code, std::optional<std::string> value) {
        if (code != Code::kOk) {
          MaybeRetry(ctx, Status(code, "read: stat"));
          return;
        }
        auto row = DecodeInode(value);
        if (!row) {
          MaybeRetry(ctx, NotFound("read: no such file"));
          return;
        }
        if (!HasAccess(*row, ctx->req.user, kRead)) {
          REPRO_DENY(ctx, "read: no read access");
          return;
        }
        if (row->is_dir) {
          api_->Abort(ctx->txn);
          ctx->txn = 0;
          FsResult r;
          r.status = FailedPrecondition("read: is a directory");
          Finish(ctx, std::move(r));
          return;
        }
        auto finish_with = [this, ctx](FsResult r) {
          api_->Commit(ctx->txn, [this, ctx, r](Code c) mutable {
            ctx->txn = 0;
            if (c != Code::kOk) {
              MaybeRetry(ctx, Status(c, "read: commit"));
              return;
            }
            Finish(ctx, std::move(r));
          });
        };
        FsResult r;
        r.inode = *row;
        if (row->has_inline_data) {
          // Small file: the payload lives with the metadata (§II-A3).
          api_->Read(ctx->txn, tables_.inline_data, InlineDataKey(row->id),
                     ndb::LockMode::kReadCommitted,
                     [this, ctx, r, finish_with](
                         Code c2, std::optional<std::string> data) mutable {
                       if (c2 != Code::kOk) {
                         MaybeRetry(ctx, Status(c2, "read: inline data"));
                         return;
                       }
                       r.inline_bytes =
                           data ? static_cast<int64_t>(data->size()) : 0;
                       finish_with(std::move(r));
                     });
          return;
        }
        if (row->num_blocks > 0) {
          api_->ScanPrefix(
              ctx->txn, tables_.blocks, BlocksOfInodePrefix(row->id),
              [this, ctx, r, finish_with](
                  Code c2,
                  std::vector<std::pair<ndb::Key, std::string>> rows) mutable {
                if (c2 != Code::kOk) {
                  MaybeRetry(ctx, Status(c2, "read: block scan"));
                  return;
                }
                for (const auto& [k, v] : rows) {
                  BlockRow b;
                  if (BlockRow::Decode(v, &b)) r.blocks.push_back(b);
                }
                finish_with(std::move(r));
              });
          return;
        }
        finish_with(std::move(r));
      });
}

// ---------------------------------------------------------------------------
// delete
// ---------------------------------------------------------------------------

void Namenode::DoDelete(std::shared_ptr<OpCtx> ctx) {
  PROF_ZONE("nn.op.delete");
  api_->Read(
      ctx->txn, tables_.inodes, std::string(ctx->dir_row_key),
      ndb::LockMode::kExclusive,
      [this, ctx](Code code, std::optional<std::string> pvalue) {
        if (code != Code::kOk) {
          MaybeRetry(ctx, Status(code, "delete: parent lock"));
          return;
        }
        auto parent = DecodeInode(pvalue);
        if (!parent) {
          MaybeRetry(ctx, NotFound("delete: parent missing"));
          return;
        }
        if (!HasAccess(*parent, ctx->req.user, kWrite)) {
          REPRO_DENY(ctx, "delete: no write access to parent");
          return;
        }
        api_->Read(
            ctx->txn, tables_.inodes, InodeKey(ctx->dir, ctx->base),
            ndb::LockMode::kExclusive,
            [this, ctx, parent](Code c2, std::optional<std::string> value) {
              if (c2 != Code::kOk) {
                MaybeRetry(ctx, Status(c2, "delete: target lock"));
                return;
              }
              auto row = DecodeInode(value);
              if (!row) {
                MaybeRetry(ctx, NotFound("delete: no such path"));
                return;
              }
              auto proceed = [this, ctx, parent,
                              row](std::vector<BlockRow> blocks) {
                auto pending = std::make_shared<int>(0);
                auto failed = std::make_shared<Code>(Code::kOk);
                auto blocks_copy =
                    std::make_shared<std::vector<BlockRow>>(blocks);
                auto one_done = [this, ctx, pending, failed,
                                 blocks_copy](Code c) {
                  if (c != Code::kOk && *failed == Code::kOk) *failed = c;
                  if (--*pending > 0) return;
                  if (*failed != Code::kOk) {
                    MaybeRetry(ctx, Status(*failed, "delete: write"));
                    return;
                  }
                  api_->Commit(ctx->txn, [this, ctx, blocks_copy](Code cc) {
                    ctx->txn = 0;
                    if (cc != Code::kOk) {
                      MaybeRetry(ctx, Status(cc, "delete: commit"));
                      return;
                    }
                    // Post-commit: tell the datanodes to drop replicas.
                    if (dn_registry_ != nullptr) {
                      for (const auto& b : *blocks_copy) {
                        for (blocks::DnId d : b.replicas) {
                          auto* dn = dn_registry_->dn(d);
                          network_.Send(host_, dn->host(), 96,
                                        [dn, id = b.block_id] {
                                          dn->DeleteBlock(id);
                                        });
                        }
                      }
                    }
                    Finish(ctx, FsResult{});
                  });
                };

                *pending += 1;  // target delete
                if (row->has_inline_data) *pending += 1;
                for (const auto& b : blocks) {
                  *pending += 1;  // block row
                  *pending += static_cast<int>(b.replicas.size());
                }
                *pending += 1;  // parent touch

                api_->Delete(ctx->txn, tables_.inodes,
                             InodeKey(ctx->dir, ctx->base), one_done);
                if (row->has_inline_data) {
                  api_->Delete(ctx->txn, tables_.inline_data,
                               InlineDataKey(row->id), one_done);
                }
                for (size_t i = 0; i < blocks.size(); ++i) {
                  api_->Delete(ctx->txn, tables_.blocks,
                               BlockKey(row->id, static_cast<int32_t>(i)),
                               one_done);
                  for (blocks::DnId d : blocks[i].replicas) {
                    api_->Delete(ctx->txn, tables_.dn_blocks,
                                 DnBlockKey(d, blocks[i].block_id), one_done);
                  }
                }
                InodeRow p = *parent;
                p.mtime_ns = sim_.now();
                api_->Update(ctx->txn, tables_.inodes,
                             std::string(ctx->dir_row_key), p.Encode(),
                             one_done);
              };

              if (row->is_dir) {
                api_->ScanPrefix(
                    ctx->txn, tables_.inodes, InodeChildrenPrefix(row->id),
                    [this, ctx, proceed](
                        Code c3,
                        std::vector<std::pair<ndb::Key, std::string>> rows) {
                      if (c3 != Code::kOk) {
                        MaybeRetry(ctx, Status(c3, "delete: child scan"));
                        return;
                      }
                      if (!rows.empty()) {
                        api_->Abort(ctx->txn);
                        ctx->txn = 0;
                        FsResult r;
                        r.status =
                            FailedPrecondition("delete: directory not empty");
                        Finish(ctx, std::move(r));
                        return;
                      }
                      proceed({});
                    });
                return;
              }
              if (row->num_blocks > 0) {
                api_->ScanPrefix(
                    ctx->txn, tables_.blocks, BlocksOfInodePrefix(row->id),
                    [this, ctx, proceed](
                        Code c3,
                        std::vector<std::pair<ndb::Key, std::string>> rows) {
                      if (c3 != Code::kOk) {
                        MaybeRetry(ctx, Status(c3, "delete: block scan"));
                        return;
                      }
                      std::vector<BlockRow> blocks;
                      for (const auto& [k, v] : rows) {
                        BlockRow b;
                        if (BlockRow::Decode(v, &b)) blocks.push_back(b);
                      }
                      proceed(std::move(blocks));
                    });
                return;
              }
              proceed({});
            });
      });
}

// ---------------------------------------------------------------------------
// listdir
// ---------------------------------------------------------------------------

void Namenode::DoListDir(std::shared_ptr<OpCtx> ctx) {
  PROF_ZONE("nn.op.list_dir");
  api_->Read(
      ctx->txn, tables_.inodes,
      ctx->req.path == "/" ? InodeKey(0, "") : InodeKey(ctx->dir, ctx->base),
      ndb::LockMode::kReadCommitted,
      [this, ctx](Code code, std::optional<std::string> value) {
        if (code != Code::kOk) {
          MaybeRetry(ctx, Status(code, "ls: read"));
          return;
        }
        auto row = DecodeInode(value);
        if (!row) {
          MaybeRetry(ctx, NotFound("ls: no such path"));
          return;
        }
        if (!HasAccess(*row, ctx->req.user, kRead)) {
          REPRO_DENY(ctx, "ls: no read access");
          return;
        }
        FsResult r;
        r.inode = *row;
        if (!row->is_dir) {
          // HDFS semantics: listing a file returns the file itself.
          r.children.emplace_back(ctx->base);
          api_->Commit(ctx->txn, [this, ctx, r](Code c2) mutable {
            ctx->txn = 0;
            if (c2 != Code::kOk) {
              MaybeRetry(ctx, Status(c2, "ls: commit"));
              return;
            }
            Finish(ctx, std::move(r));
          });
          return;
        }
        const std::string prefix = InodeChildrenPrefix(row->id);
        api_->ScanPrefix(
            ctx->txn, tables_.inodes, prefix,
            [this, ctx, r, prefix](
                Code c2,
                std::vector<std::pair<ndb::Key, std::string>> rows) mutable {
              if (c2 != Code::kOk) {
                MaybeRetry(ctx, Status(c2, "ls: scan"));
                return;
              }
              for (const auto& [k, v] : rows) {
                r.children.push_back(k.substr(prefix.size()));
              }
              api_->Commit(ctx->txn, [this, ctx, r](Code c3) mutable {
                ctx->txn = 0;
                if (c3 != Code::kOk) {
                  MaybeRetry(ctx, Status(c3, "ls: commit"));
                  return;
                }
                Finish(ctx, std::move(r));
              });
            });
      });
}

// ---------------------------------------------------------------------------
// rename
// ---------------------------------------------------------------------------

void Namenode::DoRename(std::shared_ptr<OpCtx> ctx) {
  PROF_ZONE("nn.op.rename");
  const std::string& src_path = ctx->req.path;
  const std::string& dst_path = ctx->req.path2;
  // "dst under src" check without materialising src + "/".
  const bool dst_inside_src = StartsWith(dst_path, src_path) &&
                              dst_path.size() > src_path.size() &&
                              dst_path[src_path.size()] == '/';
  if (src_path == "/" || dst_path.empty() || dst_path == "/" ||
      dst_inside_src) {
    FsResult r;
    r.status = InvalidArgument("rename: bad paths");
    Finish(ctx, std::move(r));
    return;
  }
  auto [dst_parent, dst_base] = SplitParentView(dst_path);
  ctx->dst_base = dst_base;  // view into req.path2, stable for the op
  ResolveDir(ctx, dst_parent, [this, ctx](InodeId dst_dir,
                                          std::string_view dst_key) {
    ctx->dst_dir = dst_dir;
    ctx->dst_dir_row_key = ctx->arena.Intern(dst_key);

    // Lock the two parent directories in row-key order (deadlock
    // avoidance), then move the entry.
    std::vector<std::string> parent_keys;
    parent_keys.emplace_back(ctx->dir_row_key);
    if (ctx->dst_dir_row_key != ctx->dir_row_key) {
      parent_keys.emplace_back(ctx->dst_dir_row_key);
    }
    std::sort(parent_keys.begin(), parent_keys.end());

    auto after_parent_locks = [this, ctx] {
      api_->Read(
          ctx->txn, tables_.inodes, InodeKey(ctx->dir, ctx->base),
          ndb::LockMode::kExclusive,
          [this, ctx](Code code, std::optional<std::string> value) {
            if (code != Code::kOk) {
              MaybeRetry(ctx, Status(code, "rename: src lock"));
              return;
            }
            auto row = DecodeInode(value);
            if (!row) {
              MaybeRetry(ctx, NotFound("rename: source missing"));
              return;
            }
            api_->Insert(
                ctx->txn, tables_.inodes,
                InodeKey(ctx->dst_dir, ctx->dst_base), row->Encode(),
                [this, ctx](Code c2) {
                  if (c2 != Code::kOk) {
                    MaybeRetry(ctx, Status(c2, "rename: dst insert"));
                    return;
                  }
                  api_->Delete(
                      ctx->txn, tables_.inodes, InodeKey(ctx->dir, ctx->base),
                      [this, ctx](Code c3) {
                        if (c3 != Code::kOk) {
                          MaybeRetry(ctx, Status(c3, "rename: src delete"));
                          return;
                        }
                        api_->Commit(ctx->txn, [this, ctx](Code c4) {
                          ctx->txn = 0;
                          if (c4 != Code::kOk) {
                            MaybeRetry(ctx, Status(c4, "rename: commit"));
                            return;
                          }
                          // Drop hints under the moved path.
                          const std::string& src = ctx->req.path;
                          for (auto it = path_cache_.begin();
                               it != path_cache_.end();) {
                            const std::string& p = it->first;
                            const bool under =
                                StartsWith(p, src) &&
                                p.size() > src.size() &&
                                p[src.size()] == '/';
                            if (p == src || under) {
                              it = path_cache_.erase(it);
                            } else {
                              ++it;
                            }
                          }
                          Finish(ctx, FsResult{});
                        });
                      });
                });
          });
      };

    // Sequentially X-lock the parents in sorted order. The self-
    // referencing closure captures itself weakly (see ResolveDir).
    auto lock_parent = std::make_shared<std::function<void(size_t)>>();
    auto keys = std::make_shared<std::vector<std::string>>(parent_keys);
    std::weak_ptr<std::function<void(size_t)>> weak_lock = lock_parent;
    *lock_parent = [this, ctx, keys, weak_lock,
                    after_parent_locks](size_t i) {
      auto self = weak_lock.lock();
      if (!self) return;
      if (i == keys->size()) {
        after_parent_locks();
        return;
      }
      api_->Read(ctx->txn, tables_.inodes, (*keys)[i],
                 ndb::LockMode::kExclusive,
                 [this, ctx, self, i](
                     Code code, std::optional<std::string> value) {
                   if (code != Code::kOk) {
                     MaybeRetry(ctx, Status(code, "rename: parent lock"));
                     return;
                   }
                   auto parent = DecodeInode(value);
                   if (!parent) {
                     MaybeRetry(ctx, NotFound("rename: parent missing"));
                     return;
                   }
                   if (!HasAccess(*parent, ctx->req.user, kWrite)) {
                     REPRO_DENY(ctx, "rename: no write access to parent");
                     return;
                   }
                   (*self)(i + 1);
                 });
    };
    (*lock_parent)(0);
  });
}

// ---------------------------------------------------------------------------
// chmod / chown / setTimes (attribute read-modify-write)
// ---------------------------------------------------------------------------

void Namenode::DoSetAttr(std::shared_ptr<OpCtx> ctx) {
  PROF_ZONE("nn.op.set_attr");
  const std::string key =
      ctx->req.path == "/" ? InodeKey(0, "") : InodeKey(ctx->dir, ctx->base);
  api_->Read(ctx->txn, tables_.inodes, key, ndb::LockMode::kExclusive,
             [this, ctx, key](Code code, std::optional<std::string> value) {
               if (code != Code::kOk) {
                 MaybeRetry(ctx, Status(code, "setattr: lock"));
                 return;
               }
               auto row = DecodeInode(value);
               if (!row) {
                 MaybeRetry(ctx, NotFound("setattr: no such path"));
                 return;
               }
               // chmod/chown require ownership (or the superuser);
               // setTimes requires write access.
               const std::string& user = ctx->req.user;
               const bool is_owner = user.empty() || user == row->owner;
               if ((ctx->req.op == FsOp::kChmod ||
                    ctx->req.op == FsOp::kChown) &&
                   !is_owner) {
                 REPRO_DENY(ctx, "setattr: not the owner");
                 return;
               }
               if (ctx->req.op == FsOp::kSetTimes &&
                   !HasAccess(*row, user, kWrite)) {
                 REPRO_DENY(ctx, "setattr: no write access");
                 return;
               }
               switch (ctx->req.op) {
                 case FsOp::kChmod:
                   row->permissions = ctx->req.permissions;
                   row->mtime_ns = sim_.now();
                   break;
                 case FsOp::kChown:
                   row->owner = ctx->req.owner;
                   row->mtime_ns = sim_.now();
                   break;
                 case FsOp::kSetTimes:
                 default:
                   row->mtime_ns = ctx->req.mtime_ns;
                   break;
               }
               api_->Update(ctx->txn, tables_.inodes, key, row->Encode(),
                            [this, ctx](Code c2) {
                              if (c2 != Code::kOk) {
                                MaybeRetry(ctx, Status(c2, "setattr: update"));
                                return;
                              }
                              api_->Commit(ctx->txn, [this, ctx](Code c3) {
                                ctx->txn = 0;
                                if (c3 != Code::kOk) {
                                  MaybeRetry(ctx,
                                             Status(c3, "setattr: commit"));
                                  return;
                                }
                                Finish(ctx, FsResult{});
                              });
                            });
             });
}

// ---------------------------------------------------------------------------
// append
// ---------------------------------------------------------------------------

void Namenode::DoAppend(std::shared_ptr<OpCtx> ctx) {
  PROF_ZONE("nn.op.append");
  const std::string key = InodeKey(ctx->dir, ctx->base);
  api_->Read(
      ctx->txn, tables_.inodes, key, ndb::LockMode::kExclusive,
      [this, ctx, key](Code code, std::optional<std::string> value) {
        if (code != Code::kOk) {
          MaybeRetry(ctx, Status(code, "append: lock"));
          return;
        }
        auto row = DecodeInode(value);
        if (!row) {
          MaybeRetry(ctx, NotFound("append: no such file"));
          return;
        }
        if (!HasAccess(*row, ctx->req.user, kWrite)) {
          REPRO_DENY(ctx, "append: no write access");
          return;
        }
        if (row->is_dir) {
          api_->Abort(ctx->txn);
          ctx->txn = 0;
          FsResult r;
          r.status = FailedPrecondition("append: is a directory");
          Finish(ctx, std::move(r));
          return;
        }

        const int64_t old_size = row->size;
        const int64_t new_size = old_size + ctx->req.size;
        InodeRow updated = *row;
        updated.size = new_size;
        updated.mtime_ns = sim_.now();

        auto pending = std::make_shared<int>(0);
        auto failed = std::make_shared<Code>(Code::kOk);
        auto result = std::make_shared<FsResult>();
        auto one_done = [this, ctx, pending, failed, result](Code c) {
          if (c != Code::kOk && *failed == Code::kOk) *failed = c;
          if (--*pending > 0) return;
          if (*failed != Code::kOk) {
            MaybeRetry(ctx, Status(*failed, "append: write"));
            return;
          }
          api_->Commit(ctx->txn, [this, ctx, result](Code c2) {
            ctx->txn = 0;
            if (c2 != Code::kOk) {
              MaybeRetry(ctx, Status(c2, "append: commit"));
              return;
            }
            Finish(ctx, std::move(*result));
          });
        };

        // Reserve the inode-update slot up front (see DoCreate).
        *pending += 1;
        std::vector<BlockRow> new_blocks;
        if (new_size < kSmallFileThreshold) {
          // Still small: grow the inline payload (§II-A3).
          updated.has_inline_data = new_size > 0;
          if (updated.has_inline_data) {
            *pending += 1;
            api_->Write(ctx->txn, tables_.inline_data,
                        InlineDataKey(updated.id),
                        std::string(static_cast<size_t>(new_size), 'd'),
                        one_done);
          }
        } else {
          // Crosses (or is already past) the threshold: block storage.
          if (row->has_inline_data) {
            *pending += 1;
            api_->Delete(ctx->txn, tables_.inline_data,
                         InlineDataKey(updated.id), one_done);
            updated.has_inline_data = false;
          }
          const int32_t blocks_needed = static_cast<int32_t>(
              (new_size + kDefaultBlockSize - 1) / kDefaultBlockSize);
          for (int32_t i = updated.num_blocks; i < blocks_needed; ++i) {
            BlockRow b;
            b.block_id = NextBlockId();
            b.num_bytes =
                std::min<int64_t>(kDefaultBlockSize,
                                  new_size - int64_t{i} * kDefaultBlockSize);
            if (dn_registry_ != nullptr && placement_ != nullptr) {
              const AzId writer = ctx->req.client_az != kNoAz
                                      ? ctx->req.client_az
                                      : az_;
              for (blocks::DnId d : placement_->ChooseTargets(
                       config_.block_replication, writer, *dn_registry_,
                       sim_.now(), rng_)) {
                b.replicas.push_back(d);
              }
            }
            *pending += 1;
            api_->Insert(ctx->txn, tables_.blocks, BlockKey(updated.id, i),
                         b.Encode(), one_done);
            for (blocks::DnId d : b.replicas) {
              *pending += 1;
              api_->Insert(ctx->txn, tables_.dn_blocks,
                           DnBlockKey(d, b.block_id), BlockKey(updated.id, i),
                           one_done);
            }
            new_blocks.push_back(std::move(b));
          }
          updated.num_blocks = blocks_needed;
        }
        result->new_blocks = std::move(new_blocks);
        result->inode = updated;
        api_->Update(ctx->txn, tables_.inodes, key, updated.Encode(),
                     one_done);
      });
}

// ---------------------------------------------------------------------------
// content summary (du)
// ---------------------------------------------------------------------------

void Namenode::DoContentSummary(std::shared_ptr<OpCtx> ctx) {
  PROF_ZONE("nn.op.content_summary");
  api_->Read(
      ctx->txn, tables_.inodes,
      ctx->req.path == "/" ? InodeKey(0, "") : InodeKey(ctx->dir, ctx->base),
      ndb::LockMode::kReadCommitted,
      [this, ctx](Code code, std::optional<std::string> value) {
        if (code != Code::kOk) {
          MaybeRetry(ctx, Status(code, "du: read"));
          return;
        }
        auto row = DecodeInode(value);
        if (!row) {
          MaybeRetry(ctx, NotFound("du: no such path"));
          return;
        }
        auto result = std::make_shared<FsResult>();
        if (!row->is_dir) {
          result->cs_files = 1;
          result->cs_bytes = row->size;
          api_->Commit(ctx->txn, [this, ctx, result](Code c) {
            ctx->txn = 0;
            if (c != Code::kOk) {
              MaybeRetry(ctx, Status(c, "du: commit"));
              return;
            }
            Finish(ctx, std::move(*result));
          });
          return;
        }
        result->cs_dirs = 1;
        // Breadth-first walk over directory partitions with committed
        // scans (read-only: no locks; a concurrent mutation may be
        // half-visible, like HDFS's du).
        auto frontier = std::make_shared<std::vector<InodeId>>();
        frontier->push_back(row->id);
        auto step = std::make_shared<std::function<void()>>();
        std::weak_ptr<std::function<void()>> weak = step;
        *step = [this, ctx, result, frontier, weak] {
          auto self = weak.lock();
          if (!self) return;
          // A du over a huge subtree can outlive its deadline mid-walk:
          // stop between scan batches rather than finishing doomed work.
          if (resilience::DeadlineExpired(ctx->req.deadline, sim_.now())) {
            MaybeRetry(ctx, DeadlineExceeded("du: deadline passed"));
            return;
          }
          if (frontier->empty()) {
            api_->Commit(ctx->txn, [this, ctx, result](Code c) {
              ctx->txn = 0;
              if (c != Code::kOk) {
                MaybeRetry(ctx, Status(c, "du: commit"));
                return;
              }
              Finish(ctx, std::move(*result));
            });
            return;
          }
          const InodeId dir = frontier->back();
          frontier->pop_back();
          api_->ScanPrefix(
              ctx->txn, tables_.inodes, InodeChildrenPrefix(dir),
              [this, ctx, result, frontier, self](
                  Code c, std::vector<std::pair<ndb::Key, std::string>> rows) {
                if (c != Code::kOk) {
                  MaybeRetry(ctx, Status(c, "du: scan"));
                  return;
                }
                for (const auto& [k, v] : rows) {
                  InodeRow child;
                  if (!InodeRow::Decode(v, &child)) continue;
                  if (child.is_dir) {
                    result->cs_dirs += 1;
                    frontier->push_back(child.id);
                  } else {
                    result->cs_files += 1;
                    result->cs_bytes += child.size;
                  }
                }
                (*self)();
              });
        };
        (*step)();
      });
}

// ---------------------------------------------------------------------------
// recursive delete (subtree operation)
// ---------------------------------------------------------------------------

void Namenode::DoDeleteRecursive(std::shared_ptr<OpCtx> ctx) {
  PROF_ZONE("nn.op.delete_recursive");
  if (ctx->req.path == "/") {
    FsResult r;
    r.status = InvalidArgument("cannot delete the root");
    Finish(ctx, std::move(r));
    return;
  }
  // Lock the parent and the subtree root exclusively (the implicit
  // subtree lock of HopsFS's subtree-operation protocol, condensed into
  // one transaction at simulator scale).
  api_->Read(
      ctx->txn, tables_.inodes, std::string(ctx->dir_row_key),
      ndb::LockMode::kExclusive,
      [this, ctx](Code code, std::optional<std::string> pvalue) {
        if (code != Code::kOk) {
          MaybeRetry(ctx, Status(code, "rmr: parent lock"));
          return;
        }
        auto rparent = DecodeInode(pvalue);
        if (!rparent) {
          MaybeRetry(ctx, NotFound("rmr: parent missing"));
          return;
        }
        if (!HasAccess(*rparent, ctx->req.user, kWrite)) {
          REPRO_DENY(ctx, "rmr: no write access to parent");
          return;
        }
        const std::string root_key = InodeKey(ctx->dir, ctx->base);
        api_->Read(
            ctx->txn, tables_.inodes, root_key, ndb::LockMode::kExclusive,
            [this, ctx, root_key](Code c2,
                                  std::optional<std::string> value) {
              if (c2 != Code::kOk) {
                MaybeRetry(ctx, Status(c2, "rmr: root lock"));
                return;
              }
              auto row = DecodeInode(value);
              if (!row) {
                MaybeRetry(ctx, NotFound("rmr: no such path"));
                return;
              }
              // Gather the subtree (keys + inode rows) breadth-first,
              // then delete everything in one commit.
              struct Gather {
                std::vector<std::pair<std::string, InodeRow>> doomed;
                std::vector<InodeId> frontier;
              };
              auto g = std::make_shared<Gather>();
              g->doomed.emplace_back(root_key, *row);
              if (row->is_dir) g->frontier.push_back(row->id);

              auto step = std::make_shared<std::function<void()>>();
              std::weak_ptr<std::function<void()>> weak = step;
              *step = [this, ctx, g, weak] {
                auto self = weak.lock();
                if (!self) return;
                if (resilience::DeadlineExpired(ctx->req.deadline,
                                                sim_.now())) {
                  MaybeRetry(ctx, DeadlineExceeded("rmr: deadline passed"));
                  return;
                }
                if (!g->frontier.empty()) {
                  const InodeId dir = g->frontier.back();
                  g->frontier.pop_back();
                  api_->ScanPrefix(
                      ctx->txn, tables_.inodes, InodeChildrenPrefix(dir),
                      [this, ctx, g, dir, self](
                          Code c,
                          std::vector<std::pair<ndb::Key, std::string>> rows) {
                        if (c != Code::kOk) {
                          MaybeRetry(ctx, Status(c, "rmr: scan"));
                          return;
                        }
                        for (const auto& [k, v] : rows) {
                          InodeRow child;
                          if (!InodeRow::Decode(v, &child)) continue;
                          g->doomed.emplace_back(k, child);
                          if (child.is_dir) g->frontier.push_back(child.id);
                        }
                        (*self)();
                      });
                  return;
                }
                // Delete every gathered row (plus inline payloads).
                auto pending = std::make_shared<int>(0);
                auto failed = std::make_shared<Code>(Code::kOk);
                auto one_done = [this, ctx, pending, failed](Code c) {
                  if (c != Code::kOk && *failed == Code::kOk) *failed = c;
                  if (--*pending > 0) return;
                  if (*failed != Code::kOk) {
                    MaybeRetry(ctx, Status(*failed, "rmr: delete"));
                    return;
                  }
                  api_->Commit(ctx->txn, [this, ctx](Code c2) {
                    ctx->txn = 0;
                    if (c2 != Code::kOk) {
                      MaybeRetry(ctx, Status(c2, "rmr: commit"));
                      return;
                    }
                    Finish(ctx, FsResult{});
                  });
                };
                for (const auto& [k, inode] : g->doomed) {
                  *pending += 1;
                  if (inode.has_inline_data) *pending += 1;
                }
                for (const auto& [k, inode] : g->doomed) {
                  api_->Delete(ctx->txn, tables_.inodes, k, one_done);
                  if (inode.has_inline_data) {
                    api_->Delete(ctx->txn, tables_.inline_data,
                                 InlineDataKey(inode.id), one_done);
                  }
                }
              };
              (*step)();
            });
      });
}

}  // namespace repro::hopsfs
