// Leader election through the database (§II-A2, §IV-B) and the leader's
// housekeeping duties (block re-replication, §IV-C2).
//
// Following the HopsFS leader-election protocol, every namenode bumps a
// counter row in NDB each round (default 2 s) — extended by the paper to
// carry the namenode's locationDomainId so clients can discover AZ-local
// namenodes — then reads everyone's rows. A namenode whose counter has
// not advanced for two consecutive rounds is considered dead; the alive
// namenode with the smallest id is the leader.
#include <algorithm>

#include "hopsfs/namenode.h"
#include "prof/profiler.h"
#include "util/logging.h"

namespace repro::hopsfs {

namespace {
constexpr const char* kLog = "hopsfs.le";
constexpr int kMissesForDead = 2;
}  // namespace

void Namenode::LeaderElectionRound() {
  // Leader lease: peers declare us dead once our counter stops advancing
  // for kMissesForDead of their rounds, so we may keep leading only while
  // our own publishes are landing. Checked up front — a leader whose NDB
  // access is cut entirely never reaches the election callbacks below and
  // would otherwise keep claiming leadership through the outage.
  if (is_leader_ && (le_publish_ok_at_ < 0 ||
                     sim_.now() - le_publish_ok_at_ >
                         kMissesForDead * config_.leader_interval)) {
    RLOG_INFO(kLog, "nn %d relinquishing leadership (own heartbeat row "
              "not advancing)",
              nn_id_);
    is_leader_ = false;
    rep_timer_.Cancel();
  }

  // Phase 1: publish our heartbeat row.
  NnHeartbeatRow hb;
  hb.nn_id = nn_id_;
  hb.counter = ++le_counter_;
  hb.location_domain_id = az_;
  hb.host = host_;
  const ndb::TxnId txn = api_->Begin(tables_.vars, NnHeartbeatKey(nn_id_));
  if (txn == 0) return;  // NDB unreachable; try again next round
  api_->Write(txn, tables_.vars, NnHeartbeatKey(nn_id_), hb.Encode(),
              [this, txn](Code code) {
                if (code != Code::kOk) {
                  RLOG_DEBUG(kLog, "nn %d heartbeat write failed (code %d)",
                             nn_id_, static_cast<int>(code));
                  api_->Abort(txn);
                  return;
                }
                api_->Commit(txn, [this](Code commit_code) {
                  if (commit_code == Code::kOk) {
                    le_publish_ok_at_ = sim_.now();
                  } else {
                    RLOG_DEBUG(kLog, "nn %d heartbeat commit failed (code %d)",
                               nn_id_, static_cast<int>(commit_code));
                  }
                  // Phase 2: read the whole membership table.
                  const ndb::TxnId scan_txn =
                      api_->Begin(tables_.vars, std::string(kNnHeartbeatPrefix));
                  if (scan_txn == 0) return;
                  api_->ScanPrefix(
                      scan_txn, tables_.vars, std::string(kNnHeartbeatPrefix),
                      [this, scan_txn](
                          Code c2,
                          std::vector<std::pair<ndb::Key, std::string>> rows) {
                        api_->Commit(scan_txn, [](Code) {});
                        if (c2 != Code::kOk) return;

                        std::vector<ActiveNn> alive;
                        for (const auto& [k, v] : rows) {
                          NnHeartbeatRow row;
                          if (!NnHeartbeatRow::Decode(v, &row)) continue;
                          auto& seen = le_seen_[row.nn_id];
                          if (row.nn_id == nn_id_ ||
                              row.counter != seen.first) {
                            seen = {row.counter, 0};
                          } else {
                            seen.second += 1;
                          }
                          if (seen.second < kMissesForDead) {
                            alive.push_back(ActiveNn{
                                row.nn_id,
                                static_cast<AzId>(row.location_domain_id),
                                static_cast<HostId>(row.host)});
                          }
                        }
                        std::sort(alive.begin(), alive.end(),
                                  [](const ActiveNn& a, const ActiveNn& b) {
                                    return a.nn_id < b.nn_id;
                                  });
                        active_nns_ = std::move(alive);

                        // Claiming (or keeping) leadership requires a live
                        // lease: our own publish must have landed recently,
                        // not just our row looking fresh in our own scan.
                        const bool lease_ok =
                            le_publish_ok_at_ >= 0 &&
                            sim_.now() - le_publish_ok_at_ <=
                                kMissesForDead * config_.leader_interval;
                        const bool lead = lease_ok && !active_nns_.empty() &&
                                          active_nns_.front().nn_id == nn_id_;
                        if (!lead) le_claim_pending_ = false;
                        if (lead && !is_leader_ && !le_claim_pending_) {
                          // Deferred claim: a displaced leader only learns
                          // of our return at ITS next election round, so
                          // claiming immediately can overlap two leaders
                          // for up to a round. Claim only after we have
                          // been the would-be leader for two consecutive
                          // rounds — the incumbent's round in between sees
                          // our counter advancing and steps down first.
                          le_claim_pending_ = true;
                        } else if (lead && !is_leader_) {
                          le_claim_pending_ = false;
                          RLOG_INFO(kLog, "nn %d became leader", nn_id_);
                          is_leader_ = true;
                          if (dn_registry_ != nullptr) {
                            rep_timer_ = sim_.Every(
                                1 * kSecond, [this] {
                                  if (alive_ && is_leader_) {
                                    ReplicationMonitorRound();
                                  }
                                });
                          }
                        } else if (!lead && is_leader_) {
                          is_leader_ = false;
                          rep_timer_.Cancel();
                        }
                      });
                });
              });
}

struct Namenode::RepairQueue {
  blocks::DnId dn = -1;
  std::vector<std::pair<ndb::Key, std::string>> rows;
  size_t next = 0;
};

void Namenode::ReplicationMonitorRound() {
  PROF_ZONE("nn.replication.round");
  const Nanos now = sim_.now();
  for (blocks::DnId dn = 0; dn < dn_registry_->size(); ++dn) {
    // React only to datanodes that once reported and then went silent
    // (never-registered DNs have nothing to re-replicate).
    if (dn_known_dead_[dn] || !dn_registry_->EverHeard(dn) ||
        dn_registry_->AliveAt(dn, now)) {
      continue;
    }
    dn_known_dead_[dn] = true;
    RLOG_INFO(kLog, "leader nn %d: datanode %d lost, re-replicating",
              nn_id_, dn);

    // Scan the dead datanode's block index and repair each block.
    const ndb::TxnId txn = api_->Begin(tables_.dn_blocks, DnBlocksPrefix(dn));
    if (txn == 0) return;
    api_->ScanPrefix(
        txn, tables_.dn_blocks, DnBlocksPrefix(dn),
        [this, txn, dn](Code code,
                        std::vector<std::pair<ndb::Key, std::string>> rows) {
          api_->Commit(txn, [](Code) {});
          if (code != Code::kOk) return;
          auto q = std::make_shared<RepairQueue>();
          q->dn = dn;
          q->rows = std::move(rows);
          RepairNext(std::move(q));
        });
  }
}

void Namenode::RepairNext(std::shared_ptr<RepairQueue> q) {
  if (q->next >= q->rows.size()) return;
  const size_t i = q->next++;
  RepairBlock(q->dn, q->rows[i].first, q->rows[i].second,
              [this, q] { RepairNext(q); });
}

void Namenode::RepairBlock(blocks::DnId dead_dn,
                           const std::string& dn_block_key,
                           const std::string& block_row_key,
                           std::function<void()> done) {
  const ndb::TxnId txn = api_->Begin(tables_.blocks, block_row_key);
  if (txn == 0) {
    done();
    return;
  }
  auto give_up = [this, txn, done](const char* why) {
    RLOG_WARN(kLog, "block repair skipped: %s", why);
    api_->Abort(txn);
    done();
  };
  api_->Read(
      txn, tables_.blocks, block_row_key, ndb::LockMode::kExclusive,
      [this, txn, dead_dn, dn_block_key, block_row_key, done, give_up](
          Code code, std::optional<std::string> value) {
        BlockRow block;
        if (code != Code::kOk || !value ||
            !BlockRow::Decode(*value, &block)) {
          give_up("block row unreadable");
          return;
        }
        auto& reps = block.replicas;
        reps.erase(std::remove(reps.begin(), reps.end(), dead_dn),
                   reps.end());
        const blocks::DnId target = placement_->ChooseReplacement(
            reps, *dn_registry_, sim_.now(), rng_);
        blocks::DnId source = -1;
        for (blocks::DnId r : reps) {
          if (dn_registry_->AliveAt(r, sim_.now())) {
            source = r;
            break;
          }
        }
        if (target < 0 || source < 0) {
          give_up("no replacement target or surviving source");
          return;
        }
        reps.push_back(target);

        auto pending = std::make_shared<int>(3);
        auto failed = std::make_shared<bool>(false);
        auto one_done = [this, txn, pending, failed, done, source, target,
                         block](Code c) {
          if (c != Code::kOk) *failed = true;
          if (--*pending > 0) return;
          if (*failed) {
            api_->Abort(txn);
            done();
            return;
          }
          api_->Commit(txn, [this, done, source, target, block](Code cc) {
            if (cc == Code::kOk) {
              auto* src = dn_registry_->dn(source);
              auto* dst = dn_registry_->dn(target);
              network_.Send(host_, src->host(), 128,
                            [src, dst, id = block.block_id] {
                              src->CopyBlockTo(*dst, id, nullptr);
                            });
            }
            done();
          });
        };
        api_->Update(txn, tables_.blocks, block_row_key, block.Encode(),
                     one_done);
        api_->Delete(txn, tables_.dn_blocks, dn_block_key, one_done);
        api_->Insert(txn, tables_.dn_blocks,
                     DnBlockKey(target, block.block_id), block_row_key,
                     one_done);
      });
}

}  // namespace repro::hopsfs
