#include "prof/profiler.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>
#include <new>
#include <unordered_map>

// IMPORTANT: the global operator new/delete replacement lives in THIS
// translation unit, together with the detail globals every PROF_ZONE
// references. In a static library the linker pulls in whole archive
// members: because instrumented code references detail::g_current, this
// member is always linked, so the replacement operators are guaranteed to
// win over libstdc++'s weak defaults in every binary that links
// repro_prof — no special link flags needed.

namespace repro::prof {

namespace detail {
Profiler* g_current = nullptr;
bool g_alloc_counting = false;
uint64_t g_alloc_count = 0;
uint64_t g_alloc_bytes = 0;
int64_t g_sim_cpu_ns = 0;
int64_t g_sim_disk_bytes = 0;
}  // namespace detail

namespace {

// Intern table. Cold path only (PROF_ZONE caches the id in a
// function-local static); the mutex exists so a multi-threaded *host*
// harness can still intern safely even though the sim itself is
// single-threaded.
struct InternTable {
  std::mutex mu;
  std::unordered_map<std::string, ZoneNameId> ids;
  std::vector<std::string> names;
};

InternTable& Interns() {
  static InternTable* t = new InternTable();  // leaked: outlives everything
  return *t;
}

// The profiler's own bookkeeping must not pollute the counters it is
// reading. Scoped suspension of allocation counting around cold paths
// (node creation, ring growth, intern).
class PauseAllocCounting {
 public:
  PauseAllocCounting() : was_(detail::g_alloc_counting) {
    detail::g_alloc_counting = false;
  }
  ~PauseAllocCounting() { detail::g_alloc_counting = was_; }

 private:
  bool was_;
};

}  // namespace

ZoneNameId InternZoneName(const char* name) {
  PauseAllocCounting pause;
  InternTable& t = Interns();
  std::lock_guard<std::mutex> lock(t.mu);
  auto it = t.ids.find(name);
  if (it != t.ids.end()) return it->second;
  ZoneNameId id = static_cast<ZoneNameId>(t.names.size());
  t.names.emplace_back(name);
  t.ids.emplace(t.names.back(), id);
  return id;
}

const std::string& ZoneName(ZoneNameId id) {
  InternTable& t = Interns();
  std::lock_guard<std::mutex> lock(t.mu);
  return t.names.at(id);
}

void SetAllocCounting(bool on) { detail::g_alloc_counting = on; }
bool AllocCounting() { return detail::g_alloc_counting; }
AllocTotals TotalAllocs() {
  return AllocTotals{detail::g_alloc_count, detail::g_alloc_bytes};
}

uint64_t HostNowNs() {
#if defined(__linux__)
  struct timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
#else
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
#endif
}

// ---- Profiler -------------------------------------------------------------

namespace {
// Current-node cursor. thread_local so that if a second host thread ever
// runs zones, it gets its own (root-anchored) cursor instead of
// corrupting the sim thread's stack. The sim thread is the only intended
// user.
thread_local int32_t t_current_node = 0;
// Innermost open ProfZone on this thread (intrusive LIFO stack via
// ProfZone::prev_open_). Uninstall walks it to poison scopes that would
// otherwise exit into a profiler that is no longer installed.
thread_local ProfZone* t_open_head = nullptr;
}  // namespace

Profiler::Profiler(ProfilerOptions options) : options_(options) {
  nodes_.emplace_back();  // node 0: synthetic root
  if (options_.chrome_ring_capacity > 0) {
    ring_.reserve(options_.chrome_ring_capacity);
  }
}

Profiler::~Profiler() {
  if (installed()) Uninstall();
}

void Profiler::Install() {
  if (detail::g_current == this) return;
  if (detail::g_current != nullptr) detail::g_current->Uninstall();
  t_current_node = 0;
  alloc_counting_was_ = detail::g_alloc_counting;
  if (options_.track_allocations) detail::g_alloc_counting = true;
  detail::g_current = this;
}

void Profiler::Uninstall() {
  if (detail::g_current != this) return;
  detail::g_current = nullptr;
  detail::g_alloc_counting = alloc_counting_was_;
  // Drain scopes still open on this thread: null each zone's profiler
  // pointer so its pending RAII exit is a no-op instead of charging this
  // (possibly about-to-be-destroyed) profiler and restoring the cursor to
  // a node index inside its freed tree.
  for (ProfZone* z = t_open_head; z != nullptr; z = z->prev_open_) {
    z->prof_ = nullptr;
  }
  t_open_head = nullptr;
  t_current_node = 0;
  if (detach_hook_) {
    auto hook = std::move(detach_hook_);
    detach_hook_ = nullptr;
    hook();
  }
}

int32_t Profiler::FindOrAddChild(int32_t parent, ZoneNameId name) {
  // Linear scan: zone fan-out is small (an op handler nests a handful of
  // distinct sub-zones), and a vector scan beats a map on both cache
  // behaviour and allocation count.
  for (int32_t c : nodes_[static_cast<size_t>(parent)].children) {
    if (nodes_[static_cast<size_t>(c)].name == name) return c;
  }
  PauseAllocCounting pause;  // node creation must not charge the run
  int32_t id = static_cast<int32_t>(nodes_.size());
  Node n;
  n.name = name;
  n.parent = parent;
  nodes_.push_back(std::move(n));
  nodes_[static_cast<size_t>(parent)].children.push_back(id);
  if (node_observer_) node_observer_(id);
  return id;
}

void Profiler::Enter(ZoneNameId name, ProfZone* z) {
  z->prev_open_ = t_open_head;
  t_open_head = z;
  Frame* f = &z->frame_;
  f->prev = t_current_node;
  f->node = FindOrAddChild(t_current_node, name);
  t_current_node = f->node;
  f->allocs0 = detail::g_alloc_count;
  f->bytes0 = detail::g_alloc_bytes;
  f->sim_cpu0 = detail::g_sim_cpu_ns;
  f->disk0 = detail::g_sim_disk_bytes;
  f->t0 = HostNowNs();  // last: exclude our own entry cost
}

void Profiler::Exit(ProfZone* z) {
  const uint64_t t1 = HostNowNs();  // first: exclude our own exit cost
  t_open_head = z->prev_open_;      // zones destruct in strict LIFO order
  const Frame& f = z->frame_;
  Node& n = nodes_[static_cast<size_t>(f.node)];
  n.total.calls += 1;
  n.total.cpu_ns += t1 - f.t0;
  n.total.allocs += detail::g_alloc_count - f.allocs0;
  n.total.alloc_bytes += detail::g_alloc_bytes - f.bytes0;
  n.total.sim_cpu_ns +=
      static_cast<uint64_t>(detail::g_sim_cpu_ns - f.sim_cpu0);
  n.total.sim_disk_bytes +=
      static_cast<uint64_t>(detail::g_sim_disk_bytes - f.disk0);
  t_current_node = f.prev;
  if (options_.chrome_ring_capacity > 0) {
    ChromeEvent ev;
    ev.node = f.node;
    ev.sim_ns = sim_now_ ? sim_now_() : 0;
    ev.host_ns = t1 - f.t0;
    ev.allocs = detail::g_alloc_count - f.allocs0;
    ev.bytes = detail::g_alloc_bytes - f.bytes0;
    if (ring_.size() < options_.chrome_ring_capacity) {
      PauseAllocCounting pause;
      ring_.push_back(ev);
    } else {
      ring_[ring_next_] = ev;
      ring_dropped_ += 1;
    }
    ring_next_ = (ring_next_ + 1) % options_.chrome_ring_capacity;
  }
}

void Profiler::ResetStats() {
  for (Node& n : nodes_) n.total = ZoneStats{};
  ring_.clear();
  ring_next_ = 0;
  ring_dropped_ = 0;
}

std::string Profiler::PathOf(int32_t node, char sep) const {
  if (node <= 0) return std::string();
  // Collect name ids root-ward, then join.
  std::vector<ZoneNameId> chain;
  for (int32_t n = node; n > 0; n = nodes_[static_cast<size_t>(n)].parent) {
    chain.push_back(nodes_[static_cast<size_t>(n)].name);
  }
  std::string out;
  for (size_t i = chain.size(); i-- > 0;) {
    if (!out.empty()) out.push_back(sep);
    out += ZoneName(chain[i]);
  }
  return out;
}

ZoneStats Profiler::SelfOf(int32_t node) const {
  const Node& n = nodes_[static_cast<size_t>(node)];
  ZoneStats self = n.total;
  for (int32_t c : n.children) {
    const ZoneStats& ct = nodes_[static_cast<size_t>(c)].total;
    self.cpu_ns -= std::min(self.cpu_ns, ct.cpu_ns);
    self.allocs -= std::min(self.allocs, ct.allocs);
    self.alloc_bytes -= std::min(self.alloc_bytes, ct.alloc_bytes);
    self.sim_cpu_ns -= std::min(self.sim_cpu_ns, ct.sim_cpu_ns);
    self.sim_disk_bytes -= std::min(self.sim_disk_bytes, ct.sim_disk_bytes);
  }
  return self;
}

std::vector<std::pair<std::string, ZoneStats>> Profiler::ByName() const {
  std::unordered_map<std::string, ZoneStats> agg;
  for (size_t i = 1; i < nodes_.size(); ++i) {
    agg[ZoneName(nodes_[i].name)].Add(nodes_[i].total);
  }
  std::vector<std::pair<std::string, ZoneStats>> out(agg.begin(), agg.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void Profiler::SetNodeObserver(std::function<void(int32_t)> observer) {
  node_observer_ = std::move(observer);
  // Replay existing nodes so an observer attached after warm-up still
  // sees every zone.
  if (node_observer_) {
    for (size_t i = 1; i < nodes_.size(); ++i) {
      node_observer_(static_cast<int32_t>(i));
    }
  }
}

}  // namespace repro::prof

// ---- global operator new/delete replacement --------------------------------
//
// All variants forward to malloc/free (posix_memalign for over-aligned)
// and, when counting is enabled, bump the global counters the current
// zone snapshots. The hook never allocates itself and never throws from
// delete, so it is safe under ASan (which interposes malloc/free below
// us) and during static init/teardown (counting is off then).

namespace {

inline void CountAlloc(size_t size) {
  if (repro::prof::detail::g_alloc_counting) {
    repro::prof::detail::g_alloc_count += 1;
    repro::prof::detail::g_alloc_bytes += size;
  }
}

void* AllocOrThrow(size_t size) {
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  CountAlloc(size);
  return p;
}

void* AllocAlignedOrThrow(size_t size, size_t align) {
  if (size == 0) size = 1;
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, size) != 0) throw std::bad_alloc();
  CountAlloc(size);
  return p;
}

}  // namespace

void* operator new(size_t size) { return AllocOrThrow(size); }
void* operator new[](size_t size) { return AllocOrThrow(size); }
void* operator new(size_t size, const std::nothrow_t&) noexcept {
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p != nullptr) CountAlloc(size);
  return p;
}
void* operator new[](size_t size, const std::nothrow_t&) noexcept {
  return operator new(size, std::nothrow);
}
void* operator new(size_t size, std::align_val_t align) {
  return AllocAlignedOrThrow(size, static_cast<size_t>(align));
}
void* operator new[](size_t size, std::align_val_t align) {
  return AllocAlignedOrThrow(size, static_cast<size_t>(align));
}
void* operator new(size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  if (size == 0) size = 1;
  size_t a = static_cast<size_t>(align);
  if (a < sizeof(void*)) a = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, a, size) != 0) return nullptr;
  CountAlloc(size);
  return p;
}
void* operator new[](size_t size, std::align_val_t align,
                     const std::nothrow_t& tag) noexcept {
  return operator new(size, align, tag);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
// Parameter order matters: the usual sized+aligned deallocation function
// is (ptr, size, alignment). With the operands transposed these were
// unrelated overloads the compiler never called — sized+aligned deletes
// of over-aligned types (the sim's 64B-aligned event slabs) fell through
// to the runtime's default, which under ASan is the interposed
// operator delete and flags every such free as an alloc-dealloc
// mismatch against our malloc-backed operator new.
void operator delete(void* p, size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
