// Deterministic hot-path profiler: zone-level host-CPU and allocation
// attribution for the protocol layers.
//
// The simulator's own tracing/telemetry observe *sim time*; this
// subsystem observes the *host* cost of running the simulation — where
// the real CPU nanoseconds and heap allocations go inside the NN op
// handlers, the NDB TC prepare/commit/complete chain, the LDM paths,
// redo FlushBatch and the block/replication scans. It exists to answer
// "what should the protocol-flattening work attack first?" with numbers
// (ROADMAP item 1, post-scheduler scope).
//
// Design:
//   * RAII `ProfZone` scopes (via the PROF_ZONE("name") macro) push onto
//     a zone stack and charge the enclosing zone *path* on exit. The sim
//     is single-threaded, so the stack needs no synchronisation; the
//     current-node cursor is thread_local so a stray second thread can
//     never corrupt another thread's stack.
//   * Zones record per-path: call count, inclusive host-CPU nanoseconds
//     (CLOCK_THREAD_CPUTIME_ID), heap traffic (allocation count + bytes,
//     from a replaceable global operator new/delete hook that is off by
//     default and enabled by the profiler), and the sim-side service the
//     zone booked (ThreadPool/Disk booking hooks in sim/resources.cc).
//   * Determinism contract: zones touch host-side state ONLY — no sim
//     events, no sim clock, no RNG draws. A pinned chaos/recovery seed
//     replays byte-identically with the profiler installed or not
//     (asserted by tests/prof_test.cc and bench_prof).
//   * Off by default: with no profiler installed a PROF_ZONE costs one
//     global load and branch, and the allocation hook is a plain
//     malloc/free pass-through behind one predictable branch.
//
// Aggregation/export (folded stacks for flamegraphs, budget tables,
// Chrome-trace overlay, metrics::Registry callbacks) lives in
// prof/report.h.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace repro::metrics {
class Registry;
}

namespace repro::prof {

class Profiler;

namespace detail {
// Hot-path globals, defined in profiler.cc (same translation unit as the
// operator new/delete replacement so the hook is always linked in with
// the rest of the profiler). Exposed so the PROF_ZONE disabled check and
// the resource booking hooks inline to a load + branch.
extern Profiler* g_current;        // installed profiler (nullptr = off)
extern bool g_alloc_counting;      // operator new hook counts when true
extern uint64_t g_alloc_count;     // allocations observed while counting
extern uint64_t g_alloc_bytes;     // bytes requested while counting
extern int64_t g_sim_cpu_ns;       // sim ThreadPool service booked
extern int64_t g_sim_disk_bytes;   // sim Disk bytes submitted
}  // namespace detail

// Interned zone names: PROF_ZONE interns once into a function-local
// static, so steady-state zone entry never touches the intern table.
using ZoneNameId = uint32_t;
ZoneNameId InternZoneName(const char* name);
const std::string& ZoneName(ZoneNameId id);

// ---- global allocation counting (operator new/delete hook) ---------------
//
// Counting is independent of zone profiling: benches that only want a
// total-allocation column flip it on without installing a Profiler.
// Installing a Profiler with `track_allocations` (the default) enables it
// for the install window.
struct AllocTotals {
  uint64_t count = 0;
  uint64_t bytes = 0;
};
void SetAllocCounting(bool on);
bool AllocCounting();
AllocTotals TotalAllocs();

// Host thread-CPU clock (CLOCK_THREAD_CPUTIME_ID on Linux; steady_clock
// elsewhere). Exposed for tests.
uint64_t HostNowNs();

// ---- sim resource booking hooks -------------------------------------------
//
// Called by ThreadPool::SubmitTo / Disk I/O submission so a zone also
// knows how much *simulated* service it booked — host cost tells you what
// to flatten, booked sim service tells you which zones drive the modelled
// cluster. No-ops (one load + branch) when no profiler is installed.
inline void ChargeSimCpu(int64_t service_ns) {
  if (detail::g_current != nullptr) detail::g_sim_cpu_ns += service_ns;
}
inline void ChargeSimDisk(int64_t bytes) {
  if (detail::g_current != nullptr) detail::g_sim_disk_bytes += bytes;
}

// ---- zone statistics ------------------------------------------------------

struct ZoneStats {
  uint64_t calls = 0;
  uint64_t cpu_ns = 0;          // inclusive host CPU
  uint64_t allocs = 0;          // inclusive allocation count
  uint64_t alloc_bytes = 0;     // inclusive allocated bytes
  uint64_t sim_cpu_ns = 0;      // sim ThreadPool service booked inside
  uint64_t sim_disk_bytes = 0;  // sim Disk bytes submitted inside

  void Add(const ZoneStats& o) {
    calls += o.calls;
    cpu_ns += o.cpu_ns;
    allocs += o.allocs;
    alloc_bytes += o.alloc_bytes;
    sim_cpu_ns += o.sim_cpu_ns;
    sim_disk_bytes += o.sim_disk_bytes;
  }
};

struct ProfilerOptions {
  // Enable the allocation hook for the install window (charging the
  // current zone). Off leaves heap columns at zero.
  bool track_allocations = true;
  // When > 0, the profiler keeps a ring of the last N zone exits for the
  // Chrome-trace overlay export (prof/report.h). 0 = aggregation only.
  size_t chrome_ring_capacity = 0;
};

class ProfZone;

class Profiler {
 public:
  // One tree node = one zone *path* (stack of nested zone names). Node 0
  // is the synthetic root ("everything outside any zone").
  struct Node {
    ZoneNameId name = 0;
    int32_t parent = -1;
    std::vector<int32_t> children;
    ZoneStats total;  // inclusive
  };

  // Snapshot a ProfZone takes at entry; deltas are charged on exit.
  struct Frame {
    int32_t prev = 0;
    int32_t node = 0;
    uint64_t t0 = 0;
    uint64_t allocs0 = 0;
    uint64_t bytes0 = 0;
    int64_t sim_cpu0 = 0;
    int64_t disk0 = 0;
  };

  // One recorded zone exit for the Chrome-trace overlay ring.
  struct ChromeEvent {
    int32_t node = 0;
    int64_t sim_ns = 0;  // sim time at exit (0 if no time source set)
    uint64_t host_ns = 0;
    uint64_t allocs = 0;
    uint64_t bytes = 0;
  };

  explicit Profiler(ProfilerOptions options = {});
  ~Profiler();  // uninstalls if still current

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  // Makes this the process-wide current profiler (and enables allocation
  // counting per options). Zones are recorded between Install() and
  // Uninstall(). Uninstall drains every zone still open on the calling
  // thread (the sim thread — the only intended user): their pending RAII
  // exits become no-ops instead of charging an uninstalled (possibly
  // destroyed) profiler and restoring a cursor into its freed zone tree.
  void Install();
  void Uninstall();
  static Profiler* Current() { return detail::g_current; }
  bool installed() const { return detail::g_current == this; }

  // Optional sim-time source, used only to timestamp Chrome-ring events
  // (the profiler never *advances* or perturbs sim time).
  void SetSimTimeSource(std::function<int64_t()> now_ns) {
    sim_now_ = std::move(now_ns);
  }

  // Zone entry/exit — called by ProfZone only. Take the zone itself so
  // Enter can thread it onto the open-zone stack Uninstall drains.
  void Enter(ZoneNameId name, ProfZone* z);
  void Exit(ProfZone* z);

  // Zeroes every node's stats and the Chrome ring, keeping the interned
  // tree (so a warmed-up tree profiles a measurement window with zero
  // node-creation allocations).
  void ResetStats();

  const std::vector<Node>& nodes() const { return nodes_; }
  // "a;b;c" path of a node (flamegraph folded-stack convention); `sep`
  // '/' is used for metric label values.
  std::string PathOf(int32_t node, char sep = ';') const;
  // Exclusive stats: node minus its children (clamped at zero — the
  // clock is not infinitely fine).
  ZoneStats SelfOf(int32_t node) const;
  // Inclusive stats aggregated by *leaf zone name* across all paths the
  // zone appears in — the "per-op budget" view. Sorted by name.
  std::vector<std::pair<std::string, ZoneStats>> ByName() const;

  const std::vector<ChromeEvent>& chrome_ring() const { return ring_; }
  size_t chrome_dropped() const { return ring_dropped_; }

  // Hook invoked after a new node is created (cold path). Used by
  // prof/report.cc to register metrics::Registry callbacks for zones the
  // moment they first run, so the telemetry scraper sees them mid-run.
  void SetNodeObserver(std::function<void(int32_t)> observer);
  // Invoked by Uninstall()/destruction; prof/report.cc uses it to replace
  // live registry callbacks with frozen values so a Registry that
  // outlives the profiler never dereferences it.
  void SetDetachHook(std::function<void()> hook) {
    detach_hook_ = std::move(hook);
  }

  const ProfilerOptions& options() const { return options_; }

 private:
  int32_t FindOrAddChild(int32_t parent, ZoneNameId name);

  ProfilerOptions options_;
  std::vector<Node> nodes_;
  std::function<int64_t()> sim_now_;
  std::function<void(int32_t)> node_observer_;
  std::function<void()> detach_hook_;
  std::vector<ChromeEvent> ring_;
  size_t ring_next_ = 0;
  size_t ring_dropped_ = 0;
  bool alloc_counting_was_ = false;
};

// RAII zone scope. Constructed cheap when no profiler is installed; exits
// charge the zone even on early return / exception unwind. If the
// profiler is uninstalled (or destroyed) while the scope is open, the
// drain in Uninstall() nulls prof_ and the exit is a no-op.
class ProfZone {
 public:
  explicit ProfZone(ZoneNameId name) {
    Profiler* p = detail::g_current;
    if (p == nullptr) return;
    prof_ = p;
    p->Enter(name, this);
  }
  ~ProfZone() {
    if (prof_ != nullptr) prof_->Exit(this);
  }

  ProfZone(const ProfZone&) = delete;
  ProfZone& operator=(const ProfZone&) = delete;

 private:
  friend class Profiler;
  Profiler* prof_ = nullptr;
  ProfZone* prev_open_ = nullptr;  // next-outer open zone (LIFO stack)
  Profiler::Frame frame_;
};

#define REPRO_PROF_CONCAT_(a, b) a##b
#define REPRO_PROF_CONCAT(a, b) REPRO_PROF_CONCAT_(a, b)

// Instruments the enclosing scope as a profiler zone. The name is
// interned once (function-local static); the steady-state cost with the
// profiler off is one global load + branch.
#define PROF_ZONE(name)                                                   \
  static const ::repro::prof::ZoneNameId REPRO_PROF_CONCAT(               \
      prof_zone_name_, __LINE__) = ::repro::prof::InternZoneName(name);   \
  ::repro::prof::ProfZone REPRO_PROF_CONCAT(prof_zone_, __LINE__)(        \
      REPRO_PROF_CONCAT(prof_zone_name_, __LINE__))

}  // namespace repro::prof
